// E10: the CMS real-time filtering constraint.
// Paper (Section 3.2): CMS "is limited to taking 200 MB/s of data to be
// written to tape, therefore substantial filtering has to take place in
// real time before writing to tape."

#include <cstdio>

#include "bench/report.h"
#include "eventstore/cms_filter.h"
#include "util/units.h"

int main() {
  using namespace dflow;
  using eventstore::CmsFilterConfig;
  using eventstore::CmsFilterResult;
  using eventstore::RunCmsFilter;

  bench::Header("E10 -- CMS high-level-trigger acceptance vs 200 MB/s tape "
                "budget",
                "detector rate ~100 kHz x ~1 MB events must be filtered to "
                "<= 200 MB/s before tape");

  std::printf("  %-14s %-14s %-12s %-14s %s\n", "acceptance", "tape rate",
              "drops", "peak buffer", "within budget?");
  double max_safe_acceptance = 0.0;
  for (double acceptance :
       {0.0005, 0.001, 0.0015, 0.0018, 0.002, 0.003, 0.005}) {
    CmsFilterConfig config;
    config.accept_fraction = acceptance;
    CmsFilterResult result = RunCmsFilter(config, 30.0, 42);
    std::printf("  %-14.4f %-14s %-12lld %-14s %s\n", acceptance,
                FormatRate(result.mean_tape_rate).c_str(),
                static_cast<long long>(result.events_dropped_overflow),
                FormatBytes(static_cast<int64_t>(result.peak_buffer_bytes))
                    .c_str(),
                result.within_tape_budget ? "yes" : "NO");
    if (result.within_tape_budget) {
      max_safe_acceptance = std::max(max_safe_acceptance, acceptance);
    }
  }

  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.4f (~%.0f of 100000 events/s kept)",
                max_safe_acceptance, max_safe_acceptance * 100000);
  bench::Row("largest acceptance honouring the budget", buf);
  bench::Row("implied filter factor",
             std::to_string(static_cast<int>(1.0 / max_safe_acceptance)) +
                 ":1");
  bench::Note("the filter factor of several hundred to one is the "
              "'substantial filtering' the paper demands of the real-time "
              "path");

  // Shape: ~0.002 (1 MB x 100 kHz x 0.002 = 200 MB/s) is the knee.
  bool shape = max_safe_acceptance >= 0.0015 && max_safe_acceptance <= 0.002;
  bench::Footer(shape);
  return shape ? 0 : 1;
}
