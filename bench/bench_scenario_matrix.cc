// Scenario matrix driver: runs every registered scenario (trace-driven
// WfCommons replay, synthetic load shapes, combined-chaos compositions)
// and emits one JSON row each into BENCH_scenarios.json — p99, shed rate,
// recovery time, and the seed-stable MD5 fingerprint that the
// scenario_matrix_test turns into a hard regression gate.
//
// Knobs (environment):
//   DFLOW_SCENARIO_SCALE  load/horizon multiplier, clamped to [0.05, 4]
//                         (CI runs 0.25; default 1.0)
//   DFLOW_SCENARIO_SEED   matrix seed (default 20260807)
//
// Shape check: every scenario must produce a row, every fingerprint must
// be non-empty, and the deterministic scenarios' fingerprints must
// reproduce on a same-seed second run.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/report.h"
#include "scenario/scenario.h"

namespace {

using dflow::scenario::BuiltinScenarios;
using dflow::scenario::Scenario;
using dflow::scenario::ScenarioParams;
using dflow::scenario::ScenarioResult;

}  // namespace

int main() {
  ScenarioParams params = ScenarioParams::FromEnv();

  dflow::bench::Header(
      "scenario_matrix: trace / shape / chaos workloads, one seed",
      "the case studies live or die on behavior under realistic load "
      "shapes and faults arriving mid-operation");
  dflow::bench::Note("seed=" + std::to_string(params.seed) +
                     " scale=" + std::to_string(params.scale));

  const auto& registry = BuiltinScenarios();
  std::vector<std::string> rows;
  bool shape_holds = true;

  for (const Scenario& scenario : registry.scenarios()) {
    auto result = registry.Run(scenario.name, params);
    if (!result.ok()) {
      dflow::bench::Row(scenario.name,
                        "ERROR: " + result.status().ToString());
      shape_holds = false;
      continue;
    }
    // Same-seed re-run: the fingerprint is the scenario's deterministic
    // identity and must reproduce byte-for-byte.
    auto rerun = registry.Run(scenario.name, params);
    bool stable = rerun.ok() && rerun->fingerprint == result->fingerprint;
    if (result->fingerprint.empty() || !stable) {
      shape_holds = false;
    }
    char summary[256];
    std::snprintf(summary, sizeof(summary),
                  "p99=%.3gms shed=%.3g recovery=%.3gs fp=%s%s",
                  result->p99_ms, result->shed_rate, result->recovery_sec,
                  result->fingerprint.substr(0, 12).c_str(),
                  stable ? "" : " UNSTABLE");
    dflow::bench::Row(scenario.name, summary);
    rows.push_back(result->ToJsonRow());
  }

  if (rows.size() < 6) {
    dflow::bench::Note("matrix too small: " + std::to_string(rows.size()) +
                       " rows (expected >= 6)");
    shape_holds = false;
  }

  std::FILE* out = std::fopen("BENCH_scenarios.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "[\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      std::fprintf(out, "  %s%s\n", rows[i].c_str(),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
    std::fclose(out);
    dflow::bench::Note("wrote BENCH_scenarios.json (" +
                       std::to_string(rows.size()) + " rows)");
  } else {
    dflow::bench::Note("could not write BENCH_scenarios.json");
    shape_holds = false;
  }

  dflow::bench::Footer(shape_holds);
  return shape_holds ? 0 : 1;
}
