// C1/C2 -- cluster scale-out + node-kill availability (dflow::cluster).
// Paper (Sections 2-4): every case study outgrows one machine — PALFA
// needs "50 to 200 processors", the EventStore serves "normally 10 TB" of
// versioned runs, WebLab's reference set is sharded across a farm. This
// bench pins the laptop-scale version of that claim: N simulated nodes
// behind the consistent-hash router must actually multiply serve
// capacity, and killing a node mid-run must not fail a single client
// request (the replica chain absorbs it).
//
// Three gates:
//   * determinism (always enforced): two same-seed 4-node clusters
//     produce byte-identical routing decision logs and shard maps;
//   * availability (always enforced): the node-kill phase completes with
//     zero failed client requests after in-cluster retries;
//   * scale-out (enforced only on hosts with >= 8 hardware threads and
//     DFLOW_BENCH_CLUSTER_ADVISORY unset): >= 2.5x throughput at 4 nodes
//     vs 1 under a Zipf workload. The backends model a fixed per-request
//     service time (a synchronous per-node process), so capacity is
//     per-node serialization, not core count — but wall-clock on a
//     shared/undersized runner is still noise, hence the advisory escape.
//
// Consistent hashing spreads shards evenly but is blind to per-endpoint
// popularity, so before each measured run the bench performs a load-aware
// rebalance: greedy MoveShard() of the hottest shards off the most loaded
// node (the live-rebalancing subsystem doing its actual job). The printed
// "hottest node" share shows how much head skew remains after it.
//
// DFLOW_CLUSTER_SCALE (float, default 1.0) scales request counts so CI
// can run the same binary in seconds.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/report.h"
#include "cluster/cluster.h"
#include "core/web_service.h"
#include "serve/workload_gen.h"
#include "util/md5.h"

namespace {

using dflow::cluster::Cluster;
using dflow::cluster::ClusterConfig;
using dflow::cluster::ClusterStats;
using dflow::core::ServiceRegistry;
using dflow::core::ServiceRequest;
using dflow::core::ServiceResponse;

std::string Fmt(const char* format, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), format, value);
  return buffer;
}

double EnvScale() {
  const char* value = std::getenv("DFLOW_CLUSTER_SCALE");
  if (value == nullptr || *value == '\0') {
    return 1.0;
  }
  double scale = std::atof(value);
  return scale > 0.0 ? scale : 1.0;
}

/// A backend with a fixed service time: the synchronous per-node process
/// the cluster models. Under per-mount locking one node serves at most
/// 1/service_time requests per second, so capacity grows with node count
/// — which is exactly the claim this bench measures.
class FixedCostService : public dflow::core::WebService {
 public:
  explicit FixedCostService(int service_us) : service_us_(service_us) {}

  dflow::Result<ServiceResponse> Handle(const ServiceRequest& request) override {
    std::this_thread::sleep_for(std::chrono::microseconds(service_us_));
    ServiceResponse response;
    response.body = "ok:" + request.path;
    response.cache_max_age_sec = ServiceResponse::kUncacheable;
    return response;
  }
  std::vector<std::string> Endpoints() const override { return {"item"}; }
  const std::string& name() const override { return name_; }

 private:
  int service_us_;
  std::string name_ = "fixed-cost";
};

/// The shared Zipf request stream: same (population, s, seed) on every
/// sweep point, so every node count answers the identical workload.
std::vector<ServiceRequest> ZipfStream(uint64_t seed, int n) {
  std::vector<ServiceRequest> population;
  for (int i = 0; i < 300; ++i) {
    ServiceRequest request;
    request.path = "svc/item/" + std::to_string(i);
    population.push_back(std::move(request));
  }
  dflow::serve::WorkloadGen gen(population, /*zipf_s=*/1.1, seed);
  std::vector<ServiceRequest> stream;
  stream.reserve(n);
  for (int i = 0; i < n; ++i) {
    stream.push_back(gen.Next());
  }
  return stream;
}

dflow::Result<std::unique_ptr<Cluster>> MakeCluster(int num_nodes,
                                                    uint64_t seed,
                                                    int service_us) {
  ClusterConfig config;
  config.num_nodes = num_nodes;
  config.replication_factor = 2;
  config.seed = seed;
  config.workers_per_node = 4;
  config.queue_depth = 256;
  return Cluster::Create(
      config, [service_us](int, ServiceRegistry* registry) {
        return registry->Mount(
            "svc", std::make_shared<FixedCostService>(service_us));
      });
}

/// Load-aware rebalance: consistent hashing spreads SHARDS evenly, but a
/// Zipf head can still pile hot endpoints onto one node. This is exactly
/// what live shard moves are for — count each shard's weight in the
/// (known, seeded) stream, then greedily MoveShard() the hottest shards
/// off the most loaded node until no move improves the spread. Pure
/// function of (map, stream): deterministic, ties broken by id/name.
int64_t RebalanceByLoad(Cluster* cluster,
                        const std::vector<std::string>& keys) {
  std::map<int, int64_t> shard_load;
  std::map<int, std::string> shard_owner;
  std::map<std::string, int64_t> node_load;
  for (const std::string& node : cluster->node_names()) {
    node_load[node] = 0;
  }
  for (const std::string& key : keys) {
    auto decision = cluster->Route(key);
    if (!decision.ok()) {
      continue;
    }
    shard_load[decision->shard] += 1;
    shard_owner[decision->shard] = decision->owner;
  }
  for (const auto& [shard, load] : shard_load) {
    node_load[shard_owner[shard]] += load;
  }
  int64_t moves = 0;
  const int max_moves = cluster->shard_map_config().num_shards;
  while (moves < max_moves) {
    auto hottest = node_load.begin();
    auto coldest = node_load.begin();
    for (auto it = node_load.begin(); it != node_load.end(); ++it) {
      if (it->second > hottest->second) hottest = it;
      if (it->second < coldest->second) coldest = it;
    }
    // Biggest shard on the hottest node that still fits under the gap
    // (moving anything larger would just swap who is hottest).
    const int64_t gap = hottest->second - coldest->second;
    int best_shard = -1;
    int64_t best_load = 0;
    for (const auto& [shard, load] : shard_load) {
      if (shard_owner[shard] == hottest->first && load < gap &&
          load > best_load) {
        best_shard = shard;
        best_load = load;
      }
    }
    if (best_shard < 0) {
      break;  // No move improves the spread.
    }
    dflow::Status moved = cluster->MoveShard(best_shard, coldest->first);
    if (!moved.ok() && !moved.IsAlreadyExists()) {
      break;
    }
    shard_owner[best_shard] = coldest->first;
    hottest->second -= best_load;
    coldest->second += best_load;
    if (moved.ok()) {
      ++moves;
    }
  }
  return moves;
}

struct LoadResult {
  double elapsed_sec = 0.0;
  int64_t ok = 0;
  int64_t failed = 0;
  int64_t wrong_body = 0;
  double throughput_rps() const {
    return elapsed_sec > 0.0 ? ok / elapsed_sec : 0.0;
  }
};

/// Closed-loop drive: `clients` threads split the stream and hammer
/// Execute() until their slices drain. Every response body is checked, so
/// "ok" means answered correctly, not merely answered. `progress` (if
/// given) counts finished requests — the kill phase uses it to fire the
/// node kill provably mid-run.
LoadResult Drive(Cluster* cluster, const std::vector<ServiceRequest>& stream,
                 int clients, std::atomic<int64_t>* progress = nullptr) {
  std::atomic<int64_t> ok{0};
  std::atomic<int64_t> failed{0};
  std::atomic<int64_t> wrong{0};
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (size_t i = c; i < stream.size(); i += clients) {
        auto response = cluster->Execute(stream[i]);
        if (!response.ok()) {
          failed.fetch_add(1, std::memory_order_relaxed);
        } else if (response->body != "ok:" + stream[i].path.substr(4)) {
          // The registry strips the mount prefix before the backend sees
          // the path: "svc/item/7" answers "ok:item/7".
          wrong.fetch_add(1, std::memory_order_relaxed);
        } else {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
        if (progress != nullptr) {
          progress->fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  LoadResult result;
  result.elapsed_sec = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  result.ok = ok.load();
  result.failed = failed.load();
  result.wrong_body = wrong.load();
  return result;
}

struct SweepPoint {
  int nodes = 1;
  LoadResult load;
  int64_t rebalance_moves = 0;  // Load-aware shard moves before the run.
  double max_node_share = 0.0;  // Hottest node's fraction of dispatches.
};

}  // namespace

int main() {
  using namespace dflow;

  const double scale = EnvScale();
  const uint64_t kSeed = 20260807;
  const int kServiceUs = 200;
  const int kClients = 16;
  const int kRequests = std::max(1000, static_cast<int>(6000 * scale));
  const int hardware = static_cast<int>(std::thread::hardware_concurrency());

  bench::Header(
      "C1/C2 -- cluster scale-out + node-kill availability (dflow::cluster)",
      "each case study outgrows one machine; N consistent-hash nodes must "
      "multiply serve capacity and survive a node kill without failing a "
      "client request");

  bench::Row("hardware threads", std::to_string(hardware));
  bench::Row("scale (DFLOW_CLUSTER_SCALE)", Fmt("%.2f", scale));
  bench::Row("workload", std::to_string(kRequests) +
                             " reqs, Zipf s=1.1 over 300 endpoints, " +
                             std::to_string(kClients) + " closed-loop clients");
  bench::Row("backend service time", std::to_string(kServiceUs) + " us");

  const std::vector<ServiceRequest> stream = ZipfStream(kSeed, kRequests);
  std::vector<std::string> keys;
  keys.reserve(stream.size());
  for (const ServiceRequest& request : stream) {
    keys.push_back(Cluster::KeyOf(request));
  }

  // --- C1: the scale-out sweep. -----------------------------------------
  const std::vector<int> sweep_nodes = {1, 2, 4, 8};
  std::vector<SweepPoint> points;
  bool all_correct = true;
  for (int nodes : sweep_nodes) {
    auto cluster = MakeCluster(nodes, kSeed, kServiceUs);
    if (!cluster.ok()) {
      std::fprintf(stderr, "cluster create failed: %s\n",
                   cluster.status().message().c_str());
      return 1;
    }
    SweepPoint point;
    point.nodes = nodes;
    point.rebalance_moves = RebalanceByLoad(cluster->get(), keys);
    point.load = Drive(cluster->get(), stream, kClients);
    std::map<std::string, int64_t> served = (*cluster)->ServedByNode();
    int64_t total = 0, hottest = 0;
    for (const auto& [node, count] : served) {
      total += count;
      hottest = std::max(hottest, count);
    }
    point.max_node_share =
        total > 0 ? static_cast<double>(hottest) / total : 0.0;
    if (point.load.failed != 0 || point.load.wrong_body != 0) {
      all_correct = false;
    }
    points.push_back(point);
  }

  const double base_rps = points[0].load.throughput_rps();
  for (const SweepPoint& point : points) {
    bench::Row(
        "n=" + std::to_string(point.nodes) + " throughput",
        Fmt("%.0f req/s", point.load.throughput_rps()) + "  (speedup " +
            Fmt("%.2f", point.load.throughput_rps() / base_rps) +
            "x, hottest node " + Fmt("%.0f%%", 100.0 * point.max_node_share) +
            ", " + std::to_string(point.rebalance_moves) +
            " load-aware moves)");
  }
  const double speedup_4 = points[2].load.throughput_rps() / base_rps;
  const double speedup_8 = points[3].load.throughput_rps() / base_rps;

  // --- Determinism: same seed => byte-identical routing. ----------------
  std::string decisions_a, decisions_b, map_a, map_b;
  {
    auto a = MakeCluster(4, kSeed, kServiceUs);
    auto b = MakeCluster(4, kSeed, kServiceUs);
    if (!a.ok() || !b.ok()) {
      std::fprintf(stderr, "determinism clusters failed to create\n");
      return 1;
    }
    decisions_a = Md5::HexOf((*a)->DecisionLog(keys));
    decisions_b = Md5::HexOf((*b)->DecisionLog(keys));
    map_a = Md5::HexOf((*a)->DescribeMap());
    map_b = Md5::HexOf((*b)->DescribeMap());
  }
  const bool deterministic = decisions_a == decisions_b && map_a == map_b;
  bench::Row("routing fingerprint (4 nodes)", decisions_a);
  bench::Row("same-seed byte-identical", deterministic ? "yes" : "NO");

  // --- C2: node-kill availability. --------------------------------------
  // 4 nodes, R=2: kill a node while the closed-loop clients are mid-run.
  // The router must walk each request past the corpse to a live replica —
  // zero failed client requests, every body still correct.
  LoadResult kill_load;
  ClusterStats kill_stats;
  int64_t kill_reroutes = 0;
  {
    auto cluster = MakeCluster(4, kSeed, kServiceUs);
    if (!cluster.ok()) {
      std::fprintf(stderr, "kill-phase cluster create failed\n");
      return 1;
    }
    std::atomic<int64_t> progress{0};
    std::thread killer([&] {
      // Fire once a third of the requests have finished — provably
      // mid-run, independent of how fast this host is.
      while (progress.load(std::memory_order_relaxed) < kRequests / 3) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      Status killed = (*cluster)->KillNode("node2");
      if (!killed.ok()) {
        std::fprintf(stderr, "kill failed: %s\n", killed.message().c_str());
      }
    });
    kill_load = Drive(cluster->get(), stream, kClients, &progress);
    killer.join();
    kill_stats = (*cluster)->Stats();
    kill_reroutes = kill_stats.reroutes;
  }
  const bool kill_ok = kill_load.failed == 0 && kill_load.wrong_body == 0 &&
                       kill_stats.failed == 0;
  bench::Row("node-kill phase",
             std::to_string(kill_load.ok) + " ok / " +
                 std::to_string(kill_load.failed) + " failed / " +
                 std::to_string(kill_reroutes) + " reroutes past the corpse");
  bench::Row("zero failed requests through the kill",
             kill_ok ? "yes" : "NO");

  // --- Gates. -----------------------------------------------------------
  const bool advisory_env =
      std::getenv("DFLOW_BENCH_CLUSTER_ADVISORY") != nullptr;
  const bool enforce_speedup = hardware >= 8 && !advisory_env;
  const bool speedup_ok = speedup_4 >= 2.5;
  if (enforce_speedup) {
    bench::Note("scale-out floor ENFORCED (>= 2.5x at 4 nodes)");
  } else {
    bench::Note(std::string("scale-out floor ADVISORY (") +
                (advisory_env ? "DFLOW_BENCH_CLUSTER_ADVISORY set"
                              : "host has < 8 hardware threads") +
                ")");
  }
  bench::Note("speedup: " + Fmt("%.2f", speedup_4) + "x at 4 nodes, " +
              Fmt("%.2f", speedup_8) + "x at 8" +
              (speedup_ok ? "" : " (below floor)"));

  const bool shape_holds = deterministic && all_correct && kill_ok &&
                           (!enforce_speedup || speedup_ok);
  bench::Footer(shape_holds);

  // --- BENCH_cluster.json. ----------------------------------------------
  {
    std::ofstream json("BENCH_cluster.json");
    json << "{\n";
    json << "  \"bench\": \"bench_cluster_scaleout\",\n";
    json << "  \"scale\": " << Fmt("%.3f", scale) << ",\n";
    json << "  \"hardware_threads\": " << hardware << ",\n";
    json << "  \"config\": {\"requests\": " << kRequests
         << ", \"clients\": " << kClients
         << ", \"service_us\": " << kServiceUs
         << ", \"zipf_s\": 1.1, \"replication\": 2},\n";
    json << "  \"determinism\": {\"byte_identical\": "
         << (deterministic ? "true" : "false")
         << ", \"routing_fingerprint\": \"" << decisions_a << "\"},\n";
    json << "  \"sweep\": [";
    for (size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& point = points[i];
      json << (i == 0 ? "" : ", ") << "{\"nodes\": " << point.nodes
           << ", \"throughput_rps\": "
           << Fmt("%.1f", point.load.throughput_rps())
           << ", \"elapsed_sec\": " << Fmt("%.4f", point.load.elapsed_sec)
           << ", \"max_node_share\": " << Fmt("%.3f", point.max_node_share)
           << ", \"rebalance_moves\": " << point.rebalance_moves << "}";
    }
    json << "],\n";
    json << "  \"speedup\": {\"at_4_nodes\": " << Fmt("%.3f", speedup_4)
         << ", \"at_8_nodes\": " << Fmt("%.3f", speedup_8)
         << ", \"enforced\": " << (enforce_speedup ? "true" : "false")
         << "},\n";
    json << "  \"node_kill\": {\"ok\": " << kill_load.ok
         << ", \"failed\": " << kill_load.failed
         << ", \"reroutes\": " << kill_reroutes
         << ", \"zero_failures\": " << (kill_ok ? "true" : "false") << "},\n";
    json << "  \"shape_holds\": " << (shape_holds ? "true" : "false")
         << "\n";
    json << "}\n";
  }

  return shape_holds ? 0 : 1;
}
