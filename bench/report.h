#ifndef DFLOW_BENCH_REPORT_H_
#define DFLOW_BENCH_REPORT_H_

// Shared formatting helpers for the experiment-reproduction binaries.
// Each bench prints a header naming the paper artifact it regenerates and
// rows of "paper says / we measure" so EXPERIMENTS.md can be checked
// against the binary output directly.

#include <cstdio>
#include <string>

namespace dflow::bench {

inline void Header(const std::string& experiment, const std::string& claim) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper: %s\n", claim.c_str());
  std::printf("---------------------------------------------------------------"
              "-----------------\n");
}

inline void Row(const std::string& label, const std::string& value) {
  std::printf("  %-48s %s\n", label.c_str(), value.c_str());
}

inline void Note(const std::string& text) {
  std::printf("  -- %s\n", text.c_str());
}

inline void Footer(bool shape_holds) {
  std::printf("---------------------------------------------------------------"
              "-----------------\n");
  std::printf("shape_holds: %s\n\n", shape_holds ? "YES" : "NO");
}

}  // namespace dflow::bench

#endif  // DFLOW_BENCH_REPORT_H_
