// Figure 1 reproduction: the Arecibo data flow, executed as a workflow
// over one week's observing block, printing per-stage volumes and the
// Graphviz rendering of the graph.

#include <cstdio>

#include "arecibo/flow.h"
#include "bench/report.h"
#include "core/flow_graph.h"
#include "core/flow_runner.h"
#include "sim/simulation.h"
#include "util/units.h"

int main() {
  using namespace dflow;
  using S = arecibo::AreciboFlowStages;

  bench::Header(
      "Figure 1 -- Arecibo data flow (one 400-pointing / 14 TB block)",
      "acquisition -> local QA -> disk transport -> CTC archive -> "
      "PALFA consortium processing -> consolidation -> meta-analysis DB "
      "-> NVO");

  arecibo::SurveyConfig config;
  sim::Simulation simulation;
  core::FlowGraph graph;
  if (!arecibo::BuildAreciboFlow(config, &graph).ok()) {
    return 1;
  }
  core::FlowRunner runner(&simulation, &graph);
  // The paper's processor question: give the consortium stage a pool in
  // the 50-200 range; 4 tape drives at the CTC.
  (void)runner.SetWorkers(S::kConsortium, 128);
  (void)runner.SetWorkers(S::kTapeArchive, 4);
  (void)arecibo::ConfigureAreciboSites(&runner);
  (void)arecibo::InjectObservingBlock(config, &runner);
  if (!runner.Run().ok()) {
    return 1;
  }

  std::printf("%s\n", runner.Report().c_str());
  bench::Row("raw into archive",
             FormatBytes(runner.MetricsFor(S::kTapeArchive).bytes_in));
  bench::Row("data products out of consortium",
             FormatBytes(runner.MetricsFor(S::kConsortium).bytes_out));
  bench::Row("refined candidates",
             FormatBytes(runner.MetricsFor(S::kMetaAnalysis).bytes_out));
  bench::Row("block wall time (virtual)", FormatDuration(simulation.Now()));
  bench::Row("products reaching NVO",
             std::to_string(runner.SinkOutputs(S::kNvo).size()));
  // Per-product provenance: code release + processing site per step.
  const auto& chain = runner.SinkOutputs(S::kNvo)[0].provenance;
  std::string sites;
  for (const auto& step : chain.steps()) {
    if (!sites.empty()) {
      sites += " -> ";
    }
    sites += step.site;
  }
  bench::Row("provenance site chain", sites);

  std::printf("\nGraphviz (annotated with measured volumes):\n%s\n",
              runner.AnnotatedDot().c_str());

  bool shape = runner.MetricsFor(S::kTapeArchive).bytes_in == 14 * kTB &&
               runner.SinkOutputs(S::kNvo).size() == 400;
  bench::Footer(shape);
  return shape ? 0 : 1;
}
