// E15: the cross-project comparison of Section 5 ("Summary and Next
// Steps"), regenerated from the three configured flows: raw-data
// accumulation rates, the two-orders-of-magnitude scale gap, transport
// choices, and the common database-backed dissemination layer.

#include <cstdio>

#include "arecibo/survey.h"
#include "bench/report.h"
#include "eventstore/flow.h"
#include "net/network_link.h"
#include "net/shipment.h"
#include "sim/simulation.h"
#include "util/units.h"

int main() {
  using namespace dflow;

  bench::Header("E15 -- cross-project summary (Section 5)",
                "Arecibo and WebLab are petabyte-scale with off-site raw "
                "sources; CLEO is ~two orders of magnitude smaller with "
                "on-site processing; all three converge on relational "
                "dissemination");

  arecibo::SurveyPipeline arecibo_pipeline{arecibo::SurveyConfig{}};
  eventstore::CleoFlowConfig cleo;
  const double weblab_rate = 250.0 * kGB / kDay;
  const int64_t weblab_total = 544 * kTB;           // Compressed, to 2005.
  const int64_t weblab_uncompressed = 5 * kPB;

  double arecibo_rate = arecibo_pipeline.MeanRawRate();
  double cleo_rate = static_cast<double>(cleo.raw_bytes_per_run) *
                     cleo.num_runs / kDay;

  std::printf("  %-12s %-16s %-16s %-24s %s\n", "project", "raw rate",
              "archive scale", "raw transport", "on-site processing?");
  std::printf("  %-12s %-16s %-16s %-24s %s\n", "Arecibo",
              FormatRate(arecibo_rate).c_str(), "~1 PB (5 yr)",
              "physical ATA disks", "no (off-island)");
  std::printf("  %-12s %-16s %-16s %-24s %s\n", "CLEO",
              FormatRate(cleo_rate).c_str(), ">90 TB",
              "on-site (MC on USB disks)", "yes");
  std::printf("  %-12s %-16s %-16s %-24s %s\n", "WebLab",
              FormatRate(weblab_rate).c_str(), "544 TB compressed",
              "dedicated 100 Mb/s link", "ingest-dominated");

  // Two-orders-of-magnitude claim: PB-scale vs CLEO's ~90 TB ("a
  // difference of about two orders of magnitude").
  double scale_gap = static_cast<double>(kPB) / (90.0 * kTB);
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.0fx (paper: 'about two orders of "
                "magnitude')", scale_gap);
  bench::Row("Arecibo or WebLab : CLEO archive scale", buf);
  std::snprintf(buf, sizeof(buf), "%.1fx",
                static_cast<double>(weblab_uncompressed) / weblab_total);
  bench::Row("WebLab compression leverage (5 PB -> 544 TB)", buf);

  // Transport sanity per project.
  sim::Simulation simulation;
  net::ShipmentChannel disks(&simulation, "ata", net::ShipmentConfig{});
  net::NetworkLinkConfig thin;
  thin.bandwidth_bits_per_sec = 20.0e6;
  net::NetworkLink island(&simulation, "arecibo_wan", thin);
  net::NetworkLinkConfig internet2;
  internet2.bandwidth_bits_per_sec = 100.0e6;
  net::NetworkLink ia(&simulation, "internet2", internet2);

  bool arecibo_choice = disks.NominalBandwidth() > arecibo_rate &&
                        island.NominalBandwidth() < arecibo_rate;
  bool weblab_choice = ia.NominalBandwidth() > weblab_rate;
  bench::Row("Arecibo: disks sustain the flow, WAN cannot",
             arecibo_choice ? "confirmed" : "NOT confirmed");
  bench::Row("WebLab: dedicated link sustains the target",
             weblab_choice ? "confirmed" : "NOT confirmed");
  bench::Row("CLEO: raw rate fits on-site processing",
             cleo_rate < 10e6 ? "confirmed (MB/s scale)" : "check");

  bench::Note("dissemination commonality: all three projects in this repo "
              "serve data products from the same embedded relational "
              "engine (dflow_db) -- candidates DB, EventStore metadata, "
              "page/link metadata -- mirroring the paper's observation "
              "that every project moved from flat files to database-backed "
              "Web Services");

  bool shape = scale_gap > 10 && scale_gap < 1000 && arecibo_choice &&
               weblab_choice;
  bench::Footer(shape);
  return shape ? 0 : 1;
}
