// E16 (extension): media migration between storage generations.
// Paper (Section 2.2): "A key issue ... is the migration of the data to
// new storage technologies as they emerge. Storage media costs undoubtedly
// will decrease, but manpower requirements for migrating the data are
// significant and care is needed to avoid loss of data."

#include <cstdio>

#include "bench/report.h"
#include "sim/simulation.h"
#include "storage/migration.h"
#include "util/units.h"

int main() {
  using namespace dflow;
  using storage::MediaMigration;
  using storage::MigrationConfig;
  using storage::TapeLibrary;
  using storage::TapeLibraryConfig;

  bench::Header("E16 -- migrating an archive generation (Section 2.2)",
                "migration time vs parallel streams; retries keep data "
                "loss at zero even on degraded source media");

  // A 200-file / 100 GB-each slice of the Arecibo archive (20 TB).
  auto populate = [](sim::Simulation* simulation, TapeLibrary* tape) {
    for (int i = 0; i < 200; ++i) {
      (void)tape->Write("block_" + std::to_string(i), 100 * kGB, nullptr);
    }
    simulation->Run();
  };

  std::printf("  %-10s %-14s %-10s %s\n", "streams", "virtual time",
              "retries", "lost");
  double serial_days = 0.0, parallel_days = 0.0;
  for (int streams : {1, 2, 4, 8}) {
    sim::Simulation simulation;
    TapeLibraryConfig drives;
    drives.num_drives = 8;
    drives.capacity_bytes = 50 * kPB;
    TapeLibrary gen1(&simulation, "gen1", drives);
    TapeLibrary gen2(&simulation, "gen2", drives);
    populate(&simulation, &gen1);
    MigrationConfig config;
    config.parallel_streams = streams;
    config.read_error_probability = 0.02;  // Aging source media.
    config.max_retries = 10;
    MediaMigration migration(&simulation, &gen1, &gen2, config, 13);
    (void)migration.Run(nullptr);
    simulation.Run();
    const auto& report = migration.report();
    std::printf("  %-10d %-14s %-10lld %lld\n", streams,
                FormatDuration(report.virtual_seconds).c_str(),
                static_cast<long long>(report.retries),
                static_cast<long long>(report.files_lost));
    if (streams == 1) {
      serial_days = report.virtual_seconds;
    }
    if (streams == 8) {
      parallel_days = report.virtual_seconds;
    }
  }

  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.1fx with 8 streams",
                serial_days / parallel_days);
  bench::Row("migration speedup", buf);

  // The care-vs-loss tradeoff: no retries on bad media loses data.
  sim::Simulation simulation;
  TapeLibraryConfig drives;
  drives.num_drives = 8;
  drives.capacity_bytes = 50 * kPB;
  TapeLibrary gen1(&simulation, "gen1", drives);
  TapeLibrary gen2(&simulation, "gen2", drives);
  populate(&simulation, &gen1);
  MigrationConfig careless;
  careless.read_error_probability = 0.05;
  careless.max_retries = 0;
  MediaMigration reckless(&simulation, &gen1, &gen2, careless, 17);
  (void)reckless.Run(nullptr);
  simulation.Run();
  std::snprintf(buf, sizeof(buf), "%lld of 200 files lost without retries",
                static_cast<long long>(reckless.report().files_lost));
  bench::Row("the 'care is needed' clause", buf);
  bench::Row("verification catches the loss",
             reckless.Verify().IsCorruption() ? "yes" : "NO");

  bool shape = serial_days / parallel_days > 2.0 &&
               reckless.report().files_lost > 0;
  bench::Footer(shape);
  return shape ? 0 : 1;
}
