// E9: grade/timestamp snapshot semantics and provenance checking.
// Paper (Section 3.2): "a consistent set of data is fully identified by the
// name of a grade and a time at which to snapshot that grade"; "EventStore
// finds the most recent snapshot prior to the specified date"; "Data added
// for the first time ... will appear in the snapshot"; "We can detect the
// majority of usage discrepancies by comparing the hashes."

#include <chrono>
#include <cstdio>

#include "bench/report.h"
#include "eventstore/event_store.h"
#include "provenance/provenance.h"

namespace {

using namespace dflow;
using eventstore::EventStore;
using eventstore::FileEntry;
using eventstore::StoreScale;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  bench::Header("E9 -- snapshot reproducibility, first-time data, and "
                "provenance hashes",
                "pinned (grade, timestamp) always resolves the same file "
                "set; new data appears without moving the timestamp; hash "
                "comparison flags software/calibration discrepancies");

  auto store_or = EventStore::Create(StoreScale::kCollaboration);
  EventStore& store = **store_or;

  // Three reconstruction generations over 2000 runs.
  const int64_t runs = 2000;
  for (int64_t run = 1; run <= runs; ++run) {
    (void)store.RegisterFile(
        {run, "recon", "R1", 100, 1000, "/hsm/r1", {}});
    (void)store.RegisterFile(
        {run, "recon", "R2", 500, 1000, "/hsm/r2", {}});
    if (run <= runs / 2) {
      (void)store.RegisterFile(
          {run, "recon", "R3", 900, 1000, "/hsm/r3", {}});
    }
  }
  (void)store.AssignGrade("physics", 200, {1, runs}, "recon", "R1");
  (void)store.AssignGrade("physics", 600, {1, runs}, "recon", "R2");
  (void)store.AssignGrade("physics", 950, {1, runs / 2}, "recon", "R3");

  // Reproducibility: resolve an analysis pinned at ts=300 repeatedly.
  double start = NowSeconds();
  auto first = store.Resolve("physics", 300);
  double resolve_seconds = NowSeconds() - start;
  auto second = store.Resolve("physics", 300);
  bool reproducible = first->size() == second->size();
  for (size_t i = 0; reproducible && i < first->size(); ++i) {
    reproducible = (*first)[i].version == (*second)[i].version &&
                   (*first)[i].run == (*second)[i].run;
  }
  bench::Row("files resolved at (physics, ts=300)",
             std::to_string(first->size()));
  bench::Row("re-resolution bit-identical", reproducible ? "yes" : "NO");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f ms over %lld files",
                resolve_seconds * 1000, static_cast<long long>(runs * 2.5));
  bench::Row("resolve latency", buf);

  // Snapshot boundaries: each analysis date picks its generation.
  bool boundaries = (*store.Resolve("physics", 300))[0].version == "R1" &&
                    (*store.Resolve("physics", 700))[0].version == "R2" &&
                    (*store.Resolve("physics", 1000))[0].version == "R3" &&
                    (*store.Resolve("physics", 1000)).back().version == "R2";
  bench::Row("most-recent-prior-snapshot selection", boundaries ? "yes"
                                                                : "NO");

  // First-time data: new runs appear in the pinned ts=300 analysis.
  size_t before = first->size();
  (void)store.RegisterFile(
      {runs + 1, "recon", "R3", 2000, 1000, "/hsm/new", {}});
  size_t after = store.Resolve("physics", 300)->size();
  bench::Row("new run appears in pinned snapshot",
             after == before + 1 ? "yes" : "NO");

  // Provenance discrepancy detection.
  prov::ProcessingStep step_a;
  step_a.module = "reconstruction";
  step_a.version = {"Recon", "Feb13_04_P2", 1079049600};
  step_a.parameters = {{"calibration", "cal_2004_03"}};
  step_a.input_files = {"raw_run_7"};
  prov::ProcessingStep step_b = step_a;
  step_b.parameters[0].second = "cal_2004_04";  // Silent calibration bump.
  prov::ProvenanceRecord record_a, record_b;
  record_a.AddStep(step_a);
  record_b.AddStep(step_b);
  bool detected = !record_a.ConsistentWith(record_b);
  bench::Row("calibration change detected by MD5 comparison",
             detected ? "yes" : "NO");
  if (detected) {
    auto diff = prov::ProvenanceRecord::Diff(record_a, record_b);
    for (const std::string& line : diff) {
      bench::Note("diff: " + line);
    }
  }

  bool shape = reproducible && boundaries && after == before + 1 && detected;
  bench::Footer(shape);
  return shape ? 0 : 1;
}
