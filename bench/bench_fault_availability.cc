// E-F1: availability and throughput under injected faults.
//
// The paper's systems all kept flowing through routine component failure:
// Arecibo tape drives died and were repaired, disk shipments arrived
// damaged, WebLab crawl feeds stalled — and in each case the pipeline's
// answer was retry-with-backoff plus operator triage for the residue, not
// perfection. This bench sweeps a transient-fault rate across a three-stage
// acquire -> reduce -> archive flow (with occasional whole-stage crashes)
// and measures what the operations staff would have plotted: availability
// (fraction of products that survive to the sink), sustained throughput,
// retry volume, and the dead-letter residue.
//
// Output includes machine-readable JSON lines (one per swept rate) so the
// curves can be regenerated without parsing the human table:
//   {"fault_rate_per_hour": ..., "availability": ..., ...}
//
// Shape checks:
//   * zero fault rate => availability 1.0 and zero retries;
//   * availability degrades (weakly) monotonically as the rate rises;
//   * at the highest rate, retrying still beats fail-fast by a wide margin;
//   * the whole sweep is deterministic: same seed => byte-identical report.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/report.h"
#include "core/flow_graph.h"
#include "core/flow_runner.h"
#include "fault/adapters.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "sim/simulation.h"
#include "util/units.h"

namespace {

using namespace dflow;

constexpr int kProducts = 400;
constexpr int64_t kProductBytes = 2 * kGB;
constexpr double kInjectSpacingSec = 90.0;
constexpr double kHorizonSec = kProducts * kInjectSpacingSec + 4 * 3600.0;

struct SweepPoint {
  double fault_rate_per_hour = 0.0;
  bool retries_enabled = true;

  // Measured:
  double availability = 0.0;
  double throughput_mb_s = 0.0;
  int64_t errors = 0;
  int64_t retries = 0;
  int64_t dead_lettered = 0;
  int64_t faults_injected = 0;
  double makespan_hours = 0.0;
  std::string report;       // Full per-stage table, for the determinism check.
  std::string fingerprint;  // Fault plan fingerprint.
};

std::shared_ptr<core::LambdaStage> PassThrough(const std::string& name,
                                               double seconds_per_product) {
  return std::make_shared<core::LambdaStage>(
      name, core::StageCosts{seconds_per_product, 0.0},
      [](const core::DataProduct& p)
          -> Result<std::vector<core::DataProduct>> {
        return std::vector<core::DataProduct>{p};
      });
}

/// Runs the scenario at one fault rate. Everything is derived from `seed`,
/// so a point is replayable in isolation.
SweepPoint RunPoint(uint64_t seed, double fault_rate_per_hour,
                    bool retries_enabled) {
  SweepPoint point;
  point.fault_rate_per_hour = fault_rate_per_hour;
  point.retries_enabled = retries_enabled;

  sim::Simulation simulation;
  core::FlowGraph graph;
  DFLOW_CHECK_OK(graph.AddStage(PassThrough("acquire", 5.0)));
  DFLOW_CHECK_OK(graph.AddStage(PassThrough("reduce", 40.0)));
  DFLOW_CHECK_OK(graph.AddStage(PassThrough("archive", 15.0)));
  DFLOW_CHECK_OK(graph.Connect("acquire", "reduce"));
  DFLOW_CHECK_OK(graph.Connect("reduce", "archive"));

  core::FlowRunner runner(&simulation, &graph, /*retry_seed=*/seed ^ 0x5eed);
  DFLOW_CHECK_OK(runner.SetWorkers("reduce", 4));
  DFLOW_CHECK_OK(runner.SetWorkers("archive", 2));
  core::RetryPolicy policy;
  policy.max_attempts = retries_enabled ? 4 : 1;
  policy.backoff_initial_sec = 30.0;
  policy.backoff_multiplier = 2.0;
  policy.backoff_max_sec = 600.0;
  policy.jitter_fraction = 0.2;
  DFLOW_CHECK_OK(runner.SetRetryPolicy("reduce", policy));
  DFLOW_CHECK_OK(runner.SetRetryPolicy("archive", policy));

  for (int i = 0; i < kProducts; ++i) {
    core::DataProduct product;
    product.name = "block_" + std::to_string(i);
    product.bytes = kProductBytes;
    DFLOW_CHECK_OK(
        runner.Inject("acquire", std::move(product), i * kInjectSpacingSec));
  }

  // Fault mix: mostly transient per-product errors at the reduce stage,
  // plus rarer crash/restart events at both processing stages. All rates
  // scale together with the swept knob.
  const double rate = fault_rate_per_hour / 3600.0;
  fault::FaultPlanConfig config;
  config.horizon_sec = kHorizonSec;
  config.processes.push_back({fault::FaultKind::kTransientStageError, "reduce",
                              rate, 60.0, /*count=*/2});
  config.processes.push_back({fault::FaultKind::kTransientStageError,
                              "archive", rate / 4.0, 60.0, /*count=*/1});
  config.processes.push_back({fault::FaultKind::kStageCrash, "reduce",
                              rate / 10.0, /*mean_duration_sec=*/300.0, 1});
  auto plan = fault::FaultPlan::Generate(seed, config);
  DFLOW_CHECK_OK(plan.status());
  point.fingerprint = plan->Fingerprint();
  point.faults_injected = static_cast<int64_t>(plan->events().size());

  fault::Injector injector(&simulation, *plan);
  fault::ArmFlowRunnerStage(injector, &runner, "reduce");
  fault::ArmFlowRunnerStage(injector, &runner, "archive");
  DFLOW_CHECK_OK(injector.Arm());

  DFLOW_CHECK_OK(runner.Run());

  const int64_t delivered =
      static_cast<int64_t>(runner.SinkOutputs("archive").size());
  point.availability = static_cast<double>(delivered) / kProducts;
  const double makespan = simulation.Now();
  point.makespan_hours = makespan / 3600.0;
  point.throughput_mb_s =
      makespan > 0.0
          ? static_cast<double>(delivered * kProductBytes) / makespan / 1.0e6
          : 0.0;
  point.errors = runner.total_errors();
  point.retries = runner.total_retries();
  point.dead_lettered = static_cast<int64_t>(runner.dead_letters().size());
  point.report = runner.Report();
  return point;
}

void PrintJson(const SweepPoint& p) {
  std::printf("  {\"fault_rate_per_hour\": %.3f, \"retries_enabled\": %s, "
              "\"availability\": %.4f, \"throughput_mb_s\": %.2f, "
              "\"errors\": %lld, \"retries\": %lld, \"dead_lettered\": %lld, "
              "\"faults_injected\": %lld, \"makespan_hours\": %.2f, "
              "\"plan_fingerprint\": \"%s\"}\n",
              p.fault_rate_per_hour, p.retries_enabled ? "true" : "false",
              p.availability, p.throughput_mb_s,
              static_cast<long long>(p.errors),
              static_cast<long long>(p.retries),
              static_cast<long long>(p.dead_lettered),
              static_cast<long long>(p.faults_injected), p.makespan_hours,
              p.fingerprint.c_str());
}

}  // namespace

int main() {
  bench::Header(
      "E-F1 -- pipeline availability and throughput vs injected fault rate",
      "the case-study pipelines survived routine component failure via "
      "retry + operator triage, not fault-free hardware");

  constexpr uint64_t kSeed = 20060402;  // ICDE'06, April 2006.
  const std::vector<double> rates_per_hour = {0.0, 0.5, 1.0, 2.0, 4.0,
                                              8.0, 16.0, 32.0};

  std::printf("  %-12s %-13s %-12s %-8s %-8s %-6s %-8s\n", "faults/hr",
              "availability", "MB/s", "errors", "retries", "dead",
              "makespan");
  std::vector<SweepPoint> sweep;
  for (double rate : rates_per_hour) {
    SweepPoint p = RunPoint(kSeed, rate, /*retries_enabled=*/true);
    std::printf("  %-12.1f %-13.4f %-12.2f %-8lld %-8lld %-6lld %.1f h\n",
                p.fault_rate_per_hour, p.availability, p.throughput_mb_s,
                static_cast<long long>(p.errors),
                static_cast<long long>(p.retries),
                static_cast<long long>(p.dead_lettered), p.makespan_hours);
    sweep.push_back(std::move(p));
  }

  // The retry ablation: same faults, fail-fast stages.
  const double worst_rate = rates_per_hour.back();
  SweepPoint failfast = RunPoint(kSeed, worst_rate, /*retries_enabled=*/false);
  SweepPoint const& retrying = sweep.back();

  std::printf("\nJSON:\n");
  for (const SweepPoint& p : sweep) {
    PrintJson(p);
  }
  PrintJson(failfast);

  std::printf("\n");
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%.4f vs %.4f",
                retrying.availability, failfast.availability);
  bench::Row("availability at " + std::to_string(static_cast<int>(worst_rate))
                 + "/hr: retry vs fail-fast",
             buf);
  bench::Row("dead letters at worst rate (retrying)",
             std::to_string(retrying.dead_lettered));
  bench::Note("every point above replays bit-identically from seed " +
              std::to_string(kSeed) +
              "; the plan fingerprint in the JSON is the md5 of the full "
              "fault schedule");

  // Determinism: the worst-case point re-run from the same seed must match
  // byte-for-byte, down to the per-stage report table.
  SweepPoint replay = RunPoint(kSeed, worst_rate, /*retries_enabled=*/true);
  const bool deterministic = replay.report == retrying.report &&
                             replay.fingerprint == retrying.fingerprint &&
                             replay.availability == retrying.availability &&
                             replay.retries == retrying.retries;
  bench::Row("same-seed replay byte-identical",
             deterministic ? "yes" : "NO");

  bool monotone = true;
  for (size_t i = 1; i < sweep.size(); ++i) {
    // Allow a hair of non-monotonicity from discreteness: one product out
    // of kProducts.
    if (sweep[i].availability >
        sweep[i - 1].availability + 1.0 / kProducts + 1e-9) {
      monotone = false;
    }
  }

  const bool shape = deterministic && monotone &&
                     sweep.front().availability == 1.0 &&
                     sweep.front().retries == 0 &&
                     sweep.back().retries > 0 &&
                     retrying.availability > failfast.availability + 0.05;
  bench::Footer(shape);
  return shape ? 0 : 1;
}
