// E8: merge-based ingestion vs long-running open transactions.
// Paper (Section 3.2): "Rather than having long-running jobs hold lengthy
// open transactions on the main data repository, it proved simpler to
// create a personal EventStore for the operation, which is merged into the
// larger store upon successful completion ... the highest degree of
// integrity protection for the centrally managed data repositories."

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "bench/report.h"
#include "eventstore/event_store.h"
#include "util/units.h"

namespace {

using namespace dflow;
using eventstore::EventStore;
using eventstore::FileEntry;
using eventstore::StoreScale;

FileEntry MakeFile(int64_t run, const std::string& version) {
  FileEntry entry;
  entry.run = run;
  entry.data_type = "mc";
  entry.version = version;
  entry.registered_at = run;
  entry.bytes = 5'000'000;
  entry.location = "/mc/" + std::to_string(run);
  return entry;
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  bench::Header("E8 -- merge-based ingestion vs long open transactions",
                "merging a personal store is a short atomic operation; a "
                "crash mid-job loses nothing already merged and never "
                "corrupts the central repository");

  std::filesystem::path wal =
      std::filesystem::temp_directory_path() / "dflow_bench_merge.wal";
  std::filesystem::remove(wal);

  const int kJobs = 10;
  const int kFilesPerJob = 200;

  // --- Strategy A: each offsite job fills a personal store; the central
  // store merges each finished job in one short transaction. ---
  double merge_seconds = 0.0;
  double max_single_merge = 0.0;
  {
    auto central = EventStore::Create(StoreScale::kCollaboration,
                                      wal.string());
    for (int job = 0; job < kJobs; ++job) {
      auto personal = EventStore::Create(StoreScale::kPersonal);
      for (int i = 0; i < kFilesPerJob; ++i) {
        (void)(*personal)->RegisterFile(
            MakeFile(job * kFilesPerJob + i, "MC_05A"));
      }
      double start = NowSeconds();
      if (!(*central)->Merge(**personal).ok()) {
        return 1;
      }
      double took = NowSeconds() - start;
      merge_seconds += took;
      max_single_merge = std::max(max_single_merge, took);
    }
  }
  // Simulated crash AFTER 10 merges, mid-way through an 11th job that is
  // still only in its personal store: reopen and count what survived.
  auto recovered = EventStore::Create(StoreScale::kCollaboration,
                                      wal.string());
  int64_t survived_merge = (*recovered)->NumFiles();

  bench::Row("files ingested by 10 merges",
             std::to_string(survived_merge) + " / " +
                 std::to_string(kJobs * kFilesPerJob));
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.1f ms total, %.1f ms worst case",
                merge_seconds * 1000, max_single_merge * 1000);
  bench::Row("central-store lock time (merges)", buf);

  // --- Strategy B: one long-running job holds an open transaction on the
  // central store for its whole duration and crashes before COMMIT. ---
  std::filesystem::path wal_b =
      std::filesystem::temp_directory_path() / "dflow_bench_longtxn.wal";
  std::filesystem::remove(wal_b);
  {
    auto central = EventStore::Create(StoreScale::kCollaboration,
                                      wal_b.string());
    db::Database& db = (*central)->database();
    if (!db.Begin().ok()) {
      return 1;
    }
    for (int i = 0; i < kJobs * kFilesPerJob; ++i) {
      (void)(*central)->RegisterFile(MakeFile(i, "MC_05A"));
    }
    // Crash: the store is destroyed with the transaction open.
  }
  auto recovered_b = EventStore::Create(StoreScale::kCollaboration,
                                        wal_b.string());
  int64_t survived_long = (*recovered_b)->NumFiles();
  bench::Row("files surviving crash of one long transaction",
             std::to_string(survived_long) + " / " +
                 std::to_string(kJobs * kFilesPerJob));
  bench::Row("files surviving crash under merge strategy",
             std::to_string(survived_merge) + " / " +
                 std::to_string(kJobs * kFilesPerJob) +
                 " (completed jobs all durable)");
  bench::Note("with merges, the central store is locked only for "
              "milliseconds per job instead of the job's whole lifetime, "
              "and a crash costs at most the unfinished job");

  std::filesystem::remove(wal);
  std::filesystem::remove(wal_b);

  bool shape = survived_merge == kJobs * kFilesPerJob && survived_long == 0 &&
               max_single_merge < 5.0;
  bench::Footer(shape);
  return shape ? 0 : 1;
}
