// Microbenchmarks of the Arecibo signal-processing kernels: FFT,
// dedispersion, harmonic-summed search, and wlz (de)compression -- the
// CPU costs behind the paper's "50 to 200 processors" estimate.

#include <cmath>
#include <complex>
#include <numbers>

#include <benchmark/benchmark.h>

#include "arecibo/dedisperse.h"
#include "arecibo/fft.h"
#include "arecibo/search.h"
#include "arecibo/spectrometer.h"
#include "util/compress.h"
#include "util/logging.h"
#include "util/rng.h"

namespace {

using namespace dflow;
using namespace dflow::arecibo;

void BM_Fft(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<std::complex<double>> data(n);
  for (auto& x : data) {
    x = {rng.Normal(), 0.0};
  }
  for (auto _ : state) {
    auto copy = data;
    benchmark::DoNotOptimize(Fft(copy));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 18);

void BM_FftTwiddleTable(benchmark::State& state) {
  // The hoisted process-wide twiddle cache: after the first call for a
  // size, every lookup is one acquire load. The micro-check pins both
  // halves of the contract: (a) repeated calls return the SAME table (no
  // per-call rebuild — the hoist that removed the per-Fft mutex+map walk),
  // and (b) every entry equals the direct cos/sin evaluation, so the cache
  // can never drift from exp(-2*pi*i*j/n).
  const size_t n = 1 << 14;
  const auto& table = FftTwiddleTable(n);
  DFLOW_CHECK(&FftTwiddleTable(n) == &table);  // Stable across calls.
  DFLOW_CHECK(table.size() == n / 2);
  for (size_t j = 0; j < n / 2; ++j) {
    const double angle = -2.0 * std::numbers::pi * static_cast<double>(j) /
                         static_cast<double>(n);
    DFLOW_CHECK(table[j] ==
                std::complex<double>(std::cos(angle), std::sin(angle)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(&FftTwiddleTable(n));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FftTwiddleTable);

void BM_DedisperseOneTrial(benchmark::State& state) {
  SpectrometerModel model(96, 1 << 14, 6.4e-5, 2);
  DynamicSpectrum spectrum = model.Generate({}, {});
  Dedisperser dedisperser(MakeDmTrials(300.0, 4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dedisperser.Dedisperse(spectrum, 150.0));
  }
  state.SetBytesProcessed(state.iterations() * spectrum.SizeBytes());
}
BENCHMARK(BM_DedisperseOneTrial);

void BM_DelayShiftTable(benchmark::State& state) {
  // The hoisted per-(dm, channel) shift table: one delay evaluation per
  // channel per call, amortized over every sample of the trial. The
  // micro-check pins the table against the direct per-channel formula so
  // the hoist can never drift from the physics.
  SpectrometerModel model(96, 1 << 14, 6.4e-5, 2);
  DynamicSpectrum spectrum = model.Generate({}, {});
  const double dm = 150.0;
  const std::vector<int64_t> table = DelayShiftTable(spectrum, dm);
  DFLOW_CHECK(table.size() == static_cast<size_t>(spectrum.num_channels));
  for (int c = 0; c < spectrum.num_channels; ++c) {
    const double delay = DispersionDelaySec(dm, spectrum.ChannelFreqMhz(c)) -
                         DispersionDelaySec(dm, spectrum.freq_hi_mhz);
    DFLOW_CHECK(table[static_cast<size_t>(c)] ==
                std::lround(delay / spectrum.sample_time_sec));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(DelayShiftTable(spectrum, dm));
  }
  state.SetItemsProcessed(state.iterations() * spectrum.num_channels);
}
BENCHMARK(BM_DelayShiftTable);

void BM_DedisperseAllTrials(benchmark::State& state) {
  // The full DM sweep (the P1 hot path) at bench scale; parallel on the
  // dflow::par shared pool.
  SpectrometerModel model(96, 1 << 13, 6.4e-5, 2);
  DynamicSpectrum spectrum = model.Generate({}, {});
  Dedisperser dedisperser(MakeDmTrials(300.0, static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dedisperser.DedisperseAll(spectrum));
  }
  state.SetBytesProcessed(state.iterations() * spectrum.SizeBytes() *
                          state.range(0));
}
BENCHMARK(BM_DedisperseAllTrials)->Arg(16)->Arg(64);

void BM_PeriodicitySearch(benchmark::State& state) {
  SpectrometerModel model(96, 1 << 14, 6.4e-5, 3);
  PulsarParams pulsar;
  pulsar.period_sec = 0.25;
  pulsar.dm = 100.0;
  pulsar.pulse_amplitude = 4.0;
  DynamicSpectrum spectrum = model.Generate({pulsar}, {});
  Dedisperser dedisperser(MakeDmTrials(300.0, 4));
  TimeSeries series = dedisperser.Dedisperse(spectrum, 100.0);
  SearchConfig config;
  PeriodicitySearch search(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.Search(series));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(series.samples.size()));
}
BENCHMARK(BM_PeriodicitySearch);

void BM_AccelerationSearch(benchmark::State& state) {
  SpectrometerModel model(96, 1 << 13, 6.4e-5, 4);
  DynamicSpectrum spectrum = model.Generate({}, {});
  Dedisperser dedisperser(MakeDmTrials(300.0, 2));
  TimeSeries series = dedisperser.Dedisperse(spectrum, 100.0);
  std::vector<double> trials;
  for (double a = -0.2; a <= 0.2001; a += 0.05) {
    trials.push_back(a);
  }
  AccelerationSearch search(SearchConfig{}, trials);
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.Search(series));
  }
  state.counters["accel_trials"] = static_cast<double>(trials.size());
}
BENCHMARK(BM_AccelerationSearch);

void BM_WlzCompress(benchmark::State& state) {
  Rng rng(5);
  std::string text;
  static const char* kWords[] = {"pulsar", "survey", "beam", "trial",
                                 "candidate"};
  for (int i = 0; i < 20000; ++i) {
    text += kWords[rng.Uniform(0, 4)];
    text += ' ';
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(WlzCompress(text));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_WlzCompress);

void BM_WlzDecompress(benchmark::State& state) {
  Rng rng(6);
  std::string text;
  for (int i = 0; i < 50000; ++i) {
    text.push_back(static_cast<char>('a' + rng.Uniform(0, 11)));
  }
  std::string compressed = WlzCompress(text);
  for (auto _ : state) {
    benchmark::DoNotOptimize(WlzDecompress(compressed));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_WlzDecompress);

}  // namespace

BENCHMARK_MAIN();
