// E2: Arecibo storage arithmetic.
// Paper (Section 2.1): "A useful data block consists of 400 telescope
// pointings obtained in one week, or about 35 hours of telescope time. The
// corresponding raw data require 14 Terabytes of storage. Dedispersion
// entails summing over the frequency channels with about 1000 different
// trial values ... These time series require storage about equal to that of
// the original raw data. The processing is iterative ... so a minimum of
// 30 Terabytes of storage is required instantaneously."

#include <cstdio>

#include "arecibo/dedisperse.h"
#include "arecibo/spectrometer.h"
#include "arecibo/survey.h"
#include "bench/report.h"
#include "storage/disk.h"
#include "util/units.h"

int main() {
  using namespace dflow;

  bench::Header("E2 -- Arecibo block storage requirements",
                "14 TB raw per weekly block; dedispersed ~= raw; >=30 TB "
                "instantaneous");

  arecibo::SurveyPipeline pipeline{arecibo::SurveyConfig{}};
  int64_t raw = pipeline.RawBytesPerBlock();
  int64_t dedispersed = pipeline.DedispersedBytesPerBlock();
  int64_t peak = pipeline.PeakBlockStorageBytes();

  bench::Row("raw per block (paper: 14 TB)", FormatBytes(raw));
  bench::Row("dedispersed per block (paper: ~raw)", FormatBytes(dedispersed));
  bench::Row("instantaneous peak (paper: >=30 TB)", FormatBytes(peak));

  // Validate the "about equal" claim from first principles at payload
  // scale: C channels of float vs ~1000 trials of double-summed series.
  arecibo::SurveyConfig payload;
  payload.num_channels = 960;  // ALFA-like channelization, scaled.
  payload.num_samples = 1 << 12;
  arecibo::SpectrometerModel model(payload.num_channels, payload.num_samples,
                                   payload.sample_time_sec, 1);
  arecibo::DynamicSpectrum spectrum = model.Generate({}, {});
  arecibo::Dedisperser dedisperser(arecibo::MakeDmTrials(300.0, 1000));
  int64_t raw_payload = spectrum.SizeBytes();
  int64_t dedispersed_payload = dedisperser.OutputBytes(spectrum);
  double ratio = static_cast<double>(dedispersed_payload) /
                 static_cast<double>(raw_payload);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2fx", ratio);
  bench::Row("payload check: dedispersed/raw at 1000 trials", buf);
  bench::Note("1000 trials x 8-byte series vs 960 channels x 4-byte raw "
              "gives ~2x; with 16-bit raw samples and float series the "
              "paper's 'about equal' holds -- same order either way");

  // Provisioning: does a 30 TB staging volume fit the peak? A 28 TB one?
  storage::DiskVolume staging("staging_30tb", 30 * kTB, 1.0e9, 0.01);
  bool fits_30 = staging.Allocate(peak).ok();
  storage::DiskVolume small("staging_28tb", 28 * kTB, 1.0e9, 0.01);
  bool fits_28 = small.Allocate(peak).ok();
  bench::Row("fits in 30 TB staging volume", fits_30 ? "yes" : "no");
  bench::Row("fits in 28 TB staging volume", fits_28 ? "yes (!)" : "no");

  // Survey totals.
  arecibo::SurveyConfig config;
  bench::Row("survey raw total (paper: ~1 PB)",
             FormatBytes(config.survey_raw_bytes));
  bench::Row("mean raw rate over survey",
             FormatRate(pipeline.MeanRawRate()));

  bool shape = raw == 14 * kTB && dedispersed == raw && peak >= 30 * kTB &&
               fits_30 && !fits_28 && ratio > 0.5 && ratio < 5.0;
  bench::Footer(shape);
  return shape ? 0 : 1;
}
