// E12: ARC/DAT container characteristics (google-benchmark).
// Paper (Section 4.1): "Each compressed ARC file is about 100 MB big ...
// there is a metadata file in the DAT file format, also compressed ...
// average about 15 MB"; the preload subsystem "uncompresses them, parses
// them to extract relevant information".

#include <benchmark/benchmark.h>

#include <cstdio>

#include "util/units.h"
#include "weblab/arc_format.h"
#include "weblab/crawler.h"

namespace {

using namespace dflow;

std::vector<weblab::WebPage> SharedPages() {
  static const auto& pages = *new std::vector<weblab::WebPage>([] {
    weblab::CrawlerConfig config;
    config.initial_pages = 2000;
    weblab::SyntheticCrawler crawler(config);
    return crawler.NextCrawl().pages;
  }());
  return pages;
}

void BM_WriteArcFile(benchmark::State& state) {
  auto pages = SharedPages();
  int64_t raw_bytes = 0;
  for (const auto& page : pages) {
    raw_bytes += static_cast<int64_t>(page.content.size());
  }
  int64_t compressed = 0;
  for (auto _ : state) {
    std::string blob = weblab::WriteArcFile(pages);
    compressed = static_cast<int64_t>(blob.size());
    benchmark::DoNotOptimize(blob);
  }
  state.SetBytesProcessed(state.iterations() * raw_bytes);
  state.counters["compression_ratio"] =
      static_cast<double>(raw_bytes) / static_cast<double>(compressed);
}
BENCHMARK(BM_WriteArcFile);

void BM_ReadArcFile(benchmark::State& state) {
  std::string blob = weblab::WriteArcFile(SharedPages());
  int64_t pages = 0;
  for (auto _ : state) {
    auto decoded = weblab::ReadArcFile(blob);
    pages = static_cast<int64_t>(decoded->size());
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(blob.size()));
  state.counters["pages"] = static_cast<double>(pages);
}
BENCHMARK(BM_ReadArcFile);

void BM_WriteDatFile(benchmark::State& state) {
  auto pages = SharedPages();
  for (auto _ : state) {
    std::string blob = weblab::WriteDatFile(pages);
    benchmark::DoNotOptimize(blob);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(pages.size()));
}
BENCHMARK(BM_WriteDatFile);

void BM_ReadDatFile(benchmark::State& state) {
  std::string blob = weblab::WriteDatFile(SharedPages());
  for (auto _ : state) {
    auto decoded = weblab::ReadDatFile(blob);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(blob.size()));
}
BENCHMARK(BM_ReadDatFile);

// The paper's ARC:DAT size ratio (~100 MB : ~15 MB, i.e. ~6.7:1).
void BM_ArcToDatSizeRatio(benchmark::State& state) {
  auto pages = SharedPages();
  double ratio = 0.0;
  for (auto _ : state) {
    std::string arc = weblab::WriteArcFile(pages);
    std::string dat = weblab::WriteDatFile(pages);
    ratio = static_cast<double>(arc.size()) /
            static_cast<double>(dat.size());
    benchmark::DoNotOptimize(ratio);
  }
  state.counters["arc_to_dat_ratio"] = ratio;
}
BENCHMARK(BM_ArcToDatSizeRatio);

}  // namespace

BENCHMARK_MAIN();
