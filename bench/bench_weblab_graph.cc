// E13: single large-memory machine vs commodity cluster for web-graph
// research workloads.
// Paper (Section 4.2): "It is much easier to study the graph if it is
// loaded into the memory of a single large computer than distributed
// across many smaller ones, because network latency would be a serious
// concern. ... the decision was made to ... store the meta-information in
// a relational database on a single high-performance computer" (the
// 16-processor / 64 GB Unisys ES7000).

#include <chrono>
#include <cstdio>

#include "bench/report.h"
#include "util/units.h"
#include "weblab/cluster_model.h"
#include "weblab/crawler.h"
#include "weblab/web_graph.h"

namespace {

using namespace dflow;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  bench::Header("E13 -- big-memory node vs commodity cluster for graph "
                "research",
                "latency-bound traversals favour one shared memory; only "
                "bulk-synchronous batch work amortizes a cluster");

  weblab::BigMemoryMachine es7000;  // 16 cores, 64 GB.
  weblab::CommodityCluster cluster;

  // 2005-web-scale link analysis: "billions of pages".
  const int64_t web_edges = 20'000'000'000;
  const int64_t walk_edges = 50'000'000;  // A research traversal/sample.

  std::printf("  traversal workload (%lld edge hops, e.g. stratified "
              "sampling / random walks):\n",
              static_cast<long long>(walk_edges));
  std::printf("  %-26s %s\n", "single ES7000-class node",
              FormatDuration(weblab::TraversalTimeSingle(es7000, walk_edges))
                  .c_str());
  std::printf("  %-10s %-10s %s\n", "cluster", "nodes", "time");
  for (int nodes : {4, 16, 64, 256}) {
    cluster.nodes = nodes;
    std::printf("  %-10s %-10d %s\n", "", nodes,
                FormatDuration(
                    weblab::TraversalTimeCluster(cluster, walk_edges))
                    .c_str());
  }
  cluster.nodes = 64;
  double traversal_gap =
      weblab::TraversalTimeCluster(cluster, walk_edges) /
      weblab::TraversalTimeSingle(es7000, walk_edges);
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.0fx slower on the cluster",
                traversal_gap);
  bench::Row("traversal verdict", buf);

  std::printf("\n  batch workload (one PageRank-style pass over %lld "
              "edges):\n",
              static_cast<long long>(web_edges));
  double single_batch = weblab::BatchIterationTimeSingle(es7000, web_edges);
  double cluster_batch = weblab::BatchIterationTimeCluster(cluster, web_edges);
  std::printf("  %-26s %s\n", "single node",
              FormatDuration(single_batch).c_str());
  std::printf("  %-26s %s\n", "64-node cluster",
              FormatDuration(cluster_batch).c_str());
  bench::Row("batch verdict", cluster_batch < single_batch
                                  ? "cluster wins (production services)"
                                  : "single node wins");

  // Memory fit: the research subset fits the big node; the full web only
  // fits the cluster (the production-search side of the paper's contrast).
  weblab::CrawlerConfig crawler_config;
  crawler_config.initial_pages = 20000;
  weblab::SyntheticCrawler crawler(crawler_config);
  weblab::Crawl crawl = crawler.NextCrawl();
  std::vector<std::pair<std::string, std::string>> edges;
  for (const auto& page : crawl.pages) {
    for (const auto& link : page.links) {
      edges.emplace_back(page.url, link);
    }
  }
  double build_start = NowSeconds();
  weblab::WebGraph graph = weblab::WebGraph::Build(edges);
  double pagerank_start = NowSeconds();
  auto rank = graph.PageRank(20);
  double pagerank_seconds = NowSeconds() - pagerank_start;
  std::printf("\n  measured on a %lld-node / %lld-edge synthetic crawl:\n",
              static_cast<long long>(graph.num_nodes()),
              static_cast<long long>(graph.num_edges()));
  std::snprintf(buf, sizeof(buf), "%.1f ms (build %.1f ms)",
                pagerank_seconds * 1000,
                (pagerank_start - build_start) * 1000);
  bench::Row("in-memory PageRank x20 iterations", buf);
  bench::Row("graph memory footprint", FormatBytes(graph.MemoryBytes()));
  // Research subsets (~1/1000 of the web) fit the 64 GB machine.
  int64_t research_subset = graph.MemoryBytes() * 1000;
  bench::Row("x1000 research subset fits ES7000?",
             weblab::FitsSingleMachine(es7000, research_subset) ? "yes"
                                                                : "no");

  bool shape = traversal_gap > 50.0 && cluster_batch < single_batch &&
               !rank.empty();
  bench::Footer(shape);
  return shape ? 0 : 1;
}
