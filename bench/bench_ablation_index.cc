// Ablation: secondary indexing in the metadata databases.
// All three case studies hang their dissemination layer on relational
// metadata ("index management" is one of WebLab's tuning parameters, and
// the Arecibo candidate DB "supports interactive groupings of candidate
// signals"). This ablation measures point- and range-query latency with
// and without a B+Tree index as the table grows, plus the insert-side
// price of maintaining it.

#include <chrono>
#include <cstdio>

#include "bench/report.h"
#include "db/database.h"

namespace {

using namespace dflow;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

db::Schema CandidateSchema() {
  return db::Schema({{"pointing", db::Type::kInt64, false},
                     {"snr", db::Type::kDouble, false}});
}

void Fill(db::Database* db, int64_t rows) {
  std::vector<db::Row> batch;
  batch.reserve(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    batch.push_back(db::Row{
        db::Value::Int(i % 1000),
        db::Value::Double(6.0 + static_cast<double>(i % 50))});
  }
  (void)db->InsertMany("c", std::move(batch));
}

double QuerySeconds(db::Database* db, const std::string& sql, int reps) {
  double start = NowSeconds();
  for (int i = 0; i < reps; ++i) {
    auto result = db->Execute(sql);
    if (!result.ok()) {
      return -1.0;
    }
  }
  return (NowSeconds() - start) / reps;
}

}  // namespace

int main() {
  bench::Header("Ablation -- B+Tree index vs sequential scan",
                "point/range query latency vs table size, and the insert "
                "cost of index maintenance");

  std::printf("  %-10s %-16s %-16s %s\n", "rows", "seq point query",
              "indexed point query", "speedup");
  double speedup_large = 0.0;
  for (int64_t rows : {1000, 10000, 50000}) {
    db::Database bare;
    (void)bare.CreateTable("c", CandidateSchema());
    Fill(&bare, rows);
    db::Database indexed;
    (void)indexed.CreateTable("c", CandidateSchema());
    (void)indexed.CreateIndex("cp", "c", "pointing");
    Fill(&indexed, rows);

    const std::string query = "SELECT * FROM c WHERE pointing = 123";
    double seq = QuerySeconds(&bare, query, 20);
    double idx = QuerySeconds(&indexed, query, 20);
    std::printf("  %-10lld %-16.3f %-16.3f %.0fx\n",
                static_cast<long long>(rows), seq * 1000, idx * 1000,
                seq / idx);
    if (rows == 50000) {
      speedup_large = seq / idx;
    }
  }

  // Range query.
  {
    db::Database bare;
    (void)bare.CreateTable("c", CandidateSchema());
    Fill(&bare, 50000);
    db::Database indexed;
    (void)indexed.CreateTable("c", CandidateSchema());
    (void)indexed.CreateIndex("cp", "c", "pointing");
    Fill(&indexed, 50000);
    const std::string range = "SELECT COUNT(*) FROM c WHERE pointing < 20";
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%.2f ms -> %.2f ms",
                  QuerySeconds(&bare, range, 10) * 1000,
                  QuerySeconds(&indexed, range, 10) * 1000);
    bench::Row("range query at 50k rows (seq -> indexed)", buf);
  }

  // Insert-side price of index maintenance.
  {
    db::Database bare;
    (void)bare.CreateTable("c", CandidateSchema());
    double start = NowSeconds();
    Fill(&bare, 50000);
    double bare_seconds = NowSeconds() - start;
    db::Database indexed;
    (void)indexed.CreateTable("c", CandidateSchema());
    (void)indexed.CreateIndex("cp", "c", "pointing");
    start = NowSeconds();
    Fill(&indexed, 50000);
    double indexed_seconds = NowSeconds() - start;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%.2fx slower with index maintenance",
                  indexed_seconds / bare_seconds);
    bench::Row("bulk load of 50k rows", buf);
  }

  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0fx", speedup_large);
  bench::Row("point-query speedup at 50k rows", buf);
  bench::Note("reads pay for writes: the WebLab preload defers index "
              "builds for exactly this reason (see bench_weblab_preload)");

  bool shape = speedup_large > 10.0;
  bench::Footer(shape);
  return shape ? 0 : 1;
}
