// P1/P2 -- deterministic parallel speedup on the Arecibo hot paths.
// Paper (Section 2.1): the PALFA pipeline "will require 50 to 200
// processors" working the dedispersion + Fourier-search load. This bench
// pins the laptop-scale version of that claim: the dflow::par layer must
// (a) produce byte-identical results at 1, 2, 4, and 8 threads — the
// determinism contract — and (b) actually go faster when the cores exist.
//
// Determinism (fingerprint equality across the thread sweep) is a hard
// gate everywhere, including 1-core CI runners. The speedup floors
// (>= 3x dedispersion, >= 2x batch search at 8 threads) are enforced only
// when the host advertises >= 8 hardware threads and
// DFLOW_BENCH_SPEEDUP_ADVISORY is unset; otherwise they are reported as
// advisory, since wall-clock on a shared/undersized runner is noise.
//
// DFLOW_PAR_SCALE (float, default 1.0) scales the problem size so CI can
// run the same binary in seconds.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "arecibo/dedisperse.h"
#include "arecibo/search.h"
#include "arecibo/spectrometer.h"
#include "bench/report.h"
#include "par/par.h"
#include "util/md5.h"
#include "util/thread_pool.h"

namespace {

using dflow::arecibo::Candidate;
using dflow::arecibo::Dedisperser;
using dflow::arecibo::DynamicSpectrum;
using dflow::arecibo::MakeDmTrials;
using dflow::arecibo::PeriodicitySearch;
using dflow::arecibo::PulsarParams;
using dflow::arecibo::RfiParams;
using dflow::arecibo::SearchConfig;
using dflow::arecibo::SpectrometerModel;
using dflow::arecibo::TimeSeries;

std::string Fmt(const char* format, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), format, value);
  return buffer;
}

double EnvScale() {
  const char* value = std::getenv("DFLOW_PAR_SCALE");
  if (value == nullptr || *value == '\0') {
    return 1.0;
  }
  double scale = std::atof(value);
  return scale > 0.0 ? scale : 1.0;
}

double Seconds(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

/// Bit-exact fingerprint of a dedispersed trial set: every double is
/// hashed as its 8 raw bytes, so "byte-identical" means what it says.
std::string FingerprintTrials(const std::vector<TimeSeries>& trials) {
  dflow::Md5 md5;
  for (const TimeSeries& series : trials) {
    md5.Update(&series.dm, sizeof(series.dm));
    md5.Update(&series.sample_time_sec, sizeof(series.sample_time_sec));
    if (!series.samples.empty()) {
      md5.Update(series.samples.data(),
                 series.samples.size() * sizeof(double));
    }
  }
  return md5.HexDigest();
}

std::string FingerprintCandidates(
    const std::vector<std::vector<Candidate>>& per_series) {
  dflow::Md5 md5;
  for (const std::vector<Candidate>& found : per_series) {
    for (const Candidate& c : found) {
      md5.Update(&c.freq_hz, sizeof(c.freq_hz));
      md5.Update(&c.period_sec, sizeof(c.period_sec));
      md5.Update(&c.dm, sizeof(c.dm));
      md5.Update(&c.snr, sizeof(c.snr));
      md5.Update(&c.harmonics, sizeof(c.harmonics));
    }
  }
  return md5.HexDigest();
}

struct SweepPoint {
  int threads = 1;
  double dedisperse_sec = 0.0;
  double search_sec = 0.0;
  std::string dedisperse_fp;
  std::string search_fp;
};

}  // namespace

int main() {
  using namespace dflow;

  const double scale = EnvScale();
  const int64_t num_samples =
      std::max<int64_t>(2048, static_cast<int64_t>(16384 * scale));
  const int num_channels = 96;
  const int num_dm_trials =
      std::max(32, static_cast<int>(512 * scale));
  const int reps = 2;  // Best-of; the determinism gate uses every rep.

  bench::Header(
      "P1/P2 -- parallel dedispersion + batch search (dflow::par)",
      "the PALFA pipeline \"will require 50 to 200 processors\"; here the "
      "same sweep must scale across local cores without changing a byte");

  // Fixed-seed workload: one beam's spectrum with a bright pulsar and
  // narrowband RFI, swept over the DM trial set, then batch-searched.
  SpectrometerModel model(num_channels, num_samples, 6.4e-5, /*seed=*/42);
  PulsarParams pulsar;
  pulsar.period_sec = 0.12;
  pulsar.dm = 55.0;
  pulsar.pulse_amplitude = 4.0;
  RfiParams rfi;
  DynamicSpectrum spectrum = model.Generate({pulsar}, {rfi});
  Dedisperser dedisperser(MakeDmTrials(200.0, num_dm_trials));
  SearchConfig search_config;
  search_config.snr_threshold = 6.0;
  search_config.max_harmonics = 4;
  PeriodicitySearch periodicity(search_config);

  const int hardware = static_cast<int>(std::thread::hardware_concurrency());
  bench::Row("hardware threads", std::to_string(hardware));
  bench::Row("scale (DFLOW_PAR_SCALE)", Fmt("%.2f", scale));
  bench::Row("spectrum", std::to_string(num_channels) + " ch x " +
                             std::to_string(num_samples) + " samples");
  bench::Row("dm trials", std::to_string(num_dm_trials));

  const std::vector<int> sweep_threads = {1, 2, 4, 8};
  std::vector<SweepPoint> points;
  bool deterministic = true;

  for (int threads : sweep_threads) {
    // threads == 1 runs fully inline (no pool at all), so the sweep also
    // proves parallel == serial, not just parallel == parallel.
    ThreadPool* raw_pool =
        threads > 1 ? new ThreadPool(threads) : nullptr;  // Freed below.
    SweepPoint point;
    point.threads = threads;
    point.dedisperse_sec = 1e30;
    point.search_sec = 1e30;
    {
      par::ScopedPool scoped(raw_pool);
      for (int rep = 0; rep < reps; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        std::vector<TimeSeries> trials = dedisperser.DedisperseAll(spectrum);
        auto t1 = std::chrono::steady_clock::now();
        std::vector<std::vector<Candidate>> found =
            periodicity.SearchBatch(trials);
        auto t2 = std::chrono::steady_clock::now();

        point.dedisperse_sec = std::min(point.dedisperse_sec, Seconds(t0, t1));
        point.search_sec = std::min(point.search_sec, Seconds(t1, t2));
        std::string ded_fp = FingerprintTrials(trials);
        std::string search_fp = FingerprintCandidates(found);
        if (point.dedisperse_fp.empty()) {
          point.dedisperse_fp = ded_fp;
          point.search_fp = search_fp;
        } else if (point.dedisperse_fp != ded_fp ||
                   point.search_fp != search_fp) {
          deterministic = false;  // Not even repeatable at fixed threads.
        }
      }
    }
    delete raw_pool;
    points.push_back(point);
  }

  // --- Determinism gate: every fingerprint equal across the sweep. ------
  for (const SweepPoint& point : points) {
    if (point.dedisperse_fp != points[0].dedisperse_fp ||
        point.search_fp != points[0].search_fp) {
      deterministic = false;
    }
  }
  bench::Row("dedispersion fingerprint", points[0].dedisperse_fp);
  bench::Row("search fingerprint", points[0].search_fp);
  bench::Row("byte-identical across 1/2/4/8 threads",
             deterministic ? "yes" : "NO");

  for (const SweepPoint& point : points) {
    bench::Row(
        "t=" + std::to_string(point.threads) + " dedisperse / search",
        Fmt("%.3f s", point.dedisperse_sec) + " / " +
            Fmt("%.3f s", point.search_sec) + "  (speedup " +
            Fmt("%.2f", points[0].dedisperse_sec / point.dedisperse_sec) +
            "x / " +
            Fmt("%.2f", points[0].search_sec / point.search_sec) + "x)");
  }

  const double ded_speedup_8 =
      points[0].dedisperse_sec / points.back().dedisperse_sec;
  const double search_speedup_8 =
      points[0].search_sec / points.back().search_sec;

  // --- Speedup gate: enforced only where it is measurable. --------------
  const bool advisory_env =
      std::getenv("DFLOW_BENCH_SPEEDUP_ADVISORY") != nullptr;
  const bool enforce_speedup = hardware >= 8 && !advisory_env;
  const bool speedup_ok = ded_speedup_8 >= 3.0 && search_speedup_8 >= 2.0;
  if (enforce_speedup) {
    bench::Note("speedup floors ENFORCED (>= 3x dedisperse, >= 2x search "
                "at 8 threads)");
  } else {
    bench::Note(std::string("speedup floors ADVISORY (") +
                (advisory_env ? "DFLOW_BENCH_SPEEDUP_ADVISORY set"
                              : "host has < 8 hardware threads") +
                ")");
  }
  bench::Note("speedup at 8 threads: dedisperse " +
              Fmt("%.2f", ded_speedup_8) + "x, search " +
              Fmt("%.2f", search_speedup_8) + "x" +
              (speedup_ok ? "" : " (below floors)"));

  const bool shape_holds =
      deterministic && (!enforce_speedup || speedup_ok);
  bench::Footer(shape_holds);

  // --- BENCH_par.json. --------------------------------------------------
  {
    std::ofstream json("BENCH_par.json");
    json << "{\n";
    json << "  \"bench\": \"bench_parallel_speedup\",\n";
    json << "  \"scale\": " << Fmt("%.3f", scale) << ",\n";
    json << "  \"hardware_threads\": " << hardware << ",\n";
    json << "  \"config\": {\"channels\": " << num_channels
         << ", \"samples\": " << num_samples
         << ", \"dm_trials\": " << num_dm_trials << "},\n";
    json << "  \"determinism\": {\"byte_identical\": "
         << (deterministic ? "true" : "false")
         << ", \"dedisperse_fingerprint\": \"" << points[0].dedisperse_fp
         << "\", \"search_fingerprint\": \"" << points[0].search_fp
         << "\"},\n";
    json << "  \"sweep\": [";
    for (size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& point = points[i];
      json << (i == 0 ? "" : ", ") << "{\"threads\": " << point.threads
           << ", \"dedisperse_sec\": " << Fmt("%.6f", point.dedisperse_sec)
           << ", \"search_sec\": " << Fmt("%.6f", point.search_sec) << "}";
    }
    json << "],\n";
    json << "  \"speedup_at_8\": {\"dedisperse\": "
         << Fmt("%.3f", ded_speedup_8) << ", \"search\": "
         << Fmt("%.3f", search_speedup_8)
         << ", \"enforced\": " << (enforce_speedup ? "true" : "false")
         << "},\n";
    json << "  \"shape_holds\": " << (shape_holds ? "true" : "false")
         << "\n";
    json << "}\n";
  }

  return shape_holds ? 0 : 1;
}
