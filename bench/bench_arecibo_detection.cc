// E5: detection sensitivity of the search pipeline.
// Paper (Section 2.1): processing = "data unpacking, dedispersion, Fourier
// analysis, harmonic summing, threshold tests"; "another level of
// complexity comes from addressing pulsars that are in binary systems, for
// which an acceleration search algorithm also needs to be applied"; the
// survey is "the most sensitive ever done".

#include <cmath>
#include <cstdio>
#include <vector>

#include "arecibo/dedisperse.h"
#include "arecibo/search.h"
#include "arecibo/spectrometer.h"
#include "bench/report.h"

namespace {

using namespace dflow::arecibo;

constexpr int kChannels = 64;
constexpr int64_t kSamples = 1 << 13;
constexpr double kSampleTime = 1e-3;
constexpr double kF0 = 4.0;  // 250 ms pulsar.

bool Detected(const std::vector<Candidate>& found, double f0) {
  for (const Candidate& candidate : found) {
    double ratio = candidate.freq_hz / f0;
    double nearest = std::round(ratio);
    // Fundamental or a low harmonic, tightly matched -- loose windows
    // would count chance noise peaks as detections.
    if (nearest >= 1.0 && nearest <= 4.0 &&
        std::fabs(ratio - nearest) < 0.02) {
      return true;
    }
  }
  return false;
}

}  // namespace

int main() {
  using dflow::bench::Header;
  using dflow::bench::Row;
  using dflow::bench::Note;
  using dflow::bench::Footer;

  Header("E5 -- detection sensitivity: amplitude sweep, isolated vs binary",
         "dedispersion + FFT + harmonic summing recovers pulsars; binaries "
         "additionally need the acceleration search");

  Dedisperser dedisperser(MakeDmTrials(300.0, 16));
  SearchConfig config;
  config.snr_threshold = 8.0;
  PeriodicitySearch plain(config);
  std::vector<double> accel_trials;
  for (double alpha = -0.9; alpha <= 0.9001; alpha += 0.1) {
    accel_trials.push_back(alpha);
  }
  AccelerationSearch accelerated(config, accel_trials);

  // --- Isolated pulsars: detection fraction vs pulse amplitude ---
  std::printf("  isolated pulsars (10 trials per amplitude):\n");
  std::printf("  %-12s %s\n", "amplitude", "detected");
  double detect_strong = 0.0, detect_weak = 0.0;
  for (double amplitude : {0.02, 0.04, 0.08, 0.20, 0.80}) {
    int detected = 0;
    const int trials = 10;
    for (int trial = 0; trial < trials; ++trial) {
      SpectrometerModel model(kChannels, kSamples, kSampleTime,
                              1000 + trial);
      PulsarParams pulsar;
      pulsar.period_sec = 1.0 / kF0;
      pulsar.dm = 100.0;
      pulsar.pulse_amplitude = amplitude;
      pulsar.duty_cycle = 0.05;
      DynamicSpectrum spec = model.Generate({pulsar}, {});
      TimeSeries series = dedisperser.Dedisperse(spec, 100.0);
      if (Detected(plain.Search(series), kF0)) {
        ++detected;
      }
    }
    std::printf("  %-12.2f %d/%d\n", amplitude, detected, trials);
    if (amplitude == 0.80) {
      detect_strong = detected / 10.0;
    }
    if (amplitude == 0.02) {
      detect_weak = detected / 10.0;
    }
  }

  // --- Binary pulsars: plain vs acceleration search ---
  std::printf("\n  binary pulsars (frequency drifting across bins):\n");
  std::printf("  %-12s %-14s %s\n", "drift", "plain search",
              "acceleration search");
  const double block_sec = kSamples * kSampleTime;
  int plain_wins = 0, accel_wins = 0, trials_run = 0;
  for (double drift_bins : {8.0, 16.0, 24.0}) {
    const double alpha = drift_bins / (kF0 * block_sec);
    int plain_found = 0, accel_found = 0;
    const int trials = 5;
    for (int trial = 0; trial < trials; ++trial) {
      SpectrometerModel model(kChannels, kSamples, kSampleTime,
                              2000 + trial);
      PulsarParams pulsar;
      pulsar.period_sec = 1.0 / kF0;
      pulsar.dm = 100.0;
      pulsar.pulse_amplitude = 0.4;
      pulsar.duty_cycle = 0.05;
      pulsar.accel_bins = alpha * kF0 * block_sec;
      DynamicSpectrum spec = model.Generate({pulsar}, {});
      TimeSeries series = dedisperser.Dedisperse(spec, 100.0);
      if (Detected(plain.Search(series), kF0)) {
        ++plain_found;
      }
      if (Detected(accelerated.Search(series), kF0)) {
        ++accel_found;
      }
      ++trials_run;
    }
    char drift[32];
    std::snprintf(drift, sizeof(drift), "%.0f bins", drift_bins);
    std::printf("  %-12s %-14s %d/%d\n", drift,
                (std::to_string(plain_found) + "/" + std::to_string(trials))
                    .c_str(),
                accel_found, trials);
    plain_wins += plain_found;
    accel_wins += accel_found;
  }

  Row("strong isolated pulsars detected",
      detect_strong >= 0.9 ? "yes" : "NO");
  Row("weakest pulsars (a=0.02) mostly missed",
      detect_weak <= 0.4 ? "yes" : "NO");
  Row("acceleration search recovers binaries plain search loses",
      accel_wins > plain_wins ? "yes" : "NO");
  Note("the monotone amplitude curve + the accel-search gap are the "
       "reproduced shapes");

  bool shape = detect_strong >= 0.9 && detect_weak <= 0.4 &&
               accel_wins > plain_wins;
  Footer(shape);
  return shape ? 0 : 1;
}
