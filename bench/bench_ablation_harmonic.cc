// Ablation: harmonic summing in the periodicity search.
// The paper lists "harmonic summing" as a core step of the Arecibo
// processing (§2.1). This ablation shows why: as the pulse duty cycle
// shrinks, power spreads across harmonics and the fold=1 search loses
// candidates that the harmonic-summed search keeps.

#include <cmath>
#include <cstdio>

#include "arecibo/dedisperse.h"
#include "arecibo/search.h"
#include "arecibo/spectrometer.h"
#include "bench/report.h"

namespace {

using namespace dflow::arecibo;

}  // namespace

int main() {
  using dflow::bench::Header;
  using dflow::bench::Row;
  using dflow::bench::Footer;

  Header("Ablation -- harmonic summing vs duty cycle",
         "narrow pulses spread power over harmonics; summing folds it back");

  constexpr int kChannels = 64;
  constexpr int64_t kSamples = 1 << 13;
  constexpr double kSampleTime = 1e-3;
  constexpr double kF0 = 4.0;

  Dedisperser dedisperser(MakeDmTrials(300.0, 8));
  SearchConfig no_harmonics;
  no_harmonics.snr_threshold = 9.0;
  no_harmonics.max_harmonics = 1;
  SearchConfig with_harmonics = no_harmonics;
  with_harmonics.max_harmonics = 8;
  PeriodicitySearch fundamental_only(no_harmonics);
  PeriodicitySearch summed(with_harmonics);

  auto best_snr = [&](PeriodicitySearch& search, const TimeSeries& series) {
    double best = 0.0;
    for (const Candidate& candidate : search.Search(series)) {
      double ratio = candidate.freq_hz / kF0;
      double nearest = std::round(ratio);
      if (nearest >= 1.0 && nearest <= 8.0 &&
          std::fabs(ratio - nearest) < 0.02) {
        best = std::max(best, candidate.snr);
      }
    }
    return best;
  };

  std::printf("  %-12s %-14s %-14s %s\n", "duty cycle", "fold=1 snr",
              "fold<=8 snr", "summing gain");
  double gain_wide = 0.0, gain_narrow = 0.0;
  for (double duty : {0.20, 0.10, 0.05, 0.02, 0.01}) {
    double sum_fundamental = 0.0, sum_summed = 0.0;
    const int trials = 6;
    for (int trial = 0; trial < trials; ++trial) {
      SpectrometerModel model(kChannels, kSamples, kSampleTime,
                              4000 + trial);
      PulsarParams pulsar;
      pulsar.period_sec = 1.0 / kF0;
      pulsar.dm = 100.0;
      pulsar.duty_cycle = duty;
      // Constant pulse *energy*: narrower pulses are taller, as for a
      // real pulsar observed with different intrinsic widths.
      pulsar.pulse_amplitude = 0.008 / duty;
      DynamicSpectrum spec = model.Generate({pulsar}, {});
      TimeSeries series = dedisperser.Dedisperse(spec, 100.0);
      sum_fundamental += best_snr(fundamental_only, series);
      sum_summed += best_snr(summed, series);
    }
    double gain = sum_summed / std::max(sum_fundamental, 1e-9);
    std::printf("  %-12.2f %-14.1f %-14.1f %.2fx\n", duty,
                sum_fundamental / trials, sum_summed / trials, gain);
    if (duty == 0.20) {
      gain_wide = gain;
    }
    if (duty == 0.01) {
      gain_narrow = gain;
    }
  }

  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.2fx at duty 0.20 vs %.2fx at 0.01",
                gain_wide, gain_narrow);
  Row("summing gain, wide vs narrow pulses", buf);
  Row("gain concentrated where the paper needs it",
      gain_narrow > gain_wide ? "yes (narrow/millisecond pulsars)" : "NO");

  // Survey impact: the gain is a sensitivity-limit shift -- at a fixed
  // threshold it admits pulsars ~gain_narrow times weaker.
  bool shape = gain_narrow > 1.15 && gain_narrow > gain_wide + 0.05;
  Footer(shape);
  return shape ? 0 : 1;
}
