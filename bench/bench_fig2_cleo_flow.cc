// Figure 2 reproduction: the CLEO data flow over one simulated day of
// running, including the offsite Monte-Carlo branch entering through the
// USB-disk import, with per-stage volumes and the DOT rendering.

#include <cstdio>

#include "bench/report.h"
#include "core/flow_graph.h"
#include "core/flow_runner.h"
#include "eventstore/flow.h"
#include "sim/simulation.h"
#include "util/units.h"

int main() {
  using namespace dflow;
  using S = eventstore::CleoFlowStages;

  bench::Header(
      "Figure 2 -- CLEO data flow (one day of runs + offsite MC)",
      "acquisition -> initial analysis -> reconstruction -> post-recon; "
      "MC generated offsite, shipped on USB disks, merged into the "
      "collaboration EventStore feeding physics analysis");

  eventstore::CleoFlowConfig config;
  sim::Simulation simulation;
  core::FlowGraph graph;
  if (!eventstore::BuildCleoFlow(config, &graph).ok()) {
    return 1;
  }
  core::FlowRunner runner(&simulation, &graph);
  (void)runner.SetWorkers(S::kReconstruction, 8);
  (void)runner.SetWorkers(S::kMonteCarlo, 16);  // Offsite farm.
  (void)eventstore::InjectCleoDay(config, &runner);
  if (!runner.Run().ok()) {
    return 1;
  }

  std::printf("%s\n", runner.Report().c_str());
  int64_t raw = runner.MetricsFor(S::kAcquisition).bytes_in;
  int64_t recon = runner.MetricsFor(S::kReconstruction).bytes_out;
  int64_t postrecon = runner.MetricsFor(S::kPostRecon).bytes_out;
  int64_t mc = runner.MetricsFor(S::kMonteCarlo).bytes_out;
  bench::Row("raw acquired (1 day)", FormatBytes(raw));
  bench::Row("reconstruction output", FormatBytes(recon));
  bench::Row("post-reconstruction output", FormatBytes(postrecon));
  bench::Row("Monte-Carlo produced offsite", FormatBytes(mc));
  bench::Row("into collaboration EventStore",
             FormatBytes(runner.MetricsFor(S::kEventStore).bytes_in));
  bench::Row("physics analysis output",
             FormatBytes(runner.MetricsFor(S::kAnalysis).bytes_out));

  // Extrapolate the archive over the experiment's lifetime: the paper
  // says CLEO accumulated >90 TB over the years, ~two orders of
  // magnitude below the PB-scale Arecibo/WebLab flows.
  double day_total = static_cast<double>(raw + recon + postrecon + mc);
  double years = 3.0;
  bench::Row("archive growth at this rate over 3 yr",
             FormatBytes(static_cast<int64_t>(day_total * 365 * years)));

  std::printf("\nGraphviz (annotated with measured volumes):\n%s\n",
              runner.AnnotatedDot().c_str());

  bool shape = mc > raw &&            // MC volume matches/exceeds data.
               recon < raw &&         // Recon is a reduction.
               postrecon < recon &&   // Post-recon smaller still.
               day_total * 365 * years > 80.0 * kTB;  // ~90 TB scale.
  bench::Footer(shape);
  return shape ? 0 : 1;
}
