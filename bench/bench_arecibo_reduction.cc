// E1: data-volume reduction through the Arecibo pipeline.
// Paper (Section 2): "Processing to identify pulsars and transients yields
// data products about one to a few percent the size of the raw data" and
// candidate signals are "usually about 0.1% of the raw data volume".

#include <cstdio>

#include "arecibo/survey.h"
#include "arecibo/votable.h"
#include "bench/report.h"
#include "util/units.h"

int main() {
  using namespace dflow;

  bench::Header("E1 -- Arecibo raw -> product -> candidate reduction",
                "products ~1-3% of raw; refined candidates ~0.1% of raw");

  arecibo::SurveyConfig config;
  config.num_channels = 64;
  config.num_samples = 1 << 13;
  config.sample_time_sec = 1e-3;
  config.num_dm_trials = 16;
  arecibo::SurveyPipeline pipeline(config);

  // A small sky with a few injected pulsars and persistent RFI; measure
  // the actual byte volumes of each derived product tier.
  int64_t raw_bytes = 0;
  int64_t product_bytes = 0;   // Diagnostics + candidate lists per beam.
  int64_t candidate_bytes = 0; // Refined (post meta-analysis) lists.
  int num_candidates = 0, num_detections = 0;

  for (int pointing = 0; pointing < 6; ++pointing) {
    std::vector<arecibo::InjectedPulsar> pulsars;
    if (pointing % 2 == 0) {
      arecibo::InjectedPulsar pulsar;
      pulsar.beam = pointing % 7;
      pulsar.params.period_sec = 0.2 + 0.05 * pointing;
      pulsar.params.dm = 60.0 + 20.0 * pointing;
      pulsar.params.pulse_amplitude = 4.5;
      pulsars.push_back(pulsar);
    }
    arecibo::RfiParams rfi;
    rfi.period_sec = 1.0 / 60.0;
    rfi.amplitude = 1.2;
    rfi.channel_hi = config.num_channels - 1;

    auto result = pipeline.ProcessPointing(pointing, pulsars, {rfi});
    raw_bytes += result.raw_payload_bytes;
    // Products: the per-pointing diagnostics we keep = full candidate
    // table + per-trial test statistics (8 doubles per DM trial per beam).
    std::string full_table =
        arecibo::CandidatesToVoTable(result.candidates, "PALFA");
    product_bytes += static_cast<int64_t>(full_table.size()) +
                     config.num_dm_trials * 7 * 8 * 8;
    std::string refined =
        arecibo::CandidatesToVoTable(result.detections, "PALFA");
    candidate_bytes += static_cast<int64_t>(refined.size());
    num_candidates += static_cast<int>(result.candidates.size());
    num_detections += static_cast<int>(result.detections.size());
  }

  double product_ratio =
      static_cast<double>(product_bytes) / static_cast<double>(raw_bytes);
  double candidate_ratio =
      static_cast<double>(candidate_bytes) / static_cast<double>(raw_bytes);

  bench::Row("raw payload processed", FormatBytes(raw_bytes));
  bench::Row("data products", FormatBytes(product_bytes));
  bench::Row("refined candidates", FormatBytes(candidate_bytes));
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f%%", product_ratio * 100);
  bench::Row("product / raw (paper: 1-3%)", buf);
  std::snprintf(buf, sizeof(buf), "%.4f%%", candidate_ratio * 100);
  bench::Row("candidates / raw (paper: ~0.1%)", buf);
  bench::Row("candidates before / after meta-analysis",
             std::to_string(num_candidates) + " / " +
                 std::to_string(num_detections));
  bench::Note("payload-scale spectra: absolute ratios drift with block "
              "length; the ordering raw >> products >> candidates is the "
              "reproduced shape");

  // At paper scale, the accounting constants give the exact claim.
  arecibo::SurveyConfig paper;
  double paper_products =
      paper.product_fraction;      // 2% midpoint of "one to a few percent".
  double paper_candidates = paper.candidate_fraction;  // 0.1%.
  std::snprintf(buf, sizeof(buf), "%.1f%% / %.1f%%", paper_products * 100,
                paper_candidates * 100);
  bench::Row("paper-scale accounting constants", buf);

  bool shape = product_ratio < 0.2 && candidate_ratio < product_ratio &&
               num_detections < num_candidates;
  bench::Footer(shape);
  return shape ? 0 : 1;
}
