// E3: how many processors does the Arecibo flow need?
// Paper (Section 2.1): "Overall about 50 to 200 processors would be needed
// to keep up with the flow of data" for the basic analysis (excluding RFI
// excision overhead).

#include <cstdio>
#include <vector>

#include "arecibo/survey.h"
#include "bench/report.h"
#include "sim/resource.h"
#include "sim/simulation.h"
#include "util/units.h"

namespace {

// One pointing = 35 GB of raw data. Calibrated from the paper's own
// envelope: if ~100 processors keep up with data acquired at ~10 TB per
// two-week period, each pointing costs roughly 100 proc x 14 days /
// (2 x 400 pointings) ~ 42 processor-hours. We charge 40 CPU-hours per
// pointing for the basic analysis (unpack + dedisperse + FFT + harmonic
// sum + threshold + fold).
constexpr double kCpuHoursPerPointing = 40.0;

// Observing cadence: sessions of 3 h once or twice a day, 400 pointings
// per ~2 weeks of telescope time.
struct SimOutcome {
  double backlog_days;     // Queue delay of the last pointing.
  double utilization;
};

SimOutcome RunWithProcessors(int processors) {
  using dflow::kDay;
  using dflow::kHour;
  dflow::sim::Simulation simulation;
  dflow::sim::Resource cpu(&simulation, "processors", processors);
  const int pointings = 800;  // One month of survey data.
  const double month = 28 * kDay;
  double last_done = 0.0;
  for (int i = 0; i < pointings; ++i) {
    double arrival = month * i / pointings;
    simulation.ScheduleAt(arrival, [&cpu, &last_done, &simulation] {
      cpu.Submit(kCpuHoursPerPointing * kHour,
                 [&last_done, &simulation] { last_done = simulation.Now(); });
    });
  }
  simulation.Run();
  return SimOutcome{(last_done - month) / kDay, cpu.Utilization()};
}

}  // namespace

int main() {
  using namespace dflow;

  bench::Header("E3 -- processors needed to keep up with the Arecibo flow",
                "about 50 to 200 processors for the basic analysis");

  std::printf("  %-12s %-18s %-14s %s\n", "processors", "backlog after 1 mo",
              "utilization", "keeps up?");
  int minimum_keeping_up = -1;
  for (int processors : {10, 25, 50, 75, 100, 150, 200, 300}) {
    SimOutcome outcome = RunWithProcessors(processors);
    bool keeps_up = outcome.backlog_days < 2.0;  // Drains within 2 days.
    if (keeps_up && minimum_keeping_up < 0) {
      minimum_keeping_up = processors;
    }
    std::printf("  %-12d %-18s %-14.2f %s\n", processors,
                FormatDuration(outcome.backlog_days * kDay).c_str(),
                outcome.utilization, keeps_up ? "yes" : "NO");
  }

  bench::Row("minimum processor count that keeps up",
             std::to_string(minimum_keeping_up));
  bench::Note("the paper's 50-200 band depends on the RFI-excision and "
              "acceleration-search overheads; the basic analysis lands at "
              "the low end of the band, as the paper describes");

  bool shape = minimum_keeping_up >= 50 && minimum_keeping_up <= 200;
  bench::Footer(shape);
  return shape ? 0 : 1;
}
