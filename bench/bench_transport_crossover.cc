// E4: physical disk shipment vs network transport.
// Paper (Sections 2.2, 5): "because of Arecibo's limited network bandwidth
// to the outside world, for the foreseeable future, network transport of
// raw data is infeasible. We therefore have developed a system based on
// transport of physical ATA disks"; WebLab instead uses "a dedicated
// 100 Mb/sec connection ... which can easily be upgraded to 500 Mb/sec".

#include <cstdio>
#include <vector>

#include "bench/report.h"
#include "net/network_link.h"
#include "net/shipment.h"
#include "net/transfer.h"
#include "sim/simulation.h"
#include "util/crc32.h"
#include "util/units.h"

namespace {

using namespace dflow;

// Time to deliver one 14 TB weekly block (400 x 35 GB files).
double DeliverBlockVia(net::Channel* channel, sim::Simulation* simulation) {
  net::TransferScheduler scheduler(simulation, channel, /*max_retries=*/10);
  std::vector<net::TransferItem> items;
  for (int i = 0; i < 400; ++i) {
    items.push_back(net::TransferItem{"pointing_" + std::to_string(i),
                                      35 * kGB, 0});
  }
  double done = -1.0;
  (void)scheduler.SendAll(items, [&] { done = simulation->Now(); });
  simulation->Run();
  return done;
}

}  // namespace

int main() {
  bench::Header("E4 -- transport crossover: disk shipments vs network links",
                "sneakernet wins at Arecibo's thin WAN; a dedicated "
                "100-500 Mb/s link wins for WebLab-scale daily volumes");

  // --- The 14 TB Arecibo block across candidate links ---
  std::printf("  delivering one 14 TB block (400 x 35 GB):\n");
  std::printf("  %-34s %-16s %s\n", "channel", "delivery time",
              "sustainable rate");
  double shipment_time = 0.0;
  {
    sim::Simulation simulation;
    net::ShipmentChannel shipment(&simulation, "ata_disks",
                                  net::ShipmentConfig{});
    shipment_time = DeliverBlockVia(&shipment, &simulation);
    std::printf("  %-34s %-16s %s\n", "weekly ATA-disk shipment (40x400GB)",
                FormatDuration(shipment_time).c_str(),
                FormatRate(shipment.NominalBandwidth()).c_str());
  }
  double crossover_bw = -1.0;
  for (double mbps : {10.0, 45.0, 100.0, 155.0, 500.0, 1000.0}) {
    sim::Simulation simulation;
    net::NetworkLinkConfig config;
    config.bandwidth_bits_per_sec = mbps * 1e6;
    net::NetworkLink link(&simulation, "wan", config);
    double t = DeliverBlockVia(&link, &simulation);
    char label[64];
    std::snprintf(label, sizeof(label), "network link at %.0f Mb/s", mbps);
    std::printf("  %-34s %-16s %s\n", label, FormatDuration(t).c_str(),
                FormatRate(link.NominalBandwidth()).c_str());
    if (t < shipment_time && crossover_bw < 0) {
      crossover_bw = mbps;
    }
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "~%.0f Mb/s", crossover_bw);
  bench::Row("network beats weekly shipments above", buf);

  // --- WebLab's side of the comparison: 250 GB/day target ---
  const double weblab_daily = 250.0 * kGB / kDay;
  sim::Simulation simulation;
  net::NetworkLinkConfig internet2;
  internet2.bandwidth_bits_per_sec = 100.0e6;
  net::NetworkLink ia_link(&simulation, "ia_to_internet2", internet2);
  bench::Row("WebLab target ingest rate", FormatRate(weblab_daily));
  bench::Row("dedicated 100 Mb/s link sustains",
             FormatRate(ia_link.NominalBandwidth()));
  bool weblab_ok = ia_link.NominalBandwidth() > weblab_daily;
  bench::Row("link covers the target", weblab_ok ? "yes" : "NO");

  // --- Arecibo's side: the island uplink cannot carry the survey ---
  net::NetworkLinkConfig island;
  island.bandwidth_bits_per_sec = 20.0e6;
  net::NetworkLink arecibo_wan(&simulation, "arecibo_wan", island);
  net::ShipmentChannel shipments(&simulation, "disks", net::ShipmentConfig{});
  const double survey_rate = 14.0 * kTB / kWeek;
  bench::Row("Arecibo survey data rate", FormatRate(survey_rate));
  bench::Row("island WAN sustains", FormatRate(arecibo_wan.NominalBandwidth()));
  bench::Row("disk shipments sustain",
             FormatRate(shipments.NominalBandwidth()));
  bool arecibo_ok = shipments.NominalBandwidth() > survey_rate &&
                    arecibo_wan.NominalBandwidth() < survey_rate;

  bool shape = weblab_ok && arecibo_ok && crossover_bw > 20.0;
  bench::Footer(shape);
  return shape ? 0 : 1;
}
