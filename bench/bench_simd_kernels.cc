// S1 -- the raw-speed pass: runtime-dispatched SIMD kernels.
// Paper (Section 2.1): PALFA's compute estimate is "50 to 200 processors"
// of brute-force signal processing; every factor the inner loops gain is
// processors the survey does not have to buy. This bench pins the kernel
// layer's two promises:
//
//   * determinism (always enforced): for every exact-contract kernel the
//     scalar table and every vector tier the host supports produce
//     BYTE-IDENTICAL output (memcmp). gather_sum_f64 is the documented
//     fast-fp exception (multi-accumulator reassociation) and is excluded
//     from the byte gate — it sits behind an allow_fast_fp opt-in that
//     defaults off.
//   * speed (enforced on AVX2 hosts, advisory elsewhere or with
//     DFLOW_BENCH_SIMD_ADVISORY set): >= 2.0x scalar->vector speedup on at
//     least one kernel.
//
// The "determinism" output lines hash the ACTIVE table's output (the table
// DFLOW_SIMD selects), so CI runs this binary twice — DFLOW_SIMD=scalar
// and DFLOW_SIMD=auto — and diffs those lines: any divergence means the
// dispatch layer broke bit-identity in production configuration.
//
// Also emitted: the stored-bytes vs recall-latency tradeoff curve for the
// chunked tape compression (wlzc) at several block sizes, using the
// TapeLibrary timing model (mount + stored/stream + raw/decompress).
// Results land in BENCH_simd.json.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <complex>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numbers>
#include <string>
#include <vector>

#include "bench/report.h"
#include "simd/simd.h"
#include "storage/tape.h"
#include "util/compress.h"
#include "util/md5.h"
#include "util/rng.h"

namespace {

using dflow::Md5;
using dflow::Rng;
using dflow::WlzChunkedStats;
using dflow::simd::Isa;
using dflow::simd::IsaName;
using dflow::simd::KernelTable;

std::string Fmt(const char* format, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), format, value);
  return buffer;
}

/// Keeps the optimizer from deleting a benchmark loop body.
inline void Escape(const void* p) {
  asm volatile("" : : "g"(p) : "memory");
}

/// Median-of-passes timing of `body` (which must already loop enough to
/// take microseconds); returns seconds per call of `body`.
template <typename F>
double TimeSec(F&& body, int passes = 5) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(passes));
  for (int p = 0; p < passes; ++p) {
    auto t0 = std::chrono::steady_clock::now();
    body();
    auto t1 = std::chrono::steady_clock::now();
    samples.push_back(std::chrono::duration<double>(t1 - t0).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[static_cast<size_t>(passes) / 2];
}

std::string_view Bytes(const void* p, size_t n) {
  return std::string_view(static_cast<const char*>(p), n);
}

struct KernelResult {
  std::string name;
  int64_t n = 0;
  double scalar_sec = 0.0;
  double vector_sec = 0.0;
  bool exact = true;           // Participates in the byte gate.
  bool byte_identical = true;  // memcmp scalar vs every supported tier.
  std::string active_md5;      // Hash of the ACTIVE table's output.

  double speedup() const {
    return vector_sec > 0.0 ? scalar_sec / vector_sec : 0.0;
  }
};

constexpr int64_t kN = 1 << 16;
constexpr int kReps = 200;

/// Runs `fill` once per supported tier into a fresh output buffer and
/// memcmps against the scalar tier; also hashes the ACTIVE tier's output.
/// `fill(table, out)` must write the kernel's full output into `out`.
template <typename FillFn>
void CheckIdentity(KernelResult* result, size_t out_bytes, FillFn fill) {
  std::vector<unsigned char> scalar_out(out_bytes);
  fill(*dflow::simd::KernelsFor(Isa::kScalar), scalar_out.data());
  for (Isa isa : {Isa::kSse2, Isa::kAvx2}) {
    const KernelTable* table = dflow::simd::KernelsFor(isa);
    if (table == nullptr) {
      continue;
    }
    std::vector<unsigned char> vec_out(out_bytes);
    fill(*table, vec_out.data());
    if (std::memcmp(scalar_out.data(), vec_out.data(), out_bytes) != 0) {
      result->byte_identical = false;
      dflow::bench::Note(result->name + ": " + IsaName(isa) +
                         " output DIVERGES from scalar");
    }
  }
  std::vector<unsigned char> active_out(out_bytes);
  fill(dflow::simd::Kernels(), active_out.data());
  result->active_md5 = Md5::HexOf(Bytes(active_out.data(), out_bytes));
}

KernelResult BenchAddF32ToF64(const KernelTable& scalar,
                              const KernelTable& vec) {
  KernelResult r;
  r.name = "add_f32_to_f64";
  r.n = kN;
  Rng rng(11);
  std::vector<float> src(kN);
  for (auto& x : src) {
    x = static_cast<float>(rng.Normal());
  }
  std::vector<double> acc(kN, 0.0);
  auto run = [&](const KernelTable& t) {
    for (int i = 0; i < kReps; ++i) {
      t.add_f32_to_f64(src.data(), acc.data(), kN);
      Escape(acc.data());
    }
  };
  r.scalar_sec = TimeSec([&] { run(scalar); });
  r.vector_sec = TimeSec([&] { run(vec); });
  CheckIdentity(&r, sizeof(double) * kN,
                [&](const KernelTable& t, unsigned char* out) {
                  std::vector<double> a(kN, 1.5);
                  t.add_f32_to_f64(src.data(), a.data(), kN);
                  std::memcpy(out, a.data(), sizeof(double) * kN);
                });
  return r;
}

KernelResult BenchScaleF64(const KernelTable& scalar, const KernelTable& vec) {
  KernelResult r;
  r.name = "scale_f64";
  r.n = kN;
  Rng rng(12);
  std::vector<double> data(kN);
  for (auto& x : data) {
    x = rng.Normal();
  }
  auto run = [&](const KernelTable& t) {
    for (int i = 0; i < kReps; ++i) {
      t.scale_f64(data.data(), kN, 1.0000001);
      Escape(data.data());
    }
  };
  r.scalar_sec = TimeSec([&] { run(scalar); });
  r.vector_sec = TimeSec([&] { run(vec); });
  CheckIdentity(&r, sizeof(double) * kN,
                [&](const KernelTable& t, unsigned char* out) {
                  std::vector<double> d(data);
                  t.scale_f64(d.data(), kN, 0.9999371);
                  std::memcpy(out, d.data(), sizeof(double) * kN);
                });
  return r;
}

KernelResult BenchFftStage(const KernelTable& scalar, const KernelTable& vec) {
  KernelResult r;
  r.name = "fft_stage";
  const size_t n = 1 << 14;
  r.n = static_cast<int64_t>(n);
  Rng rng(13);
  std::vector<std::complex<double>> data(n);
  for (auto& x : data) {
    x = {rng.Normal(), rng.Normal()};
  }
  std::vector<std::complex<double>> twiddles(n / 2);
  for (size_t j = 0; j < n / 2; ++j) {
    double angle = -2.0 * std::numbers::pi * static_cast<double>(j) /
                   static_cast<double>(n);
    twiddles[j] = {std::cos(angle), std::sin(angle)};
  }
  auto all_stages = [&](const KernelTable& t,
                        std::vector<std::complex<double>>& d) {
    for (size_t len = 2; len <= n; len <<= 1) {
      t.fft_stage(d.data(), n, len, twiddles.data(), n / len, false);
    }
  };
  auto run = [&](const KernelTable& t) {
    for (int i = 0; i < 8; ++i) {
      auto copy = data;
      all_stages(t, copy);
      Escape(copy.data());
    }
  };
  r.scalar_sec = TimeSec([&] { run(scalar); });
  r.vector_sec = TimeSec([&] { run(vec); });
  CheckIdentity(&r, sizeof(std::complex<double>) * n,
                [&](const KernelTable& t, unsigned char* out) {
                  auto copy = data;
                  all_stages(t, copy);
                  std::memcpy(out, copy.data(),
                              sizeof(std::complex<double>) * n);
                });
  return r;
}

KernelResult BenchStridedAdd(const KernelTable& scalar,
                             const KernelTable& vec) {
  KernelResult r;
  r.name = "strided_add_f64";
  r.n = kN;
  Rng rng(14);
  std::vector<double> src(kN * 3);
  for (auto& x : src) {
    x = rng.Normal();
  }
  std::vector<double> acc(kN, 0.0);
  auto run = [&](const KernelTable& t) {
    for (int i = 0; i < kReps; ++i) {
      t.strided_add_f64(acc.data(), src.data(), 3, kN);
      Escape(acc.data());
    }
  };
  r.scalar_sec = TimeSec([&] { run(scalar); });
  r.vector_sec = TimeSec([&] { run(vec); });
  CheckIdentity(&r, sizeof(double) * kN,
                [&](const KernelTable& t, unsigned char* out) {
                  std::vector<double> a(kN, 0.25);
                  t.strided_add_f64(a.data(), src.data(), 3, kN);
                  t.strided_add_f64(a.data(), src.data(), 1, kN);
                  std::memcpy(out, a.data(), sizeof(double) * kN);
                });
  return r;
}

KernelResult BenchSnrBestUpdate(const KernelTable& scalar,
                                const KernelTable& vec) {
  KernelResult r;
  r.name = "snr_best_update";
  r.n = kN;
  Rng rng(15);
  std::vector<double> summed(kN);
  for (auto& x : summed) {
    x = 4.0 + rng.Normal();
  }
  std::vector<double> best_snr(kN, 0.0);
  std::vector<int> best_fold(kN, 1);
  auto run = [&](const KernelTable& t) {
    for (int i = 0; i < kReps; ++i) {
      t.snr_best_update(summed.data(), kN, 4.0, 2.0, 4, best_snr.data(),
                        best_fold.data());
      Escape(best_snr.data());
    }
  };
  r.scalar_sec = TimeSec([&] { run(scalar); });
  r.vector_sec = TimeSec([&] { run(vec); });
  CheckIdentity(&r, (sizeof(double) + sizeof(int)) * kN,
                [&](const KernelTable& t, unsigned char* out) {
                  std::vector<double> snr(kN, 0.1);
                  std::vector<int> fold(kN, 1);
                  t.snr_best_update(summed.data(), kN, 4.0, 2.0, 8,
                                    snr.data(), fold.data());
                  std::memcpy(out, snr.data(), sizeof(double) * kN);
                  std::memcpy(out + sizeof(double) * kN, fold.data(),
                              sizeof(int) * kN);
                });
  return r;
}

KernelResult BenchRankContrib(const KernelTable& scalar,
                              const KernelTable& vec) {
  KernelResult r;
  r.name = "rank_contrib";
  r.n = kN;
  Rng rng(16);
  std::vector<double> rank(kN);
  for (auto& x : rank) {
    x = 1.0 / kN + rng.Normal() * 1e-6;
  }
  std::vector<int64_t> offsets(kN + 1);
  offsets[0] = 0;
  for (int64_t i = 0; i < kN; ++i) {
    offsets[static_cast<size_t>(i) + 1] =
        offsets[static_cast<size_t>(i)] + rng.Uniform(0, 7);
  }
  std::vector<double> contrib(kN, 0.0);
  auto run = [&](const KernelTable& t) {
    for (int i = 0; i < kReps; ++i) {
      t.rank_contrib(rank.data(), offsets.data(), contrib.data(), kN);
      Escape(contrib.data());
    }
  };
  r.scalar_sec = TimeSec([&] { run(scalar); });
  r.vector_sec = TimeSec([&] { run(vec); });
  CheckIdentity(&r, sizeof(double) * kN,
                [&](const KernelTable& t, unsigned char* out) {
                  std::vector<double> c(kN, -1.0);
                  t.rank_contrib(rank.data(), offsets.data(), c.data(), kN);
                  std::memcpy(out, c.data(), sizeof(double) * kN);
                });
  return r;
}

KernelResult BenchGatherSum(const KernelTable& scalar,
                            const KernelTable& vec) {
  KernelResult r;
  r.name = "gather_sum_f64";
  r.n = kN;
  r.exact = false;  // The documented fast-fp exception: no byte gate.
  Rng rng(17);
  std::vector<double> values(kN);
  for (auto& x : values) {
    x = rng.Normal();
  }
  std::vector<int> indices(kN);
  for (auto& i : indices) {
    i = static_cast<int>(rng.Uniform(0, static_cast<int>(kN) - 1));
  }
  double sink = 0.0;
  auto run = [&](const KernelTable& t) {
    for (int i = 0; i < kReps; ++i) {
      sink += t.gather_sum_f64(values.data(), indices.data(), kN);
      Escape(&sink);
    }
  };
  r.scalar_sec = TimeSec([&] { run(scalar); });
  r.vector_sec = TimeSec([&] { run(vec); });
  // No byte-identity check; hash the ACTIVE result anyway for the record
  // (it legitimately differs between scalar and vector tiers).
  double active = dflow::simd::Kernels().gather_sum_f64(
      values.data(), indices.data(), kN);
  r.active_md5 = Md5::HexOf(Bytes(&active, sizeof(active)));
  r.byte_identical = true;
  return r;
}

/// One point of the stored-bytes vs recall-latency curve.
struct TradeoffPoint {
  int64_t block_bytes = 0;  // 0 = uncompressed.
  int64_t stored_bytes = 0;
  double ratio = 0.0;
  double recall_seconds = 0.0;
};

/// TapeLibrary recall-time model with default config rates.
double ModelRecallSeconds(int64_t stored, int64_t raw, bool compressed) {
  dflow::storage::TapeLibraryConfig config;
  double t = config.mount_seconds +
             static_cast<double>(stored) / config.stream_bytes_per_sec;
  if (compressed) {
    t += static_cast<double>(raw) / config.decompress_bytes_per_sec;
  }
  return t;
}

}  // namespace

int main() {
  const Isa best = dflow::simd::BestSupportedIsa();
  const Isa active = dflow::simd::ActiveIsa();
  const KernelTable& scalar = *dflow::simd::KernelsFor(Isa::kScalar);
  const KernelTable& vec = *dflow::simd::KernelsFor(best);

  dflow::bench::Header(
      "S1: SIMD kernel layer -- dispatch, bit-identity, speedup",
      "\"50 to 200 processors\" of brute-force signal processing (2.1); "
      "every kernel-layer factor is processors the survey does not buy");
  dflow::bench::Row("best supported ISA", IsaName(best));
  dflow::bench::Row("active ISA (DFLOW_SIMD)", IsaName(active));

  std::vector<KernelResult> results;
  results.push_back(BenchAddF32ToF64(scalar, vec));
  results.push_back(BenchScaleF64(scalar, vec));
  results.push_back(BenchFftStage(scalar, vec));
  results.push_back(BenchStridedAdd(scalar, vec));
  results.push_back(BenchSnrBestUpdate(scalar, vec));
  results.push_back(BenchRankContrib(scalar, vec));
  results.push_back(BenchGatherSum(scalar, vec));

  bool all_identical = true;
  double best_speedup = 0.0;
  std::string best_kernel;
  for (const KernelResult& r : results) {
    dflow::bench::Row(
        r.name + " (n=" + std::to_string(r.n) + ")",
        Fmt("%.2f", r.speedup()) + "x " + IsaName(best) + " vs scalar" +
            (r.exact ? (r.byte_identical ? ", byte-identical"
                                         : ", DIVERGED")
                     : ", fast-fp (no byte gate)"));
    if (r.exact && !r.byte_identical) {
      all_identical = false;
    }
    if (r.speedup() > best_speedup) {
      best_speedup = r.speedup();
      best_kernel = r.name;
    }
  }

  // The determinism lines CI diffs between DFLOW_SIMD=scalar and =auto:
  // hashes of the ACTIVE table's output for every exact kernel.
  for (const KernelResult& r : results) {
    if (r.exact) {
      std::printf("  determinism %-18s md5=%s\n", r.name.c_str(),
                  r.active_md5.c_str());
    }
  }

  // --- Compression tradeoff curve. --------------------------------------
  // Mixed survey-like payload: compressible header text + noisy samples.
  Rng rng(23);
  std::string payload;
  payload.reserve(4 << 20);
  static const char* kWords[] = {"beam", "trial", "dm", "candidate",
                                 "spectra"};
  while (payload.size() < (4u << 20)) {
    // Catalog-style records (highly repetitive) with a short noisy tail —
    // the 2-5x-on-text regime the codec documents.
    for (int field = 0; field < 6; ++field) {
      payload += kWords[rng.Uniform(0, 4)];
      payload += '=';
      payload += std::to_string(rng.Uniform(0, 9999));
      payload += ';';
    }
    for (int i = 0; i < 8; ++i) {
      payload.push_back(static_cast<char>(rng.Uniform(0, 255)));
    }
    payload += '\n';
  }
  std::vector<TradeoffPoint> curve;
  {
    TradeoffPoint raw_point;
    raw_point.block_bytes = 0;
    raw_point.stored_bytes = static_cast<int64_t>(payload.size());
    raw_point.ratio = 1.0;
    raw_point.recall_seconds = ModelRecallSeconds(
        raw_point.stored_bytes, raw_point.stored_bytes, false);
    curve.push_back(raw_point);
  }
  for (int64_t block : {4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}) {
    WlzChunkedStats stats;
    dflow::WlzChunkedCompress(payload, static_cast<size_t>(block), &stats);
    TradeoffPoint point;
    point.block_bytes = block;
    point.stored_bytes = stats.stored_bytes;
    point.ratio = stats.ratio();
    point.recall_seconds =
        ModelRecallSeconds(stats.stored_bytes, stats.raw_bytes, true);
    curve.push_back(point);
  }
  dflow::bench::Note("tape tradeoff (4 MiB payload, default drive rates):");
  for (const TradeoffPoint& p : curve) {
    dflow::bench::Row(
        p.block_bytes == 0
            ? std::string("  uncompressed")
            : "  block=" + std::to_string(p.block_bytes / 1024) + "KiB",
        "stored=" + std::to_string(p.stored_bytes) + "B ratio=" +
            Fmt("%.2f", p.ratio) + " recall=" +
            Fmt("%.2f", p.recall_seconds) + "s");
  }

  // --- Gates. -----------------------------------------------------------
  const bool advisory_env =
      std::getenv("DFLOW_BENCH_SIMD_ADVISORY") != nullptr;
  const bool enforce_speedup = best == Isa::kAvx2 && !advisory_env;
  const bool speedup_ok = best_speedup >= 2.0;
  dflow::bench::Row("best speedup",
                    Fmt("%.2f", best_speedup) + "x (" + best_kernel + ")");
  if (!enforce_speedup) {
    dflow::bench::Note(std::string("speedup gate advisory (") +
                       (advisory_env ? "DFLOW_BENCH_SIMD_ADVISORY set"
                                     : "host lacks AVX2") +
                       ")");
  }
  const bool shape_holds =
      all_identical && (speedup_ok || !enforce_speedup);

  // --- BENCH_simd.json. -------------------------------------------------
  {
    std::ofstream json("BENCH_simd.json");
    json << "{\n";
    json << "  \"bench\": \"bench_simd_kernels\",\n";
    json << "  \"best_isa\": \"" << IsaName(best) << "\",\n";
    json << "  \"active_isa\": \"" << IsaName(active) << "\",\n";
    json << "  \"kernels\": [";
    for (size_t i = 0; i < results.size(); ++i) {
      const KernelResult& r = results[i];
      json << (i == 0 ? "" : ", ") << "{\"name\": \"" << r.name
           << "\", \"n\": " << r.n << ", \"speedup\": "
           << Fmt("%.3f", r.speedup()) << ", \"exact\": "
           << (r.exact ? "true" : "false") << ", \"byte_identical\": "
           << (r.byte_identical ? "true" : "false") << "}";
    }
    json << "],\n";
    json << "  \"speedup_gate\": {\"floor\": 2.0, \"enforced\": "
         << (enforce_speedup ? "true" : "false") << ", \"best\": "
         << Fmt("%.3f", best_speedup) << ", \"kernel\": \"" << best_kernel
         << "\"},\n";
    json << "  \"tape_tradeoff\": [";
    for (size_t i = 0; i < curve.size(); ++i) {
      const TradeoffPoint& p = curve[i];
      json << (i == 0 ? "" : ", ") << "{\"block_bytes\": " << p.block_bytes
           << ", \"stored_bytes\": " << p.stored_bytes << ", \"ratio\": "
           << Fmt("%.3f", p.ratio) << ", \"recall_seconds\": "
           << Fmt("%.3f", p.recall_seconds) << "}";
    }
    json << "],\n";
    json << "  \"byte_identical\": " << (all_identical ? "true" : "false")
         << ",\n";
    json << "  \"shape_holds\": " << (shape_holds ? "true" : "false")
         << "\n";
    json << "}\n";
  }

  dflow::bench::Footer(shape_holds);
  return shape_holds ? 0 : 1;
}
