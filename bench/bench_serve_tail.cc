// E17: dissemination-tier throughput, hit rate, and tail latency.
//
// §5 of the paper: all three projects disseminate "access to databases and
// some of the data analysis functionality ... through Web Services
// already", and the next step they all name is scaling that access out.
// This bench drives the serve tier (src/serve) end to end over the REAL
// three services — Arecibo CandidateService, CLEO EventStoreService, and
// WebLabService mounted in one ServiceRegistry — with seeded Zipf traffic
// over real endpoint populations (top-candidate queries, snapshot
// resolutions, retro-browse URLs), and measures what a capacity planner
// would plot:
//
//   1. determinism: same seed => byte-identical request stream (MD5);
//   2. saturation throughput (closed loop, cache off);
//   3. cache hit rate vs Zipf skew at fixed capacity (hot sets help only
//      if the popularity distribution is actually skewed);
//   4. cache on/off throughput ablation at Zipf s = 1.1;
//   5. open-loop overload sweep at 0.5x / 1x / 2x saturation: shed
//      fraction rises while the p99 of ADMITTED requests stays bounded by
//      the admission queue, instead of latency diverging with an
//      unbounded queue.
//
// Machine-readable results land in BENCH_serve.json next to the binary so
// the bench trajectory can be tracked across PRs.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "arecibo/candidate_service.h"
#include "bench/report.h"
#include "core/web_service.h"
#include "db/database.h"
#include "eventstore/event_store.h"
#include "eventstore/eventstore_service.h"
#include "serve/latency_histogram.h"
#include "serve/response_cache.h"
#include "serve/serve_loop.h"
#include "serve/workload_gen.h"
#include "util/logging.h"
#include "util/rng.h"
#include "weblab/crawler.h"
#include "weblab/preload.h"
#include "weblab/weblab_service.h"

namespace {

using namespace dflow;
using serve::CacheConfig;
using serve::LatencyHistogram;
using serve::ServeConfig;
using serve::ServeLoop;
using serve::ShardedResponseCache;
using serve::WorkloadGen;

constexpr uint64_t kSeed = 20060206;
constexpr int kWorkers = 6;
constexpr size_t kQueueDepth = 64;
constexpr int kClosedLoopClients = 8;

core::ServiceRequest Req(const std::string& path,
                         std::map<std::string, std::string> params = {}) {
  core::ServiceRequest request;
  request.path = path;
  request.params = std::move(params);
  return request;
}

// ---------------------------------------------------------------------------
// Backend setup: the three case-study services with seeded synthetic data.

struct Backends {
  db::Database arecibo_db;  // Per-mount locking => one db per mount.
  std::unique_ptr<eventstore::EventStore> event_store;
  db::Database weblab_db;
  weblab::PageStore page_store;
  weblab::InvertedIndex index;
  core::ServiceRegistry registry;
  std::vector<std::string> retro_urls;
  int64_t crawl_time = 0;
};

std::unique_ptr<Backends> BuildBackends() {
  auto backends = std::make_unique<Backends>();
  Rng rng(kSeed);

  // Arecibo: 40 pointings x 125 candidates.
  auto candidates = arecibo::CandidateService::Create(&backends->arecibo_db);
  DFLOW_CHECK(candidates.ok());
  std::vector<arecibo::Candidate> batch;
  for (int pointing = 0; pointing < 40; ++pointing) {
    for (int i = 0; i < 125; ++i) {
      arecibo::Candidate candidate;
      candidate.pointing = pointing;
      candidate.beam = static_cast<int>(rng.Uniform(0, 6));
      candidate.freq_hz = rng.UniformReal(1.0, 700.0);
      candidate.dm = rng.UniformReal(10.0, 300.0);
      candidate.snr = rng.UniformReal(8.0, 40.0);
      candidate.rfi_flag = rng.Bernoulli(0.3);
      batch.push_back(candidate);
    }
  }
  DFLOW_CHECK((*candidates)->Load(batch).ok());
  DFLOW_CHECK(
      backends->registry.Mount("arecibo", std::move(*candidates)).ok());

  // CLEO: 60 runs x {raw, recon}, one evolving physics grade.
  auto store =
      eventstore::EventStore::Create(eventstore::StoreScale::kCollaboration);
  DFLOW_CHECK(store.ok());
  backends->event_store = std::move(*store);
  for (int64_t run = 1; run <= 60; ++run) {
    for (const char* data_type : {"raw", "recon"}) {
      DFLOW_CHECK(backends->event_store
                      ->RegisterFile({run, data_type, "R1",
                                      1000 + 10 * run,
                                      100000 + 1000 * run,
                                      "/hsm/" + std::string(data_type) + "/" +
                                          std::to_string(run),
                                      {}})
                      .ok());
    }
  }
  for (int64_t ts = 100; ts <= 500; ts += 100) {
    DFLOW_CHECK(backends->event_store
                    ->AssignGrade("physics", ts, {1, ts / 10}, "recon", "R1")
                    .ok());
  }
  DFLOW_CHECK(backends->registry
                  .Mount("cleo", std::make_shared<eventstore::EventStoreService>(
                                     backends->event_store.get()))
                  .ok());

  // WebLab: 400 synthetic pages preloaded through the real ARC/DAT path.
  weblab::CrawlerConfig config;
  config.initial_pages = 400;
  weblab::SyntheticCrawler crawler(config);
  weblab::Crawl crawl = crawler.NextCrawl();
  weblab::PreloadSubsystem preload(weblab::PreloadConfig{},
                                   &backends->weblab_db,
                                   &backends->page_store);
  DFLOW_CHECK(preload.LoadArcFiles({weblab::WriteArcFile(crawl.pages)}).ok());
  DFLOW_CHECK(preload.LoadDatFiles({weblab::WriteDatFile(crawl.pages)}).ok());
  for (const auto& page : crawl.pages) {
    backends->index.AddPage(page.url, page.content);
  }
  backends->crawl_time = crawl.crawl_time;
  for (size_t i = 0; i < crawl.pages.size(); i += 1) {
    backends->retro_urls.push_back(crawl.pages[i].url);
  }
  DFLOW_CHECK(backends->registry
                  .Mount("weblab", std::make_shared<weblab::WebLabService>(
                                       &backends->page_store,
                                       &backends->weblab_db,
                                       &backends->index))
                  .ok());
  return backends;
}

/// Real endpoint population spanning all three mounts (~490 requests).
std::vector<core::ServiceRequest> BuildPopulation(const Backends& backends) {
  std::vector<core::ServiceRequest> population;
  // Arecibo: top-candidate queries, per-pointing NVO exports, counts.
  for (int limit : {5, 10, 20, 50}) {
    for (const char* rfi : {"0", "1"}) {
      population.push_back(Req("arecibo/top", {{"limit", std::to_string(limit)},
                                               {"include_rfi", rfi}}));
    }
  }
  for (int pointing = 0; pointing < 40; ++pointing) {
    population.push_back(
        Req("arecibo/votable", {{"pointing", std::to_string(pointing)}}));
  }
  population.push_back(Req("arecibo/count"));
  population.push_back(Req("arecibo/pointings"));
  // CLEO: snapshot resolutions (immutable at explicit ts), versions,
  // summaries.
  for (int64_t ts = 150; ts <= 550; ts += 50) {
    population.push_back(Req("cleo/resolve", {{"grade", "physics"},
                                              {"ts", std::to_string(ts)}}));
  }
  for (int64_t run = 1; run <= 20; ++run) {
    population.push_back(Req("cleo/versions",
                             {{"run", std::to_string(run)},
                              {"data_type", "recon"}}));
  }
  population.push_back(Req("cleo/grades"));
  population.push_back(Req("cleo/history", {{"grade", "physics"}}));
  population.push_back(Req("cleo/summary"));
  // WebLab: retro-browse URLs, link extraction, metadata slices, search.
  const std::string date = std::to_string(backends.crawl_time + 5);
  for (size_t i = 0; i < backends.retro_urls.size() && i < 300; ++i) {
    population.push_back(
        Req("weblab/retro", {{"url", backends.retro_urls[i]}, {"date", date}}));
  }
  for (size_t i = 0; i < backends.retro_urls.size() && i < 100; ++i) {
    population.push_back(
        Req("weblab/links", {{"url", backends.retro_urls[i]}, {"date", date}}));
  }
  for (int limit : {10, 50, 100}) {
    population.push_back(
        Req("weblab/pages", {{"limit", std::to_string(limit)}}));
  }
  for (int w = 1; w <= 20; ++w) {
    population.push_back(Req("weblab/search", {{"q", "w" + std::to_string(w)}}));
  }
  return population;
}

// ---------------------------------------------------------------------------
// Load runners.

ServeConfig MakeConfig(size_t queue_depth) {
  ServeConfig config;
  config.num_workers = kWorkers;
  config.max_queue_depth = queue_depth;
  config.locking = ServeConfig::BackendLocking::kPerMount;
  return config;
}

struct RunResult {
  serve::ServeStats stats;
  LatencyHistogram latencies;
  double elapsed_sec = 0.0;
  double completed_qps() const {
    return elapsed_sec == 0.0 ? 0.0 : stats.completed / elapsed_sec;
  }
  double offered_qps() const {
    return elapsed_sec == 0.0 ? 0.0 : stats.offered / elapsed_sec;
  }
};

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Closed loop: `clients` threads issue blocking requests until each has
/// sent `per_client` (or `duration_sec` elapses when per_client == 0).
RunResult RunClosedLoop(core::ServiceRegistry* registry,
                        ShardedResponseCache* cache, WorkloadGen& master,
                        int clients, int per_client, double duration_sec) {
  ServeLoop loop(registry, MakeConfig(/*queue_depth=*/512), cache);
  std::vector<WorkloadGen> gens;
  gens.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    gens.push_back(master.Fork());
  }
  std::atomic<bool> stop{false};
  double start = NowSec();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&loop, &gens, &stop, c, per_client] {
      WorkloadGen& gen = gens[static_cast<size_t>(c)];
      for (int i = 0; per_client == 0 || i < per_client; ++i) {
        if (stop.load(std::memory_order_relaxed)) {
          break;
        }
        (void)loop.Execute(gen.Next());
      }
    });
  }
  if (per_client == 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(duration_sec));
    stop.store(true);
  }
  for (auto& thread : threads) {
    thread.join();
  }
  loop.Drain();
  RunResult result;
  result.elapsed_sec = NowSec() - start;
  result.stats = loop.Stats();
  result.latencies = loop.Latencies();
  return result;
}

/// Open loop: 4 submitter threads replay precomputed Poisson schedules at
/// an aggregate `rate_per_sec`, never waiting for responses — offered load
/// is independent of service capacity, which is what makes overload real.
RunResult RunOpenLoop(core::ServiceRegistry* registry,
                      ShardedResponseCache* cache, WorkloadGen& master,
                      double rate_per_sec, double duration_sec) {
  constexpr int kSubmitters = 4;
  ServeLoop loop(registry, MakeConfig(kQueueDepth), cache);
  std::vector<std::vector<serve::TimedRequest>> schedules;
  schedules.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    WorkloadGen gen = master.Fork();
    // Superposition of 4 independent Poisson streams at rate/4 is a
    // Poisson stream at the full rate.
    schedules.push_back(
        gen.OpenLoopSchedule(rate_per_sec / kSubmitters, duration_sec));
  }
  double start = NowSec();
  std::vector<std::thread> threads;
  threads.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    threads.emplace_back([&loop, &schedules, s, start] {
      for (const serve::TimedRequest& event :
           schedules[static_cast<size_t>(s)]) {
        // Pace to the schedule: coarse sleep, then yield.
        for (;;) {
          double now = NowSec() - start;
          double wait = event.at_sec - now;
          if (wait <= 0.0) {
            break;
          }
          if (wait > 0.001) {
            std::this_thread::sleep_for(std::chrono::duration<double>(
                wait - 0.0005));
          } else {
            std::this_thread::yield();
          }
        }
        (void)loop.Enqueue(event.request);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  loop.Drain();
  RunResult result;
  result.elapsed_sec = NowSec() - start;
  result.stats = loop.Stats();
  result.latencies = loop.Latencies();
  return result;
}

std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace

int main() {
  bench::Header(
      "E17: dissemination tier — throughput, hit rate, tail latency "
      "(bench_serve_tail)",
      "\"access to databases and some of the data analysis functionality "
      "is provided through Web Services already\" (§5) — scaled out behind "
      "a sharded cache with admission control");

  auto backends = BuildBackends();
  std::vector<core::ServiceRequest> population = BuildPopulation(*backends);

  // Sanity: every population endpoint answers OK, and we learn the total
  // response footprint to size the cache below.
  size_t total_entry_bytes = 0;
  for (const core::ServiceRequest& request : population) {
    auto response = backends->registry.Handle(request);
    if (!response.ok()) {
      std::printf("population request failed: %s -> %s\n",
                  request.path.c_str(), response.status().ToString().c_str());
      return 1;
    }
    total_entry_bytes += ShardedResponseCache::CanonicalKey(request).size() +
                         response->body.size() +
                         response->content_type.size() + 64;
  }
  // Cache holds ~15% of the full population footprint: skew has to earn
  // its hit rate.
  CacheConfig cache_config;
  cache_config.num_shards = 8;
  cache_config.capacity_bytes = std::max<size_t>(total_entry_bytes / 7, 4096);
  bench::Row("endpoint population", std::to_string(population.size()));
  bench::Row("population footprint (KB)",
             std::to_string(total_entry_bytes / 1024));
  bench::Row("cache capacity (KB, ~15%)",
             std::to_string(cache_config.capacity_bytes / 1024));

  // --- (c) Determinism: same seed => identical request stream. ----------
  WorkloadGen finger_a(population, 1.1, kSeed);
  WorkloadGen finger_b(population, 1.1, kSeed);
  std::string fp_a = finger_a.Fingerprint(20000);
  std::string fp_b = finger_b.Fingerprint(20000);
  bool replay_identical = fp_a == fp_b;
  bench::Row("request-stream fingerprint (20k reqs)", fp_a);
  bench::Row("same-seed replay identical", replay_identical ? "YES" : "NO");

  // --- Calibration: closed-loop saturation, cache off. ------------------
  WorkloadGen calib_gen(population, 1.1, kSeed + 1);
  RunResult calib = RunClosedLoop(&backends->registry, nullptr, calib_gen,
                                  kClosedLoopClients, /*per_client=*/0,
                                  /*duration_sec=*/0.8);
  double saturation_qps = calib.completed_qps();
  bench::Row("saturation throughput (8 clients, cache off)",
             Fmt("%.0f req/s", saturation_qps));
  bench::Row("  calibration latency", calib.latencies.Summary());

  // --- Hit rate vs Zipf skew (fixed capacity). --------------------------
  bench::Note("cache hit rate vs Zipf skew (closed loop, 4 clients x 5000):");
  std::vector<double> zipf_s = {0.0, 0.6, 1.0, 1.4};
  std::vector<double> zipf_hit_rate;
  std::vector<double> zipf_qps;
  for (double s : zipf_s) {
    ShardedResponseCache cache(cache_config);
    WorkloadGen gen(population, s, kSeed + 2);
    RunResult run = RunClosedLoop(&backends->registry, &cache, gen,
                                  /*clients=*/4, /*per_client=*/5000, 0.0);
    zipf_hit_rate.push_back(run.stats.cache_hit_rate());
    zipf_qps.push_back(run.completed_qps());
    bench::Row(Fmt("  s=%.1f", s),
               Fmt("hit rate %.3f", run.stats.cache_hit_rate()) + ", " +
                   Fmt("%.0f req/s", run.completed_qps()));
  }

  // --- (a) Cache on/off ablation at Zipf s=1.1. -------------------------
  WorkloadGen ablation_on_gen(population, 1.1, kSeed + 3);
  WorkloadGen ablation_off_gen(population, 1.1, kSeed + 3);
  ShardedResponseCache ablation_cache(cache_config);
  RunResult cache_on =
      RunClosedLoop(&backends->registry, &ablation_cache, ablation_on_gen,
                    kClosedLoopClients, /*per_client=*/5000, 0.0);
  RunResult cache_off =
      RunClosedLoop(&backends->registry, nullptr, ablation_off_gen,
                    kClosedLoopClients, /*per_client=*/5000, 0.0);
  double speedup = cache_off.completed_qps() == 0.0
                       ? 0.0
                       : cache_on.completed_qps() / cache_off.completed_qps();
  bench::Row("cache ON  (s=1.1)",
             Fmt("%.0f req/s", cache_on.completed_qps()) + ", " +
                 Fmt("hit rate %.3f", cache_on.stats.cache_hit_rate()));
  bench::Row("cache OFF (s=1.1)", Fmt("%.0f req/s", cache_off.completed_qps()));
  bench::Row("cache speedup", Fmt("%.2fx", speedup));

  // --- (b) Open-loop overload sweep, cache off. -------------------------
  bench::Note(
      "open-loop overload (cache off, queue depth 64): offered vs shed vs "
      "p99 of admitted:");
  struct OverloadPoint {
    double factor;
    double offered_target_qps;
    RunResult run;
  };
  std::vector<OverloadPoint> overload;
  constexpr double kOverloadDuration = 1.2;
  for (double factor : {0.5, 1.0, 2.0}) {
    WorkloadGen gen(population, 1.1, kSeed + 4);
    OverloadPoint point;
    point.factor = factor;
    point.offered_target_qps = factor * saturation_qps;
    point.run = RunOpenLoop(&backends->registry, nullptr, gen,
                            point.offered_target_qps, kOverloadDuration);
    const RunResult& run = point.run;
    bench::Row(Fmt("  %.1fx saturation", factor),
               Fmt("offered %.0f/s", run.offered_qps()) + ", " +
                   Fmt("done %.0f/s", run.completed_qps()) + ", " +
                   Fmt("shed %.1f%%", 100.0 * run.stats.shed_fraction()) +
                   ", p99 " +
                   Fmt("%.2fms", 1e3 * run.latencies.Percentile(0.99)));
    bench::Row("      latency", run.latencies.Summary());
    overload.push_back(std::move(point));
  }

  // --- Shape checks. ----------------------------------------------------
  bool zipf_monotone = true;
  for (size_t i = 1; i < zipf_hit_rate.size(); ++i) {
    zipf_monotone &= zipf_hit_rate[i] >= zipf_hit_rate[i - 1] - 0.02;
  }
  bool skew_earns_hits = zipf_hit_rate.back() > zipf_hit_rate.front() + 0.10;
  bool cache_wins = cache_on.completed_qps() > cache_off.completed_qps() &&
                    cache_on.stats.cache_hit_rate() > 0.30;
  double shed_lo = overload.front().run.stats.shed_fraction();
  double shed_hi = overload.back().run.stats.shed_fraction();
  bool shedding_rises = shed_hi > 0.05 && shed_hi > shed_lo + 0.02;
  // Bounded queue => bounded wait: even at 2x offered load the p99 of
  // admitted requests must stay far below the run duration (an unbounded
  // queue would push it toward duration/2).
  double p99_overload = overload.back().run.latencies.Percentile(0.99);
  bool p99_bounded = p99_overload < 0.25 * kOverloadDuration;
  bool no_errors = true;
  for (const OverloadPoint& point : overload) {
    no_errors &= point.run.stats.errors == 0;
    no_errors &= point.run.stats.admitted ==
                 point.run.stats.completed + point.run.stats.errors +
                     point.run.stats.deadline_expired;
  }

  bool shape_holds = replay_identical && zipf_monotone && skew_earns_hits &&
                     cache_wins && shedding_rises && p99_bounded && no_errors;

  bench::Note(std::string("replay_identical=") +
              (replay_identical ? "yes" : "no") +
              " zipf_monotone=" + (zipf_monotone ? "yes" : "no") +
              " skew_earns_hits=" + (skew_earns_hits ? "yes" : "no") +
              " cache_wins=" + (cache_wins ? "yes" : "no") +
              " shedding_rises=" + (shedding_rises ? "yes" : "no") +
              " p99_bounded=" + (p99_bounded ? "yes" : "no") +
              " no_errors=" + (no_errors ? "yes" : "no"));

  // --- BENCH_serve.json. ------------------------------------------------
  {
    std::ofstream json("BENCH_serve.json");
    json << "{\n";
    json << "  \"bench\": \"bench_serve_tail\",\n";
    json << "  \"seed\": " << kSeed << ",\n";
    json << "  \"config\": {\"workers\": " << kWorkers
         << ", \"queue_depth\": " << kQueueDepth
         << ", \"population\": " << population.size()
         << ", \"cache_capacity_bytes\": " << cache_config.capacity_bytes
         << ", \"cache_shards\": " << cache_config.num_shards << "},\n";
    json << "  \"determinism\": {\"fingerprint\": \"" << fp_a
         << "\", \"replay_identical\": "
         << (replay_identical ? "true" : "false") << "},\n";
    json << "  \"calibration\": {\"clients\": " << kClosedLoopClients
         << ", \"saturation_qps\": " << Fmt("%.1f", saturation_qps)
         << "},\n";
    json << "  \"zipf_sweep\": [";
    for (size_t i = 0; i < zipf_s.size(); ++i) {
      json << (i == 0 ? "" : ", ") << "{\"s\": " << zipf_s[i]
           << ", \"hit_rate\": " << Fmt("%.4f", zipf_hit_rate[i])
           << ", \"throughput_qps\": " << Fmt("%.1f", zipf_qps[i]) << "}";
    }
    json << "],\n";
    json << "  \"cache_ablation\": {\"zipf_s\": 1.1, \"on_qps\": "
         << Fmt("%.1f", cache_on.completed_qps())
         << ", \"off_qps\": " << Fmt("%.1f", cache_off.completed_qps())
         << ", \"hit_rate\": "
         << Fmt("%.4f", cache_on.stats.cache_hit_rate())
         << ", \"speedup\": " << Fmt("%.3f", speedup) << "},\n";
    json << "  \"overload\": [";
    for (size_t i = 0; i < overload.size(); ++i) {
      const OverloadPoint& point = overload[i];
      const RunResult& run = point.run;
      json << (i == 0 ? "" : ", ") << "{\"offered_x\": " << point.factor
           << ", \"offered_qps\": " << Fmt("%.1f", run.offered_qps())
           << ", \"completed_qps\": " << Fmt("%.1f", run.completed_qps())
           << ", \"shed_fraction\": "
           << Fmt("%.4f", run.stats.shed_fraction())
           << ", \"p50_ms\": "
           << Fmt("%.3f", 1e3 * run.latencies.Percentile(0.50))
           << ", \"p99_ms\": "
           << Fmt("%.3f", 1e3 * run.latencies.Percentile(0.99))
           << ", \"p999_ms\": "
           << Fmt("%.3f", 1e3 * run.latencies.Percentile(0.999))
           << ", \"deadline_expired\": " << run.stats.deadline_expired
           << "}";
    }
    json << "],\n";
    json << "  \"shape_holds\": " << (shape_holds ? "true" : "false")
         << "\n";
    json << "}\n";
  }
  bench::Note("machine-readable results written to BENCH_serve.json");

  bench::Footer(shape_holds);
  return shape_holds ? 0 : 1;
}
