// E11: WebLab preload throughput.
// Paper (Section 4.1): target of "downloading one complete crawl of the
// Web for each year since 1996 at an average speed of 250 GB/day"; "Each
// [processing component] has been tested at sustained rates of
// approximately 1 TB per day, when given sole use of the system.
// Experiments will be carried out ... to determine the best mix of jobs";
// "Extensive benchmarking is required to tune many parameters, such as
// batch size, file size, degree of parallelism, and the index management."

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/report.h"
#include "db/database.h"
#include "util/units.h"
#include "weblab/crawler.h"
#include "weblab/preload.h"

namespace {

using namespace dflow;

struct Workload {
  std::vector<std::string> arcs;
  std::vector<std::string> dats;
  int64_t compressed_bytes = 0;
};

Workload MakeWorkload(int pages, int pages_per_file) {
  weblab::CrawlerConfig config;
  config.initial_pages = pages;
  weblab::SyntheticCrawler crawler(config);
  weblab::Crawl crawl = crawler.NextCrawl();
  Workload workload;
  for (size_t start = 0; start < crawl.pages.size();
       start += static_cast<size_t>(pages_per_file)) {
    size_t end = std::min(start + static_cast<size_t>(pages_per_file),
                          crawl.pages.size());
    std::vector<weblab::WebPage> chunk(crawl.pages.begin() + start,
                                       crawl.pages.begin() + end);
    workload.arcs.push_back(weblab::WriteArcFile(chunk));
    workload.dats.push_back(weblab::WriteDatFile(chunk));
  }
  for (const std::string& blob : workload.arcs) {
    workload.compressed_bytes += static_cast<int64_t>(blob.size());
  }
  for (const std::string& blob : workload.dats) {
    workload.compressed_bytes += static_cast<int64_t>(blob.size());
  }
  return workload;
}

}  // namespace

int main() {
  bench::Header("E11 -- preload throughput vs batch size / parallelism / "
                "file size",
                "250 GB/day ingest target; ~1 TB/day per component "
                "standalone; tuning parameters matter");

  Workload workload = MakeWorkload(4000, 250);
  bench::Row("workload",
             std::to_string(workload.arcs.size()) + " ARC + " +
                 std::to_string(workload.dats.size()) + " DAT files, " +
                 FormatBytes(workload.compressed_bytes) + " compressed");

  std::printf("\n  %-14s %-12s %-10s %-14s %-16s %s\n", "parallelism",
              "batch size", "indexes", "ARC rate", "DAT rate",
              "scaled (TB/day)");
  double best_rate = 0.0;
  double arc_rate = 0.0, dat_rate_indexed = 0.0, dat_rate_bare = 0.0;
  for (int parallelism : {1, 4}) {
    for (int batch : {64, 1024}) {
      for (bool indexes : {true, false}) {
        db::Database db;
        weblab::PageStore store;
        weblab::PreloadConfig config;
        config.parallelism = parallelism;
        config.batch_size = batch;
        config.build_indexes = indexes;
        weblab::PreloadSubsystem preload(config, &db, &store);
        auto arc_stats = preload.LoadArcFiles(workload.arcs);
        auto dat_stats = preload.LoadDatFiles(workload.dats);
        if (!arc_stats.ok() || !dat_stats.ok()) {
          return 1;
        }
        double total_rate =
            (static_cast<double>(arc_stats->compressed_bytes_in) +
             static_cast<double>(dat_stats->compressed_bytes_in)) /
            (arc_stats->wall_seconds + dat_stats->wall_seconds);
        std::printf("  %-14d %-12d %-10s %-14s %-16s %.2f\n", parallelism,
                    batch, indexes ? "yes" : "no",
                    FormatRate(arc_stats->BytesPerSecond()).c_str(),
                    FormatRate(dat_stats->BytesPerSecond()).c_str(),
                    total_rate * kDay / kTB);
        if (parallelism == 4 && batch == 1024) {
          (indexes ? dat_rate_indexed : dat_rate_bare) =
              dat_stats->BytesPerSecond();
          arc_rate = arc_stats->BytesPerSecond();
        }
        best_rate = std::max(best_rate, total_rate);
      }
    }
  }

  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.2f TB/day", best_rate * kDay / kTB);
  bench::Row("best sustained rate (scaled)", buf);
  double target = 250.0 * kGB / kDay;
  bench::Row("250 GB/day target",
             best_rate > target ? "comfortably exceeded" : "NOT met");
  std::snprintf(buf, sizeof(buf), "%.1fx faster without inline indexing",
                dat_rate_bare / dat_rate_indexed);
  bench::Row("index-management effect on the DB load", buf);
  std::snprintf(buf, sizeof(buf), "%.0fx faster than the metadata load",
                arc_rate / dat_rate_indexed);
  bench::Row("content path vs metadata path", buf);
  bench::Note("the pipeline bottleneck is the serialized, index-managed "
              "database load -- exactly the 'batch size ... and the index "
              "management' tuning the paper says needs extensive "
              "benchmarking; the 'best mix of jobs' runs the fast content "
              "path concurrently with it");

  bool shape = best_rate > target && dat_rate_bare > dat_rate_indexed &&
               arc_rate > 3 * dat_rate_indexed;
  bench::Footer(shape);
  return shape ? 0 : 1;
}
