// Observability overhead: what does the dflow::obs substrate cost?
//
// The tenet behind src/obs is that the disabled path must be near-free (a
// null check / one relaxed atomic load per instrumentation site) and the
// enabled path cheap enough to leave on in production-style runs — the
// paper's operators watched their pipelines continuously, not in special
// profiling sessions. This bench measures both, three ways:
//
//   1. E17 serve workload, backend-bound (cache off): closed-loop Zipf
//      traffic over the real Arecibo candidate mount (the first of E17's
//      three services, same ServeLoop path: admission, histograms,
//      dispatch). Gate: tracing enabled costs <= 5% throughput, tracing
//      attached-but-disabled ~0%.
//   2. The same workload cache-on (cache-hit-bound): the adversarial
//      case — almost no backend work, so the relative cost of the span
//      writes is maximal. Reported, not gated.
//   3. The Fig. 1 (Arecibo) and Fig. 2 (CLEO) flows under the simulation
//      clock: CPU time of FlowRunner::Run() with the tracer detached /
//      disabled / enabled. Disabled is gated ~0%; enabled is reported
//      (every simulated product is traced, there is no backend work to
//      hide behind).
//
// All measurements are process-CPU-time based (best-of-N, modes
// interleaved): instrumentation overhead is cycles burned, and CPU time
// is immune to the wall-clock noise other tenants inject on a shared box.
//
// Machine-readable results land in BENCH_obs.json next to the binary so
// the perf trajectory starts tracking tracing overhead.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "arecibo/candidate_service.h"
#include "arecibo/flow.h"
#include "bench/report.h"
#include "core/flow_graph.h"
#include "core/flow_runner.h"
#include "core/web_service.h"
#include "db/database.h"
#include "eventstore/flow.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/response_cache.h"
#include "serve/serve_loop.h"
#include "serve/workload_gen.h"
#include "sim/simulation.h"
#include "util/logging.h"
#include "util/rng.h"

namespace {

using namespace dflow;
using serve::CacheConfig;
using serve::ServeConfig;
using serve::ServeLoop;
using serve::ShardedResponseCache;
using serve::WorkloadGen;

constexpr uint64_t kSeed = 20060206;
// Overhead measurement wants the least-noisy configuration, not the
// highest-throughput one: one closed-loop client over one worker keeps
// the serve path fully exercised (admission, dispatch, histograms,
// completion) while removing scheduler jitter from the signal — which on
// a small/shared box would otherwise dwarf a few-percent effect.
constexpr int kWorkers = 1;
constexpr int kClients = 1;
constexpr int kPerClient = 600;
constexpr int kReps = 5;  // Interleaved best-of, to suppress machine noise.

/// How the observability hooks are wired for one run.
struct ObsMode {
  const char* name;
  bool attach;   // Tracer + registry handed to the subsystem?
  bool enabled;  // Tracer recording?
};

constexpr ObsMode kModes[] = {
    {"baseline (no observer)", false, false},
    {"attached, tracing disabled", true, false},
    {"attached, tracing enabled", true, true},
};

/// Process CPU time, not wall time: the overhead of an instrumentation
/// site is the cycles it burns, and on a shared box other tenants' load
/// pollutes the wall clock but never bills to our CPU clock. All threads
/// of this process (clients + serve workers) are counted.
double CpuNowSec() {
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

core::ServiceRequest Req(const std::string& path,
                         std::map<std::string, std::string> params = {}) {
  core::ServiceRequest request;
  request.path = path;
  request.params = std::move(params);
  return request;
}

// ---------------------------------------------------------------------------
// Serve workload: the E17 Arecibo candidate mount.

struct Backend {
  db::Database db;
  core::ServiceRegistry registry;
};

std::unique_ptr<Backend> BuildBackend() {
  auto backend = std::make_unique<Backend>();
  Rng rng(kSeed);
  auto candidates = arecibo::CandidateService::Create(&backend->db);
  DFLOW_CHECK(candidates.ok());
  std::vector<arecibo::Candidate> batch;
  for (int pointing = 0; pointing < 40; ++pointing) {
    for (int i = 0; i < 125; ++i) {
      arecibo::Candidate candidate;
      candidate.pointing = pointing;
      candidate.beam = static_cast<int>(rng.Uniform(0, 6));
      candidate.freq_hz = rng.UniformReal(1.0, 700.0);
      candidate.dm = rng.UniformReal(10.0, 300.0);
      candidate.snr = rng.UniformReal(8.0, 40.0);
      candidate.rfi_flag = rng.Bernoulli(0.3);
      batch.push_back(candidate);
    }
  }
  DFLOW_CHECK((*candidates)->Load(batch).ok());
  DFLOW_CHECK(backend->registry.Mount("arecibo", std::move(*candidates)).ok());
  return backend;
}

std::vector<core::ServiceRequest> BuildPopulation() {
  std::vector<core::ServiceRequest> population;
  for (int limit : {5, 10, 20, 50}) {
    for (const char* rfi : {"0", "1"}) {
      population.push_back(Req("arecibo/top", {{"limit", std::to_string(limit)},
                                               {"include_rfi", rfi}}));
    }
  }
  for (int pointing = 0; pointing < 40; ++pointing) {
    population.push_back(
        Req("arecibo/votable", {{"pointing", std::to_string(pointing)}}));
  }
  population.push_back(Req("arecibo/count"));
  population.push_back(Req("arecibo/pointings"));
  return population;
}

/// One closed-loop run; returns completed requests per CPU second.
double RunServeOnce(Backend* backend,
                    const std::vector<core::ServiceRequest>& population,
                    const ObsMode& mode, bool use_cache) {
  obs::Tracer tracer;  // Wall clock; profiling, not golden traces.
  tracer.SetEnabled(mode.enabled);
  obs::MetricsRegistry metrics;
  ShardedResponseCache cache(CacheConfig{16, 32u << 20, 0.0});

  ServeConfig config;
  config.num_workers = kWorkers;
  config.max_queue_depth = 512;
  if (mode.attach) {
    config.tracer = &tracer;
    config.metrics = &metrics;
  }
  ServeLoop loop(&backend->registry, config, use_cache ? &cache : nullptr);

  WorkloadGen master(population, /*zipf_s=*/1.1, kSeed);
  std::vector<WorkloadGen> gens;
  gens.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    gens.push_back(master.Fork());
  }
  double start = CpuNowSec();
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&loop, &gens, c] {
      WorkloadGen& gen = gens[static_cast<size_t>(c)];
      for (int i = 0; i < kPerClient; ++i) {
        (void)loop.Execute(gen.Next());
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  loop.Drain();
  double elapsed = CpuNowSec() - start;
  serve::ServeStats stats = loop.Stats();
  return elapsed == 0.0 ? 0.0 : static_cast<double>(stats.completed) / elapsed;
}

/// Best-of-kReps per mode, with the modes INTERLEAVED (b, d, e, b, d, e,
/// ...) so slow machine-wide drift — other tenants, thermal state — hits
/// every mode equally instead of biasing whichever ran first.
void BestServeQps(Backend* backend,
                  const std::vector<core::ServiceRequest>& population,
                  bool use_cache, double qps_out[3]) {
  for (int m = 0; m < 3; ++m) {
    qps_out[m] = 0.0;
  }
  for (int rep = 0; rep < kReps; ++rep) {
    for (int m = 0; m < 3; ++m) {
      qps_out[m] = std::max(
          qps_out[m], RunServeOnce(backend, population, kModes[m], use_cache));
    }
  }
}

// ---------------------------------------------------------------------------
// Flow workloads: Fig. 1 (Arecibo) and Fig. 2 (CLEO) under the simulation.

/// One traced (or not) run of both figure flows; returns CPU seconds.
double RunFlowsOnce(const ObsMode& mode) {
  double start = CpuNowSec();
  {
    sim::Simulation simulation;
    core::FlowGraph graph;
    arecibo::SurveyConfig config;
    DFLOW_CHECK_OK(arecibo::BuildAreciboFlow(config, &graph));
    core::FlowRunner runner(&simulation, &graph, kSeed);
    obs::MetricsRegistry metrics;
    obs::TracerConfig trace_config;
    trace_config.clock = obs::TracerConfig::ClockMode::kExternal;
    trace_config.external_now_sec = [&simulation] { return simulation.Now(); };
    obs::Tracer tracer(trace_config);
    tracer.SetEnabled(mode.enabled);
    if (mode.attach) {
      DFLOW_CHECK_OK(runner.SetMetricsRegistry(&metrics));
      DFLOW_CHECK_OK(runner.SetTracer(&tracer));
    }
    DFLOW_CHECK_OK(arecibo::ConfigureAreciboSites(&runner));
    DFLOW_CHECK_OK(arecibo::InjectObservingBlock(config, &runner));
    DFLOW_CHECK_OK(runner.Run());
  }
  {
    sim::Simulation simulation;
    core::FlowGraph graph;
    eventstore::CleoFlowConfig config;
    DFLOW_CHECK_OK(eventstore::BuildCleoFlow(config, &graph));
    core::FlowRunner runner(&simulation, &graph, kSeed);
    obs::MetricsRegistry metrics;
    obs::TracerConfig trace_config;
    trace_config.clock = obs::TracerConfig::ClockMode::kExternal;
    trace_config.external_now_sec = [&simulation] { return simulation.Now(); };
    obs::Tracer tracer(trace_config);
    tracer.SetEnabled(mode.enabled);
    if (mode.attach) {
      DFLOW_CHECK_OK(runner.SetMetricsRegistry(&metrics));
      DFLOW_CHECK_OK(runner.SetTracer(&tracer));
    }
    DFLOW_CHECK_OK(eventstore::InjectCleoDay(config, &runner));
    DFLOW_CHECK_OK(runner.Run());
  }
  return CpuNowSec() - start;
}

/// Interleaved best-of (minimum wall seconds) per mode; see BestServeQps.
void BestFlowsSec(double sec_out[3]) {
  for (int m = 0; m < 3; ++m) {
    sec_out[m] = 1e300;
  }
  for (int rep = 0; rep < kReps; ++rep) {
    for (int m = 0; m < 3; ++m) {
      sec_out[m] = std::min(sec_out[m], RunFlowsOnce(kModes[m]));
    }
  }
}

std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

/// Fractional slowdown of `measured` vs `baseline` throughput (negative
/// means the run was faster than baseline — measurement noise).
double Overhead(double baseline_qps, double measured_qps) {
  return baseline_qps == 0.0 ? 0.0 : 1.0 - measured_qps / baseline_qps;
}

}  // namespace

int main() {
  bench::Header(
      "bench_obs_overhead: cost of the dflow::obs tracing/metrics substrate",
      "operators watch the pipeline continuously; monitoring must not "
      "tax the flow it watches");

  auto backend = BuildBackend();
  std::vector<core::ServiceRequest> population = BuildPopulation();

  // Untimed warm-up: page in the db, the thread pool, and the allocator so
  // the first measured mode is not charged for cold starts.
  (void)RunServeOnce(backend.get(), population, kModes[0], false);
  (void)RunFlowsOnce(kModes[0]);

  // --- 1. E17 serve workload, backend-bound (cache off). ------------------
  double serve_qps[3];
  BestServeQps(backend.get(), population, /*use_cache=*/false, serve_qps);
  double serve_disabled_overhead = Overhead(serve_qps[0], serve_qps[1]);
  double serve_enabled_overhead = Overhead(serve_qps[0], serve_qps[2]);
  bench::Note("E17 serve workload, cache OFF (backend-bound):");
  for (int m = 0; m < 3; ++m) {
    bench::Row(kModes[m].name, Fmt("%.0f req/CPU-s",serve_qps[m]));
  }
  bench::Row("overhead, tracing disabled",
             Fmt("%+.1f%%", 100.0 * serve_disabled_overhead));
  bench::Row("overhead, tracing enabled",
             Fmt("%+.1f%%", 100.0 * serve_enabled_overhead));

  // --- 2. Same workload, cache on (cache-hit-bound; adversarial). ---------
  double cached_qps[3];
  BestServeQps(backend.get(), population, /*use_cache=*/true, cached_qps);
  bench::Note("E17 serve workload, cache ON (cache-hit-bound, worst case):");
  for (int m = 0; m < 3; ++m) {
    bench::Row(kModes[m].name, Fmt("%.0f req/CPU-s",cached_qps[m]));
  }
  bench::Row("overhead, tracing enabled",
             Fmt("%+.1f%%", 100.0 * Overhead(cached_qps[0], cached_qps[2])));

  // --- 3. Fig. 1 + Fig. 2 flows under the simulation. ---------------------
  double flows_sec[3];
  BestFlowsSec(flows_sec);
  double flows_disabled_overhead =
      flows_sec[0] == 0.0 ? 0.0 : flows_sec[1] / flows_sec[0] - 1.0;
  double flows_enabled_overhead =
      flows_sec[0] == 0.0 ? 0.0 : flows_sec[2] / flows_sec[0] - 1.0;
  bench::Note("Fig. 1 (Arecibo) + Fig. 2 (CLEO) flow runs (CPU time):");
  for (int m = 0; m < 3; ++m) {
    bench::Row(kModes[m].name, Fmt("%.1f CPU ms", 1e3 * flows_sec[m]));
  }
  bench::Row("overhead, tracing disabled",
             Fmt("%+.1f%%", 100.0 * flows_disabled_overhead));
  bench::Row("overhead, tracing enabled",
             Fmt("%+.1f%%", 100.0 * flows_enabled_overhead));

  // --- Shape: disabled is ~free, enabled <= 5% where there is a backend. --
  bool disabled_near_zero = serve_disabled_overhead <= 0.03;
  bool enabled_within_budget = serve_enabled_overhead <= 0.05;
  bool flows_disabled_near_zero = flows_disabled_overhead <= 0.05;
  bool shape_holds =
      disabled_near_zero && enabled_within_budget && flows_disabled_near_zero;

  // --- BENCH_obs.json. ----------------------------------------------------
  {
    std::ofstream json("BENCH_obs.json");
    json << "{\n";
    json << "  \"serve_backend_bound\": {\n";
    json << "    \"baseline_qps\": " << Fmt("%.1f", serve_qps[0]) << ",\n";
    json << "    \"disabled_qps\": " << Fmt("%.1f", serve_qps[1]) << ",\n";
    json << "    \"enabled_qps\": " << Fmt("%.1f", serve_qps[2]) << ",\n";
    json << "    \"disabled_overhead\": "
         << Fmt("%.4f", serve_disabled_overhead) << ",\n";
    json << "    \"enabled_overhead\": "
         << Fmt("%.4f", serve_enabled_overhead) << "\n";
    json << "  },\n";
    json << "  \"serve_cache_hit_bound\": {\n";
    json << "    \"baseline_qps\": " << Fmt("%.1f", cached_qps[0]) << ",\n";
    json << "    \"disabled_qps\": " << Fmt("%.1f", cached_qps[1]) << ",\n";
    json << "    \"enabled_qps\": " << Fmt("%.1f", cached_qps[2]) << ",\n";
    json << "    \"enabled_overhead\": "
         << Fmt("%.4f", Overhead(cached_qps[0], cached_qps[2])) << "\n";
    json << "  },\n";
    json << "  \"figure_flows\": {\n";
    json << "    \"baseline_sec\": " << Fmt("%.5f", flows_sec[0]) << ",\n";
    json << "    \"disabled_sec\": " << Fmt("%.5f", flows_sec[1]) << ",\n";
    json << "    \"enabled_sec\": " << Fmt("%.5f", flows_sec[2]) << ",\n";
    json << "    \"disabled_overhead\": "
         << Fmt("%.4f", flows_disabled_overhead) << ",\n";
    json << "    \"enabled_overhead\": "
         << Fmt("%.4f", flows_enabled_overhead) << "\n";
    json << "  },\n";
    json << "  \"shape_holds\": " << (shape_holds ? "true" : "false") << "\n";
    json << "}\n";
  }
  bench::Note("machine-readable results written to BENCH_obs.json");

  bench::Footer(shape_holds);
  return shape_holds ? 0 : 1;
}
