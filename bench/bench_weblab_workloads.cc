// E14: the social-science researcher workloads.
// Paper (Section 4): "researchers wish to extract a portion of the Web to
// analyze in depth ... several time slices, so that they can study how
// things change over time"; "a Retro Browser to browse the Web as it was
// at a certain date, a facility to extract subsets of the collection ...
// extraction of the Web graph and calculations of graph statistics";
// "extend research on burst detection ... to identify emerging topics";
// stratified samples.

#include <chrono>
#include <cstdio>

#include "bench/report.h"
#include "db/database.h"
#include "util/units.h"
#include "weblab/analysis.h"
#include "weblab/crawler.h"
#include "weblab/preload.h"
#include "weblab/retro_browser.h"
#include "weblab/web_graph.h"

namespace {

using namespace dflow;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  bench::Header("E14 -- researcher workloads on the loaded archive",
                "time-sliced subset extraction, stratified samples, burst "
                "detection, retro browsing, graph statistics");

  // Build and load four bimonthly crawls through the preload path.
  weblab::CrawlerConfig crawler_config;
  crawler_config.initial_pages = 1500;
  crawler_config.new_pages_per_crawl = 200;
  crawler_config.burst_start_crawl = 3;
  crawler_config.burst_end_crawl = 3;
  weblab::SyntheticCrawler crawler(crawler_config);
  db::Database db;
  weblab::PageStore page_store;
  weblab::PreloadSubsystem preload(weblab::PreloadConfig{}, &db, &page_store);
  weblab::BurstDetector burst_detector(10, 3.0);

  std::vector<weblab::Crawl> crawls;
  for (int i = 0; i < 4; ++i) {
    crawls.push_back(crawler.NextCrawl());
    const weblab::Crawl& crawl = crawls.back();
    std::vector<std::string> arcs = {weblab::WriteArcFile(crawl.pages)};
    std::vector<std::string> dats = {weblab::WriteDatFile(crawl.pages)};
    if (!preload.LoadArcFiles(arcs).ok() ||
        !preload.LoadDatFiles(dats).ok()) {
      return 1;
    }
    burst_detector.AddCrawl(crawl.crawl_index, crawl.pages);
  }
  bench::Row("archive loaded",
             std::to_string(page_store.NumVersions()) + " page versions, " +
                 FormatBytes(page_store.TotalBytes()) + " content");

  // 1. Time-sliced subset extraction via SQL.
  double start = NowSeconds();
  auto subset = db.Execute(
      "SELECT url, bytes FROM pages WHERE crawl_ts = " +
      std::to_string(crawls[1].crawl_time) +
      " AND url LIKE 'http://site7.%' ORDER BY bytes DESC");
  double subset_ms = (NowSeconds() - start) * 1000;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%zu pages in %.2f ms",
                subset->rows.size(), subset_ms);
  bench::Row("time-sliced domain subset (SQL)", buf);
  bool subset_ok = subset.ok() && !subset->rows.empty();

  // 2. Stratified sample across domains.
  std::vector<weblab::PageMetadata> latest_meta;
  for (const auto& page : crawls.back().pages) {
    weblab::PageMetadata meta;
    meta.url = page.url;
    meta.links = page.links;
    latest_meta.push_back(std::move(meta));
  }
  auto sample = weblab::StratifiedSampleByDomain(latest_meta, 10, 1996);
  std::snprintf(buf, sizeof(buf), "%zu pages across %d domains",
                sample.size(), crawler_config.num_domains);
  bench::Row("stratified sample (10/domain)", buf);
  bool sample_ok = sample.size() ==
                   static_cast<size_t>(10 * crawler_config.num_domains);

  // 3. Burst detection across the time slices.
  auto bursts = burst_detector.FindBursts();
  bool burst_ok = !bursts.empty() && bursts[0].term == "election" &&
                  bursts[0].crawl_index == 3;
  std::snprintf(buf, sizeof(buf), "top term '%s' in crawl %d (score %.1f)",
                bursts.empty() ? "-" : bursts[0].term.c_str(),
                bursts.empty() ? 0 : bursts[0].crawl_index,
                bursts.empty() ? 0.0 : bursts[0].score);
  bench::Row("burst detection", buf);

  // 4. Retro browsing with navigation.
  weblab::RetroBrowser browser(&page_store, &db);
  start = NowSeconds();
  // Start from a page with outlinks (page 0 predates all link targets).
  auto page = browser.Browse(crawls[0].pages[100].url,
                             crawls[1].crawl_time + 1);
  int hops = 0;
  while (page.ok() && hops < 5 && !page->links.empty()) {
    page = browser.FollowLink(*page, 0, crawls[1].crawl_time + 1);
    ++hops;
  }
  double browse_ms = (NowSeconds() - start) * 1000;
  std::snprintf(buf, sizeof(buf), "%d link hops in %.2f ms", hops,
                browse_ms);
  bench::Row("retro browsing session", buf);
  bool browse_ok = hops >= 1;

  // 5. Web-graph statistics of the latest slice.
  weblab::WebGraph graph = weblab::WebGraph::FromMetadata(latest_meta);
  auto [components, num_components] = graph.WeaklyConnectedComponents();
  auto hist = graph.InDegreeHistogram(32);
  auto rank = graph.PageRank(15);
  std::snprintf(buf, sizeof(buf),
                "%lld nodes, %lld edges, %d weak components",
                static_cast<long long>(graph.num_nodes()),
                static_cast<long long>(graph.num_edges()), num_components);
  bench::Row("web graph of the latest slice", buf);
  // Heavy-tailed in-degrees: some node far above the mean.
  int64_t tail = hist.back();
  std::snprintf(buf, sizeof(buf), "%lld nodes with in-degree >= 32",
                static_cast<long long>(tail));
  bench::Row("heavy tail", buf);
  bool graph_ok = num_components >= 1 && tail > 0;

  bool shape = subset_ok && sample_ok && burst_ok && browse_ok && graph_ok;
  bench::Footer(shape);
  return shape ? 0 : 1;
}
