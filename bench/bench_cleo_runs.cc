// E6: CLEO run structure and archive arithmetic.
// Paper (Section 3.1): runs are "typically between 45 and 60 minutes" with
// "between 15K and 300K particle collision events"; "CLEO has accumulated
// more than 90 Terabytes of data, including data products"; post-recon has
// "typically a dozen ASUs per event".

#include <cstdio>

#include "bench/report.h"
#include "eventstore/event_model.h"
#include "eventstore/passes.h"
#include "sim/stats.h"
#include "util/units.h"

int main() {
  using namespace dflow;
  using eventstore::CollisionGenerator;
  using eventstore::CollisionGeneratorConfig;

  bench::Header("E6 -- CLEO runs: durations, event counts, archive growth",
                "45-60 min runs of 15K-300K events; >90 TB accumulated; a "
                "dozen post-recon ASUs per event");

  CollisionGeneratorConfig config;
  CollisionGenerator generator(config, 2006);
  eventstore::ReconstructionPass recon("Feb13_04_P2", "cal", 1000);
  eventstore::PostReconPass post("Mar12_04", 2000);

  sim::SummaryStats durations, event_counts, event_bytes, postrecon_asus;
  int64_t raw_total = 0, recon_total = 0, post_total = 0;
  const int num_runs = 200;
  for (int i = 0; i < num_runs; ++i) {
    eventstore::Run run = generator.NextRun(i * 4000.0);
    durations.Add(run.duration_sec / kMinute);
    event_counts.Add(static_cast<double>(run.num_events));
    raw_total += run.AccountedBytes();
    for (const auto& event : run.events) {
      event_bytes.Add(static_cast<double>(event.SizeBytes()));
    }
    auto recon_out = recon.Process(run);
    auto post_out = post.Process(recon_out->run);
    recon_total += recon_out->run.AccountedBytes();
    post_total += post_out->run.AccountedBytes();
    postrecon_asus.Add(
        static_cast<double>(post_out->run.events[0].asus.size()));
  }

  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.1f - %.1f min (mean %.1f)",
                durations.min(), durations.max(), durations.mean());
  bench::Row("run duration (paper: 45-60 min)", buf);
  std::snprintf(buf, sizeof(buf), "%.0fK - %.0fK (mean %.0fK)",
                event_counts.min() / 1000, event_counts.max() / 1000,
                event_counts.mean() / 1000);
  bench::Row("events per run (paper: 15K-300K)", buf);
  std::snprintf(buf, sizeof(buf), "%.0f", postrecon_asus.mean());
  bench::Row("post-recon ASUs/event (paper: ~a dozen)", buf);

  bench::Row("raw volume, 200 runs", FormatBytes(raw_total));
  bench::Row("recon volume", FormatBytes(recon_total));
  bench::Row("post-recon volume", FormatBytes(post_total));

  // Archive growth: 200 runs is roughly 9 days of running at ~22 runs per
  // day. Scale the total (raw + recon + postrecon + an equal MC volume)
  // to a decade of CESR operations.
  double day_rate =
      static_cast<double>(raw_total * 2 + recon_total + post_total) / 9.0;
  int64_t decade = static_cast<int64_t>(day_rate * 3652);
  bench::Row("projected archive over a decade", FormatBytes(decade));
  bool scale_ok = decade > 50 * kTB && decade < 500 * kTB;
  bench::Row("matches the paper's 90 TB order of magnitude",
             scale_ok ? "yes" : "NO");
  bench::Note("two orders of magnitude below the PB-scale Arecibo/WebLab "
              "flows, exactly the gap Section 5 highlights");

  bool shape = durations.min() >= 45.0 && durations.max() <= 60.0 &&
               event_counts.min() >= 15'000 &&
               event_counts.max() <= 300'000 &&
               postrecon_asus.mean() == 12.0 && scale_ok;
  bench::Footer(shape);
  return shape ? 0 : 1;
}
