// Benchmarks of the embedded relational engine (the dissemination
// substrate all three case studies share).
//
// Default mode: the buffer-pool sweep — point-query p50/p99 latency and
// hit rate at pool sizes from 8 frames to unlimited against a table ~10x
// larger than the biggest bounded pool, with a same-seed MD5 fingerprint
// gate (results AND eviction sequence must be byte-identical across
// repeat runs, and query results identical across pool sizes). Emits
// BENCH_db.json next to the binary.
//
// `--micro` mode: the original google-benchmark microbenchmarks (insert
// paths, indexed vs sequential selection, aggregation, WAL overhead);
// extra args pass through to the benchmark runner.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/report.h"
#include "db/database.h"
#include "util/md5.h"
#include "util/rng.h"

namespace {

using namespace dflow;
using db::Database;
using db::Row;
using db::Schema;
using db::Type;
using db::Value;

Schema CandidateSchema() {
  return Schema({{"pointing", Type::kInt64, false},
                 {"beam", Type::kInt64, false},
                 {"freq", Type::kDouble, false},
                 {"snr", Type::kDouble, false}});
}

Row CandidateRow(int64_t i) {
  return Row{Value::Int(i % 400), Value::Int(i % 7),
             Value::Double(0.1 + static_cast<double>(i % 1000)),
             Value::Double(6.0 + static_cast<double>(i % 40))};
}

void BM_InsertAutocommit(benchmark::State& state) {
  Database db;
  (void)db.CreateTable("c", CandidateSchema());
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Insert("c", CandidateRow(i++)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InsertAutocommit);

void BM_InsertBatched(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Database db;
  (void)db.CreateTable("c", CandidateSchema());
  int64_t i = 0;
  for (auto _ : state) {
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(batch));
    for (int64_t k = 0; k < batch; ++k) {
      rows.push_back(CandidateRow(i++));
    }
    benchmark::DoNotOptimize(db.InsertMany("c", std::move(rows)));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_InsertBatched)->Arg(64)->Arg(1024);

void BM_InsertWithIndex(benchmark::State& state) {
  Database db;
  (void)db.CreateTable("c", CandidateSchema());
  (void)db.CreateIndex("by_pointing", "c", "pointing");
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Insert("c", CandidateRow(i++)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InsertWithIndex);

void PopulatedDb(Database& db, int64_t rows, bool with_index) {
  (void)db.CreateTable("c", CandidateSchema());
  if (with_index) {
    (void)db.CreateIndex("by_pointing", "c", "pointing");
  }
  std::vector<Row> batch;
  for (int64_t i = 0; i < rows; ++i) {
    batch.push_back(CandidateRow(i));
  }
  (void)db.InsertMany("c", std::move(batch));
}

void BM_SelectSeqScan(benchmark::State& state) {
  Database db;
  PopulatedDb(db, 20000, /*with_index=*/false);
  for (auto _ : state) {
    auto result = db.Execute("SELECT * FROM c WHERE pointing = 123");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SelectSeqScan);

void BM_SelectIndexScan(benchmark::State& state) {
  Database db;
  PopulatedDb(db, 20000, /*with_index=*/true);
  for (auto _ : state) {
    auto result = db.Execute("SELECT * FROM c WHERE pointing = 123");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SelectIndexScan);

void BM_GroupByAggregate(benchmark::State& state) {
  Database db;
  PopulatedDb(db, 20000, /*with_index=*/false);
  for (auto _ : state) {
    auto result = db.Execute(
        "SELECT beam, COUNT(*), AVG(snr) FROM c GROUP BY beam");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_GroupByAggregate);

void BM_JoinNestedLoop(benchmark::State& state) {
  Database db;
  PopulatedDb(db, 5000, /*with_index=*/false);
  (void)db.CreateTable("p", Schema({{"id", Type::kInt64, false},
                                    {"ra", Type::kDouble, false}}));
  for (int64_t i = 0; i < 400; ++i) {
    (void)db.Insert("p", {Value::Int(i), Value::Double(i * 0.9)});
  }
  for (auto _ : state) {
    auto result = db.Execute(
        "SELECT id, snr FROM p JOIN c ON id = pointing WHERE snr > 40");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_JoinNestedLoop);

void BM_JoinIndexNestedLoop(benchmark::State& state) {
  Database db;
  PopulatedDb(db, 5000, /*with_index=*/true);  // Index on c.pointing.
  (void)db.CreateTable("p", Schema({{"id", Type::kInt64, false},
                                    {"ra", Type::kDouble, false}}));
  for (int64_t i = 0; i < 400; ++i) {
    (void)db.Insert("p", {Value::Int(i), Value::Double(i * 0.9)});
  }
  for (auto _ : state) {
    auto result = db.Execute(
        "SELECT id, snr FROM p JOIN c ON id = pointing WHERE snr > 40");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_JoinIndexNestedLoop);

void BM_WalDurableInsert(benchmark::State& state) {
  auto path = std::filesystem::temp_directory_path() / "dflow_bench_db.wal";
  std::filesystem::remove(path);
  auto db = Database::Open(path.string());
  (void)(*db)->CreateTable("c", CandidateSchema());
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*db)->Insert("c", CandidateRow(i++)));
  }
  state.SetItemsProcessed(state.iterations());
  std::filesystem::remove(path);
}
BENCHMARK(BM_WalDurableInsert);

// --- Buffer-pool sweep (default mode) -----------------------------------

constexpr int64_t kTableRows = 14000;  // ~350 pages at ~210 B/row.
constexpr int64_t kQueries = 4000;
constexpr uint64_t kSeed = 0xdb5eedULL;

struct SweepPoint {
  size_t frames = 0;
  double p50_us = 0;
  double p99_us = 0;
  double hit_rate = 0;
  int64_t evictions = 0;
  int64_t misses = 0;
  size_t table_pages = 0;
  std::string results_md5;  // Query answers only (pool-size invariant).
  std::string full_md5;     // Answers + eviction log (same-seed invariant).
};

SweepPoint RunPoint(size_t frames, uint64_t seed) {
  using Clock = std::chrono::steady_clock;
  db::DatabaseOptions opts;
  opts.pool_frames = frames;
  Database db(opts);
  (void)db.Execute("CREATE TABLE kv (id INT, v INT, pad TEXT)");
  (void)db.Execute("CREATE INDEX idx_id ON kv (id)");

  dflow::Rng rng(seed);
  {
    std::vector<Row> batch;
    for (int64_t i = 0; i < kTableRows; ++i) {
      batch.push_back(Row{
          Value::Int(i), Value::Int(rng.Uniform(0, 999999)),
          Value::String(std::string(
              static_cast<size_t>(rng.Uniform(120, 240)),
              static_cast<char>('a' + i % 26)))});
      if (batch.size() == 1000) {
        (void)db.InsertMany("kv", std::move(batch));
        batch.clear();
      }
    }
    (void)db.InsertMany("kv", std::move(batch));
  }

  // Reset stats focus to the query phase: remember the populate-phase
  // baseline and subtract.
  const auto populate = db.pool()->stats();

  SweepPoint point;
  point.frames = frames;
  std::vector<double> lat_us;
  lat_us.reserve(static_cast<size_t>(kQueries));
  std::string answers;
  for (int64_t q = 0; q < kQueries; ++q) {
    int64_t id = rng.Uniform(0, kTableRows - 1);
    auto start = Clock::now();
    auto result =
        db.Execute("SELECT v FROM kv WHERE id = " + std::to_string(id));
    auto end = Clock::now();
    lat_us.push_back(
        std::chrono::duration<double, std::micro>(end - start).count());
    if (result.ok() && !result->rows.empty()) {
      answers += std::to_string(result->rows[0][0].AsInt());
      answers += ',';
    } else {
      answers += "MISS,";
    }
  }
  std::sort(lat_us.begin(), lat_us.end());
  point.p50_us = lat_us[lat_us.size() / 2];
  point.p99_us = lat_us[lat_us.size() * 99 / 100];

  const auto& stats = db.pool()->stats();
  const int64_t hits = stats.hits - populate.hits;
  const int64_t misses = stats.misses - populate.misses;
  point.misses = misses;
  point.evictions = stats.evictions - populate.evictions;
  point.hit_rate =
      hits + misses > 0 ? static_cast<double>(hits) / (hits + misses) : 1.0;
  point.table_pages = db.catalog().Find("kv")->heap->num_pages();
  point.results_md5 = Md5::HexOf(answers);
  std::string evictions;
  for (uint32_t pid : db.pool()->eviction_log()) {
    evictions += std::to_string(pid);
    evictions += ',';
  }
  point.full_md5 = Md5::HexOf(answers + "|" + evictions);
  return point;
}

std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

int PoolSweepMain() {
  using dflow::bench::Footer;
  using dflow::bench::Header;
  using dflow::bench::Note;
  using dflow::bench::Row;

  Header("bench_micro_db: buffer-pool frames vs point-query latency",
         "metadata stores serve working sets larger than RAM; the pool "
         "must trade memory for tail latency smoothly, not fall over");

  const size_t kFrames[] = {8, 16, 32, 64, 128, 0};
  std::vector<SweepPoint> sweep;
  for (size_t frames : kFrames) {
    sweep.push_back(RunPoint(frames, kSeed));
    const auto& p = sweep.back();
    std::string label = frames == 0 ? "unlimited frames"
                                    : std::to_string(frames) + " frames";
    Row(label + " (" + std::to_string(p.table_pages) + "-page table)",
        "p50 " + Fmt("%7.1f", p.p50_us) + " us   p99 " +
            Fmt("%7.1f", p.p99_us) + " us   hit " +
            Fmt("%5.1f", p.hit_rate * 100) + "%   " +
            std::to_string(p.evictions) + " evictions");
  }

  // Gates — all deterministic (no timing thresholds):
  //  (1) query answers identical at every pool size;
  //  (2) a same-seed repeat run is byte-identical down to the eviction
  //      sequence;
  //  (3) hit rate is monotone in pool size.
  bool answers_identical = true;
  for (const auto& p : sweep) {
    answers_identical =
        answers_identical && p.results_md5 == sweep.front().results_md5;
  }
  SweepPoint repeat = RunPoint(8, kSeed);
  const bool deterministic = repeat.full_md5 == sweep.front().full_md5;
  bool hit_monotone = true;
  for (size_t i = 1; i < sweep.size(); ++i) {
    hit_monotone = hit_monotone &&
                   sweep[i].hit_rate >= sweep[i - 1].hit_rate - 1e-9;
  }
  Row("answers identical across pool sizes", answers_identical ? "yes" : "NO");
  Row("same-seed run byte-identical (8 frames)",
      deterministic ? "yes (" + repeat.full_md5.substr(0, 12) + "...)" : "NO");
  Row("hit rate monotone in pool size", hit_monotone ? "yes" : "NO");
  Note("latencies are advisory (host-dependent); the enforced gates are "
       "the three determinism/shape checks above");

  const bool shape_holds = answers_identical && deterministic && hit_monotone;
  Footer(shape_holds);

  {
    std::ofstream json("BENCH_db.json");
    json << "{\n";
    json << "  \"bench\": \"bench_micro_db\",\n";
    json << "  \"config\": {\"table_rows\": " << kTableRows
         << ", \"queries\": " << kQueries << ", \"seed\": " << kSeed
         << "},\n";
    json << "  \"determinism\": {\"byte_identical\": "
         << (deterministic ? "true" : "false") << ", \"fingerprint\": \""
         << sweep.front().full_md5 << "\"},\n";
    json << "  \"answers_identical\": "
         << (answers_identical ? "true" : "false") << ",\n";
    json << "  \"hit_rate_monotone\": " << (hit_monotone ? "true" : "false")
         << ",\n";
    json << "  \"sweep\": [";
    for (size_t i = 0; i < sweep.size(); ++i) {
      const auto& p = sweep[i];
      json << (i == 0 ? "\n" : ",\n");
      json << "    {\"frames\": " << p.frames
           << ", \"table_pages\": " << p.table_pages
           << ", \"p50_us\": " << Fmt("%.2f", p.p50_us)
           << ", \"p99_us\": " << Fmt("%.2f", p.p99_us)
           << ", \"hit_rate\": " << Fmt("%.4f", p.hit_rate)
           << ", \"evictions\": " << p.evictions
           << ", \"misses\": " << p.misses << "}";
    }
    json << "\n  ],\n";
    json << "  \"shape_holds\": " << (shape_holds ? "true" : "false")
         << "\n}\n";
  }
  Note("machine-readable results written to BENCH_db.json");
  return shape_holds ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--micro") == 0) {
      // Strip --micro and hand the rest to google-benchmark.
      for (int j = i; j + 1 < argc; ++j) {
        argv[j] = argv[j + 1];
      }
      --argc;
      benchmark::Initialize(&argc, argv);
      benchmark::RunSpecifiedBenchmarks();
      benchmark::Shutdown();
      return 0;
    }
  }
  return PoolSweepMain();
}
