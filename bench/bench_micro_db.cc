// Microbenchmarks of the embedded relational engine (the dissemination
// substrate all three case studies share): insert paths, indexed vs
// sequential selection, aggregation, and WAL overhead.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "db/database.h"

namespace {

using namespace dflow;
using db::Database;
using db::Row;
using db::Schema;
using db::Type;
using db::Value;

Schema CandidateSchema() {
  return Schema({{"pointing", Type::kInt64, false},
                 {"beam", Type::kInt64, false},
                 {"freq", Type::kDouble, false},
                 {"snr", Type::kDouble, false}});
}

Row CandidateRow(int64_t i) {
  return Row{Value::Int(i % 400), Value::Int(i % 7),
             Value::Double(0.1 + static_cast<double>(i % 1000)),
             Value::Double(6.0 + static_cast<double>(i % 40))};
}

void BM_InsertAutocommit(benchmark::State& state) {
  Database db;
  (void)db.CreateTable("c", CandidateSchema());
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Insert("c", CandidateRow(i++)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InsertAutocommit);

void BM_InsertBatched(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Database db;
  (void)db.CreateTable("c", CandidateSchema());
  int64_t i = 0;
  for (auto _ : state) {
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(batch));
    for (int64_t k = 0; k < batch; ++k) {
      rows.push_back(CandidateRow(i++));
    }
    benchmark::DoNotOptimize(db.InsertMany("c", std::move(rows)));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_InsertBatched)->Arg(64)->Arg(1024);

void BM_InsertWithIndex(benchmark::State& state) {
  Database db;
  (void)db.CreateTable("c", CandidateSchema());
  (void)db.CreateIndex("by_pointing", "c", "pointing");
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Insert("c", CandidateRow(i++)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InsertWithIndex);

void PopulatedDb(Database& db, int64_t rows, bool with_index) {
  (void)db.CreateTable("c", CandidateSchema());
  if (with_index) {
    (void)db.CreateIndex("by_pointing", "c", "pointing");
  }
  std::vector<Row> batch;
  for (int64_t i = 0; i < rows; ++i) {
    batch.push_back(CandidateRow(i));
  }
  (void)db.InsertMany("c", std::move(batch));
}

void BM_SelectSeqScan(benchmark::State& state) {
  Database db;
  PopulatedDb(db, 20000, /*with_index=*/false);
  for (auto _ : state) {
    auto result = db.Execute("SELECT * FROM c WHERE pointing = 123");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SelectSeqScan);

void BM_SelectIndexScan(benchmark::State& state) {
  Database db;
  PopulatedDb(db, 20000, /*with_index=*/true);
  for (auto _ : state) {
    auto result = db.Execute("SELECT * FROM c WHERE pointing = 123");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SelectIndexScan);

void BM_GroupByAggregate(benchmark::State& state) {
  Database db;
  PopulatedDb(db, 20000, /*with_index=*/false);
  for (auto _ : state) {
    auto result = db.Execute(
        "SELECT beam, COUNT(*), AVG(snr) FROM c GROUP BY beam");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_GroupByAggregate);

void BM_JoinNestedLoop(benchmark::State& state) {
  Database db;
  PopulatedDb(db, 5000, /*with_index=*/false);
  (void)db.CreateTable("p", Schema({{"id", Type::kInt64, false},
                                    {"ra", Type::kDouble, false}}));
  for (int64_t i = 0; i < 400; ++i) {
    (void)db.Insert("p", {Value::Int(i), Value::Double(i * 0.9)});
  }
  for (auto _ : state) {
    auto result = db.Execute(
        "SELECT id, snr FROM p JOIN c ON id = pointing WHERE snr > 40");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_JoinNestedLoop);

void BM_JoinIndexNestedLoop(benchmark::State& state) {
  Database db;
  PopulatedDb(db, 5000, /*with_index=*/true);  // Index on c.pointing.
  (void)db.CreateTable("p", Schema({{"id", Type::kInt64, false},
                                    {"ra", Type::kDouble, false}}));
  for (int64_t i = 0; i < 400; ++i) {
    (void)db.Insert("p", {Value::Int(i), Value::Double(i * 0.9)});
  }
  for (auto _ : state) {
    auto result = db.Execute(
        "SELECT id, snr FROM p JOIN c ON id = pointing WHERE snr > 40");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_JoinIndexNestedLoop);

void BM_WalDurableInsert(benchmark::State& state) {
  auto path = std::filesystem::temp_directory_path() / "dflow_bench_db.wal";
  std::filesystem::remove(path);
  auto db = Database::Open(path.string());
  (void)(*db)->CreateTable("c", CandidateSchema());
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*db)->Insert("c", CandidateRow(i++)));
  }
  state.SetItemsProcessed(state.iterations());
  std::filesystem::remove(path);
}
BENCHMARK(BM_WalDurableInsert);

}  // namespace

BENCHMARK_MAIN();
