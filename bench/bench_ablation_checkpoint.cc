// Ablation: WAL checkpointing for long-lived metadata stores.
// The case-study databases live for years (the Arecibo archive "for the
// indefinite future"); without compaction, recovery replays every
// mutation ever made. This ablation measures log size and recovery time
// with and without checkpoints under churn.

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "bench/report.h"
#include "db/database.h"
#include "util/units.h"

namespace {

using namespace dflow;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Applies rounds [start, start+rounds) of insert+delete churn; the round
// index keys the data so chunked and continuous runs are identical.
void Churn(db::Database* db, int start, int rounds) {
  for (int round = start; round < start + rounds; ++round) {
    std::vector<db::Row> batch;
    for (int i = 0; i < 200; ++i) {
      batch.push_back(db::Row{db::Value::Int(round * 200 + i),
                              db::Value::String("candidate-metadata-row")});
    }
    (void)db->InsertMany("t", std::move(batch));
    (void)db->Execute("DELETE FROM t WHERE x < " +
                      std::to_string(round * 200 + 150));
  }
}

}  // namespace

int main() {
  bench::Header("Ablation -- WAL checkpointing under churn",
                "bounded recovery time for metadata stores that live for "
                "the 'indefinite future'");

  auto dir = std::filesystem::temp_directory_path();
  auto path_plain = dir / "dflow_ablation_plain.wal";
  auto path_ckpt = dir / "dflow_ablation_ckpt.wal";
  std::filesystem::remove(path_plain);
  std::filesystem::remove(path_ckpt);

  const int kRounds = 40;
  {
    auto db = db::Database::Open(path_plain.string());
    (void)(*db)->Execute("CREATE TABLE t (x INT, s TEXT)");
    Churn(db->get(), 0, kRounds);
  }
  {
    auto db = db::Database::Open(path_ckpt.string());
    (void)(*db)->Execute("CREATE TABLE t (x INT, s TEXT)");
    for (int chunk = 0; chunk < 4; ++chunk) {
      Churn(db->get(), chunk * (kRounds / 4), kRounds / 4);
      (void)(*db)->Checkpoint();
    }
  }

  auto plain_bytes =
      static_cast<int64_t>(std::filesystem::file_size(path_plain));
  auto ckpt_bytes =
      static_cast<int64_t>(std::filesystem::file_size(path_ckpt));
  bench::Row("log size without checkpoints", FormatBytes(plain_bytes));
  bench::Row("log size with periodic checkpoints", FormatBytes(ckpt_bytes));

  double start = NowSeconds();
  auto recovered_plain = db::Database::Open(path_plain.string());
  double plain_recovery = NowSeconds() - start;
  start = NowSeconds();
  auto recovered_ckpt = db::Database::Open(path_ckpt.string());
  double ckpt_recovery = NowSeconds() - start;

  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.2f ms -> %.2f ms",
                plain_recovery * 1000, ckpt_recovery * 1000);
  bench::Row("recovery time (plain -> checkpointed)", buf);

  // Same logical content either way.
  auto count_plain =
      (*recovered_plain)->Execute("SELECT COUNT(*) FROM t");
  auto count_ckpt = (*recovered_ckpt)->Execute("SELECT COUNT(*) FROM t");
  bool same = count_plain.ok() && count_ckpt.ok() &&
              count_plain->rows[0][0].AsInt() ==
                  count_ckpt->rows[0][0].AsInt();
  bench::Row("identical recovered row counts", same ? "yes" : "NO");

  std::filesystem::remove(path_plain);
  std::filesystem::remove(path_ckpt);

  bool shape = same && ckpt_bytes < plain_bytes / 4 &&
               ckpt_recovery <= plain_recovery;
  bench::Footer(shape);
  return shape ? 0 : 1;
}
