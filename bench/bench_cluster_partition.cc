// C3 -- partition-tolerant quorum replication (dflow::cluster).
// Paper (Sections 2-4): every case study's data flow crosses unreliable
// links — Arecibo's couriered disks and WAN sessions, CLEO's farm
// interconnect, WebLab's Internet Archive feed — and the flows are
// expected to keep working through the damage, then reconcile. This bench
// pins the replicated-state version of that claim: a 5-node cluster
// (rf=3, W=R=2 majority quorums) takes a minority partition mid-run,
// keeps majority-coordinated writes available, rejects minority-
// coordinated writes outright (no split brain), and converges every
// replica after the heal through hinted handoff plus read-repair.
//
// Four gates, all enforced (everything runs on the virtual partition
// clock, so there is no wall-clock noise to be advisory about):
//   * majority availability >= 99% while the partition is up;
//   * minority writes are rejected, and with zero side effects (the
//     consistency checker would flag a leaked version);
//   * post-heal convergence: hint drain + one read sweep leaves every
//     alive replica byte-identical (ReplicasConverged());
//   * determinism: two same-seed runs produce byte-identical operation
//     histories, decision logs, and state digests (MD5-compared).
//
// The recorded history of every run is fed through the offline
// consistency checker: zero acked-write loss, zero monotonicity
// violations — the same gate cluster_partition_test enforces, here
// proven on the bench workload.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/report.h"
#include "cluster/cluster.h"
#include "cluster/consistency.h"
#include "core/web_service.h"
#include "util/md5.h"

namespace {

using dflow::cluster::CheckHistory;
using dflow::cluster::Cluster;
using dflow::cluster::ClusterConfig;
using dflow::cluster::ClusterStats;
using dflow::cluster::ConsistencyReport;
using dflow::cluster::HistoryRecorder;
using dflow::core::ServiceRegistry;
using dflow::core::ServiceRequest;
using dflow::core::ServiceResponse;

std::string Fmt(const char* format, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), format, value);
  return buffer;
}

class EchoService : public dflow::core::WebService {
 public:
  dflow::Result<ServiceResponse> Handle(const ServiceRequest& request) override {
    ServiceResponse response;
    response.body = "ok:" + request.path;
    response.cache_max_age_sec = ServiceResponse::kUncacheable;
    return response;
  }
  std::vector<std::string> Endpoints() const override { return {"item"}; }
  const std::string& name() const override { return name_; }

 private:
  std::string name_ = "echo";
};

constexpr int kNodes = 5;
constexpr int kKeys = 200;
constexpr double kPartitionStart = 10.0;
constexpr double kPartitionSec = 120.0;

struct RunResult {
  // During-partition accounting, split by which side coordinated.
  int64_t majority_attempts = 0;
  int64_t majority_acked = 0;
  int64_t minority_attempts = 0;
  int64_t minority_rejected = 0;
  // Post-heal reconciliation.
  int64_t hints_stored = 0;
  int64_t hints_drained = 0;
  int64_t read_repairs = 0;
  bool converged_after_heal = false;
  bool converged_after_sweep = false;
  // Safety + identity.
  ConsistencyReport report;
  std::string history_md5;
  std::string decisions_md5;
  std::string state_md5;
};

std::string KeyAt(int i) { return "key/" + std::to_string(i); }

RunResult RunOnce(uint64_t seed) {
  HistoryRecorder history;
  ClusterConfig config;
  config.num_nodes = kNodes;
  config.replication_factor = 3;  // Majority quorums: W = R = 2.
  config.seed = seed;
  config.workers_per_node = 1;
  config.history = &history;
  auto cluster = Cluster::Create(config, [](int, ServiceRegistry* registry) {
    return registry->Mount("svc", std::make_shared<EchoService>());
  });
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster create failed: %s\n",
                 cluster.status().message().c_str());
    std::exit(1);
  }

  RunResult result;

  // Seed every key before the damage.
  for (int i = 0; i < kKeys; ++i) {
    if (!(*cluster)->Put(KeyAt(i), "seed" + std::to_string(i)).ok()) {
      std::fprintf(stderr, "pre-partition write failed\n");
      std::exit(1);
    }
  }

  // The ingress assignment is a pure hash of the key — snapshot it now,
  // pre-partition, when Route() cannot fail. (During the partition,
  // Route() from a node0 ingress whose chain excludes node0 returns
  // ResourceExhausted, which would misclassify that key's side.)
  std::vector<bool> minority_key(kKeys, false);
  for (int i = 0; i < kKeys; ++i) {
    auto decision = (*cluster)->Route(KeyAt(i));
    if (!decision.ok()) {
      std::fprintf(stderr, "pre-partition route failed\n");
      std::exit(1);
    }
    minority_key[i] = decision->ingress == "node0";
  }

  // Isolate node0 from the other four for kPartitionSec of virtual time.
  if (!(*cluster)->AdvancePartitionTime(kPartitionStart).ok() ||
      !(*cluster)
           ->PartitionNodes("node0|node1,node2,node3,node4", kPartitionSec)
           .ok()) {
    std::fprintf(stderr, "partition setup failed\n");
    std::exit(1);
  }

  // Write through the partition. Each key's coordinator is its seeded
  // ingress node, so the workload itself decides which side each write
  // lands on — the bench just tallies both sides separately.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < kKeys; ++i) {
      bool minority = minority_key[i];
      bool acked =
          (*cluster)->Put(KeyAt(i), "r" + std::to_string(round)).ok();
      if (minority) {
        result.minority_attempts += 1;
        result.minority_rejected += acked ? 0 : 1;
      } else {
        result.majority_attempts += 1;
        result.majority_acked += acked ? 1 : 0;
      }
    }
  }
  ClusterStats during = (*cluster)->Stats();
  result.hints_stored = during.hints_stored;

  // Heal by the clock: the reachability transition drains every banked
  // hint, which alone should reconcile node0 (nothing was killed).
  if (!(*cluster)
           ->AdvancePartitionTime(kPartitionStart + kPartitionSec + 1.0)
           .ok()) {
    std::fprintf(stderr, "heal advance failed\n");
    std::exit(1);
  }
  result.converged_after_heal = (*cluster)->ReplicasConverged();

  // Read sweep: quorum reads return the newest acked version everywhere
  // and read-repair whatever the hints somehow missed.
  for (int i = 0; i < kKeys; ++i) {
    auto value = (*cluster)->Get(KeyAt(i));
    if (!value.ok()) {
      std::fprintf(stderr, "post-heal read failed: %s\n",
                   value.status().message().c_str());
      std::exit(1);
    }
  }
  result.converged_after_sweep = (*cluster)->ReplicasConverged();

  ClusterStats after = (*cluster)->Stats();
  result.hints_drained = after.hints_drained;
  result.read_repairs = after.read_repairs;
  result.report = CheckHistory(history.events());

  std::vector<std::string> keys;
  keys.reserve(kKeys);
  for (int i = 0; i < kKeys; ++i) {
    keys.push_back(KeyAt(i));
  }
  result.history_md5 = history.Fingerprint();
  result.decisions_md5 = dflow::Md5::HexOf((*cluster)->DecisionLog(keys));
  result.state_md5 = dflow::Md5::HexOf((*cluster)->DescribeState());
  return result;
}

}  // namespace

int main() {
  using namespace dflow;

  const uint64_t kSeed = 20260807;

  bench::Header(
      "C3 -- partition-tolerant quorum replication (dflow::cluster)",
      "a minority partition must not stop majority-side writes or let "
      "minority writes split the brain, and the heal must reconcile every "
      "replica (hinted handoff + read-repair), deterministically");

  RunResult a = RunOnce(kSeed);
  RunResult b = RunOnce(kSeed);

  const double majority_availability =
      a.majority_attempts > 0
          ? static_cast<double>(a.majority_acked) / a.majority_attempts
          : 0.0;
  const double minority_rejection =
      a.minority_attempts > 0
          ? static_cast<double>(a.minority_rejected) / a.minority_attempts
          : 0.0;

  bench::Row("cluster", std::to_string(kNodes) +
                            " nodes, rf=3, W=R=2 (majority quorums)");
  bench::Row("partition", "node0 | node1..node4 for " +
                              Fmt("%.0f", kPartitionSec) +
                              " s of virtual time");
  bench::Row("majority-side availability",
             Fmt("%.2f%%", 100.0 * majority_availability) + "  (" +
                 std::to_string(a.majority_acked) + "/" +
                 std::to_string(a.majority_attempts) + " acked)");
  bench::Row("minority-side rejection",
             Fmt("%.2f%%", 100.0 * minority_rejection) + "  (" +
                 std::to_string(a.minority_rejected) + "/" +
                 std::to_string(a.minority_attempts) +
                 " rejected, zero side effects)");
  bench::Row("hinted handoff", std::to_string(a.hints_stored) +
                                   " banked -> " +
                                   std::to_string(a.hints_drained) +
                                   " drained at heal");
  bench::Row("converged after hint drain",
             a.converged_after_heal ? "yes" : "NO");
  bench::Row("converged after read sweep",
             a.converged_after_sweep
                 ? (std::string("yes (") + std::to_string(a.read_repairs) +
                    " read-repairs)")
                 : "NO");
  bench::Row("consistency checker",
             a.report.ok()
                 ? "0 violations over " +
                       std::to_string(a.report.acked_writes) + " acks, " +
                       std::to_string(a.report.reads) + " reads"
                 : a.report.ToString());

  const bool deterministic = a.history_md5 == b.history_md5 &&
                             a.decisions_md5 == b.decisions_md5 &&
                             a.state_md5 == b.state_md5;
  bench::Row("history fingerprint", a.history_md5);
  bench::Row("same-seed byte-identical", deterministic ? "yes" : "NO");

  const bool availability_ok = majority_availability >= 0.99;
  const bool rejection_ok =
      a.minority_attempts == 0 || minority_rejection == 1.0;
  const bool shape_holds = availability_ok && rejection_ok &&
                           a.converged_after_sweep && a.report.ok() &&
                           deterministic;
  if (!availability_ok) {
    bench::Note("majority availability below the 99% floor");
  }
  if (!rejection_ok) {
    bench::Note("a minority-coordinated write was acknowledged: split brain");
  }
  bench::Footer(shape_holds);

  {
    std::ofstream json("BENCH_partition.json");
    json << "{\n";
    json << "  \"bench\": \"bench_cluster_partition\",\n";
    json << "  \"config\": {\"nodes\": " << kNodes
         << ", \"replication\": 3, \"write_quorum\": 2, \"read_quorum\": 2"
         << ", \"keys\": " << kKeys
         << ", \"partition_sec\": " << Fmt("%.1f", kPartitionSec) << "},\n";
    json << "  \"availability\": {\"majority\": "
         << Fmt("%.4f", majority_availability)
         << ", \"majority_acked\": " << a.majority_acked
         << ", \"majority_attempts\": " << a.majority_attempts
         << ", \"minority_rejection\": " << Fmt("%.4f", minority_rejection)
         << ", \"minority_attempts\": " << a.minority_attempts << "},\n";
    json << "  \"reconciliation\": {\"hints_stored\": " << a.hints_stored
         << ", \"hints_drained\": " << a.hints_drained
         << ", \"read_repairs\": " << a.read_repairs
         << ", \"converged_after_heal\": "
         << (a.converged_after_heal ? "true" : "false")
         << ", \"converged_after_sweep\": "
         << (a.converged_after_sweep ? "true" : "false") << "},\n";
    json << "  \"consistency\": {\"violations\": " << a.report.violations
         << ", \"acked_writes\": " << a.report.acked_writes
         << ", \"rejected_writes\": " << a.report.rejected_writes
         << ", \"reads\": " << a.report.reads << "},\n";
    json << "  \"determinism\": {\"byte_identical\": "
         << (deterministic ? "true" : "false")
         << ", \"history_fingerprint\": \"" << a.history_md5 << "\""
         << ", \"state_fingerprint\": \"" << a.state_md5 << "\"},\n";
    json << "  \"shape_holds\": " << (shape_holds ? "true" : "false")
         << "\n";
    json << "}\n";
  }

  return shape_holds ? 0 : 1;
}
