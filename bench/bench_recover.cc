// E-R1/E-R2: crash-consistent checkpoint/restart and storage scrubbing.
//
// The paper's pipelines ran for months on hardware that failed routinely;
// what made the datasets trustworthy was that a restarted pipeline
// converged to the same bytes the uninterrupted one would have produced,
// and that archived tapes were re-verified end-to-end on a schedule
// (Arecibo's operators re-read every tape; CLEO re-derived checksums on
// recall). This bench reproduces both disciplines:
//
//   E-R1 sweeps the checkpoint-journal granularity (sync_every) for the
//   Figure 1 Arecibo flow, kills the run at several event offsets (the
//   journal is abandoned un-synced, the SIGKILL-equivalent), restarts,
//   resumes, and measures redo work and recovery wall time. The resumed
//   run must be byte-identical to the golden uninterrupted run at every
//   point, and redo must stay under the granularity bound.
//
//   E-R2 archives a namespace to tape with a replica, injects loud bad
//   blocks and silent bit rot, and runs the scrubber until every injected
//   fault is detected and repaired from the replica: the detection and
//   repair rates must both be 100%.
//
// Machine-readable results land in BENCH_recover.json next to the binary
// so CI can archive the curves.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "arecibo/flow.h"
#include "bench/report.h"
#include "core/flow_graph.h"
#include "core/flow_runner.h"
#include "recover/journal.h"
#include "recover/scrubber.h"
#include "sim/simulation.h"
#include "storage/tape.h"
#include "util/logging.h"
#include "util/md5.h"
#include "util/units.h"

namespace {

using namespace dflow;

// ---------------------------------------------------------------------------
// E-R1: checkpoint granularity vs redo work and recovery time.

struct Harness {
  sim::Simulation sim;
  core::FlowGraph graph;
  std::unique_ptr<core::FlowRunner> runner;
};

/// Reduced-scale Figure 1 flow with retries, jittered backoff, and
/// injected faults (three consortium retries, two QA dead letters) — the
/// same recovery surface the crash-chaos tests gate.
void SetupArecibo(Harness* h) {
  arecibo::SurveyConfig config;
  config.pointings_per_block = 24;
  DFLOW_CHECK_OK(arecibo::BuildAreciboFlow(config, &h->graph));
  h->runner =
      std::make_unique<core::FlowRunner>(&h->sim, &h->graph, /*seed=*/7);
  using S = arecibo::AreciboFlowStages;
  DFLOW_CHECK_OK(h->runner->SetWorkers(S::kConsortium, 4));
  DFLOW_CHECK_OK(h->runner->SetWorkers(S::kTapeArchive, 2));
  DFLOW_CHECK_OK(arecibo::ConfigureAreciboSites(h->runner.get()));
  core::RetryPolicy retry;
  retry.max_attempts = 3;
  retry.backoff_initial_sec = 30.0;
  retry.jitter_fraction = 0.25;
  DFLOW_CHECK_OK(h->runner->SetRetryPolicy(S::kConsortium, retry));
  DFLOW_CHECK_OK(h->runner->InjectTransientErrors(S::kConsortium, 3));
  DFLOW_CHECK_OK(h->runner->InjectTransientErrors(S::kLocalQa, 2));
  DFLOW_CHECK_OK(arecibo::InjectObservingBlock(config, h->runner.get()));
}

/// Operational digest of a finished run: per-stage table, annotated DOT,
/// sink products with provenance hashes, dead-letter ledger.
std::string FingerprintRun(const Harness& h) {
  std::ostringstream os;
  os << h.runner->Report() << h.runner->AnnotatedDot();
  for (const std::string& name : h.graph.StageNames()) {
    for (const core::DataProduct& product : h.runner->SinkOutputs(name)) {
      os << name << '|' << product.name << '|' << product.bytes << '|'
         << product.provenance.SummaryHash();
      for (const auto& [key, value] : product.attributes) {
        os << '|' << key << '=' << value;
      }
      os << '\n';
    }
  }
  for (const core::DeadLetter& letter : h.runner->dead_letters()) {
    os << letter.stage << '|' << letter.product.name << '|' << letter.error
       << '|' << letter.time_sec << '\n';
  }
  return Md5::HexOf(os.str());
}

std::string JournalPath(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("dflow_bench_recover_" + tag + "_" + std::to_string(::getpid())))
      .string();
}

struct KillPoint {
  int sync_every = 1;
  int64_t kill_at_events = 0;

  // Measured:
  int64_t terminal_at_kill = 0;   // Work the killed process had finished.
  int64_t durable_records = 0;    // ...of which the journal preserved.
  int64_t redo_records = 0;       // Re-executed live on resume.
  double redo_fraction = 0.0;     // redo / total terminal events.
  double recovery_wall_ms = 0.0;  // Wall time of the restarted run.
  int64_t replayed_events = 0;
  int64_t live_events = 0;
  bool byte_identical = false;
  std::string fingerprint;
};

/// Runs the flow with a journal at `sync_every`, abandons it (drops the
/// unsynced tail, exactly what SIGKILL leaves behind) after
/// `kill_at_events` simulation events, then restarts and resumes.
KillPoint RunKillPoint(int sync_every, int64_t kill_at_events,
                       int64_t total_terminal, const std::string& golden) {
  KillPoint point;
  point.sync_every = sync_every;
  point.kill_at_events = kill_at_events;

  const std::string path =
      JournalPath("s" + std::to_string(sync_every) + "_k" +
                  std::to_string(kill_at_events));
  std::filesystem::remove(path);
  {
    Harness h;
    SetupArecibo(&h);
    recover::CheckpointJournal::Options options;
    options.sync_every = sync_every;
    auto journal = recover::CheckpointJournal::Open(path, options);
    DFLOW_CHECK_OK(journal.status());
    DFLOW_CHECK_OK(h.runner->SetCheckpointJournal(journal->get()));
    DFLOW_CHECK_OK(h.runner->Start());
    for (int64_t i = 0; i < kill_at_events && h.sim.Step(); ++i) {
    }
    point.terminal_at_kill = h.runner->terminal_events();
    (*journal)->Abandon();  // SIGKILL: the pending tail evaporates.
  }

  auto replay = recover::JournalReplay::Load(path);
  DFLOW_CHECK_OK(replay.status());
  point.durable_records = static_cast<int64_t>(replay->size());
  point.redo_records = point.terminal_at_kill - point.durable_records;
  point.redo_fraction = total_terminal > 0
                            ? static_cast<double>(point.redo_records) /
                                  static_cast<double>(total_terminal)
                            : 0.0;

  const auto start = std::chrono::steady_clock::now();
  Harness resumed;
  SetupArecibo(&resumed);
  DFLOW_CHECK_OK(resumed.runner->ResumeFrom(&*replay));
  DFLOW_CHECK_OK(resumed.runner->Run());
  const auto end = std::chrono::steady_clock::now();
  point.recovery_wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  point.replayed_events = resumed.runner->replayed_events();
  point.live_events = resumed.runner->live_events();
  point.fingerprint = FingerprintRun(resumed);
  point.byte_identical = point.fingerprint == golden;
  std::filesystem::remove(path);
  return point;
}

// ---------------------------------------------------------------------------
// E-R2: scrubbing an archived namespace back to 100% health.

struct ScrubResult {
  int64_t files = 0;
  int64_t bad_blocks_injected = 0;
  int64_t silent_injected = 0;
  int64_t detected = 0;
  int64_t repaired = 0;
  int64_t unrecoverable = 0;
  int64_t residual_faults = 0;
  double scrub_makespan_hours = 0.0;
  double detection_rate = 0.0;
  double repair_rate = 0.0;
};

ScrubResult RunScrub() {
  ScrubResult result;
  constexpr int kFiles = 40;
  result.files = kFiles;

  sim::Simulation sim;
  storage::TapeLibrary primary(&sim, "primary", storage::TapeLibraryConfig{});
  storage::TapeLibrary replica(&sim, "replica", storage::TapeLibraryConfig{});
  for (int i = 0; i < kFiles; ++i) {
    DFLOW_CHECK_OK(primary.Write("f" + std::to_string(i), 4 * kGB, nullptr));
    DFLOW_CHECK_OK(replica.Write("f" + std::to_string(i), 4 * kGB, nullptr));
  }
  sim.Run();

  // Every 5th file gets a loud bad block; every 7th (that is still clean)
  // gets silent bit rot — the fault the drive never reports.
  for (int i = 0; i < kFiles; i += 5) {
    primary.MarkBadBlock("f" + std::to_string(i));
    ++result.bad_blocks_injected;
  }
  for (int i = 3; i < kFiles; i += 7) {
    if (i % 5 == 0) {
      continue;  // Already loud-faulted; one fault per file.
    }
    primary.CorruptSilently("f" + std::to_string(i));
    ++result.silent_injected;
  }

  recover::ScrubberConfig config;
  config.cycle_interval_sec = 3600.0;  // One cycle per simulated hour.
  config.files_per_cycle = 6;          // Namespace covered in ~7 cycles.
  config.operator_repair_seconds = 900.0;
  recover::Scrubber scrubber(&sim, &primary, &replica, config);
  DFLOW_CHECK_OK(scrubber.Start());
  sim.Run();

  result.detected =
      scrubber.bad_blocks_found() + scrubber.silent_corruption_found();
  result.repaired =
      scrubber.restored_from_replica() + scrubber.repairs_local();
  result.unrecoverable = scrubber.unrecoverable();
  result.scrub_makespan_hours = sim.Now() / 3600.0;
  for (const std::string& file : primary.FileNames()) {
    if (primary.HasBadBlock(file) || primary.IsSilentlyCorrupt(file)) {
      ++result.residual_faults;
    }
  }
  const int64_t injected =
      result.bad_blocks_injected + result.silent_injected;
  result.detection_rate =
      injected > 0 ? static_cast<double>(result.detected) / injected : 1.0;
  result.repair_rate =
      injected > 0 ? static_cast<double>(result.repaired) / injected : 1.0;
  return result;
}

std::string Fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

}  // namespace

int main() {
  bench::Header(
      "E-R1/E-R2 -- crash recovery redo vs checkpoint granularity; "
      "scrub-to-health",
      "restarted pipelines converged to identical bytes and archived media "
      "was re-verified end-to-end until 100% healthy");

  // Golden uninterrupted run + its event/terminal totals.
  std::string golden;
  int64_t total_terminal = 0;
  {
    Harness h;
    SetupArecibo(&h);
    DFLOW_CHECK_OK(h.runner->Run());
    golden = FingerprintRun(h);
    total_terminal = h.runner->terminal_events();
  }
  int64_t total_events = 0;
  {
    Harness h;
    SetupArecibo(&h);
    DFLOW_CHECK_OK(h.runner->Start());
    while (h.sim.Step()) {
      ++total_events;
    }
  }
  bench::Row("golden run fingerprint", golden);
  bench::Row("terminal events / sim events",
             std::to_string(total_terminal) + " / " +
                 std::to_string(total_events));

  const std::vector<int> granularities = {1, 2, 4, 8, 16};
  const std::vector<int> kill_fractions_pct = {25, 50, 75};

  std::printf("\n  %-11s %-9s %-9s %-7s %-9s %-11s %-10s\n", "sync_every",
              "kill@evt", "durable", "redo", "redo_frac", "recover_ms",
              "identical");
  std::vector<KillPoint> sweep;
  bool all_identical = true;
  bool redo_bounded = true;
  for (int sync_every : granularities) {
    for (int pct : kill_fractions_pct) {
      const int64_t kill_at =
          std::max<int64_t>(1, total_events * pct / 100);
      KillPoint point =
          RunKillPoint(sync_every, kill_at, total_terminal, golden);
      std::printf("  %-11d %-9lld %-9lld %-7lld %-9.4f %-11.2f %s\n",
                  point.sync_every,
                  static_cast<long long>(point.kill_at_events),
                  static_cast<long long>(point.durable_records),
                  static_cast<long long>(point.redo_records),
                  point.redo_fraction, point.recovery_wall_ms,
                  point.byte_identical ? "yes" : "NO");
      all_identical = all_identical && point.byte_identical;
      redo_bounded =
          redo_bounded && point.redo_records <= point.sync_every - 1 &&
          point.redo_records >= 0;
      sweep.push_back(std::move(point));
    }
  }

  // Determinism: replaying the last sweep point must land on the same
  // fingerprint (which in turn equals the golden).
  const KillPoint& last = sweep.back();
  KillPoint replayed = RunKillPoint(last.sync_every, last.kill_at_events,
                                    total_terminal, golden);
  const bool deterministic =
      replayed.fingerprint == last.fingerprint &&
      replayed.durable_records == last.durable_records &&
      replayed.redo_records == last.redo_records;

  std::printf("\n");
  bench::Row("resumed runs byte-identical to golden",
             all_identical ? "15/15" : "NO");
  bench::Row("redo <= sync_every - 1 at every point",
             redo_bounded ? "yes" : "NO");
  bench::Row("same-seed kill/resume replay identical",
             deterministic ? "yes" : "NO");
  bench::Note("redo work is bounded by the journal granularity, not by "
              "how far the run had progressed when it died");

  // --- E-R2: scrub. -------------------------------------------------------
  ScrubResult scrub = RunScrub();
  std::printf("\n");
  bench::Row("scrub: files / loud bad blocks / silent rot",
             std::to_string(scrub.files) + " / " +
                 std::to_string(scrub.bad_blocks_injected) + " / " +
                 std::to_string(scrub.silent_injected));
  bench::Row("scrub: detected / repaired / residual",
             std::to_string(scrub.detected) + " / " +
                 std::to_string(scrub.repaired) + " / " +
                 std::to_string(scrub.residual_faults));
  bench::Row("scrub: detection rate",
             Fmt("%.4f", scrub.detection_rate));
  bench::Row("scrub: repair rate", Fmt("%.4f", scrub.repair_rate));
  bench::Row("scrub: makespan",
             Fmt("%.1f", scrub.scrub_makespan_hours) + " simulated hours");
  const bool scrub_clean = scrub.detection_rate == 1.0 &&
                           scrub.repair_rate == 1.0 &&
                           scrub.residual_faults == 0 &&
                           scrub.unrecoverable == 0;

  const bool shape_holds =
      all_identical && redo_bounded && deterministic && scrub_clean;

  // --- BENCH_recover.json. ------------------------------------------------
  {
    std::ofstream json("BENCH_recover.json");
    json << "{\n";
    json << "  \"bench\": \"bench_recover\",\n";
    json << "  \"flow\": \"arecibo_fig1\",\n";
    json << "  \"golden_fingerprint\": \"" << golden << "\",\n";
    json << "  \"total_terminal_events\": " << total_terminal << ",\n";
    json << "  \"total_sim_events\": " << total_events << ",\n";
    json << "  \"granularity_sweep\": [";
    for (size_t i = 0; i < sweep.size(); ++i) {
      const KillPoint& p = sweep[i];
      json << (i == 0 ? "" : ", ") << "{\"sync_every\": " << p.sync_every
           << ", \"kill_at_events\": " << p.kill_at_events
           << ", \"terminal_at_kill\": " << p.terminal_at_kill
           << ", \"durable_records\": " << p.durable_records
           << ", \"redo_records\": " << p.redo_records
           << ", \"redo_fraction\": " << Fmt("%.6f", p.redo_fraction)
           << ", \"recovery_wall_ms\": " << Fmt("%.3f", p.recovery_wall_ms)
           << ", \"replayed_events\": " << p.replayed_events
           << ", \"live_events\": " << p.live_events
           << ", \"byte_identical\": "
           << (p.byte_identical ? "true" : "false") << "}";
    }
    json << "],\n";
    json << "  \"scrub\": {\"files\": " << scrub.files
         << ", \"bad_blocks_injected\": " << scrub.bad_blocks_injected
         << ", \"silent_injected\": " << scrub.silent_injected
         << ", \"detected\": " << scrub.detected
         << ", \"repaired\": " << scrub.repaired
         << ", \"unrecoverable\": " << scrub.unrecoverable
         << ", \"residual_faults\": " << scrub.residual_faults
         << ", \"detection_rate\": " << Fmt("%.4f", scrub.detection_rate)
         << ", \"repair_rate\": " << Fmt("%.4f", scrub.repair_rate)
         << ", \"makespan_hours\": "
         << Fmt("%.2f", scrub.scrub_makespan_hours) << "},\n";
    json << "  \"determinism\": {\"replay_identical\": "
         << (deterministic ? "true" : "false") << "},\n";
    json << "  \"shape_holds\": " << (shape_holds ? "true" : "false")
         << "\n";
    json << "}\n";
  }
  bench::Note("machine-readable results written to BENCH_recover.json");

  bench::Footer(shape_holds);
  return shape_holds ? 0 : 1;
}
