// E7: hot/warm/cold column partitioning.
// Paper (Section 3.1): "CLEO data are partitioned into hot, warm and cold
// storage units. This is a column-wise split of the event into groups of
// ASUs, based on usage patterns. The hot data are those components of an
// event most frequently accessed during physics analysis. These ASUs are
// typically small compared with the less frequently accessed ASUs."

#include <cstdio>

#include "bench/report.h"
#include "eventstore/event_model.h"
#include "eventstore/passes.h"
#include "storage/tier_store.h"
#include "util/units.h"

int main() {
  using namespace dflow;
  using storage::Tier;
  using storage::TierStore;

  bench::Header("E7 -- hot/warm/cold ASU tiering speedup",
                "hot ASUs are small and frequently read; analyses touching "
                "only hot groups avoid the tape-backed cold path entirely");

  // Derive realistic per-event group sizes from the generator + passes.
  eventstore::CollisionGenerator generator(
      eventstore::CollisionGeneratorConfig{}, 7);
  eventstore::ReconstructionPass recon("R1", "cal", 1);
  eventstore::PostReconPass post("P1", 2);
  eventstore::Run raw = generator.NextRun(0.0);
  auto recon_out = recon.Process(raw);
  auto post_out = post.Process(recon_out->run);

  // Column scan via Run::TotalGroupBytes — parallel on the dflow::par
  // shared pool, exact integer reduction, so the derived tier sizes are
  // identical at any thread count.
  auto mean_group = [](const eventstore::Run& run, const std::string& group) {
    return run.TotalGroupBytes(group) /
           static_cast<int64_t>(run.events.size());
  };

  TierStore store;
  // Hot: the post-recon summary quantities every analysis touches.
  int64_t pr_bytes = 0;
  for (int i = 0; i < 12; ++i) {
    pr_bytes += mean_group(post_out->run, "pr" + std::to_string(i));
  }
  (void)store.RegisterGroup("postrecon", pr_bytes, Tier::kHot);
  // Warm: reconstructed physics objects.
  (void)store.RegisterGroup("tracks", mean_group(recon_out->run, "tracks"),
                            Tier::kWarm);
  (void)store.RegisterGroup("showers", mean_group(recon_out->run, "showers"),
                            Tier::kWarm);
  // Cold: the raw detector response, rarely re-read.
  (void)store.RegisterGroup("raw_hits", mean_group(raw, "raw_hits"),
                            Tier::kCold);

  bench::Row("hot bytes/event (postrecon)",
             FormatBytes(*store.GroupBytesPerEvent("postrecon")));
  bench::Row("warm bytes/event (tracks+showers)",
             FormatBytes(*store.GroupBytesPerEvent("tracks") +
                         *store.GroupBytesPerEvent("showers")));
  bench::Row("cold bytes/event (raw_hits)",
             FormatBytes(*store.GroupBytesPerEvent("raw_hits")));
  bool sizes_ok = *store.GroupBytesPerEvent("postrecon") <
                  *store.GroupBytesPerEvent("raw_hits");

  // A typical selection pass over 10M events touching different depths.
  const int64_t events = 10'000'000;
  double hot_only = *store.ReadCost({"postrecon"}, events);
  double hot_warm = *store.ReadCost({"postrecon", "tracks", "showers"},
                                    events);
  double everything =
      *store.ReadCost({"postrecon", "tracks", "showers", "raw_hits"}, events);

  std::printf("  analysis over 10M events:\n");
  std::printf("  %-40s %s\n", "hot only (selection cuts)",
              FormatDuration(hot_only).c_str());
  std::printf("  %-40s %s\n", "hot + warm (kinematic fits)",
              FormatDuration(hot_warm).c_str());
  std::printf("  %-40s %s\n", "hot + warm + cold (re-reconstruction)",
              FormatDuration(everything).c_str());

  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0fx", everything / hot_only);
  bench::Row("cold-path penalty vs hot-only", buf);

  // Ablation: what if the hot groups were (mis)placed on the cold tier --
  // i.e., no column split at all, events read as a unit from the HSM?
  (void)store.MoveGroup("postrecon", Tier::kCold);
  double unpartitioned = *store.ReadCost({"postrecon"}, events);
  std::snprintf(buf, sizeof(buf), "%.1fx", unpartitioned / hot_only);
  bench::Row("hot-only analysis slowdown without the split", buf);
  bool split_matters = unpartitioned > 2 * hot_only;

  bool shape = sizes_ok && everything > 5 * hot_only && split_matters;
  bench::Footer(shape);
  return shape ? 0 : 1;
}
