// Quickstart: the three core APIs of dflow in ~80 lines.
//
//   1. Express a data flow as a FlowGraph of stages and run it over the
//      discrete-event simulator with exact byte accounting.
//   2. Keep metadata in the embedded relational engine with plain SQL.
//   3. Stamp and verify provenance on every derived product.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "core/flow_graph.h"
#include "util/logging.h"
#include "core/flow_runner.h"
#include "core/stage.h"
#include "db/database.h"
#include "sim/simulation.h"
#include "util/units.h"

using namespace dflow;

int main() {
  // --- 1. A three-stage workflow: acquire -> reduce -> publish ---
  sim::Simulation simulation;
  core::FlowGraph graph;

  auto stage = [](const char* name, double seconds_per_product, double ratio) {
    return std::make_shared<core::LambdaStage>(
        name, core::StageCosts{seconds_per_product, 0.0},
        [ratio](const core::DataProduct& in)
            -> Result<std::vector<core::DataProduct>> {
          core::DataProduct out = in;
          out.bytes = static_cast<int64_t>(in.bytes * ratio);
          return std::vector<core::DataProduct>{out};
        });
  };
  DFLOW_CHECK_OK(graph.AddStage(stage("acquire", 60.0, 1.0)));
  DFLOW_CHECK_OK(graph.AddStage(stage("reduce", 30.0, 0.02)));
  DFLOW_CHECK_OK(graph.AddStage(stage("publish", 5.0, 1.0)));
  DFLOW_CHECK_OK(graph.Connect("acquire", "reduce"));
  DFLOW_CHECK_OK(graph.Connect("reduce", "publish"));

  core::FlowRunner runner(&simulation, &graph);
  DFLOW_CHECK_OK(runner.SetWorkers("reduce", 4));  // A small CPU farm.
  for (int i = 0; i < 10; ++i) {
    core::DataProduct block;
    block.name = "block_" + std::to_string(i);
    block.bytes = 35 * kGB;
    DFLOW_CHECK_OK(runner.Inject("acquire", block, i * 600.0));
  }
  DFLOW_CHECK_OK(runner.Run());
  std::printf("workflow finished at virtual t=%s\n\n",
              FormatDuration(simulation.Now()).c_str());
  std::printf("%s\n", runner.Report().c_str());

  // --- 2. Metadata in the embedded SQL engine ---
  db::Database db;
  DFLOW_CHECK_OK(
      db.Execute("CREATE TABLE products (name TEXT, bytes INT)").status());
  for (const core::DataProduct& product : runner.SinkOutputs("publish")) {
    DFLOW_CHECK_OK(db.Insert("products",
                             {db::Value::String(product.name),
                              db::Value::Int(product.bytes)}));
  }
  auto result = db.Execute(
      "SELECT COUNT(*) AS n, SUM(bytes) AS total FROM products");
  DFLOW_CHECK_OK(result.status());
  std::printf("published products:\n%s\n\n", result->ToString().c_str());

  // --- 3. Provenance travels with every product ---
  const core::DataProduct& first = runner.SinkOutputs("publish").front();
  std::printf("provenance of %s (hash %s):\n", first.name.c_str(),
              first.provenance.SummaryHash().c_str());
  for (const auto& step : first.provenance.steps()) {
    std::printf("  %s (%s)\n", step.module.c_str(),
                step.version.ToString().c_str());
  }
  return 0;
}
