// WebLab case study: a social-science study over an evolving web archive.
//
// Mirrors Section 4: bimonthly crawls arrive as compressed ARC/DAT files;
// the preload subsystem splits metadata (relational DB) from content
// (page store); the researcher then extracts a time-sliced subset, runs
// burst detection to find an emerging topic, browses the old web with the
// Retro Browser, and computes web-graph statistics in memory.

#include <cstdio>

#include "db/database.h"
#include "util/logging.h"
#include "util/units.h"
#include "weblab/analysis.h"
#include "weblab/change_analysis.h"
#include "weblab/crawler.h"
#include "weblab/preload.h"
#include "weblab/retro_browser.h"
#include "weblab/web_graph.h"

using namespace dflow;

int main() {
  // --- The archive feed: five bimonthly crawls of an evolving web ---
  weblab::CrawlerConfig crawl_config;
  crawl_config.initial_pages = 2000;
  crawl_config.new_pages_per_crawl = 300;
  crawl_config.burst_word = "olympics";
  crawl_config.burst_start_crawl = 4;
  crawl_config.burst_end_crawl = 5;
  weblab::SyntheticCrawler internet_archive(crawl_config);

  db::Database metadata_db;
  weblab::PageStore page_store;
  weblab::PreloadConfig preload_config;
  preload_config.parallelism = 4;
  weblab::PreloadSubsystem preload(preload_config, &metadata_db, &page_store);
  weblab::BurstDetector burst_detector(10, 3.0);

  std::vector<weblab::Crawl> crawls;
  for (int i = 0; i < 5; ++i) {
    crawls.push_back(internet_archive.NextCrawl());
    const weblab::Crawl& crawl = crawls.back();
    std::vector<std::string> arc = {weblab::WriteArcFile(crawl.pages)};
    std::vector<std::string> dat = {weblab::WriteDatFile(crawl.pages)};
    auto arc_stats = preload.LoadArcFiles(arc);
    auto dat_stats = preload.LoadDatFiles(dat);
    DFLOW_CHECK_OK(arc_stats.status());
    DFLOW_CHECK_OK(dat_stats.status());
    burst_detector.AddCrawl(crawl.crawl_index, crawl.pages);
    std::printf("crawl %d: %zu pages, ARC %s, preload at %s\n",
                crawl.crawl_index, crawl.pages.size(),
                FormatBytes(static_cast<int64_t>(arc[0].size())).c_str(),
                FormatRate(arc_stats->BytesPerSecond()).c_str());
  }
  std::printf("archive: %lld page versions, %s of content\n\n",
              static_cast<long long>(page_store.NumVersions()),
              FormatBytes(page_store.TotalBytes()).c_str());

  // --- Time-sliced subset extraction with SQL ---
  auto subset = metadata_db.Execute(
      "SELECT url, bytes, out_degree FROM pages WHERE crawl_ts = " +
      std::to_string(crawls[2].crawl_time) +
      " AND url LIKE '%site4.%' ORDER BY out_degree DESC LIMIT 5");
  DFLOW_CHECK_OK(subset.status());
  std::printf("site4 subset at crawl 3 (top out-degrees):\n%s\n\n",
              subset->ToString().c_str());

  // --- Burst detection: what topic is emerging? ---
  auto bursts = burst_detector.FindBursts();
  std::printf("emerging topics (burst detection over 5 crawls):\n");
  for (size_t i = 0; i < std::min<size_t>(3, bursts.size()); ++i) {
    std::printf("  '%s' in crawl %d (rate %.5f, %.1fx baseline)\n",
                bursts[i].term.c_str(), bursts[i].crawl_index,
                bursts[i].rate, bursts[i].score);
  }

  // --- Retro browsing: the web as it was ---
  weblab::RetroBrowser browser(&page_store, &metadata_db);
  const std::string start_url = crawls[0].pages[500].url;
  int64_t as_of = crawls[1].crawl_time + 1;
  auto page = browser.Browse(start_url, as_of);
  DFLOW_CHECK_OK(page.status());
  std::printf("\nretro-browsing %s as of t=%lld:\n", start_url.c_str(),
              static_cast<long long>(as_of));
  std::printf("  served version from crawl t=%lld, %zu links, begins: "
              "\"%.40s...\"\n",
              static_cast<long long>(page->version_time),
              page->links.size(), page->content.c_str());
  if (!page->links.empty()) {
    auto next = browser.FollowLink(*page, 0, as_of);
    DFLOW_CHECK_OK(next.status());
    std::printf("  followed first link to %s (version t=%lld)\n",
                next->url.c_str(),
                static_cast<long long>(next->version_time));
  }

  // --- Web-graph research on the latest slice, in memory ---
  std::vector<weblab::PageMetadata> latest;
  for (const auto& crawl_page : crawls.back().pages) {
    weblab::PageMetadata meta;
    meta.url = crawl_page.url;
    meta.links = crawl_page.links;
    latest.push_back(std::move(meta));
  }
  weblab::WebGraph graph = weblab::WebGraph::FromMetadata(latest);
  auto rank = graph.PageRank(25);
  int best = 0;
  for (int node = 1; node < graph.num_nodes(); ++node) {
    if (rank[static_cast<size_t>(node)] > rank[static_cast<size_t>(best)]) {
      best = node;
    }
  }
  auto [components, num_components] = graph.WeaklyConnectedComponents();
  std::printf("\nweb graph of latest crawl: %lld nodes, %lld edges, %d weak "
              "components, %s in memory\n",
              static_cast<long long>(graph.num_nodes()),
              static_cast<long long>(graph.num_edges()), num_components,
              FormatBytes(graph.MemoryBytes()).c_str());
  std::printf("highest PageRank: %s (%.5f, in-degree %d)\n",
              graph.UrlOf(best).c_str(), rank[static_cast<size_t>(best)],
              graph.InDegree(best));

  // --- Change over time: which domains are in flux? ---
  weblab::CrawlDelta overall =
      weblab::DiffCrawls(crawls[3].pages, crawls[4].pages);
  std::printf("\nchange between crawls 4 and 5: %lld added, %lld changed "
              "of %lld common (%.0f%% change rate)\n",
              static_cast<long long>(overall.pages_added),
              static_cast<long long>(overall.pages_changed),
              static_cast<long long>(overall.pages_changed +
                                     overall.pages_unchanged),
              overall.ChangeRate() * 100);
  auto per_domain = weblab::PerDomainDeltas(crawls[3].pages, crawls[4].pages);
  std::string hottest;
  double hottest_rate = -1.0;
  for (const auto& [domain, delta] : per_domain) {
    if (delta.ChangeRate() > hottest_rate) {
      hottest_rate = delta.ChangeRate();
      hottest = domain;
    }
  }
  std::printf("fastest-changing domain: %s (%.0f%%)\n", hottest.c_str(),
              hottest_rate * 100);
  auto [scc, num_scc] = graph.StronglyConnectedComponents();
  std::printf("link structure: %d strongly connected components\n",
              num_scc);

  // --- Stratified sample for a download-and-analyze-locally study ---
  auto sample = weblab::StratifiedSampleByDomain(latest, 3, 2006);
  std::printf("stratified sample for offline study: %zu pages across %d "
              "domains\n",
              sample.size(), crawl_config.num_domains);
  return 0;
}
