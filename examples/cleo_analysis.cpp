// CLEO case study: a physicist's analysis session against the EventStore.
//
// Mirrors Section 3: runs are acquired and reconstructed centrally; an
// offsite Monte-Carlo production fills a personal EventStore that is
// merged into the collaboration store; the physicist pins an analysis to
// (grade="physics", timestamp) and gets a reproducible file set, with
// provenance hashes guarding against silent software/calibration drift.

#include <cstdio>

#include "eventstore/event_model.h"
#include "util/logging.h"
#include "eventstore/event_store.h"
#include "eventstore/passes.h"
#include "util/units.h"

using namespace dflow;
using eventstore::EventStore;
using eventstore::StoreScale;

int main() {
  // --- Central data taking and reconstruction ---
  eventstore::CollisionGeneratorConfig generator_config;
  generator_config.payload_events_per_run = 100;
  eventstore::CollisionGenerator cesr(generator_config, 2004);
  eventstore::ReconstructionPass recon("Feb13_04_P2", "cal_2004_03",
                                       1076630400);
  eventstore::MonteCarloGenerator mc_farm(generator_config, 555);

  auto collaboration = EventStore::Create(StoreScale::kCollaboration);
  DFLOW_CHECK_OK(collaboration.status());
  EventStore& store = **collaboration;

  std::printf("taking 8 runs at CESR...\n");
  std::vector<eventstore::Run> raw_runs;
  for (int i = 0; i < 8; ++i) {
    raw_runs.push_back(cesr.NextRun(i * 4000.0));
    const auto& run = raw_runs.back();
    auto recon_out = recon.Process(run);
    DFLOW_CHECK_OK(recon_out.status());
    prov::ProvenanceRecord provenance;
    provenance.AddStep(recon_out->step);
    DFLOW_CHECK_OK(store.RegisterFile(
        {run.run_number, "recon", recon_out->step.version.ToString(),
         1077000000 + i, recon_out->run.AccountedBytes(),
         "/hsm/recon/" + std::to_string(run.run_number), provenance}));
    std::printf("  run %lld: %lld events, %s raw -> %s recon\n",
                static_cast<long long>(run.run_number),
                static_cast<long long>(run.num_events),
                FormatBytes(run.AccountedBytes()).c_str(),
                FormatBytes(recon_out->run.AccountedBytes()).c_str());
  }

  // --- Offsite Monte-Carlo into a personal store, merged on arrival ---
  auto personal = EventStore::Create(StoreScale::kPersonal);
  DFLOW_CHECK_OK(personal.status());
  for (const auto& run : raw_runs) {
    eventstore::Run mc = mc_farm.Simulate(run);
    prov::ProcessingStep step;
    step.module = "mc_generation";
    step.version = {"MC", "Gen_04B", 1077100000};
    step.input_files = {"run_conditions_" + std::to_string(run.run_number)};
    prov::ProvenanceRecord provenance;
    provenance.AddStep(step);
    DFLOW_CHECK_OK((*personal)->RegisterFile(
        {mc.run_number, "mc", step.version.ToString(), 1077200000,
         mc.AccountedBytes(), "/personal/mc", provenance}));
  }
  std::printf("\n%s store arrives on a USB disk: %lld MC files, %s\n",
              (*personal)->CommandPrefix().c_str(),
              static_cast<long long>((*personal)->NumFiles()),
              FormatBytes((*personal)->TotalBytes()).c_str());
  DFLOW_CHECK_OK(store.Merge(**personal));
  std::printf("merged into the %s store in one transaction (%lld files "
              "total)\n",
              store.CommandPrefix().c_str(),
              static_cast<long long>(store.NumFiles()));

  // --- Grades and the pinned analysis ---
  DFLOW_CHECK_OK(store.AssignGrade("physics", 1077300000, {1, 8}, "recon",
                                   recon.release().empty()
                                       ? "?"
                                       : "Recon_Feb13_04_P2@1076630400"));
  DFLOW_CHECK_OK(store.AssignGrade("physics", 1077300000, {1, 8}, "mc",
                                   "MC_Gen_04B@1077100000"));

  const int64_t analysis_date = 1077400000;  // "e.g., 20040301".
  auto file_set = store.Resolve("physics", analysis_date);
  DFLOW_CHECK_OK(file_set.status());
  std::printf("\nanalysis pinned at (physics, %lld): %zu files\n",
              static_cast<long long>(analysis_date), file_set->size());

  // Re-running months later yields the identical set.
  auto again = store.Resolve("physics", analysis_date);
  bool identical = again->size() == file_set->size();
  std::printf("re-resolved months later: %s\n",
              identical ? "bit-identical file set" : "MISMATCH!");

  // --- Ad-hoc SQL straight against the metadata ---
  auto by_type = store.database().Execute(
      "SELECT data_type, COUNT(*) AS files, SUM(bytes) AS bytes FROM files "
      "GROUP BY data_type ORDER BY bytes DESC");
  DFLOW_CHECK_OK(by_type.status());
  std::printf("\nmetadata by data type:\n%s\n", by_type->ToString().c_str());

  // --- Provenance guard ---
  const auto& one = file_set->front();
  std::printf("\nprovenance of run %lld %s: hash %s\n",
              static_cast<long long>(one.run), one.data_type.c_str(),
              one.provenance.SummaryHash().c_str());
  prov::ProvenanceRecord tampered = one.provenance;
  prov::ProcessingStep sneaky = tampered.steps()[0];
  // A colleague quietly re-reconstructs with a new calibration...
  prov::ProvenanceRecord other;
  sneaky.parameters.emplace_back("calibration_patch", "cal_2004_04");
  other.AddStep(sneaky);
  std::printf("comparing against a re-reconstruction: %s\n",
              one.provenance.ConsistentWith(other)
                  ? "consistent"
                  : "DISCREPANCY detected by hash comparison");
  for (const auto& line :
       prov::ProvenanceRecord::Diff(one.provenance, other)) {
    std::printf("  %s\n", line.c_str());
  }
  return 0;
}
