// Dissemination: the paper's Section-5 "next steps", realized.
//
// "The logical next step for all projects is to extend the functionality
// of their dissemination Web Services to enable full access to data and
// analysis functionality." This example stands up all three projects'
// services under one registry, walks a client through each, and finishes
// with the NVO federation: a query spanning two surveys' catalogs and a
// cross-match confirming a pulsar seen by both.

#include <cstdio>

#include "arecibo/candidate_service.h"
#include "arecibo/nvo_federation.h"
#include "arecibo/survey.h"
#include "arecibo/votable.h"
#include "core/web_service.h"
#include "eventstore/event_store.h"
#include "eventstore/eventstore_service.h"
#include "util/logging.h"
#include "weblab/crawler.h"
#include "weblab/preload.h"
#include "weblab/weblab_service.h"

using namespace dflow;

namespace {

core::ServiceRequest Req(const std::string& path,
                         std::map<std::string, std::string> params = {}) {
  core::ServiceRequest request;
  request.path = path;
  request.params = std::move(params);
  return request;
}

void Show(const std::string& title, const core::ServiceResponse& response,
          size_t max_chars = 400) {
  std::printf("--- %s (%s)\n%.*s%s\n", title.c_str(),
              response.content_type.c_str(),
              static_cast<int>(std::min(max_chars, response.body.size())),
              response.body.c_str(),
              response.body.size() > max_chars ? "..." : "");
}

}  // namespace

int main() {
  core::ServiceRegistry registry;

  // --- Arecibo: run a pointing, load candidates, serve them ---
  arecibo::SurveyConfig survey_config;
  survey_config.num_channels = 48;
  survey_config.num_samples = 1 << 12;
  survey_config.sample_time_sec = 1e-3;
  survey_config.num_dm_trials = 12;
  survey_config.dm_max = 200.0;
  arecibo::SurveyPipeline pipeline(survey_config);
  arecibo::InjectedPulsar pulsar;
  pulsar.beam = 3;
  pulsar.params.period_sec = 0.25;
  pulsar.params.dm = 90.0;
  pulsar.params.pulse_amplitude = 0.4;
  auto pointing = pipeline.ProcessPointing(1, {pulsar}, {});

  db::Database candidate_db;
  auto candidate_service = arecibo::CandidateService::Create(&candidate_db);
  DFLOW_CHECK_OK(candidate_service.status());
  DFLOW_CHECK_OK((*candidate_service)->Load(pointing.candidates));
  DFLOW_CHECK_OK(registry.Mount("arecibo", std::move(*candidate_service)));

  // --- CLEO: a small store behind its service ---
  auto store = eventstore::EventStore::Create(
      eventstore::StoreScale::kCollaboration);
  DFLOW_CHECK_OK(store.status());
  for (int64_t run = 1; run <= 4; ++run) {
    DFLOW_CHECK_OK((*store)->RegisterFile(
        {run, "recon", "Recon_Feb13_04_P2@1076630400", 100 + run,
         40'000'000 + run, "/hsm/recon", {}}));
  }
  DFLOW_CHECK_OK((*store)->AssignGrade("physics", 200, {1, 4}, "recon",
                                       "Recon_Feb13_04_P2@1076630400"));
  registry.Mount("cleo", std::make_shared<eventstore::EventStoreService>(
                             store->get()));

  // --- WebLab: one crawl behind its service ---
  weblab::CrawlerConfig crawl_config;
  crawl_config.initial_pages = 500;
  weblab::SyntheticCrawler crawler(crawl_config);
  weblab::Crawl crawl = crawler.NextCrawl();
  db::Database weblab_db;
  weblab::PageStore page_store;
  weblab::PreloadSubsystem preload(weblab::PreloadConfig{}, &weblab_db,
                                   &page_store);
  DFLOW_CHECK_OK(
      preload.LoadArcFiles({weblab::WriteArcFile(crawl.pages)}).status());
  DFLOW_CHECK_OK(
      preload.LoadDatFiles({weblab::WriteDatFile(crawl.pages)}).status());
  weblab::InvertedIndex index;
  for (const auto& page : crawl.pages) {
    index.AddPage(page.url, page.content);
  }
  registry.Mount("weblab", std::make_shared<weblab::WebLabService>(
                               &page_store, &weblab_db, &index));

  // --- The federated entry point ---
  std::printf("mounted endpoints:\n");
  for (const std::string& endpoint : registry.Endpoints()) {
    std::printf("  %s\n", endpoint.c_str());
  }
  std::printf("\n");

  Show("arecibo/top?limit=3",
       *registry.Handle(Req("arecibo/top", {{"limit", "3"}})));
  Show("cleo/resolve?grade=physics&ts=300",
       *registry.Handle(
           Req("cleo/resolve", {{"grade", "physics"}, {"ts", "300"}})));
  Show("weblab/search?q=w1+w2",
       *registry.Handle(Req("weblab/search", {{"q", "w1 w2"}})), 200);
  Show("weblab/retro (first crawl page)",
       *registry.Handle(
           Req("weblab/retro",
               {{"url", crawl.pages[42].url},
                {"date", std::to_string(crawl.crawl_time + 1)}})),
       160);

  // --- NVO federation: queries spanning surveys ---
  arecibo::NvoFederation nvo;
  DFLOW_CHECK_OK(nvo.Contribute(
      "PALFA",
      registry.Handle(Req("arecibo/votable"))->body));
  // A second survey saw the same 4 Hz pulsar.
  arecibo::Candidate confirmation;
  confirmation.freq_hz = 3.91;  // The survey's binned 4 Hz fundamental.
  confirmation.period_sec = 1.0 / confirmation.freq_hz;
  confirmation.dm = 92.0;
  confirmation.snr = 12.5;
  DFLOW_CHECK_OK(nvo.Contribute(
      "ParkesMB",
      arecibo::CandidatesToVoTable({confirmation}, "ParkesMB")));

  std::printf("--- NVO federation: %lld candidates from %zu surveys\n",
              static_cast<long long>(nvo.NumCandidates()),
              nvo.Surveys().size());
  auto matches = nvo.CrossMatches(0.01, 25.0);
  for (const auto& match : matches) {
    std::printf("cross-match: %.3f Hz seen by %s (snr %.1f) and %s "
                "(snr %.1f) -> confirmed pulsar\n",
                match.a.candidate.freq_hz, match.a.survey.c_str(),
                match.a.candidate.snr, match.b.survey.c_str(),
                match.b.candidate.snr);
  }
  if (matches.empty()) {
    std::printf("no cross-matches (unexpected for this sky)\n");
  }
  return matches.empty() ? 1 : 0;
}
