// Arecibo case study: run a night of the PALFA pulsar survey end to end.
//
// The synthetic sky contains two pulsars (one in a binary) and persistent
// 60 Hz terrestrial interference hitting all seven ALFA beams. The example
// walks the full Section-2 pipeline: generate dynamic spectra, dedisperse
// over trial DMs, Fourier search with harmonic summing (plus acceleration
// trials for binaries), sift, run the multibeam meta-analysis that kills
// the RFI, ship candidate products to the CTC on physical disks, and
// export the survivors as a VOTable for the National Virtual Observatory.

#include <cmath>
#include <cstdio>

#include "arecibo/survey.h"
#include "util/logging.h"
#include "arecibo/votable.h"
#include "net/shipment.h"
#include "net/transfer.h"
#include "sim/simulation.h"
#include "util/crc32.h"
#include "util/units.h"

using namespace dflow;

int main() {
  arecibo::SurveyConfig config;
  config.num_channels = 64;
  config.num_samples = 1 << 13;
  config.sample_time_sec = 1e-3;
  config.num_dm_trials = 16;
  // Trials-aware threshold: 7 beams x 16 DM trials x 13 accel trials x
  // ~4k spectral bins of exponential-tailed noise need a high bar.
  config.search.snr_threshold = 13.0;
  arecibo::SurveyPipeline pipeline(config);

  std::printf("PALFA mini-survey: 3 pointings x 7 beams, %d DM trials\n\n",
              config.num_dm_trials);

  // The sky: an isolated pulsar, a binary, and one empty pointing.
  arecibo::InjectedPulsar isolated;
  isolated.beam = 2;
  isolated.params = {.period_sec = 0.25, .dm = 90.0, .pulse_amplitude = 0.5,
                     .duty_cycle = 0.05, .phase = 0.0, .accel_bins = 0.0};
  arecibo::InjectedPulsar binary;
  binary.beam = 5;
  binary.params = {.period_sec = 0.125, .dm = 150.0, .pulse_amplitude = 0.5,
                   .duty_cycle = 0.05, .phase = 0.0, .accel_bins = 16.0};
  arecibo::RfiParams rfi;
  rfi.period_sec = 1.0 / 60.0;
  rfi.amplitude = 1.0;
  rfi.channel_hi = config.num_channels - 1;

  std::vector<double> accel_trials;
  for (double alpha = -0.5; alpha <= 0.5001; alpha += 0.1) {
    accel_trials.push_back(alpha);
  }

  std::vector<arecibo::PointingResult> results;
  results.push_back(pipeline.ProcessPointing(0, {isolated}, {rfi},
                                             accel_trials));
  results.push_back(pipeline.ProcessPointing(1, {binary}, {rfi},
                                             accel_trials));
  results.push_back(pipeline.ProcessPointing(2, {}, {rfi}, accel_trials));

  int64_t raw_total = 0;
  for (const auto& result : results) {
    raw_total += result.raw_payload_bytes;
    std::printf("pointing %d: %zu candidates, %zu survive meta-analysis\n",
                result.pointing, result.candidates.size(),
                result.detections.size());
    size_t shown = 0;
    for (const auto& detection : result.detections) {
      if (++shown > 8) {
        std::printf("   ... (%zu more)\n", result.detections.size() - 8);
        break;
      }
      std::printf("   beam %d  f=%.3f Hz  P=%.1f ms  DM=%.0f  snr=%.1f%s\n",
                  detection.beam, detection.freq_hz,
                  detection.period_sec * 1000, detection.dm, detection.snr,
                  detection.accel != 0.0 ? "  (accel trial)" : "");
    }
  }
  std::printf("\nraw payload: %s; dedispersed: %s\n",
              FormatBytes(raw_total).c_str(),
              FormatBytes(results[0].dedispersed_payload_bytes * 3).c_str());

  // Ship the candidate products to the Cornell Theory Center on disks.
  sim::Simulation simulation;
  net::ShipmentChannel channel(&simulation, "arecibo_to_ctc",
                               net::ShipmentConfig{});
  net::TransferScheduler scheduler(&simulation, &channel);
  std::vector<net::TransferItem> items;
  for (const auto& result : results) {
    std::string votable =
        arecibo::CandidatesToVoTable(result.detections, "PALFA");
    items.push_back({"pointing_" + std::to_string(result.pointing),
                     static_cast<int64_t>(votable.size()),
                     Crc32::Of(votable)});
  }
  double delivered_at = 0.0;
  DFLOW_CHECK_OK(scheduler.SendAll(
      items, [&] { delivered_at = simulation.Now(); }));
  simulation.Run();
  std::printf("candidates delivered to CTC after %s (next weekly courier + "
              "transit)\n\n",
              FormatDuration(delivered_at).c_str());

  // NVO export of everything that survived.
  std::vector<arecibo::Candidate> all;
  for (const auto& result : results) {
    all.insert(all.end(), result.detections.begin(),
               result.detections.end());
  }
  std::string votable = arecibo::CandidatesToVoTable(all, "PALFA-mini");
  std::printf("VOTable for the NVO (%zu candidates, %zu bytes):\n%s",
              all.size(), votable.size(),
              votable.substr(0, 600).c_str());
  std::printf("...\n");
  return 0;
}
