#ifndef DFLOW_UTIL_RNG_H_
#define DFLOW_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dflow {

/// Deterministic xoshiro256++ generator. Every stochastic component in this
/// library draws from an explicitly seeded Rng so experiments replay
/// bit-for-bit; nothing reads entropy from the environment.
class Rng {
 public:
  /// Seeds the four words of state from `seed` via SplitMix64, so nearby
  /// seeds produce uncorrelated streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform real in [lo, hi).
  double UniformReal(double lo, double hi);

  /// Standard normal via the Marsaglia polar method.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double Exponential(double rate);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  int64_t Poisson(double mean);

  /// Zipf-distributed rank in [1, n] with exponent `s` (s=1 is classic
  /// Zipf). Uses an inverted-CDF table built lazily per (n, s).
  int64_t Zipf(int64_t n, double s);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(0, static_cast<int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; used to give each parallel
  /// component its own stream from one experiment seed.
  Rng Fork();

 private:
  uint64_t s_[4];
  // Cached state for the polar method (generates normals in pairs).
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
  // Lazily built Zipf CDF, keyed by the last (n, s) requested.
  int64_t zipf_n_ = 0;
  double zipf_s_ = 0.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace dflow

#endif  // DFLOW_UTIL_RNG_H_
