#ifndef DFLOW_UTIL_STATUS_H_
#define DFLOW_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace dflow {

/// Machine-readable classification of an error. Mirrors the common
/// database-engine convention (Arrow/RocksDB): a small closed enum plus a
/// free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIOError,
  kCorruption,
  kUnsupported,
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
};

/// Returns a stable human-readable name for `code`, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of an operation that can fail. Cheap to copy in the OK case
/// (no allocation); carries a code and message otherwise. No exceptions
/// cross the public API of this library; fallible functions return Status
/// or Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsUnsupported() const { return code_ == StatusCode::kUnsupported; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define DFLOW_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::dflow::Status dflow_status_macro_s = (expr); \
    if (!dflow_status_macro_s.ok()) {              \
      return dflow_status_macro_s;                 \
    }                                              \
  } while (false)

}  // namespace dflow

#endif  // DFLOW_UTIL_STATUS_H_
