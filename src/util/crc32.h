#ifndef DFLOW_UTIL_CRC32_H_
#define DFLOW_UTIL_CRC32_H_

#include <cstdint>
#include <string_view>

namespace dflow {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant), table-driven.
/// Used for per-file integrity checks in the transport manifests: the paper
/// lists "assessment and maintenance of data integrity" as a main issue of
/// the Arecibo disk-shipment pipeline.
class Crc32 {
 public:
  Crc32() = default;

  /// Absorbs `data`; can be called repeatedly.
  void Update(const void* data, size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  /// Current checksum of everything absorbed so far.
  uint32_t Value() const { return crc_ ^ 0xffffffffu; }

  /// Convenience: checksum of a single buffer.
  static uint32_t Of(std::string_view s);
  static uint32_t Of(const void* data, size_t len);

 private:
  uint32_t crc_ = 0xffffffffu;
};

}  // namespace dflow

#endif  // DFLOW_UTIL_CRC32_H_
