#ifndef DFLOW_UTIL_LOGGING_H_
#define DFLOW_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace dflow {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; flushes one line to stderr on destruction.
/// Used via the DFLOW_LOG macro, not directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Terminates the process after printing; used by DFLOW_CHECK.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define DFLOW_LOG(level)                                             \
  ::dflow::internal_logging::LogMessage(::dflow::LogLevel::k##level, \
                                        __FILE__, __LINE__)          \
      .stream()

/// Invariant check that stays on in release builds. Database-style code uses
/// this for internal invariants whose violation means a bug, not bad input;
/// bad input is reported through Status.
#define DFLOW_CHECK(condition)                                             \
  if (!(condition))                                                        \
  ::dflow::internal_logging::FatalMessage(__FILE__, __LINE__, #condition) \
      .stream()

#define DFLOW_CHECK_OK(expr)                           \
  do {                                                 \
    ::dflow::Status dflow_check_ok_s = (expr);         \
    DFLOW_CHECK(dflow_check_ok_s.ok())                 \
        << "status: " << dflow_check_ok_s.ToString();  \
  } while (false)

}  // namespace dflow

#endif  // DFLOW_UTIL_LOGGING_H_
