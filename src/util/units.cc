#include "util/units.h"

#include <cmath>
#include <cstdio>

namespace dflow {

namespace {

std::string FormatScaled(double value, const char* const* suffixes,
                         int num_suffixes, double base) {
  int idx = 0;
  double v = std::fabs(value);
  while (v >= base && idx < num_suffixes - 1) {
    v /= base;
    ++idx;
  }
  char buf[64];
  if (idx == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", std::fabs(value), suffixes[0]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, suffixes[idx]);
  }
  std::string out = buf;
  if (value < 0) {
    out.insert(out.begin(), '-');
  }
  return out;
}

}  // namespace

std::string FormatBytes(int64_t bytes) {
  static const char* const kSuffixes[] = {"B", "KB", "MB", "GB", "TB", "PB",
                                          "EB"};
  return FormatScaled(static_cast<double>(bytes), kSuffixes, 7, 1000.0);
}

std::string FormatDuration(double seconds) {
  char buf[64];
  double abs = std::fabs(seconds);
  if (abs < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (abs < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else if (abs < kMinute) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else if (abs < kHour) {
    std::snprintf(buf, sizeof(buf), "%.2f min", seconds / kMinute);
  } else if (abs < kDay) {
    std::snprintf(buf, sizeof(buf), "%.2f h", seconds / kHour);
  } else if (abs < kYear) {
    std::snprintf(buf, sizeof(buf), "%.2f d", seconds / kDay);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f yr", seconds / kYear);
  }
  return buf;
}

std::string FormatRate(double bytes_per_second) {
  return FormatBytes(static_cast<int64_t>(bytes_per_second)) + "/s";
}

}  // namespace dflow
