#ifndef DFLOW_UTIL_BYTE_BUFFER_H_
#define DFLOW_UTIL_BYTE_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace dflow {

/// Growable little-endian byte sink used by the on-disk formats in this
/// library (database pages, WAL records, ARC/DAT containers, EventStore
/// file headers). Fixed-width integers are stored little-endian; varints use
/// the LEB128-style 7-bit encoding.
class ByteWriter {
 public:
  ByteWriter() = default;

  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v) { PutFixed(v); }
  void PutU32(uint32_t v) { PutFixed(v); }
  void PutU64(uint64_t v) { PutFixed(v); }
  void PutI64(int64_t v) { PutFixed(static_cast<uint64_t>(v)); }
  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutFixed(bits);
  }

  /// Unsigned LEB128 varint.
  void PutVarint(uint64_t v);

  /// Signed varint: ZigZag-mapped (0, -1, 1, -2, ... -> 0, 1, 2, 3, ...)
  /// then LEB128, so small-magnitude values of either sign stay short.
  void PutVarintSigned(int64_t v) {
    PutVarint((static_cast<uint64_t>(v) << 1) ^
              static_cast<uint64_t>(v >> 63));
  }

  /// Length-prefixed (varint) byte string.
  void PutString(std::string_view s);

  /// Raw bytes, no length prefix.
  void PutRaw(const void* data, size_t len);
  void PutRaw(std::string_view s) { PutRaw(s.data(), s.size()); }

  size_t size() const { return buf_.size(); }
  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  template <typename T>
  void PutFixed(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::string buf_;
};

/// Bounds-checked reader over a byte string produced by ByteWriter.
/// All getters return Status/Result rather than asserting, because readers
/// parse data that may be corrupted (the fault-injection tests rely on
/// this surfacing as Status::Corruption, not a crash).
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<uint64_t> GetVarint();
  Result<int64_t> GetVarintSigned() {
    DFLOW_ASSIGN_OR_RETURN(uint64_t z, GetVarint());
    return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }
  Result<std::string> GetString();
  /// Reads exactly `len` raw bytes.
  Result<std::string> GetRaw(size_t len);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t position() const { return pos_; }

 private:
  template <typename T>
  Result<T> GetFixed();

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace dflow

#endif  // DFLOW_UTIL_BYTE_BUFFER_H_
