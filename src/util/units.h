#ifndef DFLOW_UTIL_UNITS_H_
#define DFLOW_UTIL_UNITS_H_

#include <cstdint>
#include <string>

namespace dflow {

/// Byte-count arithmetic for the data-volume bookkeeping that dominates this
/// library. Volumes in the paper span nine orders of magnitude (MB-scale ARC
/// files to the Arecibo petabyte), so all accounting is done in int64 bytes
/// and only formatted for humans at the edges.
inline constexpr int64_t kKB = 1000;
inline constexpr int64_t kMB = 1000 * kKB;
inline constexpr int64_t kGB = 1000 * kMB;
inline constexpr int64_t kTB = 1000 * kGB;
inline constexpr int64_t kPB = 1000 * kTB;

inline constexpr int64_t kKiB = 1024;
inline constexpr int64_t kMiB = 1024 * kKiB;
inline constexpr int64_t kGiB = 1024 * kMiB;

/// Virtual-time constants, in seconds (the sim:: clock unit).
inline constexpr double kMinute = 60.0;
inline constexpr double kHour = 3600.0;
inline constexpr double kDay = 24 * kHour;
inline constexpr double kWeek = 7 * kDay;
inline constexpr double kYear = 365.25 * kDay;

/// Formats a byte count with a decimal SI suffix, e.g. "14.00 TB",
/// "1.37 GB", "512 B". Negative values are formatted with a leading '-'.
std::string FormatBytes(int64_t bytes);

/// Formats a duration in seconds as the largest sensible unit, e.g.
/// "3.50 h", "2.3 d", "450 ms".
std::string FormatDuration(double seconds);

/// Formats a rate in bytes/second, e.g. "250.0 GB/day" style output is the
/// caller's job; this returns "X MB/s" style.
std::string FormatRate(double bytes_per_second);

}  // namespace dflow

#endif  // DFLOW_UTIL_UNITS_H_
