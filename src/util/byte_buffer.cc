#include "util/byte_buffer.h"

namespace dflow {

void ByteWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  buf_.push_back(static_cast<char>(v));
}

void ByteWriter::PutString(std::string_view s) {
  PutVarint(s.size());
  PutRaw(s);
}

void ByteWriter::PutRaw(const void* data, size_t len) {
  buf_.append(static_cast<const char*>(data), len);
}

template <typename T>
Result<T> ByteReader::GetFixed() {
  if (remaining() < sizeof(T)) {
    return Status::Corruption("byte reader underflow");
  }
  T v = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += sizeof(T);
  return v;
}

Result<uint8_t> ByteReader::GetU8() { return GetFixed<uint8_t>(); }
Result<uint16_t> ByteReader::GetU16() { return GetFixed<uint16_t>(); }
Result<uint32_t> ByteReader::GetU32() { return GetFixed<uint32_t>(); }
Result<uint64_t> ByteReader::GetU64() { return GetFixed<uint64_t>(); }

Result<int64_t> ByteReader::GetI64() {
  DFLOW_ASSIGN_OR_RETURN(uint64_t bits, GetFixed<uint64_t>());
  return static_cast<int64_t>(bits);
}

Result<double> ByteReader::GetDouble() {
  DFLOW_ASSIGN_OR_RETURN(uint64_t bits, GetFixed<uint64_t>());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<uint64_t> ByteReader::GetVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= data_.size()) {
      return Status::Corruption("truncated varint");
    }
    uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    if (shift >= 63 && (byte >> (70 - shift)) != 0) {
      return Status::Corruption("varint overflow");
    }
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      break;
    }
    shift += 7;
    if (shift > 63) {
      return Status::Corruption("varint too long");
    }
  }
  return v;
}

Result<std::string> ByteReader::GetString() {
  DFLOW_ASSIGN_OR_RETURN(uint64_t len, GetVarint());
  return GetRaw(static_cast<size_t>(len));
}

Result<std::string> ByteReader::GetRaw(size_t len) {
  if (remaining() < len) {
    return Status::Corruption("byte reader underflow reading raw bytes");
  }
  std::string out(data_.substr(pos_, len));
  pos_ += len;
  return out;
}

}  // namespace dflow
