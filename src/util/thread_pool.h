#ifndef DFLOW_UTIL_THREAD_POOL_H_
#define DFLOW_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dflow {

/// Fixed-size worker pool for the parallel payload stages (WebLab preload
/// parsing, Arecibo per-beam dedispersion). Tasks are plain closures; the
/// pool makes no ordering guarantee. Destruction waits for queued work.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after Wait() has started from
  /// another thread concurrently with destruction.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace dflow

#endif  // DFLOW_UTIL_THREAD_POOL_H_
