#ifndef DFLOW_UTIL_THREAD_POOL_H_
#define DFLOW_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dflow {

/// Fixed-size worker pool for the parallel payload stages (WebLab preload
/// parsing, Arecibo per-beam dedispersion). Tasks are plain closures; the
/// pool makes no ordering guarantee. Destruction waits for queued work.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after Wait() has started from
  /// another thread concurrently with destruction.
  void Submit(std::function<void()> task);

  /// Bounded-queue variant of Submit for admission control: enqueues
  /// `task` only if fewer than `max_queued` tasks are currently WAITING
  /// (tasks already running on workers do not count). Returns true if the
  /// task was enqueued, false if the queue is full — the task is dropped
  /// and the caller is expected to shed or retry later. `max_queued == 0`
  /// always rejects. Submit() semantics are unchanged (unbounded).
  ///
  /// Admission semantics, precisely: the bound is on the WAITING queue
  /// only. The moment a worker claims a task (dequeues it to run), that
  /// task stops counting — so a TrySubmit racing the claim can be admitted
  /// even though the total work in the pool did not shrink. Consequences
  /// callers should design for:
  ///  * Worst-case outstanding (waiting + running) work admitted through
  ///    TrySubmit is `max_queued + num_threads()`, not `max_queued`.
  ///  * A full queue with all workers parked rejects; releasing ONE worker
  ///    (one claim) re-opens admission for exactly one task.
  /// This is the intended behavior for the dissemination tier: the bound
  /// limits queueing delay (time spent waiting), not concurrency — running
  /// tasks are already paid for.
  bool TrySubmit(std::function<void()> task, size_t max_queued);

  /// Tasks waiting in the queue right now (excludes running tasks).
  /// Advisory: the value may be stale by the time the caller acts on it.
  size_t QueueDepth() const;

  /// Blocks until every submitted task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace dflow

#endif  // DFLOW_UTIL_THREAD_POOL_H_
