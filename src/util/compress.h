#ifndef DFLOW_UTIL_COMPRESS_H_
#define DFLOW_UTIL_COMPRESS_H_

#include <string>
#include <string_view>

#include "util/result.h"

namespace dflow {

/// Block compression for the archive container formats ("wlz"). The Internet
/// Archive's ARC and DAT files that WebLab ingests are gzip-compressed; we
/// implement a from-scratch LZ77 byte-oriented codec with hash-chain match
/// finding that plays the same role: CPU-bounded decompression on the
/// preload path and a realistic (2-5x on text) compression ratio.
///
/// Format: "WLZ1" magic, varint uncompressed size, then a token stream of
/// literal runs (tag byte 0x00 + varint len + bytes) and matches
/// (tag 0x01 + varint length + varint distance). Framed with a CRC-32 of
/// the uncompressed payload so corruption surfaces as Status::Corruption.
std::string WlzCompress(std::string_view input);

/// Inverse of WlzCompress. Fails with Corruption on bad magic, truncation,
/// invalid match distances, or checksum mismatch.
Result<std::string> WlzDecompress(std::string_view compressed);

/// Accounting for one chunked-compression pass (the stored-bytes vs
/// recall-latency tradeoff curve reads these).
struct WlzChunkedStats {
  int64_t raw_bytes = 0;     // Input size.
  int64_t stored_bytes = 0;  // Total container size (headers included).
  int64_t blocks = 0;        // Total block frames emitted.
  int64_t raw_blocks = 0;    // Blocks stored raw (incompressible).

  double ratio() const {
    return stored_bytes == 0
               ? 0.0
               : static_cast<double>(raw_bytes) / stored_bytes;
  }
};

/// Chunked container over WlzCompress for the tape/HSM tier: the input is
/// split into fixed-size blocks, each compressed independently and framed
/// with a CRC-32 over the STORED payload — so silent media corruption is
/// detected per block before any decode runs, and a recall only ever
/// decompresses whole blocks.
///
/// Incompressible blocks (wlz output >= the raw block) fall back to a
/// stored-raw frame: expansion is bounded by the per-block frame header
/// (~11 bytes), never by codec behavior — the guarantee the
/// already-compressed-input tests pin.
///
/// Format: "WLZC" magic, varint block_bytes, varint raw size, then per
/// block: tag u8 (0x01 wlz / 0x00 stored raw), varint payload length,
/// u32 CRC-32 of the stored payload, payload bytes.
std::string WlzChunkedCompress(std::string_view input,
                               size_t block_bytes = 64 * 1024,
                               WlzChunkedStats* stats = nullptr);

/// Inverse of WlzChunkedCompress. Per-frame CRCs are verified BEFORE any
/// payload is decoded; any mismatch, truncation, or size inconsistency
/// returns Status::Corruption.
Result<std::string> WlzChunkedDecompress(std::string_view compressed);

}  // namespace dflow

#endif  // DFLOW_UTIL_COMPRESS_H_
