#ifndef DFLOW_UTIL_COMPRESS_H_
#define DFLOW_UTIL_COMPRESS_H_

#include <string>
#include <string_view>

#include "util/result.h"

namespace dflow {

/// Block compression for the archive container formats ("wlz"). The Internet
/// Archive's ARC and DAT files that WebLab ingests are gzip-compressed; we
/// implement a from-scratch LZ77 byte-oriented codec with hash-chain match
/// finding that plays the same role: CPU-bounded decompression on the
/// preload path and a realistic (2-5x on text) compression ratio.
///
/// Format: "WLZ1" magic, varint uncompressed size, then a token stream of
/// literal runs (tag byte 0x00 + varint len + bytes) and matches
/// (tag 0x01 + varint length + varint distance). Framed with a CRC-32 of
/// the uncompressed payload so corruption surfaces as Status::Corruption.
std::string WlzCompress(std::string_view input);

/// Inverse of WlzCompress. Fails with Corruption on bad magic, truncation,
/// invalid match distances, or checksum mismatch.
Result<std::string> WlzDecompress(std::string_view compressed);

}  // namespace dflow

#endif  // DFLOW_UTIL_COMPRESS_H_
