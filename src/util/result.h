#ifndef DFLOW_UTIL_RESULT_H_
#define DFLOW_UTIL_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "util/status.h"

namespace dflow {

/// Either a value of type T or a non-OK Status explaining why the value is
/// absent. The usual accessor pattern is:
///
///   Result<Foo> r = MakeFoo(...);
///   if (!r.ok()) return r.status();
///   Foo& foo = *r;
///
/// or, inside a function that itself returns Status/Result, the
/// DFLOW_ASSIGN_OR_RETURN macro below.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from a non-OK Status keeps call
  /// sites natural: `return value;` / `return Status::NotFound(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {
    // A Result built from a Status must carry an error; an OK status with no
    // value would be unobservable. Downgrade to an Internal error.
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Value accessors. Undefined behaviour if !ok(); callers must check.
  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return *std::move(value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T&& operator*() && { return *std::move(value_); }

  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  /// Returns the contained value or `fallback` if this Result is an error.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

/// DFLOW_ASSIGN_OR_RETURN(lhs, rexpr): evaluates `rexpr` (a Result<T>); on
/// error returns the status from the enclosing function, otherwise assigns
/// the value to `lhs` (which may be a declaration).
#define DFLOW_ASSIGN_OR_RETURN(lhs, rexpr) \
  DFLOW_ASSIGN_OR_RETURN_IMPL_(            \
      DFLOW_RESULT_CONCAT_(dflow_result_, __LINE__), lhs, rexpr)

#define DFLOW_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) {                                    \
    return tmp.status();                              \
  }                                                   \
  lhs = *std::move(tmp)

#define DFLOW_RESULT_CONCAT_(a, b) DFLOW_RESULT_CONCAT_IMPL_(a, b)
#define DFLOW_RESULT_CONCAT_IMPL_(a, b) a##b

}  // namespace dflow

#endif  // DFLOW_UTIL_RESULT_H_
