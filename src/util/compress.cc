#include "util/compress.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/byte_buffer.h"
#include "util/crc32.h"

namespace dflow {

namespace {

constexpr char kMagic[4] = {'W', 'L', 'Z', '1'};
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 1 << 16;
constexpr size_t kWindow = 1 << 16;
constexpr int kHashBits = 15;
constexpr int kMaxChainProbes = 32;

uint32_t HashAt(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void EmitLiterals(ByteWriter& w, const uint8_t* base, size_t start,
                  size_t end) {
  if (end <= start) {
    return;
  }
  w.PutU8(0x00);
  w.PutVarint(end - start);
  w.PutRaw(base + start, end - start);
}

}  // namespace

std::string WlzCompress(std::string_view input) {
  ByteWriter w;
  w.PutRaw(kMagic, sizeof(kMagic));
  w.PutVarint(input.size());
  w.PutU32(Crc32::Of(input));

  const uint8_t* data = reinterpret_cast<const uint8_t*>(input.data());
  const size_t n = input.size();

  // head[h]: most recent position with hash h; prev[i]: previous position
  // with the same hash as i (hash chains).
  std::vector<int64_t> head(size_t{1} << kHashBits, -1);
  std::vector<int64_t> prev(n, -1);

  size_t pos = 0;
  size_t literal_start = 0;
  while (pos + kMinMatch <= n) {
    uint32_t h = HashAt(data + pos);
    int64_t candidate = head[h];
    size_t best_len = 0;
    size_t best_dist = 0;
    int probes = 0;
    while (candidate >= 0 && probes < kMaxChainProbes &&
           pos - static_cast<size_t>(candidate) <= kWindow) {
      const uint8_t* a = data + candidate;
      const uint8_t* b = data + pos;
      size_t limit = std::min(n - pos, kMaxMatch);
      size_t len = 0;
      while (len < limit && a[len] == b[len]) {
        ++len;
      }
      if (len > best_len) {
        best_len = len;
        best_dist = pos - static_cast<size_t>(candidate);
        if (len >= 128) {
          break;  // Long enough; stop probing.
        }
      }
      candidate = prev[candidate];
      ++probes;
    }

    prev[pos] = head[h];
    head[h] = static_cast<int64_t>(pos);

    if (best_len >= kMinMatch) {
      EmitLiterals(w, data, literal_start, pos);
      w.PutU8(0x01);
      w.PutVarint(best_len);
      w.PutVarint(best_dist);
      // Insert hash entries for the matched region (sparsely, every other
      // byte, to bound compression cost).
      size_t insert_end = std::min(pos + best_len, n - kMinMatch + 1);
      for (size_t i = pos + 1; i < insert_end; i += 2) {
        uint32_t hi = HashAt(data + i);
        prev[i] = head[hi];
        head[hi] = static_cast<int64_t>(i);
      }
      pos += best_len;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  EmitLiterals(w, data, literal_start, n);
  return w.Take();
}

Result<std::string> WlzDecompress(std::string_view compressed) {
  ByteReader r(compressed);
  DFLOW_ASSIGN_OR_RETURN(std::string magic, r.GetRaw(4));
  if (std::memcmp(magic.data(), kMagic, 4) != 0) {
    return Status::Corruption("wlz: bad magic");
  }
  DFLOW_ASSIGN_OR_RETURN(uint64_t expected_size, r.GetVarint());
  DFLOW_ASSIGN_OR_RETURN(uint32_t expected_crc, r.GetU32());

  // The size header is untrusted until the trailing CRC passes: a flipped
  // bit in the varint must not drive a giant allocation. Reserve only up to
  // a sanity cap; larger outputs grow geometrically as tokens are decoded,
  // and every token is bounds-checked against expected_size below.
  constexpr uint64_t kMaxUpfrontReserve = uint64_t{1} << 20;
  std::string out;
  out.reserve(static_cast<size_t>(
      std::min<uint64_t>(expected_size, kMaxUpfrontReserve)));
  while (!r.AtEnd()) {
    DFLOW_ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
    if (tag == 0x00) {
      DFLOW_ASSIGN_OR_RETURN(uint64_t len, r.GetVarint());
      if (out.size() + len > expected_size) {
        return Status::Corruption("wlz: output overflow");
      }
      DFLOW_ASSIGN_OR_RETURN(std::string bytes,
                             r.GetRaw(static_cast<size_t>(len)));
      out += bytes;
    } else if (tag == 0x01) {
      DFLOW_ASSIGN_OR_RETURN(uint64_t len, r.GetVarint());
      DFLOW_ASSIGN_OR_RETURN(uint64_t dist, r.GetVarint());
      if (dist == 0 || dist > out.size()) {
        return Status::Corruption("wlz: invalid match distance");
      }
      if (out.size() + len > expected_size) {
        return Status::Corruption("wlz: output overflow");
      }
      // Byte-by-byte copy: matches may overlap their own output
      // (run-length-style references with dist < len).
      size_t src = out.size() - static_cast<size_t>(dist);
      for (uint64_t i = 0; i < len; ++i) {
        out.push_back(out[src + i]);
      }
    } else {
      return Status::Corruption("wlz: unknown token tag");
    }
  }
  if (out.size() != expected_size) {
    return Status::Corruption("wlz: size mismatch");
  }
  if (Crc32::Of(out) != expected_crc) {
    return Status::Corruption("wlz: checksum mismatch");
  }
  return out;
}

namespace {

constexpr char kChunkedMagic[4] = {'W', 'L', 'Z', 'C'};
constexpr uint8_t kFrameRaw = 0x00;
constexpr uint8_t kFrameWlz = 0x01;

}  // namespace

std::string WlzChunkedCompress(std::string_view input, size_t block_bytes,
                               WlzChunkedStats* stats) {
  if (block_bytes == 0) {
    block_bytes = 64 * 1024;
  }
  ByteWriter w;
  w.PutRaw(kChunkedMagic, sizeof(kChunkedMagic));
  w.PutVarint(block_bytes);
  w.PutVarint(input.size());
  WlzChunkedStats local;
  local.raw_bytes = static_cast<int64_t>(input.size());
  for (size_t off = 0; off < input.size(); off += block_bytes) {
    const std::string_view block =
        input.substr(off, std::min(block_bytes, input.size() - off));
    std::string packed = WlzCompress(block);
    ++local.blocks;
    if (packed.size() >= block.size()) {
      // Incompressible: store raw. Expansion is capped at this frame's
      // header, regardless of what the codec did.
      ++local.raw_blocks;
      w.PutU8(kFrameRaw);
      w.PutVarint(block.size());
      w.PutU32(Crc32::Of(block));
      w.PutRaw(block);
    } else {
      w.PutU8(kFrameWlz);
      w.PutVarint(packed.size());
      // CRC over the STORED (compressed) payload: corruption on the
      // medium is caught before any decode touches the frame.
      w.PutU32(Crc32::Of(packed));
      w.PutRaw(packed);
    }
  }
  std::string out = w.Take();
  local.stored_bytes = static_cast<int64_t>(out.size());
  if (stats != nullptr) {
    *stats = local;
  }
  return out;
}

Result<std::string> WlzChunkedDecompress(std::string_view compressed) {
  ByteReader r(compressed);
  DFLOW_ASSIGN_OR_RETURN(std::string magic, r.GetRaw(4));
  if (std::memcmp(magic.data(), kChunkedMagic, 4) != 0) {
    return Status::Corruption("wlzc: bad magic");
  }
  DFLOW_ASSIGN_OR_RETURN(uint64_t block_bytes, r.GetVarint());
  DFLOW_ASSIGN_OR_RETURN(uint64_t raw_size, r.GetVarint());
  if (block_bytes == 0) {
    return Status::Corruption("wlzc: zero block size");
  }
  std::string out;
  // Upfront reserve is capped: the size header is untrusted until the
  // frame CRCs pass (same policy as WlzDecompress).
  constexpr uint64_t kMaxUpfrontReserve = uint64_t{1} << 20;
  out.reserve(
      static_cast<size_t>(std::min<uint64_t>(raw_size, kMaxUpfrontReserve)));
  while (!r.AtEnd()) {
    if (out.size() >= raw_size) {
      return Status::Corruption("wlzc: trailing frames beyond raw size");
    }
    const uint64_t expected_block =
        std::min<uint64_t>(block_bytes, raw_size - out.size());
    DFLOW_ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
    if (tag != kFrameRaw && tag != kFrameWlz) {
      return Status::Corruption("wlzc: unknown frame tag");
    }
    DFLOW_ASSIGN_OR_RETURN(uint64_t payload_len, r.GetVarint());
    DFLOW_ASSIGN_OR_RETURN(uint32_t expected_crc, r.GetU32());
    if (payload_len > r.remaining()) {
      return Status::Corruption("wlzc: truncated frame payload");
    }
    DFLOW_ASSIGN_OR_RETURN(std::string payload,
                           r.GetRaw(static_cast<size_t>(payload_len)));
    // The frame CRC gates everything else: a corrupted stored payload is
    // reported as Corruption without ever being decoded.
    if (Crc32::Of(payload) != expected_crc) {
      return Status::Corruption("wlzc: frame checksum mismatch");
    }
    if (tag == kFrameRaw) {
      if (payload.size() != expected_block) {
        return Status::Corruption("wlzc: raw frame size mismatch");
      }
      out += payload;
    } else {
      DFLOW_ASSIGN_OR_RETURN(std::string block, WlzDecompress(payload));
      if (block.size() != expected_block) {
        return Status::Corruption("wlzc: decoded block size mismatch");
      }
      out += block;
    }
  }
  if (out.size() != raw_size) {
    return Status::Corruption("wlzc: size mismatch");
  }
  return out;
}

}  // namespace dflow
