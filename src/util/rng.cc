#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dflow {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& word : s_) {
    word = SplitMix64(x);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  DFLOW_CHECK(lo <= hi) << "Uniform(" << lo << ", " << hi << ")";
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {
    return static_cast<int64_t>(Next());  // Full 64-bit range.
  }
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t value = Next();
  while (value >= limit) {
    value = Next();
  }
  return lo + static_cast<int64_t>(value % range);
}

double Rng::UniformReal(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u, v, s;
  do {
    u = UniformReal(-1.0, 1.0);
    v = UniformReal(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return mean + stddev * u * factor;
}

double Rng::Exponential(double rate) {
  DFLOW_CHECK(rate > 0.0);
  return -std::log(1.0 - NextDouble()) / rate;
}

int64_t Rng::Poisson(double mean) {
  DFLOW_CHECK(mean >= 0.0);
  if (mean == 0.0) {
    return 0;
  }
  if (mean > 64.0) {
    // Normal approximation, clamped at zero.
    double x = Normal(mean, std::sqrt(mean));
    return std::max<int64_t>(0, static_cast<int64_t>(std::lround(x)));
  }
  double l = std::exp(-mean);
  int64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= NextDouble();
  } while (p > l);
  return k - 1;
}

int64_t Rng::Zipf(int64_t n, double s) {
  DFLOW_CHECK(n >= 1);
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(static_cast<size_t>(n));
    double sum = 0.0;
    for (int64_t k = 1; k <= n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k), s);
      zipf_cdf_[static_cast<size_t>(k - 1)] = sum;
    }
    for (auto& c : zipf_cdf_) {
      c /= sum;
    }
  }
  double u = NextDouble();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<int64_t>(it - zipf_cdf_.begin()) + 1;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace dflow
