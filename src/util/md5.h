#ifndef DFLOW_UTIL_MD5_H_
#define DFLOW_UTIL_MD5_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace dflow {

/// MD5 message digest (RFC 1321), implemented from scratch. The CLEO
/// EventStore described in the paper stores an MD5 hash of the concatenated
/// module names, parameters, and input-file strings as a provenance summary
/// in every derived data file; we reproduce that exact mechanism.
///
/// MD5 is used here as a fingerprint for consistency checking, never for
/// security.
class Md5 {
 public:
  Md5();

  /// Absorbs `data`; can be called repeatedly.
  void Update(const void* data, size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  /// Finalizes and returns the 16-byte digest. The object must not be
  /// updated afterwards.
  std::array<uint8_t, 16> Digest();

  /// Finalizes and returns the digest as 32 lowercase hex characters.
  std::string HexDigest();

  /// Convenience: hash of a single buffer.
  static std::string HexOf(std::string_view s);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[4];
  uint64_t total_bytes_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
  bool finalized_ = false;
};

}  // namespace dflow

#endif  // DFLOW_UTIL_MD5_H_
