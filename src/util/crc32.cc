#include "util/crc32.h"

#include <array>

namespace dflow {

namespace {

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256>& table = *new auto(BuildTable());
  return table;
}

}  // namespace

void Crc32::Update(const void* data, size_t len) {
  const auto& table = Table();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = crc_;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  crc_ = c;
}

uint32_t Crc32::Of(std::string_view s) { return Of(s.data(), s.size()); }

uint32_t Crc32::Of(const void* data, size_t len) {
  Crc32 crc;
  crc.Update(data, len);
  return crc.Value();
}

}  // namespace dflow
