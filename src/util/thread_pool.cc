#include "util/thread_pool.h"

#include "util/logging.h"

namespace dflow {

ThreadPool::ThreadPool(int num_threads) {
  DFLOW_CHECK(num_threads > 0);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    DFLOW_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

bool ThreadPool::TrySubmit(std::function<void()> task, size_t max_queued) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    DFLOW_CHECK(!shutting_down_);
    if (queue_.size() >= max_queued) {
      return false;
    }
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
  return true;
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting_down_ with no work left.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace dflow
