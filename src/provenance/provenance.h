#ifndef DFLOW_PROVENANCE_PROVENANCE_H_
#define DFLOW_PROVENANCE_PROVENANCE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/byte_buffer.h"
#include "util/result.h"

namespace dflow::prov {

/// A version identifier in the CLEO EventStore style: the paper's example
/// is "Recon Feb13_04 P2", meaning data produced by the Feb13_04 P2 release
/// of the reconstruction software, with `change_date` recording the most
/// recent change to the software *or its inputs* (e.g. calibration data)
/// that might affect results.
struct VersionTag {
  std::string process;   // "Recon", "PostRecon", "MC", ...
  std::string release;   // "Feb13_04_P2"
  int64_t change_date = 0;  // Seconds since epoch.

  /// "Recon_Feb13_04_P2@<change_date>".
  std::string ToString() const;
  static Result<VersionTag> Parse(std::string_view s);

  bool operator==(const VersionTag& other) const {
    return process == other.process && release == other.release &&
           change_date == other.change_date;
  }
};

/// One processing step applied to data: module names, their parameters,
/// all input-file information (recorded "as strings" exactly as §3.2
/// describes), and the processing site (§2.2: "we will tag all data
/// products with a version number indicating processing code and
/// processing site" — PALFA consortium members process the same pointings
/// at different institutions).
struct ProcessingStep {
  std::string module;
  VersionTag version;
  std::string site;  // e.g. "CTC", "Arecibo", "McGill"; may be empty.
  std::vector<std::pair<std::string, std::string>> parameters;
  std::vector<std::string> input_files;

  /// Deterministic canonical string over which the summary hash is taken.
  std::string CanonicalString() const;
};

/// The provenance summary carried in every derived data file: the
/// accumulated chain of processing steps plus the MD5 of their canonical
/// strings. Comparing hashes detects "the majority of usage discrepancies";
/// when they differ, Diff() shows the physicist what changed — both exactly
/// as the paper describes. The chain tells which inputs *might* have been
/// used (ASU-granularity tracking is explicitly out of scope in the paper
/// and here).
class ProvenanceRecord {
 public:
  ProvenanceRecord() = default;

  /// Appends a step; steps accumulate across the processing pipeline
  /// (acquisition -> reconstruction -> post-recon -> analysis).
  void AddStep(ProcessingStep step);

  const std::vector<ProcessingStep>& steps() const { return steps_; }

  /// MD5 over the concatenated canonical step strings (32 hex chars).
  std::string SummaryHash() const;

  /// Two records are consistent iff their summary hashes match.
  bool ConsistentWith(const ProvenanceRecord& other) const;

  /// Human-readable differences between two records (step count, module,
  /// version, parameter, and input mismatches). Empty if consistent.
  static std::vector<std::string> Diff(const ProvenanceRecord& a,
                                       const ProvenanceRecord& b);

  /// Header-embedding serialization (the "simple extension to the CLEO
  /// data storage system").
  void EncodeTo(ByteWriter& w) const;
  static Result<ProvenanceRecord> DecodeFrom(ByteReader& r);

 private:
  std::vector<ProcessingStep> steps_;
};

}  // namespace dflow::prov

#endif  // DFLOW_PROVENANCE_PROVENANCE_H_
