#include "provenance/provenance.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "util/md5.h"
#include "util/strings.h"

namespace dflow::prov {

std::string VersionTag::ToString() const {
  std::ostringstream os;
  os << process << "_" << release << "@" << change_date;
  return os.str();
}

Result<VersionTag> VersionTag::Parse(std::string_view s) {
  size_t at = s.rfind('@');
  if (at == std::string_view::npos) {
    return Status::InvalidArgument("version tag missing '@date': " +
                                   std::string(s));
  }
  std::string_view head = s.substr(0, at);
  size_t underscore = head.find('_');
  if (underscore == std::string_view::npos) {
    return Status::InvalidArgument("version tag missing process: " +
                                   std::string(s));
  }
  VersionTag tag;
  tag.process = std::string(head.substr(0, underscore));
  tag.release = std::string(head.substr(underscore + 1));
  std::string date_str(s.substr(at + 1));
  char* end = nullptr;
  tag.change_date = std::strtoll(date_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || date_str.empty()) {
    return Status::InvalidArgument("bad change date in version tag: " +
                                   std::string(s));
  }
  return tag;
}

std::string ProcessingStep::CanonicalString() const {
  // Parameters sort by name so that declaration order does not perturb the
  // hash; input files keep pipeline order (it is meaningful).
  std::ostringstream os;
  os << "module=" << module << ";version=" << version.ToString() << ";";
  if (!site.empty()) {
    os << "site=" << site << ";";
  }
  std::vector<std::pair<std::string, std::string>> sorted = parameters;
  std::sort(sorted.begin(), sorted.end());
  for (const auto& [key, value] : sorted) {
    os << "param:" << key << "=" << value << ";";
  }
  for (const std::string& input : input_files) {
    os << "input:" << input << ";";
  }
  return os.str();
}

void ProvenanceRecord::AddStep(ProcessingStep step) {
  steps_.push_back(std::move(step));
}

std::string ProvenanceRecord::SummaryHash() const {
  Md5 md5;
  for (const ProcessingStep& step : steps_) {
    md5.Update(step.CanonicalString());
    md5.Update("\n");
  }
  return md5.HexDigest();
}

bool ProvenanceRecord::ConsistentWith(const ProvenanceRecord& other) const {
  return SummaryHash() == other.SummaryHash();
}

std::vector<std::string> ProvenanceRecord::Diff(const ProvenanceRecord& a,
                                                const ProvenanceRecord& b) {
  std::vector<std::string> out;
  if (a.steps_.size() != b.steps_.size()) {
    out.push_back("step count differs: " + std::to_string(a.steps_.size()) +
                  " vs " + std::to_string(b.steps_.size()));
  }
  size_t n = std::min(a.steps_.size(), b.steps_.size());
  for (size_t i = 0; i < n; ++i) {
    const ProcessingStep& sa = a.steps_[i];
    const ProcessingStep& sb = b.steps_[i];
    std::string prefix = "step " + std::to_string(i) + ": ";
    if (sa.module != sb.module) {
      out.push_back(prefix + "module '" + sa.module + "' vs '" + sb.module +
                    "'");
    }
    if (!(sa.version == sb.version)) {
      out.push_back(prefix + "version " + sa.version.ToString() + " vs " +
                    sb.version.ToString());
    }
    if (sa.site != sb.site) {
      out.push_back(prefix + "site '" + sa.site + "' vs '" + sb.site + "'");
    }
    auto sorted = [](const ProcessingStep& s) {
      auto params = s.parameters;
      std::sort(params.begin(), params.end());
      return params;
    };
    auto pa = sorted(sa);
    auto pb = sorted(sb);
    if (pa != pb) {
      out.push_back(prefix + "parameters differ");
    }
    if (sa.input_files != sb.input_files) {
      out.push_back(prefix + "input files differ");
    }
  }
  return out;
}

void ProvenanceRecord::EncodeTo(ByteWriter& w) const {
  w.PutVarint(steps_.size());
  for (const ProcessingStep& step : steps_) {
    w.PutString(step.module);
    w.PutString(step.version.process);
    w.PutString(step.version.release);
    w.PutI64(step.version.change_date);
    w.PutString(step.site);
    w.PutVarint(step.parameters.size());
    for (const auto& [key, value] : step.parameters) {
      w.PutString(key);
      w.PutString(value);
    }
    w.PutVarint(step.input_files.size());
    for (const std::string& input : step.input_files) {
      w.PutString(input);
    }
  }
  // Store the hash alongside so readers can detect a tampered chain.
  w.PutString(SummaryHash());
}

Result<ProvenanceRecord> ProvenanceRecord::DecodeFrom(ByteReader& r) {
  ProvenanceRecord record;
  DFLOW_ASSIGN_OR_RETURN(uint64_t num_steps, r.GetVarint());
  for (uint64_t i = 0; i < num_steps; ++i) {
    ProcessingStep step;
    DFLOW_ASSIGN_OR_RETURN(step.module, r.GetString());
    DFLOW_ASSIGN_OR_RETURN(step.version.process, r.GetString());
    DFLOW_ASSIGN_OR_RETURN(step.version.release, r.GetString());
    DFLOW_ASSIGN_OR_RETURN(step.version.change_date, r.GetI64());
    DFLOW_ASSIGN_OR_RETURN(step.site, r.GetString());
    DFLOW_ASSIGN_OR_RETURN(uint64_t num_params, r.GetVarint());
    for (uint64_t p = 0; p < num_params; ++p) {
      DFLOW_ASSIGN_OR_RETURN(std::string key, r.GetString());
      DFLOW_ASSIGN_OR_RETURN(std::string value, r.GetString());
      step.parameters.emplace_back(std::move(key), std::move(value));
    }
    DFLOW_ASSIGN_OR_RETURN(uint64_t num_inputs, r.GetVarint());
    for (uint64_t f = 0; f < num_inputs; ++f) {
      DFLOW_ASSIGN_OR_RETURN(std::string input, r.GetString());
      step.input_files.push_back(std::move(input));
    }
    record.steps_.push_back(std::move(step));
  }
  DFLOW_ASSIGN_OR_RETURN(std::string stored_hash, r.GetString());
  if (stored_hash != record.SummaryHash()) {
    return Status::Corruption("provenance hash mismatch");
  }
  return record;
}

}  // namespace dflow::prov
