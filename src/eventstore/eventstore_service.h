#ifndef DFLOW_EVENTSTORE_EVENTSTORE_SERVICE_H_
#define DFLOW_EVENTSTORE_EVENTSTORE_SERVICE_H_

#include <string>
#include <vector>

#include "core/web_service.h"
#include "eventstore/event_store.h"

namespace dflow::eventstore {

/// Web-Services interface to an EventStore (§3.2: "This process could be
/// automated to a much greater extent if we could use Grid data movement
/// utilities and Web Services interfaces to EventStore. We would also like
/// to make a fully Web-based CLEO analysis environment"). Serves:
///
///   resolve   ?grade=physics&ts=N      the consistent file set (TSV)
///   grades                             grade names (one per line)
///   history   ?grade=physics           a grade's recorded evolution (TSV)
///   versions  ?run=N&data_type=recon   versions of one run's data
///   summary                            files/bytes by data type (TSV)
class EventStoreService : public core::WebService {
 public:
  /// Borrows `store`; it must outlive the service.
  explicit EventStoreService(EventStore* store);

  Result<core::ServiceResponse> Handle(
      const core::ServiceRequest& request) override;
  std::vector<std::string> Endpoints() const override;
  const std::string& name() const override { return name_; }

 private:
  std::string name_ = "eventstore";
  EventStore* store_;
};

}  // namespace dflow::eventstore

#endif  // DFLOW_EVENTSTORE_EVENTSTORE_SERVICE_H_
