#include "eventstore/flow.h"

#include <memory>
#include <string>

#include "core/stage.h"
#include "util/units.h"

namespace dflow::eventstore {

namespace {

using core::DataProduct;
using core::LambdaStage;
using core::StageCosts;

std::shared_ptr<LambdaStage> ScalingStage(const std::string& name,
                                          StageCosts costs, double ratio,
                                          const std::string& suffix) {
  return std::make_shared<LambdaStage>(
      name, costs,
      [ratio, suffix](const DataProduct& in)
          -> dflow::Result<std::vector<DataProduct>> {
        DataProduct out = in;
        out.name = in.name + suffix;
        out.bytes =
            static_cast<int64_t>(static_cast<double>(in.bytes) * ratio);
        return std::vector<DataProduct>{std::move(out)};
      });
}

}  // namespace

Status BuildCleoFlow(const CleoFlowConfig& config, core::FlowGraph* graph) {
  using S = CleoFlowStages;

  DFLOW_RETURN_IF_ERROR(graph->AddStage(ScalingStage(
      S::kAcquisition, StageCosts{config.run_minutes * kMinute, 0.0}, 1.0,
      "")));
  DFLOW_RETURN_IF_ERROR(graph->AddStage(
      ScalingStage(S::kInitialAnalysis, StageCosts{120.0, 0.0}, 1.0, "")));
  DFLOW_RETURN_IF_ERROR(graph->AddStage(
      ScalingStage(S::kReconstruction, StageCosts{0.0, 4.0e-9},
                   config.recon_ratio, ".recon")));
  DFLOW_RETURN_IF_ERROR(graph->AddStage(ScalingStage(
      S::kPostRecon, StageCosts{0.0, 1.0e-9},
      config.postrecon_ratio / config.recon_ratio, ".postrecon")));
  DFLOW_RETURN_IF_ERROR(graph->AddStage(ScalingStage(
      S::kMonteCarlo, StageCosts{0.0, 8.0e-9}, config.mc_ratio, ".mc")));
  DFLOW_RETURN_IF_ERROR(graph->AddStage(ScalingStage(
      S::kUsbImport, StageCosts{2 * kHour, 0.0}, 1.0, "")));
  DFLOW_RETURN_IF_ERROR(graph->AddStage(
      ScalingStage(S::kEventStore, StageCosts{30.0, 0.0}, 1.0, "")));
  DFLOW_RETURN_IF_ERROR(graph->AddStage(ScalingStage(
      S::kAnalysis, StageCosts{0.0, 2.0e-9}, config.analysis_ratio,
      ".ntuple")));

  DFLOW_RETURN_IF_ERROR(graph->Connect(S::kAcquisition, S::kInitialAnalysis));
  DFLOW_RETURN_IF_ERROR(
      graph->Connect(S::kInitialAnalysis, S::kReconstruction));
  DFLOW_RETURN_IF_ERROR(graph->Connect(S::kReconstruction, S::kPostRecon));
  DFLOW_RETURN_IF_ERROR(graph->Connect(S::kPostRecon, S::kEventStore));
  DFLOW_RETURN_IF_ERROR(graph->Connect(S::kMonteCarlo, S::kUsbImport));
  DFLOW_RETURN_IF_ERROR(graph->Connect(S::kUsbImport, S::kEventStore));
  DFLOW_RETURN_IF_ERROR(graph->Connect(S::kEventStore, S::kAnalysis));
  return Status::OK();
}

Status InjectCleoDay(const CleoFlowConfig& config, core::FlowRunner* runner) {
  const double spacing = kDay / config.num_runs;
  for (int i = 0; i < config.num_runs; ++i) {
    DataProduct run;
    run.name = "run_" + std::to_string(i + 1);
    run.bytes = config.raw_bytes_per_run;
    run.attributes["run"] = std::to_string(i + 1);
    DFLOW_RETURN_IF_ERROR(runner->Inject(CleoFlowStages::kAcquisition, run,
                                         i * spacing));
    // Offsite MC batch mirroring the run.
    DataProduct mc;
    mc.name = "mc_batch_" + std::to_string(i + 1);
    mc.bytes = config.raw_bytes_per_run;
    DFLOW_RETURN_IF_ERROR(runner->Inject(CleoFlowStages::kMonteCarlo,
                                         std::move(mc), i * spacing));
  }
  return Status::OK();
}

}  // namespace dflow::eventstore
