#ifndef DFLOW_EVENTSTORE_EVENT_MODEL_H_
#define DFLOW_EVENTSTORE_EVENT_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace dflow::eventstore {

/// An atomic storage unit (§3.1): "the smallest storable sub-object of an
/// event. An ASU will never be split into component objects for storage
/// purposes." Each ASU belongs to a named column group (the unit of
/// hot/warm/cold placement).
struct Asu {
  std::string group;
  int64_t bytes = 0;
};

/// One electron-positron collision event: an id plus its ASUs.
struct Event {
  int64_t id = 0;
  std::vector<Asu> asus;

  int64_t SizeBytes() const;
  /// Total bytes of ASUs in `group`.
  int64_t GroupBytes(const std::string& group) const;
};

/// A run (§3.1): "the set of records collected continuously over a period
/// of time (typically between 45 and 60 minutes), under (nominally)
/// constant detector conditions. A run worth analyzing typically comprises
/// between 15K and 300K particle collision events."
///
/// `num_events` is the paper-scale accounting count; `events` materializes
/// a payload subset at laptop scale (every materialized event is
/// statistically representative of the full run).
struct Run {
  int64_t run_number = 0;
  double start_time = 0.0;     // Virtual-time seconds.
  double duration_sec = 0.0;
  int64_t num_events = 0;      // Paper-scale count (15K-300K).
  std::vector<Event> events;   // Materialized payload subset.

  /// Exact accounting: mean materialized event size x num_events.
  int64_t AccountedBytes() const;
  int64_t PayloadBytes() const;

  /// Total bytes of ASUs in `group` across all materialized events — the
  /// column-scan primitive behind the hot/warm/cold sizing study (§3.1).
  /// Parallel on the dflow::par shared pool as an integer reduction
  /// (commutative, overflow-free at laptop scale), so the result is exact
  /// and thread-count-invariant.
  int64_t TotalGroupBytes(const std::string& group) const;
};

/// Generator parameters. Raw events carry one large "raw_hits" ASU plus a
/// small trigger summary, matching the paper's observation that hot ASUs
/// are small and the infrequently read ones large.
struct CollisionGeneratorConfig {
  double run_minutes_lo = 45.0;
  double run_minutes_hi = 60.0;
  int64_t events_lo = 15'000;
  int64_t events_hi = 300'000;
  int payload_events_per_run = 200;  // Materialized subset.
  int64_t raw_hits_bytes_mean = 12'000;
  int64_t raw_hits_bytes_sd = 3'000;
  int64_t trigger_bytes = 64;
};

/// Substitute for the CLEO detector + CESR: produces runs of synthetic
/// collision events with the paper's run-length and event-count
/// distributions.
class CollisionGenerator {
 public:
  CollisionGenerator(CollisionGeneratorConfig config, uint64_t seed);

  /// Generates the next run; run numbers increment from 1.
  Run NextRun(double start_time);

  const CollisionGeneratorConfig& config() const { return config_; }

 private:
  CollisionGeneratorConfig config_;
  Rng rng_;
  int64_t next_run_number_ = 1;
  int64_t next_event_id_ = 1;
};

/// Monte-Carlo simulation of the detector response (§3.1 step 3): for each
/// data run, an MC run with matched statistics is generated (offsite, in
/// the paper — the transport benches model that part). MC events carry a
/// "mc_truth" ASU in addition to simulated raw hits.
class MonteCarloGenerator {
 public:
  MonteCarloGenerator(CollisionGeneratorConfig config, uint64_t seed);

  /// MC companion of `data_run` (same event counts, mc-prefixed groups).
  Run Simulate(const Run& data_run);

 private:
  CollisionGeneratorConfig config_;
  Rng rng_;
  int64_t next_event_id_ = 1;
};

}  // namespace dflow::eventstore

#endif  // DFLOW_EVENTSTORE_EVENT_MODEL_H_
