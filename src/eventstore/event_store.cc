#include "eventstore/event_store.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/byte_buffer.h"
#include "util/logging.h"

namespace dflow::eventstore {

namespace {

db::Schema FilesSchema() {
  return db::Schema({
      {"run", db::Type::kInt64, false},
      {"data_type", db::Type::kString, false},
      {"version", db::Type::kString, false},
      {"registered_at", db::Type::kInt64, false},
      {"bytes", db::Type::kInt64, false},
      {"location", db::Type::kString, true},
      {"prov", db::Type::kString, true},
  });
}

db::Schema GradesSchema() {
  return db::Schema({
      {"grade", db::Type::kString, false},
      {"ts", db::Type::kInt64, false},
      {"run_first", db::Type::kInt64, false},
      {"run_last", db::Type::kInt64, false},
      {"data_type", db::Type::kString, false},
      {"version", db::Type::kString, false},
  });
}

}  // namespace

std::string_view StoreScaleToString(StoreScale scale) {
  switch (scale) {
    case StoreScale::kPersonal:
      return "personal";
    case StoreScale::kGroup:
      return "group";
    case StoreScale::kCollaboration:
      return "collaboration";
  }
  return "?";
}

EventStore::EventStore(StoreScale scale, std::unique_ptr<db::Database> db)
    : scale_(scale), db_(std::move(db)) {}

Result<std::unique_ptr<EventStore>> EventStore::Create(
    StoreScale scale, const std::string& wal_path) {
  std::unique_ptr<db::Database> db;
  if (wal_path.empty()) {
    db = std::make_unique<db::Database>();
  } else {
    if (scale == StoreScale::kPersonal) {
      return Status::InvalidArgument(
          "personal stores are self-contained and in-memory");
    }
    DFLOW_ASSIGN_OR_RETURN(db, db::Database::Open(wal_path));
  }
  auto store =
      std::unique_ptr<EventStore>(new EventStore(scale, std::move(db)));
  DFLOW_RETURN_IF_ERROR(store->InitSchema());
  return store;
}

Status EventStore::InitSchema() {
  if (db_->catalog().Find("files") != nullptr) {
    return Status::OK();  // Recovered from WAL.
  }
  DFLOW_RETURN_IF_ERROR(db_->CreateTable("files", FilesSchema()));
  DFLOW_RETURN_IF_ERROR(db_->CreateTable("grades", GradesSchema()));
  DFLOW_RETURN_IF_ERROR(db_->CreateIndex("files_by_run", "files", "run"));
  DFLOW_RETURN_IF_ERROR(
      db_->CreateIndex("grades_by_grade", "grades", "grade"));
  return Status::OK();
}

Status EventStore::RegisterFile(const FileEntry& entry) {
  auto existing = GetFile(entry.run, entry.data_type, entry.version);
  if (existing.ok()) {
    return Status::AlreadyExists(
        "file (run=" + std::to_string(entry.run) + ", " + entry.data_type +
        ", " + entry.version + ") already registered");
  }
  ByteWriter prov_writer;
  entry.provenance.EncodeTo(prov_writer);
  return db_->Insert(
      "files",
      db::Row{db::Value::Int(entry.run), db::Value::String(entry.data_type),
              db::Value::String(entry.version),
              db::Value::Int(entry.registered_at), db::Value::Int(entry.bytes),
              db::Value::String(entry.location),
              db::Value::String(prov_writer.Take())});
}

Result<FileEntry> EventStore::RowToFile(const db::Row& row) {
  FileEntry entry;
  entry.run = row[0].AsInt();
  entry.data_type = row[1].AsString();
  entry.version = row[2].AsString();
  entry.registered_at = row[3].AsInt();
  entry.bytes = row[4].AsInt();
  entry.location = row[5].is_null() ? "" : row[5].AsString();
  if (!row[6].is_null() && !row[6].AsString().empty()) {
    ByteReader reader(row[6].AsString());
    DFLOW_ASSIGN_OR_RETURN(entry.provenance,
                           prov::ProvenanceRecord::DecodeFrom(reader));
  }
  return entry;
}

Result<std::vector<FileEntry>> EventStore::AllFiles() const {
  auto table = db_->catalog().Get("files");
  DFLOW_RETURN_IF_ERROR(table.status());
  std::vector<FileEntry> out;
  Status scan = Status::OK();
  DFLOW_RETURN_IF_ERROR(
      (*table)->heap->ForEach([&](db::RowId, const db::Row& row) {
        auto entry = RowToFile(row);
        if (!entry.ok()) {
          scan = entry.status();
          return false;
        }
        out.push_back(*std::move(entry));
        return true;
      }));
  DFLOW_RETURN_IF_ERROR(scan);
  return out;
}

Result<FileEntry> EventStore::GetFile(int64_t run,
                                      const std::string& data_type,
                                      const std::string& version) const {
  auto table = db_->catalog().Get("files");
  DFLOW_RETURN_IF_ERROR(table.status());
  // Narrow by the run index, then match the remaining key fields.
  const db::IndexInfo* index = (*table)->FindIndexOnColumn("run");
  DFLOW_CHECK(index != nullptr);
  for (db::RowId rid : index->tree->Find(db::Value::Int(run))) {
    DFLOW_ASSIGN_OR_RETURN(db::Row row, (*table)->heap->Get(rid));
    if (row[1].AsString() == data_type && row[2].AsString() == version) {
      return RowToFile(row);
    }
  }
  return Status::NotFound("no file (run=" + std::to_string(run) + ", " +
                          data_type + ", " + version + ")");
}

std::vector<std::string> EventStore::Versions(
    int64_t run, const std::string& data_type) const {
  std::vector<std::pair<int64_t, std::string>> found;
  auto table = db_->catalog().Get("files");
  if (!table.ok()) {
    return {};
  }
  const db::IndexInfo* index = (*table)->FindIndexOnColumn("run");
  for (db::RowId rid : index->tree->Find(db::Value::Int(run))) {
    auto row = (*table)->heap->Get(rid);
    if (row.ok() && (*row)[1].AsString() == data_type) {
      found.emplace_back((*row)[3].AsInt(), (*row)[2].AsString());
    }
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> versions;
  versions.reserve(found.size());
  for (auto& [ts, version] : found) {
    versions.push_back(std::move(version));
  }
  return versions;
}

Status EventStore::AssignGrade(const std::string& grade, int64_t timestamp,
                               RunRange range, const std::string& data_type,
                               const std::string& version) {
  if (range.last < range.first) {
    return Status::InvalidArgument("empty run range");
  }
  return db_->Insert(
      "grades",
      db::Row{db::Value::String(grade), db::Value::Int(timestamp),
              db::Value::Int(range.first), db::Value::Int(range.last),
              db::Value::String(data_type), db::Value::String(version)});
}

Result<std::vector<EventStore::GradeRow>> EventStore::GradeRows(
    const std::string& grade) const {
  auto table = db_->catalog().Get("grades");
  DFLOW_RETURN_IF_ERROR(table.status());
  std::vector<GradeRow> out;
  const db::IndexInfo* index = (*table)->FindIndexOnColumn("grade");
  DFLOW_CHECK(index != nullptr);
  for (db::RowId rid : index->tree->Find(db::Value::String(grade))) {
    DFLOW_ASSIGN_OR_RETURN(db::Row row, (*table)->heap->Get(rid));
    GradeRow grade_row;
    grade_row.ts = row[1].AsInt();
    grade_row.range = RunRange{row[2].AsInt(), row[3].AsInt()};
    grade_row.data_type = row[4].AsString();
    grade_row.version = row[5].AsString();
    out.push_back(std::move(grade_row));
  }
  return out;
}

Result<std::vector<EventStore::GradeAssignment>> EventStore::GradeHistory(
    const std::string& grade) const {
  DFLOW_ASSIGN_OR_RETURN(std::vector<GradeRow> rows, GradeRows(grade));
  std::vector<GradeAssignment> history;
  history.reserve(rows.size());
  for (GradeRow& row : rows) {
    history.push_back(GradeAssignment{row.ts, row.range,
                                      std::move(row.data_type),
                                      std::move(row.version)});
  }
  std::sort(history.begin(), history.end(),
            [](const GradeAssignment& a, const GradeAssignment& b) {
              return a.timestamp < b.timestamp;
            });
  return history;
}

std::vector<std::string> EventStore::GradeNames() const {
  std::set<std::string> names;
  auto table = db_->catalog().Get("grades");
  if (!table.ok()) {
    return {};
  }
  Status s = (*table)->heap->ForEach([&](db::RowId, const db::Row& row) {
    names.insert(row[0].AsString());
    return true;
  });
  (void)s;
  return std::vector<std::string>(names.begin(), names.end());
}

Result<std::vector<FileEntry>> EventStore::Resolve(const std::string& grade,
                                                   int64_t analysis_ts) const {
  DFLOW_ASSIGN_OR_RETURN(std::vector<GradeRow> rows, GradeRows(grade));
  DFLOW_ASSIGN_OR_RETURN(std::vector<FileEntry> files, AllFiles());

  // Count versions per (run, data_type) for the first-time-data rule, and
  // note which data types the grade covers at all (the exception admits
  // *new* data of a kind the grade already organizes, not unrelated
  // data types).
  std::map<std::pair<int64_t, std::string>, int> version_counts;
  for (const FileEntry& file : files) {
    ++version_counts[{file.run, file.data_type}];
  }
  std::set<std::string> grade_data_types;
  for (const GradeRow& row : rows) {
    grade_data_types.insert(row.data_type);
  }

  std::vector<FileEntry> out;
  for (const FileEntry& file : files) {
    // Most recent snapshot at or before analysis_ts covering this
    // (run, data_type).
    const GradeRow* best = nullptr;
    for (const GradeRow& row : rows) {
      if (row.ts > analysis_ts || row.data_type != file.data_type ||
          !row.range.Contains(file.run)) {
        continue;
      }
      if (best == nullptr || row.ts > best->ts) {
        best = &row;
      }
    }
    if (best != nullptr) {
      if (best->version == file.version) {
        out.push_back(file);
      }
      continue;
    }
    // First-time-data exception: exactly one version ever registered, of
    // a data type this grade covers.
    if (version_counts[{file.run, file.data_type}] == 1 &&
        grade_data_types.count(file.data_type) > 0) {
      out.push_back(file);
    }
  }
  std::sort(out.begin(), out.end(), [](const FileEntry& a, const FileEntry& b) {
    if (a.run != b.run) {
      return a.run < b.run;
    }
    return a.data_type < b.data_type;
  });
  return out;
}

Status EventStore::Merge(const EventStore& other) {
  DFLOW_ASSIGN_OR_RETURN(std::vector<FileEntry> incoming, other.AllFiles());
  // Gather grade rows of every grade in `other`.
  auto grades_table = other.db_->catalog().Get("grades");
  DFLOW_RETURN_IF_ERROR(grades_table.status());
  std::vector<db::Row> incoming_grades;
  DFLOW_RETURN_IF_ERROR(
      (*grades_table)->heap->ForEach([&](db::RowId, const db::Row& row) {
        incoming_grades.push_back(row);
        return true;
      }));

  // Snapshot existing grade rows for duplicate suppression.
  auto own_grades = db_->catalog().Get("grades");
  DFLOW_RETURN_IF_ERROR(own_grades.status());
  std::vector<db::Row> existing_grades;
  DFLOW_RETURN_IF_ERROR(
      (*own_grades)->heap->ForEach([&](db::RowId, const db::Row& row) {
        existing_grades.push_back(row);
        return true;
      }));
  auto same_row = [](const db::Row& a, const db::Row& b) {
    if (a.size() != b.size()) {
      return false;
    }
    for (size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) {
        return false;
      }
    }
    return true;
  };

  // One short transaction for the whole merge — the paper's integrity
  // stratagem for the centrally managed stores.
  DFLOW_RETURN_IF_ERROR(db_->Begin());
  Status status = Status::OK();
  for (const FileEntry& entry : incoming) {
    if (GetFile(entry.run, entry.data_type, entry.version).ok()) {
      continue;  // Already present.
    }
    ByteWriter prov_writer;
    entry.provenance.EncodeTo(prov_writer);
    status = db_->Insert(
        "files",
        db::Row{db::Value::Int(entry.run), db::Value::String(entry.data_type),
                db::Value::String(entry.version),
                db::Value::Int(entry.registered_at),
                db::Value::Int(entry.bytes), db::Value::String(entry.location),
                db::Value::String(prov_writer.Take())});
    if (!status.ok()) {
      break;
    }
  }
  if (status.ok()) {
    for (const db::Row& row : incoming_grades) {
      bool duplicate = false;
      for (const db::Row& existing : existing_grades) {
        if (same_row(row, existing)) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) {
        continue;
      }
      status = db_->Insert("grades", row);
      if (!status.ok()) {
        break;
      }
    }
  }
  if (!status.ok()) {
    DFLOW_RETURN_IF_ERROR(db_->Rollback());
    return status;
  }
  return db_->Commit();
}

int64_t EventStore::NumFiles() const {
  auto table = db_->catalog().Get("files");
  return table.ok() ? (*table)->heap->num_rows() : 0;
}

int64_t EventStore::TotalBytes() const {
  auto table = db_->catalog().Get("files");
  if (!table.ok()) {
    return 0;
  }
  int64_t total = 0;
  Status s = (*table)->heap->ForEach([&](db::RowId, const db::Row& row) {
    total += row[4].AsInt();
    return true;
  });
  (void)s;
  return total;
}

}  // namespace dflow::eventstore
