#include "eventstore/event_model.h"

#include <algorithm>

#include "par/par.h"
#include "util/logging.h"
#include "util/units.h"

namespace dflow::eventstore {

int64_t Event::SizeBytes() const {
  int64_t total = 0;
  for (const Asu& asu : asus) {
    total += asu.bytes;
  }
  return total;
}

int64_t Event::GroupBytes(const std::string& group) const {
  int64_t total = 0;
  for (const Asu& asu : asus) {
    if (asu.group == group) {
      total += asu.bytes;
    }
  }
  return total;
}

int64_t Run::AccountedBytes() const {
  if (events.empty()) {
    return 0;
  }
  int64_t payload = PayloadBytes();
  return payload / static_cast<int64_t>(events.size()) * num_events;
}

int64_t Run::PayloadBytes() const {
  int64_t total = 0;
  for (const Event& event : events) {
    total += event.SizeBytes();
  }
  return total;
}

int64_t Run::TotalGroupBytes(const std::string& group) const {
  // Integer reduction: partial sums per chunk, combined over the fixed
  // tree — exact, so thread count cannot change a single byte of the
  // tiering arithmetic built on top of this scan.
  par::Options options;
  options.label = "eventstore.group_scan";
  options.grain = 64;
  return par::ParallelReduce<int64_t>(
      0, static_cast<int64_t>(events.size()), int64_t{0},
      [&](int64_t chunk_begin, int64_t chunk_end) {
        int64_t total = 0;
        for (int64_t i = chunk_begin; i < chunk_end; ++i) {
          total += events[static_cast<size_t>(i)].GroupBytes(group);
        }
        return total;
      },
      [](int64_t a, int64_t b) { return a + b; }, options);
}

CollisionGenerator::CollisionGenerator(CollisionGeneratorConfig config,
                                       uint64_t seed)
    : config_(config), rng_(seed) {
  DFLOW_CHECK(config_.payload_events_per_run > 0);
  DFLOW_CHECK(config_.events_lo > 0 && config_.events_hi >= config_.events_lo);
}

Run CollisionGenerator::NextRun(double start_time) {
  Run run;
  run.run_number = next_run_number_++;
  run.start_time = start_time;
  run.duration_sec =
      rng_.UniformReal(config_.run_minutes_lo, config_.run_minutes_hi) *
      kMinute;
  run.num_events = rng_.Uniform(config_.events_lo, config_.events_hi);
  run.events.reserve(static_cast<size_t>(config_.payload_events_per_run));
  for (int i = 0; i < config_.payload_events_per_run; ++i) {
    Event event;
    event.id = next_event_id_++;
    int64_t raw_bytes = std::max<int64_t>(
        256, static_cast<int64_t>(
                 rng_.Normal(static_cast<double>(config_.raw_hits_bytes_mean),
                             static_cast<double>(config_.raw_hits_bytes_sd))));
    event.asus.push_back(Asu{"raw_hits", raw_bytes});
    event.asus.push_back(Asu{"trigger", config_.trigger_bytes});
    run.events.push_back(std::move(event));
  }
  return run;
}

MonteCarloGenerator::MonteCarloGenerator(CollisionGeneratorConfig config,
                                         uint64_t seed)
    : config_(config), rng_(seed) {}

Run MonteCarloGenerator::Simulate(const Run& data_run) {
  Run mc;
  mc.run_number = data_run.run_number;
  mc.start_time = data_run.start_time;
  mc.duration_sec = data_run.duration_sec;
  mc.num_events = data_run.num_events;
  mc.events.reserve(data_run.events.size());
  for (const Event& data_event : data_run.events) {
    Event event;
    event.id = next_event_id_++;
    // Simulated detector response mirrors the data sizes, plus the truth
    // record only simulation has.
    int64_t raw_bytes = std::max<int64_t>(
        256, static_cast<int64_t>(rng_.Normal(
                 static_cast<double>(data_event.GroupBytes("raw_hits")),
                 static_cast<double>(config_.raw_hits_bytes_sd) / 2.0)));
    event.asus.push_back(Asu{"mc_raw_hits", raw_bytes});
    event.asus.push_back(Asu{"mc_truth", 512});
    mc.events.push_back(std::move(event));
  }
  return mc;
}

}  // namespace dflow::eventstore
