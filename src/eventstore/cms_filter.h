#ifndef DFLOW_EVENTSTORE_CMS_FILTER_H_
#define DFLOW_EVENTSTORE_CMS_FILTER_H_

#include <cstdint>

#include "sim/simulation.h"
#include "sim/stats.h"
#include "util/rng.h"

namespace dflow::eventstore {

/// The LHC/CMS real-time constraint from §3.2: the experiment "is limited
/// to taking 200 MB/s of data to be written to tape, therefore substantial
/// filtering has to take place in real time before writing to tape."
struct CmsFilterConfig {
  double detector_event_rate_hz = 100'000.0;  // Post-L1-trigger rate.
  int64_t event_bytes_mean = 1'000'000;       // ~1 MB per event.
  int64_t event_bytes_sd = 200'000;
  double accept_fraction = 0.002;             // HLT acceptance.
  double tape_limit_bytes_per_sec = 200.0e6;  // The hard 200 MB/s budget.
  int64_t tape_buffer_bytes = 8LL * 1000 * 1000 * 1000;  // Burst buffer.
};

/// Outcome of a filtering interval.
struct CmsFilterResult {
  int64_t events_seen = 0;
  int64_t events_accepted = 0;
  int64_t bytes_accepted = 0;
  double mean_tape_rate = 0.0;      // Accepted bytes / interval.
  double peak_buffer_bytes = 0.0;   // Largest backlog in the tape buffer.
  int64_t events_dropped_overflow = 0;  // Lost when the buffer overflowed.
  bool within_tape_budget = false;
};

/// Event-by-event simulation of the high-level-trigger filter in front of
/// the tape system: events arrive in Poisson bursts, the filter accepts a
/// fraction, accepted bytes drain to tape at the fixed budget rate through
/// a bounded buffer. Sweeping `accept_fraction` locates the largest
/// acceptance that still honours the 200 MB/s tape budget.
CmsFilterResult RunCmsFilter(const CmsFilterConfig& config,
                             double interval_sec, uint64_t seed);

}  // namespace dflow::eventstore

#endif  // DFLOW_EVENTSTORE_CMS_FILTER_H_
