#include "eventstore/passes.h"

#include <algorithm>
#include <cmath>

#include "par/par.h"

namespace dflow::eventstore {

ReconstructionPass::ReconstructionPass(std::string release,
                                       std::string calibration,
                                       int64_t change_date)
    : release_(std::move(release)), calibration_(std::move(calibration)),
      change_date_(change_date) {}

Result<PassOutput> ReconstructionPass::Process(const Run& raw_run) const {
  if (raw_run.events.empty()) {
    return Status::InvalidArgument("run " +
                                   std::to_string(raw_run.run_number) +
                                   " has no materialized events");
  }
  PassOutput output;
  output.run.run_number = raw_run.run_number;
  output.run.start_time = raw_run.start_time;
  output.run.duration_sec = raw_run.duration_sec;
  output.run.num_events = raw_run.num_events;
  // Events are independent under reconstruction (the paper's "trivially
  // parallel" event-level processing, §3.1): each event maps into its own
  // pre-sized slot, so output order and bytes match the old serial loop.
  par::Options options;
  options.label = "eventstore.recon_events";
  options.grain = 64;
  output.run.events = par::ParallelMap<Event>(
      static_cast<int64_t>(raw_run.events.size()),
      [&raw_run](int64_t i) {
        const Event& raw_event = raw_run.events[static_cast<size_t>(i)];
        int64_t raw_bytes = raw_event.GroupBytes("raw_hits") +
                            raw_event.GroupBytes("mc_raw_hits");
        Event event;
        event.id = raw_event.id;
        // Derived object sizes scale with the detector activity in the
        // event.
        event.asus.push_back(
            Asu{"tracks", std::max<int64_t>(96, raw_bytes / 40)});
        event.asus.push_back(
            Asu{"showers", std::max<int64_t>(64, raw_bytes / 60)});
        event.asus.push_back(
            Asu{"vertices", std::max<int64_t>(32, raw_bytes / 200)});
        return event;
      },
      options);
  output.step.module = "reconstruction";
  output.step.version =
      prov::VersionTag{"Recon", release_, change_date_};
  output.step.parameters.emplace_back("calibration", calibration_);
  output.step.input_files.push_back("raw_run_" +
                                    std::to_string(raw_run.run_number));
  return output;
}

PostReconPass::PostReconPass(std::string release, int64_t change_date,
                             int asus_per_event)
    : release_(std::move(release)), change_date_(change_date),
      asus_per_event_(asus_per_event) {}

Result<PassOutput> PostReconPass::Process(const Run& recon_run) const {
  if (recon_run.events.empty()) {
    return Status::InvalidArgument("run " +
                                   std::to_string(recon_run.run_number) +
                                   " has no materialized events");
  }
  // Run-level statistic the per-event values depend on (this is why
  // post-recon cannot run until reconstruction finished the whole run).
  // The scan is an exact integer reduction, so the mean — and every
  // activity ratio derived from it — is identical at any thread count.
  double mean_track_bytes =
      static_cast<double>(recon_run.TotalGroupBytes("tracks")) /
      static_cast<double>(recon_run.events.size());
  if (mean_track_bytes <= 0.0) {
    return Status::FailedPrecondition(
        "run " + std::to_string(recon_run.run_number) +
        " has no reconstructed tracks; run reconstruction first");
  }

  PassOutput output;
  output.run.run_number = recon_run.run_number;
  output.run.start_time = recon_run.start_time;
  output.run.duration_sec = recon_run.duration_sec;
  output.run.num_events = recon_run.num_events;
  // Per-event compression against the run mean is again independent per
  // event once the mean is fixed; slots keep the serial order and bytes.
  par::Options options;
  options.label = "eventstore.postrecon_events";
  options.grain = 64;
  const int asus_per_event = asus_per_event_;
  output.run.events = par::ParallelMap<Event>(
      static_cast<int64_t>(recon_run.events.size()),
      [&recon_run, mean_track_bytes, asus_per_event](int64_t i) {
        const Event& recon_event = recon_run.events[static_cast<size_t>(i)];
        Event event;
        event.id = recon_event.id;
        double activity =
            static_cast<double>(recon_event.GroupBytes("tracks")) /
            mean_track_bytes;
        for (int j = 0; j < asus_per_event; ++j) {
          // Post-recon ASUs are small, normalized quantities.
          int64_t bytes = std::max<int64_t>(
              16, static_cast<int64_t>(std::lround(24.0 * activity)) + j % 4);
          event.asus.push_back(Asu{"pr" + std::to_string(j), bytes});
        }
        return event;
      },
      options);
  output.step.module = "post_reconstruction";
  output.step.version = prov::VersionTag{"PostRecon", release_, change_date_};
  output.step.parameters.emplace_back(
      "asus_per_event", std::to_string(asus_per_event_));
  output.step.input_files.push_back("recon_run_" +
                                    std::to_string(recon_run.run_number));
  return output;
}

}  // namespace dflow::eventstore
