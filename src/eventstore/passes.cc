#include "eventstore/passes.h"

#include <algorithm>
#include <cmath>

namespace dflow::eventstore {

ReconstructionPass::ReconstructionPass(std::string release,
                                       std::string calibration,
                                       int64_t change_date)
    : release_(std::move(release)), calibration_(std::move(calibration)),
      change_date_(change_date) {}

Result<PassOutput> ReconstructionPass::Process(const Run& raw_run) const {
  if (raw_run.events.empty()) {
    return Status::InvalidArgument("run " +
                                   std::to_string(raw_run.run_number) +
                                   " has no materialized events");
  }
  PassOutput output;
  output.run.run_number = raw_run.run_number;
  output.run.start_time = raw_run.start_time;
  output.run.duration_sec = raw_run.duration_sec;
  output.run.num_events = raw_run.num_events;
  output.run.events.reserve(raw_run.events.size());
  for (const Event& raw_event : raw_run.events) {
    int64_t raw_bytes = raw_event.GroupBytes("raw_hits") +
                        raw_event.GroupBytes("mc_raw_hits");
    Event event;
    event.id = raw_event.id;
    // Derived object sizes scale with the detector activity in the event.
    event.asus.push_back(Asu{"tracks", std::max<int64_t>(96, raw_bytes / 40)});
    event.asus.push_back(Asu{"showers", std::max<int64_t>(64, raw_bytes / 60)});
    event.asus.push_back(
        Asu{"vertices", std::max<int64_t>(32, raw_bytes / 200)});
    output.run.events.push_back(std::move(event));
  }
  output.step.module = "reconstruction";
  output.step.version =
      prov::VersionTag{"Recon", release_, change_date_};
  output.step.parameters.emplace_back("calibration", calibration_);
  output.step.input_files.push_back("raw_run_" +
                                    std::to_string(raw_run.run_number));
  return output;
}

PostReconPass::PostReconPass(std::string release, int64_t change_date,
                             int asus_per_event)
    : release_(std::move(release)), change_date_(change_date),
      asus_per_event_(asus_per_event) {}

Result<PassOutput> PostReconPass::Process(const Run& recon_run) const {
  if (recon_run.events.empty()) {
    return Status::InvalidArgument("run " +
                                   std::to_string(recon_run.run_number) +
                                   " has no materialized events");
  }
  // Run-level statistic the per-event values depend on (this is why
  // post-recon cannot run until reconstruction finished the whole run).
  double mean_track_bytes = 0.0;
  for (const Event& event : recon_run.events) {
    mean_track_bytes += static_cast<double>(event.GroupBytes("tracks"));
  }
  mean_track_bytes /= static_cast<double>(recon_run.events.size());
  if (mean_track_bytes <= 0.0) {
    return Status::FailedPrecondition(
        "run " + std::to_string(recon_run.run_number) +
        " has no reconstructed tracks; run reconstruction first");
  }

  PassOutput output;
  output.run.run_number = recon_run.run_number;
  output.run.start_time = recon_run.start_time;
  output.run.duration_sec = recon_run.duration_sec;
  output.run.num_events = recon_run.num_events;
  output.run.events.reserve(recon_run.events.size());
  for (const Event& recon_event : recon_run.events) {
    Event event;
    event.id = recon_event.id;
    double activity =
        static_cast<double>(recon_event.GroupBytes("tracks")) /
        mean_track_bytes;
    for (int i = 0; i < asus_per_event_; ++i) {
      // Post-recon ASUs are small, normalized quantities.
      int64_t bytes = std::max<int64_t>(
          16, static_cast<int64_t>(std::lround(24.0 * activity)) + i % 4);
      event.asus.push_back(Asu{"pr" + std::to_string(i), bytes});
    }
    output.run.events.push_back(std::move(event));
  }
  output.step.module = "post_reconstruction";
  output.step.version = prov::VersionTag{"PostRecon", release_, change_date_};
  output.step.parameters.emplace_back(
      "asus_per_event", std::to_string(asus_per_event_));
  output.step.input_files.push_back("recon_run_" +
                                    std::to_string(recon_run.run_number));
  return output;
}

}  // namespace dflow::eventstore
