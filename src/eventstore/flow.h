#ifndef DFLOW_EVENTSTORE_FLOW_H_
#define DFLOW_EVENTSTORE_FLOW_H_

#include "core/flow_graph.h"
#include "core/flow_runner.h"
#include "util/result.h"

namespace dflow::eventstore {

/// Paper-scale accounting constants for the CLEO flow (§3.1).
struct CleoFlowConfig {
  int num_runs = 24;                     // Runs injected per simulated day.
  double run_minutes = 50.0;             // 45-60 min per run.
  int64_t raw_bytes_per_run = 3'500'000'000;  // ~90 TB over the experiment.
  double recon_ratio = 0.35;             // Recon output vs raw.
  double postrecon_ratio = 0.04;         // Post-recon vs raw.
  double mc_ratio = 1.1;                 // MC slightly exceeds data volume.
  double analysis_ratio = 0.01;          // Physics analysis output vs input.
};

/// Stage names of the Figure-2 workflow.
struct CleoFlowStages {
  static constexpr const char* kAcquisition = "detector_acquisition";
  static constexpr const char* kInitialAnalysis = "initial_analysis";
  static constexpr const char* kReconstruction = "reconstruction";
  static constexpr const char* kPostRecon = "post_reconstruction";
  static constexpr const char* kMonteCarlo = "mc_generation_offsite";
  static constexpr const char* kUsbImport = "usb_disk_import";
  static constexpr const char* kEventStore = "collaboration_eventstore";
  static constexpr const char* kAnalysis = "physics_analysis";
};

/// Builds the paper's Figure 2 as an executable workflow: acquisition of
/// runs -> initial analysis -> reconstruction -> post-reconstruction,
/// with Monte-Carlo generation running offsite and entering through the
/// USB-disk import path, everything merging into the collaboration
/// EventStore feeding iterative physics analysis.
Status BuildCleoFlow(const CleoFlowConfig& config, core::FlowGraph* graph);

/// Injects one simulated day of runs into the acquisition stage and one
/// matching MC batch into the offsite generator.
Status InjectCleoDay(const CleoFlowConfig& config, core::FlowRunner* runner);

}  // namespace dflow::eventstore

#endif  // DFLOW_EVENTSTORE_FLOW_H_
