#ifndef DFLOW_EVENTSTORE_EVENT_STORE_H_
#define DFLOW_EVENTSTORE_EVENT_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "db/database.h"
#include "provenance/provenance.h"
#include "util/result.h"

namespace dflow::eventstore {

/// The three EventStore sizes (§3.2): "personal, group and collaboration.
/// The only user interface differences between the three sizes is the name
/// of the software module loaded, which is also the first word of all
/// EventStore commands." Personal stores use the embedded in-memory
/// database (the SQLite role) and support disconnected operation; group
/// and collaboration stores may be durable (the MySQL / MS SQL Server
/// role).
enum class StoreScale { kPersonal = 0, kGroup = 1, kCollaboration = 2 };

std::string_view StoreScaleToString(StoreScale scale);

/// An inclusive range of run numbers.
struct RunRange {
  int64_t first = 0;
  int64_t last = 0;

  bool Contains(int64_t run) const { return run >= first && run <= last; }
};

/// One versioned data file known to the store.
struct FileEntry {
  int64_t run = 0;
  std::string data_type;   // "raw", "recon", "postrecon", "mc", ...
  std::string version;     // e.g. "Recon_Feb13_04_P2".
  int64_t registered_at = 0;  // Timestamp the file entered this store.
  int64_t bytes = 0;
  std::string location;    // File path / HSM name.
  prov::ProvenanceRecord provenance;
};

/// Metadata-and-provenance system in the style of CLEO's EventStore,
/// backed by the embedded relational engine. It implements the §3.2
/// semantics precisely:
///
///  * Consistent sets are organized by *grade* (e.g. "physics"), each
///    grade carrying a time-stamped history of (run range, version)
///    assignments.
///  * An analysis names a grade and a timestamp; Resolve() finds the most
///    recent snapshot prior to that timestamp, so re-running months later
///    returns bit-identical file sets ("the date specified is not limited
///    to a set of magic values").
///  * First-time data — a (run, data_type) with only one version ever —
///    appears in every snapshot even if registered after the analysis
///    timestamp, "so that a physicist can add data collected after the
///    beginning of the analysis without having to change to a later
///    timestamp".
///  * Merge() folds another (typically personal) store into this one in a
///    single short transaction — the stratagem the paper adopted instead
///    of long-running jobs holding open transactions on the main
///    repository.
class EventStore {
 public:
  /// In-memory store (personal) or durable store (group/collaboration with
  /// a WAL path; pass "" for a volatile large-scale store in tests).
  static Result<std::unique_ptr<EventStore>> Create(
      StoreScale scale, const std::string& wal_path = "");

  /// Registers a data file. AlreadyExists if this (run, data_type,
  /// version) is present.
  Status RegisterFile(const FileEntry& entry);

  Result<FileEntry> GetFile(int64_t run, const std::string& data_type,
                            const std::string& version) const;

  /// All versions ever registered for (run, data_type), oldest first.
  std::vector<std::string> Versions(int64_t run,
                                    const std::string& data_type) const;

  /// Declares that as of `timestamp`, `grade` maps `range` x `data_type`
  /// to `version` (an administrative action by the CLEO officers).
  Status AssignGrade(const std::string& grade, int64_t timestamp,
                     RunRange range, const std::string& data_type,
                     const std::string& version);

  /// The consistent file set for an analysis started at `analysis_ts`
  /// using `grade`. Deterministic: the same (grade, timestamp) always
  /// yields the same set, modulo the first-time-data exception.
  Result<std::vector<FileEntry>> Resolve(const std::string& grade,
                                         int64_t analysis_ts) const;

  /// One assignment in a grade's recorded evolution.
  struct GradeAssignment {
    int64_t timestamp = 0;
    RunRange range;
    std::string data_type;
    std::string version;
  };

  /// The full evolution of `grade` over time, ascending by timestamp
  /// ("The evolution of a grade over time is recorded", §3.2). Empty if
  /// the grade was never assigned.
  Result<std::vector<GradeAssignment>> GradeHistory(
      const std::string& grade) const;

  /// Names of every grade with at least one assignment, sorted.
  std::vector<std::string> GradeNames() const;

  /// Merges every file and grade assignment of `other` into this store in
  /// one transaction. Duplicate files/assignments are skipped.
  Status Merge(const EventStore& other);

  int64_t NumFiles() const;
  int64_t TotalBytes() const;
  StoreScale scale() const { return scale_; }

  /// "personal"/"group"/"collaboration" — the command-prefix convention.
  std::string CommandPrefix() const {
    return std::string(StoreScaleToString(scale_));
  }

  /// Underlying database (exposed for ad-hoc SQL in examples/tests).
  db::Database& database() { return *db_; }
  const db::Database& database() const { return *db_; }

 private:
  EventStore(StoreScale scale, std::unique_ptr<db::Database> db);

  Status InitSchema();
  struct GradeRow {
    int64_t ts;
    RunRange range;
    std::string data_type;
    std::string version;
  };
  Result<std::vector<GradeRow>> GradeRows(const std::string& grade) const;
  Result<std::vector<FileEntry>> AllFiles() const;
  static Result<FileEntry> RowToFile(const db::Row& row);

  StoreScale scale_;
  std::unique_ptr<db::Database> db_;
};

}  // namespace dflow::eventstore

#endif  // DFLOW_EVENTSTORE_EVENT_STORE_H_
