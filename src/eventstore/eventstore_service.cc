#include "eventstore/eventstore_service.h"

#include <sstream>

#include "util/logging.h"

namespace dflow::eventstore {

EventStoreService::EventStoreService(EventStore* store) : store_(store) {
  DFLOW_CHECK(store_ != nullptr);
}

Result<core::ServiceResponse> EventStoreService::Handle(
    const core::ServiceRequest& request) {
  core::ServiceResponse response;
  response.content_type = "text/tab-separated-values";

  if (request.path == "resolve") {
    std::string grade = request.Param("grade");
    if (grade.empty()) {
      return Status::InvalidArgument("resolve requires ?grade=");
    }
    DFLOW_ASSIGN_OR_RETURN(int64_t ts, request.IntParam("ts", 0));
    DFLOW_ASSIGN_OR_RETURN(std::vector<FileEntry> files,
                           store_->Resolve(grade, ts));
    if (request.params.count("ts") != 0) {
      // A resolution at an explicit timestamp is immutable history (§3.2's
      // versioned-collection guarantee): the dissemination cache may hold
      // it for a long time.
      response.cache_max_age_sec = 86400.0;
    }
    std::ostringstream os;
    os << "run\tdata_type\tversion\tbytes\tlocation\tprov_hash\n";
    for (const FileEntry& file : files) {
      os << file.run << "\t" << file.data_type << "\t" << file.version
         << "\t" << file.bytes << "\t" << file.location << "\t"
         << file.provenance.SummaryHash() << "\n";
    }
    response.body = os.str();
    return response;
  }
  if (request.path == "grades") {
    std::ostringstream os;
    for (const std::string& grade : store_->GradeNames()) {
      os << grade << "\n";
    }
    response.content_type = "text/plain";
    response.body = os.str();
    return response;
  }
  if (request.path == "history") {
    std::string grade = request.Param("grade");
    if (grade.empty()) {
      return Status::InvalidArgument("history requires ?grade=");
    }
    DFLOW_ASSIGN_OR_RETURN(auto history, store_->GradeHistory(grade));
    std::ostringstream os;
    os << "timestamp\trun_first\trun_last\tdata_type\tversion\n";
    for (const auto& assignment : history) {
      os << assignment.timestamp << "\t" << assignment.range.first << "\t"
         << assignment.range.last << "\t" << assignment.data_type << "\t"
         << assignment.version << "\n";
    }
    response.body = os.str();
    return response;
  }
  if (request.path == "versions") {
    DFLOW_ASSIGN_OR_RETURN(int64_t run, request.IntParam("run", -1));
    std::string data_type = request.Param("data_type");
    if (run < 0 || data_type.empty()) {
      return Status::InvalidArgument("versions requires ?run= and ?data_type=");
    }
    std::ostringstream os;
    for (const std::string& version : store_->Versions(run, data_type)) {
      os << version << "\n";
    }
    response.content_type = "text/plain";
    response.body = os.str();
    return response;
  }
  if (request.path == "summary") {
    DFLOW_ASSIGN_OR_RETURN(
        db::QueryResult result,
        store_->database().Execute(
            "SELECT data_type, COUNT(*) AS files, SUM(bytes) AS bytes FROM "
            "files GROUP BY data_type ORDER BY bytes DESC"));
    // The summary churns as runs register; let the cache keep it briefly.
    response.cache_max_age_sec = 30.0;
    std::ostringstream os;
    os << "data_type\tfiles\tbytes\n";
    for (const db::Row& row : result.rows) {
      os << row[0].AsString() << "\t" << row[1].AsInt() << "\t"
         << row[2].AsInt() << "\n";
    }
    response.body = os.str();
    return response;
  }
  return Status::NotFound("no endpoint '" + request.path + "'");
}

std::vector<std::string> EventStoreService::Endpoints() const {
  return {"resolve", "grades", "history", "versions", "summary"};
}

}  // namespace dflow::eventstore
