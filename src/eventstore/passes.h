#ifndef DFLOW_EVENTSTORE_PASSES_H_
#define DFLOW_EVENTSTORE_PASSES_H_

#include <string>

#include "eventstore/event_model.h"
#include "provenance/provenance.h"
#include "util/result.h"

namespace dflow::eventstore {

/// Output of a processing pass over one run: the derived run plus the
/// provenance step describing how it was made.
struct PassOutput {
  Run run;
  prov::ProcessingStep step;
};

/// Reconstruction (§3.1 step 2): identifies particle trajectories from the
/// energy levels recorded by measure wires. Each raw event gains "tracks",
/// "showers", and "vertices" ASUs whose sizes scale with the raw hit
/// volume; the raw ASUs are not carried forward (reconstructed runs are a
/// separate data product).
class ReconstructionPass {
 public:
  /// `release` is the software version recorded in provenance
  /// (e.g. "Feb13_04_P2"); `calibration` names the calibration input.
  ReconstructionPass(std::string release, std::string calibration,
                     int64_t change_date);

  Result<PassOutput> Process(const Run& raw_run) const;

  const std::string& release() const { return release_; }

 private:
  std::string release_;
  std::string calibration_;
  int64_t change_date_;
};

/// Post-reconstruction (§3.1): values that "depend on statistics gathered
/// from the reconstructed data, and so cannot be calculated until after
/// reconstruction. There are typically a dozen ASUs per event in the
/// post-reconstruction data." This pass first computes run-level statistics
/// (mean track ASU size) and then derives the dozen per-event ASUs from
/// them — enforcing the can't-run-before-recon dependency.
class PostReconPass {
 public:
  PostReconPass(std::string release, int64_t change_date,
                int asus_per_event = 12);

  Result<PassOutput> Process(const Run& recon_run) const;

 private:
  std::string release_;
  int64_t change_date_;
  int asus_per_event_;
};

}  // namespace dflow::eventstore

#endif  // DFLOW_EVENTSTORE_PASSES_H_
