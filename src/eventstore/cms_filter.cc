#include "eventstore/cms_filter.h"

#include <algorithm>
#include <cmath>

namespace dflow::eventstore {

CmsFilterResult RunCmsFilter(const CmsFilterConfig& config,
                             double interval_sec, uint64_t seed) {
  Rng rng(seed);
  CmsFilterResult result;

  // Tick-based simulation: 10 ms ticks are fine-grained relative to the
  // buffer dynamics and keep the run O(interval / tick).
  const double tick = 0.01;
  const double drain_per_tick = config.tape_limit_bytes_per_sec * tick;
  double buffer = 0.0;

  for (double t = 0.0; t < interval_sec; t += tick) {
    int64_t arrivals = rng.Poisson(config.detector_event_rate_hz * tick);
    result.events_seen += arrivals;
    for (int64_t i = 0; i < arrivals; ++i) {
      if (!rng.Bernoulli(config.accept_fraction)) {
        continue;
      }
      int64_t bytes = std::max<int64_t>(
          1024, static_cast<int64_t>(
                    rng.Normal(static_cast<double>(config.event_bytes_mean),
                               static_cast<double>(config.event_bytes_sd))));
      if (buffer + static_cast<double>(bytes) >
          static_cast<double>(config.tape_buffer_bytes)) {
        ++result.events_dropped_overflow;  // Data loss: budget exceeded.
        continue;
      }
      buffer += static_cast<double>(bytes);
      ++result.events_accepted;
      result.bytes_accepted += bytes;
    }
    buffer = std::max(0.0, buffer - drain_per_tick);
    result.peak_buffer_bytes = std::max(result.peak_buffer_bytes, buffer);
  }

  result.mean_tape_rate =
      static_cast<double>(result.bytes_accepted) / interval_sec;
  result.within_tape_budget =
      result.events_dropped_overflow == 0 &&
      result.mean_tape_rate <= config.tape_limit_bytes_per_sec * 1.001;
  return result;
}

}  // namespace dflow::eventstore
