#ifndef DFLOW_DB_HEAP_TABLE_H_
#define DFLOW_DB_HEAP_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "db/buffer_pool.h"
#include "db/page.h"
#include "db/schema.h"
#include "util/result.h"

namespace dflow::db {

/// Physical address of a row: page number + slot within the page. Stable
/// across deletes (slots are tombstoned, not reused), so indexes can store
/// RowIds. The page number is table-local (the table's Nth page), not a
/// buffer-pool page id — RowIds survive checkpoint rebuilds and are
/// independent of which pool the table lives in.
struct RowId {
  uint32_t page = 0;
  uint16_t slot = 0;

  bool operator==(const RowId& other) const {
    return page == other.page && slot == other.slot;
  }
  bool operator<(const RowId& other) const {
    return page != other.page ? page < other.page : slot < other.slot;
  }
};

/// A heap file of slotted pages storing encoded rows of one schema.
/// Rows append to the last page with room; full pages stay where they are.
///
/// Every page access goes through a BufferPool: the table holds page *ids*
/// (page_ids_[n] = pool id of the table's nth page) and pins pages on
/// demand, so a bounded pool spills cold pages to its PageStore and the
/// table's data can exceed RAM transparently. A table constructed without
/// a pool gets a private unbounded in-memory one (the pre-pool behavior).
class HeapTable {
 public:
  explicit HeapTable(Schema schema, BufferPool* pool = nullptr);
  ~HeapTable();

  HeapTable(const HeapTable&) = delete;
  HeapTable& operator=(const HeapTable&) = delete;

  const Schema& schema() const { return schema_; }

  /// Validates against the schema and stores the row.
  Result<RowId> Insert(Row row);

  Result<Row> Get(RowId id) const;
  Status Delete(RowId id);
  /// In-place if it fits, else delete + reinsert (the returned RowId may
  /// differ from `id`).
  Result<RowId> Update(RowId id, Row row);

  int64_t num_rows() const { return num_rows_; }
  size_t num_pages() const { return page_ids_.size(); }

  /// Total bytes occupied by page images (the storage-accounting hook).
  int64_t SizeBytes() const {
    return static_cast<int64_t>(page_ids_.size() * kPageSize);
  }

  BufferPool* pool() const { return pool_; }

  /// Calls fn(RowId, const Row&) for every live row in physical order;
  /// stops early if fn returns false. Pins one page at a time.
  template <typename Fn>
  Status ForEach(Fn&& fn) const {
    for (uint32_t p = 0; p < page_ids_.size(); ++p) {
      DFLOW_ASSIGN_OR_RETURN(BufferPool::PageRef ref,
                             pool_->Pin(page_ids_[p]));
      for (uint16_t s = 0; s < ref->num_slots(); ++s) {
        auto record = ref->Get(s);
        if (!record.ok()) {
          continue;  // Tombstone.
        }
        ByteReader reader(*record);
        DFLOW_ASSIGN_OR_RETURN(Row row, DecodeRow(reader));
        if (!fn(RowId{p, s}, row)) {
          return Status::OK();
        }
      }
    }
    return Status::OK();
  }

 private:
  Result<RowId> InsertEncoded(std::string_view record);
  Result<BufferPool::PageRef> PinLocal(uint32_t local_page) const;

  Schema schema_;
  BufferPool* pool_;                         // Never null after ctor.
  std::unique_ptr<BufferPool> owned_pool_;   // Fallback when none provided.
  std::vector<uint32_t> page_ids_;           // Local page n -> pool pid.
  int64_t num_rows_ = 0;
};

}  // namespace dflow::db

#endif  // DFLOW_DB_HEAP_TABLE_H_
