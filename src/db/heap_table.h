#ifndef DFLOW_DB_HEAP_TABLE_H_
#define DFLOW_DB_HEAP_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "db/page.h"
#include "db/schema.h"
#include "util/result.h"

namespace dflow::db {

/// Physical address of a row: page number + slot within the page. Stable
/// across deletes (slots are tombstoned, not reused), so indexes can store
/// RowIds.
struct RowId {
  uint32_t page = 0;
  uint16_t slot = 0;

  bool operator==(const RowId& other) const {
    return page == other.page && slot == other.slot;
  }
  bool operator<(const RowId& other) const {
    return page != other.page ? page < other.page : slot < other.slot;
  }
};

/// A heap file of slotted pages storing encoded rows of one schema.
/// Rows append to the last page with room; full pages stay where they are.
class HeapTable {
 public:
  explicit HeapTable(Schema schema);

  const Schema& schema() const { return schema_; }

  /// Validates against the schema and stores the row.
  Result<RowId> Insert(Row row);

  Result<Row> Get(RowId id) const;
  Status Delete(RowId id);
  /// In-place if it fits, else delete + reinsert (the returned RowId may
  /// differ from `id`).
  Result<RowId> Update(RowId id, Row row);

  int64_t num_rows() const { return num_rows_; }
  size_t num_pages() const { return pages_.size(); }

  /// Total bytes occupied by page images (the storage-accounting hook).
  int64_t SizeBytes() const {
    return static_cast<int64_t>(pages_.size() * kPageSize);
  }

  /// Calls fn(RowId, const Row&) for every live row in physical order;
  /// stops early if fn returns false.
  template <typename Fn>
  Status ForEach(Fn&& fn) const {
    for (uint32_t p = 0; p < pages_.size(); ++p) {
      const Page& page = *pages_[p];
      for (uint16_t s = 0; s < page.num_slots(); ++s) {
        auto record = page.Get(s);
        if (!record.ok()) {
          continue;  // Tombstone.
        }
        ByteReader reader(*record);
        DFLOW_ASSIGN_OR_RETURN(Row row, DecodeRow(reader));
        if (!fn(RowId{p, s}, row)) {
          return Status::OK();
        }
      }
    }
    return Status::OK();
  }

 private:
  Result<RowId> InsertEncoded(std::string_view record);

  Schema schema_;
  std::vector<std::unique_ptr<Page>> pages_;
  int64_t num_rows_ = 0;
};

}  // namespace dflow::db

#endif  // DFLOW_DB_HEAP_TABLE_H_
