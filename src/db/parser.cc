#include "db/parser.h"

#include <cctype>
#include <cstdlib>

#include "util/strings.h"

namespace dflow::db {

namespace {

enum class TokenKind {
  kKeywordOrIdent,
  kNumber,
  kString,
  kSymbol,  // Operators and punctuation.
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // Uppercased for identifiers/keywords.
  std::string raw;    // Original spelling.
};

class Lexer {
 public:
  explicit Lexer(std::string_view sql) : sql_(sql) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipWhitespace();
      if (pos_ >= sql_.size()) {
        out.push_back(Token{TokenKind::kEnd, "", ""});
        return out;
      }
      char c = sql_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out.push_back(LexWord());
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '.' && pos_ + 1 < sql_.size() &&
                  std::isdigit(static_cast<unsigned char>(sql_[pos_ + 1])))) {
        out.push_back(LexNumber());
      } else if (c == '\'') {
        DFLOW_ASSIGN_OR_RETURN(Token t, LexString());
        out.push_back(std::move(t));
      } else {
        DFLOW_ASSIGN_OR_RETURN(Token t, LexSymbol());
        out.push_back(std::move(t));
      }
    }
  }

 private:
  void SkipWhitespace() {
    while (pos_ < sql_.size()) {
      char c = sql_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '-' && pos_ + 1 < sql_.size() && sql_[pos_ + 1] == '-') {
        while (pos_ < sql_.size() && sql_[pos_] != '\n') {
          ++pos_;
        }
      } else {
        break;
      }
    }
  }

  Token LexWord() {
    size_t start = pos_;
    while (pos_ < sql_.size() &&
           (IsAlnum(sql_[pos_]) || sql_[pos_] == '_' || sql_[pos_] == '.')) {
      ++pos_;
    }
    std::string raw(sql_.substr(start, pos_ - start));
    std::string upper = raw;
    for (char& ch : upper) {
      ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
    }
    return Token{TokenKind::kKeywordOrIdent, std::move(upper), std::move(raw)};
  }

  Token LexNumber() {
    size_t start = pos_;
    bool saw_dot = false;
    while (pos_ < sql_.size()) {
      char c = sql_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' && !saw_dot) {
        saw_dot = true;
        ++pos_;
      } else if ((c == 'e' || c == 'E') && pos_ + 1 < sql_.size()) {
        // Exponent: e[+-]?digits
        size_t peek = pos_ + 1;
        if (sql_[peek] == '+' || sql_[peek] == '-') {
          ++peek;
        }
        if (peek < sql_.size() &&
            std::isdigit(static_cast<unsigned char>(sql_[peek]))) {
          saw_dot = true;  // Treat as floating point.
          pos_ = peek + 1;
          while (pos_ < sql_.size() &&
                 std::isdigit(static_cast<unsigned char>(sql_[pos_]))) {
            ++pos_;
          }
        }
        break;
      } else {
        break;
      }
    }
    std::string raw(sql_.substr(start, pos_ - start));
    return Token{TokenKind::kNumber, raw, raw};
  }

  Result<Token> LexString() {
    ++pos_;  // Opening quote.
    std::string out;
    while (pos_ < sql_.size()) {
      char c = sql_[pos_];
      if (c == '\'') {
        if (pos_ + 1 < sql_.size() && sql_[pos_ + 1] == '\'') {
          out.push_back('\'');  // Doubled quote escape.
          pos_ += 2;
          continue;
        }
        ++pos_;
        return Token{TokenKind::kString, out, out};
      }
      out.push_back(c);
      ++pos_;
    }
    return Status::InvalidArgument("unterminated string literal");
  }

  Result<Token> LexSymbol() {
    static const char* kTwoChar[] = {"<=", ">=", "<>", "!="};
    for (const char* sym : kTwoChar) {
      if (sql_.substr(pos_, 2) == sym) {
        pos_ += 2;
        return Token{TokenKind::kSymbol, sym, sym};
      }
    }
    char c = sql_[pos_];
    static const std::string kSingles = "(),*=<>+-/%;";
    if (kSingles.find(c) == std::string::npos) {
      return Status::InvalidArgument(std::string("unexpected character '") +
                                     c + "'");
    }
    ++pos_;
    return Token{TokenKind::kSymbol, std::string(1, c), std::string(1, c)};
  }

  std::string_view sql_;
  size_t pos_ = 0;
};

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    const Token& t = Peek();
    Statement stmt;
    if (IsKeyword(t, "CREATE")) {
      DFLOW_ASSIGN_OR_RETURN(stmt, ParseCreate());
    } else if (IsKeyword(t, "DROP")) {
      DFLOW_ASSIGN_OR_RETURN(stmt, ParseDrop());
    } else if (IsKeyword(t, "INSERT")) {
      DFLOW_ASSIGN_OR_RETURN(stmt, ParseInsert());
    } else if (IsKeyword(t, "SELECT")) {
      DFLOW_ASSIGN_OR_RETURN(SelectStmt s, ParseSelect());
      stmt = std::move(s);
    } else if (IsKeyword(t, "UPDATE")) {
      DFLOW_ASSIGN_OR_RETURN(stmt, ParseUpdate());
    } else if (IsKeyword(t, "DELETE")) {
      DFLOW_ASSIGN_OR_RETURN(stmt, ParseDelete());
    } else if (IsKeyword(t, "BEGIN")) {
      Advance();
      stmt = BeginStmt{};
    } else if (IsKeyword(t, "COMMIT")) {
      Advance();
      stmt = CommitStmt{};
    } else if (IsKeyword(t, "ROLLBACK")) {
      Advance();
      stmt = RollbackStmt{};
    } else {
      return Status::InvalidArgument("expected a statement, got '" + t.raw +
                                     "'");
    }
    // Optional trailing semicolon, then end of input.
    if (PeekSymbol(";")) {
      Advance();
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Status::InvalidArgument("trailing tokens after statement: '" +
                                     Peek().raw + "'");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  static bool IsKeyword(const Token& t, std::string_view kw) {
    return t.kind == TokenKind::kKeywordOrIdent && t.text == kw;
  }
  bool PeekKeyword(std::string_view kw) const { return IsKeyword(Peek(), kw); }
  bool PeekSymbol(std::string_view sym) const {
    return Peek().kind == TokenKind::kSymbol && Peek().text == sym;
  }

  Status Expect(std::string_view kw_or_sym) {
    const Token& t = Advance();
    if (t.text != kw_or_sym) {
      return Status::InvalidArgument("expected '" + std::string(kw_or_sym) +
                                     "', got '" + t.raw + "'");
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdent() {
    const Token& t = Advance();
    if (t.kind != TokenKind::kKeywordOrIdent) {
      return Status::InvalidArgument("expected identifier, got '" + t.raw +
                                     "'");
    }
    return t.raw;
  }

  Result<Statement> ParseCreate() {
    DFLOW_RETURN_IF_ERROR(Expect("CREATE"));
    if (PeekKeyword("TABLE")) {
      Advance();
      CreateTableStmt stmt;
      DFLOW_ASSIGN_OR_RETURN(stmt.table, ExpectIdent());
      DFLOW_RETURN_IF_ERROR(Expect("("));
      while (true) {
        Column col;
        DFLOW_ASSIGN_OR_RETURN(col.name, ExpectIdent());
        DFLOW_ASSIGN_OR_RETURN(col.type, ParseType());
        if (PeekKeyword("NOT")) {
          Advance();
          DFLOW_RETURN_IF_ERROR(Expect("NULL"));
          col.nullable = false;
        } else if (PeekKeyword("NULL")) {
          Advance();
        }
        stmt.columns.push_back(std::move(col));
        if (PeekSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      DFLOW_RETURN_IF_ERROR(Expect(")"));
      return Statement{std::move(stmt)};
    }
    if (PeekKeyword("INDEX")) {
      Advance();
      CreateIndexStmt stmt;
      DFLOW_ASSIGN_OR_RETURN(stmt.index_name, ExpectIdent());
      DFLOW_RETURN_IF_ERROR(Expect("ON"));
      DFLOW_ASSIGN_OR_RETURN(stmt.table, ExpectIdent());
      DFLOW_RETURN_IF_ERROR(Expect("("));
      DFLOW_ASSIGN_OR_RETURN(stmt.column, ExpectIdent());
      DFLOW_RETURN_IF_ERROR(Expect(")"));
      return Statement{std::move(stmt)};
    }
    return Status::InvalidArgument("expected TABLE or INDEX after CREATE");
  }

  Result<Type> ParseType() {
    const Token& t = Advance();
    if (t.text == "INT" || t.text == "INTEGER" || t.text == "BIGINT") {
      return Type::kInt64;
    }
    if (t.text == "DOUBLE" || t.text == "REAL" || t.text == "FLOAT") {
      return Type::kDouble;
    }
    if (t.text == "TEXT" || t.text == "STRING" || t.text == "VARCHAR") {
      // Optional (n) length, ignored.
      if (PeekSymbol("(")) {
        Advance();
        Advance();  // Length.
        DFLOW_RETURN_IF_ERROR(Expect(")"));
      }
      return Type::kString;
    }
    if (t.text == "BOOL" || t.text == "BOOLEAN") {
      return Type::kBool;
    }
    return Status::InvalidArgument("unknown type '" + t.raw + "'");
  }

  Result<Statement> ParseDrop() {
    DFLOW_RETURN_IF_ERROR(Expect("DROP"));
    DFLOW_RETURN_IF_ERROR(Expect("TABLE"));
    DropTableStmt stmt;
    if (PeekKeyword("IF")) {
      Advance();
      DFLOW_RETURN_IF_ERROR(Expect("EXISTS"));
      stmt.if_exists = true;
    }
    DFLOW_ASSIGN_OR_RETURN(stmt.table, ExpectIdent());
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseInsert() {
    DFLOW_RETURN_IF_ERROR(Expect("INSERT"));
    DFLOW_RETURN_IF_ERROR(Expect("INTO"));
    InsertStmt stmt;
    DFLOW_ASSIGN_OR_RETURN(stmt.table, ExpectIdent());
    if (PeekSymbol("(")) {
      Advance();
      while (true) {
        DFLOW_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        stmt.columns.push_back(std::move(col));
        if (PeekSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      DFLOW_RETURN_IF_ERROR(Expect(")"));
    }
    DFLOW_RETURN_IF_ERROR(Expect("VALUES"));
    while (true) {
      DFLOW_RETURN_IF_ERROR(Expect("("));
      std::vector<ExprPtr> row;
      while (true) {
        DFLOW_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
        if (PeekSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      DFLOW_RETURN_IF_ERROR(Expect(")"));
      stmt.rows.push_back(std::move(row));
      if (PeekSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    return Statement{std::move(stmt)};
  }

  Result<SelectStmt> ParseSelect() {
    DFLOW_RETURN_IF_ERROR(Expect("SELECT"));
    SelectStmt stmt;
    if (PeekKeyword("DISTINCT")) {
      Advance();
      stmt.distinct = true;
    }
    while (true) {
      DFLOW_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      stmt.items.push_back(std::move(item));
      if (PeekSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    DFLOW_RETURN_IF_ERROR(Expect("FROM"));
    DFLOW_ASSIGN_OR_RETURN(stmt.table, ExpectIdent());
    if (PeekKeyword("JOIN") || PeekKeyword("INNER")) {
      if (PeekKeyword("INNER")) {
        Advance();
      }
      DFLOW_RETURN_IF_ERROR(Expect("JOIN"));
      JoinClause join;
      DFLOW_ASSIGN_OR_RETURN(join.table, ExpectIdent());
      DFLOW_RETURN_IF_ERROR(Expect("ON"));
      DFLOW_ASSIGN_OR_RETURN(join.on, ParseExpr());
      stmt.join = std::move(join);
    }
    if (PeekKeyword("WHERE")) {
      Advance();
      DFLOW_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (PeekKeyword("GROUP")) {
      Advance();
      DFLOW_RETURN_IF_ERROR(Expect("BY"));
      while (true) {
        DFLOW_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt.group_by.push_back(std::move(e));
        if (PeekSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (PeekKeyword("HAVING")) {
      Advance();
      DFLOW_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
    }
    if (PeekKeyword("ORDER")) {
      Advance();
      DFLOW_RETURN_IF_ERROR(Expect("BY"));
      while (true) {
        OrderByItem item;
        DFLOW_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (PeekKeyword("DESC")) {
          Advance();
          item.descending = true;
        } else if (PeekKeyword("ASC")) {
          Advance();
        }
        stmt.order_by.push_back(std::move(item));
        if (PeekSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (PeekKeyword("LIMIT")) {
      Advance();
      const Token& t = Advance();
      if (t.kind != TokenKind::kNumber) {
        return Status::InvalidArgument("expected number after LIMIT");
      }
      stmt.limit = std::strtoll(t.text.c_str(), nullptr, 10);
      if (PeekKeyword("OFFSET")) {
        Advance();
        const Token& skip = Advance();
        if (skip.kind != TokenKind::kNumber) {
          return Status::InvalidArgument("expected number after OFFSET");
        }
        stmt.offset = std::strtoll(skip.text.c_str(), nullptr, 10);
      }
    }
    return stmt;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (PeekSymbol("*")) {
      Advance();
      item.star = true;
      return item;
    }
    // Aggregate function?
    static const std::pair<const char*, AggFunc> kAggs[] = {
        {"COUNT", AggFunc::kCount}, {"SUM", AggFunc::kSum},
        {"MIN", AggFunc::kMin},     {"MAX", AggFunc::kMax},
        {"AVG", AggFunc::kAvg}};
    for (const auto& [name, func] : kAggs) {
      if (PeekKeyword(name) && Peek(1).kind == TokenKind::kSymbol &&
          Peek(1).text == "(") {
        Advance();
        Advance();
        item.agg = func;
        if (PeekSymbol("*")) {
          Advance();
          item.star = true;
        } else {
          DFLOW_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        }
        DFLOW_RETURN_IF_ERROR(Expect(")"));
        if (PeekKeyword("AS")) {
          Advance();
          DFLOW_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
        }
        return item;
      }
    }
    DFLOW_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (PeekKeyword("AS")) {
      Advance();
      DFLOW_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
    }
    return item;
  }

  Result<Statement> ParseUpdate() {
    DFLOW_RETURN_IF_ERROR(Expect("UPDATE"));
    UpdateStmt stmt;
    DFLOW_ASSIGN_OR_RETURN(stmt.table, ExpectIdent());
    DFLOW_RETURN_IF_ERROR(Expect("SET"));
    while (true) {
      DFLOW_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
      DFLOW_RETURN_IF_ERROR(Expect("="));
      DFLOW_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt.assignments.emplace_back(std::move(col), std::move(e));
      if (PeekSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    if (PeekKeyword("WHERE")) {
      Advance();
      DFLOW_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseDelete() {
    DFLOW_RETURN_IF_ERROR(Expect("DELETE"));
    DFLOW_RETURN_IF_ERROR(Expect("FROM"));
    DeleteStmt stmt;
    DFLOW_ASSIGN_OR_RETURN(stmt.table, ExpectIdent());
    if (PeekKeyword("WHERE")) {
      Advance();
      DFLOW_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return Statement{std::move(stmt)};
  }

  // Expression grammar (precedence climbing):
  //   or: and (OR and)*
  //   and: not (AND not)*
  //   not: NOT not | cmp
  //   cmp: add ((=|<>|<|<=|>|>=|LIKE) add | IS [NOT] NULL)?
  //   add: mul ((+|-) mul)*
  //   mul: unary ((*|/|%) unary)*
  //   unary: - unary | primary
  //   primary: literal | ident | ( or )
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    DFLOW_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (PeekKeyword("OR")) {
      Advance();
      DFLOW_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = Expr::Binary(BinOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    DFLOW_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (PeekKeyword("AND")) {
      Advance();
      DFLOW_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = Expr::Binary(BinOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (PeekKeyword("NOT")) {
      Advance();
      DFLOW_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      return Expr::Unary(UnOp::kNot, std::move(e));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    DFLOW_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    if (PeekKeyword("IS")) {
      Advance();
      bool negated = false;
      if (PeekKeyword("NOT")) {
        Advance();
        negated = true;
      }
      DFLOW_RETURN_IF_ERROR(Expect("NULL"));
      return Expr::Unary(negated ? UnOp::kIsNotNull : UnOp::kIsNull,
                         std::move(left));
    }
    if (PeekKeyword("LIKE")) {
      Advance();
      DFLOW_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
      return Expr::Binary(BinOp::kLike, std::move(left), std::move(right));
    }
    static const std::pair<const char*, BinOp> kCmps[] = {
        {"=", BinOp::kEq}, {"<>", BinOp::kNe}, {"!=", BinOp::kNe},
        {"<=", BinOp::kLe}, {">=", BinOp::kGe}, {"<", BinOp::kLt},
        {">", BinOp::kGt}};
    for (const auto& [sym, op] : kCmps) {
      if (PeekSymbol(sym)) {
        Advance();
        DFLOW_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
        return Expr::Binary(op, std::move(left), std::move(right));
      }
    }
    return left;
  }

  Result<ExprPtr> ParseAdditive() {
    DFLOW_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (PeekSymbol("+") || PeekSymbol("-")) {
      BinOp op = Peek().text == "+" ? BinOp::kAdd : BinOp::kSub;
      Advance();
      DFLOW_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = Expr::Binary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseMultiplicative() {
    DFLOW_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (PeekSymbol("*") || PeekSymbol("/") || PeekSymbol("%")) {
      BinOp op = Peek().text == "*"
                     ? BinOp::kMul
                     : (Peek().text == "/" ? BinOp::kDiv : BinOp::kMod);
      Advance();
      DFLOW_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = Expr::Binary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseUnary() {
    if (PeekSymbol("-")) {
      Advance();
      DFLOW_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return Expr::Unary(UnOp::kNeg, std::move(e));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kNumber) {
      Advance();
      if (t.text.find('.') != std::string::npos ||
          t.text.find('e') != std::string::npos ||
          t.text.find('E') != std::string::npos) {
        return Expr::Literal(Value::Double(std::strtod(t.text.c_str(),
                                                       nullptr)));
      }
      return Expr::Literal(
          Value::Int(std::strtoll(t.text.c_str(), nullptr, 10)));
    }
    if (t.kind == TokenKind::kString) {
      Advance();
      return Expr::Literal(Value::String(t.raw));
    }
    if (t.kind == TokenKind::kSymbol && t.text == "(") {
      Advance();
      DFLOW_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      DFLOW_RETURN_IF_ERROR(Expect(")"));
      return e;
    }
    if (t.kind == TokenKind::kKeywordOrIdent) {
      if (t.text == "NULL") {
        Advance();
        return Expr::Literal(Value::Null());
      }
      if (t.text == "TRUE") {
        Advance();
        return Expr::Literal(Value::Bool(true));
      }
      if (t.text == "FALSE") {
        Advance();
        return Expr::Literal(Value::Bool(false));
      }
      Advance();
      return Expr::ColumnRef(t.raw);
    }
    return Status::InvalidArgument("unexpected token '" + t.raw +
                                   "' in expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseSql(std::string_view sql) {
  Lexer lexer(sql);
  DFLOW_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace dflow::db
