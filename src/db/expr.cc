#include "db/expr.h"

#include <cmath>

#include "util/logging.h"

namespace dflow::db {

std::string_view BinOpToString(BinOp op) {
  switch (op) {
    case BinOp::kEq:
      return "=";
    case BinOp::kNe:
      return "<>";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kMod:
      return "%";
    case BinOp::kAnd:
      return "AND";
    case BinOp::kOr:
      return "OR";
    case BinOp::kLike:
      return "LIKE";
  }
  return "?";
}

ExprPtr Expr::Literal(Value v) {
  auto e = ExprPtr(new Expr());
  e->kind_ = Kind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::ColumnRef(std::string name) {
  auto e = ExprPtr(new Expr());
  e->kind_ = Kind::kColumnRef;
  e->column_name_ = std::move(name);
  return e;
}

ExprPtr Expr::Binary(BinOp op, ExprPtr left, ExprPtr right) {
  auto e = ExprPtr(new Expr());
  e->kind_ = Kind::kBinary;
  e->bin_op_ = op;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

ExprPtr Expr::Unary(UnOp op, ExprPtr operand) {
  auto e = ExprPtr(new Expr());
  e->kind_ = Kind::kUnary;
  e->un_op_ = op;
  e->left_ = std::move(operand);
  return e;
}

Status Expr::Bind(const Schema& schema) {
  switch (kind_) {
    case Kind::kLiteral:
      return Status::OK();
    case Kind::kColumnRef: {
      DFLOW_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(column_name_));
      column_index_ = static_cast<int>(idx);
      return Status::OK();
    }
    case Kind::kBinary:
      DFLOW_RETURN_IF_ERROR(left_->Bind(schema));
      return right_->Bind(schema);
    case Kind::kUnary:
      return left_->Bind(schema);
  }
  return Status::Internal("unreachable");
}

Result<Value> Expr::Eval(const Row& row) const {
  switch (kind_) {
    case Kind::kLiteral:
      return literal_;
    case Kind::kColumnRef:
      if (column_index_ < 0 ||
          static_cast<size_t>(column_index_) >= row.size()) {
        return Status::FailedPrecondition("unbound column '" + column_name_ +
                                          "'");
      }
      return row[static_cast<size_t>(column_index_)];
    case Kind::kBinary:
      return EvalBinary(row);
    case Kind::kUnary:
      return EvalUnary(row);
  }
  return Status::Internal("unreachable");
}

namespace {

bool IsNumeric(const Value& v) {
  return v.type() == Type::kInt64 || v.type() == Type::kDouble;
}

Result<Value> Arithmetic(BinOp op, const Value& a, const Value& b) {
  if (!IsNumeric(a) || !IsNumeric(b)) {
    return Status::InvalidArgument("arithmetic on non-numeric values");
  }
  bool both_int = a.type() == Type::kInt64 && b.type() == Type::kInt64;
  if (both_int && op != BinOp::kDiv) {
    int64_t x = a.AsInt(), y = b.AsInt();
    switch (op) {
      case BinOp::kAdd:
        return Value::Int(x + y);
      case BinOp::kSub:
        return Value::Int(x - y);
      case BinOp::kMul:
        return Value::Int(x * y);
      case BinOp::kMod:
        if (y == 0) {
          return Status::InvalidArgument("modulo by zero");
        }
        return Value::Int(x % y);
      default:
        break;
    }
  }
  double x = a.AsDouble(), y = b.AsDouble();
  switch (op) {
    case BinOp::kAdd:
      return Value::Double(x + y);
    case BinOp::kSub:
      return Value::Double(x - y);
    case BinOp::kMul:
      return Value::Double(x * y);
    case BinOp::kDiv:
      if (y == 0.0) {
        return Status::InvalidArgument("division by zero");
      }
      return Value::Double(x / y);
    case BinOp::kMod:
      if (y == 0.0) {
        return Status::InvalidArgument("modulo by zero");
      }
      return Value::Double(std::fmod(x, y));
    default:
      return Status::Internal("not an arithmetic op");
  }
}

}  // namespace

Result<Value> Expr::EvalBinary(const Row& row) const {
  // Kleene AND/OR need special NULL handling and short-circuiting.
  if (bin_op_ == BinOp::kAnd || bin_op_ == BinOp::kOr) {
    DFLOW_ASSIGN_OR_RETURN(Value lhs, left_->Eval(row));
    bool is_and = bin_op_ == BinOp::kAnd;
    if (!lhs.is_null() && lhs.type() == Type::kBool &&
        lhs.AsBool() != is_and) {
      // FALSE AND x -> FALSE; TRUE OR x -> TRUE.
      return lhs;
    }
    DFLOW_ASSIGN_OR_RETURN(Value rhs, right_->Eval(row));
    if (lhs.is_null()) {
      if (!rhs.is_null() && rhs.type() == Type::kBool &&
          rhs.AsBool() != is_and) {
        return rhs;  // NULL AND FALSE -> FALSE; NULL OR TRUE -> TRUE.
      }
      return Value::Null();
    }
    if (lhs.type() != Type::kBool) {
      return Status::InvalidArgument("AND/OR on non-boolean");
    }
    if (rhs.is_null()) {
      return Value::Null();
    }
    if (rhs.type() != Type::kBool) {
      return Status::InvalidArgument("AND/OR on non-boolean");
    }
    return Value::Bool(is_and ? (lhs.AsBool() && rhs.AsBool())
                              : (lhs.AsBool() || rhs.AsBool()));
  }

  DFLOW_ASSIGN_OR_RETURN(Value lhs, left_->Eval(row));
  DFLOW_ASSIGN_OR_RETURN(Value rhs, right_->Eval(row));
  if (lhs.is_null() || rhs.is_null()) {
    return Value::Null();  // NULL propagates through comparisons/arithmetic.
  }
  switch (bin_op_) {
    case BinOp::kEq:
      return Value::Bool(lhs.Compare(rhs) == 0);
    case BinOp::kNe:
      return Value::Bool(lhs.Compare(rhs) != 0);
    case BinOp::kLt:
      return Value::Bool(lhs.Compare(rhs) < 0);
    case BinOp::kLe:
      return Value::Bool(lhs.Compare(rhs) <= 0);
    case BinOp::kGt:
      return Value::Bool(lhs.Compare(rhs) > 0);
    case BinOp::kGe:
      return Value::Bool(lhs.Compare(rhs) >= 0);
    case BinOp::kLike:
      if (lhs.type() != Type::kString || rhs.type() != Type::kString) {
        return Status::InvalidArgument("LIKE on non-string values");
      }
      return Value::Bool(LikeMatch(lhs.AsString(), rhs.AsString()));
    default:
      return Arithmetic(bin_op_, lhs, rhs);
  }
}

Result<Value> Expr::EvalUnary(const Row& row) const {
  DFLOW_ASSIGN_OR_RETURN(Value v, left_->Eval(row));
  switch (un_op_) {
    case UnOp::kIsNull:
      return Value::Bool(v.is_null());
    case UnOp::kIsNotNull:
      return Value::Bool(!v.is_null());
    case UnOp::kNot:
      if (v.is_null()) {
        return Value::Null();
      }
      if (v.type() != Type::kBool) {
        return Status::InvalidArgument("NOT on non-boolean");
      }
      return Value::Bool(!v.AsBool());
    case UnOp::kNeg:
      if (v.is_null()) {
        return Value::Null();
      }
      if (v.type() == Type::kInt64) {
        return Value::Int(-v.AsInt());
      }
      if (v.type() == Type::kDouble) {
        return Value::Double(-v.AsDouble());
      }
      return Status::InvalidArgument("negation of non-numeric value");
  }
  return Status::Internal("unreachable");
}

bool Expr::MatchSimplePredicate(std::string* column, BinOp* op,
                                Value* literal) const {
  if (kind_ != Kind::kBinary) {
    return false;
  }
  BinOp o = bin_op_;
  if (o != BinOp::kEq && o != BinOp::kLt && o != BinOp::kLe &&
      o != BinOp::kGt && o != BinOp::kGe) {
    return false;
  }
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  if (left_->kind_ == Kind::kColumnRef && right_->kind_ == Kind::kLiteral) {
    col = left_.get();
    lit = right_.get();
  } else if (left_->kind_ == Kind::kLiteral &&
             right_->kind_ == Kind::kColumnRef) {
    col = right_.get();
    lit = left_.get();
    // Reverse the comparison: 5 < x  ==  x > 5.
    switch (o) {
      case BinOp::kLt:
        o = BinOp::kGt;
        break;
      case BinOp::kLe:
        o = BinOp::kGe;
        break;
      case BinOp::kGt:
        o = BinOp::kLt;
        break;
      case BinOp::kGe:
        o = BinOp::kLe;
        break;
      default:
        break;
    }
  } else {
    return false;
  }
  if (lit->literal_.is_null()) {
    return false;
  }
  *column = col->column_name_;
  *op = o;
  *literal = lit->literal_;
  return true;
}

std::pair<int, int> Expr::EquiJoinBoundIndexes() const {
  if (kind_ == Kind::kBinary && bin_op_ == BinOp::kEq &&
      left_->kind_ == Kind::kColumnRef && right_->kind_ == Kind::kColumnRef &&
      left_->column_index_ >= 0 && right_->column_index_ >= 0) {
    return {left_->column_index_, right_->column_index_};
  }
  return {-1, -1};
}

void Expr::SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e == nullptr) {
    return;
  }
  if (e->kind_ == Kind::kBinary && e->bin_op_ == BinOp::kAnd) {
    SplitConjuncts(e->left_, out);
    SplitConjuncts(e->right_, out);
    return;
  }
  out->push_back(e);
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kLiteral:
      return literal_.type() == Type::kString ? "'" + literal_.ToString() + "'"
                                              : literal_.ToString();
    case Kind::kColumnRef:
      return column_name_;
    case Kind::kBinary:
      return "(" + left_->ToString() + " " +
             std::string(BinOpToString(bin_op_)) + " " + right_->ToString() +
             ")";
    case Kind::kUnary:
      switch (un_op_) {
        case UnOp::kNot:
          return "(NOT " + left_->ToString() + ")";
        case UnOp::kNeg:
          return "(-" + left_->ToString() + ")";
        case UnOp::kIsNull:
          return "(" + left_->ToString() + " IS NULL)";
        case UnOp::kIsNotNull:
          return "(" + left_->ToString() + " IS NOT NULL)";
      }
  }
  return "?";
}

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative wildcard match with backtracking over the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') {
    ++p;
  }
  return p == pattern.size();
}

}  // namespace dflow::db
