#ifndef DFLOW_DB_BUFFER_POOL_H_
#define DFLOW_DB_BUFFER_POOL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "db/page.h"
#include "db/page_store.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/result.h"

namespace dflow::db {

struct BufferPoolOptions {
  /// Maximum resident frames; 0 = unbounded (every page stays in memory,
  /// the pre-pool behavior). Pinned frames can push residency above the
  /// bound transiently — pins are short-lived (one operation) by contract,
  /// and the pool trims back to the bound as pins drop.
  size_t max_frames = 0;
};

/// Frame-table buffer pool: the one path every page access takes. Pages
/// live in frames while hot; a bounded pool evicts cold pages to a
/// PageStore (LRU-K, K=2) and reloads them on demand, so tables spill to
/// the store transparently and working sets can exceed RAM.
///
/// Eviction is deterministic: victims are chosen by LRU-K backward
/// distance on a logical access clock, with ties broken by
/// (older-last-access, smaller page id). Two runs that perform the same
/// page accesses evict the same pages in the same order — the eviction log
/// is a replayable artifact, which is what makes the differential and
/// determinism gates possible.
///
/// WAL-before-page: before a dirty page image reaches the store, the pool
/// calls the registered `ensure_durable(lsn)` barrier with the page's LSN,
/// so no page image can land on disk describing a mutation whose WAL
/// record might be lost. (Recovery is still logical WAL replay; the
/// barrier keeps the spill file from ever being *ahead* of the log.)
///
/// Not thread-safe, by design: the engine is single-threaded and the serve
/// tier serializes per-mount access (see ServeLoop).
class BufferPool {
 public:
  BufferPool(BufferPoolOptions options, std::unique_ptr<PageStore> store);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// RAII pin: the frame cannot be evicted while a PageRef is alive.
  /// MarkDirty() records a mutation, stamping the page with the current
  /// WAL LSN (via the registered provider).
  class PageRef {
   public:
    PageRef() = default;
    PageRef(PageRef&& other) noexcept { *this = std::move(other); }
    PageRef& operator=(PageRef&& other) noexcept;
    PageRef(const PageRef&) = delete;
    PageRef& operator=(const PageRef&) = delete;
    ~PageRef();

    Page* get() const;
    Page* operator->() const { return get(); }
    Page& operator*() const { return *get(); }
    explicit operator bool() const { return pool_ != nullptr; }

    /// Marks the frame dirty and stamps the page LSN from the pool's LSN
    /// provider. Call after (or around) any page mutation.
    void MarkDirty();

   private:
    friend class BufferPool;
    PageRef(BufferPool* pool, size_t frame_idx)
        : pool_(pool), frame_idx_(frame_idx) {}

    BufferPool* pool_ = nullptr;
    size_t frame_idx_ = 0;
  };

  /// Allocates a fresh page id with an empty, dirty, resident page.
  /// Freed ids are recycled smallest-first (deterministic).
  Result<uint32_t> Allocate();

  /// Releases `pid`: drops the frame (no writeback) and recycles the id.
  /// FailedPrecondition if the page is currently pinned.
  Status Free(uint32_t pid);

  /// Pins `pid`, fetching it from the store on a miss.
  Result<PageRef> Pin(uint32_t pid);

  /// Writes back every dirty resident page (frames stay resident).
  Status FlushAll();

  /// WAL coordination: `current_lsn` stamps dirty pages; `ensure_durable`
  /// is the WAL-before-page barrier invoked before any dirty writeback.
  void SetWal(std::function<uint64_t()> current_lsn,
              std::function<uint64_t()> durable_lsn,
              std::function<Status(uint64_t)> ensure_durable);

  /// Observability: db.pool.* counters and fetch/writeback spans.
  void SetMetricsRegistry(obs::MetricsRegistry* metrics);
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Test hook: called at every dirty writeback with (pid, page_lsn,
  /// durable_wal_lsn_at_write) — the WAL-before-page proof point.
  using WritebackProbe =
      std::function<void(uint32_t pid, uint64_t page_lsn,
                         uint64_t durable_lsn)>;
  void SetWritebackProbe(WritebackProbe probe) {
    writeback_probe_ = std::move(probe);
  }

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t writebacks = 0;
    int64_t allocations = 0;
    int64_t frees = 0;
  };
  const Stats& stats() const { return stats_; }

  size_t resident_pages() const { return page_table_.size(); }
  size_t max_frames() const { return options_.max_frames; }
  PageStore* store() const { return store_.get(); }

  /// Every eviction in order (page ids). The determinism gate asserts two
  /// same-seed runs produce identical logs.
  const std::vector<uint32_t>& eviction_log() const { return eviction_log_; }

 private:
  struct Frame {
    uint32_t pid = 0;
    Page page;
    int pin_count = 0;
    bool dirty = false;
    bool in_use = false;
    // LRU-K (K=2) history: last_access > prev_access, 0 = never.
    uint64_t last_access = 0;
    uint64_t prev_access = 0;
  };

  size_t AcquireFrameSlot();
  /// Evicts the LRU-K victim among unpinned frames; false if none.
  Result<bool> EvictOne();
  Status WriteBack(Frame& frame);
  void Touch(Frame& frame);
  void TrimToBound();

  BufferPoolOptions options_;
  std::unique_ptr<PageStore> store_;
  std::vector<std::unique_ptr<Frame>> frames_;
  std::vector<size_t> free_frames_;            // Reuse stack (LIFO).
  std::unordered_map<uint32_t, size_t> page_table_;  // pid -> frame idx.
  std::set<uint32_t> free_pids_;
  uint32_t next_pid_ = 0;
  uint64_t access_clock_ = 0;

  std::function<uint64_t()> current_lsn_;
  std::function<uint64_t()> durable_lsn_;
  std::function<Status(uint64_t)> ensure_durable_;
  WritebackProbe writeback_probe_;

  Stats stats_;
  std::vector<uint32_t> eviction_log_;

  struct ObsCounters {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* writebacks = nullptr;
    obs::Counter* allocations = nullptr;
    obs::Counter* frees = nullptr;
  };
  ObsCounters obs_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace dflow::db

#endif  // DFLOW_DB_BUFFER_POOL_H_
