#include "db/schema.h"

#include <sstream>

#include "util/strings.h"

namespace dflow::db {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

Result<size_t> Schema::IndexOf(std::string_view name) const {
  std::string lower = ToLower(name);
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (ToLower(columns_[i].name) == lower) {
      return i;
    }
  }
  // Fallback 1: unqualified query name vs qualified schema names.
  if (lower.find('.') == std::string::npos) {
    std::string suffix = "." + lower;
    size_t found = columns_.size();
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (EndsWith(ToLower(columns_[i].name), suffix)) {
        if (found != columns_.size()) {
          return Status::InvalidArgument("ambiguous column name '" +
                                         std::string(name) + "'");
        }
        found = i;
      }
    }
    if (found != columns_.size()) {
      return found;
    }
  } else {
    // Fallback 2: qualified query name vs unqualified schema names.
    std::string tail = lower.substr(lower.rfind('.') + 1);
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (ToLower(columns_[i].name) == tail) {
        return i;
      }
    }
  }
  return Status::NotFound("no column named '" + std::string(name) + "'");
}

Result<Row> Schema::ValidateRow(Row row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity mismatch: got " + std::to_string(row.size()) +
        ", schema has " + std::to_string(columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Column& col = columns_[i];
    Value& v = row[i];
    if (v.is_null()) {
      if (!col.nullable) {
        return Status::InvalidArgument("NULL in non-nullable column '" +
                                       col.name + "'");
      }
      continue;
    }
    if (v.type() == col.type) {
      continue;
    }
    if (v.type() == Type::kInt64 && col.type == Type::kDouble) {
      v = Value::Double(static_cast<double>(v.AsInt()));
      continue;
    }
    return Status::InvalidArgument(
        "type mismatch in column '" + col.name + "': expected " +
        std::string(TypeToString(col.type)) + ", got " +
        std::string(TypeToString(v.type())));
  }
  return row;
}

void Schema::EncodeTo(ByteWriter& w) const {
  w.PutVarint(columns_.size());
  for (const Column& col : columns_) {
    w.PutString(col.name);
    w.PutU8(static_cast<uint8_t>(col.type));
    w.PutU8(col.nullable ? 1 : 0);
  }
}

Result<Schema> Schema::DecodeFrom(ByteReader& r) {
  DFLOW_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  std::vector<Column> columns;
  columns.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    Column col;
    DFLOW_ASSIGN_OR_RETURN(col.name, r.GetString());
    DFLOW_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
    col.type = static_cast<Type>(type);
    DFLOW_ASSIGN_OR_RETURN(uint8_t nullable, r.GetU8());
    col.nullable = nullable != 0;
    columns.push_back(std::move(col));
  }
  return Schema(std::move(columns));
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << columns_[i].name << " " << TypeToString(columns_[i].type);
    if (!columns_[i].nullable) {
      os << " NOT NULL";
    }
  }
  os << ")";
  return os.str();
}

void EncodeRow(const Row& row, ByteWriter& w) {
  w.PutVarint(row.size());
  for (const Value& v : row) {
    v.EncodeTo(w);
  }
}

Result<Row> DecodeRow(ByteReader& r) {
  DFLOW_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  Row row;
  row.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    DFLOW_ASSIGN_OR_RETURN(Value v, Value::DecodeFrom(r));
    row.push_back(std::move(v));
  }
  return row;
}

}  // namespace dflow::db
