#include "db/buffer_pool.h"

#include <limits>

#include "util/logging.h"

namespace dflow::db {

namespace {
void Bump(obs::Counter* counter) {
  if (counter != nullptr) {
    counter->Increment();
  }
}
}  // namespace

BufferPool::BufferPool(BufferPoolOptions options,
                       std::unique_ptr<PageStore> store)
    : options_(options), store_(std::move(store)) {
  DFLOW_CHECK(store_ != nullptr);
}

void BufferPool::SetWal(std::function<uint64_t()> current_lsn,
                        std::function<uint64_t()> durable_lsn,
                        std::function<Status(uint64_t)> ensure_durable) {
  current_lsn_ = std::move(current_lsn);
  durable_lsn_ = std::move(durable_lsn);
  ensure_durable_ = std::move(ensure_durable);
}

void BufferPool::SetMetricsRegistry(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    obs_ = ObsCounters{};
    return;
  }
  obs_.hits = metrics->GetCounter("db.pool.hits");
  obs_.misses = metrics->GetCounter("db.pool.misses");
  obs_.evictions = metrics->GetCounter("db.pool.evictions");
  obs_.writebacks = metrics->GetCounter("db.pool.writebacks");
  obs_.allocations = metrics->GetCounter("db.pool.allocations");
  obs_.frees = metrics->GetCounter("db.pool.frees");
}

BufferPool::PageRef& BufferPool::PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    this->~PageRef();
    pool_ = other.pool_;
    frame_idx_ = other.frame_idx_;
    other.pool_ = nullptr;
  }
  return *this;
}

BufferPool::PageRef::~PageRef() {
  if (pool_ == nullptr) {
    return;
  }
  Frame& frame = *pool_->frames_[frame_idx_];
  DFLOW_CHECK(frame.pin_count > 0);
  --frame.pin_count;
  if (frame.pin_count == 0) {
    pool_->TrimToBound();
  }
  pool_ = nullptr;
}

Page* BufferPool::PageRef::get() const {
  DFLOW_CHECK(pool_ != nullptr);
  return &pool_->frames_[frame_idx_]->page;
}

void BufferPool::PageRef::MarkDirty() {
  DFLOW_CHECK(pool_ != nullptr);
  Frame& frame = *pool_->frames_[frame_idx_];
  frame.dirty = true;
  if (pool_->current_lsn_) {
    uint64_t lsn = pool_->current_lsn_();
    if (lsn > 0) {
      frame.page.set_lsn(lsn);
    }
  }
}

void BufferPool::Touch(Frame& frame) {
  frame.prev_access = frame.last_access;
  frame.last_access = ++access_clock_;
}

Result<bool> BufferPool::EvictOne() {
  // LRU-K (K=2) victim: frames referenced fewer than K times have infinite
  // backward K-distance and go first (ties: older last access, then
  // smaller page id); otherwise the frame with the oldest K-th-most-recent
  // access loses. The scan order is the frame vector, so selection is a
  // pure function of the access history — never of hash-map layout.
  Frame* victim = nullptr;
  for (const auto& frame_ptr : frames_) {
    Frame& f = *frame_ptr;
    if (!f.in_use || f.pin_count > 0) {
      continue;
    }
    if (victim == nullptr) {
      victim = &f;
      continue;
    }
    bool f_inf = f.prev_access == 0;
    bool v_inf = victim->prev_access == 0;
    bool better;
    if (f_inf != v_inf) {
      better = f_inf;  // Infinite distance evicts first.
    } else if (f_inf) {
      better = f.last_access != victim->last_access
                   ? f.last_access < victim->last_access
                   : f.pid < victim->pid;
    } else if (f.prev_access != victim->prev_access) {
      better = f.prev_access < victim->prev_access;
    } else if (f.last_access != victim->last_access) {
      better = f.last_access < victim->last_access;
    } else {
      better = f.pid < victim->pid;
    }
    if (better) {
      victim = &f;
    }
  }
  if (victim == nullptr) {
    return false;
  }
  if (victim->dirty) {
    DFLOW_RETURN_IF_ERROR(WriteBack(*victim));
  }
  size_t idx = page_table_.at(victim->pid);
  page_table_.erase(victim->pid);
  eviction_log_.push_back(victim->pid);
  ++stats_.evictions;
  Bump(obs_.evictions);
  victim->in_use = false;
  victim->page = Page();
  free_frames_.push_back(idx);
  return true;
}

Status BufferPool::WriteBack(Frame& frame) {
  uint64_t page_lsn = frame.page.lsn();
  if (page_lsn > 0 && ensure_durable_) {
    // WAL-before-page: the log record that produced this image must be
    // durable before the image itself can reach the store.
    DFLOW_RETURN_IF_ERROR(ensure_durable_(page_lsn));
  }
  if (writeback_probe_) {
    writeback_probe_(frame.pid, page_lsn,
                     durable_lsn_ ? durable_lsn_() : 0);
  }
  int64_t start_us = 0;
  bool traced = tracer_ != nullptr && tracer_->enabled();
  if (traced) {
    start_us = tracer_->NowUs();
  }
  DFLOW_RETURN_IF_ERROR(store_->Write(frame.pid, frame.page.Image(),
                                      page_lsn));
  if (traced) {
    int64_t end_us = tracer_->NowUs();
    tracer_->CompleteEvent("db.pool.writeback", "db", start_us,
                           end_us - start_us,
                           {{"pid", std::to_string(frame.pid)}});
  }
  frame.dirty = false;
  ++stats_.writebacks;
  Bump(obs_.writebacks);
  return Status::OK();
}

void BufferPool::TrimToBound() {
  if (options_.max_frames == 0) {
    return;
  }
  while (page_table_.size() > options_.max_frames) {
    auto evicted = EvictOne();
    if (!evicted.ok() || !*evicted) {
      break;  // All pinned (transient overflow) or store error; stop.
    }
  }
}

size_t BufferPool::AcquireFrameSlot() {
  if (!free_frames_.empty()) {
    size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  frames_.push_back(std::make_unique<Frame>());
  return frames_.size() - 1;
}

Result<uint32_t> BufferPool::Allocate() {
  // Make room first so the new frame itself never gets picked as victim.
  if (options_.max_frames != 0 &&
      page_table_.size() >= options_.max_frames) {
    DFLOW_RETURN_IF_ERROR(EvictOne().status());
  }
  uint32_t pid;
  if (!free_pids_.empty()) {
    pid = *free_pids_.begin();
    free_pids_.erase(free_pids_.begin());
  } else {
    DFLOW_CHECK(next_pid_ < std::numeric_limits<uint32_t>::max());
    pid = next_pid_++;
  }
  size_t idx = AcquireFrameSlot();
  Frame& frame = *frames_[idx];
  frame.pid = pid;
  frame.page = Page();
  frame.pin_count = 0;
  frame.dirty = true;  // Must reach the store even if never re-touched.
  frame.in_use = true;
  frame.last_access = 0;
  frame.prev_access = 0;
  if (current_lsn_) {
    uint64_t lsn = current_lsn_();
    if (lsn > 0) {
      frame.page.set_lsn(lsn);
    }
  }
  Touch(frame);
  page_table_[pid] = idx;
  ++stats_.allocations;
  Bump(obs_.allocations);
  return pid;
}

Status BufferPool::Free(uint32_t pid) {
  if (pid >= next_pid_ || free_pids_.count(pid) > 0) {
    return Status::InvalidArgument("free of unallocated page id");
  }
  auto it = page_table_.find(pid);
  if (it != page_table_.end()) {
    Frame& frame = *frames_[it->second];
    if (frame.pin_count > 0) {
      return Status::FailedPrecondition("cannot free a pinned page");
    }
    frame.in_use = false;
    frame.page = Page();
    free_frames_.push_back(it->second);
    page_table_.erase(it);
  }
  free_pids_.insert(pid);
  ++stats_.frees;
  Bump(obs_.frees);
  return Status::OK();
}

Result<BufferPool::PageRef> BufferPool::Pin(uint32_t pid) {
  auto it = page_table_.find(pid);
  if (it != page_table_.end()) {
    Frame& frame = *frames_[it->second];
    Touch(frame);
    ++frame.pin_count;
    ++stats_.hits;
    Bump(obs_.hits);
    return PageRef(this, it->second);
  }
  // Miss: fetch from the store into a frame.
  ++stats_.misses;
  Bump(obs_.misses);
  if (options_.max_frames != 0 &&
      page_table_.size() >= options_.max_frames) {
    DFLOW_RETURN_IF_ERROR(EvictOne().status());
  }
  int64_t start_us = 0;
  bool traced = tracer_ != nullptr && tracer_->enabled();
  if (traced) {
    start_us = tracer_->NowUs();
  }
  std::string image;
  DFLOW_ASSIGN_OR_RETURN(uint64_t lsn, store_->Read(pid, &image));
  DFLOW_ASSIGN_OR_RETURN(Page page, Page::FromImage(image));
  (void)lsn;  // The authoritative LSN rides inside the page header.
  if (traced) {
    int64_t end_us = tracer_->NowUs();
    tracer_->CompleteEvent("db.pool.fetch", "db", start_us,
                           end_us - start_us,
                           {{"pid", std::to_string(pid)}});
  }
  size_t idx = AcquireFrameSlot();
  Frame& frame = *frames_[idx];
  frame.pid = pid;
  frame.page = std::move(page);
  frame.pin_count = 1;
  frame.dirty = false;
  frame.in_use = true;
  frame.last_access = 0;
  frame.prev_access = 0;
  Touch(frame);
  page_table_[pid] = idx;
  return PageRef(this, idx);
}

Status BufferPool::FlushAll() {
  for (const auto& frame_ptr : frames_) {
    Frame& frame = *frame_ptr;
    if (frame.in_use && frame.dirty) {
      DFLOW_RETURN_IF_ERROR(WriteBack(frame));
    }
  }
  return Status::OK();
}

}  // namespace dflow::db
