#include "db/value.h"

#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace dflow::db {

std::string_view TypeToString(Type t) {
  switch (t) {
    case Type::kNull:
      return "NULL";
    case Type::kBool:
      return "BOOL";
    case Type::kInt64:
      return "INT";
    case Type::kDouble:
      return "DOUBLE";
    case Type::kString:
      return "STRING";
  }
  return "?";
}

Type Value::type() const {
  return static_cast<Type>(data_.index());
}

bool Value::AsBool() const {
  DFLOW_CHECK(type() == Type::kBool) << "Value is " << TypeToString(type());
  return std::get<bool>(data_);
}

int64_t Value::AsInt() const {
  DFLOW_CHECK(type() == Type::kInt64) << "Value is " << TypeToString(type());
  return std::get<int64_t>(data_);
}

double Value::AsDouble() const {
  if (type() == Type::kInt64) {
    return static_cast<double>(std::get<int64_t>(data_));
  }
  DFLOW_CHECK(type() == Type::kDouble) << "Value is " << TypeToString(type());
  return std::get<double>(data_);
}

const std::string& Value::AsString() const {
  DFLOW_CHECK(type() == Type::kString) << "Value is " << TypeToString(type());
  return std::get<std::string>(data_);
}

namespace {
// Rank for cross-type ordering: NULL < bool < numeric < string.
int TypeRank(Type t) {
  switch (t) {
    case Type::kNull:
      return 0;
    case Type::kBool:
      return 1;
    case Type::kInt64:
    case Type::kDouble:
      return 2;
    case Type::kString:
      return 3;
  }
  return 4;
}
}  // namespace

int Value::Compare(const Value& other) const {
  int ra = TypeRank(type());
  int rb = TypeRank(other.type());
  if (ra != rb) {
    return ra < rb ? -1 : 1;
  }
  switch (type()) {
    case Type::kNull:
      return 0;
    case Type::kBool: {
      bool a = AsBool(), b = other.AsBool();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case Type::kInt64:
    case Type::kDouble: {
      if (type() == Type::kInt64 && other.type() == Type::kInt64) {
        int64_t a = AsInt(), b = other.AsInt();
        return a == b ? 0 : (a < b ? -1 : 1);
      }
      double a = AsDouble(), b = other.AsDouble();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case Type::kString:
      return AsString().compare(other.AsString()) < 0
                 ? -1
                 : (AsString() == other.AsString() ? 0 : 1);
  }
  return 0;
}

void Value::EncodeTo(ByteWriter& w) const {
  w.PutU8(static_cast<uint8_t>(type()));
  switch (type()) {
    case Type::kNull:
      break;
    case Type::kBool:
      w.PutU8(AsBool() ? 1 : 0);
      break;
    case Type::kInt64:
      // ZigZag varint: small ids and counters (the common case) take one
      // byte on a heap page instead of eight.
      w.PutVarintSigned(AsInt());
      break;
    case Type::kDouble:
      w.PutDouble(std::get<double>(data_));
      break;
    case Type::kString:
      w.PutString(AsString());
      break;
  }
}

Result<Value> Value::DecodeFrom(ByteReader& r) {
  DFLOW_ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
  switch (static_cast<Type>(tag)) {
    case Type::kNull:
      return Value::Null();
    case Type::kBool: {
      DFLOW_ASSIGN_OR_RETURN(uint8_t v, r.GetU8());
      return Value::Bool(v != 0);
    }
    case Type::kInt64: {
      DFLOW_ASSIGN_OR_RETURN(int64_t v, r.GetVarintSigned());
      return Value::Int(v);
    }
    case Type::kDouble: {
      DFLOW_ASSIGN_OR_RETURN(double v, r.GetDouble());
      return Value::Double(v);
    }
    case Type::kString: {
      DFLOW_ASSIGN_OR_RETURN(std::string v, r.GetString());
      return Value::String(std::move(v));
    }
  }
  return Status::Corruption("unknown value type tag");
}

std::string Value::ToString() const {
  switch (type()) {
    case Type::kNull:
      return "NULL";
    case Type::kBool:
      return AsBool() ? "TRUE" : "FALSE";
    case Type::kInt64: {
      std::ostringstream os;
      os << AsInt();
      return os.str();
    }
    case Type::kDouble: {
      std::ostringstream os;
      os << std::get<double>(data_);
      return os.str();
    }
    case Type::kString:
      return AsString();
  }
  return "?";
}

uint64_t Value::Hash() const {
  // FNV-1a over the encoded form, with the type tag folded in so that
  // Int(1) and Bool(true) hash differently.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  h ^= static_cast<uint64_t>(type());
  h *= 1099511628211ull;
  switch (type()) {
    case Type::kNull:
      break;
    case Type::kBool:
      mix(AsBool() ? 1 : 0);
      break;
    case Type::kInt64:
      mix(static_cast<uint64_t>(AsInt()));
      break;
    case Type::kDouble: {
      // Hash numerics by double bit pattern so 1 and 1.0 group together.
      double d = AsDouble();
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      mix(bits);
      break;
    }
    case Type::kString:
      for (char c : AsString()) {
        h ^= static_cast<uint8_t>(c);
        h *= 1099511628211ull;
      }
      break;
  }
  return h;
}

}  // namespace dflow::db
