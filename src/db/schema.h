#ifndef DFLOW_DB_SCHEMA_H_
#define DFLOW_DB_SCHEMA_H_

#include <string>
#include <vector>

#include "db/value.h"
#include "util/result.h"

namespace dflow::db {

/// One column of a table: name, declared type, nullability.
struct Column {
  std::string name;
  Type type = Type::kInt64;
  bool nullable = true;
};

/// A tuple; values are positionally matched to a Schema.
using Row = std::vector<Value>;

/// Ordered list of columns describing a table or an intermediate operator
/// output.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t NumColumns() const { return columns_.size(); }
  const Column& ColumnAt(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of `name`, or NotFound. Name comparison is case-insensitive,
  /// matching the SQL layer. Joined schemas carry qualified column names
  /// ("table.column"); lookup falls back both ways: an unqualified query
  /// name matches a unique ".name" suffix, and a qualified query name whose
  /// exact form is absent matches its unqualified tail. Ambiguous matches
  /// are an error.
  Result<size_t> IndexOf(std::string_view name) const;

  /// Checks arity, column types (kInt64 widens to kDouble targets), and
  /// nullability of `row` against this schema. Returns the row with any
  /// widening applied.
  Result<Row> ValidateRow(Row row) const;

  /// Serialization for the WAL and catalogs.
  void EncodeTo(ByteWriter& w) const;
  static Result<Schema> DecodeFrom(ByteReader& r);

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

/// Serializes a full row (column count + values).
void EncodeRow(const Row& row, ByteWriter& w);
Result<Row> DecodeRow(ByteReader& r);

}  // namespace dflow::db

#endif  // DFLOW_DB_SCHEMA_H_
