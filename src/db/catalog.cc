#include "db/catalog.h"

#include "util/strings.h"

namespace dflow::db {

IndexInfo* TableInfo::FindIndexOnColumn(std::string_view column) const {
  std::string lower = ToLower(column);
  // Strip any "table." qualifier.
  size_t dot = lower.rfind('.');
  if (dot != std::string::npos) {
    lower = lower.substr(dot + 1);
  }
  for (const auto& index : indexes) {
    if (ToLower(index->column) == lower) {
      return index.get();
    }
  }
  return nullptr;
}

Status Catalog::AddTable(std::string name, Schema schema) {
  std::string key = ToLower(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  auto info = std::make_unique<TableInfo>();
  info->name = std::move(name);
  info->heap = std::make_unique<HeapTable>(std::move(schema), pool_);
  tables_[key] = std::move(info);
  return Status::OK();
}

Status Catalog::DropTable(std::string_view name) {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + std::string(name) + "'");
  }
  tables_.erase(it);
  return Status::OK();
}

TableInfo* Catalog::Find(std::string_view name) const {
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

Result<TableInfo*> Catalog::Get(std::string_view name) const {
  TableInfo* info = Find(name);
  if (info == nullptr) {
    return Status::NotFound("no table named '" + std::string(name) + "'");
  }
  return info;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, info] : tables_) {
    names.push_back(info->name);
  }
  return names;
}

int64_t Catalog::TotalBytes() const {
  int64_t total = 0;
  for (const auto& [key, info] : tables_) {
    total += info->heap->SizeBytes();
  }
  return total;
}

}  // namespace dflow::db
