#ifndef DFLOW_DB_PAGE_H_
#define DFLOW_DB_PAGE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace dflow::db {

inline constexpr size_t kPageSize = 8192;

/// A slotted heap page: a slot directory grows downward from the header
/// while record payloads grow upward from the end of the page. Deleting a
/// record tombstones its slot (slot numbers are stable, so RowIds stored in
/// indexes stay valid); the space is reclaimed by Compact().
///
/// The page image is self-describing: the first 16 bytes are a header
///   [u16 magic][u16 num_slots][u16 payload_start][u16 reserved][u64 lsn]
/// kept in sync with the in-memory mirrors on every mutation, so an evicted
/// page written to a PageStore can be rehydrated byte-for-byte by
/// FromImage(). The LSN field records the WAL sequence number of the last
/// mutation that dirtied the page (the WAL-before-page contract: the buffer
/// pool must not write a page image whose LSN exceeds the durable WAL LSN).
class Page {
 public:
  Page();

  /// Rehydrates a page from an 8 KB image previously produced by Image().
  /// Validates the header magic and every slot's bounds; Corruption on any
  /// violation (torn or bit-rotted images must never crash the engine).
  static Result<Page> FromImage(std::string_view image);

  /// Inserts a record; returns its slot number, or ResourceExhausted if the
  /// page cannot fit `record` plus a slot entry.
  Result<uint16_t> Insert(std::string_view record);

  /// Returns the record in `slot`, or NotFound if it was deleted / never
  /// existed.
  Result<std::string_view> Get(uint16_t slot) const;

  /// Tombstones `slot`. NotFound if already deleted.
  Status Delete(uint16_t slot);

  /// Replaces the record in `slot`. If the new record does not fit in place
  /// or in the page's free space, returns ResourceExhausted (caller then
  /// deletes + reinserts elsewhere).
  Status Update(uint16_t slot, std::string_view record);

  uint16_t num_slots() const { return num_slots_; }
  size_t FreeBytes() const;
  int64_t live_records() const { return live_records_; }

  /// Page LSN: sequence number of the last WAL record covering a mutation
  /// of this page (0 = never logged). Stored in the header image.
  uint64_t lsn() const;
  void set_lsn(uint64_t lsn);

  /// Rewrites payloads to squeeze out holes left by deletes/updates. Slot
  /// numbers are preserved.
  void Compact();

  /// Raw page image (for checksumming / persistence).
  std::string_view Image() const {
    return std::string_view(data_.data(), data_.size());
  }

 private:
  struct Slot {
    uint16_t offset;  // 0xffff means tombstone.
    uint16_t length;
  };

  Slot GetSlot(uint16_t i) const;
  void SetSlot(uint16_t i, Slot s);
  /// Mirrors num_slots_ / payload_start_ into the header bytes.
  void StoreHeader();

  static constexpr uint16_t kTombstone = 0xffff;
  static constexpr uint16_t kMagic = 0x5044;  // "PD": paged dflow.
  static constexpr size_t kHeaderSize = 16;
  static constexpr size_t kSlotSize = 4;
  static constexpr size_t kLsnOffset = 8;

  std::vector<char> data_;
  uint16_t num_slots_ = 0;
  uint16_t payload_start_;  // Lowest byte offset used by payloads.
  int64_t live_records_ = 0;
};

}  // namespace dflow::db

#endif  // DFLOW_DB_PAGE_H_
