#ifndef DFLOW_DB_WAL_H_
#define DFLOW_DB_WAL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "util/result.h"

namespace dflow::db {

/// Physical operations recorded in the write-ahead log. Mutations between
/// kBegin and kCommit are atomic: recovery applies only complete
/// transactions, so a crash mid-transaction (or a torn tail record) rolls
/// back cleanly. This is the mechanism behind the EventStore merge bench:
/// merging a personal store is one short transaction instead of a
/// long-lived open one.
enum class WalOp : uint8_t {
  kBegin = 1,
  kCommit = 2,
  kCreateTable = 3,
  kCreateIndex = 4,
  kDropTable = 5,
  kInsert = 6,
  kDelete = 7,
  kUpdate = 8,
};

/// Appends length+CRC framed records to a log file.
class WalWriter {
 public:
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens `path` for appending (creates it if missing).
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path);

  Status Append(std::string_view payload);
  Status Sync();

  int64_t bytes_written() const { return bytes_written_; }

  /// LSNs: each Append gets sequence number last_lsn()+1 (per-session
  /// record counter); durable_lsn() is the highest LSN known flushed to the
  /// medium. The buffer pool's WAL-before-page barrier is
  /// EnsureDurable(page_lsn): a no-op when already durable, else a Sync.
  uint64_t last_lsn() const { return last_lsn_; }
  uint64_t durable_lsn() const { return durable_lsn_; }
  Status EnsureDurable(uint64_t lsn);

  /// Seeds the LSN counter after recovery replay, so LSNs stay contiguous
  /// with the records already in the log.
  void set_last_lsn(uint64_t lsn) {
    last_lsn_ = lsn;
    durable_lsn_ = lsn;
  }

 private:
  explicit WalWriter(std::FILE* file) : file_(file) {}

  std::FILE* file_;
  int64_t bytes_written_ = 0;
  uint64_t last_lsn_ = 0;
  uint64_t durable_lsn_ = 0;
};

/// Reads every intact record from a log file. A torn or corrupt tail
/// record terminates the scan silently (standard WAL recovery semantics);
/// corruption *before* the tail also just stops the scan, and the caller
/// sees fewer records.
Result<std::vector<std::string>> WalReadAll(const std::string& path);

}  // namespace dflow::db

#endif  // DFLOW_DB_WAL_H_
