#ifndef DFLOW_DB_WAL_H_
#define DFLOW_DB_WAL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "util/result.h"

namespace dflow::db {

/// Physical operations recorded in the write-ahead log. Mutations between
/// kBegin and kCommit are atomic: recovery applies only complete
/// transactions, so a crash mid-transaction (or a torn tail record) rolls
/// back cleanly. This is the mechanism behind the EventStore merge bench:
/// merging a personal store is one short transaction instead of a
/// long-lived open one.
enum class WalOp : uint8_t {
  kBegin = 1,
  kCommit = 2,
  kCreateTable = 3,
  kCreateIndex = 4,
  kDropTable = 5,
  kInsert = 6,
  kDelete = 7,
  kUpdate = 8,
};

/// Appends length+CRC framed records to a log file.
class WalWriter {
 public:
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens `path` for appending (creates it if missing).
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path);

  Status Append(std::string_view payload);
  Status Sync();

  int64_t bytes_written() const { return bytes_written_; }

 private:
  explicit WalWriter(std::FILE* file) : file_(file) {}

  std::FILE* file_;
  int64_t bytes_written_ = 0;
};

/// Reads every intact record from a log file. A torn or corrupt tail
/// record terminates the scan silently (standard WAL recovery semantics);
/// corruption *before* the tail also just stops the scan, and the caller
/// sees fewer records.
Result<std::vector<std::string>> WalReadAll(const std::string& path);

}  // namespace dflow::db

#endif  // DFLOW_DB_WAL_H_
