#include "db/database.h"

#include <cstdio>

#include "util/byte_buffer.h"
#include "util/logging.h"

namespace dflow::db {

namespace {

// Varint-coded: most tables are small, so page/slot are usually one byte
// each instead of a fixed six.
void EncodeRowId(ByteWriter& w, RowId rid) {
  w.PutVarint(rid.page);
  w.PutVarint(rid.slot);
}

Result<RowId> DecodeRowId(ByteReader& r) {
  DFLOW_ASSIGN_OR_RETURN(uint64_t page, r.GetVarint());
  DFLOW_ASSIGN_OR_RETURN(uint64_t slot, r.GetVarint());
  if (page > 0xffffffffu || slot > 0xffffu) {
    return Status::Corruption("row id out of range");
  }
  return RowId{static_cast<uint32_t>(page), static_cast<uint16_t>(slot)};
}

}  // namespace

Database::Database(DatabaseOptions options, std::unique_ptr<PageStore> store)
    : pool_(std::make_unique<BufferPool>(BufferPoolOptions{options.pool_frames},
                                         std::move(store))),
      catalog_(pool_.get()) {
  // LSN plumbing reads through wal_ at call time: wal_ is null for volatile
  // databases (pages stay LSN 0, no barrier) and is swapped by Checkpoint.
  pool_->SetWal(
      [this] { return wal_ != nullptr ? wal_->last_lsn() : 0; },
      [this] { return wal_ != nullptr ? wal_->durable_lsn() : 0; },
      [this](uint64_t lsn) {
        return wal_ != nullptr ? wal_->EnsureDurable(lsn) : Status::OK();
      });
}

Database::Database() : Database(DatabaseOptions{}) {}

Database::Database(DatabaseOptions options)
    : Database(options, std::make_unique<MemPageStore>()) {}

Result<std::unique_ptr<Database>> Database::Open(const std::string& path,
                                                 DatabaseOptions options) {
  DFLOW_ASSIGN_OR_RETURN(auto store, FilePageStore::Create(path + ".pages"));
  auto db =
      std::unique_ptr<Database>(new Database(options, std::move(store)));
  DFLOW_RETURN_IF_ERROR(db->Recover(path));
  DFLOW_ASSIGN_OR_RETURN(db->wal_, WalWriter::Open(path));
  db->wal_path_ = path;
  // Seed LSNs past the replayed records so page stamps stay monotone with
  // the log (replayed pages carry LSN 0: their records are already
  // durable, no barrier needed).
  db->wal_->set_last_lsn(db->recovered_lsn_);
  return db;
}

Status Database::Recover(const std::string& path) {
  auto records = WalReadAll(path);
  if (!records.ok()) {
    if (records.status().IsNotFound()) {
      return Status::OK();  // Fresh database.
    }
    return records.status();
  }
  replaying_ = true;
  recovered_lsn_ = records->size();
  std::vector<std::string> txn_buffer;
  bool in_txn = false;
  for (const std::string& payload : *records) {
    if (payload.empty()) {
      continue;
    }
    WalOp op = static_cast<WalOp>(static_cast<uint8_t>(payload[0]));
    if (op == WalOp::kBegin) {
      txn_buffer.clear();
      in_txn = true;
    } else if (op == WalOp::kCommit) {
      for (const std::string& buffered : txn_buffer) {
        Status s = ReplayRecord(buffered);
        if (!s.ok()) {
          replaying_ = false;
          return s;
        }
      }
      txn_buffer.clear();
      in_txn = false;
    } else if (in_txn) {
      txn_buffer.push_back(payload);
    }
    // Records outside begin/commit should not occur (every commit is
    // framed); ignore them defensively, matching torn-tail semantics.
  }
  replaying_ = false;
  return Status::OK();
}

Status Database::ReplayRecord(std::string_view payload) {
  ByteReader r(payload);
  DFLOW_ASSIGN_OR_RETURN(uint8_t op_byte, r.GetU8());
  switch (static_cast<WalOp>(op_byte)) {
    case WalOp::kCreateTable: {
      DFLOW_ASSIGN_OR_RETURN(std::string name, r.GetString());
      DFLOW_ASSIGN_OR_RETURN(Schema schema, Schema::DecodeFrom(r));
      CreateTableStmt stmt{std::move(name), schema.columns()};
      return ApplyCreateTable(stmt, /*log=*/false);
    }
    case WalOp::kCreateIndex: {
      CreateIndexStmt stmt;
      DFLOW_ASSIGN_OR_RETURN(stmt.index_name, r.GetString());
      DFLOW_ASSIGN_OR_RETURN(stmt.table, r.GetString());
      DFLOW_ASSIGN_OR_RETURN(stmt.column, r.GetString());
      return ApplyCreateIndex(stmt, /*log=*/false);
    }
    case WalOp::kDropTable: {
      DropTableStmt stmt;
      DFLOW_ASSIGN_OR_RETURN(stmt.table, r.GetString());
      return ApplyDropTable(stmt, /*log=*/false);
    }
    case WalOp::kInsert: {
      DFLOW_ASSIGN_OR_RETURN(std::string table_name, r.GetString());
      DFLOW_ASSIGN_OR_RETURN(Row row, DecodeRow(r));
      DFLOW_ASSIGN_OR_RETURN(TableInfo * table, catalog_.Get(table_name));
      return ApplyInsertRow(table, std::move(row), /*log=*/false);
    }
    case WalOp::kDelete: {
      DFLOW_ASSIGN_OR_RETURN(std::string table_name, r.GetString());
      DFLOW_ASSIGN_OR_RETURN(RowId rid, DecodeRowId(r));
      DFLOW_ASSIGN_OR_RETURN(TableInfo * table, catalog_.Get(table_name));
      DFLOW_ASSIGN_OR_RETURN(Row row, table->heap->Get(rid));
      IndexRemove(table, row, rid);
      return table->heap->Delete(rid);
    }
    case WalOp::kUpdate: {
      DFLOW_ASSIGN_OR_RETURN(std::string table_name, r.GetString());
      DFLOW_ASSIGN_OR_RETURN(RowId rid, DecodeRowId(r));
      DFLOW_ASSIGN_OR_RETURN(Row new_row, DecodeRow(r));
      DFLOW_ASSIGN_OR_RETURN(TableInfo * table, catalog_.Get(table_name));
      DFLOW_ASSIGN_OR_RETURN(Row old_row, table->heap->Get(rid));
      IndexRemove(table, old_row, rid);
      DFLOW_ASSIGN_OR_RETURN(RowId new_rid,
                             table->heap->Update(rid, new_row));
      IndexInsert(table, new_row, new_rid);
      return Status::OK();
    }
    default:
      return Status::Corruption("unknown WAL op");
  }
}

Status Database::LogRecord(std::string payload) {
  if (wal_ == nullptr || replaying_) {
    return Status::OK();
  }
  return wal_->Append(payload);
}

Result<QueryResult> Database::Execute(std::string_view sql) {
  DFLOW_ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  return Dispatch(std::move(stmt));
}

Result<QueryResult> Database::Dispatch(Statement stmt) {
  QueryResult result;
  if (auto* select = std::get_if<SelectStmt>(&stmt)) {
    return ExecuteSelect(catalog_, *select);
  }
  if (std::get_if<BeginStmt>(&stmt) != nullptr) {
    DFLOW_RETURN_IF_ERROR(Begin());
    return result;
  }
  if (std::get_if<CommitStmt>(&stmt) != nullptr) {
    DFLOW_RETURN_IF_ERROR(Commit());
    return result;
  }
  if (std::get_if<RollbackStmt>(&stmt) != nullptr) {
    DFLOW_RETURN_IF_ERROR(Rollback());
    return result;
  }
  if (auto* create = std::get_if<CreateTableStmt>(&stmt)) {
    // DDL is not transactional; applied immediately.
    DFLOW_RETURN_IF_ERROR(ApplyCreateTable(*create, /*log=*/true));
    return result;
  }
  if (auto* index = std::get_if<CreateIndexStmt>(&stmt)) {
    DFLOW_RETURN_IF_ERROR(ApplyCreateIndex(*index, /*log=*/true));
    return result;
  }
  if (auto* drop = std::get_if<DropTableStmt>(&stmt)) {
    DFLOW_RETURN_IF_ERROR(ApplyDropTable(*drop, /*log=*/true));
    return result;
  }
  if (auto* insert = std::get_if<InsertStmt>(&stmt)) {
    InsertStmt owned = std::move(*insert);
    DFLOW_ASSIGN_OR_RETURN(
        result.affected,
        RunOrBuffer([this, owned] { return ApplyInsert(owned, true); }));
    return result;
  }
  if (auto* update = std::get_if<UpdateStmt>(&stmt)) {
    UpdateStmt owned = std::move(*update);
    DFLOW_ASSIGN_OR_RETURN(
        result.affected,
        RunOrBuffer([this, owned] { return ApplyUpdate(owned, true); }));
    return result;
  }
  if (auto* del = std::get_if<DeleteStmt>(&stmt)) {
    DeleteStmt owned = std::move(*del);
    DFLOW_ASSIGN_OR_RETURN(
        result.affected,
        RunOrBuffer([this, owned] { return ApplyDelete(owned, true); }));
    return result;
  }
  return Status::Internal("unhandled statement kind");
}

Result<int64_t> Database::RunOrBuffer(std::function<Result<int64_t>()> op) {
  if (in_txn_) {
    pending_.push_back(std::move(op));
    return int64_t{0};  // Affected count is unknown until COMMIT.
  }
  // Autocommit: frame the single op as a transaction.
  ByteWriter begin_record, commit_record;
  begin_record.PutU8(static_cast<uint8_t>(WalOp::kBegin));
  commit_record.PutU8(static_cast<uint8_t>(WalOp::kCommit));
  DFLOW_RETURN_IF_ERROR(LogRecord(begin_record.Take()));
  DFLOW_ASSIGN_OR_RETURN(int64_t affected, op());
  DFLOW_RETURN_IF_ERROR(LogRecord(commit_record.Take()));
  if (wal_ != nullptr) {
    DFLOW_RETURN_IF_ERROR(wal_->Sync());
  }
  return affected;
}

Status Database::Begin() {
  if (in_txn_) {
    return Status::FailedPrecondition("transaction already open");
  }
  in_txn_ = true;
  pending_.clear();
  return Status::OK();
}

Status Database::Commit() {
  if (!in_txn_) {
    return Status::FailedPrecondition("no open transaction");
  }
  in_txn_ = false;
  ByteWriter begin_record, commit_record;
  begin_record.PutU8(static_cast<uint8_t>(WalOp::kBegin));
  commit_record.PutU8(static_cast<uint8_t>(WalOp::kCommit));
  DFLOW_RETURN_IF_ERROR(LogRecord(begin_record.Take()));
  for (auto& op : pending_) {
    DFLOW_ASSIGN_OR_RETURN(int64_t ignored, op());
    (void)ignored;
  }
  pending_.clear();
  DFLOW_RETURN_IF_ERROR(LogRecord(commit_record.Take()));
  if (wal_ != nullptr) {
    return wal_->Sync();
  }
  return Status::OK();
}

Status Database::Rollback() {
  if (!in_txn_) {
    return Status::FailedPrecondition("no open transaction");
  }
  in_txn_ = false;
  pending_.clear();
  return Status::OK();
}

Status Database::Checkpoint() {
  if (in_txn_) {
    return Status::FailedPrecondition("cannot checkpoint in a transaction");
  }
  // Vacuum: rebuild every table (compacting tombstones) and its indexes in
  // insertion order. The rebuilt in-memory rowids are by construction the
  // rowids that replaying the snapshot produces, so later physical WAL
  // records stay valid after recovery.
  Catalog compacted(pool_.get());
  for (const std::string& name : catalog_.TableNames()) {
    TableInfo* old_table = catalog_.Find(name);
    DFLOW_RETURN_IF_ERROR(
        compacted.AddTable(old_table->name, old_table->heap->schema()));
    TableInfo* new_table = compacted.Find(name);
    Status copy = Status::OK();
    DFLOW_RETURN_IF_ERROR(
        old_table->heap->ForEach([&](RowId, const Row& row) {
          auto rid = new_table->heap->Insert(row);
          if (!rid.ok()) {
            copy = rid.status();
            return false;
          }
          return true;
        }));
    DFLOW_RETURN_IF_ERROR(copy);
    for (const auto& old_index : old_table->indexes) {
      auto info = std::make_unique<IndexInfo>();
      info->name = old_index->name;
      info->column = old_index->column;
      info->column_index = old_index->column_index;
      info->tree = std::make_unique<BTreeIndex>();
      DFLOW_RETURN_IF_ERROR(
          new_table->heap->ForEach([&](RowId rid, const Row& row) {
            info->tree->Insert(row[info->column_index], rid);
            return true;
          }));
      new_table->indexes.push_back(std::move(info));
    }
  }

  if (wal_ != nullptr) {
    // Rewrite the log as a single snapshot transaction, atomically.
    std::string tmp_path = wal_path_ + ".ckpt";
    std::remove(tmp_path.c_str());
    {
      DFLOW_ASSIGN_OR_RETURN(auto writer, WalWriter::Open(tmp_path));
      ByteWriter begin_record, commit_record;
      begin_record.PutU8(static_cast<uint8_t>(WalOp::kBegin));
      commit_record.PutU8(static_cast<uint8_t>(WalOp::kCommit));
      DFLOW_RETURN_IF_ERROR(writer->Append(begin_record.data()));
      for (const std::string& name : compacted.TableNames()) {
        TableInfo* table = compacted.Find(name);
        ByteWriter create;
        create.PutU8(static_cast<uint8_t>(WalOp::kCreateTable));
        create.PutString(table->name);
        table->heap->schema().EncodeTo(create);
        DFLOW_RETURN_IF_ERROR(writer->Append(create.data()));
        for (const auto& index : table->indexes) {
          ByteWriter create_index;
          create_index.PutU8(static_cast<uint8_t>(WalOp::kCreateIndex));
          create_index.PutString(index->name);
          create_index.PutString(table->name);
          create_index.PutString(index->column);
          DFLOW_RETURN_IF_ERROR(writer->Append(create_index.data()));
        }
        Status append = Status::OK();
        DFLOW_RETURN_IF_ERROR(
            table->heap->ForEach([&](RowId, const Row& row) {
              ByteWriter insert;
              insert.PutU8(static_cast<uint8_t>(WalOp::kInsert));
              insert.PutString(table->name);
              EncodeRow(row, insert);
              append = writer->Append(insert.data());
              return append.ok();
            }));
        DFLOW_RETURN_IF_ERROR(append);
      }
      DFLOW_RETURN_IF_ERROR(writer->Append(commit_record.data()));
      DFLOW_RETURN_IF_ERROR(writer->Sync());
    }
    uint64_t old_lsn = wal_->last_lsn();
    wal_.reset();  // Close the old log before replacing it.
    if (std::rename(tmp_path.c_str(), wal_path_.c_str()) != 0) {
      // Reopen the old log so the database stays durable.
      DFLOW_ASSIGN_OR_RETURN(wal_, WalWriter::Open(wal_path_));
      wal_->set_last_lsn(old_lsn);
      return Status::IOError("checkpoint rename failed");
    }
    DFLOW_ASSIGN_OR_RETURN(wal_, WalWriter::Open(wal_path_));
    // Keep LSNs monotone across the swap: resident pages stamped under the
    // old log must never look "ahead" of the new one (their content is
    // fully covered by the just-synced snapshot).
    wal_->set_last_lsn(old_lsn);
  }

  catalog_ = std::move(compacted);
  return Status::OK();
}

Status Database::CreateTable(std::string name, Schema schema) {
  CreateTableStmt stmt{std::move(name), schema.columns()};
  return ApplyCreateTable(stmt, /*log=*/true);
}

Status Database::CreateIndex(std::string index_name, const std::string& table,
                             const std::string& column) {
  CreateIndexStmt stmt{std::move(index_name), table, column};
  return ApplyCreateIndex(stmt, /*log=*/true);
}

Status Database::Insert(const std::string& table, Row row) {
  auto op = [this, table, row]() -> Result<int64_t> {
    DFLOW_ASSIGN_OR_RETURN(TableInfo * info, catalog_.Get(table));
    DFLOW_RETURN_IF_ERROR(ApplyInsertRow(info, row, /*log=*/true));
    return int64_t{1};
  };
  DFLOW_ASSIGN_OR_RETURN(int64_t ignored, RunOrBuffer(op));
  (void)ignored;
  return Status::OK();
}

Status Database::InsertMany(const std::string& table, std::vector<Row> rows) {
  bool own_txn = !in_txn_;
  if (own_txn) {
    DFLOW_RETURN_IF_ERROR(Begin());
  }
  for (Row& row : rows) {
    Status s = Insert(table, std::move(row));
    if (!s.ok()) {
      if (own_txn) {
        DFLOW_RETURN_IF_ERROR(Rollback());
      }
      return s;
    }
  }
  if (own_txn) {
    return Commit();
  }
  return Status::OK();
}

Status Database::ApplyCreateTable(const CreateTableStmt& stmt, bool log) {
  DFLOW_RETURN_IF_ERROR(catalog_.AddTable(stmt.table, Schema(stmt.columns)));
  if (log) {
    ByteWriter w;
    w.PutU8(static_cast<uint8_t>(WalOp::kCreateTable));
    w.PutString(stmt.table);
    Schema(stmt.columns).EncodeTo(w);
    // DDL is autocommitted: frame it.
    ByteWriter begin_record, commit_record;
    begin_record.PutU8(static_cast<uint8_t>(WalOp::kBegin));
    commit_record.PutU8(static_cast<uint8_t>(WalOp::kCommit));
    DFLOW_RETURN_IF_ERROR(LogRecord(begin_record.Take()));
    DFLOW_RETURN_IF_ERROR(LogRecord(w.Take()));
    DFLOW_RETURN_IF_ERROR(LogRecord(commit_record.Take()));
  }
  return Status::OK();
}

Status Database::ApplyCreateIndex(const CreateIndexStmt& stmt, bool log) {
  DFLOW_ASSIGN_OR_RETURN(TableInfo * table, catalog_.Get(stmt.table));
  for (const auto& index : table->indexes) {
    if (index->name == stmt.index_name) {
      return Status::AlreadyExists("index '" + stmt.index_name +
                                   "' already exists");
    }
  }
  DFLOW_ASSIGN_OR_RETURN(size_t column_index,
                         table->heap->schema().IndexOf(stmt.column));
  auto info = std::make_unique<IndexInfo>();
  info->name = stmt.index_name;
  info->column = stmt.column;
  info->column_index = column_index;
  info->tree = std::make_unique<BTreeIndex>();
  // Backfill from existing rows.
  DFLOW_RETURN_IF_ERROR(table->heap->ForEach([&](RowId rid, const Row& row) {
    info->tree->Insert(row[column_index], rid);
    return true;
  }));
  table->indexes.push_back(std::move(info));
  if (log) {
    ByteWriter w;
    w.PutU8(static_cast<uint8_t>(WalOp::kCreateIndex));
    w.PutString(stmt.index_name);
    w.PutString(stmt.table);
    w.PutString(stmt.column);
    ByteWriter begin_record, commit_record;
    begin_record.PutU8(static_cast<uint8_t>(WalOp::kBegin));
    commit_record.PutU8(static_cast<uint8_t>(WalOp::kCommit));
    DFLOW_RETURN_IF_ERROR(LogRecord(begin_record.Take()));
    DFLOW_RETURN_IF_ERROR(LogRecord(w.Take()));
    DFLOW_RETURN_IF_ERROR(LogRecord(commit_record.Take()));
  }
  return Status::OK();
}

Status Database::ApplyDropTable(const DropTableStmt& stmt, bool log) {
  Status s = catalog_.DropTable(stmt.table);
  if (!s.ok()) {
    if (stmt.if_exists && s.IsNotFound()) {
      return Status::OK();
    }
    return s;
  }
  if (log) {
    ByteWriter w;
    w.PutU8(static_cast<uint8_t>(WalOp::kDropTable));
    w.PutString(stmt.table);
    ByteWriter begin_record, commit_record;
    begin_record.PutU8(static_cast<uint8_t>(WalOp::kBegin));
    commit_record.PutU8(static_cast<uint8_t>(WalOp::kCommit));
    DFLOW_RETURN_IF_ERROR(LogRecord(begin_record.Take()));
    DFLOW_RETURN_IF_ERROR(LogRecord(w.Take()));
    DFLOW_RETURN_IF_ERROR(LogRecord(commit_record.Take()));
  }
  return Status::OK();
}

void Database::IndexInsert(TableInfo* table, const Row& row, RowId rid) {
  for (const auto& index : table->indexes) {
    index->tree->Insert(row[index->column_index], rid);
  }
}

void Database::IndexRemove(TableInfo* table, const Row& row, RowId rid) {
  for (const auto& index : table->indexes) {
    index->tree->Remove(row[index->column_index], rid);
  }
}

Status Database::ApplyInsertRow(TableInfo* table, Row row, bool log) {
  DFLOW_ASSIGN_OR_RETURN(Row validated,
                         table->heap->schema().ValidateRow(std::move(row)));
  if (log) {
    ByteWriter w;
    w.PutU8(static_cast<uint8_t>(WalOp::kInsert));
    w.PutString(table->name);
    EncodeRow(validated, w);
    DFLOW_RETURN_IF_ERROR(LogRecord(w.Take()));
  }
  DFLOW_ASSIGN_OR_RETURN(RowId rid, table->heap->Insert(validated));
  IndexInsert(table, validated, rid);
  return Status::OK();
}

Result<int64_t> Database::ApplyInsert(const InsertStmt& stmt, bool log) {
  DFLOW_ASSIGN_OR_RETURN(TableInfo * table, catalog_.Get(stmt.table));
  const Schema& schema = table->heap->schema();

  // Map of insert columns -> schema positions (empty = positional).
  std::vector<size_t> positions;
  if (!stmt.columns.empty()) {
    for (const std::string& col : stmt.columns) {
      DFLOW_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(col));
      positions.push_back(idx);
    }
  }

  int64_t affected = 0;
  static const Row kEmptyRow;
  for (const std::vector<ExprPtr>& exprs : stmt.rows) {
    Row row;
    if (positions.empty()) {
      if (exprs.size() != schema.NumColumns()) {
        return Status::InvalidArgument("INSERT arity mismatch");
      }
      for (const ExprPtr& e : exprs) {
        DFLOW_ASSIGN_OR_RETURN(Value v, e->Eval(kEmptyRow));
        row.push_back(std::move(v));
      }
    } else {
      if (exprs.size() != positions.size()) {
        return Status::InvalidArgument("INSERT arity mismatch");
      }
      row.assign(schema.NumColumns(), Value::Null());
      for (size_t i = 0; i < exprs.size(); ++i) {
        DFLOW_ASSIGN_OR_RETURN(Value v, exprs[i]->Eval(kEmptyRow));
        row[positions[i]] = std::move(v);
      }
    }
    DFLOW_RETURN_IF_ERROR(ApplyInsertRow(table, std::move(row), log));
    ++affected;
  }
  return affected;
}

Result<int64_t> Database::ApplyUpdate(const UpdateStmt& stmt, bool log) {
  DFLOW_ASSIGN_OR_RETURN(TableInfo * table, catalog_.Get(stmt.table));
  const Schema& schema = table->heap->schema();
  std::vector<std::pair<size_t, ExprPtr>> assignments;
  for (const auto& [col, expr] : stmt.assignments) {
    DFLOW_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(col));
    DFLOW_RETURN_IF_ERROR(expr->Bind(schema));
    assignments.emplace_back(idx, expr);
  }
  DFLOW_ASSIGN_OR_RETURN(auto matches, CollectMatches(*table, stmt.where));
  int64_t affected = 0;
  for (auto& [rid, row] : matches) {
    Row new_row = row;
    for (const auto& [idx, expr] : assignments) {
      DFLOW_ASSIGN_OR_RETURN(Value v, expr->Eval(row));
      new_row[idx] = std::move(v);
    }
    DFLOW_ASSIGN_OR_RETURN(Row validated,
                           schema.ValidateRow(std::move(new_row)));
    if (log) {
      ByteWriter w;
      w.PutU8(static_cast<uint8_t>(WalOp::kUpdate));
      w.PutString(table->name);
      EncodeRowId(w, rid);
      EncodeRow(validated, w);
      DFLOW_RETURN_IF_ERROR(LogRecord(w.Take()));
    }
    IndexRemove(table, row, rid);
    DFLOW_ASSIGN_OR_RETURN(RowId new_rid, table->heap->Update(rid, validated));
    IndexInsert(table, validated, new_rid);
    ++affected;
  }
  return affected;
}

Result<int64_t> Database::ApplyDelete(const DeleteStmt& stmt, bool log) {
  DFLOW_ASSIGN_OR_RETURN(TableInfo * table, catalog_.Get(stmt.table));
  DFLOW_ASSIGN_OR_RETURN(auto matches, CollectMatches(*table, stmt.where));
  int64_t affected = 0;
  for (auto& [rid, row] : matches) {
    if (log) {
      ByteWriter w;
      w.PutU8(static_cast<uint8_t>(WalOp::kDelete));
      w.PutString(table->name);
      EncodeRowId(w, rid);
      DFLOW_RETURN_IF_ERROR(LogRecord(w.Take()));
    }
    IndexRemove(table, row, rid);
    DFLOW_RETURN_IF_ERROR(table->heap->Delete(rid));
    ++affected;
  }
  return affected;
}

}  // namespace dflow::db
