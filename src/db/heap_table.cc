#include "db/heap_table.h"

#include "util/byte_buffer.h"

namespace dflow::db {

HeapTable::HeapTable(Schema schema, BufferPool* pool)
    : schema_(std::move(schema)), pool_(pool) {
  if (pool_ == nullptr) {
    owned_pool_ = std::make_unique<BufferPool>(
        BufferPoolOptions{}, std::make_unique<MemPageStore>());
    pool_ = owned_pool_.get();
  }
}

HeapTable::~HeapTable() {
  // Return this table's pages to the pool so dropped tables release frames
  // and their ids get recycled. Best-effort: a pinned page here would be a
  // caller bug (no PageRef may outlive the table).
  for (uint32_t pid : page_ids_) {
    (void)pool_->Free(pid);
  }
}

Result<BufferPool::PageRef> HeapTable::PinLocal(uint32_t local_page) const {
  if (local_page >= page_ids_.size()) {
    return Status::NotFound("page out of range");
  }
  return pool_->Pin(page_ids_[local_page]);
}

Result<RowId> HeapTable::Insert(Row row) {
  DFLOW_ASSIGN_OR_RETURN(Row validated, schema_.ValidateRow(std::move(row)));
  ByteWriter w;
  EncodeRow(validated, w);
  DFLOW_ASSIGN_OR_RETURN(RowId id, InsertEncoded(w.data()));
  ++num_rows_;
  return id;
}

Result<RowId> HeapTable::InsertEncoded(std::string_view record) {
  if (!page_ids_.empty()) {
    DFLOW_ASSIGN_OR_RETURN(BufferPool::PageRef ref,
                           pool_->Pin(page_ids_.back()));
    auto slot = ref->Insert(record);
    if (slot.ok()) {
      ref.MarkDirty();
      return RowId{static_cast<uint32_t>(page_ids_.size() - 1), *slot};
    }
    if (!slot.status().IsResourceExhausted()) {
      return slot.status();
    }
  }
  DFLOW_ASSIGN_OR_RETURN(uint32_t pid, pool_->Allocate());
  page_ids_.push_back(pid);
  DFLOW_ASSIGN_OR_RETURN(BufferPool::PageRef ref, pool_->Pin(pid));
  DFLOW_ASSIGN_OR_RETURN(uint16_t slot, ref->Insert(record));
  ref.MarkDirty();
  return RowId{static_cast<uint32_t>(page_ids_.size() - 1), slot};
}

Result<Row> HeapTable::Get(RowId id) const {
  DFLOW_ASSIGN_OR_RETURN(BufferPool::PageRef ref, PinLocal(id.page));
  DFLOW_ASSIGN_OR_RETURN(std::string_view record, ref->Get(id.slot));
  ByteReader r(record);
  return DecodeRow(r);
}

Status HeapTable::Delete(RowId id) {
  DFLOW_ASSIGN_OR_RETURN(BufferPool::PageRef ref, PinLocal(id.page));
  DFLOW_RETURN_IF_ERROR(ref->Delete(id.slot));
  ref.MarkDirty();
  --num_rows_;
  return Status::OK();
}

Result<RowId> HeapTable::Update(RowId id, Row row) {
  DFLOW_ASSIGN_OR_RETURN(Row validated, schema_.ValidateRow(std::move(row)));
  ByteWriter w;
  EncodeRow(validated, w);
  {
    DFLOW_ASSIGN_OR_RETURN(BufferPool::PageRef ref, PinLocal(id.page));
    Status in_place = ref->Update(id.slot, w.data());
    if (in_place.ok()) {
      ref.MarkDirty();
      return id;
    }
    if (!in_place.IsResourceExhausted()) {
      return in_place;
    }
    DFLOW_RETURN_IF_ERROR(ref->Delete(id.slot));
    ref.MarkDirty();
  }
  return InsertEncoded(w.data());
}

}  // namespace dflow::db
