#include "db/heap_table.h"

#include "util/byte_buffer.h"

namespace dflow::db {

HeapTable::HeapTable(Schema schema) : schema_(std::move(schema)) {}

Result<RowId> HeapTable::Insert(Row row) {
  DFLOW_ASSIGN_OR_RETURN(Row validated, schema_.ValidateRow(std::move(row)));
  ByteWriter w;
  EncodeRow(validated, w);
  DFLOW_ASSIGN_OR_RETURN(RowId id, InsertEncoded(w.data()));
  ++num_rows_;
  return id;
}

Result<RowId> HeapTable::InsertEncoded(std::string_view record) {
  if (!pages_.empty()) {
    auto slot = pages_.back()->Insert(record);
    if (slot.ok()) {
      return RowId{static_cast<uint32_t>(pages_.size() - 1), *slot};
    }
    if (!slot.status().IsResourceExhausted()) {
      return slot.status();
    }
  }
  pages_.push_back(std::make_unique<Page>());
  DFLOW_ASSIGN_OR_RETURN(uint16_t slot, pages_.back()->Insert(record));
  return RowId{static_cast<uint32_t>(pages_.size() - 1), slot};
}

Result<Row> HeapTable::Get(RowId id) const {
  if (id.page >= pages_.size()) {
    return Status::NotFound("page out of range");
  }
  DFLOW_ASSIGN_OR_RETURN(std::string_view record, pages_[id.page]->Get(id.slot));
  ByteReader r(record);
  return DecodeRow(r);
}

Status HeapTable::Delete(RowId id) {
  if (id.page >= pages_.size()) {
    return Status::NotFound("page out of range");
  }
  DFLOW_RETURN_IF_ERROR(pages_[id.page]->Delete(id.slot));
  --num_rows_;
  return Status::OK();
}

Result<RowId> HeapTable::Update(RowId id, Row row) {
  if (id.page >= pages_.size()) {
    return Status::NotFound("page out of range");
  }
  DFLOW_ASSIGN_OR_RETURN(Row validated, schema_.ValidateRow(std::move(row)));
  ByteWriter w;
  EncodeRow(validated, w);
  Status in_place = pages_[id.page]->Update(id.slot, w.data());
  if (in_place.ok()) {
    return id;
  }
  if (!in_place.IsResourceExhausted()) {
    return in_place;
  }
  DFLOW_RETURN_IF_ERROR(pages_[id.page]->Delete(id.slot));
  return InsertEncoded(w.data());
}

}  // namespace dflow::db
