#ifndef DFLOW_DB_EXPR_H_
#define DFLOW_DB_EXPR_H_

#include <memory>
#include <string>

#include "db/schema.h"
#include "db/value.h"
#include "util/result.h"

namespace dflow::db {

enum class BinOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kAnd,
  kOr,
  kLike,
};

enum class UnOp { kNot, kNeg, kIsNull, kIsNotNull };

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Scalar expression tree used in WHERE clauses, projections, and UPDATE
/// assignments. Expressions are built by the SQL parser or programmatically,
/// bound once against a schema (resolving column names to positions), then
/// evaluated per row.
///
/// NULL handling follows SQL three-valued logic: comparisons and arithmetic
/// involving NULL yield NULL; AND/OR use Kleene semantics; a WHERE clause
/// accepts a row only when the predicate evaluates to TRUE.
class Expr {
 public:
  static ExprPtr Literal(Value v);
  static ExprPtr ColumnRef(std::string name);
  static ExprPtr Binary(BinOp op, ExprPtr left, ExprPtr right);
  static ExprPtr Unary(UnOp op, ExprPtr operand);

  /// Resolves column references against `schema`. Must be called (and
  /// succeed) before Eval.
  Status Bind(const Schema& schema);

  /// Evaluates against a row matching the bound schema.
  Result<Value> Eval(const Row& row) const;

  /// True if this is `column <op> literal` (or reversed) with op in
  /// {=, <, <=, >, >=}; used by the planner to pick index scans.
  /// On success fills column name, op (normalized to column-on-left), and
  /// the literal.
  bool MatchSimplePredicate(std::string* column, BinOp* op,
                            Value* literal) const;

  /// Appends the top-level AND-ed conjuncts of `e` to *out (a non-AND
  /// expression contributes itself). Used by the planner to find indexable
  /// predicates.
  static void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out);

  /// If this expression is `col_a = col_b` over two *bound* column
  /// references, returns their resolved column indexes; otherwise
  /// {-1, -1}. Used by the planner to pick index-nested-loop joins
  /// (indexes are unambiguous where names may not be).
  std::pair<int, int> EquiJoinBoundIndexes() const;

  std::string ToString() const;

 private:
  enum class Kind { kLiteral, kColumnRef, kBinary, kUnary };

  Expr() = default;

  Result<Value> EvalBinary(const Row& row) const;
  Result<Value> EvalUnary(const Row& row) const;

  Kind kind_ = Kind::kLiteral;
  // kLiteral
  Value literal_;
  // kColumnRef
  std::string column_name_;
  int column_index_ = -1;  // Resolved by Bind.
  // kBinary / kUnary
  BinOp bin_op_ = BinOp::kEq;
  UnOp un_op_ = UnOp::kNot;
  ExprPtr left_;
  ExprPtr right_;
};

/// SQL LIKE pattern match: '%' matches any run, '_' any single character.
bool LikeMatch(std::string_view text, std::string_view pattern);

std::string_view BinOpToString(BinOp op);

}  // namespace dflow::db

#endif  // DFLOW_DB_EXPR_H_
