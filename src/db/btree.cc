#include "db/btree.h"

#include <algorithm>

#include "util/logging.h"

namespace dflow::db {

namespace {
constexpr RowId kMinRowId{0, 0};
}  // namespace

BTreeIndex::BTreeIndex(size_t max_keys) : max_keys_(max_keys) {
  DFLOW_CHECK(max_keys_ >= 4);
  root_ = std::make_unique<Node>();
}

int BTreeIndex::CompareEntry(const Entry& a, const Entry& b) {
  int c = a.key.Compare(b.key);
  if (c != 0) {
    return c;
  }
  if (a.rid == b.rid) {
    return 0;
  }
  return a.rid < b.rid ? -1 : 1;
}

void BTreeIndex::SplitChild(Node* parent, size_t child_idx) {
  Node* child = parent->children[child_idx].get();
  auto sibling = std::make_unique<Node>();
  sibling->leaf = child->leaf;

  Entry separator_entry{Value::Null(), kMinRowId};
  if (child->leaf) {
    size_t mid = child->entries.size() / 2;
    sibling->entries.assign(
        std::make_move_iterator(child->entries.begin() + mid),
        std::make_move_iterator(child->entries.end()));
    child->entries.resize(mid);
    separator_entry = sibling->entries.front();
    sibling->next = child->next;
    child->next = sibling.get();
  } else {
    // Internal split: the middle separator moves up; children and the
    // remaining separators split around it.
    size_t mid = child->separators.size() / 2;
    separator_entry.key = std::move(child->separators[mid].key);
    separator_entry.rid = child->separators[mid].rid;
    sibling->separators.assign(
        std::make_move_iterator(child->separators.begin() + mid + 1),
        std::make_move_iterator(child->separators.end()));
    child->separators.resize(mid);
    sibling->children.assign(
        std::make_move_iterator(child->children.begin() + mid + 1),
        std::make_move_iterator(child->children.end()));
    child->children.resize(mid + 1);
  }
  parent->separators.insert(parent->separators.begin() + child_idx,
                            std::move(separator_entry));
  parent->children.insert(parent->children.begin() + child_idx + 1,
                          std::move(sibling));
}

void BTreeIndex::InsertNonFull(Node* node, Entry entry) {
  while (!node->leaf) {
    size_t idx = 0;
    while (idx < node->separators.size() &&
           CompareEntry(node->separators[idx], entry) <= 0) {
      ++idx;
    }
    Node* child = node->children[idx].get();
    bool full = child->leaf ? child->entries.size() >= max_keys_
                            : child->separators.size() >= max_keys_;
    if (full) {
      SplitChild(node, idx);
      if (CompareEntry(node->separators[idx], entry) <= 0) {
        ++idx;
      }
      child = node->children[idx].get();
    }
    node = child;
  }
  auto it = std::lower_bound(
      node->entries.begin(), node->entries.end(), entry,
      [](const Entry& a, const Entry& b) { return CompareEntry(a, b) < 0; });
  node->entries.insert(it, std::move(entry));
}

void BTreeIndex::Insert(const Value& key, RowId rid) {
  bool root_full = root_->leaf ? root_->entries.size() >= max_keys_
                               : root_->separators.size() >= max_keys_;
  if (root_full) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    root_ = std::move(new_root);
    SplitChild(root_.get(), 0);
  }
  InsertNonFull(root_.get(), Entry{key, rid});
  ++size_;
}

BTreeIndex::Node* BTreeIndex::FindLeaf(const Value& key, RowId rid) const {
  Entry probe{key, rid};
  Node* node = root_.get();
  while (!node->leaf) {
    size_t idx = 0;
    while (idx < node->separators.size() &&
           CompareEntry(node->separators[idx], probe) <= 0) {
      ++idx;
    }
    node = node->children[idx].get();
  }
  return node;
}

bool BTreeIndex::Remove(const Value& key, RowId rid) {
  Node* leaf = FindLeaf(key, rid);
  Entry probe{key, rid};
  auto it = std::lower_bound(
      leaf->entries.begin(), leaf->entries.end(), probe,
      [](const Entry& a, const Entry& b) { return CompareEntry(a, b) < 0; });
  if (it == leaf->entries.end() || CompareEntry(*it, probe) != 0) {
    return false;
  }
  leaf->entries.erase(it);
  --size_;
  return true;
}

std::vector<RowId> BTreeIndex::Find(const Value& key) const {
  std::vector<RowId> out;
  Scan(&key, /*lo_inclusive=*/true, &key, /*hi_inclusive=*/true,
       [&out](const Value&, RowId rid) {
         out.push_back(rid);
         return true;
       });
  return out;
}

void BTreeIndex::Scan(
    const Value* lo, bool lo_inclusive, const Value* hi, bool hi_inclusive,
    const std::function<bool(const Value&, RowId)>& fn) const {
  const Node* leaf;
  if (lo != nullptr) {
    leaf = FindLeaf(*lo, kMinRowId);
  } else {
    const Node* node = root_.get();
    while (!node->leaf) {
      node = node->children.front().get();
    }
    leaf = node;
  }
  for (; leaf != nullptr; leaf = leaf->next) {
    for (const Entry& entry : leaf->entries) {
      if (lo != nullptr) {
        int c = entry.key.Compare(*lo);
        if (c < 0 || (c == 0 && !lo_inclusive)) {
          continue;
        }
      }
      if (hi != nullptr) {
        int c = entry.key.Compare(*hi);
        if (c > 0 || (c == 0 && !hi_inclusive)) {
          return;
        }
      }
      if (!fn(entry.key, entry.rid)) {
        return;
      }
    }
  }
}

int BTreeIndex::height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

bool BTreeIndex::CheckNode(const Node* node, const Value* lo,
                           const Value* hi) const {
  auto in_range = [&](const Value& v) {
    if (lo != nullptr && v.Compare(*lo) < 0) {
      return false;
    }
    if (hi != nullptr && v.Compare(*hi) > 0) {
      return false;
    }
    return true;
  };
  if (node->leaf) {
    for (size_t i = 0; i < node->entries.size(); ++i) {
      if (!in_range(node->entries[i].key)) {
        return false;
      }
      if (i > 0 &&
          CompareEntry(node->entries[i - 1], node->entries[i]) > 0) {
        return false;
      }
    }
    return true;
  }
  if (node->children.size() != node->separators.size() + 1) {
    return false;
  }
  for (size_t i = 0; i < node->separators.size(); ++i) {
    if (!in_range(node->separators[i].key)) {
      return false;
    }
    if (i > 0 && CompareEntry(node->separators[i - 1],
                              node->separators[i]) > 0) {
      return false;
    }
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    const Value* child_lo = (i == 0) ? lo : &node->separators[i - 1].key;
    const Value* child_hi =
        (i == node->separators.size()) ? hi : &node->separators[i].key;
    if (!CheckNode(node->children[i].get(), child_lo, child_hi)) {
      return false;
    }
  }
  return true;
}

bool BTreeIndex::CheckInvariants() const {
  return CheckNode(root_.get(), nullptr, nullptr);
}

}  // namespace dflow::db
