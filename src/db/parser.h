#ifndef DFLOW_DB_PARSER_H_
#define DFLOW_DB_PARSER_H_

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "db/expr.h"
#include "db/schema.h"
#include "util/result.h"

namespace dflow::db {

/// Parsed statement forms for the SQL subset the embedded engine supports.
/// The subset covers what the paper's metadata workloads need: DDL, bulk
/// insert, filtered/ordered/aggregated selects, equi-joins, update, delete.

struct CreateTableStmt {
  std::string table;
  std::vector<Column> columns;
};

struct CreateIndexStmt {
  std::string index_name;
  std::string table;
  std::string column;
};

struct DropTableStmt {
  std::string table;
  bool if_exists = false;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // Empty = positional.
  std::vector<std::vector<ExprPtr>> rows;
};

enum class AggFunc { kNone, kCount, kSum, kMin, kMax, kAvg };

struct SelectItem {
  ExprPtr expr;               // Null for COUNT(*).
  AggFunc agg = AggFunc::kNone;
  bool star = false;          // SELECT * (agg == kNone) or COUNT(*) arg.
  std::string alias;          // Output column name; derived if empty.
};

struct OrderByItem {
  ExprPtr expr;
  bool descending = false;
};

struct JoinClause {
  std::string table;
  ExprPtr on;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::string table;
  std::optional<JoinClause> join;
  ExprPtr where;  // May be null.
  std::vector<ExprPtr> group_by;
  ExprPtr having;  // May be null; binds against the output columns.
  std::vector<OrderByItem> order_by;
  int64_t limit = -1;   // -1 = no limit.
  int64_t offset = 0;   // Rows skipped before the limit applies.
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // May be null.
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;  // May be null.
};

struct BeginStmt {};
struct CommitStmt {};
struct RollbackStmt {};

using Statement =
    std::variant<CreateTableStmt, CreateIndexStmt, DropTableStmt, InsertStmt,
                 SelectStmt, UpdateStmt, DeleteStmt, BeginStmt, CommitStmt,
                 RollbackStmt>;

/// Parses one SQL statement (a trailing ';' is allowed).
Result<Statement> ParseSql(std::string_view sql);

}  // namespace dflow::db

#endif  // DFLOW_DB_PARSER_H_
