#ifndef DFLOW_DB_DATABASE_H_
#define DFLOW_DB_DATABASE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "db/buffer_pool.h"
#include "db/catalog.h"
#include "db/executor.h"
#include "db/parser.h"
#include "db/wal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/result.h"

namespace dflow::db {

struct DatabaseOptions {
  /// Buffer-pool residency bound shared by every table in the database;
  /// 0 = unbounded (all pages stay in memory). Bounded pools evict cold
  /// pages to the page store (in-memory for volatile databases, a
  /// `<wal path>.pages` spill file for durable ones).
  size_t pool_frames = 0;
};

/// The embedded relational engine facade: the role SQLite plays in CLEO's
/// personal EventStore and MySQL / MS SQL Server play in the group and
/// collaboration stores and in the Arecibo / WebLab metadata systems.
///
/// Modes:
///  - Database()            : in-memory, volatile (the "personal" mode).
///  - Database::Open(path)  : durable; every committed mutation is written
///    to a write-ahead log first, and Open replays the log on startup.
///
/// Transactions: BEGIN/COMMIT/ROLLBACK (SQL or the methods below). One
/// transaction at a time (the engine is single-threaded by design; the
/// simulation layer models concurrency). Inside a transaction, mutations
/// are buffered and applied atomically at COMMIT; reads see the
/// pre-transaction state until then.
class Database {
 public:
  /// In-memory database with no durability.
  Database();
  explicit Database(DatabaseOptions options);

  /// Durable database backed by a WAL at `path`; replays existing log.
  /// The buffer pool spills to `path + ".pages"` (session-scoped: created
  /// fresh on every Open — the WAL is the database of record).
  static Result<std::unique_ptr<Database>> Open(const std::string& path,
                                                DatabaseOptions options = {});

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Parses and executes one SQL statement.
  Result<QueryResult> Execute(std::string_view sql);

  // --- Programmatic API (used by the case-study modules; avoids parse
  // overhead on hot paths) ---
  Status CreateTable(std::string name, Schema schema);
  Status CreateIndex(std::string index_name, const std::string& table,
                     const std::string& column);
  Status Insert(const std::string& table, Row row);
  /// Bulk insert of many rows in one transaction.
  Status InsertMany(const std::string& table, std::vector<Row> rows);

  Status Begin();
  Status Commit();
  Status Rollback();
  bool in_transaction() const { return in_txn_; }

  /// Compacts the database: vacuums tombstoned heap space, rebuilds
  /// indexes, and (for durable databases) rewrites the WAL as one snapshot
  /// transaction, bounding recovery time for long-lived metadata stores.
  /// FailedPrecondition inside a transaction.
  Status Checkpoint();

  const Catalog& catalog() const { return catalog_; }
  /// Total bytes of table heap pages (storage accounting).
  int64_t TotalBytes() const { return catalog_.TotalBytes(); }
  int64_t wal_bytes() const {
    return wal_ != nullptr ? wal_->bytes_written() : 0;
  }

  /// The shared buffer pool behind every table (hit/miss/eviction stats,
  /// eviction log, writeback probe).
  BufferPool* pool() const { return pool_.get(); }

  /// Observability: db.pool.* counters and fetch/writeback spans.
  void SetMetricsRegistry(obs::MetricsRegistry* metrics) {
    pool_->SetMetricsRegistry(metrics);
  }
  void SetTracer(obs::Tracer* tracer) { pool_->SetTracer(tracer); }

 private:
  Database(DatabaseOptions options, std::unique_ptr<PageStore> store);

  struct PendingOp {
    std::function<Status()> apply;
  };

  Result<QueryResult> Dispatch(Statement stmt);

  // Immediate-apply internals; log = whether to emit WAL records.
  Status ApplyCreateTable(const CreateTableStmt& stmt, bool log);
  Status ApplyCreateIndex(const CreateIndexStmt& stmt, bool log);
  Status ApplyDropTable(const DropTableStmt& stmt, bool log);
  Result<int64_t> ApplyInsert(const InsertStmt& stmt, bool log);
  Result<int64_t> ApplyUpdate(const UpdateStmt& stmt, bool log);
  Result<int64_t> ApplyDelete(const DeleteStmt& stmt, bool log);
  Status ApplyInsertRow(TableInfo* table, Row row, bool log);

  // Index maintenance.
  static void IndexInsert(TableInfo* table, const Row& row, RowId rid);
  static void IndexRemove(TableInfo* table, const Row& row, RowId rid);

  // WAL plumbing.
  Status LogRecord(std::string payload);
  Status ReplayRecord(std::string_view payload);
  Status Recover(const std::string& path);

  /// Runs `op` now (autocommit, wrapped in an implicit transaction) or
  /// buffers it if a transaction is open. `op` must do its own logging.
  Result<int64_t> RunOrBuffer(std::function<Result<int64_t>()> op);

  std::unique_ptr<BufferPool> pool_;  // Before catalog_: tables point at it.
  Catalog catalog_;
  std::unique_ptr<WalWriter> wal_;
  std::string wal_path_;
  bool in_txn_ = false;
  bool replaying_ = false;
  uint64_t recovered_lsn_ = 0;
  std::vector<std::function<Result<int64_t>()>> pending_;
};

}  // namespace dflow::db

#endif  // DFLOW_DB_DATABASE_H_
