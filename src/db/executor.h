#ifndef DFLOW_DB_EXECUTOR_H_
#define DFLOW_DB_EXECUTOR_H_

#include <string>
#include <vector>

#include "db/catalog.h"
#include "db/parser.h"
#include "util/result.h"

namespace dflow::db {

/// Materialized result of a query: output column names plus rows.
/// Mutating statements report `affected` and leave columns/rows empty.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  int64_t affected = 0;

  /// ASCII table rendering for examples and debugging.
  std::string ToString() const;
};

/// Executes a SELECT against the catalog. The planner is deliberately
/// small: it uses a B+Tree index scan when a top-level AND conjunct is
/// `indexed_column <op> literal`, and falls back to a sequential scan
/// otherwise; joins are index-nested-loop when the inner join key is
/// indexed, else nested-loop.
Result<QueryResult> ExecuteSelect(const Catalog& catalog,
                                  const SelectStmt& stmt);

/// Internal helper shared with Database's UPDATE/DELETE paths: collects the
/// RowIds (and rows) of `table` matching `where` (null = all), using an
/// index when possible.
Result<std::vector<std::pair<RowId, Row>>> CollectMatches(
    const TableInfo& table, const ExprPtr& where);

}  // namespace dflow::db

#endif  // DFLOW_DB_EXECUTOR_H_
