#ifndef DFLOW_DB_BTREE_H_
#define DFLOW_DB_BTREE_H_

#include <functional>
#include <memory>
#include <vector>

#include "db/heap_table.h"
#include "db/value.h"

namespace dflow::db {

/// In-memory B+Tree secondary index mapping column values to RowIds.
/// Duplicates are supported by ordering entries on (key, RowId); leaves are
/// chained for range scans. Deletion removes entries without rebalancing
/// (lazy deletion): underfull nodes are tolerated, which keeps the code
/// small and is the standard trade-off for index workloads dominated by
/// inserts and scans, as all the metadata workloads in this library are.
class BTreeIndex {
 public:
  explicit BTreeIndex(size_t max_keys = 64);

  BTreeIndex(const BTreeIndex&) = delete;
  BTreeIndex& operator=(const BTreeIndex&) = delete;

  void Insert(const Value& key, RowId rid);

  /// Removes the (key, rid) entry. Returns false if absent.
  bool Remove(const Value& key, RowId rid);

  /// All RowIds stored under exactly `key`.
  std::vector<RowId> Find(const Value& key) const;

  /// Visits entries with lo <= key <= hi in key order. Null bound pointers
  /// mean unbounded; inclusivity flags apply only when the bound is set.
  /// `fn` returns false to stop early.
  void Scan(const Value* lo, bool lo_inclusive, const Value* hi,
            bool hi_inclusive,
            const std::function<bool(const Value&, RowId)>& fn) const;

  int64_t size() const { return size_; }
  int height() const;

  /// Validates B+Tree invariants (key ordering within and across nodes,
  /// child key ranges vs separators). Used by property tests.
  bool CheckInvariants() const;

 private:
  struct Entry {
    Value key;
    RowId rid;
  };
  struct Node {
    bool leaf = true;
    std::vector<Entry> entries;              // Leaf payload.
    std::vector<Entry> separators;           // Internal: child count - 1.
    std::vector<std::unique_ptr<Node>> children;
    Node* next = nullptr;                    // Leaf chain.
  };

  static int CompareEntry(const Entry& a, const Entry& b);
  Node* FindLeaf(const Value& key, RowId rid) const;
  /// Splits `child` (index `child_idx` of `parent`), which must be full.
  void SplitChild(Node* parent, size_t child_idx);
  void InsertNonFull(Node* node, Entry entry);
  bool CheckNode(const Node* node, const Value* lo, const Value* hi) const;

  size_t max_keys_;
  std::unique_ptr<Node> root_;
  int64_t size_ = 0;
};

}  // namespace dflow::db

#endif  // DFLOW_DB_BTREE_H_
