#include "db/executor.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "util/strings.h"

namespace dflow::db {

namespace {

/// True when `v` is SQL TRUE (not NULL, not FALSE).
bool IsTrue(const Value& v) {
  return !v.is_null() && v.type() == Type::kBool && v.AsBool();
}

/// Evaluates `where` (may be null = accept) against `row`; the expression
/// must already be bound.
Result<bool> PassesFilter(const ExprPtr& where, const Row& row) {
  if (where == nullptr) {
    return true;
  }
  DFLOW_ASSIGN_OR_RETURN(Value v, where->Eval(row));
  return IsTrue(v);
}

/// Index-assisted scan: looks through the conjuncts of `where` for a
/// predicate usable with one of the table's indexes and returns the
/// matching (RowId, Row) pairs with the *full* predicate applied.
Result<std::vector<std::pair<RowId, Row>>> ScanTable(const TableInfo& table,
                                                     const ExprPtr& where) {
  std::vector<std::pair<RowId, Row>> out;

  const IndexInfo* chosen_index = nullptr;
  BinOp op = BinOp::kEq;
  Value literal;
  if (where != nullptr) {
    std::vector<ExprPtr> conjuncts;
    Expr::SplitConjuncts(where, &conjuncts);
    for (const ExprPtr& conjunct : conjuncts) {
      std::string column;
      BinOp candidate_op;
      Value candidate_literal;
      if (!conjunct->MatchSimplePredicate(&column, &candidate_op,
                                          &candidate_literal)) {
        continue;
      }
      const IndexInfo* index = table.FindIndexOnColumn(column);
      if (index != nullptr) {
        chosen_index = index;
        op = candidate_op;
        literal = candidate_literal;
        if (op == BinOp::kEq) {
          break;  // Equality is the best we can do; stop looking.
        }
      }
    }
  }

  Status scan_status = Status::OK();
  auto visit = [&](RowId rid) -> bool {
    auto row = table.heap->Get(rid);
    if (!row.ok()) {
      scan_status = row.status();
      return false;
    }
    auto pass = PassesFilter(where, *row);
    if (!pass.ok()) {
      scan_status = pass.status();
      return false;
    }
    if (*pass) {
      out.emplace_back(rid, *std::move(row));
    }
    return true;
  };

  if (chosen_index != nullptr) {
    const Value* lo = nullptr;
    const Value* hi = nullptr;
    bool lo_inc = true, hi_inc = true;
    switch (op) {
      case BinOp::kEq:
        lo = hi = &literal;
        break;
      case BinOp::kLt:
        hi = &literal;
        hi_inc = false;
        break;
      case BinOp::kLe:
        hi = &literal;
        break;
      case BinOp::kGt:
        lo = &literal;
        lo_inc = false;
        break;
      case BinOp::kGe:
        lo = &literal;
        break;
      default:
        break;
    }
    chosen_index->tree->Scan(lo, lo_inc, hi, hi_inc,
                             [&](const Value&, RowId rid) {
                               return visit(rid);
                             });
    DFLOW_RETURN_IF_ERROR(scan_status);
    return out;
  }

  DFLOW_RETURN_IF_ERROR(table.heap->ForEach([&](RowId rid, const Row&) {
    return visit(rid);
  }));
  DFLOW_RETURN_IF_ERROR(scan_status);
  return out;
}

/// Builds the combined output schema of a join. Columns whose plain names
/// are unique across both inputs keep them; colliding names are qualified
/// as "table.column".
Schema JoinSchema(const TableInfo& left, const TableInfo& right) {
  std::map<std::string, int> name_counts;
  for (const auto* table : {&left, &right}) {
    for (const Column& col : table->heap->schema().columns()) {
      ++name_counts[ToLower(col.name)];
    }
  }
  std::vector<Column> columns;
  for (const auto* table : {&left, &right}) {
    for (const Column& col : table->heap->schema().columns()) {
      Column out = col;
      if (name_counts[ToLower(col.name)] > 1) {
        out.name = table->name + "." + col.name;
      }
      columns.push_back(std::move(out));
    }
  }
  return Schema(std::move(columns));
}

struct AggState {
  int64_t count = 0;
  double sum = 0.0;
  bool sum_is_int = true;
  int64_t isum = 0;
  Value min_value;
  Value max_value;
  bool has_minmax = false;

  void Add(const Value& v) {
    if (v.is_null()) {
      return;  // SQL aggregates skip NULLs.
    }
    ++count;
    if (v.type() == Type::kInt64) {
      isum += v.AsInt();
      sum += static_cast<double>(v.AsInt());
    } else if (v.type() == Type::kDouble) {
      sum_is_int = false;
      sum += v.AsDouble();
    } else {
      sum_is_int = false;  // SUM/AVG invalid; MIN/MAX still fine.
    }
    if (!has_minmax || v.Compare(min_value) < 0) {
      min_value = v;
    }
    if (!has_minmax || v.Compare(max_value) > 0) {
      max_value = v;
    }
    has_minmax = true;
  }

  Value Finish(AggFunc func) const {
    switch (func) {
      case AggFunc::kCount:
        return Value::Int(count);
      case AggFunc::kSum:
        if (count == 0) {
          return Value::Null();
        }
        return sum_is_int ? Value::Int(isum) : Value::Double(sum);
      case AggFunc::kAvg:
        if (count == 0) {
          return Value::Null();
        }
        return Value::Double(sum / static_cast<double>(count));
      case AggFunc::kMin:
        return has_minmax ? min_value : Value::Null();
      case AggFunc::kMax:
        return has_minmax ? max_value : Value::Null();
      case AggFunc::kNone:
        break;
    }
    return Value::Null();
  }
};

std::string ItemName(const SelectItem& item, size_t index) {
  if (!item.alias.empty()) {
    return item.alias;
  }
  if (item.agg != AggFunc::kNone) {
    static const char* kNames[] = {"", "count", "sum", "min", "max", "avg"};
    std::string inner = item.star ? "*" : item.expr->ToString();
    return std::string(kNames[static_cast<int>(item.agg)]) + "(" + inner +
           ")";
  }
  if (item.expr != nullptr) {
    return item.expr->ToString();
  }
  return "col" + std::to_string(index);
}

}  // namespace

Result<std::vector<std::pair<RowId, Row>>> CollectMatches(
    const TableInfo& table, const ExprPtr& where) {
  if (where != nullptr) {
    DFLOW_RETURN_IF_ERROR(where->Bind(table.heap->schema()));
  }
  return ScanTable(table, where);
}

Result<QueryResult> ExecuteSelect(const Catalog& catalog,
                                  const SelectStmt& stmt) {
  DFLOW_ASSIGN_OR_RETURN(TableInfo * left, catalog.Get(stmt.table));

  Schema input_schema = left->heap->schema();
  std::vector<Row> input_rows;

  if (!stmt.join.has_value()) {
    ExprPtr where = stmt.where;
    if (where != nullptr) {
      DFLOW_RETURN_IF_ERROR(where->Bind(input_schema));
    }
    DFLOW_ASSIGN_OR_RETURN(auto matches, ScanTable(*left, where));
    input_rows.reserve(matches.size());
    for (auto& [rid, row] : matches) {
      input_rows.push_back(std::move(row));
    }
  } else {
    DFLOW_ASSIGN_OR_RETURN(TableInfo * right, catalog.Get(stmt.join->table));
    input_schema = JoinSchema(*left, *right);
    ExprPtr on = stmt.join->on;
    if (on == nullptr) {
      return Status::InvalidArgument("JOIN requires an ON clause");
    }
    DFLOW_RETURN_IF_ERROR(on->Bind(input_schema));
    ExprPtr where = stmt.where;
    if (where != nullptr) {
      DFLOW_RETURN_IF_ERROR(where->Bind(input_schema));
    }

    // Index-nested-loop when the ON clause is an equi-join and the inner
    // (right) join column is indexed; otherwise plain nested loop.
    DFLOW_ASSIGN_OR_RETURN(auto left_rows, ScanTable(*left, nullptr));

    // Probe for the INL opportunity: `a = b` over two bound column refs,
    // one on each side of the join (positions below/above left_width in
    // the combined schema), with the right column indexed.
    size_t left_width = left->heap->schema().NumColumns();
    const IndexInfo* probe_index = nullptr;
    size_t left_key_index = 0;
    {
      auto [bound_a, bound_b] = on->EquiJoinBoundIndexes();
      int left_bound = -1, right_bound = -1;
      if (bound_a >= 0 && bound_b >= 0) {
        if (bound_a < static_cast<int>(left_width) &&
            bound_b >= static_cast<int>(left_width)) {
          left_bound = bound_a;
          right_bound = bound_b;
        } else if (bound_b < static_cast<int>(left_width) &&
                   bound_a >= static_cast<int>(left_width)) {
          left_bound = bound_b;
          right_bound = bound_a;
        }
      }
      if (left_bound >= 0) {
        size_t right_pos = static_cast<size_t>(right_bound) - left_width;
        probe_index = right->FindIndexOnColumn(
            right->heap->schema().ColumnAt(right_pos).name);
        left_key_index = static_cast<size_t>(left_bound);
      }
    }
    auto emit = [&](const Row& lrow, const Row& rrow) -> Status {
      Row combined;
      combined.reserve(left_width + rrow.size());
      combined.insert(combined.end(), lrow.begin(), lrow.end());
      combined.insert(combined.end(), rrow.begin(), rrow.end());
      DFLOW_ASSIGN_OR_RETURN(Value on_value, on->Eval(combined));
      if (!IsTrue(on_value)) {
        return Status::OK();
      }
      DFLOW_ASSIGN_OR_RETURN(bool pass, PassesFilter(where, combined));
      if (pass) {
        input_rows.push_back(std::move(combined));
      }
      return Status::OK();
    };

    if (probe_index != nullptr) {
      for (auto& [lrid, lrow] : left_rows) {
        for (RowId rrid : probe_index->tree->Find(lrow[left_key_index])) {
          DFLOW_ASSIGN_OR_RETURN(Row rrow, right->heap->Get(rrid));
          DFLOW_RETURN_IF_ERROR(emit(lrow, rrow));
        }
      }
    } else {
      DFLOW_ASSIGN_OR_RETURN(auto right_rows, ScanTable(*right, nullptr));
      for (auto& [lrid, lrow] : left_rows) {
        for (auto& [rrid, rrow] : right_rows) {
          DFLOW_RETURN_IF_ERROR(emit(lrow, rrow));
        }
      }
    }
  }

  // --- Aggregation / projection ---
  bool has_agg = !stmt.group_by.empty();
  for (const SelectItem& item : stmt.items) {
    if (item.agg != AggFunc::kNone) {
      has_agg = true;
    }
  }

  QueryResult result;
  std::vector<Row> output_rows;

  if (has_agg) {
    for (const ExprPtr& e : stmt.group_by) {
      DFLOW_RETURN_IF_ERROR(e->Bind(input_schema));
    }
    for (const SelectItem& item : stmt.items) {
      if (item.star && item.agg == AggFunc::kNone) {
        return Status::InvalidArgument("SELECT * with aggregates");
      }
      if (item.expr != nullptr) {
        DFLOW_RETURN_IF_ERROR(item.expr->Bind(input_schema));
      }
    }
    // Group rows. Key = group-by values; keep insertion order for output
    // determinism (ordered map on encoded key).
    struct Group {
      Row key;
      Row first_row;
      std::vector<AggState> aggs;
    };
    std::map<std::string, Group> groups;
    for (const Row& row : input_rows) {
      ByteWriter key_writer;
      Row key;
      key.reserve(stmt.group_by.size());
      for (const ExprPtr& e : stmt.group_by) {
        DFLOW_ASSIGN_OR_RETURN(Value v, e->Eval(row));
        v.EncodeTo(key_writer);
        key.push_back(std::move(v));
      }
      auto [it, inserted] = groups.try_emplace(key_writer.Take());
      Group& group = it->second;
      if (inserted) {
        group.key = std::move(key);
        group.first_row = row;
        group.aggs.resize(stmt.items.size());
      }
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        const SelectItem& item = stmt.items[i];
        if (item.agg == AggFunc::kNone) {
          continue;
        }
        if (item.star) {
          group.aggs[i].count += 1;  // COUNT(*) counts rows.
        } else {
          DFLOW_ASSIGN_OR_RETURN(Value v, item.expr->Eval(row));
          group.aggs[i].Add(v);
        }
      }
    }
    // With no GROUP BY, aggregates over an empty input still yield one row.
    if (groups.empty() && stmt.group_by.empty()) {
      Group group;
      group.aggs.resize(stmt.items.size());
      groups.emplace("", std::move(group));
    }
    for (auto& [key_bytes, group] : groups) {
      Row out;
      out.reserve(stmt.items.size());
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        const SelectItem& item = stmt.items[i];
        if (item.agg != AggFunc::kNone) {
          if (item.star) {
            out.push_back(Value::Int(group.aggs[i].count));
          } else {
            out.push_back(group.aggs[i].Finish(item.agg));
          }
        } else {
          // Non-aggregate item: evaluate on the group's first row
          // (columns here should be group-by expressions).
          if (group.first_row.empty()) {
            out.push_back(Value::Null());
          } else {
            DFLOW_ASSIGN_OR_RETURN(Value v, item.expr->Eval(group.first_row));
            out.push_back(std::move(v));
          }
        }
      }
      output_rows.push_back(std::move(out));
    }
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      result.columns.push_back(ItemName(stmt.items[i], i));
    }
  } else {
    // Plain projection.
    std::vector<ExprPtr> projections;
    for (const SelectItem& item : stmt.items) {
      if (item.star) {
        for (const Column& col : input_schema.columns()) {
          result.columns.push_back(col.name);
          ExprPtr ref = Expr::ColumnRef(col.name);
          DFLOW_RETURN_IF_ERROR(ref->Bind(input_schema));
          projections.push_back(std::move(ref));
        }
        continue;
      }
      DFLOW_RETURN_IF_ERROR(item.expr->Bind(input_schema));
      result.columns.push_back(ItemName(item, projections.size()));
      projections.push_back(item.expr);
    }
    output_rows.reserve(input_rows.size());

    // ORDER BY keys are computed against the *input* row (so you can order
    // by columns you did not project).
    std::vector<ExprPtr> order_exprs;
    for (const OrderByItem& item : stmt.order_by) {
      DFLOW_RETURN_IF_ERROR(item.expr->Bind(input_schema));
      order_exprs.push_back(item.expr);
    }

    std::vector<std::pair<Row, Row>> keyed;  // (sort key, output row)
    keyed.reserve(input_rows.size());
    for (const Row& row : input_rows) {
      Row out;
      out.reserve(projections.size());
      for (const ExprPtr& e : projections) {
        DFLOW_ASSIGN_OR_RETURN(Value v, e->Eval(row));
        out.push_back(std::move(v));
      }
      Row key;
      key.reserve(order_exprs.size());
      for (const ExprPtr& e : order_exprs) {
        DFLOW_ASSIGN_OR_RETURN(Value v, e->Eval(row));
        key.push_back(std::move(v));
      }
      keyed.emplace_back(std::move(key), std::move(out));
    }
    if (!stmt.order_by.empty()) {
      std::stable_sort(keyed.begin(), keyed.end(),
                       [&stmt](const auto& a, const auto& b) {
                         for (size_t i = 0; i < stmt.order_by.size(); ++i) {
                           int c = a.first[i].Compare(b.first[i]);
                           if (c != 0) {
                             return stmt.order_by[i].descending ? c > 0
                                                                : c < 0;
                           }
                         }
                         return false;
                       });
    }
    for (auto& [key, row] : keyed) {
      output_rows.push_back(std::move(row));
    }
  }

  // HAVING filters the aggregated groups; it binds against the output
  // columns (aliases and derived aggregate names).
  if (stmt.having != nullptr) {
    if (!has_agg) {
      return Status::InvalidArgument("HAVING requires aggregation");
    }
    std::vector<Column> out_columns;
    for (const std::string& name : result.columns) {
      out_columns.push_back(Column{name, Type::kString, true});
    }
    Schema out_schema(std::move(out_columns));
    DFLOW_RETURN_IF_ERROR(stmt.having->Bind(out_schema));
    std::vector<Row> kept;
    kept.reserve(output_rows.size());
    for (Row& row : output_rows) {
      DFLOW_ASSIGN_OR_RETURN(Value verdict, stmt.having->Eval(row));
      if (IsTrue(verdict)) {
        kept.push_back(std::move(row));
      }
    }
    output_rows = std::move(kept);
  }

  // ORDER BY after aggregation binds against the output schema.
  if (has_agg && !stmt.order_by.empty()) {
    std::vector<Column> out_columns;
    for (const std::string& name : result.columns) {
      out_columns.push_back(Column{name, Type::kString, true});
    }
    Schema out_schema(std::move(out_columns));
    std::vector<ExprPtr> order_exprs;
    for (const OrderByItem& item : stmt.order_by) {
      DFLOW_RETURN_IF_ERROR(item.expr->Bind(out_schema));
      order_exprs.push_back(item.expr);
    }
    std::vector<std::pair<Row, Row>> keyed;
    keyed.reserve(output_rows.size());
    for (Row& row : output_rows) {
      Row key;
      for (const ExprPtr& e : order_exprs) {
        DFLOW_ASSIGN_OR_RETURN(Value v, e->Eval(row));
        key.push_back(std::move(v));
      }
      keyed.emplace_back(std::move(key), std::move(row));
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&stmt](const auto& a, const auto& b) {
                       for (size_t i = 0; i < stmt.order_by.size(); ++i) {
                         int c = a.first[i].Compare(b.first[i]);
                         if (c != 0) {
                           return stmt.order_by[i].descending ? c > 0 : c < 0;
                         }
                       }
                       return false;
                     });
    output_rows.clear();
    for (auto& [key, row] : keyed) {
      output_rows.push_back(std::move(row));
    }
  }

  // DISTINCT: drop duplicate output rows, keeping first occurrence (so it
  // composes with ORDER BY), before LIMIT applies.
  if (stmt.distinct) {
    std::set<std::string> seen;
    std::vector<Row> unique_rows;
    unique_rows.reserve(output_rows.size());
    for (Row& row : output_rows) {
      ByteWriter encoded;
      EncodeRow(row, encoded);
      if (seen.insert(encoded.Take()).second) {
        unique_rows.push_back(std::move(row));
      }
    }
    output_rows = std::move(unique_rows);
  }

  if (stmt.offset > 0) {
    size_t skip = std::min(output_rows.size(),
                           static_cast<size_t>(stmt.offset));
    output_rows.erase(output_rows.begin(),
                      output_rows.begin() + static_cast<int64_t>(skip));
  }
  if (stmt.limit >= 0 &&
      output_rows.size() > static_cast<size_t>(stmt.limit)) {
    output_rows.resize(static_cast<size_t>(stmt.limit));
  }
  result.rows = std::move(output_rows);
  return result;
}

std::string QueryResult::ToString() const {
  std::vector<size_t> widths(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) {
    widths[i] = columns[i].size();
  }
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows.size());
  for (const Row& row : rows) {
    std::vector<std::string> line;
    line.reserve(row.size());
    for (size_t i = 0; i < row.size(); ++i) {
      line.push_back(row[i].ToString());
      if (i < widths.size()) {
        widths[i] = std::max(widths[i], line.back().size());
      }
    }
    cells.push_back(std::move(line));
  }
  std::ostringstream os;
  auto rule = [&] {
    os << "+";
    for (size_t w : widths) {
      os << std::string(w + 2, '-') << "+";
    }
    os << "\n";
  };
  rule();
  os << "|";
  for (size_t i = 0; i < columns.size(); ++i) {
    os << " " << columns[i] << std::string(widths[i] - columns[i].size(), ' ')
       << " |";
  }
  os << "\n";
  rule();
  for (const auto& line : cells) {
    os << "|";
    for (size_t i = 0; i < line.size(); ++i) {
      size_t w = i < widths.size() ? widths[i] : line[i].size();
      os << " " << line[i]
         << std::string(w >= line[i].size() ? w - line[i].size() : 0, ' ')
         << " |";
    }
    os << "\n";
  }
  rule();
  os << rows.size() << " row(s)";
  return os.str();
}

}  // namespace dflow::db
