#ifndef DFLOW_DB_CATALOG_H_
#define DFLOW_DB_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/btree.h"
#include "db/heap_table.h"
#include "util/result.h"

namespace dflow::db {

/// A secondary index over one column of a table.
struct IndexInfo {
  std::string name;
  std::string column;
  size_t column_index = 0;
  std::unique_ptr<BTreeIndex> tree;
};

/// A table plus its indexes. Index maintenance is the Database's job; the
/// catalog only owns the structures.
struct TableInfo {
  std::string name;
  std::unique_ptr<HeapTable> heap;
  std::vector<std::unique_ptr<IndexInfo>> indexes;

  /// First index whose key column is `column` (unqualified,
  /// case-insensitive), or nullptr.
  IndexInfo* FindIndexOnColumn(std::string_view column) const;
};

/// Name -> table map with case-insensitive lookup. When constructed with a
/// BufferPool, every table's pages live in that shared pool (bounded
/// residency across the whole catalog); with none, each table gets its own
/// private unbounded pool.
class Catalog {
 public:
  Catalog() = default;
  explicit Catalog(BufferPool* pool) : pool_(pool) {}

  Status AddTable(std::string name, Schema schema);
  Status DropTable(std::string_view name);
  /// Table lookup; nullptr if absent.
  TableInfo* Find(std::string_view name) const;
  /// Like Find but returns NotFound status.
  Result<TableInfo*> Get(std::string_view name) const;

  std::vector<std::string> TableNames() const;
  /// Sum of heap sizes across all tables (storage accounting).
  int64_t TotalBytes() const;

  BufferPool* pool() const { return pool_; }

 private:
  BufferPool* pool_ = nullptr;
  // Keyed by lowercased name.
  std::map<std::string, std::unique_ptr<TableInfo>> tables_;
};

}  // namespace dflow::db

#endif  // DFLOW_DB_CATALOG_H_
