#include "db/page_store.h"

#include <cerrno>
#include <cstring>

#include "util/crc32.h"

namespace dflow::db {

Result<uint64_t> MemPageStore::Read(uint32_t pid, std::string* image) {
  if (pid >= slots_.size() || !slots_[pid].has_value()) {
    return Status::NotFound("page never written");
  }
  *image = slots_[pid]->image;
  return slots_[pid]->lsn;
}

Status MemPageStore::Write(uint32_t pid, std::string_view image,
                           uint64_t lsn) {
  if (image.size() != kPageSize) {
    return Status::InvalidArgument("page image has wrong size");
  }
  if (pid >= slots_.size()) {
    slots_.resize(pid + 1);
  }
  slots_[pid] = Slot{std::string(image), lsn};
  bytes_written_ += static_cast<int64_t>(image.size());
  return Status::OK();
}

FilePageStore::~FilePageStore() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::Create(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb+");
  if (file == nullptr) {
    return Status::IOError("cannot create page store '" + path +
                           "': " + std::strerror(errno));
  }
  return std::unique_ptr<FilePageStore>(new FilePageStore(file));
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::OpenExisting(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb+");
  if (file == nullptr) {
    return Status::NotFound("no page store at '" + path + "'");
  }
  return std::unique_ptr<FilePageStore>(new FilePageStore(file));
}

Result<uint64_t> FilePageStore::Read(uint32_t pid, std::string* image) {
  if (std::fseek(file_, static_cast<long>(SlotOffset(pid)), SEEK_SET) != 0) {
    return Status::NotFound("page beyond end of store");
  }
  char header[kFrameHeaderBytes];
  size_t got = std::fread(header, 1, sizeof(header), file_);
  if (got == 0) {
    return Status::NotFound("page never written");
  }
  if (got != sizeof(header)) {
    // The file ends inside the frame header: a write died mid-header.
    return Status::Corruption("torn page frame header");
  }
  uint32_t len, crc;
  uint64_t lsn;
  std::memcpy(&len, header, 4);
  std::memcpy(&crc, header + 4, 4);
  std::memcpy(&lsn, header + 8, 8);
  if (len != kPageSize) {
    // Either a never-written hole (all zero) or a torn frame header.
    bool zero = true;
    for (char c : header) {
      zero = zero && c == 0;
    }
    return zero ? Status::NotFound("page never written")
                : Status::Corruption("torn page frame header");
  }
  std::string buf(kPageSize, '\0');
  if (std::fread(buf.data(), 1, kPageSize, file_) != kPageSize) {
    return Status::Corruption("torn page payload");
  }
  if (Crc32::Of(buf) != crc) {
    return Status::Corruption("page checksum mismatch");
  }
  *image = std::move(buf);
  return lsn;
}

Status FilePageStore::Write(uint32_t pid, std::string_view image,
                            uint64_t lsn) {
  if (image.size() != kPageSize) {
    return Status::InvalidArgument("page image has wrong size");
  }
  if (abandoned_) {
    return Status::OK();  // The "process" is dead; bytes go nowhere.
  }
  std::string frame(kSlotBytes, '\0');
  uint32_t len = static_cast<uint32_t>(kPageSize);
  uint32_t crc = Crc32::Of(image);
  std::memcpy(frame.data(), &len, 4);
  std::memcpy(frame.data() + 4, &crc, 4);
  std::memcpy(frame.data() + 8, &lsn, 8);
  std::memcpy(frame.data() + kFrameHeaderBytes, image.data(), kPageSize);

  size_t to_write = frame.size();
  if (budget_armed_) {
    if (write_budget_ <= 0) {
      abandoned_ = true;
      return Status::OK();
    }
    if (static_cast<int64_t>(to_write) > write_budget_) {
      to_write = static_cast<size_t>(write_budget_);  // Tear mid-page.
      abandoned_ = true;
    }
    write_budget_ -= static_cast<int64_t>(to_write);
  }

  if (std::fseek(file_, static_cast<long>(SlotOffset(pid)), SEEK_SET) != 0) {
    return Status::IOError("page store seek failed");
  }
  if (to_write > 0 &&
      std::fwrite(frame.data(), 1, to_write, file_) != to_write) {
    return Status::IOError("page store write failed: " +
                           std::string(std::strerror(errno)));
  }
  if (std::fflush(file_) != 0) {
    return Status::IOError("page store flush failed");
  }
  bytes_written_ += static_cast<int64_t>(to_write);
  return Status::OK();
}

}  // namespace dflow::db
