#ifndef DFLOW_DB_VALUE_H_
#define DFLOW_DB_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "util/byte_buffer.h"
#include "util/result.h"

namespace dflow::db {

/// Column types supported by the embedded engine. The paper's metadata
/// databases (Arecibo candidate DB, EventStore's SQLite/MySQL backends,
/// WebLab's page-metadata store) need exactly these: identifiers, counts,
/// timestamps (int64 seconds), measurements, and strings.
enum class Type : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
};

std::string_view TypeToString(Type t);

/// A dynamically typed SQL value. NULL is modelled as its own type and
/// compares per SQL semantics only through Expr evaluation; the raw
/// Compare() below treats NULL as less than everything so it can be used as
/// a total order for sorting and B+Tree keys.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(v); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }

  Type type() const;
  bool is_null() const { return type() == Type::kNull; }

  /// Typed accessors; DFLOW_CHECK-fail on type mismatch (caller bugs, not
  /// data errors -- query execution validates types before touching these).
  bool AsBool() const;
  int64_t AsInt() const;
  double AsDouble() const;  // Also accepts kInt64 (widening).
  const std::string& AsString() const;

  /// Total order for sorting and index keys: NULL < bool < numeric <
  /// string; numerics compare by value across kInt64/kDouble.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Serialization for pages and WAL records.
  void EncodeTo(ByteWriter& w) const;
  static Result<Value> DecodeFrom(ByteReader& r);

  std::string ToString() const;

  /// Stable 64-bit hash (for group-by keys).
  uint64_t Hash() const;

 private:
  explicit Value(bool v) : data_(v) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}

  std::variant<std::monostate, bool, int64_t, double, std::string> data_;
};

}  // namespace dflow::db

#endif  // DFLOW_DB_VALUE_H_
