#include "db/page.h"

#include <cstring>

#include "util/logging.h"

namespace dflow::db {

Page::Page() : data_(kPageSize, 0), payload_start_(kPageSize) {
  StoreHeader();
}

void Page::StoreHeader() {
  uint16_t magic = kMagic;
  std::memcpy(data_.data(), &magic, 2);
  std::memcpy(data_.data() + 2, &num_slots_, 2);
  std::memcpy(data_.data() + 4, &payload_start_, 2);
  // Bytes [6, 8) reserved; [8, 16) hold the page LSN (set_lsn writes it
  // directly so header syncs never clobber it).
}

uint64_t Page::lsn() const {
  uint64_t lsn;
  std::memcpy(&lsn, data_.data() + kLsnOffset, sizeof(lsn));
  return lsn;
}

void Page::set_lsn(uint64_t lsn) {
  std::memcpy(data_.data() + kLsnOffset, &lsn, sizeof(lsn));
}

Result<Page> Page::FromImage(std::string_view image) {
  if (image.size() != kPageSize) {
    return Status::Corruption("page image has wrong size");
  }
  Page page;
  std::memcpy(page.data_.data(), image.data(), kPageSize);
  uint16_t magic;
  std::memcpy(&magic, page.data_.data(), 2);
  if (magic != kMagic) {
    return Status::Corruption("page image has bad magic");
  }
  std::memcpy(&page.num_slots_, page.data_.data() + 2, 2);
  std::memcpy(&page.payload_start_, page.data_.data() + 4, 2);
  size_t directory_end =
      kHeaderSize + static_cast<size_t>(page.num_slots_) * kSlotSize;
  if (directory_end > kPageSize || page.payload_start_ < directory_end ||
      page.payload_start_ > kPageSize) {
    return Status::Corruption("page header out of bounds");
  }
  // Recompute live_records_ from the slot directory, validating each slot.
  page.live_records_ = 0;
  for (uint16_t i = 0; i < page.num_slots_; ++i) {
    Slot s = page.GetSlot(i);
    if (s.offset == kTombstone) {
      continue;
    }
    if (s.offset < page.payload_start_ ||
        static_cast<size_t>(s.offset) + s.length > kPageSize) {
      return Status::Corruption("page slot out of bounds");
    }
    ++page.live_records_;
  }
  return page;
}

Page::Slot Page::GetSlot(uint16_t i) const {
  DFLOW_CHECK(i < num_slots_);
  Slot s;
  size_t pos = kHeaderSize + static_cast<size_t>(i) * kSlotSize;
  std::memcpy(&s.offset, data_.data() + pos, 2);
  std::memcpy(&s.length, data_.data() + pos + 2, 2);
  return s;
}

void Page::SetSlot(uint16_t i, Slot s) {
  size_t pos = kHeaderSize + static_cast<size_t>(i) * kSlotSize;
  std::memcpy(data_.data() + pos, &s.offset, 2);
  std::memcpy(data_.data() + pos + 2, &s.length, 2);
}

size_t Page::FreeBytes() const {
  size_t directory_end = kHeaderSize + static_cast<size_t>(num_slots_) * kSlotSize;
  return payload_start_ - directory_end;
}

Result<uint16_t> Page::Insert(std::string_view record) {
  if (record.size() > kPageSize) {
    return Status::InvalidArgument("record larger than page");
  }
  if (FreeBytes() < record.size() + kSlotSize) {
    return Status::ResourceExhausted("page full");
  }
  payload_start_ = static_cast<uint16_t>(payload_start_ - record.size());
  std::memcpy(data_.data() + payload_start_, record.data(), record.size());
  uint16_t slot = num_slots_++;
  SetSlot(slot, Slot{payload_start_, static_cast<uint16_t>(record.size())});
  ++live_records_;
  StoreHeader();
  return slot;
}

Result<std::string_view> Page::Get(uint16_t slot) const {
  if (slot >= num_slots_) {
    return Status::NotFound("slot out of range");
  }
  Slot s = GetSlot(slot);
  if (s.offset == kTombstone) {
    return Status::NotFound("slot deleted");
  }
  return std::string_view(data_.data() + s.offset, s.length);
}

Status Page::Delete(uint16_t slot) {
  if (slot >= num_slots_) {
    return Status::NotFound("slot out of range");
  }
  Slot s = GetSlot(slot);
  if (s.offset == kTombstone) {
    return Status::NotFound("slot already deleted");
  }
  SetSlot(slot, Slot{kTombstone, 0});
  --live_records_;
  return Status::OK();
}

Status Page::Update(uint16_t slot, std::string_view record) {
  if (slot >= num_slots_) {
    return Status::NotFound("slot out of range");
  }
  Slot s = GetSlot(slot);
  if (s.offset == kTombstone) {
    return Status::NotFound("slot deleted");
  }
  if (record.size() <= s.length) {
    // Shrinking update fits in place (leaves a hole at the tail).
    std::memcpy(data_.data() + s.offset, record.data(), record.size());
    SetSlot(slot, Slot{s.offset, static_cast<uint16_t>(record.size())});
    return Status::OK();
  }
  if (FreeBytes() >= record.size()) {
    payload_start_ = static_cast<uint16_t>(payload_start_ - record.size());
    std::memcpy(data_.data() + payload_start_, record.data(), record.size());
    SetSlot(slot, Slot{payload_start_, static_cast<uint16_t>(record.size())});
    StoreHeader();
    return Status::OK();
  }
  return Status::ResourceExhausted("update does not fit in page");
}

void Page::Compact() {
  // Collect live records, then rewrite payloads from the end.
  std::vector<std::pair<uint16_t, std::string>> live;
  for (uint16_t i = 0; i < num_slots_; ++i) {
    Slot s = GetSlot(i);
    if (s.offset != kTombstone) {
      live.emplace_back(i, std::string(data_.data() + s.offset, s.length));
    }
  }
  payload_start_ = kPageSize;
  for (auto& [slot, record] : live) {
    payload_start_ = static_cast<uint16_t>(payload_start_ - record.size());
    std::memcpy(data_.data() + payload_start_, record.data(), record.size());
    SetSlot(slot, Slot{payload_start_, static_cast<uint16_t>(record.size())});
  }
  StoreHeader();
}

}  // namespace dflow::db
