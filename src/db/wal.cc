#include "db/wal.h"

#include <cerrno>
#include <cstring>

#include "util/crc32.h"

namespace dflow::db {

WalWriter::~WalWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IOError("cannot open WAL '" + path +
                           "': " + std::strerror(errno));
  }
  return std::unique_ptr<WalWriter>(new WalWriter(file));
}

Status WalWriter::Append(std::string_view payload) {
  uint32_t len = static_cast<uint32_t>(payload.size());
  uint32_t crc = Crc32::Of(payload);
  if (std::fwrite(&len, sizeof(len), 1, file_) != 1 ||
      std::fwrite(&crc, sizeof(crc), 1, file_) != 1 ||
      (len > 0 && std::fwrite(payload.data(), len, 1, file_) != 1)) {
    return Status::IOError("WAL append failed: " +
                           std::string(std::strerror(errno)));
  }
  bytes_written_ += 8 + len;
  ++last_lsn_;
  return Status::OK();
}

Status WalWriter::Sync() {
  if (std::fflush(file_) != 0) {
    return Status::IOError("WAL flush failed");
  }
  durable_lsn_ = last_lsn_;
  return Status::OK();
}

Status WalWriter::EnsureDurable(uint64_t lsn) {
  if (lsn <= durable_lsn_) {
    return Status::OK();
  }
  return Sync();
}

Result<std::vector<std::string>> WalReadAll(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("no WAL at '" + path + "'");
  }
  std::vector<std::string> records;
  while (true) {
    uint32_t len, crc;
    if (std::fread(&len, sizeof(len), 1, file) != 1) {
      break;  // Clean end of log.
    }
    if (std::fread(&crc, sizeof(crc), 1, file) != 1) {
      break;  // Torn header.
    }
    if (len > (64u << 20)) {
      break;  // Implausible length: corrupt tail.
    }
    std::string payload(len, '\0');
    if (len > 0 && std::fread(payload.data(), len, 1, file) != 1) {
      break;  // Torn payload.
    }
    if (Crc32::Of(payload) != crc) {
      break;  // Corrupt record.
    }
    records.push_back(std::move(payload));
  }
  std::fclose(file);
  return records;
}

}  // namespace dflow::db
