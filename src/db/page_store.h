#ifndef DFLOW_DB_PAGE_STORE_H_
#define DFLOW_DB_PAGE_STORE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "db/page.h"
#include "util/result.h"

namespace dflow::db {

/// Backing store for pages evicted from the buffer pool. Page ids are
/// allocated by the pool; the store is a flat array of page slots.
///
/// Durability contract: the store holds *session-scoped spill state* — the
/// database of record is the logical WAL, which recovery replays from
/// scratch. The store's job is to let the working set exceed RAM and to
/// detect (never silently serve) torn or corrupted writebacks.
class PageStore {
 public:
  virtual ~PageStore() = default;

  /// Reads page `pid` into `image` (exactly kPageSize bytes) and returns
  /// its stored LSN. NotFound if the page was never written; Corruption if
  /// the stored bytes are torn or fail the checksum.
  virtual Result<uint64_t> Read(uint32_t pid, std::string* image) = 0;

  /// Writes the page image (must be kPageSize bytes) under `pid`.
  virtual Status Write(uint32_t pid, std::string_view image,
                       uint64_t lsn) = 0;

  virtual int64_t bytes_written() const = 0;

  /// SIGKILL-equivalent for chaos tests: after `budget` further bytes
  /// reach the medium, the write tears mid-page and every later write is
  /// dropped, exactly as if the process died at that byte. Default no-op
  /// (memory stores cannot tear).
  virtual void AbandonAfter(int64_t budget) { (void)budget; }
  virtual bool abandoned() const { return false; }
};

/// In-memory store: the backing for volatile databases, so a bounded pool
/// still evicts and reloads deterministically without touching disk.
class MemPageStore : public PageStore {
 public:
  Result<uint64_t> Read(uint32_t pid, std::string* image) override;
  Status Write(uint32_t pid, std::string_view image, uint64_t lsn) override;
  int64_t bytes_written() const override { return bytes_written_; }

 private:
  struct Slot {
    std::string image;
    uint64_t lsn = 0;
  };
  std::vector<std::optional<Slot>> slots_;
  int64_t bytes_written_ = 0;
};

/// File-backed store: a flat file of fixed-size page slots, each framed as
///   [u32 len][u32 crc][u64 lsn][kPageSize image]
/// — the same u32 len + CRC-32 discipline as the WAL, so a torn writeback
/// (crash mid-write) is detected on read and discarded as Corruption
/// rather than served as data.
class FilePageStore : public PageStore {
 public:
  ~FilePageStore() override;

  FilePageStore(const FilePageStore&) = delete;
  FilePageStore& operator=(const FilePageStore&) = delete;

  /// Creates (truncating any previous spill file) at `path`.
  static Result<std::unique_ptr<FilePageStore>> Create(
      const std::string& path);

  /// Opens an existing spill file read-only-in-spirit (used by crash tests
  /// to prove torn pages are detected; normal opens always Create fresh).
  static Result<std::unique_ptr<FilePageStore>> OpenExisting(
      const std::string& path);

  Result<uint64_t> Read(uint32_t pid, std::string* image) override;
  Status Write(uint32_t pid, std::string_view image, uint64_t lsn) override;
  int64_t bytes_written() const override { return bytes_written_; }

  void AbandonAfter(int64_t budget) override {
    write_budget_ = budget;
    budget_armed_ = true;
  }
  bool abandoned() const override { return abandoned_; }

  /// On-disk geometry, exposed so chaos tests can tear specific bytes.
  static constexpr size_t kFrameHeaderBytes = 16;
  static constexpr size_t kSlotBytes = kFrameHeaderBytes + kPageSize;
  static int64_t SlotOffset(uint32_t pid) {
    return static_cast<int64_t>(pid) * static_cast<int64_t>(kSlotBytes);
  }

 private:
  explicit FilePageStore(std::FILE* file) : file_(file) {}

  std::FILE* file_;
  int64_t bytes_written_ = 0;
  int64_t write_budget_ = 0;
  bool budget_armed_ = false;
  bool abandoned_ = false;
};

}  // namespace dflow::db

#endif  // DFLOW_DB_PAGE_STORE_H_
