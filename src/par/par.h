#ifndef DFLOW_PAR_PAR_H_
#define DFLOW_PAR_PAR_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/thread_pool.h"

namespace dflow::obs {
class MetricsRegistry;
class Tracer;
}  // namespace dflow::obs

namespace dflow::par {

/// Deterministic data-parallel layer over util::ThreadPool.
///
/// The contract every helper here honors (and every caller may rely on):
/// the RESULT of a parallel region is a pure function of its inputs — it
/// does not depend on the number of worker threads, on scheduling order,
/// or on whether the region ran serially. That is what lets the Arecibo /
/// WebLab / CLEO kernels keep their same-seed byte-identical outputs (and
/// the PR 3 golden-trace fingerprints) while using every core:
///
///  * Chunk boundaries are a fixed function of (range size, grain,
///    max_chunks) — never of the thread count. Which thread executes a
///    chunk is scheduling-dependent; what the chunk computes is not.
///  * ParallelMap writes each result into a pre-sized slot, so output
///    order is thread-count-invariant by construction.
///  * ParallelReduce combines per-chunk partials in a fixed pairwise tree
///    (never first-come-first-served), so floating-point reductions are
///    bit-stable across thread counts.
///
/// Execution model: the calling thread always participates (it grabs
/// chunks from the same shared cursor as the pool helpers), so a region
/// completes even if the shared pool is saturated with unrelated work —
/// there is no deadlock mode. Nested regions (a parallel body that opens
/// another region) run the inner region inline on the calling worker;
/// this keeps the pool non-reentrant and is still deterministic by the
/// contract above.

/// Threads the shared pool was (or would be) built with: the DFLOW_THREADS
/// environment variable if set to a positive integer, else
/// std::thread::hardware_concurrency() (minimum 1). Latched on first use.
int ConfiguredThreads();

/// Parses a DFLOW_THREADS-style value; returns fallback for null, empty,
/// non-numeric, or non-positive input. Exposed for tests.
int ParseThreadsValue(const char* value, int fallback);

/// Lazily-constructed process-wide pool with ConfiguredThreads() workers.
/// Returns nullptr when ConfiguredThreads() == 1 (fully serial process —
/// no pool is ever built). The pool is intentionally never destroyed, so
/// static-destruction order can't race in-flight work.
ThreadPool* SharedPool();

/// RAII: while alive, every parallel region in the process runs inline on
/// its calling thread (the determinism contract makes this observationally
/// equivalent; tests use it to get single-threaded replay and clean
/// coverage). Nestable; counts are balanced in the destructor.
class SerialOverride {
 public:
  SerialOverride();
  ~SerialOverride();
  SerialOverride(const SerialOverride&) = delete;
  SerialOverride& operator=(const SerialOverride&) = delete;
};

/// True when a SerialOverride is active or the calling thread is already
/// inside a parallel region (nested regions serialize).
bool SerialActive();

/// RAII: overrides the pool used by parallel regions issued from the
/// current thread (benches use it to sweep 1/2/4/8-thread pools in one
/// process). Passing nullptr forces serial execution for the scope.
/// Nestable; the innermost override wins.
class ScopedPool {
 public:
  explicit ScopedPool(ThreadPool* pool);
  ~ScopedPool();
  ScopedPool(const ScopedPool&) = delete;
  ScopedPool& operator=(const ScopedPool&) = delete;

 private:
  ThreadPool* previous_;
  bool had_previous_;
};

/// Observability: parallel regions publish deterministic counters into
/// `registry` ("par.regions", "par.regions_serial", "par.chunks",
/// "par.chunks_inline", "par.items") and one span per region ("par" /
/// label) into `tracer`. Both default to null; the disabled path is one
/// relaxed atomic load per region, matching the PR 3 convention. The
/// counters count structure (regions / fixed chunk boundaries / items),
/// not scheduling, so same work => same counter values at any thread
/// count.
void SetMetricsRegistry(obs::MetricsRegistry* registry);
void SetTracer(obs::Tracer* tracer);
obs::MetricsRegistry* GetMetricsRegistry();
obs::Tracer* GetTracer();

struct Options {
  /// Explicit executor; nullptr means "ambient": the innermost ScopedPool
  /// if one is active on this thread, else SharedPool().
  ThreadPool* pool = nullptr;
  /// Minimum items per chunk (amortizes per-chunk overhead on cheap
  /// bodies). Chunk count = clamp((end-begin)/grain, 1, max_chunks).
  int64_t grain = 1;
  /// Cap on chunk count; 0 means kDefaultMaxChunks. Fixed per call site —
  /// NEVER derived from the thread count, or determinism would break.
  int max_chunks = 0;
  /// Region name for the "par" trace span and for profiling; defaults to
  /// "par.region".
  const char* label = nullptr;
};

inline constexpr int kDefaultMaxChunks = 64;

/// The deterministic chunk decomposition of [begin, end): contiguous
/// half-open spans covering the range exactly once. Exposed so tests can
/// pin the thread-count independence of the boundaries themselves.
std::vector<std::pair<int64_t, int64_t>> ChunkRanges(int64_t begin,
                                                     int64_t end,
                                                     const Options& options);

/// Runs body(chunk_begin, chunk_end) over the deterministic chunk
/// decomposition of [begin, end), in parallel on the resolved pool (the
/// caller participates). Returns after every chunk has run. The body must
/// only write state disjoint per index (or per chunk) — the usual
/// data-parallel contract.
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& body,
                 const Options& options = {});

/// out[i] = fn(i) for i in [0, n), each result written into its pre-sized
/// slot — output order is thread-count-invariant by construction. T must
/// be default-constructible and movable.
template <typename T, typename Fn>
std::vector<T> ParallelMap(int64_t n, Fn&& fn, const Options& options = {}) {
  std::vector<T> out(static_cast<size_t>(n < 0 ? 0 : n));
  ParallelFor(
      0, n,
      [&out, &fn](int64_t chunk_begin, int64_t chunk_end) {
        for (int64_t i = chunk_begin; i < chunk_end; ++i) {
          out[static_cast<size_t>(i)] = fn(i);
        }
      },
      options);
  return out;
}

namespace internal {
/// Pairwise tree fold of partials[0..count): ((p0⊕p1)⊕(p2⊕p3))⊕... —
/// a fixed combine order independent of which thread produced which
/// partial. Requires count >= 1.
template <typename T, typename CombineFn>
T TreeCombine(std::vector<T>& partials, CombineFn&& combine) {
  size_t count = partials.size();
  while (count > 1) {
    size_t next = 0;
    for (size_t i = 0; i + 1 < count; i += 2) {
      partials[next++] = combine(std::move(partials[i]),
                                 std::move(partials[i + 1]));
    }
    if (count % 2 == 1) {
      partials[next++] = std::move(partials[count - 1]);
    }
    count = next;
  }
  return std::move(partials[0]);
}
}  // namespace internal

/// Deterministic parallel reduction: partial[i] = map(chunk_i_begin,
/// chunk_i_end) computed in parallel into fixed slots, then combined with
/// a pairwise tree in fixed order. Because both the chunk boundaries and
/// the combine tree are independent of the thread count, floating-point
/// results are bit-identical at 1, 2, 4, or 8 threads. Returns `identity`
/// for an empty range.
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(int64_t begin, int64_t end, T identity, MapFn&& map,
                 CombineFn&& combine, const Options& options = {}) {
  if (begin >= end) {
    return identity;
  }
  const std::vector<std::pair<int64_t, int64_t>> chunks =
      ChunkRanges(begin, end, options);
  std::vector<T> partials(chunks.size());
  Options chunk_options = options;
  chunk_options.grain = 1;
  chunk_options.max_chunks = static_cast<int>(chunks.size());
  ParallelFor(
      0, static_cast<int64_t>(chunks.size()),
      [&partials, &chunks, &map](int64_t chunk_begin, int64_t chunk_end) {
        for (int64_t i = chunk_begin; i < chunk_end; ++i) {
          const auto& span = chunks[static_cast<size_t>(i)];
          partials[static_cast<size_t>(i)] = map(span.first, span.second);
        }
      },
      chunk_options);
  T folded = internal::TreeCombine(partials, combine);
  return combine(std::move(identity), std::move(folded));
}

}  // namespace dflow::par

#endif  // DFLOW_PAR_PAR_H_
