#include "par/par.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace dflow::par {

namespace {

/// Process-wide serial override depth (SerialOverride RAII).
std::atomic<int> g_serial_depth{0};

/// Depth of parallel regions on the calling thread: a body that opens
/// another region runs it inline (keeps the pool non-reentrant).
thread_local int t_region_depth = 0;

/// Innermost ScopedPool override for this thread. The pair distinguishes
/// "no override" from "override to serial (nullptr)".
thread_local ThreadPool* t_pool_override = nullptr;
thread_local bool t_pool_overridden = false;

std::atomic<obs::MetricsRegistry*> g_metrics{nullptr};
std::atomic<obs::Tracer*> g_tracer{nullptr};

/// Shared state of one in-flight region. Pool helpers hold a shared_ptr,
/// so a helper that is scheduled after the caller already finished every
/// chunk still finds live (but exhausted) state.
struct RegionState {
  const std::function<void(int64_t, int64_t)>* body = nullptr;
  std::vector<std::pair<int64_t, int64_t>> chunks;
  std::atomic<int64_t> next_chunk{0};
  std::mutex mu;
  std::condition_variable done_cv;
  int64_t completed = 0;  // Guarded by mu.
};

/// Drains chunks from the shared cursor until none remain. Runs on pool
/// helpers AND on the calling thread.
void DrainChunks(RegionState& state) {
  ++t_region_depth;  // Nested regions inside the body serialize.
  const int64_t num_chunks = static_cast<int64_t>(state.chunks.size());
  int64_t ran = 0;
  while (true) {
    const int64_t i = state.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (i >= num_chunks) {
      break;
    }
    const auto& span = state.chunks[static_cast<size_t>(i)];
    (*state.body)(span.first, span.second);
    ++ran;
  }
  --t_region_depth;
  if (ran > 0) {
    std::lock_guard<std::mutex> lock(state.mu);
    state.completed += ran;
    if (state.completed == num_chunks) {
      state.done_cv.notify_all();
    }
  }
}

}  // namespace

int ParseThreadsValue(const char* value, int fallback) {
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 1 || parsed > 4096) {
    return fallback;
  }
  return static_cast<int>(parsed);
}

int ConfiguredThreads() {
  static const int threads = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    const int fallback = hw == 0 ? 1 : static_cast<int>(hw);
    return ParseThreadsValue(std::getenv("DFLOW_THREADS"), fallback);
  }();
  return threads;
}

ThreadPool* SharedPool() {
  if (ConfiguredThreads() <= 1) {
    return nullptr;
  }
  // Leaked on purpose: workers may still be parked in the pool's condition
  // variable at exit, and destroying it from a static destructor would
  // race any code that runs later in shutdown. The pointer stays reachable
  // so leak checkers stay quiet.
  static ThreadPool* const pool = new ThreadPool(ConfiguredThreads());
  return pool;
}

SerialOverride::SerialOverride() {
  g_serial_depth.fetch_add(1, std::memory_order_relaxed);
}

SerialOverride::~SerialOverride() {
  g_serial_depth.fetch_sub(1, std::memory_order_relaxed);
}

bool SerialActive() {
  return t_region_depth > 0 ||
         g_serial_depth.load(std::memory_order_relaxed) > 0;
}

ScopedPool::ScopedPool(ThreadPool* pool)
    : previous_(t_pool_override), had_previous_(t_pool_overridden) {
  t_pool_override = pool;
  t_pool_overridden = true;
}

ScopedPool::~ScopedPool() {
  t_pool_override = previous_;
  t_pool_overridden = had_previous_;
}

void SetMetricsRegistry(obs::MetricsRegistry* registry) {
  g_metrics.store(registry, std::memory_order_relaxed);
}

void SetTracer(obs::Tracer* tracer) {
  g_tracer.store(tracer, std::memory_order_relaxed);
}

obs::MetricsRegistry* GetMetricsRegistry() {
  return g_metrics.load(std::memory_order_relaxed);
}

obs::Tracer* GetTracer() {
  return g_tracer.load(std::memory_order_relaxed);
}

std::vector<std::pair<int64_t, int64_t>> ChunkRanges(
    int64_t begin, int64_t end, const Options& options) {
  std::vector<std::pair<int64_t, int64_t>> chunks;
  if (begin >= end) {
    return chunks;
  }
  const int64_t n = end - begin;
  const int64_t grain = options.grain < 1 ? 1 : options.grain;
  const int64_t max_chunks =
      options.max_chunks > 0 ? options.max_chunks : kDefaultMaxChunks;
  int64_t count = n / grain;
  if (count < 1) {
    count = 1;
  }
  if (count > max_chunks) {
    count = max_chunks;
  }
  chunks.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    // Uniform integer split: chunk i covers [begin + i*n/count,
    // begin + (i+1)*n/count). Boundaries depend only on (n, count).
    const int64_t lo = begin + i * n / count;
    const int64_t hi = begin + (i + 1) * n / count;
    chunks.emplace_back(lo, hi);
  }
  return chunks;
}

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& body,
                 const Options& options) {
  if (begin >= end) {
    return;
  }

  // Resolve the executor: explicit > ScopedPool override > shared pool;
  // serial override / nesting force inline execution.
  ThreadPool* pool = options.pool;
  if (pool == nullptr) {
    pool = t_pool_overridden ? t_pool_override : SharedPool();
  }
  const bool serial = SerialActive() || pool == nullptr ||
                      pool->num_threads() <= 1;

  obs::MetricsRegistry* metrics = g_metrics.load(std::memory_order_relaxed);
  obs::Tracer* tracer = g_tracer.load(std::memory_order_relaxed);
  const char* label = options.label != nullptr ? options.label : "par.region";
  obs::SpanGuard span(tracer, label, "par");

  if (serial) {
    // Inline execution still walks the same chunk decomposition, so a
    // chunk-granular body observes identical boundaries either way.
    const auto chunks = ChunkRanges(begin, end, options);
    ++t_region_depth;
    for (const auto& [lo, hi] : chunks) {
      body(lo, hi);
    }
    --t_region_depth;
    if (metrics != nullptr) {
      metrics->GetCounter("par.regions")->Increment();
      metrics->GetCounter("par.regions_serial")->Increment();
      metrics->GetCounter("par.chunks")
          ->Add(static_cast<int64_t>(chunks.size()));
      metrics->GetCounter("par.chunks_inline")
          ->Add(static_cast<int64_t>(chunks.size()));
      metrics->GetCounter("par.items")->Add(end - begin);
    }
    span.AddArg("chunks", std::to_string(chunks.size()));
    return;
  }

  auto state = std::make_shared<RegionState>();
  state->body = &body;
  state->chunks = ChunkRanges(begin, end, options);
  const int64_t num_chunks = static_cast<int64_t>(state->chunks.size());

  // One helper per pool worker (capped by the chunk count; the caller
  // takes the place of the last helper). Helpers that arrive after the
  // cursor is exhausted exit immediately.
  const int64_t helpers =
      std::min<int64_t>(pool->num_threads(), num_chunks) - 1;
  for (int64_t h = 0; h < helpers; ++h) {
    pool->Submit([state] { DrainChunks(*state); });
  }
  DrainChunks(*state);
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(lock,
                        [&] { return state->completed == num_chunks; });
  }
  // `body` is owned by the caller and dies on return; helpers past this
  // point see an exhausted cursor and never touch it.
  state->body = nullptr;

  if (metrics != nullptr) {
    metrics->GetCounter("par.regions")->Increment();
    metrics->GetCounter("par.chunks")->Add(num_chunks);
    metrics->GetCounter("par.items")->Add(end - begin);
  }
  span.AddArg("chunks", std::to_string(num_chunks));
}

}  // namespace dflow::par
