#include "obs/metrics.h"

#include <cstdio>
#include <functional>
#include <sstream>
#include <thread>

namespace dflow::obs {

namespace {

/// Deterministic float formatting for the JSON snapshot: %.6g prints the
/// same bytes for the same double on every conforming libc.
std::string FmtDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

StripedHistogram::StripedHistogram(int num_stripes) {
  if (num_stripes < 1) {
    num_stripes = 1;
  }
  stripes_.reserve(static_cast<size_t>(num_stripes));
  for (int i = 0; i < num_stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

void StripedHistogram::Record(double seconds) {
  size_t stripe = std::hash<std::thread::id>{}(std::this_thread::get_id()) %
                  stripes_.size();
  Stripe& s = *stripes_[stripe];
  std::lock_guard<std::mutex> lock(s.mu);
  s.histogram.Record(seconds);
}

LatencyHistogram StripedHistogram::Snapshot() const {
  LatencyHistogram merged;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    merged.Merge(stripe->histogram);
  }
  return merged;
}

void StripedHistogram::Reset() {
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    stripe->histogram.Reset();
  }
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

StripedHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                                int num_stripes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<StripedHistogram>(num_stripes);
  }
  return slot.get();
}

int64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->Value();
}

Result<int64_t> MetricsRegistry::CheckedCounterValue(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    return Status::NotFound("no counter named '" + name + "'");
  }
  return it->second->Value();
}

std::vector<std::string> MetricsRegistry::CounterNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> MetricsRegistry::GaugeNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> MetricsRegistry::HistogramNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    names.push_back(name);
  }
  return names;
}

std::string MetricsRegistry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {  // std::map: sorted.
    if (!first) {
      out += ",";
    }
    first = false;
    AppendJsonString(&out, name);
    out += ":" + std::to_string(counter->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) {
      out += ",";
    }
    first = false;
    AppendJsonString(&out, name);
    out += ":" + FmtDouble(gauge->Value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) {
      out += ",";
    }
    first = false;
    AppendJsonString(&out, name);
    LatencyHistogram h = histogram->Snapshot();
    out += ":{\"count\":" + std::to_string(h.count());
    out += ",\"mean_sec\":" + FmtDouble(h.mean_sec());
    out += ",\"p50_sec\":" + FmtDouble(h.Percentile(0.50));
    out += ",\"p90_sec\":" + FmtDouble(h.Percentile(0.90));
    out += ",\"p99_sec\":" + FmtDouble(h.Percentile(0.99));
    out += ",\"p999_sec\":" + FmtDouble(h.Percentile(0.999));
    out += ",\"max_sec\":" + FmtDouble(h.max_sec()) + "}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

}  // namespace dflow::obs
