#ifndef DFLOW_OBS_TRACE_H_
#define DFLOW_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace dflow::obs {

/// Key/value annotations attached to a trace event ("product", "attempt",
/// "outcome", ...). Values are emitted as JSON strings.
using TraceArgs = std::vector<std::pair<std::string, std::string>>;

/// One Chrome trace_event. `phase` follows the trace_event spec: 'X'
/// complete (ts + dur), 'i' instant, 'M' metadata (track naming).
struct TraceEvent {
  char phase = 'X';
  std::string name;
  std::string category;
  int64_t ts_us = 0;
  int64_t dur_us = 0;
  int tid = 0;
  TraceArgs args;
};

struct TracerConfig {
  /// Where timestamps come from:
  ///  - kWall:     steady_clock microseconds since tracer construction.
  ///  - kLogical:  a monotonically ticking counter — every NowUs() call
  ///               advances it by one. Serialized executions replay to
  ///               byte-identical traces, which is what makes the trace a
  ///               golden test oracle for wall-clock subsystems (ServeLoop).
  ///  - kExternal: `external_now_sec` supplies the time; bind the
  ///               simulation clock here and flow/storage/net spans carry
  ///               deterministic virtual timestamps.
  enum class ClockMode { kWall, kLogical, kExternal };
  ClockMode clock = ClockMode::kWall;
  std::function<double()> external_now_sec;

  /// Events beyond the cap are counted in dropped() instead of recorded,
  /// so a runaway trace cannot eat the heap.
  size_t max_events = 1u << 20;

  bool enabled = true;
};

/// Structured tracer: subsystems record nestable spans (complete events
/// with explicit ts/dur) and instants; Export() renders the buffer as
/// Chrome trace_event JSON loadable in about:tracing / Perfetto.
///
/// Disabled path: enabled() is one relaxed atomic load, and every
/// instrumentation site in core/serve/storage/net guards on it (or on a
/// null tracer pointer) before building any strings — tracing off costs a
/// branch.
///
/// Determinism: events are appended in call order. Under the simulation
/// (single-threaded, virtual clock) or a serialized logical-clock run, the
/// same seed therefore produces a byte-identical ExportChromeJson(), and
/// Fingerprint() (MD5, like WorkloadGen::Fingerprint) asserts it cheaply.
///
/// Thread-safe: the buffer and thread-track table are mutex-guarded; the
/// logical clock is atomic.
class Tracer {
 public:
  explicit Tracer(TracerConfig config = {});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Current timestamp in microseconds per the configured clock. In
  /// kLogical mode every call ticks the clock by 1 µs.
  int64_t NowUs();

  /// Records a complete span [ts_us, ts_us + dur_us). `tid` < 0 means
  /// "the calling thread's track" (see CurrentTid). No-op when disabled.
  void CompleteEvent(std::string name, std::string category, int64_t ts_us,
                     int64_t dur_us, TraceArgs args = {}, int tid = -1);

  /// Records an instant event at NowUs(). No-op when disabled.
  void InstantEvent(std::string name, std::string category,
                    TraceArgs args = {}, int tid = -1);

  /// Names a track ("thread_name" metadata): Perfetto shows `label`
  /// instead of a bare tid. No-op when disabled.
  void NameTrack(int tid, const std::string& label);

  /// Stable small integer identifying the calling thread's track,
  /// assigned in first-use order.
  int CurrentTid();

  size_t event_count() const;
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  void Clear();

  /// {"traceEvents":[...],"displayTimeUnit":"ms"} — one event per line, in
  /// recording order, fixed formatting (deterministic given deterministic
  /// events).
  std::string ExportChromeJson() const;

  /// MD5 hex digest of ExportChromeJson().
  std::string Fingerprint() const;

  const TracerConfig& config() const { return config_; }

 private:
  void Append(TraceEvent event);

  TracerConfig config_;
  std::atomic<bool> enabled_;
  std::atomic<int64_t> logical_clock_us_{0};
  std::atomic<int64_t> dropped_{0};
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::map<std::thread::id, int> thread_tracks_;
};

/// RAII span: stamps the start time at construction and records one
/// complete event at destruction. Near-free when the tracer is null or
/// disabled (one branch, no strings touched).
class SpanGuard {
 public:
  SpanGuard(Tracer* tracer, std::string name, std::string category,
            TraceArgs args = {})
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr) {
    if (tracer_ != nullptr) {
      name_ = std::move(name);
      category_ = std::move(category);
      args_ = std::move(args);
      start_us_ = tracer_->NowUs();
    }
  }

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  /// Attaches an annotation discovered mid-span ("outcome", "bytes").
  void AddArg(std::string key, std::string value) {
    if (tracer_ != nullptr) {
      args_.emplace_back(std::move(key), std::move(value));
    }
  }

  ~SpanGuard() {
    if (tracer_ != nullptr) {
      int64_t end_us = tracer_->NowUs();
      tracer_->CompleteEvent(std::move(name_), std::move(category_),
                             start_us_, end_us - start_us_,
                             std::move(args_));
    }
  }

 private:
  Tracer* tracer_;
  std::string name_;
  std::string category_;
  TraceArgs args_;
  int64_t start_us_ = 0;
};

}  // namespace dflow::obs

#endif  // DFLOW_OBS_TRACE_H_
