#include "obs/trace.h"

#include <cmath>
#include <cstdio>

#include "util/md5.h"

namespace dflow::obs {

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

Tracer::Tracer(TracerConfig config)
    : config_(std::move(config)),
      enabled_(config_.enabled),
      epoch_(std::chrono::steady_clock::now()) {}

int64_t Tracer::NowUs() {
  switch (config_.clock) {
    case TracerConfig::ClockMode::kWall:
      return std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now() - epoch_)
          .count();
    case TracerConfig::ClockMode::kLogical:
      return logical_clock_us_.fetch_add(1, std::memory_order_relaxed);
    case TracerConfig::ClockMode::kExternal:
      return config_.external_now_sec
                 ? static_cast<int64_t>(
                       std::llround(config_.external_now_sec() * 1e6))
                 : 0;
  }
  return 0;
}

void Tracer::Append(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= config_.max_events) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
}

int Tracer::CurrentTid() {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = thread_tracks_.try_emplace(
      std::this_thread::get_id(), static_cast<int>(thread_tracks_.size()));
  return it->second;
}

void Tracer::CompleteEvent(std::string name, std::string category,
                           int64_t ts_us, int64_t dur_us, TraceArgs args,
                           int tid) {
  if (!enabled()) {
    return;
  }
  TraceEvent event;
  event.phase = 'X';
  event.name = std::move(name);
  event.category = std::move(category);
  event.ts_us = ts_us;
  event.dur_us = dur_us < 0 ? 0 : dur_us;
  event.tid = tid >= 0 ? tid : CurrentTid();
  event.args = std::move(args);
  Append(std::move(event));
}

void Tracer::InstantEvent(std::string name, std::string category,
                          TraceArgs args, int tid) {
  if (!enabled()) {
    return;
  }
  TraceEvent event;
  event.phase = 'i';
  event.name = std::move(name);
  event.category = std::move(category);
  event.ts_us = NowUs();
  event.tid = tid >= 0 ? tid : CurrentTid();
  event.args = std::move(args);
  Append(std::move(event));
}

void Tracer::NameTrack(int tid, const std::string& label) {
  if (!enabled()) {
    return;
  }
  TraceEvent event;
  event.phase = 'M';
  event.name = "thread_name";
  event.category = "__metadata";
  event.tid = tid;
  event.args.emplace_back("name", label);
  Append(std::move(event));
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  thread_tracks_.clear();
  dropped_.store(0, std::memory_order_relaxed);
  logical_clock_us_.store(0, std::memory_order_relaxed);
}

std::string Tracer::ExportChromeJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(events_.size() * 96 + 64);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  for (const TraceEvent& event : events_) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += "{\"name\":";
    AppendJsonString(&out, event.name);
    out += ",\"cat\":";
    AppendJsonString(&out, event.category);
    out += ",\"ph\":\"";
    out.push_back(event.phase);
    out += "\",\"ts\":" + std::to_string(event.ts_us);
    if (event.phase == 'X') {
      out += ",\"dur\":" + std::to_string(event.dur_us);
    }
    if (event.phase == 'i') {
      out += ",\"s\":\"t\"";  // Instant scope: thread.
    }
    out += ",\"pid\":0,\"tid\":" + std::to_string(event.tid);
    if (!event.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : event.args) {
        if (!first_arg) {
          out += ",";
        }
        first_arg = false;
        AppendJsonString(&out, key);
        out += ":";
        AppendJsonString(&out, value);
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string Tracer::Fingerprint() const {
  return Md5::HexOf(ExportChromeJson());
}

}  // namespace dflow::obs
