#ifndef DFLOW_OBS_METRICS_H_
#define DFLOW_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/latency_histogram.h"
#include "util/result.h"

namespace dflow::obs {

/// Monotonic event count. Relaxed atomics: increments are a single
/// fetch_add on the hot path, exactly the cost class of the bespoke
/// `int64_t` fields it replaces across the tiers.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, utilization, bytes
/// resident). Add() is a CAS loop — fine off the hot path.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Thread-safe log-bucketed histogram: N independently locked
/// LatencyHistogram stripes selected by thread-id hash — the same striping
/// ServeLoop uses for its tail-latency measurement, packaged so any named
/// duration in the registry gets it for free. Snapshot() merges at read
/// time.
class StripedHistogram {
 public:
  explicit StripedHistogram(int num_stripes = 8);

  StripedHistogram(const StripedHistogram&) = delete;
  StripedHistogram& operator=(const StripedHistogram&) = delete;

  void Record(double seconds);
  LatencyHistogram Snapshot() const;
  void Reset();
  int num_stripes() const { return static_cast<int>(stripes_.size()); }

 private:
  struct Stripe {
    mutable std::mutex mu;
    LatencyHistogram histogram;
  };
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

/// Process-wide (or per-harness) named-metric registry: the one shared
/// substrate every tier publishes into, replacing per-subsystem ad-hoc
/// counter fields. Get*() registers on first use and returns a stable
/// pointer — callers resolve once and then increment lock-free.
///
/// Thread-safe. Names are free-form dotted paths by convention
/// ("flow.<stage>.errors", "serve.cache_hits", "hsm.operator_repairs").
///
/// SnapshotJson() is deterministic: names are emitted in sorted order with
/// fixed formatting, so two runs that performed identical work export
/// byte-identical snapshots — which makes the snapshot itself a test
/// oracle, per the reproducibility tenets.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates. The returned pointer is valid for the registry's
  /// lifetime.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `num_stripes` only applies on first creation.
  StripedHistogram* GetHistogram(const std::string& name,
                                 int num_stripes = 8);

  /// Read-side conveniences. The unchecked form returns 0 for a name that
  /// was never registered; the Checked form returns NotFound so callers
  /// can distinguish "never incremented" from "typo" (the PR 1 accessor
  /// convention).
  int64_t CounterValue(const std::string& name) const;
  Result<int64_t> CheckedCounterValue(const std::string& name) const;

  std::vector<std::string> CounterNames() const;
  std::vector<std::string> GaugeNames() const;
  std::vector<std::string> HistogramNames() const;

  /// Deterministic JSON export:
  ///   {"counters":{...},"gauges":{...},"histograms":{...}}
  /// sorted by name, fixed float formatting.
  std::string SnapshotJson() const;

  /// Zeroes every counter and resets every histogram (gauges keep their
  /// last value). Handles stay valid.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<StripedHistogram>> histograms_;
};

}  // namespace dflow::obs

#endif  // DFLOW_OBS_METRICS_H_
