#ifndef DFLOW_OBS_LATENCY_HISTOGRAM_H_
#define DFLOW_OBS_LATENCY_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string>

namespace dflow::obs {

/// Log-bucketed latency histogram. Buckets grow geometrically (factor 1.25)
/// from 1 µs, so the relative quantile error is bounded by ~25% across
/// twelve decades while the whole object is a fixed-size array — cheap to
/// keep one per worker and Merge() at read time, which is how `ServeLoop`
/// records latencies without a global lock on the hot path and how the
/// obs metrics registry stripes its histograms.
///
/// (Grew up in the dissemination tier as serve::LatencyHistogram; it moved
/// down into the observability layer so every tier can record durations
/// without depending on serve. serve/latency_histogram.h aliases it.)
///
/// Not internally synchronized: callers either own one exclusively (one
/// per worker stripe) or guard it externally.
class LatencyHistogram {
 public:
  /// Bucket 0 is [0, 1 µs); bucket i >= 1 is [1µs·g^(i-1), 1µs·g^i) with
  /// g = 1.25. 160 buckets span past 10^9 seconds.
  static constexpr int kNumBuckets = 160;
  static constexpr double kMinBoundSec = 1e-6;
  static constexpr double kGrowth = 1.25;

  LatencyHistogram();

  /// Records one observation (negative values clamp to 0).
  void Record(double seconds);

  /// Adds `other`'s observations into this histogram.
  void Merge(const LatencyHistogram& other);

  void Reset();

  int64_t count() const { return count_; }
  /// Exact (not bucketed) extremes and mean over everything recorded.
  double min_sec() const { return count_ == 0 ? 0.0 : min_sec_; }
  double max_sec() const { return max_sec_; }
  double mean_sec() const { return count_ == 0 ? 0.0 : sum_sec_ / count_; }
  double total_sec() const { return sum_sec_; }

  /// Quantile estimate for p in [0, 1]: the geometric midpoint of the
  /// bucket holding the ceil(p * count)-th observation, clamped to the
  /// exact [min, max] envelope. 0 when empty.
  double Percentile(double p) const;

  /// "n=1234 mean=1.2ms p50=0.9ms p90=2.1ms p99=8.8ms p99.9=14ms max=15ms".
  std::string Summary() const;

  /// Bucket index an observation of `seconds` lands in (exposed for tests).
  static int BucketIndex(double seconds);
  /// Inclusive lower bound of bucket `index`.
  static double BucketLowerBound(int index);

  int64_t bucket_count(int index) const {
    return buckets_[static_cast<size_t>(index)];
  }

 private:
  std::array<int64_t, kNumBuckets> buckets_;
  int64_t count_ = 0;
  double sum_sec_ = 0.0;
  double min_sec_ = 0.0;
  double max_sec_ = 0.0;
};

}  // namespace dflow::obs

#endif  // DFLOW_OBS_LATENCY_HISTOGRAM_H_
