#include "obs/latency_histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dflow::obs {

namespace {

// 1 / ln(kGrowth), precomputed.
const double kInvLogGrowth = 1.0 / std::log(LatencyHistogram::kGrowth);

std::string FormatSeconds(double seconds) {
  char buf[32];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
  }
  return buf;
}

}  // namespace

LatencyHistogram::LatencyHistogram() { buckets_.fill(0); }

int LatencyHistogram::BucketIndex(double seconds) {
  if (!(seconds >= kMinBoundSec)) {  // Also catches NaN / negatives.
    return 0;
  }
  int index =
      1 + static_cast<int>(std::floor(std::log(seconds / kMinBoundSec) *
                                      kInvLogGrowth));
  return std::clamp(index, 1, kNumBuckets - 1);
}

double LatencyHistogram::BucketLowerBound(int index) {
  if (index <= 0) {
    return 0.0;
  }
  return kMinBoundSec * std::pow(kGrowth, index - 1);
}

void LatencyHistogram::Record(double seconds) {
  if (seconds < 0.0) {
    seconds = 0.0;
  }
  buckets_[static_cast<size_t>(BucketIndex(seconds))]++;
  if (count_ == 0 || seconds < min_sec_) {
    min_sec_ = seconds;
  }
  max_sec_ = std::max(max_sec_, seconds);
  sum_sec_ += seconds;
  ++count_;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) {
    return;
  }
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[static_cast<size_t>(i)] +=
        other.buckets_[static_cast<size_t>(i)];
  }
  if (count_ == 0 || other.min_sec_ < min_sec_) {
    min_sec_ = other.min_sec_;
  }
  max_sec_ = std::max(max_sec_, other.max_sec_);
  sum_sec_ += other.sum_sec_;
  count_ += other.count_;
}

void LatencyHistogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_sec_ = 0.0;
  min_sec_ = 0.0;
  max_sec_ = 0.0;
}

double LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 1.0);
  int64_t rank = static_cast<int64_t>(std::ceil(p * count_));
  rank = std::clamp<int64_t>(rank, 1, count_);
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[static_cast<size_t>(i)];
    if (seen >= rank) {
      double lo = BucketLowerBound(i);
      double hi =
          i + 1 < kNumBuckets ? BucketLowerBound(i + 1) : max_sec_;
      // Geometric midpoint (arithmetic for the [0, 1us) bucket).
      double mid = i == 0 ? 0.5 * (lo + hi) : std::sqrt(lo * hi);
      return std::clamp(mid, min_sec_, max_sec_);
    }
  }
  return max_sec_;
}

std::string LatencyHistogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%lld mean=%s p50=%s p90=%s p99=%s p99.9=%s max=%s",
                static_cast<long long>(count_),
                FormatSeconds(mean_sec()).c_str(),
                FormatSeconds(Percentile(0.50)).c_str(),
                FormatSeconds(Percentile(0.90)).c_str(),
                FormatSeconds(Percentile(0.99)).c_str(),
                FormatSeconds(Percentile(0.999)).c_str(),
                FormatSeconds(max_sec()).c_str());
  return buf;
}

}  // namespace dflow::obs
