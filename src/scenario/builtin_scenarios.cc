#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "core/web_service.h"
#include "fault/adapters.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "net/network_link.h"
#include "obs/latency_histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "recover/scrubber.h"
#include "scenario/scenario.h"
#include "scenario/shapes.h"
#include "scenario/wfcommons.h"
#include "serve/serve_loop.h"
#include "serve/workload_gen.h"
#include "sim/simulation.h"
#include "storage/tape.h"
#include "util/logging.h"
#include "util/md5.h"
#include "util/rng.h"

namespace dflow::scenario {
namespace {

// ===========================================================================
// Shared helpers.

std::string FmtMs(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Exact percentile of a sample vector (p in [0,1]); 0 when empty.
double ExactPercentile(std::vector<double> samples, double p) {
  if (samples.empty()) {
    return 0.0;
  }
  size_t k = static_cast<size_t>(
      std::min<double>(static_cast<double>(samples.size()) - 1.0,
                       std::max(0.0, std::ceil(p * samples.size()) - 1.0)));
  std::nth_element(samples.begin(), samples.begin() + k, samples.end());
  return samples[k];
}

/// Backend standing in for the case studies' analysis services: burns a
/// fixed slice of wall time per request and answers with a deterministic
/// body. Thread-safe (no shared state), so scenarios run it under
/// BackendLocking::kNone; responses are uncacheable so every request costs
/// backend time and offered load translates directly into pressure.
class AnalysisService : public core::WebService {
 public:
  explicit AnalysisService(double service_us) : service_us_(service_us) {}

  Result<core::ServiceResponse> Handle(
      const core::ServiceRequest& request) override {
    if (service_us_ > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(service_us_));
    }
    core::ServiceResponse response;
    response.body = "ok:" + request.path;
    response.cache_max_age_sec = core::ServiceResponse::kUncacheable;
    return response;
  }

  std::vector<std::string> Endpoints() const override { return {"item"}; }
  const std::string& name() const override { return name_; }

 private:
  double service_us_;
  std::string name_ = "analysis";
};

/// A primary backend that can be failed from the outside — the breaker
/// scenario's dying service. While failing_ is set every request returns
/// IOError (after the usual service time, like a real timing-out backend).
class FlakyAnalysisService : public core::WebService {
 public:
  explicit FlakyAnalysisService(double service_us) : inner_(service_us) {}

  void SetFailing(bool failing) {
    failing_.store(failing, std::memory_order_relaxed);
  }

  Result<core::ServiceResponse> Handle(
      const core::ServiceRequest& request) override {
    Result<core::ServiceResponse> response = inner_.Handle(request);
    if (failing_.load(std::memory_order_relaxed)) {
      return Status::IOError("primary backend down");
    }
    return response;
  }

  std::vector<std::string> Endpoints() const override {
    return inner_.Endpoints();
  }
  const std::string& name() const override { return name_; }

 private:
  AnalysisService inner_;
  std::atomic<bool> failing_{false};
  std::string name_ = "flaky-analysis";
};

std::vector<core::ServiceRequest> BuildPopulation(size_t n) {
  std::vector<core::ServiceRequest> population;
  population.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    core::ServiceRequest request;
    request.path = "svc/item/" + std::to_string(i);
    request.params["q"] = std::to_string(i);
    population.push_back(std::move(request));
  }
  return population;
}

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ServeReplayOutcome {
  serve::ServeStats stats;
  obs::LatencyHistogram latencies;
};

/// Replays a materialized schedule against a live ServeLoop from the
/// calling thread, pacing to each arrival's offset (the bench_serve_tail
/// open-loop discipline: coarse sleep, then yield). `on_tick`, if set, runs
/// once per arrival with the elapsed wall seconds — the hook the breaker
/// scenario uses to drive its failure window and recovery probe without a
/// second control thread.
ServeReplayOutcome ReplaySchedule(
    serve::ServeLoop& loop,
    const std::vector<serve::TimedRequest>& schedule,
    const std::function<void(double)>& on_tick = nullptr) {
  double start = NowSec();
  for (const serve::TimedRequest& event : schedule) {
    for (;;) {
      double now = NowSec() - start;
      double wait = event.at_sec - now;
      if (wait <= 0.0) {
        break;
      }
      if (wait > 0.001) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(wait - 0.0005));
      } else {
        std::this_thread::yield();
      }
    }
    if (on_tick != nullptr) {
      on_tick(NowSec() - start);
    }
    (void)loop.Enqueue(event.request);
  }
  loop.Drain();
  ServeReplayOutcome outcome;
  outcome.stats = loop.Stats();
  outcome.latencies = loop.Latencies();
  return outcome;
}

/// Shortens wall-clock scenario horizons when the matrix runs at reduced
/// scale, without collapsing them entirely (shapes need a few hundred ms
/// to mean anything).
double ScaledDuration(double full_sec, double scale) {
  return full_sec * (0.4 + 0.6 * std::min(scale, 1.0));
}

// ===========================================================================
// trace.* — WfCommons-style trace replay.

/// An embedded Montage-like workflow instance (the WfCommons flagship
/// shape): six overlapping sky projections, pairwise difference fits, one
/// background model broadcast back to every projection, then the co-add /
/// shrink / publish tail. Runtimes are seconds of virtual compute; children
/// are derived from the declared parents by the parser's symmetric closure.
constexpr const char* kMontageJson = R"json({
  "name": "montage-2mass",
  "schemaVersion": "1.5",
  "workflow": {
    "tasks": [
      {"id": "mProject1", "runtimeInSeconds": 13.6, "outputBytes": 4200000},
      {"id": "mProject2", "runtimeInSeconds": 14.2, "outputBytes": 4200000},
      {"id": "mProject3", "runtimeInSeconds": 12.9, "outputBytes": 4200000},
      {"id": "mProject4", "runtimeInSeconds": 13.1, "outputBytes": 4200000},
      {"id": "mProject5", "runtimeInSeconds": 14.8, "outputBytes": 4200000},
      {"id": "mProject6", "runtimeInSeconds": 13.4, "outputBytes": 4200000},
      {"id": "mDiffFit1", "runtimeInSeconds": 2.1, "outputBytes": 260000,
       "parents": ["mProject1", "mProject2"]},
      {"id": "mDiffFit2", "runtimeInSeconds": 1.9, "outputBytes": 260000,
       "parents": ["mProject2", "mProject3"]},
      {"id": "mDiffFit3", "runtimeInSeconds": 2.3, "outputBytes": 260000,
       "parents": ["mProject3", "mProject4"]},
      {"id": "mDiffFit4", "runtimeInSeconds": 2.0, "outputBytes": 260000,
       "parents": ["mProject4", "mProject5"]},
      {"id": "mDiffFit5", "runtimeInSeconds": 2.2, "outputBytes": 260000,
       "parents": ["mProject5", "mProject6"]},
      {"id": "mConcatFit", "runtimeInSeconds": 1.1, "outputBytes": 90000,
       "parents": ["mDiffFit1", "mDiffFit2", "mDiffFit3", "mDiffFit4",
                   "mDiffFit5"]},
      {"id": "mBgModel", "runtimeInSeconds": 8.7, "outputBytes": 120000,
       "parents": ["mConcatFit"]},
      {"id": "mBackground1", "runtimeInSeconds": 1.6, "outputBytes": 4200000,
       "parents": ["mProject1", "mBgModel"]},
      {"id": "mBackground2", "runtimeInSeconds": 1.4, "outputBytes": 4200000,
       "parents": ["mProject2", "mBgModel"]},
      {"id": "mBackground3", "runtimeInSeconds": 1.8, "outputBytes": 4200000,
       "parents": ["mProject3", "mBgModel"]},
      {"id": "mBackground4", "runtimeInSeconds": 1.5, "outputBytes": 4200000,
       "parents": ["mProject4", "mBgModel"]},
      {"id": "mBackground5", "runtimeInSeconds": 1.7, "outputBytes": 4200000,
       "parents": ["mProject5", "mBgModel"]},
      {"id": "mBackground6", "runtimeInSeconds": 1.6, "outputBytes": 4200000,
       "parents": ["mProject6", "mBgModel"]},
      {"id": "mImgtbl", "runtimeInSeconds": 0.9, "outputBytes": 30000,
       "parents": ["mBackground1", "mBackground2", "mBackground3",
                   "mBackground4", "mBackground5", "mBackground6"]},
      {"id": "mAdd", "runtimeInSeconds": 22.4, "outputBytes": 26000000,
       "parents": ["mImgtbl"]},
      {"id": "mShrink", "runtimeInSeconds": 3.2, "outputBytes": 6500000,
       "parents": ["mAdd"]},
      {"id": "mJPEG", "runtimeInSeconds": 1.3, "outputBytes": 900000,
       "parents": ["mShrink"]}
    ]
  }
})json";

void FillTraceRow(const WfReplayOutcome& outcome, int64_t offered,
                  ScenarioResult* result) {
  result->offered = offered;
  result->p50_ms = ExactPercentile(outcome.sojourn_sec, 0.50) * 1000.0;
  result->p99_ms = ExactPercentile(outcome.sojourn_sec, 0.99) * 1000.0;
  result->shed_rate =
      offered == 0 ? 0.0
                   : static_cast<double>(outcome.dead_lettered) / offered;
  result->extra.emplace_back("makespan_sec", FmtMs(outcome.makespan_sec));
  result->extra.emplace_back("tasks_completed",
                             std::to_string(outcome.tasks_completed));
}

Result<ScenarioResult> RunWfMontage(const ScenarioParams& params) {
  DFLOW_ASSIGN_OR_RETURN(WorkflowInstance instance,
                         ParseWfInstance(kMontageJson));
  WfReplayConfig config;
  config.seed = params.seed;
  config.source_arrival_mean_gap_sec = 3.0;
  DFLOW_ASSIGN_OR_RETURN(WfReplayOutcome outcome,
                         ReplayWfInstance(instance, config));

  ScenarioResult result;
  FillTraceRow(outcome, static_cast<int64_t>(instance.tasks.size()),
               &result);
  result.recovery_sec = 0.0;
  // The external-clock trace plus the runner report pin the entire
  // virtual-time execution; measured columns above are derived views.
  Md5 md5;
  md5.Update(outcome.trace_json);
  md5.Update(outcome.report);
  result.fingerprint = md5.HexDigest();
  return result;
}

Result<ScenarioResult> RunWfChaos(const ScenarioParams& params) {
  DFLOW_ASSIGN_OR_RETURN(WorkflowInstance instance,
                         ParseWfInstance(kMontageJson));

  // Clean replay first: its makespan is both the fault plan's horizon and
  // the baseline the recovery time is measured against.
  WfReplayConfig clean_config;
  clean_config.seed = params.seed;
  clean_config.source_arrival_mean_gap_sec = 3.0;
  DFLOW_ASSIGN_OR_RETURN(WfReplayOutcome clean,
                         ReplayWfInstance(instance, clean_config));

  fault::FaultPlanConfig plan_config;
  plan_config.horizon_sec = clean.makespan_sec;
  double h = std::max(1.0, clean.makespan_sec);
  plan_config.processes = {
      {fault::FaultKind::kTransientStageError, "mProject3", 1.0 / h, 0.0, 1},
      {fault::FaultKind::kTransientStageError, "mBackground4", 1.0 / h, 0.0,
       2},
      {fault::FaultKind::kStageCrash, "mAdd", 1.0 / h, 15.0, 1},
      {fault::FaultKind::kStageCrash, "mDiffFit2", 1.0 / h, 8.0, 1},
  };
  DFLOW_ASSIGN_OR_RETURN(fault::FaultPlan plan,
                         fault::FaultPlan::Generate(params.seed * 31 + 7,
                                                    plan_config));

  WfReplayConfig chaos_config = clean_config;
  chaos_config.retry.max_attempts = 6;
  chaos_config.retry.backoff_initial_sec = 1.0;
  chaos_config.retry.backoff_multiplier = 2.0;
  chaos_config.plan = &plan;
  DFLOW_ASSIGN_OR_RETURN(WfReplayOutcome outcome,
                         ReplayWfInstance(instance, chaos_config));

  ScenarioResult result;
  FillTraceRow(outcome, static_cast<int64_t>(instance.tasks.size()),
               &result);
  result.recovery_sec =
      std::max(0.0, outcome.makespan_sec - clean.makespan_sec);
  result.extra.emplace_back("faults_injected",
                            std::to_string(outcome.faults_injected));
  result.extra.emplace_back("retries", std::to_string(outcome.retries));
  result.extra.emplace_back("dead_lettered",
                            std::to_string(outcome.dead_lettered));
  Md5 md5;
  md5.Update(outcome.trace_json);
  md5.Update(plan.Fingerprint());
  md5.Update(outcome.report);
  result.fingerprint = md5.HexDigest();
  return result;
}

// ===========================================================================
// shape.* — synthetic load shapes against a live ServeLoop.

struct ShapeRun {
  std::vector<serve::TimedRequest> schedule;
  ServeReplayOutcome outcome;
};

/// Stands up the standard shape backend (4 workers, lock-free analysis
/// service, bounded queue) and replays `schedule` against it.
ShapeRun RunShapeSchedule(std::vector<serve::TimedRequest> schedule,
                          size_t max_queue_depth) {
  AnalysisService backend(/*service_us=*/200.0);
  core::ServiceRegistry registry;
  DFLOW_CHECK_OK(registry.Mount(
      "svc", std::shared_ptr<core::WebService>(&backend,
                                               [](core::WebService*) {})));
  serve::ServeConfig config;
  config.num_workers = 4;
  config.max_queue_depth = max_queue_depth;
  config.locking = serve::ServeConfig::BackendLocking::kNone;
  serve::ServeLoop loop(&registry, config);
  ShapeRun run;
  run.outcome = ReplaySchedule(loop, schedule);
  run.schedule = std::move(schedule);
  return run;
}

void FillServeRow(const ShapeRun& run, ScenarioResult* result) {
  result->offered = run.outcome.stats.offered;
  result->p50_ms = run.outcome.latencies.Percentile(0.50) * 1000.0;
  result->p99_ms = run.outcome.latencies.Percentile(0.99) * 1000.0;
  result->shed_rate = run.outcome.stats.shed_fraction();
  // The fingerprint is the seeded arrival schedule — the scenario's
  // deterministic identity. Measured latencies are wall-clock and stay
  // advisory.
  result->fingerprint = ScheduleFingerprint(run.schedule);
  result->extra.emplace_back("completed",
                             std::to_string(run.outcome.stats.completed));
  result->extra.emplace_back("shed",
                             std::to_string(run.outcome.stats.shed));
}

Result<ScenarioResult> RunDiurnal(const ScenarioParams& params) {
  serve::WorkloadGen gen(BuildPopulation(400), /*zipf_s=*/1.1, params.seed);
  double duration = ScaledDuration(1.2, params.scale);
  std::vector<serve::TimedRequest> schedule =
      DiurnalSchedule(gen, /*base_rate_per_sec=*/6000.0 * params.scale,
                      /*amplitude=*/0.6, /*period_sec=*/duration / 2.0,
                      duration);
  ShapeRun run = RunShapeSchedule(std::move(schedule), 64);
  ScenarioResult result;
  FillServeRow(run, &result);
  result.recovery_sec = 0.0;
  return result;
}

Result<ScenarioResult> RunFlashCrowd(const ScenarioParams& params) {
  serve::WorkloadGen gen(BuildPopulation(400), /*zipf_s=*/1.1, params.seed);
  FlashCrowdConfig config;
  config.duration_sec = ScaledDuration(1.6, params.scale);
  config.base_rate_per_sec = 700.0 * params.scale;
  config.spike_multiplier = 50.0;
  config.onset_min_sec = 0.30 * config.duration_sec;
  config.onset_max_sec = 0.55 * config.duration_sec;
  config.rise_tau_sec = 0.03 * config.duration_sec;
  config.decay_tau_sec = 0.15 * config.duration_sec;
  config.hot_fraction = 0.9;
  config.shape_seed = params.seed ^ 0x9e3779b97f4a7c15ull;
  std::vector<serve::TimedRequest> schedule = FlashCrowdSchedule(gen, config);
  ShapeRun run = RunShapeSchedule(std::move(schedule), 64);
  ScenarioResult result;
  FillServeRow(run, &result);
  result.recovery_sec = 0.0;
  return result;
}

Result<ScenarioResult> RunBulkRace(const ScenarioParams& params) {
  serve::WorkloadGen gen(BuildPopulation(500), /*zipf_s=*/1.1, params.seed);
  BulkRaceConfig config;
  config.duration_sec = ScaledDuration(1.5, params.scale);
  config.interactive_rate_per_sec = 3000.0 * params.scale;
  config.bulk_rate_per_sec = 15000.0 * params.scale;
  std::vector<serve::TimedRequest> schedule = BulkRaceSchedule(gen, config);
  int64_t bulk = 0;
  for (const serve::TimedRequest& timed : schedule) {
    bulk += timed.request.Param("wl") == "bulk" ? 1 : 0;
  }
  ShapeRun run = RunShapeSchedule(std::move(schedule), 48);
  ScenarioResult result;
  FillServeRow(run, &result);
  result.recovery_sec = 0.0;
  result.extra.emplace_back("bulk_offered", std::to_string(bulk));
  return result;
}

// ===========================================================================
// chaos.* — cross-product fault composition.

/// Link + drive + media faults striking a tape archive mid-scrub while a
/// recall storm loads the drives — the PR 1 fault plan, PR 5 scrubber, and
/// PR 3 tracer composed on one simulation clock.
Result<ScenarioResult> RunScrubStorm(const ScenarioParams& params) {
  sim::Simulation sim;
  obs::MetricsRegistry metrics;
  obs::TracerConfig trace_config;
  trace_config.clock = obs::TracerConfig::ClockMode::kExternal;
  trace_config.external_now_sec = [&sim] { return sim.Now(); };
  obs::Tracer tracer(trace_config);

  storage::TapeLibraryConfig tape_config;
  tape_config.num_drives = 4;
  storage::TapeLibrary primary(&sim, "tape0", tape_config);
  storage::TapeLibrary replica(&sim, "tape1", tape_config);

  net::NetworkLinkConfig link_config;
  net::NetworkLink link(&sim, "ingest", link_config, params.seed);

  // Archive population: both copies hold the same namespace.
  int files = std::max(12, static_cast<int>(40.0 * params.scale));
  std::vector<std::string> names;
  for (int i = 0; i < files; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "vol/f%04d", i);
    names.emplace_back(buf);
    int64_t bytes = 1000000000LL + 70000000LL * i;
    DFLOW_RETURN_IF_ERROR(primary.Write(names.back(), bytes, [] {}));
    DFLOW_RETURN_IF_ERROR(replica.Write(names.back(), bytes, [] {}));
  }

  constexpr double kHorizon = 86400.0;  // One virtual day.
  fault::FaultPlanConfig plan_config;
  plan_config.horizon_sec = kHorizon;
  plan_config.processes = {
      {fault::FaultKind::kLinkFlap, "ingest", 4.0 / kHorizon, 1800.0, 1},
      {fault::FaultKind::kDriveFailure, "tape0", 3.0 / kHorizon, 7200.0, 1},
      {fault::FaultKind::kBadBlock, "tape0", 3.0 / kHorizon, 0.0, 1},
      {fault::FaultKind::kBadBlock, "tape0", 2.0 / kHorizon, 0.0, 7},
  };
  DFLOW_ASSIGN_OR_RETURN(fault::FaultPlan plan,
                         fault::FaultPlan::Generate(params.seed * 131 + 3,
                                                    plan_config));
  fault::Injector injector(&sim, plan);
  fault::ArmNetworkLink(injector, &link);
  fault::ArmTapeLibrary(injector, &primary, "tape0");
  DFLOW_RETURN_IF_ERROR(injector.Arm());

  // Silent bit rot the fault taxonomy has no Poisson process for: two
  // seeded victims rot mid-morning; only the scrub's checksum pass can
  // catch them.
  Rng storm_rng(params.seed * 17 + 11);
  for (int i = 0; i < 2; ++i) {
    std::string victim =
        names[static_cast<size_t>(storm_rng.Uniform(0, files - 1))];
    sim.ScheduleAt(6.0 * 3600.0 + 1800.0 * i, [&primary, victim] {
      primary.CorruptSilently(victim);
    });
  }

  recover::ScrubberConfig scrub_config;
  scrub_config.cycle_interval_sec = 5400.0;
  scrub_config.files_per_cycle = std::max(4, files / 4);
  scrub_config.operator_repair_seconds = 900.0;
  scrub_config.passes = 3;
  recover::Scrubber scrubber(&sim, &primary, &replica, scrub_config);
  scrubber.SetObserver(&tracer, &metrics);
  DFLOW_RETURN_IF_ERROR(scrubber.Start());

  // Recall storm: production reads contending with scrub verifications for
  // the same drives. Issue times start after the initial archive writes
  // have surely drained.
  int recalls = std::max(30, static_cast<int>(120.0 * params.scale));
  auto latencies = std::make_shared<std::vector<double>>();
  auto failed = std::make_shared<int64_t>(0);
  double at = 4000.0;
  for (int i = 0; i < recalls; ++i) {
    at += storm_rng.Exponential(1.0 / 400.0);
    std::string file =
        names[static_cast<size_t>(storm_rng.Uniform(0, files - 1))];
    sim.ScheduleAt(at, [&sim, &primary, file, latencies, failed] {
      double issued = sim.Now();
      Status status = primary.ReadChecked(
          file, [&sim, issued, latencies, failed](Result<int64_t> read) {
            if (read.ok()) {
              latencies->push_back(sim.Now() - issued);
            } else {
              ++*failed;
            }
          });
      if (!status.ok()) {
        ++*failed;
      }
    });
  }

  // Background ingest traffic so link flaps have sessions to kill.
  auto delivered = std::make_shared<int64_t>(0);
  auto lost = std::make_shared<int64_t>(0);
  double send_at = 100.0;
  for (int i = 0; i < 40; ++i) {
    send_at += storm_rng.Exponential(1.0 / 600.0);
    sim.ScheduleAt(send_at, [&link, i, delivered, lost] {
      net::TransferItem item;
      item.name = "ingest/batch" + std::to_string(i);
      item.bytes = 200000000;
      (void)link.Send(item, [delivered, lost](const net::TransferItem&,
                                              net::DeliveryOutcome outcome) {
        if (outcome == net::DeliveryOutcome::kDelivered) {
          ++*delivered;
        } else {
          ++*lost;
        }
      });
    });
  }

  // Recovery probe: poll the ticket queue every 5 virtual minutes. The
  // archive has recovered when, after the last planned fault, no repair
  // tickets remain pending; the first such poll timestamps it.
  double first_fault = kHorizon;
  double last_fault = 0.0;
  for (const fault::FaultEvent& event : plan.events()) {
    first_fault = std::min(first_fault, event.time_sec);
    last_fault = std::max(last_fault, event.time_sec);
  }
  auto recovered_at = std::make_shared<double>(-1.0);
  constexpr double kPollEnd = kHorizon + 4.0 * 3600.0;
  for (double poll = 300.0; poll < kPollEnd; poll += 300.0) {
    sim.ScheduleAt(poll, [&sim, &scrubber, recovered_at, last_fault] {
      if (sim.Now() <= last_fault) {
        return;
      }
      if (scrubber.tickets_pending() > 0) {
        *recovered_at = -1.0;
      } else if (*recovered_at < 0.0) {
        *recovered_at = sim.Now();
      }
    });
  }

  sim.Run();

  ScenarioResult result;
  result.offered = recalls;
  result.p50_ms = ExactPercentile(*latencies, 0.50) * 1000.0;
  result.p99_ms = ExactPercentile(*latencies, 0.99) * 1000.0;
  result.shed_rate =
      recalls == 0 ? 0.0 : static_cast<double>(*failed) / recalls;
  result.recovery_sec = *recovered_at >= 0.0
                            ? *recovered_at - first_fault
                            : kPollEnd - first_fault;
  // Everything below ran on the virtual clock in one thread: the trace,
  // the plan, and the counter snapshot are all byte-stable per seed.
  Md5 md5;
  md5.Update(tracer.ExportChromeJson());
  md5.Update(plan.Fingerprint());
  md5.Update(metrics.SnapshotJson());
  result.fingerprint = md5.HexDigest();
  result.extra.emplace_back("faults_injected",
                            std::to_string(injector.injected()));
  result.extra.emplace_back("tickets_filed",
                            std::to_string(scrubber.tickets_filed()));
  result.extra.emplace_back("tickets_deduped",
                            std::to_string(scrubber.tickets_deduped()));
  result.extra.emplace_back("restored_from_replica",
                            std::to_string(scrubber.restored_from_replica()));
  result.extra.emplace_back("link_outages",
                            std::to_string(link.outages()));
  result.extra.emplace_back("drive_failures",
                            std::to_string(primary.drive_failures()));
  result.extra.emplace_back("ingest_lost", std::to_string(*lost));
  return result;
}

/// Primary backend dies mid-flash-crowd: the circuit breaker trips, load
/// fails over to the replica, and after the primary heals a half-open
/// probe closes the breaker — recovery_sec is heal-to-close, measured by
/// the pacing thread itself.
Result<ScenarioResult> RunBreakerFlash(const ScenarioParams& params) {
  serve::WorkloadGen gen(BuildPopulation(300), /*zipf_s=*/1.1, params.seed);
  FlashCrowdConfig crowd;
  crowd.duration_sec = ScaledDuration(1.8, params.scale);
  crowd.base_rate_per_sec = 1500.0 * params.scale;
  crowd.spike_multiplier = 20.0;
  crowd.onset_min_sec = 0.15 * crowd.duration_sec;
  crowd.onset_max_sec = 0.30 * crowd.duration_sec;
  crowd.rise_tau_sec = 0.03 * crowd.duration_sec;
  crowd.decay_tau_sec = 0.20 * crowd.duration_sec;
  crowd.hot_fraction = 0.8;
  crowd.shape_seed = params.seed ^ 0x6a09e667f3bcc909ull;
  std::vector<serve::TimedRequest> schedule = FlashCrowdSchedule(gen, crowd);

  FlakyAnalysisService primary_backend(/*service_us=*/200.0);
  core::ServiceRegistry primary;
  DFLOW_CHECK_OK(primary.Mount(
      "svc", std::shared_ptr<core::WebService>(&primary_backend,
                                               [](core::WebService*) {})));
  AnalysisService replica_backend(/*service_us=*/250.0);
  core::ServiceRegistry replica;
  DFLOW_CHECK_OK(replica.Mount(
      "svc", std::shared_ptr<core::WebService>(&replica_backend,
                                               [](core::WebService*) {})));

  serve::ServeConfig config;
  config.num_workers = 4;
  config.max_queue_depth = 64;
  config.locking = serve::ServeConfig::BackendLocking::kNone;
  config.breaker.enabled = true;
  config.breaker.failure_threshold = 5;
  config.breaker.open_sec = 0.04;
  config.breaker.open_max_sec = 0.30;
  config.breaker.backoff_multiplier = 2.0;
  config.breaker.seed = params.seed;
  serve::ServeLoop loop(&primary, config);
  DFLOW_RETURN_IF_ERROR(loop.SetReplica("svc", &replica));

  // Failure window: the primary dies just as the crowd builds and heals
  // after the crest, while traffic is still elevated — so probes have
  // requests to ride on.
  double fail_start = 0.35 * crowd.duration_sec;
  double fail_end = 0.55 * crowd.duration_sec;
  bool failing = false;
  bool healed = false;
  double first_close_after_heal = -1.0;
  ServeReplayOutcome outcome = ReplaySchedule(
      loop, schedule, [&](double now) {
        if (!failing && now >= fail_start && now < fail_end) {
          primary_backend.SetFailing(true);
          failing = true;
        }
        if (failing && now >= fail_end) {
          primary_backend.SetFailing(false);
          failing = false;
          healed = true;
        }
        if (healed && first_close_after_heal < 0.0 &&
            loop.Stats().breaker_closed > 0) {
          first_close_after_heal = now;
        }
      });
  if (failing) {  // Schedule ended inside the window; heal for bookkeeping.
    primary_backend.SetFailing(false);
    healed = true;
  }
  if (first_close_after_heal < 0.0 && loop.Stats().breaker_closed > 0) {
    first_close_after_heal = crowd.duration_sec;
  }

  ScenarioResult result;
  result.offered = outcome.stats.offered;
  result.p50_ms = outcome.latencies.Percentile(0.50) * 1000.0;
  result.p99_ms = outcome.latencies.Percentile(0.99) * 1000.0;
  result.shed_rate = outcome.stats.shed_fraction();
  result.recovery_sec = first_close_after_heal >= 0.0
                            ? std::max(0.0, first_close_after_heal - fail_end)
                            : crowd.duration_sec - fail_end;
  // Deterministic identity: the seeded schedule plus the full breaker /
  // failure-window configuration. Breaker trip timing itself is wall-clock
  // and lands in the measured columns, not the fingerprint.
  Md5 md5;
  md5.Update(ScheduleFingerprint(schedule));
  char knobs[160];
  std::snprintf(knobs, sizeof(knobs),
                "fail=[%.6f,%.6f) thr=%d open=%.3f/%.3f x%.1f seed=%llu",
                fail_start, fail_end, config.breaker.failure_threshold,
                config.breaker.open_sec, config.breaker.open_max_sec,
                config.breaker.backoff_multiplier,
                static_cast<unsigned long long>(config.breaker.seed));
  md5.Update(knobs);
  result.fingerprint = md5.HexDigest();
  result.extra.emplace_back("breaker_opened",
                            std::to_string(outcome.stats.breaker_opened));
  result.extra.emplace_back("breaker_closed",
                            std::to_string(outcome.stats.breaker_closed));
  result.extra.emplace_back("failover_requests",
                            std::to_string(outcome.stats.failover_requests));
  result.extra.emplace_back("errors",
                            std::to_string(outcome.stats.errors));
  return result;
}

// ===========================================================================
// cluster.* — the PR 7 consistent-hash cluster tier under scenario load.

/// Mounts the standard analysis backend on every cluster node.
cluster::BackendFactory ClusterBackends(double service_us) {
  return [service_us](int, core::ServiceRegistry* registry) {
    return registry->Mount("svc",
                           std::make_shared<AnalysisService>(service_us));
  };
}

Result<std::unique_ptr<cluster::Cluster>> MakeScenarioCluster(
    int num_nodes, const ScenarioParams& params) {
  cluster::ClusterConfig config;
  config.num_nodes = num_nodes;
  config.replication_factor = 2;
  // The kill/rebalance scenario writes through one-dead-replica windows;
  // the pre-quorum availability contract is the one under test here.
  config.write_quorum = 1;
  config.read_quorum = 1;
  config.seed = params.seed;
  config.workers_per_node = 2;
  return cluster::Cluster::Create(config, ClusterBackends(/*service_us=*/40.0));
}

/// The same Zipf stream the serve shapes use, routed through the cluster
/// tier at 1 and 4 nodes. The fingerprint is the routing identity (decision
/// log + shard map at both node counts) — pure functions of (seed, stream)
/// — while the latency columns stay measured and advisory.
Result<ScenarioResult> RunClusterScaleoutZipf(const ScenarioParams& params) {
  const int requests =
      std::max(200, static_cast<int>(1200 * params.scale));
  serve::WorkloadGen gen(BuildPopulation(300), /*zipf_s=*/1.1, params.seed);
  std::vector<core::ServiceRequest> stream;
  std::vector<std::string> keys;
  stream.reserve(requests);
  keys.reserve(requests);
  for (int i = 0; i < requests; ++i) {
    stream.push_back(gen.Next());
    keys.push_back(cluster::Cluster::KeyOf(stream.back()));
  }

  Md5 identity;
  std::vector<double> latencies;
  latencies.reserve(2 * static_cast<size_t>(requests));
  int64_t forwarded = 0;
  int64_t reroutes = 0;
  for (int nodes : {1, 4}) {
    DFLOW_ASSIGN_OR_RETURN(std::unique_ptr<cluster::Cluster> cluster,
                           MakeScenarioCluster(nodes, params));
    identity.Update(cluster->DecisionLog(keys));
    identity.Update(cluster->DescribeMap());
    for (const core::ServiceRequest& request : stream) {
      double t0 = NowSec();
      DFLOW_ASSIGN_OR_RETURN(core::ServiceResponse response,
                             cluster->Execute(request));
      latencies.push_back(NowSec() - t0);
      if (response.body.empty()) {
        return Status::Internal("empty cluster response");
      }
    }
    cluster::ClusterStats stats = cluster->Stats();
    forwarded += stats.forwarded;
    reroutes += stats.reroutes;
  }

  ScenarioResult result;
  result.offered = 2 * requests;
  result.p50_ms = ExactPercentile(latencies, 0.50) * 1000.0;
  result.p99_ms = ExactPercentile(latencies, 0.99) * 1000.0;
  result.shed_rate = 0.0;
  result.recovery_sec = 0.0;
  result.fingerprint = identity.HexDigest();
  result.extra.emplace_back("forwarded", std::to_string(forwarded));
  result.extra.emplace_back("reroutes", std::to_string(reroutes));
  return result;
}

/// Kill a replica mid-traffic, rejoin it (anti-entropy catch-up), then
/// sweep live shard moves — the cluster's whole failure/rebalance arc in
/// one deterministic run. Zero client-visible failures is a hard invariant
/// (Internal error, which the matrix gate turns into a test failure).
Result<ScenarioResult> RunNodeKillRebalance(const ScenarioParams& params) {
  const int kNodes = 4;
  const int num_keys = std::max(120, static_cast<int>(400 * params.scale));
  const int requests = std::max(150, static_cast<int>(600 * params.scale));
  DFLOW_ASSIGN_OR_RETURN(std::unique_ptr<cluster::Cluster> cluster,
                         MakeScenarioCluster(kNodes, params));
  for (int i = 0; i < num_keys; ++i) {
    DFLOW_RETURN_IF_ERROR(
        cluster->Put("key/" + std::to_string(i), "v" + std::to_string(i)));
  }

  serve::WorkloadGen gen(BuildPopulation(300), /*zipf_s=*/1.1, params.seed);
  std::vector<core::ServiceRequest> stream;
  std::vector<std::string> keys;
  for (int i = 0; i < requests; ++i) {
    stream.push_back(gen.Next());
    keys.push_back(cluster::Cluster::KeyOf(stream.back()));
  }

  std::vector<double> latencies;
  latencies.reserve(stream.size());
  auto drive = [&](size_t begin, size_t end) -> Status {
    for (size_t i = begin; i < end; ++i) {
      double t0 = NowSec();
      Result<core::ServiceResponse> response = cluster->Execute(stream[i]);
      latencies.push_back(NowSec() - t0);
      if (!response.ok()) {
        return Status::Internal("client-visible failure after node kill: " +
                                response.status().message());
      }
    }
    return Status::OK();
  };

  // Clean third, kill a replica, degraded third (every request must still
  // answer — R=2 absorbs one corpse), rejoin, final third.
  const size_t third = stream.size() / 3;
  DFLOW_RETURN_IF_ERROR(drive(0, third));
  const double kill_at = NowSec();
  DFLOW_RETURN_IF_ERROR(cluster->KillNode("node1"));
  // Writes land while node1 is dead, so the rejoin has real catch-up work.
  for (int i = 0; i < num_keys / 2; ++i) {
    DFLOW_RETURN_IF_ERROR(
        cluster->Put("key/" + std::to_string(i), "w" + std::to_string(i)));
  }
  DFLOW_RETURN_IF_ERROR(drive(third, 2 * third));
  DFLOW_RETURN_IF_ERROR(cluster->RejoinNode("node1"));
  const double recovered_at = NowSec();
  DFLOW_RETURN_IF_ERROR(drive(2 * third, stream.size()));

  // Live rebalance sweep: push a band of shards around the ring while the
  // map is serving (AlreadyExists = the target already owned that shard).
  std::vector<std::string> names = cluster->node_names();
  for (int shard = 0; shard < 8; ++shard) {
    Status moved =
        cluster->MoveShard(shard, names[shard % names.size()]);
    if (!moved.ok() && !moved.IsAlreadyExists()) {
      return moved;
    }
  }
  for (int i = 0; i < num_keys; ++i) {
    DFLOW_ASSIGN_OR_RETURN(std::string value,
                           cluster->Get("key/" + std::to_string(i)));
    const std::string want =
        (i < num_keys / 2 ? "w" : "v") + std::to_string(i);
    if (value != want) {
      return Status::Internal("key " + std::to_string(i) +
                              " lost its write through the kill/rebalance");
    }
  }

  cluster::ClusterStats stats = cluster->Stats();
  ScenarioResult result;
  result.offered = static_cast<int64_t>(stream.size());
  result.p50_ms = ExactPercentile(latencies, 0.50) * 1000.0;
  result.p99_ms = ExactPercentile(latencies, 0.99) * 1000.0;
  result.shed_rate = 0.0;
  result.recovery_sec = std::max(0.0, recovered_at - kill_at);
  // Deterministic identity: final routing decisions + shard map (override
  // marks included) + replicated state digests. All pure functions of
  // (seed, serialized history); wall-clock stays in the measured columns.
  Md5 identity;
  identity.Update(cluster->DecisionLog(keys));
  identity.Update(cluster->DescribeMap());
  identity.Update(cluster->DescribeState());
  result.fingerprint = identity.HexDigest();
  result.extra.emplace_back("reroutes", std::to_string(stats.reroutes));
  result.extra.emplace_back("catchup_shards",
                            std::to_string(stats.catchup_shards));
  result.extra.emplace_back("rebalance_moves",
                            std::to_string(stats.rebalance_moves));
  result.extra.emplace_back("failed", std::to_string(stats.failed));
  return result;
}

/// Minority partition across the quorum-replicated cluster: node0 is cut
/// off mid-traffic, majority-coordinated writes stay available while
/// minority-coordinated ones are rejected, and the heal reconciles every
/// replica through hinted handoff + read-repair. The recorded history is
/// fed to the offline consistency checker — any acked-write loss or
/// monotonicity violation is an Internal error (a matrix test failure),
/// and the history/state digests are the deterministic fingerprint.
Result<ScenarioResult> RunPartitionQuorum(const ScenarioParams& params) {
  const int kNodes = 5;
  const int num_keys = std::max(60, static_cast<int>(200 * params.scale));
  cluster::HistoryRecorder history;
  cluster::ClusterConfig config;
  config.num_nodes = kNodes;
  config.replication_factor = 3;  // Majority quorums: W = R = 2.
  config.seed = params.seed;
  config.workers_per_node = 2;
  config.history = &history;
  DFLOW_ASSIGN_OR_RETURN(
      std::unique_ptr<cluster::Cluster> cluster,
      cluster::Cluster::Create(config, ClusterBackends(/*service_us=*/40.0)));

  auto key_at = [](int i) { return "key/" + std::to_string(i); };
  std::vector<double> latencies;
  latencies.reserve(5 * static_cast<size_t>(num_keys));
  auto timed_put = [&](const std::string& key,
                       const std::string& value) -> Status {
    double t0 = NowSec();
    Status put = cluster->Put(key, value);
    latencies.push_back(NowSec() - t0);
    return put;
  };

  // Seed every key, then cut node0 off for 60 s of virtual time.
  for (int i = 0; i < num_keys; ++i) {
    DFLOW_RETURN_IF_ERROR(timed_put(key_at(i), "v" + std::to_string(i)));
  }
  DFLOW_RETURN_IF_ERROR(cluster->AdvancePartitionTime(5.0));
  DFLOW_RETURN_IF_ERROR(
      cluster->PartitionNodes("node0|node1,node2,node3,node4", 60.0));

  // Write through the damage: majority-coordinated writes must land,
  // minority-coordinated ones must be rejected with zero side effects.
  int64_t acked = 0;
  int64_t rejected = 0;
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < num_keys; ++i) {
      Status put = timed_put(key_at(i), "p" + std::to_string(round));
      if (put.ok()) {
        ++acked;
      } else if (put.IsResourceExhausted()) {
        ++rejected;
      } else {
        return put;
      }
    }
  }
  if (acked == 0 || rejected == 0) {
    return Status::Internal(
        "partition did not split the workload: " + std::to_string(acked) +
        " acked / " + std::to_string(rejected) + " rejected");
  }

  // Heal by the clock (hints drain), then a read sweep closes the rest.
  DFLOW_RETURN_IF_ERROR(cluster->AdvancePartitionTime(70.0));
  for (int i = 0; i < num_keys; ++i) {
    double t0 = NowSec();
    DFLOW_ASSIGN_OR_RETURN(std::string value, cluster->Get(key_at(i)));
    latencies.push_back(NowSec() - t0);
    (void)value;
  }
  if (!cluster->ReplicasConverged()) {
    return Status::Internal("replicas diverged after heal + read sweep");
  }
  cluster::ConsistencyReport report = CheckHistory(history.events());
  if (!report.ok()) {
    return Status::Internal("consistency violation: " + report.ToString());
  }

  std::vector<std::string> keys;
  keys.reserve(num_keys);
  for (int i = 0; i < num_keys; ++i) {
    keys.push_back(key_at(i));
  }
  cluster::ClusterStats stats = cluster->Stats();
  ScenarioResult result;
  result.offered = static_cast<int64_t>(latencies.size());
  result.p50_ms = ExactPercentile(latencies, 0.50) * 1000.0;
  result.p99_ms = ExactPercentile(latencies, 0.99) * 1000.0;
  result.shed_rate =
      static_cast<double>(rejected) / static_cast<double>(acked + rejected);
  result.recovery_sec = 0.0;
  Md5 identity;
  identity.Update(history.ToString());
  identity.Update(cluster->DecisionLog(keys));
  identity.Update(cluster->DescribeState());
  result.fingerprint = identity.HexDigest();
  result.extra.emplace_back("acked", std::to_string(acked));
  result.extra.emplace_back("rejected", std::to_string(rejected));
  result.extra.emplace_back("hints_stored",
                            std::to_string(stats.hints_stored));
  result.extra.emplace_back("hints_drained",
                            std::to_string(stats.hints_drained));
  result.extra.emplace_back("read_repairs",
                            std::to_string(stats.read_repairs));
  result.extra.emplace_back("partition_transitions",
                            std::to_string(stats.partition_transitions));
  return result;
}

}  // namespace

const ScenarioRegistry& BuiltinScenarios() {
  static const ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry();
    DFLOW_CHECK_OK(r->Register(
        {"trace.wfcommons_montage", "trace",
         "WfCommons Montage instance replayed through FlowRunner (clean)",
         RunWfMontage}));
    DFLOW_CHECK_OK(r->Register(
        {"trace.wfcommons_chaos", "chaos",
         "same Montage instance under a seeded stage-fault plan",
         RunWfChaos}));
    DFLOW_CHECK_OK(r->Register(
        {"shape.diurnal", "shape",
         "diurnal-cycle open-loop load against the serve tier",
         RunDiurnal}));
    DFLOW_CHECK_OK(r->Register(
        {"shape.flash_crowd", "shape",
         "50x seeded popularity spike on the hottest endpoint",
         RunFlashCrowd}));
    DFLOW_CHECK_OK(r->Register(
        {"shape.bulk_race", "shape",
         "bulk reprocessing sweep racing interactive Zipf traffic",
         RunBulkRace}));
    DFLOW_CHECK_OK(r->Register(
        {"chaos.scrub_storm", "chaos",
         "link+drive+media faults during a scrub under a recall storm",
         RunScrubStorm}));
    DFLOW_CHECK_OK(r->Register(
        {"chaos.breaker_flash", "chaos",
         "primary dies mid-flash-crowd; breaker trips, fails over, recovers",
         RunBreakerFlash}));
    DFLOW_CHECK_OK(r->Register(
        {"cluster.scaleout_zipf", "shape",
         "Zipf stream routed through the consistent-hash cluster at 1 and "
         "4 nodes",
         RunClusterScaleoutZipf}));
    DFLOW_CHECK_OK(r->Register(
        {"chaos.node_kill_rebalance", "chaos",
         "replica killed mid-traffic, rejoined via catch-up, then a live "
         "shard-move sweep",
         RunNodeKillRebalance}));
    DFLOW_CHECK_OK(r->Register(
        {"chaos.partition_quorum", "chaos",
         "minority partition under majority quorums: writes split by "
         "coordinator side, heal reconciles via hints + read-repair, "
         "checker-verified",
         RunPartitionQuorum}));
    return r;
  }();
  return *registry;
}

}  // namespace dflow::scenario
