#ifndef DFLOW_SCENARIO_SCENARIO_H_
#define DFLOW_SCENARIO_SCENARIO_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"

namespace dflow::scenario {

/// Knobs every scenario honors. A scenario run is a pure function of
/// (scenario name, params): same params => same fingerprint, byte for
/// byte — that identity is the matrix's regression gate.
struct ScenarioParams {
  uint64_t seed = 20260807;
  /// Scales offered load / horizon so CI can run the matrix cheaply
  /// (0.25) while a workstation runs it at full size (1.0). Clamped to
  /// [0.05, 4.0] by FromEnv and the runners.
  double scale = 1.0;

  /// Reads DFLOW_SCENARIO_SEED / DFLOW_SCENARIO_SCALE from the
  /// environment (unset => defaults above; unparsable values ignored).
  static ScenarioParams FromEnv();
};

/// One row of BENCH_scenarios.json. The measured columns (p50/p99, shed
/// rate, recovery time) describe the run; `fingerprint` is the
/// deterministic identity the ctest gate enforces — it hashes the
/// scenario's seeded artifacts (schedules, traces, plans, counters),
/// never wall-clock-dependent measurements.
struct ScenarioResult {
  std::string name;
  std::string kind;  // "trace" | "shape" | "chaos".
  uint64_t seed = 0;
  double scale = 1.0;
  int64_t offered = 0;       // Requests offered / products injected.
  double p50_ms = 0.0;       // Latency percentiles (wall or virtual).
  double p99_ms = 0.0;
  double shed_rate = 0.0;    // Fraction of offered load shed/dead-lettered.
  double recovery_sec = 0.0; // Time from first fault to recovered steady
                             // state (0 for fault-free scenarios).
  std::string fingerprint;   // MD5; same-seed stable.
  /// Scenario-specific extras ("faults_injected", "tickets_filed", ...),
  /// emitted as additional JSON columns in insertion order.
  std::vector<std::pair<std::string, std::string>> extra;

  /// One-line JSON object, keys in fixed order (doubles via %.6g, extras
  /// as raw literals) — the row format bench_scenario_matrix emits.
  std::string ToJsonRow() const;
};

/// A named, registered scenario: a pure config composing existing
/// machinery (workload shape x fault plan x recovery/serve knobs).
struct Scenario {
  std::string name;
  std::string kind;         // "trace" | "shape" | "chaos".
  std::string description;  // One line for --list / docs.
  std::function<Result<ScenarioResult>(const ScenarioParams&)> run;
};

/// Order-preserving scenario registry. Names must be unique.
class ScenarioRegistry {
 public:
  Status Register(Scenario scenario);

  const std::vector<Scenario>& scenarios() const { return scenarios_; }
  Result<const Scenario*> Find(const std::string& name) const;

  /// Runs one scenario by name, stamping name/kind/seed/scale into the
  /// result so individual runners cannot forget them.
  Result<ScenarioResult> Run(const std::string& name,
                             const ScenarioParams& params) const;

 private:
  std::vector<Scenario> scenarios_;
};

/// The built-in matrix (constructed once, in registration order):
///   trace.wfcommons_montage — trace-driven WfCommons replay, clean
///   trace.wfcommons_chaos   — same instance under a stage-fault plan
///   shape.diurnal           — diurnal-cycle open-loop serve run
///   shape.flash_crowd       — 50x seeded popularity spike
///   shape.bulk_race         — bulk reprocessing racing interactive load
///   chaos.scrub_storm       — link+drive faults during a scrub under load
///   chaos.breaker_flash     — primary failure under flash crowd; breaker
///                             trips, fails over, recovers
///   cluster.scaleout_zipf   — Zipf stream through the consistent-hash
///                             cluster at 1 and 4 nodes
///   chaos.node_kill_rebalance — replica kill mid-traffic, catch-up
///                             rejoin, live shard-move sweep
///   chaos.partition_quorum  — minority partition under majority quorums;
///                             hint-drain + read-repair heal, checker-
///                             verified history
const ScenarioRegistry& BuiltinScenarios();

}  // namespace dflow::scenario

#endif  // DFLOW_SCENARIO_SCENARIO_H_
