#ifndef DFLOW_SCENARIO_SHAPES_H_
#define DFLOW_SCENARIO_SHAPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/workload_gen.h"

namespace dflow::scenario {

/// Synthetic workload shapes layered on serve::WorkloadGen's Zipf engine.
/// Each generator returns a fully materialized open-loop arrival schedule
/// (sorted by time) that is a pure function of its parameters and the
/// generator's seed — the schedules, not the measured latencies, are what
/// the scenario fingerprints hash.

/// Diurnal cycle: inhomogeneous Poisson arrivals with intensity
///   base * (1 + amplitude * sin(2*pi * t / period - pi/2))
/// so the run starts in the overnight trough and peaks mid-period (the
/// paper's retro-browse/candidate-query traffic follows the working day).
/// Requires 0 <= amplitude <= 1. Realized by thinning at the peak rate.
std::vector<serve::TimedRequest> DiurnalSchedule(serve::WorkloadGen& gen,
                                                 double base_rate_per_sec,
                                                 double amplitude,
                                                 double period_sec,
                                                 double duration_sec);

struct FlashCrowdConfig {
  double base_rate_per_sec = 100.0;
  /// Peak multiplier at the spike's crest: the famous-object moment (a
  /// 50x default per the scenario-matrix spec).
  double spike_multiplier = 50.0;
  /// Onset is drawn uniformly from [onset_min_sec, onset_max_sec) by a
  /// private Rng seeded with `shape_seed` — a different seed moves the
  /// spike and re-realizes the ramp.
  double onset_min_sec = 0.0;
  double onset_max_sec = 0.0;
  uint64_t shape_seed = 1;
  /// Exponential ramp time constants around the onset: intensity rises as
  /// 1 - exp(-(t-onset)/rise_tau) and decays as exp(-(t-crest)/decay_tau).
  double rise_tau_sec = 0.05;
  double decay_tau_sec = 0.25;
  /// Spike traffic is aimed at the hottest endpoint with this probability
  /// (the one object everyone suddenly wants); the rest follows the
  /// ambient Zipf stream.
  double hot_fraction = 0.9;
  double duration_sec = 2.0;
};

/// Flash crowd: ambient Zipf traffic at the base rate plus a seeded
/// popularity spike whose extra arrivals mostly hammer the rank-0 endpoint.
/// Spike timing comes from config.shape_seed, the non-hot spike requests
/// from `gen`'s stream — together one (gen seed, shape seed) pair pins the
/// whole event.
std::vector<serve::TimedRequest> FlashCrowdSchedule(
    serve::WorkloadGen& gen, const FlashCrowdConfig& config);

struct BulkRaceConfig {
  /// Interactive side: Poisson Zipf traffic, the paper's live queries.
  double interactive_rate_per_sec = 100.0;
  /// Bulk side: a reprocessing campaign sweeping the population in
  /// popularity-rank order at a fixed cadence (deterministic arrivals —
  /// batch jobs are paced, not Poisson), wrapping around until the clock
  /// runs out.
  double bulk_rate_per_sec = 200.0;
  double duration_sec = 2.0;
};

/// Bulk-reprocessing campaign racing interactive traffic: the merged
/// schedule interleaves a deterministic rank-order sweep with seeded
/// Poisson foreground queries. Bulk requests are tagged with attribute
/// "wl" = "bulk", interactive ones "wl" = "fg", so admission or analysis
/// can tell them apart.
std::vector<serve::TimedRequest> BulkRaceSchedule(serve::WorkloadGen& gen,
                                                  const BulkRaceConfig& config);

/// Merges already-sorted schedules into one time-ordered stream. Ties
/// break by input order (earlier vector wins), keeping the merge stable
/// and deterministic.
std::vector<serve::TimedRequest> MergeSchedules(
    std::vector<std::vector<serve::TimedRequest>> schedules);

/// MD5 over "(time_us, canonical request key)" lines — the deterministic
/// identity of a schedule. Arrival times are hashed at microsecond
/// resolution so the digest is stable across platforms' printf behavior
/// while still pinning the full arrival pattern.
std::string ScheduleFingerprint(
    const std::vector<serve::TimedRequest>& schedule);

}  // namespace dflow::scenario

#endif  // DFLOW_SCENARIO_SHAPES_H_
