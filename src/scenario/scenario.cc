#include "scenario/scenario.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace dflow::scenario {
namespace {

double ClampScale(double scale) {
  return std::min(4.0, std::max(0.05, scale));
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

std::string FmtG(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

ScenarioParams ScenarioParams::FromEnv() {
  ScenarioParams params;
  if (const char* seed = std::getenv("DFLOW_SCENARIO_SEED");
      seed != nullptr && *seed != '\0') {
    char* end = nullptr;
    unsigned long long value = std::strtoull(seed, &end, 10);
    if (end != seed && *end == '\0') {
      params.seed = static_cast<uint64_t>(value);
    }
  }
  if (const char* scale = std::getenv("DFLOW_SCENARIO_SCALE");
      scale != nullptr && *scale != '\0') {
    char* end = nullptr;
    double value = std::strtod(scale, &end);
    if (end != scale && *end == '\0' && value > 0.0) {
      params.scale = ClampScale(value);
    }
  }
  return params;
}

std::string ScenarioResult::ToJsonRow() const {
  std::ostringstream os;
  os << "{\"scenario\": \"" << JsonEscape(name) << "\""
     << ", \"kind\": \"" << JsonEscape(kind) << "\""
     << ", \"seed\": " << seed
     << ", \"scale\": " << FmtG(scale)
     << ", \"offered\": " << offered
     << ", \"p50_ms\": " << FmtG(p50_ms)
     << ", \"p99_ms\": " << FmtG(p99_ms)
     << ", \"shed_rate\": " << FmtG(shed_rate)
     << ", \"recovery_sec\": " << FmtG(recovery_sec)
     << ", \"fingerprint\": \"" << JsonEscape(fingerprint) << "\"";
  for (const auto& [key, value] : extra) {
    os << ", \"" << JsonEscape(key) << "\": " << value;
  }
  os << "}";
  return os.str();
}

Status ScenarioRegistry::Register(Scenario scenario) {
  if (scenario.name.empty()) {
    return Status::InvalidArgument("scenario name must be non-empty");
  }
  if (scenario.run == nullptr) {
    return Status::InvalidArgument("scenario '" + scenario.name +
                                   "' has no run function");
  }
  for (const Scenario& existing : scenarios_) {
    if (existing.name == scenario.name) {
      return Status::AlreadyExists("scenario '" + scenario.name +
                                   "' already registered");
    }
  }
  scenarios_.push_back(std::move(scenario));
  return Status::OK();
}

Result<const Scenario*> ScenarioRegistry::Find(const std::string& name) const {
  for (const Scenario& scenario : scenarios_) {
    if (scenario.name == name) {
      return &scenario;
    }
  }
  return Status::NotFound("no scenario named '" + name + "'");
}

Result<ScenarioResult> ScenarioRegistry::Run(
    const std::string& name, const ScenarioParams& params) const {
  DFLOW_ASSIGN_OR_RETURN(const Scenario* scenario, Find(name));
  ScenarioParams clamped = params;
  clamped.scale = ClampScale(params.scale);
  DFLOW_ASSIGN_OR_RETURN(ScenarioResult result, scenario->run(clamped));
  result.name = scenario->name;
  result.kind = scenario->kind;
  result.seed = clamped.seed;
  result.scale = clamped.scale;
  return result;
}

}  // namespace dflow::scenario
