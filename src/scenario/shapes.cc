#include "scenario/shapes.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "serve/response_cache.h"
#include "util/logging.h"
#include "util/md5.h"
#include "util/rng.h"

namespace dflow::scenario {
namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

std::vector<serve::TimedRequest> DiurnalSchedule(serve::WorkloadGen& gen,
                                                 double base_rate_per_sec,
                                                 double amplitude,
                                                 double period_sec,
                                                 double duration_sec) {
  DFLOW_CHECK(base_rate_per_sec > 0.0);
  DFLOW_CHECK(amplitude >= 0.0 && amplitude <= 1.0);
  DFLOW_CHECK(period_sec > 0.0);
  double peak = base_rate_per_sec * (1.0 + amplitude);
  return gen.OpenLoopScheduleRate(
      [=](double t) {
        return base_rate_per_sec *
               (1.0 +
                amplitude * std::sin(2.0 * kPi * t / period_sec - kPi / 2.0));
      },
      peak, duration_sec);
}

std::vector<serve::TimedRequest> FlashCrowdSchedule(
    serve::WorkloadGen& gen, const FlashCrowdConfig& config) {
  DFLOW_CHECK(config.base_rate_per_sec > 0.0);
  DFLOW_CHECK(config.spike_multiplier >= 1.0);
  DFLOW_CHECK(config.onset_min_sec <= config.onset_max_sec);
  DFLOW_CHECK(config.rise_tau_sec > 0.0);
  DFLOW_CHECK(config.decay_tau_sec > 0.0);
  DFLOW_CHECK(config.hot_fraction >= 0.0 && config.hot_fraction <= 1.0);

  // Ambient Zipf traffic first (one contiguous block of gen's stream, so
  // the spike realization cannot perturb it).
  std::vector<serve::TimedRequest> ambient =
      gen.OpenLoopSchedule(config.base_rate_per_sec, config.duration_sec);

  Rng shape(config.shape_seed);
  double onset = config.onset_min_sec;
  if (config.onset_max_sec > config.onset_min_sec) {
    onset = shape.UniformReal(config.onset_min_sec, config.onset_max_sec);
  }
  // The ramp saturates ~4 time constants after onset; that knee is the
  // crest the decay hangs off.
  double crest = onset + 4.0 * config.rise_tau_sec;
  double extra_peak =
      config.base_rate_per_sec * (config.spike_multiplier - 1.0);
  auto extra_rate = [&](double t) {
    if (t < onset) {
      return 0.0;
    }
    if (t <= crest) {
      return extra_peak * (1.0 - std::exp(-(t - onset) / config.rise_tau_sec));
    }
    return extra_peak * std::exp(-(t - crest) / config.decay_tau_sec);
  };

  // Thinned spike arrivals from the shape rng; request identity from the
  // hot endpoint or gen's ambient stream.
  std::vector<serve::TimedRequest> spike;
  double t = 0.0;
  while (true) {
    t += shape.Exponential(extra_peak);
    if (t >= config.duration_sec) {
      break;
    }
    if (shape.NextDouble() * extra_peak >= extra_rate(t)) {
      continue;
    }
    const core::ServiceRequest& request =
        shape.NextDouble() < config.hot_fraction ? gen.RequestAtRank(0)
                                                 : gen.Next();
    spike.push_back(serve::TimedRequest{t, request});
  }

  std::vector<std::vector<serve::TimedRequest>> parts;
  parts.push_back(std::move(ambient));
  parts.push_back(std::move(spike));
  return MergeSchedules(std::move(parts));
}

std::vector<serve::TimedRequest> BulkRaceSchedule(
    serve::WorkloadGen& gen, const BulkRaceConfig& config) {
  DFLOW_CHECK(config.interactive_rate_per_sec > 0.0);
  DFLOW_CHECK(config.bulk_rate_per_sec > 0.0);

  std::vector<serve::TimedRequest> interactive = gen.OpenLoopSchedule(
      config.interactive_rate_per_sec, config.duration_sec);
  for (serve::TimedRequest& timed : interactive) {
    timed.request.params["wl"] = "fg";
  }

  // The campaign sweeps the population in popularity-rank order at a fixed
  // cadence — a paced batch job, not a Poisson process — wrapping around
  // until the clock runs out.
  std::vector<serve::TimedRequest> bulk;
  double gap = 1.0 / config.bulk_rate_per_sec;
  size_t rank = 0;
  for (double t = gap * 0.5; t < config.duration_sec; t += gap) {
    serve::TimedRequest timed{t, gen.RequestAtRank(rank)};
    timed.request.params["wl"] = "bulk";
    bulk.push_back(std::move(timed));
    rank = (rank + 1) % gen.population_size();
  }

  std::vector<std::vector<serve::TimedRequest>> parts;
  parts.push_back(std::move(interactive));
  parts.push_back(std::move(bulk));
  return MergeSchedules(std::move(parts));
}

std::vector<serve::TimedRequest> MergeSchedules(
    std::vector<std::vector<serve::TimedRequest>> schedules) {
  std::vector<serve::TimedRequest> merged;
  size_t total = 0;
  for (const auto& schedule : schedules) {
    total += schedule.size();
  }
  merged.reserve(total);
  std::vector<size_t> cursor(schedules.size(), 0);
  while (merged.size() < total) {
    size_t best = schedules.size();
    for (size_t i = 0; i < schedules.size(); ++i) {
      if (cursor[i] >= schedules[i].size()) {
        continue;
      }
      if (best == schedules.size() ||
          schedules[i][cursor[i]].at_sec <
              schedules[best][cursor[best]].at_sec) {
        best = i;  // Strict '<': ties stay with the earlier vector.
      }
    }
    merged.push_back(std::move(schedules[best][cursor[best]++]));
  }
  return merged;
}

std::string ScheduleFingerprint(
    const std::vector<serve::TimedRequest>& schedule) {
  Md5 md5;
  char buf[32];
  for (const serve::TimedRequest& timed : schedule) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(
                      std::llround(timed.at_sec * 1e6)));
    md5.Update(buf);
    md5.Update("|");
    md5.Update(serve::ShardedResponseCache::CanonicalKey(timed.request));
    md5.Update("\n");
  }
  return md5.HexDigest();
}

}  // namespace dflow::scenario
