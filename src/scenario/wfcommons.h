#ifndef DFLOW_SCENARIO_WFCOMMONS_H_
#define DFLOW_SCENARIO_WFCOMMONS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/flow_runner.h"
#include "fault/fault_plan.h"
#include "util/result.h"

namespace dflow::scenario {

/// One task of a WfCommons-style workflow instance: a node of the DAG with
/// a measured runtime. `parents`/`children` are sorted, deduplicated, and
/// mutually consistent (an edge listed on either side is present on both
/// after parsing).
struct WorkflowTask {
  std::string id;         // Unique within the instance.
  std::string name;       // Display name; defaults to id.
  double runtime_sec = 0.0;
  int64_t output_bytes = 0;
  std::vector<std::string> parents;
  std::vector<std::string> children;
};

/// A parsed workflow instance: the replayable artifact format of the
/// WfCommons ecosystem (PAPERS.md), reduced to the fields the replay needs
/// — task ids, dependencies, per-task runtimes, and output sizes.
struct WorkflowInstance {
  std::string name;
  std::vector<WorkflowTask> tasks;  // Input order preserved.

  /// Task ids with no parents (the replay's injection points), in task
  /// order.
  std::vector<std::string> SourceTaskIds() const;
  /// Sum of every task's runtime (the serial-makespan lower bound's dual).
  double TotalRuntimeSec() const;
};

/// Parses a WfCommons-style workflow-instance JSON document. Accepts both
/// the flat layout ({"workflow": {"tasks": [...]}}) and the split 1.4+
/// layout ({"workflow": {"specification": {"tasks": [...]},
/// "execution": {"tasks": [{"id", "runtimeInSeconds"}]}}}); per-task
/// runtimes may come from "runtime", "runtimeInSeconds", or the execution
/// block.
///
/// Hardened against hostile input: malformed JSON, truncation at any byte,
/// unbounded nesting, duplicate or dangling task references, cyclic
/// dependencies, and missing/negative/non-finite runtimes all return a
/// non-OK Status (Corruption for syntax, InvalidArgument for semantics) —
/// never a crash, hang, or partial instance.
Result<WorkflowInstance> ParseWfInstance(std::string_view json);

/// Canonical JSON emitter: parse(EmitWfInstance(x)) reproduces x exactly
/// (runtimes are printed round-trippably), which is what the randomized
/// round-trip tests pin down.
std::string EmitWfInstance(const WorkflowInstance& instance);

/// Replay knobs. All stochastic choices flow from `seed`.
struct WfReplayConfig {
  uint64_t seed = 1;
  /// Source products arrive at seeded exponential gaps with this mean
  /// (0 = everything injected at t=0). This is what makes a trace replay
  /// seed-sensitive: the DAG and runtimes are fixed, the arrival phase of
  /// independent inputs is not.
  double source_arrival_mean_gap_sec = 0.0;
  /// Retry discipline applied to every stage (chaos replays want > 1
  /// attempt; the default fail-fast matches a clean replay).
  core::RetryPolicy retry;
  /// Optional chaos: a fault plan whose kTransientStageError /
  /// kStageCrash events target task ids of this instance.
  const fault::FaultPlan* plan = nullptr;
};

/// What a replay measured. Everything here is virtual-time deterministic:
/// same (instance, config) => byte-identical trace_json.
struct WfReplayOutcome {
  double makespan_sec = 0.0;
  int64_t tasks_completed = 0;   // Tasks whose join fired an output.
  int64_t dead_lettered = 0;
  int64_t retries = 0;
  int64_t errors = 0;
  int64_t faults_injected = 0;
  /// Per-arrival sojourn (readiness of the triggering input to service
  /// completion), one sample per serviced product.
  std::vector<double> sojourn_sec;
  std::string report;       // FlowRunner::Report().
  std::string trace_json;   // External-clock Chrome trace of the run.
  std::string trace_fingerprint;
};

/// Replays `instance` through core::FlowRunner on a private simulation:
/// one stage per task (join semantics — a task with P parents spreads its
/// runtime over P arrivals and emits its output when the last one lands),
/// edges from the instance DAG, seeded source arrivals, and an optional
/// armed fault plan. The obs tracer is bound to the simulation clock, so
/// the returned trace is a deterministic record of the whole run.
Result<WfReplayOutcome> ReplayWfInstance(const WorkflowInstance& instance,
                                         const WfReplayConfig& config);

}  // namespace dflow::scenario

#endif  // DFLOW_SCENARIO_WFCOMMONS_H_
