#include "scenario/wfcommons.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <sstream>
#include <utility>

#include "core/flow_graph.h"
#include "core/stage.h"
#include "fault/adapters.h"
#include "fault/injector.h"
#include "obs/trace.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace dflow::scenario {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader. Scope: exactly what workflow-instance documents need
// (objects, arrays, strings, finite numbers, booleans, null), hardened the
// way the journal reader is hardened — every malformed input is an error
// Status, the scan always advances, and nesting is depth-capped so a
// pathological document cannot blow the stack.

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool bool_v = false;
  double num_v = 0.0;
  std::string str_v;
  std::vector<Json> arr;
  std::vector<std::pair<std::string, Json>> obj;  // Insertion order.

  const Json* Find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
  bool IsObject() const { return type == Type::kObject; }
  bool IsArray() const { return type == Type::kArray; }
  bool IsString() const { return type == Type::kString; }
  bool IsNumber() const { return type == Type::kNumber; }
};

class JsonReader {
 public:
  explicit JsonReader(std::string_view in) : in_(in) {}

  Result<Json> Parse() {
    DFLOW_ASSIGN_OR_RETURN(Json value, ParseValue());
    SkipWs();
    if (pos_ != in_.size()) {
      return Err("trailing bytes after document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 96;

  Status Err(const std::string& what) const {
    return Status::Corruption("json: " + what + " at byte " +
                              std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < in_.size() &&
           (in_[pos_] == ' ' || in_[pos_] == '\t' || in_[pos_] == '\n' ||
            in_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < in_.size() && in_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    if (++depth_ > kMaxDepth) {
      --depth_;
      return Err("nesting deeper than " + std::to_string(kMaxDepth));
    }
    SkipWs();
    Result<Json> result = ParseValueInner();
    --depth_;
    return result;
  }

  Result<Json> ParseValueInner() {
    if (pos_ >= in_.size()) {
      return Err("unexpected end of input");
    }
    char c = in_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        DFLOW_ASSIGN_OR_RETURN(std::string s, ParseString());
        Json value;
        value.type = Json::Type::kString;
        value.str_v = std::move(s);
        return value;
      }
      case 't':
        return ParseLiteral("true", [] {
          Json v;
          v.type = Json::Type::kBool;
          v.bool_v = true;
          return v;
        });
      case 'f':
        return ParseLiteral("false", [] {
          Json v;
          v.type = Json::Type::kBool;
          v.bool_v = false;
          return v;
        });
      case 'n':
        return ParseLiteral("null", [] { return Json{}; });
      default:
        if (c == '-' || (c >= '0' && c <= '9')) {
          return ParseNumber();
        }
        return Err(std::string("unexpected character '") + c + "'");
    }
  }

  template <typename MakeFn>
  Result<Json> ParseLiteral(std::string_view word, MakeFn make) {
    if (in_.substr(pos_, word.size()) != word) {
      return Err("bad literal");
    }
    pos_ += word.size();
    return make();
  }

  Result<Json> ParseObject() {
    ++pos_;  // '{'
    Json value;
    value.type = Json::Type::kObject;
    SkipWs();
    if (Eat('}')) {
      return value;
    }
    while (true) {
      SkipWs();
      if (pos_ >= in_.size() || in_[pos_] != '"') {
        return Err("expected object key");
      }
      DFLOW_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Eat(':')) {
        return Err("expected ':'");
      }
      DFLOW_ASSIGN_OR_RETURN(Json member, ParseValue());
      value.obj.emplace_back(std::move(key), std::move(member));
      SkipWs();
      if (Eat(',')) {
        continue;
      }
      if (Eat('}')) {
        return value;
      }
      return Err("expected ',' or '}'");
    }
  }

  Result<Json> ParseArray() {
    ++pos_;  // '['
    Json value;
    value.type = Json::Type::kArray;
    SkipWs();
    if (Eat(']')) {
      return value;
    }
    while (true) {
      DFLOW_ASSIGN_OR_RETURN(Json element, ParseValue());
      value.arr.push_back(std::move(element));
      SkipWs();
      if (Eat(',')) {
        continue;
      }
      if (Eat(']')) {
        return value;
      }
      return Err("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (pos_ >= in_.size()) {
        return Err("unterminated string");
      }
      unsigned char c = static_cast<unsigned char>(in_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) {
        return Err("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // '\\'
      if (pos_ >= in_.size()) {
        return Err("dangling escape");
      }
      char e = in_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          DFLOW_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the paired low surrogate.
            if (pos_ + 1 >= in_.size() || in_[pos_] != '\\' ||
                in_[pos_ + 1] != 'u') {
              return Err("unpaired surrogate");
            }
            pos_ += 2;
            DFLOW_ASSIGN_OR_RETURN(uint32_t lo, ParseHex4());
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Err("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Err("unpaired surrogate");
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          return Err("bad escape");
      }
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > in_.size()) {
      return Err("truncated \\u escape");
    }
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = in_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Err("bad \\u digit");
      }
    }
    pos_ += 4;
    return value;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    Eat('-');
    if (pos_ >= in_.size()) {
      return Err("truncated number");
    }
    if (!EatDigits()) {
      return Err("expected digit");
    }
    if (Eat('.')) {
      if (!EatDigits()) {
        return Err("expected fraction digit");
      }
    }
    if (pos_ < in_.size() && (in_[pos_] == 'e' || in_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < in_.size() && (in_[pos_] == '+' || in_[pos_] == '-')) {
        ++pos_;
      }
      if (!EatDigits()) {
        return Err("expected exponent digit");
      }
    }
    std::string token(in_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return Err("unrepresentable number");
    }
    Json number;
    number.type = Json::Type::kNumber;
    number.num_v = value;
    return number;
  }

  bool EatDigits() {
    size_t start = pos_;
    while (pos_ < in_.size() && in_[pos_] >= '0' && in_[pos_] <= '9') {
      ++pos_;
    }
    return pos_ > start;
  }

  std::string_view in_;
  size_t pos_ = 0;
  int depth_ = 0;
};

// ---------------------------------------------------------------------------
// Instance extraction and validation.

Status Invalid(const std::string& what) {
  return Status::InvalidArgument("wfcommons: " + what);
}

Result<std::vector<std::string>> StringArray(const Json& value,
                                             const std::string& what) {
  if (!value.IsArray()) {
    return Invalid(what + " must be an array of task ids");
  }
  std::vector<std::string> out;
  out.reserve(value.arr.size());
  for (const Json& element : value.arr) {
    if (!element.IsString()) {
      return Invalid(what + " must contain only strings");
    }
    out.push_back(element.str_v);
  }
  return out;
}

void SortUnique(std::vector<std::string>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

Status CheckAcyclic(const WorkflowInstance& instance) {
  std::map<std::string, size_t> index;
  for (size_t i = 0; i < instance.tasks.size(); ++i) {
    index[instance.tasks[i].id] = i;
  }
  std::vector<int> pending(instance.tasks.size(), 0);
  std::queue<size_t> ready;
  for (size_t i = 0; i < instance.tasks.size(); ++i) {
    pending[i] = static_cast<int>(instance.tasks[i].parents.size());
    if (pending[i] == 0) {
      ready.push(i);
    }
  }
  size_t processed = 0;
  while (!ready.empty()) {
    size_t i = ready.front();
    ready.pop();
    ++processed;
    for (const std::string& child : instance.tasks[i].children) {
      size_t j = index[child];
      if (--pending[j] == 0) {
        ready.push(j);
      }
    }
  }
  if (processed != instance.tasks.size()) {
    return Invalid("task dependency graph has a cycle");
  }
  return Status::OK();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

std::string FmtDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::vector<std::string> WorkflowInstance::SourceTaskIds() const {
  std::vector<std::string> sources;
  for (const WorkflowTask& task : tasks) {
    if (task.parents.empty()) {
      sources.push_back(task.id);
    }
  }
  return sources;
}

double WorkflowInstance::TotalRuntimeSec() const {
  double total = 0.0;
  for (const WorkflowTask& task : tasks) {
    total += task.runtime_sec;
  }
  return total;
}

Result<WorkflowInstance> ParseWfInstance(std::string_view json) {
  JsonReader reader(json);
  DFLOW_ASSIGN_OR_RETURN(Json root, reader.Parse());
  if (!root.IsObject()) {
    return Invalid("document root must be an object");
  }
  WorkflowInstance instance;
  if (const Json* name = root.Find("name"); name != nullptr) {
    if (!name->IsString()) {
      return Invalid("'name' must be a string");
    }
    instance.name = name->str_v;
  } else {
    instance.name = "workflow";
  }

  const Json* workflow = root.Find("workflow");
  if (workflow == nullptr || !workflow->IsObject()) {
    return Invalid("missing 'workflow' object");
  }

  // Task list: either workflow.tasks (flat) or
  // workflow.specification.tasks (1.4+ split layout).
  const Json* tasks = workflow->Find("tasks");
  if (const Json* spec = workflow->Find("specification"); spec != nullptr) {
    if (!spec->IsObject()) {
      return Invalid("'specification' must be an object");
    }
    tasks = spec->Find("tasks");
  }
  if (tasks == nullptr || !tasks->IsArray()) {
    return Invalid("missing task array");
  }
  if (tasks->arr.empty()) {
    return Invalid("instance has no tasks");
  }

  // Optional execution block: per-task measured runtimes keyed by id.
  std::map<std::string, double> execution_runtimes;
  if (const Json* execution = workflow->Find("execution");
      execution != nullptr) {
    if (!execution->IsObject()) {
      return Invalid("'execution' must be an object");
    }
    const Json* exec_tasks = execution->Find("tasks");
    if (exec_tasks != nullptr) {
      if (!exec_tasks->IsArray()) {
        return Invalid("'execution.tasks' must be an array");
      }
      for (const Json& entry : exec_tasks->arr) {
        if (!entry.IsObject()) {
          return Invalid("execution task entries must be objects");
        }
        const Json* id = entry.Find("id");
        if (id == nullptr) {
          id = entry.Find("name");
        }
        const Json* runtime = entry.Find("runtimeInSeconds");
        if (runtime == nullptr) {
          runtime = entry.Find("runtime");
        }
        if (id == nullptr || !id->IsString() || runtime == nullptr ||
            !runtime->IsNumber()) {
          return Invalid("execution task entries need id + runtime");
        }
        execution_runtimes[id->str_v] = runtime->num_v;
      }
    }
  }

  std::set<std::string> seen_ids;
  for (const Json& entry : tasks->arr) {
    if (!entry.IsObject()) {
      return Invalid("task entries must be objects");
    }
    WorkflowTask task;
    const Json* id = entry.Find("id");
    const Json* name = entry.Find("name");
    if (id != nullptr && !id->IsString()) {
      return Invalid("task 'id' must be a string");
    }
    if (name != nullptr && !name->IsString()) {
      return Invalid("task 'name' must be a string");
    }
    task.id = id != nullptr ? id->str_v
                            : (name != nullptr ? name->str_v : "");
    if (task.id.empty()) {
      return Invalid("task without an id");
    }
    task.name = name != nullptr ? name->str_v : task.id;
    if (!seen_ids.insert(task.id).second) {
      return Invalid("duplicate task id '" + task.id + "'");
    }

    const Json* runtime = entry.Find("runtimeInSeconds");
    if (runtime == nullptr) {
      runtime = entry.Find("runtime");
    }
    if (runtime != nullptr) {
      if (!runtime->IsNumber()) {
        return Invalid("runtime of task '" + task.id + "' must be a number");
      }
      task.runtime_sec = runtime->num_v;
    } else if (auto it = execution_runtimes.find(task.id);
               it != execution_runtimes.end()) {
      task.runtime_sec = it->second;
    } else {
      return Invalid("task '" + task.id + "' is missing a runtime");
    }
    if (!std::isfinite(task.runtime_sec) || task.runtime_sec < 0.0) {
      return Invalid("task '" + task.id + "' has a negative runtime");
    }

    const Json* bytes = entry.Find("outputBytes");
    if (bytes == nullptr) {
      bytes = entry.Find("bytes");
    }
    if (bytes != nullptr) {
      if (!bytes->IsNumber() || !std::isfinite(bytes->num_v) ||
          bytes->num_v < 0.0 || bytes->num_v > 4.0e18) {
        return Invalid("task '" + task.id + "' has invalid output bytes");
      }
      task.output_bytes = static_cast<int64_t>(bytes->num_v);
    }

    if (const Json* parents = entry.Find("parents"); parents != nullptr) {
      DFLOW_ASSIGN_OR_RETURN(task.parents, StringArray(*parents, "parents"));
    }
    if (const Json* children = entry.Find("children"); children != nullptr) {
      DFLOW_ASSIGN_OR_RETURN(task.children,
                             StringArray(*children, "children"));
    }
    instance.tasks.push_back(std::move(task));
  }

  // Resolve references and take the symmetric closure: an edge declared on
  // either endpoint exists on both afterwards.
  std::map<std::string, size_t> index;
  for (size_t i = 0; i < instance.tasks.size(); ++i) {
    index[instance.tasks[i].id] = i;
  }
  for (WorkflowTask& task : instance.tasks) {
    for (const std::string& parent : task.parents) {
      if (parent == task.id) {
        return Invalid("task '" + task.id + "' depends on itself");
      }
      auto it = index.find(parent);
      if (it == index.end()) {
        return Invalid("task '" + task.id + "' references unknown parent '" +
                       parent + "'");
      }
      instance.tasks[it->second].children.push_back(task.id);
    }
    for (const std::string& child : task.children) {
      if (child == task.id) {
        return Invalid("task '" + task.id + "' depends on itself");
      }
      auto it = index.find(child);
      if (it == index.end()) {
        return Invalid("task '" + task.id + "' references unknown child '" +
                       child + "'");
      }
    }
  }
  for (WorkflowTask& task : instance.tasks) {
    for (const std::string& child : task.children) {
      instance.tasks[index[child]].parents.push_back(task.id);
    }
  }
  for (WorkflowTask& task : instance.tasks) {
    SortUnique(task.parents);
    SortUnique(task.children);
  }
  DFLOW_RETURN_IF_ERROR(CheckAcyclic(instance));
  return instance;
}

std::string EmitWfInstance(const WorkflowInstance& instance) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"name\": \"" << JsonEscape(instance.name) << "\",\n";
  os << "  \"schemaVersion\": \"1.5\",\n";
  os << "  \"workflow\": {\n";
  os << "    \"tasks\": [\n";
  for (size_t i = 0; i < instance.tasks.size(); ++i) {
    const WorkflowTask& task = instance.tasks[i];
    os << "      {\n";
    os << "        \"id\": \"" << JsonEscape(task.id) << "\",\n";
    os << "        \"name\": \"" << JsonEscape(task.name) << "\",\n";
    os << "        \"runtimeInSeconds\": " << FmtDouble(task.runtime_sec)
       << ",\n";
    os << "        \"outputBytes\": " << task.output_bytes << ",\n";
    os << "        \"parents\": [";
    for (size_t p = 0; p < task.parents.size(); ++p) {
      os << (p == 0 ? "" : ", ") << "\"" << JsonEscape(task.parents[p])
         << "\"";
    }
    os << "],\n";
    os << "        \"children\": [";
    for (size_t c = 0; c < task.children.size(); ++c) {
      os << (c == 0 ? "" : ", ") << "\"" << JsonEscape(task.children[c])
         << "\"";
    }
    os << "]\n";
    os << "      }" << (i + 1 < instance.tasks.size() ? "," : "") << "\n";
  }
  os << "    ]\n";
  os << "  }\n";
  os << "}\n";
  return os.str();
}

namespace {

/// Shared replay bookkeeping the join stages write into (single-threaded
/// under the simulation).
struct ReplayState {
  sim::Simulation* sim = nullptr;
  std::vector<double> sojourn_sec;
  int64_t tasks_completed = 0;
};

/// One workflow task as a FlowRunner stage with join semantics: a task
/// with P parents spreads its runtime over P arrivals (incremental work)
/// and emits its single output product when the last arrival is serviced —
/// so the output cannot exist before every parent delivered, and the total
/// virtual work equals the instance's measured runtime exactly.
class JoinTaskStage : public core::Stage {
 public:
  JoinTaskStage(const WorkflowTask& task, ReplayState* state)
      : core::Stage(
            task.id,
            core::StageCosts{
                task.runtime_sec /
                    static_cast<double>(std::max<size_t>(task.parents.size(),
                                                         1)),
                0.0}),
        state_(state),
        expected_(static_cast<int>(std::max<size_t>(task.parents.size(), 1))),
        output_bytes_(task.output_bytes) {}

  Result<std::vector<core::DataProduct>> Process(
      const core::DataProduct& input) override {
    double now = state_->sim->Now();
    double ready = std::strtod(input.Attr("wf.ready_at", "0").c_str(),
                               nullptr);
    state_->sojourn_sec.push_back(now - ready);
    if (++arrivals_ < expected_) {
      return std::vector<core::DataProduct>{};
    }
    ++state_->tasks_completed;
    core::DataProduct output;
    output.name = name();
    output.bytes = output_bytes_;
    output.attributes["wf.ready_at"] = FmtDouble(now);
    return std::vector<core::DataProduct>{output};
  }

 private:
  ReplayState* state_;
  int expected_;
  int arrivals_ = 0;
  int64_t output_bytes_;
};

}  // namespace

Result<WfReplayOutcome> ReplayWfInstance(const WorkflowInstance& instance,
                                         const WfReplayConfig& config) {
  if (instance.tasks.empty()) {
    return Invalid("cannot replay an empty instance");
  }
  if (config.source_arrival_mean_gap_sec < 0.0) {
    return Invalid("source arrival gap must be >= 0");
  }
  sim::Simulation sim;
  ReplayState state;
  state.sim = &sim;

  core::FlowGraph graph;
  for (const WorkflowTask& task : instance.tasks) {
    DFLOW_RETURN_IF_ERROR(
        graph.AddStage(std::make_shared<JoinTaskStage>(task, &state)));
  }
  for (const WorkflowTask& task : instance.tasks) {
    for (const std::string& child : task.children) {
      DFLOW_RETURN_IF_ERROR(graph.Connect(task.id, child));
    }
  }

  core::FlowRunner runner(&sim, &graph, config.seed);
  obs::TracerConfig trace_config;
  trace_config.clock = obs::TracerConfig::ClockMode::kExternal;
  trace_config.external_now_sec = [&sim] { return sim.Now(); };
  obs::Tracer tracer(trace_config);
  DFLOW_RETURN_IF_ERROR(runner.SetTracer(&tracer));
  for (const WorkflowTask& task : instance.tasks) {
    DFLOW_RETURN_IF_ERROR(runner.SetRetryPolicy(task.id, config.retry));
  }

  // Chaos: arm the plan's stage-fault hooks for every task, so events
  // targeting any task id land. Unmatched events (typo'd targets) are
  // counted by the injector, not silently dropped.
  std::unique_ptr<fault::Injector> injector;
  if (config.plan != nullptr) {
    injector = std::make_unique<fault::Injector>(&sim, *config.plan);
    for (const WorkflowTask& task : instance.tasks) {
      fault::ArmFlowRunnerStage(*injector, &runner, task.id);
    }
    DFLOW_RETURN_IF_ERROR(injector->Arm());
  }

  // Source products arrive at seeded exponential gaps — the replay's one
  // stochastic degree of freedom (trace DAG and runtimes are data).
  Rng arrivals(config.seed);
  double at = 0.0;
  for (const std::string& source : instance.SourceTaskIds()) {
    core::DataProduct product;
    product.name = source + ":input";
    product.bytes = 0;
    product.attributes["wf.ready_at"] = FmtDouble(at);
    DFLOW_RETURN_IF_ERROR(runner.Inject(source, std::move(product), at));
    if (config.source_arrival_mean_gap_sec > 0.0) {
      at += arrivals.Exponential(1.0 / config.source_arrival_mean_gap_sec);
    }
  }

  DFLOW_RETURN_IF_ERROR(runner.Run());

  WfReplayOutcome outcome;
  outcome.makespan_sec = sim.Now();
  outcome.tasks_completed = state.tasks_completed;
  outcome.dead_lettered =
      static_cast<int64_t>(runner.dead_letters().size());
  outcome.retries = runner.total_retries();
  outcome.errors = runner.total_errors();
  outcome.faults_injected = injector != nullptr ? injector->injected() : 0;
  outcome.sojourn_sec = std::move(state.sojourn_sec);
  outcome.report = runner.Report();
  outcome.trace_json = tracer.ExportChromeJson();
  outcome.trace_fingerprint = tracer.Fingerprint();
  return outcome;
}

}  // namespace dflow::scenario
