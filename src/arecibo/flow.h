#ifndef DFLOW_ARECIBO_FLOW_H_
#define DFLOW_ARECIBO_FLOW_H_

#include <memory>

#include "arecibo/survey.h"
#include "core/flow_graph.h"
#include "core/flow_runner.h"
#include "util/result.h"

namespace dflow::arecibo {

/// Names of the Figure-1 stages, in data-flow order.
struct AreciboFlowStages {
  static constexpr const char* kAcquisition = "telescope_acquisition";
  static constexpr const char* kLocalQa = "local_quality_monitoring";
  static constexpr const char* kDiskTransport = "disk_transport_to_ctc";
  static constexpr const char* kTapeArchive = "ctc_tape_archive";
  static constexpr const char* kConsortium = "palfa_consortium_processing";
  static constexpr const char* kConsolidation = "ctc_consolidation";
  static constexpr const char* kMetaAnalysis = "meta_analysis_db";
  static constexpr const char* kNvo = "nvo_linkage";
};

/// Builds the paper's Figure 1 as an executable workflow: telescope
/// acquisition -> local quality monitoring -> physical disk transport ->
/// CTC tape archive (which fans out to consortium processing and long-term
/// storage) -> consolidation of data products -> the meta-analysis
/// database -> NVO linkage. Stage lambdas apply the paper's volume ratios
/// (products ~2% of raw, refined candidates ~0.1%), so running the flow
/// over one block of pointings reproduces the per-stage byte totals.
Status BuildAreciboFlow(const SurveyConfig& config, core::FlowGraph* graph);

/// Injects one week's observing block (`config.pointings_per_block`
/// pointings of `raw_bytes_per_pointing` each) into the acquisition stage,
/// spaced over the telescope sessions.
Status InjectObservingBlock(const SurveyConfig& config,
                            core::FlowRunner* runner);

/// Tags each stage with its processing site for provenance (§2.2: data
/// products carry "a version number indicating processing code and
/// processing site"): the telescope stages run at Arecibo, the archive
/// and meta-analysis at the CTC, consortium processing at PALFA member
/// institutions.
Status ConfigureAreciboSites(core::FlowRunner* runner);

}  // namespace dflow::arecibo

#endif  // DFLOW_ARECIBO_FLOW_H_
