#include "arecibo/flow.h"

#include <string>

#include "core/stage.h"
#include "util/units.h"

namespace dflow::arecibo {

namespace {

using core::DataProduct;
using core::LambdaStage;
using core::StageCosts;

/// Pass-through stage scaling the byte volume by `ratio` and renaming the
/// product with `suffix`.
std::shared_ptr<LambdaStage> ScalingStage(const std::string& name,
                                          StageCosts costs, double ratio,
                                          const std::string& suffix) {
  return std::make_shared<LambdaStage>(
      name, costs,
      [ratio, suffix](const DataProduct& in)
          -> dflow::Result<std::vector<DataProduct>> {
        DataProduct out = in;
        out.name = in.name + suffix;
        out.bytes = static_cast<int64_t>(static_cast<double>(in.bytes) *
                                         ratio);
        return std::vector<DataProduct>{std::move(out)};
      });
}

}  // namespace

Status BuildAreciboFlow(const SurveyConfig& config, core::FlowGraph* graph) {
  using S = AreciboFlowStages;

  // Service-time scales: acquisition is telescope-time bound; transport is
  // shipment-bound (the net:: module studies it in detail — here it is a
  // fixed courier delay per product batch amortized per pointing);
  // processing is CPU-bound (the paper's 50-200 processor question).
  const double session_sec =
      config.block_telescope_hours * kHour / config.pointings_per_block;

  DFLOW_RETURN_IF_ERROR(graph->AddStage(
      ScalingStage(S::kAcquisition, StageCosts{session_sec, 0.0}, 1.0, "")));
  DFLOW_RETURN_IF_ERROR(graph->AddStage(ScalingStage(
      S::kLocalQa, StageCosts{60.0, 0.0}, 1.0, "")));
  DFLOW_RETURN_IF_ERROR(graph->AddStage(ScalingStage(
      S::kDiskTransport, StageCosts{15 * kMinute, 0.0}, 1.0, "")));
  DFLOW_RETURN_IF_ERROR(graph->AddStage(ScalingStage(
      S::kTapeArchive, StageCosts{90.0, 1.0 / 120.0e6}, 1.0, "")));
  // Consortium processing reduces raw to data products (1-3% of raw).
  DFLOW_RETURN_IF_ERROR(graph->AddStage(
      ScalingStage(S::kConsortium, StageCosts{0.0, 2.0e-9},
                   config.product_fraction, ".products")));
  DFLOW_RETURN_IF_ERROR(graph->AddStage(ScalingStage(
      S::kConsolidation, StageCosts{30.0, 0.0}, 1.0, "")));
  // Meta-analysis culls products to refined candidates (~0.1% of raw =
  // candidate_fraction / product_fraction of the product volume).
  DFLOW_RETURN_IF_ERROR(graph->AddStage(ScalingStage(
      S::kMetaAnalysis, StageCosts{10.0, 0.0},
      config.candidate_fraction / config.product_fraction, ".candidates")));
  DFLOW_RETURN_IF_ERROR(graph->AddStage(
      ScalingStage(S::kNvo, StageCosts{1.0, 0.0}, 1.0, ".votable")));

  DFLOW_RETURN_IF_ERROR(graph->Connect(S::kAcquisition, S::kLocalQa));
  DFLOW_RETURN_IF_ERROR(graph->Connect(S::kLocalQa, S::kDiskTransport));
  DFLOW_RETURN_IF_ERROR(graph->Connect(S::kDiskTransport, S::kTapeArchive));
  DFLOW_RETURN_IF_ERROR(graph->Connect(S::kTapeArchive, S::kConsortium));
  DFLOW_RETURN_IF_ERROR(graph->Connect(S::kConsortium, S::kConsolidation));
  DFLOW_RETURN_IF_ERROR(graph->Connect(S::kConsolidation, S::kMetaAnalysis));
  DFLOW_RETURN_IF_ERROR(graph->Connect(S::kMetaAnalysis, S::kNvo));
  return Status::OK();
}

Status ConfigureAreciboSites(core::FlowRunner* runner) {
  using S = AreciboFlowStages;
  DFLOW_RETURN_IF_ERROR(runner->SetSite(S::kAcquisition, "Arecibo"));
  DFLOW_RETURN_IF_ERROR(runner->SetSite(S::kLocalQa, "Arecibo"));
  DFLOW_RETURN_IF_ERROR(runner->SetSite(S::kDiskTransport, "courier"));
  DFLOW_RETURN_IF_ERROR(runner->SetSite(S::kTapeArchive, "CTC"));
  DFLOW_RETURN_IF_ERROR(runner->SetSite(S::kConsortium, "PALFA-members"));
  DFLOW_RETURN_IF_ERROR(runner->SetSite(S::kConsolidation, "CTC"));
  DFLOW_RETURN_IF_ERROR(runner->SetSite(S::kMetaAnalysis, "CTC"));
  return runner->SetSite(S::kNvo, "NVO");
}

Status InjectObservingBlock(const SurveyConfig& config,
                            core::FlowRunner* runner) {
  const double spacing =
      config.block_telescope_hours * kHour / config.pointings_per_block;
  for (int pointing = 0; pointing < config.pointings_per_block; ++pointing) {
    DataProduct product;
    product.name = "pointing_" + std::to_string(pointing);
    product.bytes = config.raw_bytes_per_pointing;
    product.attributes["pointing"] = std::to_string(pointing);
    DFLOW_RETURN_IF_ERROR(runner->Inject(AreciboFlowStages::kAcquisition,
                                         std::move(product),
                                         pointing * spacing));
  }
  return Status::OK();
}

}  // namespace dflow::arecibo
