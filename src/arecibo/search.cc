#include "arecibo/search.h"

#include <algorithm>
#include <cmath>

#include "arecibo/fft.h"
#include "par/par.h"
#include "simd/simd.h"
#include "util/logging.h"

namespace dflow::arecibo {

namespace {

/// Robust location/scale of a power spectrum via median and interquartile
/// range (the spectrum is chi-squared distributed and peaky; plain
/// mean/stddev would be dragged up by the very signals we search for).
/// Quantiles come from nth_element (exact order statistics — the same
/// values a full sort would give, at O(n) instead of O(n log n)).
void RobustStats(const std::vector<double>& power, double* location,
                 double* scale) {
  std::vector<double> scratch(power.begin() + 1, power.end());
  const size_t n = scratch.size();
  auto quantile = [&scratch](size_t index) {
    std::nth_element(scratch.begin(),
                     scratch.begin() + static_cast<ptrdiff_t>(index),
                     scratch.end());
    return scratch[index];
  };
  double q1 = quantile(n / 4);
  *location = quantile(n / 2);
  double q3 = quantile((3 * n) / 4);
  // IQR -> sigma for an exponential-ish distribution; 1.349 is the
  // Gaussian conversion, close enough for thresholding.
  *scale = std::max((q3 - q1) / 1.349, 1e-12);
}

}  // namespace

PeriodicitySearch::PeriodicitySearch(SearchConfig config) : config_(config) {
  DFLOW_CHECK(config_.max_harmonics >= 1);
  DFLOW_CHECK(config_.max_candidates >= 1);
}

std::vector<Candidate> PeriodicitySearch::SearchPower(
    const std::vector<double>& power, const TimeSeries& series) const {
  std::vector<Candidate> out;
  const size_t num_bins = power.size();
  const size_t padded = num_bins * 2;
  const double freq_step =
      1.0 / (static_cast<double>(padded) * series.sample_time_sec);

  double location, scale;
  RobustStats(power, &location, &scale);

  std::vector<double> best_snr(num_bins, 0.0);
  std::vector<int> best_fold(num_bins, 1);

  // Harmonic summing, parallel across spectral bins and vectorized across
  // k within each chunk (fold-major): every bin k still accumulates
  // power[k*h] in ascending h and evaluates the same snr expression at the
  // same fold boundaries as the old bin-outer loop — one add / sub / div
  // per element in identical order — so outputs are bit-identical to the
  // serial scalar code at any thread count and any DFLOW_SIMD tier.
  // (Inside SearchBatch this region is nested and runs inline on the
  // worker.)
  par::Options options;
  options.label = "arecibo.harmonic_sum";
  options.grain = 2048;
  const simd::KernelTable& kernels = simd::Kernels();
  par::ParallelFor(
      static_cast<int64_t>(config_.min_bin), static_cast<int64_t>(num_bins),
      [&](int64_t chunk_begin, int64_t chunk_end) {
        std::vector<double> summed(
            static_cast<size_t>(chunk_end - chunk_begin), 0.0);
        int previous_fold = 0;
        for (int fold = 1; fold <= config_.max_harmonics; fold *= 2) {
          // The old per-bin loop broke out once k*fold >= num_bins, so
          // fold participates only for k < ceil(num_bins/fold).
          const int64_t k_limit =
              (static_cast<int64_t>(num_bins) - 1) / fold + 1;
          const int64_t hi = std::min(chunk_end, k_limit);
          if (chunk_begin >= hi) {
            break;
          }
          const int64_t m = hi - chunk_begin;
          for (int h = previous_fold + 1; h <= fold; ++h) {
            kernels.strided_add_f64(
                summed.data(), power.data() + chunk_begin * h, h, m);
          }
          previous_fold = fold;
          const double bias = fold * location;
          const double denom = scale * std::sqrt(static_cast<double>(fold));
          kernels.snr_best_update(summed.data(), m, bias, denom, fold,
                                  best_snr.data() + chunk_begin,
                                  best_fold.data() + chunk_begin);
        }
      },
      options);

  // Local maxima above threshold.
  for (size_t k = static_cast<size_t>(config_.min_bin); k + 1 < num_bins;
       ++k) {
    if (best_snr[k] < config_.snr_threshold) {
      continue;
    }
    if (best_snr[k] < best_snr[k - 1] || best_snr[k] < best_snr[k + 1]) {
      continue;
    }
    Candidate candidate;
    candidate.freq_hz = static_cast<double>(k) * freq_step;
    candidate.period_sec = 1.0 / candidate.freq_hz;
    candidate.dm = series.dm;
    candidate.snr = best_snr[k];
    candidate.harmonics = best_fold[k];
    out.push_back(candidate);
  }

  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    return a.snr > b.snr;
  });
  if (out.size() > static_cast<size_t>(config_.max_candidates)) {
    out.resize(static_cast<size_t>(config_.max_candidates));
  }
  return out;
}

std::vector<Candidate> PeriodicitySearch::Search(
    const TimeSeries& series) const {
  if (series.samples.size() < 8) {
    return {};
  }
  const std::vector<double> power = PowerSpectrum(series.samples);
  return SearchPower(power, series);
}

std::vector<std::vector<Candidate>> PeriodicitySearch::SearchBatch(
    const std::vector<TimeSeries>& series) const {
  const int64_t n = static_cast<int64_t>(series.size());
  std::vector<std::vector<Candidate>> out(static_cast<size_t>(n));
  if (n == 0) {
    return out;
  }

  // Deterministic work units: adjacent series that pad to the same FFT
  // size share one packed transform; stragglers go alone. Unit boundaries
  // depend only on the input, never on the thread count.
  struct Unit {
    int64_t a = 0;
    int64_t b = -1;  // -1: single-series unit.
  };
  auto padded_of = [](const TimeSeries& s) {
    return NextPowerOfTwo(std::max<size_t>(s.samples.size(), 2));
  };
  std::vector<Unit> units;
  units.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n;) {
    const bool pairable =
        i + 1 < n && series[static_cast<size_t>(i)].samples.size() >= 8 &&
        series[static_cast<size_t>(i + 1)].samples.size() >= 8 &&
        padded_of(series[static_cast<size_t>(i)]) ==
            padded_of(series[static_cast<size_t>(i + 1)]);
    if (pairable) {
      units.push_back(Unit{i, i + 1});
      i += 2;
    } else {
      units.push_back(Unit{i, -1});
      i += 1;
    }
  }

  // Parallel across units; each chunk reuses one FftScratch and two power
  // buffers across all of its transforms (no per-call allocation).
  par::Options options;
  options.label = "arecibo.search_batch";
  par::ParallelFor(
      0, static_cast<int64_t>(units.size()),
      [&](int64_t chunk_begin, int64_t chunk_end) {
        FftScratch scratch;
        std::vector<double> power_a;
        std::vector<double> power_b;
        for (int64_t u = chunk_begin; u < chunk_end; ++u) {
          const Unit& unit = units[static_cast<size_t>(u)];
          const TimeSeries& first = series[static_cast<size_t>(unit.a)];
          if (unit.b < 0) {
            if (first.samples.size() < 8) {
              continue;  // Matches Search(): too short, no candidates.
            }
            PowerSpectrum(first.samples, &scratch, &power_a);
            out[static_cast<size_t>(unit.a)] = SearchPower(power_a, first);
          } else {
            const TimeSeries& second = series[static_cast<size_t>(unit.b)];
            Status packed = PowerSpectrumPair(first.samples, second.samples,
                                              &scratch, &power_a, &power_b);
            DFLOW_CHECK(packed.ok());  // Unit construction guarantees it.
            out[static_cast<size_t>(unit.a)] = SearchPower(power_a, first);
            out[static_cast<size_t>(unit.b)] = SearchPower(power_b, second);
          }
        }
      },
      options);
  return out;
}

AccelerationSearch::AccelerationSearch(SearchConfig config,
                                       std::vector<double> accel_trials)
    : base_(config), accel_trials_(std::move(accel_trials)) {
  if (accel_trials_.empty()) {
    accel_trials_.push_back(0.0);
  }
}

TimeSeries AccelerationSearch::Resample(const TimeSeries& series,
                                        double alpha) {
  TimeSeries out;
  out.dm = series.dm;
  out.sample_time_sec = series.sample_time_sec;
  const int64_t n = static_cast<int64_t>(series.samples.size());
  // Truncate to the prefix whose source indices stay in range: padding the
  // tail with zeros would create a step edge and flood the low spectral
  // bins with artifacts.
  int64_t valid = n;
  for (int64_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    const double src =
        x + alpha * x * x / (2.0 * static_cast<double>(n));
    if (std::lround(src) < 0 || std::lround(src) >= n) {
      valid = i;
      break;
    }
  }
  out.samples.assign(static_cast<size_t>(valid), 0.0);
  for (int64_t i = 0; i < valid; ++i) {
    const double x = static_cast<double>(i);
    const double src =
        x + alpha * x * x / (2.0 * static_cast<double>(n));
    out.samples[static_cast<size_t>(i)] =
        series.samples[static_cast<size_t>(std::lround(src))];
  }
  return out;
}

std::vector<Candidate> AccelerationSearch::Search(
    const TimeSeries& series) const {
  // Trials are independent: resample + search in parallel, each trial
  // writing its own slot; the keep-best-per-frequency merge below then
  // walks the trials in their original order, so the merged output is
  // identical to the old serial loop at any thread count.
  par::Options options;
  options.label = "arecibo.accel_trials";
  std::vector<std::vector<Candidate>> per_trial =
      par::ParallelMap<std::vector<Candidate>>(
          static_cast<int64_t>(accel_trials_.size()),
          [this, &series](int64_t i) {
            const double alpha = accel_trials_[static_cast<size_t>(i)];
            TimeSeries resampled =
                alpha == 0.0 ? series : Resample(series, alpha);
            std::vector<Candidate> found = base_.Search(resampled);
            for (Candidate& candidate : found) {
              candidate.accel = alpha;
            }
            return found;
          },
          options);

  std::vector<Candidate> best;
  for (std::vector<Candidate>& found : per_trial) {
    for (Candidate& candidate : found) {
      // Keep the strongest detection per frequency (within one bin).
      bool merged = false;
      for (Candidate& existing : best) {
        if (std::fabs(existing.freq_hz - candidate.freq_hz) <
            0.5 / (static_cast<double>(series.samples.size()) *
                   series.sample_time_sec)) {
          if (candidate.snr > existing.snr) {
            existing = candidate;
          }
          merged = true;
          break;
        }
      }
      if (!merged) {
        best.push_back(candidate);
      }
    }
  }
  std::sort(best.begin(), best.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.snr > b.snr;
            });
  return best;
}

}  // namespace dflow::arecibo
