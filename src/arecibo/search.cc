#include "arecibo/search.h"

#include <algorithm>
#include <cmath>

#include "arecibo/fft.h"
#include "util/logging.h"

namespace dflow::arecibo {

namespace {

/// Robust location/scale of a power spectrum via median and interquartile
/// range (the spectrum is chi-squared distributed and peaky; plain
/// mean/stddev would be dragged up by the very signals we search for).
void RobustStats(const std::vector<double>& power, double* location,
                 double* scale) {
  std::vector<double> sorted(power.begin() + 1, power.end());
  std::sort(sorted.begin(), sorted.end());
  size_t n = sorted.size();
  *location = sorted[n / 2];
  double q1 = sorted[n / 4];
  double q3 = sorted[(3 * n) / 4];
  // IQR -> sigma for an exponential-ish distribution; 1.349 is the
  // Gaussian conversion, close enough for thresholding.
  *scale = std::max((q3 - q1) / 1.349, 1e-12);
}

}  // namespace

PeriodicitySearch::PeriodicitySearch(SearchConfig config) : config_(config) {
  DFLOW_CHECK(config_.max_harmonics >= 1);
  DFLOW_CHECK(config_.max_candidates >= 1);
}

std::vector<Candidate> PeriodicitySearch::Search(
    const TimeSeries& series) const {
  std::vector<Candidate> out;
  if (series.samples.size() < 8) {
    return out;
  }
  const std::vector<double> power = PowerSpectrum(series.samples);
  const size_t padded = NextPowerOfTwo(series.samples.size());
  const double freq_step =
      1.0 / (static_cast<double>(padded) * series.sample_time_sec);

  double location, scale;
  RobustStats(power, &location, &scale);

  const size_t num_bins = power.size();
  std::vector<double> best_snr(num_bins, 0.0);
  std::vector<int> best_fold(num_bins, 1);

  for (int fold = 1; fold <= config_.max_harmonics; fold *= 2) {
    for (size_t k = static_cast<size_t>(config_.min_bin);
         k * static_cast<size_t>(fold) < num_bins; ++k) {
      double summed = 0.0;
      for (int h = 1; h <= fold; ++h) {
        summed += power[k * static_cast<size_t>(h)];
      }
      const double snr = (summed - fold * location) /
                         (scale * std::sqrt(static_cast<double>(fold)));
      if (snr > best_snr[k]) {
        best_snr[k] = snr;
        best_fold[k] = fold;
      }
    }
  }

  // Local maxima above threshold.
  for (size_t k = static_cast<size_t>(config_.min_bin); k + 1 < num_bins;
       ++k) {
    if (best_snr[k] < config_.snr_threshold) {
      continue;
    }
    if (best_snr[k] < best_snr[k - 1] || best_snr[k] < best_snr[k + 1]) {
      continue;
    }
    Candidate candidate;
    candidate.freq_hz = static_cast<double>(k) * freq_step;
    candidate.period_sec = 1.0 / candidate.freq_hz;
    candidate.dm = series.dm;
    candidate.snr = best_snr[k];
    candidate.harmonics = best_fold[k];
    out.push_back(candidate);
  }

  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    return a.snr > b.snr;
  });
  if (out.size() > static_cast<size_t>(config_.max_candidates)) {
    out.resize(static_cast<size_t>(config_.max_candidates));
  }
  return out;
}

AccelerationSearch::AccelerationSearch(SearchConfig config,
                                       std::vector<double> accel_trials)
    : base_(config), accel_trials_(std::move(accel_trials)) {
  if (accel_trials_.empty()) {
    accel_trials_.push_back(0.0);
  }
}

TimeSeries AccelerationSearch::Resample(const TimeSeries& series,
                                        double alpha) {
  TimeSeries out;
  out.dm = series.dm;
  out.sample_time_sec = series.sample_time_sec;
  const int64_t n = static_cast<int64_t>(series.samples.size());
  // Truncate to the prefix whose source indices stay in range: padding the
  // tail with zeros would create a step edge and flood the low spectral
  // bins with artifacts.
  int64_t valid = n;
  for (int64_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    const double src =
        x + alpha * x * x / (2.0 * static_cast<double>(n));
    if (std::lround(src) < 0 || std::lround(src) >= n) {
      valid = i;
      break;
    }
  }
  out.samples.assign(static_cast<size_t>(valid), 0.0);
  for (int64_t i = 0; i < valid; ++i) {
    const double x = static_cast<double>(i);
    const double src =
        x + alpha * x * x / (2.0 * static_cast<double>(n));
    out.samples[static_cast<size_t>(i)] =
        series.samples[static_cast<size_t>(std::lround(src))];
  }
  return out;
}

std::vector<Candidate> AccelerationSearch::Search(
    const TimeSeries& series) const {
  std::vector<Candidate> best;
  for (double alpha : accel_trials_) {
    TimeSeries resampled =
        alpha == 0.0 ? series : Resample(series, alpha);
    std::vector<Candidate> found = base_.Search(resampled);
    for (Candidate& candidate : found) {
      candidate.accel = alpha;
      // Keep the strongest detection per frequency (within one bin).
      bool merged = false;
      for (Candidate& existing : best) {
        if (std::fabs(existing.freq_hz - candidate.freq_hz) <
            0.5 / (static_cast<double>(series.samples.size()) *
                   series.sample_time_sec)) {
          if (candidate.snr > existing.snr) {
            existing = candidate;
          }
          merged = true;
          break;
        }
      }
      if (!merged) {
        best.push_back(candidate);
      }
    }
  }
  std::sort(best.begin(), best.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.snr > b.snr;
            });
  return best;
}

}  // namespace dflow::arecibo
