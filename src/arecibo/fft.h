#ifndef DFLOW_ARECIBO_FFT_H_
#define DFLOW_ARECIBO_FFT_H_

#include <complex>
#include <vector>

#include "util/result.h"

namespace dflow::arecibo {

/// In-place iterative radix-2 Cooley-Tukey FFT. `data.size()` must be a
/// power of two. `inverse` applies the conjugate transform and 1/N
/// normalization. This is the workhorse of the pulsar periodicity search
/// (§2.1 "Fourier analysis"), implemented from scratch per the
/// reproduction rules.
Status Fft(std::vector<std::complex<double>>& data, bool inverse = false);

/// Power spectrum of a real time series: zero-pads to the next power of
/// two, FFTs, and returns |X_k|^2 for k = 0..N/2-1 (the one-sided
/// spectrum). The DC bin is zeroed so detrending is unnecessary upstream.
std::vector<double> PowerSpectrum(const std::vector<double>& series);

/// Smallest power of two >= n (n >= 1).
size_t NextPowerOfTwo(size_t n);

}  // namespace dflow::arecibo

#endif  // DFLOW_ARECIBO_FFT_H_
