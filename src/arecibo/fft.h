#ifndef DFLOW_ARECIBO_FFT_H_
#define DFLOW_ARECIBO_FFT_H_

#include <complex>
#include <cstdint>
#include <vector>

#include "util/result.h"

namespace dflow::arecibo {

/// In-place iterative radix-2 Cooley-Tukey FFT. `data.size()` must be a
/// power of two. `inverse` applies the conjugate transform and 1/N
/// normalization. This is the workhorse of the pulsar periodicity search
/// (§2.1 "Fourier analysis"), implemented from scratch per the
/// reproduction rules.
///
/// Twiddle factors come from FftTwiddleTable(); the butterfly stages run
/// through the dflow::simd kernel layer, whose scalar/vector variants are
/// bit-identical (same mul/add sequence per lane, no FMA contraction).
Status Fft(std::vector<std::complex<double>>& data, bool inverse = false);

/// Forward-transform twiddle table for size n (a power of two):
/// table[j] = exp(-2*pi*i*j/n) for j in [0, n/2). Stage `len` of a size-n
/// transform uses entries at stride n/len; the inverse transform
/// conjugates on the fly. Computed once per size and cached for the life
/// of the process in a lock-free log2-indexed slot array: the steady-state
/// lookup is a single acquire load — no mutex, no map walk — so calling it
/// per transform costs nanoseconds. Each factor is a direct cos/sin
/// evaluation (not an accumulated w *= wlen product), which is also the
/// invariant the bench_micro_signal twiddle check pins.
const std::vector<std::complex<double>>& FftTwiddleTable(size_t n);

/// Reusable scratch for the spectrum helpers below. PowerSpectrum /
/// PowerSpectrumPair zero-pad into an internal complex buffer; routing
/// repeated same-size calls through one FftScratch (one per worker — it is
/// NOT thread-safe) reuses that buffer instead of heap-allocating per
/// call. `allocations()` counts buffer growths, which is what the
/// allocation-count regression test pins: N same-size transforms must cost
/// exactly one allocation.
class FftScratch {
 public:
  /// The zero-padded complex buffer, resized to n (capacity grows
  /// monotonically; growth increments allocations()).
  std::vector<std::complex<double>>& Complex(size_t n);

  /// Times the complex buffer had to (re)allocate backing storage.
  int64_t allocations() const { return allocations_; }

 private:
  std::vector<std::complex<double>> buffer_;
  int64_t allocations_ = 0;
};

/// Power spectrum of a real time series: zero-pads to the next power of
/// two, FFTs, and returns |X_k|^2 for k = 0..N/2-1 (the one-sided
/// spectrum). The DC bin is zeroed so detrending is unnecessary upstream.
std::vector<double> PowerSpectrum(const std::vector<double>& series);

/// Scratch-reusing form: identical output to the vector-returning shim
/// above (bit-for-bit — same code path), but the complex work buffer lives
/// in `scratch` and `power` is reused across calls.
void PowerSpectrum(const std::vector<double>& series, FftScratch* scratch,
                   std::vector<double>* power);

/// Real-input packing: computes the power spectra of TWO real series with
/// ONE complex FFT by transforming a + i*b and splitting with the
/// conjugate-symmetry identities A_k = (X_k + conj(X_{n-k}))/2,
/// B_k = (X_k - conj(X_{n-k}))/(2i). Both series must pad to the same
/// power of two (InvalidArgument otherwise). Results agree with the
/// single-series path to floating-point rounding (not bit-exactly) — but
/// are themselves deterministic: the same inputs always produce the same
/// bytes, regardless of thread count.
Status PowerSpectrumPair(const std::vector<double>& a,
                         const std::vector<double>& b, FftScratch* scratch,
                         std::vector<double>* power_a,
                         std::vector<double>* power_b);

/// Smallest power of two >= n (n >= 1).
size_t NextPowerOfTwo(size_t n);

}  // namespace dflow::arecibo

#endif  // DFLOW_ARECIBO_FFT_H_
