#ifndef DFLOW_ARECIBO_SEARCH_H_
#define DFLOW_ARECIBO_SEARCH_H_

#include <vector>

#include "arecibo/dedisperse.h"
#include "util/result.h"

namespace dflow::arecibo {

/// A pulsar candidate produced by the periodicity search.
struct Candidate {
  double freq_hz = 0.0;
  double period_sec = 0.0;
  double dm = 0.0;
  double snr = 0.0;
  int harmonics = 1;       // Harmonic fold at which the peak maximized.
  double accel = 0.0;      // Trial acceleration (fractional stretch).
  int beam = -1;
  int pointing = -1;
  bool rfi_flag = false;
};

struct SearchConfig {
  double snr_threshold = 6.0;
  /// Harmonic folds attempted: 1, 2, 4, ... up to this count.
  int max_harmonics = 4;
  /// Cap on candidates returned per time series (strongest first).
  int max_candidates = 16;
  /// Ignore spectral bins below this index (red-noise guard).
  int min_bin = 2;
};

/// FFT periodicity search with harmonic summing (§2.1: "Fourier analysis,
/// harmonic summing, threshold tests to identify candidates"). Harmonic
/// summing adds power[k] + power[2k] + ... so that narrow (high duty
/// cycle) pulses whose power spreads across harmonics still cross the
/// threshold.
class PeriodicitySearch {
 public:
  explicit PeriodicitySearch(SearchConfig config);

  /// Candidates above threshold, strongest first.
  std::vector<Candidate> Search(const TimeSeries& series) const;

  /// Batch form over many series (the per-beam DM-trial sweep): series are
  /// paired (0,1), (2,3), ... and each pair's power spectra come from ONE
  /// complex FFT via real-input packing (PowerSpectrumPair), with the
  /// pair loop parallel on the dflow::par shared pool and per-chunk
  /// FftScratch reuse. Results land in slot i for series i, so output
  /// order — and every byte of it — is thread-count-invariant. The packed
  /// spectra agree with the single-series path to floating-point rounding,
  /// so Search(series[i]) and SearchBatch(series)[i] can differ in the
  /// last bits of SNR; within one code path, same input => same bytes.
  /// Pairing only happens when both series pad to the same FFT size;
  /// stragglers take the single-series path.
  std::vector<std::vector<Candidate>> SearchBatch(
      const std::vector<TimeSeries>& series) const;

  const SearchConfig& config() const { return config_; }

 private:
  /// The spectrum-domain half of Search(): robust stats, harmonic
  /// summing (parallel across bins), local-maxima thresholding. `power`
  /// is the one-sided spectrum of `series` (padded size = 2 *
  /// power.size()).
  std::vector<Candidate> SearchPower(const std::vector<double>& power,
                                     const TimeSeries& series) const;

  SearchConfig config_;
};

/// Time-domain resampling search for binary pulsars (§2.1: "pulsars that
/// are in binary systems, for which an acceleration search algorithm also
/// needs to be applied"). A constant line-of-sight acceleration smears the
/// spin frequency across Fourier bins; resampling the series with a trial
/// quadratic stretch re-concentrates it. Trials sweep fractional stretch
/// values alpha: sample i is read from position i + alpha*i^2/(2N).
class AccelerationSearch {
 public:
  AccelerationSearch(SearchConfig config, std::vector<double> accel_trials);

  /// Runs the periodicity search at every trial acceleration and keeps
  /// the best detection per frequency.
  std::vector<Candidate> Search(const TimeSeries& series) const;

  /// The resampling primitive (exposed for tests).
  static TimeSeries Resample(const TimeSeries& series, double alpha);

  const std::vector<double>& accel_trials() const { return accel_trials_; }

 private:
  PeriodicitySearch base_;
  std::vector<double> accel_trials_;
};

}  // namespace dflow::arecibo

#endif  // DFLOW_ARECIBO_SEARCH_H_
