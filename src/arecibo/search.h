#ifndef DFLOW_ARECIBO_SEARCH_H_
#define DFLOW_ARECIBO_SEARCH_H_

#include <vector>

#include "arecibo/dedisperse.h"
#include "util/result.h"

namespace dflow::arecibo {

/// A pulsar candidate produced by the periodicity search.
struct Candidate {
  double freq_hz = 0.0;
  double period_sec = 0.0;
  double dm = 0.0;
  double snr = 0.0;
  int harmonics = 1;       // Harmonic fold at which the peak maximized.
  double accel = 0.0;      // Trial acceleration (fractional stretch).
  int beam = -1;
  int pointing = -1;
  bool rfi_flag = false;
};

struct SearchConfig {
  double snr_threshold = 6.0;
  /// Harmonic folds attempted: 1, 2, 4, ... up to this count.
  int max_harmonics = 4;
  /// Cap on candidates returned per time series (strongest first).
  int max_candidates = 16;
  /// Ignore spectral bins below this index (red-noise guard).
  int min_bin = 2;
};

/// FFT periodicity search with harmonic summing (§2.1: "Fourier analysis,
/// harmonic summing, threshold tests to identify candidates"). Harmonic
/// summing adds power[k] + power[2k] + ... so that narrow (high duty
/// cycle) pulses whose power spreads across harmonics still cross the
/// threshold.
class PeriodicitySearch {
 public:
  explicit PeriodicitySearch(SearchConfig config);

  /// Candidates above threshold, strongest first.
  std::vector<Candidate> Search(const TimeSeries& series) const;

  const SearchConfig& config() const { return config_; }

 private:
  SearchConfig config_;
};

/// Time-domain resampling search for binary pulsars (§2.1: "pulsars that
/// are in binary systems, for which an acceleration search algorithm also
/// needs to be applied"). A constant line-of-sight acceleration smears the
/// spin frequency across Fourier bins; resampling the series with a trial
/// quadratic stretch re-concentrates it. Trials sweep fractional stretch
/// values alpha: sample i is read from position i + alpha*i^2/(2N).
class AccelerationSearch {
 public:
  AccelerationSearch(SearchConfig config, std::vector<double> accel_trials);

  /// Runs the periodicity search at every trial acceleration and keeps
  /// the best detection per frequency.
  std::vector<Candidate> Search(const TimeSeries& series) const;

  /// The resampling primitive (exposed for tests).
  static TimeSeries Resample(const TimeSeries& series, double alpha);

  const std::vector<double>& accel_trials() const { return accel_trials_; }

 private:
  PeriodicitySearch base_;
  std::vector<double> accel_trials_;
};

}  // namespace dflow::arecibo

#endif  // DFLOW_ARECIBO_SEARCH_H_
