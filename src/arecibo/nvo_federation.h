#ifndef DFLOW_ARECIBO_NVO_FEDERATION_H_
#define DFLOW_ARECIBO_NVO_FEDERATION_H_

#include <map>
#include <string>
#include <vector>

#include "arecibo/search.h"
#include "util/result.h"

namespace dflow::arecibo {

/// A federated catalog in the National Virtual Observatory style (§5:
/// "Arecibo is in the process of contributing its data to the National
/// Virtual Observatory, federating their data with other data resources
/// from the Astronomy community. This will enable queries, which span
/// different datasets from different contributors, and hence astronomers
/// can leverage the combined information for their analysis").
///
/// Contributors publish VOTable documents; the federation ingests them,
/// tags every candidate with its origin, and answers cross-dataset
/// queries: spanning selections and cross-matches (the same signal seen
/// by two surveys — the confirmation workflow the paper describes for
/// follow-up observations).
class NvoFederation {
 public:
  /// Ingests a contributor's VOTable under `survey_name`. Repeated
  /// contributions append. Fails on malformed XML.
  Status Contribute(const std::string& survey_name,
                    const std::string& votable_xml);

  /// A candidate with its originating survey.
  struct FederatedCandidate {
    std::string survey;
    Candidate candidate;
  };

  /// All candidates across every contributor with snr >= min_snr,
  /// excluding RFI-flagged entries, strongest first: the "query spanning
  /// different datasets".
  std::vector<FederatedCandidate> SpanningQuery(double min_snr) const;

  /// Pairs of candidates from *different* surveys whose frequencies agree
  /// within `freq_tolerance` (fractional) and DMs within `dm_tolerance`:
  /// independent detections of the same object.
  struct CrossMatch {
    FederatedCandidate a;
    FederatedCandidate b;
  };
  std::vector<CrossMatch> CrossMatches(double freq_tolerance = 0.005,
                                       double dm_tolerance = 20.0) const;

  std::vector<std::string> Surveys() const;
  int64_t NumCandidates() const;

  /// The federation's combined catalog re-exported as one VOTable
  /// (surveys are distinguishable by the beam/pointing metadata their
  /// contributors set; the resource name is the federation's).
  std::string ExportVoTable() const;

 private:
  std::map<std::string, std::vector<Candidate>> contributions_;
};

}  // namespace dflow::arecibo

#endif  // DFLOW_ARECIBO_NVO_FEDERATION_H_
