#include "arecibo/single_pulse.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dflow::arecibo {

namespace {

/// Robust location/scale of the series itself (median / IQR), so that a
/// handful of bright pulses cannot inflate the noise estimate.
void RobustStats(const std::vector<double>& samples, double* location,
                 double* scale) {
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  size_t n = sorted.size();
  *location = sorted[n / 2];
  double q1 = sorted[n / 4];
  double q3 = sorted[(3 * n) / 4];
  *scale = std::max((q3 - q1) / 1.349, 1e-12);
}

}  // namespace

SinglePulseSearch::SinglePulseSearch(SinglePulseConfig config)
    : config_(config) {
  DFLOW_CHECK(config_.max_width >= 1);
  DFLOW_CHECK(config_.max_events >= 1);
}

std::vector<TransientEvent> SinglePulseSearch::Search(
    const TimeSeries& series) const {
  std::vector<TransientEvent> events;
  const int64_t n = static_cast<int64_t>(series.samples.size());
  if (n < 4) {
    return events;
  }
  double location, scale;
  RobustStats(series.samples, &location, &scale);

  // Prefix sums for O(1) boxcar sums.
  std::vector<double> prefix(static_cast<size_t>(n) + 1, 0.0);
  for (int64_t i = 0; i < n; ++i) {
    prefix[static_cast<size_t>(i + 1)] =
        prefix[static_cast<size_t>(i)] + series.samples[static_cast<size_t>(i)];
  }

  std::vector<TransientEvent> raw;
  for (int width = 1; width <= config_.max_width; width *= 2) {
    const double norm = 1.0 / (scale * std::sqrt(static_cast<double>(width)));
    for (int64_t start = 0; start + width <= n; ++start) {
      double sum = prefix[static_cast<size_t>(start + width)] -
                   prefix[static_cast<size_t>(start)] -
                   location * width;
      double snr = sum * norm;
      if (snr >= config_.snr_threshold) {
        TransientEvent event;
        event.sample = start + width / 2;
        event.time_sec =
            static_cast<double>(event.sample) * series.sample_time_sec;
        event.width_samples = width;
        event.snr = snr;
        event.dm = series.dm;
        raw.push_back(event);
      }
    }
  }

  // Merge nearby triggers, strongest first.
  std::sort(raw.begin(), raw.end(),
            [](const TransientEvent& a, const TransientEvent& b) {
              return a.snr > b.snr;
            });
  for (const TransientEvent& candidate : raw) {
    bool merged = false;
    for (const TransientEvent& kept : events) {
      if (std::llabs(kept.sample - candidate.sample) <=
          config_.merge_distance +
              (kept.width_samples + candidate.width_samples) / 2) {
        merged = true;
        break;
      }
    }
    if (!merged) {
      events.push_back(candidate);
      if (events.size() >= static_cast<size_t>(config_.max_events)) {
        break;
      }
    }
  }
  return events;
}

}  // namespace dflow::arecibo
