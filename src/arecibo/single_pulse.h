#ifndef DFLOW_ARECIBO_SINGLE_PULSE_H_
#define DFLOW_ARECIBO_SINGLE_PULSE_H_

#include <vector>

#include "arecibo/dedisperse.h"

namespace dflow::arecibo {

/// A non-periodic transient event found in a dedispersed time series.
/// Section 2.1 lists, beyond the periodicity search, "investigation of the
/// time series for transient signals that may be associated with
/// astrophysical objects other than pulsars" — the single-pulse search
/// that finds rotating radio transients, giant pulses, and (in the paper's
/// "Exotica" aspirations) entirely new classes of signals.
struct TransientEvent {
  int64_t sample = 0;        // Sample index of the peak.
  double time_sec = 0.0;     // Peak time within the block.
  int width_samples = 1;     // Boxcar width that maximized S/N.
  double snr = 0.0;
  double dm = 0.0;
};

struct SinglePulseConfig {
  double snr_threshold = 6.0;
  /// Boxcar widths tried, in samples (matched filtering for pulses of
  /// unknown duration). Powers of two up to max_width are used.
  int max_width = 32;
  /// Events closer than this (in samples) are merged, keeping the
  /// strongest (a bright pulse triggers at several widths and offsets).
  int64_t merge_distance = 16;
  int max_events = 64;
};

/// Matched-filter single-pulse search: convolves the series with boxcars
/// of width 1, 2, 4, ... max_width, normalizes each by sqrt(width), and
/// reports unique local maxima above threshold.
class SinglePulseSearch {
 public:
  explicit SinglePulseSearch(SinglePulseConfig config);

  std::vector<TransientEvent> Search(const TimeSeries& series) const;

  const SinglePulseConfig& config() const { return config_; }

 private:
  SinglePulseConfig config_;
};

}  // namespace dflow::arecibo

#endif  // DFLOW_ARECIBO_SINGLE_PULSE_H_
