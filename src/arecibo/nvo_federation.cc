#include "arecibo/nvo_federation.h"

#include <algorithm>
#include <cmath>

#include "arecibo/votable.h"

namespace dflow::arecibo {

Status NvoFederation::Contribute(const std::string& survey_name,
                                 const std::string& votable_xml) {
  if (survey_name.empty()) {
    return Status::InvalidArgument("survey name required");
  }
  DFLOW_ASSIGN_OR_RETURN(std::vector<Candidate> candidates,
                         VoTableToCandidates(votable_xml));
  auto& existing = contributions_[survey_name];
  existing.insert(existing.end(), candidates.begin(), candidates.end());
  return Status::OK();
}

std::vector<NvoFederation::FederatedCandidate> NvoFederation::SpanningQuery(
    double min_snr) const {
  std::vector<FederatedCandidate> out;
  for (const auto& [survey, candidates] : contributions_) {
    for (const Candidate& candidate : candidates) {
      if (!candidate.rfi_flag && candidate.snr >= min_snr) {
        out.push_back(FederatedCandidate{survey, candidate});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FederatedCandidate& a, const FederatedCandidate& b) {
              return a.candidate.snr > b.candidate.snr;
            });
  return out;
}

std::vector<NvoFederation::CrossMatch> NvoFederation::CrossMatches(
    double freq_tolerance, double dm_tolerance) const {
  std::vector<CrossMatch> out;
  std::vector<FederatedCandidate> all = SpanningQuery(0.0);
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i + 1; j < all.size(); ++j) {
      if (all[i].survey == all[j].survey) {
        continue;
      }
      const Candidate& a = all[i].candidate;
      const Candidate& b = all[j].candidate;
      if (a.freq_hz <= 0.0) {
        continue;
      }
      if (std::fabs(a.freq_hz - b.freq_hz) / a.freq_hz <= freq_tolerance &&
          std::fabs(a.dm - b.dm) <= dm_tolerance) {
        out.push_back(CrossMatch{all[i], all[j]});
      }
    }
  }
  return out;
}

std::vector<std::string> NvoFederation::Surveys() const {
  std::vector<std::string> out;
  out.reserve(contributions_.size());
  for (const auto& [survey, candidates] : contributions_) {
    out.push_back(survey);
  }
  return out;
}

int64_t NvoFederation::NumCandidates() const {
  int64_t total = 0;
  for (const auto& [survey, candidates] : contributions_) {
    total += static_cast<int64_t>(candidates.size());
  }
  return total;
}

std::string NvoFederation::ExportVoTable() const {
  std::vector<Candidate> all;
  for (const auto& [survey, candidates] : contributions_) {
    all.insert(all.end(), candidates.begin(), candidates.end());
  }
  return CandidatesToVoTable(all, "nvo-federation");
}

}  // namespace dflow::arecibo
