#ifndef DFLOW_ARECIBO_CANDIDATE_SERVICE_H_
#define DFLOW_ARECIBO_CANDIDATE_SERVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "arecibo/search.h"
#include "core/web_service.h"
#include "db/database.h"

namespace dflow::arecibo {

/// The Web-based dissemination layer over the Arecibo candidate database
/// (§2.2: "The database is accessed through a Web-based server and will
/// provide the tools for meta-analyses"). Owns a `candidates` table in the
/// provided database and serves:
///
///   top      ?limit=N&include_rfi=0|1   strongest candidates (TSV)
///   count    ?rfi=0|1                   candidate counts
///   votable  ?pointing=N                NVO export of one pointing (XML)
///   pointings                           distinct pointings (TSV)
class CandidateService : public core::WebService {
 public:
  /// Creates the candidates table in `db` if absent (borrowed pointer).
  static Result<std::unique_ptr<CandidateService>> Create(db::Database* db);

  /// Loads a batch of candidates (e.g. one pointing's meta-analysis
  /// output) into the table.
  Status Load(const std::vector<Candidate>& candidates);

  Result<core::ServiceResponse> Handle(
      const core::ServiceRequest& request) override;
  std::vector<std::string> Endpoints() const override;
  const std::string& name() const override { return name_; }

 private:
  explicit CandidateService(db::Database* db) : db_(db) {}

  Result<std::vector<Candidate>> QueryCandidates(const std::string& where,
                                                 int64_t limit) const;

  std::string name_ = "arecibo-candidates";
  db::Database* db_;
};

}  // namespace dflow::arecibo

#endif  // DFLOW_ARECIBO_CANDIDATE_SERVICE_H_
