#include "arecibo/fft.h"

#include <cmath>
#include <numbers>

namespace dflow::arecibo {

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

Status Fft(std::vector<std::complex<double>>& data, bool inverse) {
  const size_t n = data.size();
  if (n == 0 || (n & (n - 1)) != 0) {
    return Status::InvalidArgument("FFT size must be a power of two");
  }
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) {
      j ^= bit;
    }
    j ^= bit;
    if (i < j) {
      std::swap(data[i], data[j]);
    }
  }
  // Butterflies.
  for (size_t len = 2; len <= n; len <<= 1) {
    double angle = 2.0 * std::numbers::pi / static_cast<double>(len) *
                   (inverse ? 1.0 : -1.0);
    std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t k = 0; k < len / 2; ++k) {
        std::complex<double> u = data[i + k];
        std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : data) {
      x /= static_cast<double>(n);
    }
  }
  return Status::OK();
}

std::vector<double> PowerSpectrum(const std::vector<double>& series) {
  size_t n = NextPowerOfTwo(std::max<size_t>(series.size(), 2));
  std::vector<std::complex<double>> buffer(n);
  for (size_t i = 0; i < series.size(); ++i) {
    buffer[i] = std::complex<double>(series[i], 0.0);
  }
  Status s = Fft(buffer);
  (void)s;  // Size is a power of two by construction.
  std::vector<double> power(n / 2);
  power[0] = 0.0;  // Suppress DC.
  for (size_t k = 1; k < n / 2; ++k) {
    power[k] = std::norm(buffer[k]);
  }
  return power;
}

}  // namespace dflow::arecibo
