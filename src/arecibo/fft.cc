#include "arecibo/fft.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <mutex>
#include <numbers>

#include "simd/simd.h"
#include "util/logging.h"

namespace dflow::arecibo {

const std::vector<std::complex<double>>& FftTwiddleTable(size_t n) {
  DFLOW_CHECK(n >= 1 && (n & (n - 1)) == 0)
      << "FftTwiddleTable size must be a power of two, got " << n;
  // One slot per power of two; entries are never evicted (the survey
  // touches a handful of distinct sizes). Steady state is one acquire
  // load; the mutex only serializes first-time construction per size.
  using Table = std::vector<std::complex<double>>;
  static std::array<std::atomic<const Table*>, 64> slots{};
  std::atomic<const Table*>& slot =
      slots[static_cast<size_t>(std::countr_zero(n))];
  const Table* table = slot.load(std::memory_order_acquire);
  if (table != nullptr) {
    return *table;
  }
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  table = slot.load(std::memory_order_relaxed);
  if (table == nullptr) {
    auto* fresh = new Table(n / 2);
    for (size_t j = 0; j < n / 2; ++j) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(j) /
                           static_cast<double>(n);
      (*fresh)[j] = std::complex<double>(std::cos(angle), std::sin(angle));
    }
    slot.store(fresh, std::memory_order_release);
    table = fresh;
  }
  return *table;
}

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

Status Fft(std::vector<std::complex<double>>& data, bool inverse) {
  const size_t n = data.size();
  if (n == 0 || (n & (n - 1)) != 0) {
    return Status::InvalidArgument("FFT size must be a power of two");
  }
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) {
      j ^= bit;
    }
    j ^= bit;
    if (i < j) {
      std::swap(data[i], data[j]);
    }
  }
  // Butterflies with cached twiddles (conjugated on the fly for the
  // inverse), dispatched through the SIMD kernel layer. The kernel table
  // is resolved once per transform, and the twiddle lookup is a single
  // acquire load in the steady state — nothing is re-derived per stage.
  const std::vector<std::complex<double>>& twiddles = FftTwiddleTable(n);
  const simd::KernelTable& kernels = simd::Kernels();
  for (size_t len = 2; len <= n; len <<= 1) {
    kernels.fft_stage(data.data(), n, len, twiddles.data(), n / len, inverse);
  }
  if (inverse) {
    kernels.div_f64(reinterpret_cast<double*>(data.data()),
                    static_cast<int64_t>(2 * n), static_cast<double>(n));
  }
  return Status::OK();
}

std::vector<std::complex<double>>& FftScratch::Complex(size_t n) {
  const std::complex<double>* before = buffer_.data();
  const size_t capacity_before = buffer_.capacity();
  buffer_.assign(n, std::complex<double>(0.0, 0.0));
  if (buffer_.capacity() != capacity_before || buffer_.data() != before) {
    ++allocations_;
  }
  return buffer_;
}

void PowerSpectrum(const std::vector<double>& series, FftScratch* scratch,
                   std::vector<double>* power) {
  const size_t n = NextPowerOfTwo(std::max<size_t>(series.size(), 2));
  std::vector<std::complex<double>>& buffer = scratch->Complex(n);
  for (size_t i = 0; i < series.size(); ++i) {
    buffer[i] = std::complex<double>(series[i], 0.0);
  }
  Status s = Fft(buffer);
  (void)s;  // Size is a power of two by construction.
  power->assign(n / 2, 0.0);
  // power[0] stays 0: suppress DC.
  for (size_t k = 1; k < n / 2; ++k) {
    (*power)[k] = std::norm(buffer[k]);
  }
}

std::vector<double> PowerSpectrum(const std::vector<double>& series) {
  FftScratch scratch;
  std::vector<double> power;
  PowerSpectrum(series, &scratch, &power);
  return power;
}

Status PowerSpectrumPair(const std::vector<double>& a,
                         const std::vector<double>& b, FftScratch* scratch,
                         std::vector<double>* power_a,
                         std::vector<double>* power_b) {
  const size_t n = NextPowerOfTwo(std::max<size_t>(a.size(), 2));
  if (NextPowerOfTwo(std::max<size_t>(b.size(), 2)) != n) {
    return Status::InvalidArgument(
        "PowerSpectrumPair requires both series to pad to the same power "
        "of two");
  }
  std::vector<std::complex<double>>& buffer = scratch->Complex(n);
  const size_t shared = std::min(a.size(), b.size());
  for (size_t i = 0; i < shared; ++i) {
    buffer[i] = std::complex<double>(a[i], b[i]);
  }
  for (size_t i = shared; i < a.size(); ++i) {
    buffer[i] = std::complex<double>(a[i], 0.0);
  }
  for (size_t i = shared; i < b.size(); ++i) {
    buffer[i] = std::complex<double>(0.0, b[i]);
  }
  Status s = Fft(buffer);
  (void)s;  // Size is a power of two by construction.
  power_a->assign(n / 2, 0.0);
  power_b->assign(n / 2, 0.0);
  // X_k = A_k + i*B_k with A, B conjugate-symmetric:
  //   A_k = (X_k + conj(X_{n-k})) / 2
  //   B_k = (X_k - conj(X_{n-k})) / (2i)
  // DC bins stay 0 (suppressed), matching the single-series path.
  for (size_t k = 1; k < n / 2; ++k) {
    const std::complex<double> x = buffer[k];
    const std::complex<double> y = std::conj(buffer[n - k]);
    const std::complex<double> ak = 0.5 * (x + y);
    const std::complex<double> bk =
        std::complex<double>(0.0, -0.5) * (x - y);
    (*power_a)[k] = std::norm(ak);
    (*power_b)[k] = std::norm(bk);
  }
  return Status::OK();
}

}  // namespace dflow::arecibo
