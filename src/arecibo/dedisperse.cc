#include "arecibo/dedisperse.h"

#include <algorithm>
#include <cmath>

#include "par/par.h"
#include "simd/simd.h"
#include "util/logging.h"

namespace dflow::arecibo {

std::vector<double> MakeDmTrials(double dm_max, int num_trials) {
  DFLOW_CHECK(num_trials > 0);
  std::vector<double> trials(static_cast<size_t>(num_trials));
  for (int i = 0; i < num_trials; ++i) {
    trials[static_cast<size_t>(i)] =
        dm_max * static_cast<double>(i) / std::max(1, num_trials - 1);
  }
  return trials;
}

std::vector<int64_t> DelayShiftTable(const DynamicSpectrum& spectrum,
                                     double dm) {
  std::vector<int64_t> shifts(static_cast<size_t>(spectrum.num_channels));
  const double ref_delay = DispersionDelaySec(dm, spectrum.freq_hi_mhz);
  for (int channel = 0; channel < spectrum.num_channels; ++channel) {
    const double delay =
        DispersionDelaySec(dm, spectrum.ChannelFreqMhz(channel)) - ref_delay;
    shifts[static_cast<size_t>(channel)] =
        static_cast<int64_t>(std::lround(delay / spectrum.sample_time_sec));
  }
  return shifts;
}

Dedisperser::Dedisperser(std::vector<double> dm_trials)
    : dm_trials_(std::move(dm_trials)) {
  DFLOW_CHECK(!dm_trials_.empty());
}

TimeSeries Dedisperser::Dedisperse(const DynamicSpectrum& spectrum,
                                   double dm) const {
  TimeSeries series;
  series.dm = dm;
  series.sample_time_sec = spectrum.sample_time_sec;
  series.samples.assign(static_cast<size_t>(spectrum.num_samples), 0.0);
  // Per-DM delay table hoisted out of the channel/sample loops: one
  // DispersionDelaySec + lround per channel instead of per-(channel,
  // sample) bounds arithmetic in the hot loop.
  const std::vector<int64_t> shifts = DelayShiftTable(spectrum, dm);
  double* out = series.samples.data();
  // The shift-sum and normalization run through the SIMD kernel layer:
  // float->double widening is exact and each output element sees one add
  // per channel in channel-major order, so scalar and vector dispatch
  // produce byte-identical series.
  const simd::KernelTable& kernels = simd::Kernels();
  for (int channel = 0; channel < spectrum.num_channels; ++channel) {
    const int64_t shift = shifts[static_cast<size_t>(channel)];
    // src = s + shift must stay inside [0, num_samples): clamp the loop
    // bounds once so the inner loop carries no branch. Skipped samples
    // contribute nothing, exactly like the old in-loop range check — the
    // accumulation order (channel-major, then sample) is unchanged, so
    // outputs are bit-identical to the pre-table code.
    const int64_t lo = std::max<int64_t>(0, -shift);
    const int64_t hi =
        std::min<int64_t>(spectrum.num_samples, spectrum.num_samples - shift);
    const float* row =
        spectrum.power.data() +
        static_cast<size_t>(channel) * static_cast<size_t>(spectrum.num_samples);
    if (hi > lo) {
      kernels.add_f32_to_f64(row + lo + shift, out + lo, hi - lo);
    }
  }
  // Normalize to unit noise: the sum of C unit-variance channels has
  // sigma = sqrt(C).
  const double norm = 1.0 / std::sqrt(static_cast<double>(
                                spectrum.num_channels));
  kernels.scale_f64(out, static_cast<int64_t>(series.samples.size()), norm);
  return series;
}

std::vector<TimeSeries> Dedisperser::DedisperseAll(
    const DynamicSpectrum& spectrum) const {
  // Trials are independent and each lands in its own pre-sized slot, so
  // the output is byte-identical at any thread count.
  par::Options options;
  options.label = "arecibo.dedisperse_all";
  return par::ParallelMap<TimeSeries>(
      static_cast<int64_t>(dm_trials_.size()),
      [this, &spectrum](int64_t i) {
        return Dedisperse(spectrum, dm_trials_[static_cast<size_t>(i)]);
      },
      options);
}

int64_t Dedisperser::OutputBytes(const DynamicSpectrum& spectrum) const {
  return static_cast<int64_t>(dm_trials_.size()) * spectrum.num_samples *
         static_cast<int64_t>(sizeof(double));
}

}  // namespace dflow::arecibo
