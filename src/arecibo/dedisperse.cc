#include "arecibo/dedisperse.h"

#include <cmath>

#include "util/logging.h"

namespace dflow::arecibo {

std::vector<double> MakeDmTrials(double dm_max, int num_trials) {
  DFLOW_CHECK(num_trials > 0);
  std::vector<double> trials(static_cast<size_t>(num_trials));
  for (int i = 0; i < num_trials; ++i) {
    trials[static_cast<size_t>(i)] =
        dm_max * static_cast<double>(i) / std::max(1, num_trials - 1);
  }
  return trials;
}

Dedisperser::Dedisperser(std::vector<double> dm_trials)
    : dm_trials_(std::move(dm_trials)) {
  DFLOW_CHECK(!dm_trials_.empty());
}

TimeSeries Dedisperser::Dedisperse(const DynamicSpectrum& spectrum,
                                   double dm) const {
  TimeSeries series;
  series.dm = dm;
  series.sample_time_sec = spectrum.sample_time_sec;
  series.samples.assign(static_cast<size_t>(spectrum.num_samples), 0.0);
  const double ref_delay = DispersionDelaySec(dm, spectrum.freq_hi_mhz);
  for (int channel = 0; channel < spectrum.num_channels; ++channel) {
    const double delay =
        DispersionDelaySec(dm, spectrum.ChannelFreqMhz(channel)) - ref_delay;
    const int64_t shift =
        static_cast<int64_t>(std::lround(delay / spectrum.sample_time_sec));
    for (int64_t s = 0; s < spectrum.num_samples; ++s) {
      const int64_t src = s + shift;
      if (src >= 0 && src < spectrum.num_samples) {
        series.samples[static_cast<size_t>(s)] += spectrum.At(channel, src);
      }
    }
  }
  // Normalize to unit noise: the sum of C unit-variance channels has
  // sigma = sqrt(C).
  const double norm = 1.0 / std::sqrt(static_cast<double>(
                                spectrum.num_channels));
  for (double& x : series.samples) {
    x *= norm;
  }
  return series;
}

std::vector<TimeSeries> Dedisperser::DedisperseAll(
    const DynamicSpectrum& spectrum) const {
  std::vector<TimeSeries> out;
  out.reserve(dm_trials_.size());
  for (double dm : dm_trials_) {
    out.push_back(Dedisperse(spectrum, dm));
  }
  return out;
}

int64_t Dedisperser::OutputBytes(const DynamicSpectrum& spectrum) const {
  return static_cast<int64_t>(dm_trials_.size()) * spectrum.num_samples *
         static_cast<int64_t>(sizeof(double));
}

}  // namespace dflow::arecibo
