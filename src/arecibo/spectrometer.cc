#include "arecibo/spectrometer.h"

#include <cmath>

#include "util/logging.h"

namespace dflow::arecibo {

double DispersionDelaySec(double dm, double freq_mhz) {
  return 4.148808e3 * dm / (freq_mhz * freq_mhz);
}

SpectrometerModel::SpectrometerModel(int num_channels, int64_t num_samples,
                                     double sample_time_sec, uint64_t seed)
    : num_channels_(num_channels), num_samples_(num_samples),
      sample_time_(sample_time_sec), rng_(seed) {
  DFLOW_CHECK(num_channels_ > 0);
  DFLOW_CHECK(num_samples_ > 0);
  DFLOW_CHECK(sample_time_ > 0.0);
}

DynamicSpectrum SpectrometerModel::Generate(
    const std::vector<PulsarParams>& pulsars,
    const std::vector<RfiParams>& rfi,
    const std::vector<TransientParams>& transients) {
  DynamicSpectrum spec;
  spec.num_channels = num_channels_;
  spec.num_samples = num_samples_;
  spec.sample_time_sec = sample_time_;
  spec.power.resize(static_cast<size_t>(num_channels_) * num_samples_);

  // Radiometer noise: independent Gaussian per (channel, sample).
  for (float& x : spec.power) {
    x = static_cast<float>(rng_.Normal(0.0, 1.0));
  }

  const double block_sec = static_cast<double>(num_samples_) * sample_time_;

  // Dispersed periodic pulses. The highest frequency arrives first; delays
  // are measured relative to the top of the band so every pulse lands in
  // the block.
  for (const PulsarParams& pulsar : pulsars) {
    DFLOW_CHECK(pulsar.period_sec > 0.0);
    const double width_sec = pulsar.duty_cycle * pulsar.period_sec;
    const int width_samples = std::max<int>(
        1, static_cast<int>(std::lround(width_sec / sample_time_)));
    const double ref_delay = DispersionDelaySec(pulsar.dm, spec.freq_hi_mhz);
    // accel_bins: linear drift of the spin frequency over the block,
    // modelled as a quadratic phase drift (constant line-of-sight
    // acceleration in a binary).
    const double f0 = 1.0 / pulsar.period_sec;
    const double fdot = pulsar.accel_bins / (block_sec * block_sec);
    for (int channel = 0; channel < num_channels_; ++channel) {
      const double chan_delay =
          DispersionDelaySec(pulsar.dm, spec.ChannelFreqMhz(channel)) -
          ref_delay;
      // Emit pulses at phase = integer: t_k solves
      // f0*t + 0.5*fdot*t^2 + phase0 = k.
      double t = (pulsar.phase > 0 ? (1.0 - pulsar.phase) : 0.0) /
                 f0;  // First pulse epoch, pre-drift.
      while (t < block_sec) {
        const double arrival = t + chan_delay;
        const int64_t s0 =
            static_cast<int64_t>(std::lround(arrival / sample_time_));
        for (int w = 0; w < width_samples; ++w) {
          int64_t s = s0 + w;
          if (s >= 0 && s < num_samples_) {
            spec.At(channel, s) += static_cast<float>(pulsar.pulse_amplitude);
          }
        }
        // Next pulse epoch under frequency drift: instantaneous period
        // shrinks/grows as f = f0 + fdot * t.
        const double f_inst = f0 + fdot * t;
        t += 1.0 / std::max(f_inst, 1e-9);
      }
    }
  }

  // One-off dispersed transients: a single pulse sweeping down the band.
  for (const TransientParams& transient : transients) {
    const int width_samples = std::max<int>(
        1, static_cast<int>(std::lround(transient.width_sec / sample_time_)));
    const double ref_delay =
        DispersionDelaySec(transient.dm, spec.freq_hi_mhz);
    for (int channel = 0; channel < num_channels_; ++channel) {
      const double arrival =
          transient.time_sec +
          DispersionDelaySec(transient.dm, spec.ChannelFreqMhz(channel)) -
          ref_delay;
      const int64_t s0 =
          static_cast<int64_t>(std::lround(arrival / sample_time_));
      for (int w = 0; w < width_samples; ++w) {
        int64_t s = s0 + w;
        if (s >= 0 && s < num_samples_) {
          spec.At(channel, s) += static_cast<float>(transient.amplitude);
        }
      }
    }
  }

  // Undispersed narrowband RFI: identical arrival time in every channel of
  // its span (DM = 0), deterministic phase (shared across beams).
  for (const RfiParams& interference : rfi) {
    const int lo = std::max(0, interference.channel_lo);
    const int hi = std::min(num_channels_ - 1, interference.channel_hi);
    double t = 0.0;
    while (t < block_sec) {
      const int64_t s =
          static_cast<int64_t>(std::lround(t / sample_time_));
      if (s >= 0 && s < num_samples_) {
        for (int channel = lo; channel <= hi; ++channel) {
          spec.At(channel, s) += static_cast<float>(interference.amplitude);
        }
      }
      t += interference.period_sec;
    }
  }

  return spec;
}

}  // namespace dflow::arecibo
