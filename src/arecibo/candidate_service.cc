#include "arecibo/candidate_service.h"

#include <sstream>

#include "arecibo/votable.h"

namespace dflow::arecibo {

Result<std::unique_ptr<CandidateService>> CandidateService::Create(
    db::Database* db) {
  if (db == nullptr) {
    return Status::InvalidArgument("null database");
  }
  if (db->catalog().Find("candidates") == nullptr) {
    DFLOW_RETURN_IF_ERROR(db->CreateTable(
        "candidates", db::Schema({{"pointing", db::Type::kInt64, false},
                                  {"beam", db::Type::kInt64, false},
                                  {"freq", db::Type::kDouble, false},
                                  {"dm", db::Type::kDouble, false},
                                  {"snr", db::Type::kDouble, false},
                                  {"rfi", db::Type::kBool, false}})));
    DFLOW_RETURN_IF_ERROR(
        db->CreateIndex("candidates_by_pointing", "candidates", "pointing"));
  }
  return std::unique_ptr<CandidateService>(new CandidateService(db));
}

Status CandidateService::Load(const std::vector<Candidate>& candidates) {
  std::vector<db::Row> rows;
  rows.reserve(candidates.size());
  for (const Candidate& candidate : candidates) {
    rows.push_back(db::Row{db::Value::Int(candidate.pointing),
                           db::Value::Int(candidate.beam),
                           db::Value::Double(candidate.freq_hz),
                           db::Value::Double(candidate.dm),
                           db::Value::Double(candidate.snr),
                           db::Value::Bool(candidate.rfi_flag)});
  }
  return db_->InsertMany("candidates", std::move(rows));
}

Result<std::vector<Candidate>> CandidateService::QueryCandidates(
    const std::string& where, int64_t limit) const {
  std::string sql = "SELECT pointing, beam, freq, dm, snr, rfi FROM "
                    "candidates";
  if (!where.empty()) {
    sql += " WHERE " + where;
  }
  sql += " ORDER BY snr DESC LIMIT " + std::to_string(limit);
  DFLOW_ASSIGN_OR_RETURN(db::QueryResult result, db_->Execute(sql));
  std::vector<Candidate> out;
  out.reserve(result.rows.size());
  for (const db::Row& row : result.rows) {
    Candidate candidate;
    candidate.pointing = static_cast<int>(row[0].AsInt());
    candidate.beam = static_cast<int>(row[1].AsInt());
    candidate.freq_hz = row[2].AsDouble();
    candidate.period_sec = candidate.freq_hz > 0 ? 1.0 / candidate.freq_hz
                                                 : 0.0;
    candidate.dm = row[3].AsDouble();
    candidate.snr = row[4].AsDouble();
    candidate.rfi_flag = row[5].AsBool();
    out.push_back(candidate);
  }
  return out;
}

Result<core::ServiceResponse> CandidateService::Handle(
    const core::ServiceRequest& request) {
  core::ServiceResponse response;
  if (request.path == "top") {
    DFLOW_ASSIGN_OR_RETURN(int64_t limit, request.IntParam("limit", 10));
    bool include_rfi = request.Param("include_rfi", "0") == "1";
    DFLOW_ASSIGN_OR_RETURN(
        std::vector<Candidate> candidates,
        QueryCandidates(include_rfi ? "" : "rfi = FALSE", limit));
    std::ostringstream os;
    os << "pointing\tbeam\tfreq_hz\tdm\tsnr\trfi\n";
    for (const Candidate& candidate : candidates) {
      os << candidate.pointing << "\t" << candidate.beam << "\t"
         << candidate.freq_hz << "\t" << candidate.dm << "\t"
         << candidate.snr << "\t" << (candidate.rfi_flag ? 1 : 0) << "\n";
    }
    response.content_type = "text/tab-separated-values";
    response.body = os.str();
    return response;
  }
  if (request.path == "count") {
    DFLOW_ASSIGN_OR_RETURN(
        db::QueryResult result,
        db_->Execute("SELECT rfi, COUNT(*) FROM candidates GROUP BY rfi"));
    std::ostringstream os;
    for (const db::Row& row : result.rows) {
      os << (row[0].AsBool() ? "rfi" : "astrophysical") << "\t"
         << row[1].AsInt() << "\n";
    }
    response.body = os.str();
    return response;
  }
  if (request.path == "votable") {
    DFLOW_ASSIGN_OR_RETURN(int64_t pointing, request.IntParam("pointing", -1));
    std::string where = "rfi = FALSE";
    if (pointing >= 0) {
      where += " AND pointing = " + std::to_string(pointing);
    }
    DFLOW_ASSIGN_OR_RETURN(std::vector<Candidate> candidates,
                           QueryCandidates(where, 10000));
    response.content_type = "text/xml";
    response.body = CandidatesToVoTable(candidates, "PALFA");
    // NVO exports of a processed pointing change only when a pointing is
    // re-reduced; give the dissemination cache an hour.
    response.cache_max_age_sec = 3600.0;
    return response;
  }
  if (request.path == "pointings") {
    DFLOW_ASSIGN_OR_RETURN(
        db::QueryResult result,
        db_->Execute("SELECT DISTINCT pointing FROM candidates ORDER BY "
                     "pointing"));
    std::ostringstream os;
    for (const db::Row& row : result.rows) {
      os << row[0].AsInt() << "\n";
    }
    response.body = os.str();
    return response;
  }
  return Status::NotFound("no endpoint '" + request.path + "'");
}

std::vector<std::string> CandidateService::Endpoints() const {
  return {"top", "count", "votable", "pointings"};
}

}  // namespace dflow::arecibo
