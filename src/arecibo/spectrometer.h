#ifndef DFLOW_ARECIBO_SPECTROMETER_H_
#define DFLOW_ARECIBO_SPECTROMETER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/rng.h"

namespace dflow::arecibo {

/// Cold-plasma dispersion delay in seconds between frequency `freq_mhz`
/// and infinite frequency, for dispersion measure `dm` (pc cm^-3):
///   t = 4.148808e3 * DM / f_MHz^2.
double DispersionDelaySec(double dm, double freq_mhz);

/// A block of channelized power samples from one beam of the receiver:
/// `power[channel * num_samples + sample]`, channel 0 = lowest frequency.
struct DynamicSpectrum {
  int num_channels = 0;
  int64_t num_samples = 0;
  double freq_lo_mhz = 1375.0;   // ALFA band around 1.4 GHz.
  double freq_hi_mhz = 1425.0;
  double sample_time_sec = 6.4e-5;
  std::vector<float> power;

  double ChannelFreqMhz(int channel) const {
    double step = (freq_hi_mhz - freq_lo_mhz) / num_channels;
    return freq_lo_mhz + (channel + 0.5) * step;
  }
  float& At(int channel, int64_t sample) {
    return power[static_cast<size_t>(channel) * num_samples + sample];
  }
  float At(int channel, int64_t sample) const {
    return power[static_cast<size_t>(channel) * num_samples + sample];
  }
  int64_t SizeBytes() const {
    return static_cast<int64_t>(power.size() * sizeof(float));
  }
};

/// A pulsar to inject into synthetic data.
struct PulsarParams {
  double period_sec = 0.5;
  double dm = 60.0;                 // pc cm^-3.
  double pulse_amplitude = 3.0;     // In units of the noise sigma.
  double duty_cycle = 0.05;         // Pulse width / period.
  double phase = 0.0;               // Initial phase in [0, 1).
  double accel_bins = 0.0;          // Fourier-bin drift over the block
                                    // (binary motion); 0 = isolated.
};

/// A one-off dispersed transient (giant pulse, RRAT burst, or one of the
/// paper's hoped-for "entirely new classes of signals"): a single pulse at
/// `time_sec` with the usual cold-plasma dispersion sweep across the band.
struct TransientParams {
  double time_sec = 1.0;
  double dm = 100.0;
  double amplitude = 5.0;        // In units of the noise sigma.
  double width_sec = 0.003;
};

/// Terrestrial interference to inject. RFI is what the meta-analysis must
/// reject: unlike a pulsar it is undispersed (DM ~ 0) and appears in all
/// beams at once.
struct RfiParams {
  double period_sec = 1.0 / 60.0;   // Power-line-style periodic RFI.
  double amplitude = 2.0;
  int channel_lo = 0;               // Narrowband span.
  int channel_hi = 8;
};

/// Generates synthetic ALFA-like dynamic spectra: radiometer noise plus
/// dispersed periodic pulses for each pulsar plus undispersed RFI. The
/// substitute for the telescope itself: everything downstream (unpacking,
/// dedispersion, Fourier search, RFI excision) runs the same code path it
/// would on real data.
class SpectrometerModel {
 public:
  SpectrometerModel(int num_channels, int64_t num_samples,
                    double sample_time_sec, uint64_t seed);

  /// One beam's spectrum with the given sources. RFI, if present, is
  /// deterministic in phase so that multiple beams see the *same*
  /// interference (generate each beam with a different seed but the same
  /// rfi list).
  DynamicSpectrum Generate(const std::vector<PulsarParams>& pulsars,
                           const std::vector<RfiParams>& rfi,
                           const std::vector<TransientParams>& transients = {});

 private:
  int num_channels_;
  int64_t num_samples_;
  double sample_time_;
  Rng rng_;
};

}  // namespace dflow::arecibo

#endif  // DFLOW_ARECIBO_SPECTROMETER_H_
