#ifndef DFLOW_ARECIBO_SURVEY_H_
#define DFLOW_ARECIBO_SURVEY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "arecibo/dedisperse.h"
#include "arecibo/search.h"
#include "arecibo/sifter.h"
#include "arecibo/single_pulse.h"
#include "arecibo/spectrometer.h"
#include "util/units.h"

namespace dflow::arecibo {

/// Survey parameters. The `paper` constants carry the publication's true
/// volumes for byte accounting; the `payload` constants size the synthetic
/// data we actually crunch (the scale-factor substitution documented in
/// DESIGN.md).
struct SurveyConfig {
  // --- Paper-scale accounting (§2.1) ---
  int num_beams = 7;                       // ALFA feed array.
  int pointings_per_block = 400;           // "400 telescope pointings
                                           //  obtained in one week".
  int64_t raw_bytes_per_pointing = 35 * kGB;  // 400 x 35 GB = 14 TB.
  double session_hours = 3.0;              // Observing session length.
  double block_telescope_hours = 35.0;     // Hours per 400-pointing block.
  double survey_years = 5.0;
  int64_t survey_raw_bytes = kPB;          // "about a Petabyte of raw data".
  double product_fraction = 0.02;          // Products are 1-3% of raw.
  double candidate_fraction = 0.001;       // Refined candidates ~0.1%.

  // --- Payload scale (what the laptop actually processes) ---
  int num_channels = 96;
  int64_t num_samples = 1 << 13;
  double sample_time_sec = 6.4e-5;
  int num_dm_trials = 24;
  double dm_max = 300.0;

  SearchConfig search;
  SifterConfig sifter;
  MetaAnalysisConfig meta;
  /// Run the single-pulse (transient) search alongside the periodicity
  /// search (§2.1's "investigation of the time series for transient
  /// signals").
  bool search_transients = false;
  SinglePulseConfig single_pulse;
  uint64_t seed = 20060403;
};

/// Outcome of the full search on one pointing.
struct PointingResult {
  int pointing = 0;
  /// Every candidate after sifting + meta-analysis, RFI flags set.
  std::vector<Candidate> candidates;
  /// Candidates surviving RFI excision.
  std::vector<Candidate> detections;
  /// Transient (single-pulse) events surviving the cross-beam coincidence
  /// cut, strongest first; populated when config.search_transients is set.
  std::vector<TransientEvent> transients;
  int64_t raw_payload_bytes = 0;
  int64_t dedispersed_payload_bytes = 0;
};

/// A pulsar injected into one beam of a pointing (beam -1 = absent; real
/// pulsars illuminate a single beam, which is what lets the meta-analysis
/// separate them from RFI).
struct InjectedPulsar {
  int beam = 0;
  PulsarParams params;
};

/// A transient burst injected into one beam.
struct InjectedTransient {
  int beam = 0;
  TransientParams params;
};

/// The end-to-end per-pointing search: synthesize all beams, dedisperse
/// across the DM trial set, run the (optionally accelerated) periodicity
/// search per trial, sift, then meta-analyze across beams.
class SurveyPipeline {
 public:
  explicit SurveyPipeline(SurveyConfig config);

  PointingResult ProcessPointing(
      int pointing_id, const std::vector<InjectedPulsar>& pulsars,
      const std::vector<RfiParams>& rfi,
      const std::vector<double>& accel_trials = {},
      const std::vector<InjectedTransient>& transients = {});

  const SurveyConfig& config() const { return config_; }

  // --- Paper-scale arithmetic used by the storage/throughput benches ---
  /// 400 pointings x 35 GB = 14 TB.
  int64_t RawBytesPerBlock() const;
  /// Dedispersed series storage for one block ("about equal" to raw).
  int64_t DedispersedBytesPerBlock() const;
  /// Raw + dedispersed held simultaneously (the ">= 30 TB instantaneously"
  /// claim).
  int64_t PeakBlockStorageBytes() const;
  /// Mean raw data rate over the survey (bytes/sec of wall time).
  double MeanRawRate() const;

 private:
  SurveyConfig config_;
};

}  // namespace dflow::arecibo

#endif  // DFLOW_ARECIBO_SURVEY_H_
