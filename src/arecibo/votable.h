#ifndef DFLOW_ARECIBO_VOTABLE_H_
#define DFLOW_ARECIBO_VOTABLE_H_

#include <string>
#include <vector>

#include "arecibo/search.h"
#include "util/result.h"

namespace dflow::arecibo {

/// Serializes a candidate list to the VOTable-style XML that the National
/// Virtual Observatory linkage requires (§2.2: "Connecting the CTC
/// database system with the NVO requires particular XML-based protocols").
/// The schema is a faithful small subset: RESOURCE/TABLE with FIELD
/// declarations and TABLEDATA rows.
std::string CandidatesToVoTable(const std::vector<Candidate>& candidates,
                                const std::string& survey_name);

/// Parses the subset produced by CandidatesToVoTable back into candidates
/// (round-trip used for federation tests).
Result<std::vector<Candidate>> VoTableToCandidates(const std::string& xml);

}  // namespace dflow::arecibo

#endif  // DFLOW_ARECIBO_VOTABLE_H_
