#include "arecibo/survey.h"

#include <algorithm>
#include <cmath>

namespace dflow::arecibo {

SurveyPipeline::SurveyPipeline(SurveyConfig config)
    : config_(std::move(config)) {}

PointingResult SurveyPipeline::ProcessPointing(
    int pointing_id, const std::vector<InjectedPulsar>& pulsars,
    const std::vector<RfiParams>& rfi,
    const std::vector<double>& accel_trials,
    const std::vector<InjectedTransient>& transients) {
  PointingResult result;
  result.pointing = pointing_id;

  Dedisperser dedisperser(
      MakeDmTrials(config_.dm_max, config_.num_dm_trials));
  PeriodicitySearch periodicity(config_.search);
  AccelerationSearch accelerated(config_.search, accel_trials);
  CandidateSifter sifter(config_.sifter);
  MetaAnalysis meta(config_.meta);
  SinglePulseSearch single_pulse(config_.single_pulse);

  // Per-beam transient events, for the cross-beam coincidence cut.
  std::vector<std::vector<TransientEvent>> beam_transients(
      static_cast<size_t>(config_.num_beams));

  std::vector<BeamResult> beam_results;
  for (int beam = 0; beam < config_.num_beams; ++beam) {
    // Per-beam noise seed; RFI phase is deterministic so every beam sees
    // the same interference.
    SpectrometerModel model(
        config_.num_channels, config_.num_samples, config_.sample_time_sec,
        config_.seed ^ (static_cast<uint64_t>(pointing_id) << 16) ^
            static_cast<uint64_t>(beam));
    std::vector<PulsarParams> beam_pulsars;
    for (const InjectedPulsar& injected : pulsars) {
      if (injected.beam == beam) {
        beam_pulsars.push_back(injected.params);
      }
    }
    std::vector<TransientParams> beam_bursts;
    for (const InjectedTransient& injected : transients) {
      if (injected.beam == beam) {
        beam_bursts.push_back(injected.params);
      }
    }
    DynamicSpectrum spectrum = model.Generate(beam_pulsars, rfi, beam_bursts);
    result.raw_payload_bytes += spectrum.SizeBytes();

    BeamResult beam_result;
    beam_result.beam = beam;
    for (double dm : dedisperser.dm_trials()) {
      TimeSeries series = dedisperser.Dedisperse(spectrum, dm);
      result.dedispersed_payload_bytes += series.SizeBytes();
      std::vector<Candidate> found = accel_trials.empty()
                                         ? periodicity.Search(series)
                                         : accelerated.Search(series);
      for (Candidate& candidate : found) {
        candidate.beam = beam;
        candidate.pointing = pointing_id;
        beam_result.candidates.push_back(candidate);
      }
      if (config_.search_transients) {
        for (TransientEvent& event : single_pulse.Search(series)) {
          beam_transients[static_cast<size_t>(beam)].push_back(event);
        }
      }
    }
    beam_result.candidates = sifter.Sift(std::move(beam_result.candidates));
    beam_results.push_back(std::move(beam_result));
  }

  result.candidates = meta.Analyze(beam_results);
  for (Candidate& candidate : result.candidates) {
    candidate.pointing = pointing_id;
  }
  result.detections = MetaAnalysis::Survivors(result.candidates);
  std::sort(result.detections.begin(), result.detections.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.snr > b.snr;
            });

  if (config_.search_transients) {
    // Cross-beam coincidence cut for transients: a burst arriving at the
    // same time in many beams is terrestrial (lightning, radar); a real
    // astrophysical burst illuminates one beam. Per-DM duplicates of the
    // same event are collapsed to the best-DM trigger first.
    // A trigger's apparent time shifts with the trial DM by up to the
    // dispersion sweep across the band, so the dedup/coincidence window
    // must cover that ambiguity.
    DynamicSpectrum band;  // Default ALFA band edges.
    const double sweep =
        DispersionDelaySec(config_.dm_max, band.freq_lo_mhz) -
        DispersionDelaySec(config_.dm_max, band.freq_hi_mhz);
    const double time_tol = std::max(
        config_.single_pulse.merge_distance * config_.sample_time_sec,
        sweep);
    for (int beam = 0; beam < config_.num_beams; ++beam) {
      auto& events = beam_transients[static_cast<size_t>(beam)];
      std::sort(events.begin(), events.end(),
                [](const TransientEvent& a, const TransientEvent& b) {
                  return a.snr > b.snr;
                });
      std::vector<TransientEvent> unique_events;
      for (const TransientEvent& event : events) {
        bool duplicate = false;
        for (const TransientEvent& kept : unique_events) {
          if (std::fabs(kept.time_sec - event.time_sec) <= time_tol) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) {
          unique_events.push_back(event);
        }
      }
      beam_transients[static_cast<size_t>(beam)] = std::move(unique_events);
    }
    for (int beam = 0; beam < config_.num_beams; ++beam) {
      for (const TransientEvent& event :
           beam_transients[static_cast<size_t>(beam)]) {
        int beams_seen = 0;
        for (int other = 0; other < config_.num_beams; ++other) {
          for (const TransientEvent& other_event :
               beam_transients[static_cast<size_t>(other)]) {
            if (std::fabs(other_event.time_sec - event.time_sec) <=
                time_tol) {
              ++beams_seen;
              break;
            }
          }
        }
        if (beams_seen < config_.meta.rfi_beam_threshold &&
            event.dm >= config_.meta.dm_min) {
          result.transients.push_back(event);
        }
      }
    }
    std::sort(result.transients.begin(), result.transients.end(),
              [](const TransientEvent& a, const TransientEvent& b) {
                return a.snr > b.snr;
              });
  }
  return result;
}

int64_t SurveyPipeline::RawBytesPerBlock() const {
  return static_cast<int64_t>(config_.pointings_per_block) *
         config_.raw_bytes_per_pointing;
}

int64_t SurveyPipeline::DedispersedBytesPerBlock() const {
  // Summing C channels into one series per trial DM with num_trials ~
  // 1000 at matched sample width yields roughly the raw volume again
  // (the paper: "storage about equal to that of the original raw data").
  return RawBytesPerBlock();
}

int64_t SurveyPipeline::PeakBlockStorageBytes() const {
  // Iterative processing needs raw + dedispersed resident, plus a ~14%
  // scratch margin for partial products (folded profiles, test
  // statistics) -- totalling the paper's "minimum of 30 Terabytes".
  return RawBytesPerBlock() + DedispersedBytesPerBlock() +
         RawBytesPerBlock() / 7;
}

double SurveyPipeline::MeanRawRate() const {
  return static_cast<double>(config_.survey_raw_bytes) /
         (config_.survey_years * kYear);
}

}  // namespace dflow::arecibo
