#include "arecibo/survey.h"

#include <algorithm>
#include <cmath>

#include "par/par.h"

namespace dflow::arecibo {

SurveyPipeline::SurveyPipeline(SurveyConfig config)
    : config_(std::move(config)) {}

PointingResult SurveyPipeline::ProcessPointing(
    int pointing_id, const std::vector<InjectedPulsar>& pulsars,
    const std::vector<RfiParams>& rfi,
    const std::vector<double>& accel_trials,
    const std::vector<InjectedTransient>& transients) {
  PointingResult result;
  result.pointing = pointing_id;

  Dedisperser dedisperser(
      MakeDmTrials(config_.dm_max, config_.num_dm_trials));
  PeriodicitySearch periodicity(config_.search);
  AccelerationSearch accelerated(config_.search, accel_trials);
  CandidateSifter sifter(config_.sifter);
  MetaAnalysis meta(config_.meta);
  SinglePulseSearch single_pulse(config_.single_pulse);

  // Batch across beams on the dflow::par shared pool: every beam's
  // synthesis, dedispersion sweep, FFT search, and sift is an independent
  // deterministic computation (per-beam seed, shared RFI phase), and each
  // beam writes its own pre-sized slot — so the pointing result is
  // byte-identical at any thread count. Inner parallel regions
  // (DedisperseAll, SearchBatch, harmonic summing) nest and therefore run
  // inline on the beam's worker.
  struct BeamOutput {
    BeamResult sifted;
    std::vector<TransientEvent> transients;
    int64_t raw_bytes = 0;
    int64_t dedispersed_bytes = 0;
  };
  par::Options beam_options;
  beam_options.label = "arecibo.pointing_beams";
  std::vector<BeamOutput> beam_outputs = par::ParallelMap<BeamOutput>(
      config_.num_beams,
      [&](int64_t beam64) {
        const int beam = static_cast<int>(beam64);
        BeamOutput output;
        // Per-beam noise seed; RFI phase is deterministic so every beam
        // sees the same interference.
        SpectrometerModel model(
            config_.num_channels, config_.num_samples, config_.sample_time_sec,
            config_.seed ^ (static_cast<uint64_t>(pointing_id) << 16) ^
                static_cast<uint64_t>(beam));
        std::vector<PulsarParams> beam_pulsars;
        for (const InjectedPulsar& injected : pulsars) {
          if (injected.beam == beam) {
            beam_pulsars.push_back(injected.params);
          }
        }
        std::vector<TransientParams> beam_bursts;
        for (const InjectedTransient& injected : transients) {
          if (injected.beam == beam) {
            beam_bursts.push_back(injected.params);
          }
        }
        DynamicSpectrum spectrum =
            model.Generate(beam_pulsars, rfi, beam_bursts);
        output.raw_bytes = spectrum.SizeBytes();

        output.sifted.beam = beam;
        std::vector<TimeSeries> trials = dedisperser.DedisperseAll(spectrum);
        for (const TimeSeries& series : trials) {
          output.dedispersed_bytes += series.SizeBytes();
        }
        // Periodicity search: the batch path pair-packs the per-trial FFTs
        // (two real series per complex transform); the acceleration search
        // parallelizes across its own trial set instead.
        std::vector<std::vector<Candidate>> found_per_trial;
        if (accel_trials.empty()) {
          found_per_trial = periodicity.SearchBatch(trials);
        } else {
          found_per_trial.reserve(trials.size());
          for (const TimeSeries& series : trials) {
            found_per_trial.push_back(accelerated.Search(series));
          }
        }
        for (size_t trial = 0; trial < trials.size(); ++trial) {
          for (Candidate& candidate : found_per_trial[trial]) {
            candidate.beam = beam;
            candidate.pointing = pointing_id;
            output.sifted.candidates.push_back(candidate);
          }
          if (config_.search_transients) {
            for (TransientEvent& event :
                 single_pulse.Search(trials[trial])) {
              output.transients.push_back(event);
            }
          }
        }
        output.sifted.candidates =
            sifter.Sift(std::move(output.sifted.candidates));
        return output;
      },
      beam_options);

  // Per-beam transient events, for the cross-beam coincidence cut.
  std::vector<std::vector<TransientEvent>> beam_transients(
      static_cast<size_t>(config_.num_beams));
  std::vector<BeamResult> beam_results;
  beam_results.reserve(beam_outputs.size());
  for (size_t beam = 0; beam < beam_outputs.size(); ++beam) {
    BeamOutput& output = beam_outputs[beam];
    result.raw_payload_bytes += output.raw_bytes;
    result.dedispersed_payload_bytes += output.dedispersed_bytes;
    beam_transients[beam] = std::move(output.transients);
    beam_results.push_back(std::move(output.sifted));
  }

  result.candidates = meta.Analyze(beam_results);
  for (Candidate& candidate : result.candidates) {
    candidate.pointing = pointing_id;
  }
  result.detections = MetaAnalysis::Survivors(result.candidates);
  std::sort(result.detections.begin(), result.detections.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.snr > b.snr;
            });

  if (config_.search_transients) {
    // Cross-beam coincidence cut for transients: a burst arriving at the
    // same time in many beams is terrestrial (lightning, radar); a real
    // astrophysical burst illuminates one beam. Per-DM duplicates of the
    // same event are collapsed to the best-DM trigger first.
    // A trigger's apparent time shifts with the trial DM by up to the
    // dispersion sweep across the band, so the dedup/coincidence window
    // must cover that ambiguity.
    DynamicSpectrum band;  // Default ALFA band edges.
    const double sweep =
        DispersionDelaySec(config_.dm_max, band.freq_lo_mhz) -
        DispersionDelaySec(config_.dm_max, band.freq_hi_mhz);
    const double time_tol = std::max(
        config_.single_pulse.merge_distance * config_.sample_time_sec,
        sweep);
    for (int beam = 0; beam < config_.num_beams; ++beam) {
      auto& events = beam_transients[static_cast<size_t>(beam)];
      std::sort(events.begin(), events.end(),
                [](const TransientEvent& a, const TransientEvent& b) {
                  return a.snr > b.snr;
                });
      std::vector<TransientEvent> unique_events;
      for (const TransientEvent& event : events) {
        bool duplicate = false;
        for (const TransientEvent& kept : unique_events) {
          if (std::fabs(kept.time_sec - event.time_sec) <= time_tol) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) {
          unique_events.push_back(event);
        }
      }
      beam_transients[static_cast<size_t>(beam)] = std::move(unique_events);
    }
    for (int beam = 0; beam < config_.num_beams; ++beam) {
      for (const TransientEvent& event :
           beam_transients[static_cast<size_t>(beam)]) {
        int beams_seen = 0;
        for (int other = 0; other < config_.num_beams; ++other) {
          for (const TransientEvent& other_event :
               beam_transients[static_cast<size_t>(other)]) {
            if (std::fabs(other_event.time_sec - event.time_sec) <=
                time_tol) {
              ++beams_seen;
              break;
            }
          }
        }
        if (beams_seen < config_.meta.rfi_beam_threshold &&
            event.dm >= config_.meta.dm_min) {
          result.transients.push_back(event);
        }
      }
    }
    std::sort(result.transients.begin(), result.transients.end(),
              [](const TransientEvent& a, const TransientEvent& b) {
                return a.snr > b.snr;
              });
  }
  return result;
}

int64_t SurveyPipeline::RawBytesPerBlock() const {
  return static_cast<int64_t>(config_.pointings_per_block) *
         config_.raw_bytes_per_pointing;
}

int64_t SurveyPipeline::DedispersedBytesPerBlock() const {
  // Summing C channels into one series per trial DM with num_trials ~
  // 1000 at matched sample width yields roughly the raw volume again
  // (the paper: "storage about equal to that of the original raw data").
  return RawBytesPerBlock();
}

int64_t SurveyPipeline::PeakBlockStorageBytes() const {
  // Iterative processing needs raw + dedispersed resident, plus a ~14%
  // scratch margin for partial products (folded profiles, test
  // statistics) -- totalling the paper's "minimum of 30 Terabytes".
  return RawBytesPerBlock() + DedispersedBytesPerBlock() +
         RawBytesPerBlock() / 7;
}

double SurveyPipeline::MeanRawRate() const {
  return static_cast<double>(config_.survey_raw_bytes) /
         (config_.survey_years * kYear);
}

}  // namespace dflow::arecibo
