#ifndef DFLOW_ARECIBO_DEDISPERSE_H_
#define DFLOW_ARECIBO_DEDISPERSE_H_

#include <vector>

#include "arecibo/spectrometer.h"
#include "util/result.h"

namespace dflow::arecibo {

/// A dedispersed time series: channel-summed power after undoing the
/// dispersion delay for one trial DM.
struct TimeSeries {
  double dm = 0.0;
  double sample_time_sec = 0.0;
  std::vector<double> samples;

  int64_t SizeBytes() const {
    return static_cast<int64_t>(samples.size() * sizeof(double));
  }
};

/// Produces the uniformly spaced list of trial DMs the survey searches
/// (the paper: "about 1000 different trial values of the dispersion
/// measure").
std::vector<double> MakeDmTrials(double dm_max, int num_trials);

/// Per-channel sample shifts for one trial DM, relative to the top of the
/// band: shift[c] = lround((delay(dm, f_c) - delay(dm, f_hi)) / t_samp).
/// Hoisted out of the dedispersion loops so each (dm, channel) pair costs
/// one delay evaluation per call instead of per-sample arithmetic; exposed
/// so tests and benches can pin the table against the direct formula.
std::vector<int64_t> DelayShiftTable(const DynamicSpectrum& spectrum,
                                     double dm);

/// Incoherent dedispersion: for each trial DM, shift every channel by its
/// dispersion delay (relative to the top of the band) and sum across
/// channels. The output volume is num_trials time series, each as long as
/// the input — which is why the paper's storage math says the dedispersed
/// data "require storage about equal to that of the original raw data".
class Dedisperser {
 public:
  explicit Dedisperser(std::vector<double> dm_trials);

  const std::vector<double>& dm_trials() const { return dm_trials_; }

  /// One trial.
  TimeSeries Dedisperse(const DynamicSpectrum& spectrum, double dm) const;

  /// All trials, parallel across the DM set on the dflow::par shared pool
  /// (the paper's "50 to 200 processors" axis). Output is byte-identical
  /// at any thread count: each trial writes its own pre-sized slot.
  std::vector<TimeSeries> DedisperseAll(const DynamicSpectrum& spectrum) const;

  /// Bytes the full trial set would occupy for this spectrum (the "30 TB
  /// instantaneous" arithmetic hook).
  int64_t OutputBytes(const DynamicSpectrum& spectrum) const;

 private:
  std::vector<double> dm_trials_;
};

}  // namespace dflow::arecibo

#endif  // DFLOW_ARECIBO_DEDISPERSE_H_
