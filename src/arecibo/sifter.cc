#include "arecibo/sifter.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace dflow::arecibo {

bool CandidateSifter::SameSignal(const Candidate& a,
                                 const Candidate& b) const {
  const double hi = std::max(a.freq_hz, b.freq_hz);
  const double lo = std::min(a.freq_hz, b.freq_hz);
  if (lo <= 0.0) {
    return false;
  }
  const double ratio = hi / lo;
  const double nearest = std::max(1.0, std::round(ratio));
  if (std::fabs(ratio - nearest) / nearest >= config_.harmonic_tolerance) {
    return false;
  }
  // The same frequency detected at several trial DMs is one signal (keep
  // the best DM); a *harmonic* match additionally requires DM agreement
  // before folding two detections together.
  if (nearest == 1.0) {
    return true;
  }
  return std::fabs(a.dm - b.dm) <= config_.dm_tolerance;
}

std::vector<Candidate> CandidateSifter::Sift(
    std::vector<Candidate> candidates) const {
  // Strongest first, then greedy grouping: each candidate joins the first
  // group whose representative it matches.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.snr > b.snr;
            });
  std::vector<Candidate> representatives;
  for (const Candidate& candidate : candidates) {
    bool grouped = false;
    for (const Candidate& representative : representatives) {
      if (SameSignal(candidate, representative)) {
        grouped = true;
        break;
      }
    }
    if (!grouped) {
      representatives.push_back(candidate);
    }
  }
  return representatives;
}

std::vector<Candidate> MetaAnalysis::Analyze(
    const std::vector<BeamResult>& beams) const {
  std::vector<Candidate> all;
  for (const BeamResult& beam : beams) {
    for (Candidate candidate : beam.candidates) {
      candidate.beam = beam.beam;
      all.push_back(candidate);
    }
  }
  for (Candidate& candidate : all) {
    // Rule 1: undispersed -> terrestrial.
    if (candidate.dm < config_.dm_min) {
      candidate.rfi_flag = true;
      continue;
    }
    // Rule 2: multibeam coincidence, harmonic-aware (RFI excision must
    // match a fundamental in one beam to a low harmonic in another).
    auto related = [this](double f1, double f2) {
      double hi = std::max(f1, f2);
      double lo = std::min(f1, f2);
      if (lo <= 0.0) {
        return false;
      }
      double ratio = hi / lo;
      double nearest = std::max(1.0, std::round(ratio));
      if (nearest > config_.max_harmonic_ratio) {
        return false;
      }
      return std::fabs(ratio - nearest) <= config_.freq_tolerance * nearest;
    };
    std::set<int> beams_seen;
    for (const Candidate& other : all) {
      if (related(other.freq_hz, candidate.freq_hz)) {
        beams_seen.insert(other.beam);
      }
    }
    if (static_cast<int>(beams_seen.size()) >= config_.rfi_beam_threshold) {
      candidate.rfi_flag = true;
    }
  }
  return all;
}

std::vector<Candidate> MetaAnalysis::Survivors(
    const std::vector<Candidate>& analyzed) {
  std::vector<Candidate> out;
  for (const Candidate& candidate : analyzed) {
    if (!candidate.rfi_flag) {
      out.push_back(candidate);
    }
  }
  return out;
}

}  // namespace dflow::arecibo
