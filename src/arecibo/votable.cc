#include "arecibo/votable.h"

#include <cstdlib>
#include <sstream>

#include "util/strings.h"

namespace dflow::arecibo {

std::string CandidatesToVoTable(const std::vector<Candidate>& candidates,
                                const std::string& survey_name) {
  std::ostringstream os;
  os << "<?xml version=\"1.0\"?>\n"
     << "<VOTABLE version=\"1.1\">\n"
     << " <RESOURCE name=\"" << survey_name << "\">\n"
     << "  <TABLE name=\"candidates\">\n"
     << "   <FIELD name=\"freq_hz\" datatype=\"double\"/>\n"
     << "   <FIELD name=\"period_sec\" datatype=\"double\"/>\n"
     << "   <FIELD name=\"dm\" datatype=\"double\"/>\n"
     << "   <FIELD name=\"snr\" datatype=\"double\"/>\n"
     << "   <FIELD name=\"beam\" datatype=\"int\"/>\n"
     << "   <FIELD name=\"pointing\" datatype=\"int\"/>\n"
     << "   <FIELD name=\"rfi\" datatype=\"int\"/>\n"
     << "   <DATA><TABLEDATA>\n";
  os.precision(12);
  for (const Candidate& candidate : candidates) {
    os << "    <TR>"
       << "<TD>" << candidate.freq_hz << "</TD>"
       << "<TD>" << candidate.period_sec << "</TD>"
       << "<TD>" << candidate.dm << "</TD>"
       << "<TD>" << candidate.snr << "</TD>"
       << "<TD>" << candidate.beam << "</TD>"
       << "<TD>" << candidate.pointing << "</TD>"
       << "<TD>" << (candidate.rfi_flag ? 1 : 0) << "</TD>"
       << "</TR>\n";
  }
  os << "   </TABLEDATA></DATA>\n"
     << "  </TABLE>\n"
     << " </RESOURCE>\n"
     << "</VOTABLE>\n";
  return os.str();
}

namespace {

/// Extracts the text of consecutive <TD>...</TD> cells in a <TR> line.
Result<std::vector<std::string>> ParseRow(std::string_view line) {
  std::vector<std::string> cells;
  size_t pos = 0;
  while (true) {
    size_t open = line.find("<TD>", pos);
    if (open == std::string_view::npos) {
      break;
    }
    size_t close = line.find("</TD>", open);
    if (close == std::string_view::npos) {
      return Status::Corruption("unterminated <TD>");
    }
    cells.emplace_back(line.substr(open + 4, close - open - 4));
    pos = close + 5;
  }
  return cells;
}

}  // namespace

Result<std::vector<Candidate>> VoTableToCandidates(const std::string& xml) {
  if (xml.find("<VOTABLE") == std::string::npos) {
    return Status::InvalidArgument("not a VOTable document");
  }
  std::vector<Candidate> out;
  for (const std::string& line : Split(xml, '\n')) {
    if (line.find("<TR>") == std::string::npos) {
      continue;
    }
    DFLOW_ASSIGN_OR_RETURN(std::vector<std::string> cells, ParseRow(line));
    if (cells.size() != 7) {
      return Status::Corruption("expected 7 cells per row, got " +
                                std::to_string(cells.size()));
    }
    Candidate candidate;
    candidate.freq_hz = std::strtod(cells[0].c_str(), nullptr);
    candidate.period_sec = std::strtod(cells[1].c_str(), nullptr);
    candidate.dm = std::strtod(cells[2].c_str(), nullptr);
    candidate.snr = std::strtod(cells[3].c_str(), nullptr);
    candidate.beam = static_cast<int>(std::strtol(cells[4].c_str(), nullptr,
                                                  10));
    candidate.pointing =
        static_cast<int>(std::strtol(cells[5].c_str(), nullptr, 10));
    candidate.rfi_flag = cells[6] == "1";
    out.push_back(candidate);
  }
  return out;
}

}  // namespace dflow::arecibo
