#ifndef DFLOW_ARECIBO_SIFTER_H_
#define DFLOW_ARECIBO_SIFTER_H_

#include <vector>

#include "arecibo/search.h"

namespace dflow::arecibo {

struct SifterConfig {
  /// Candidates whose frequencies are integer multiples (within this
  /// fractional tolerance) and whose DMs agree within dm_tolerance are
  /// treated as harmonics of one signal.
  double harmonic_tolerance = 0.02;
  double dm_tolerance = 15.0;
};

/// Reduces the raw per-time-series candidate flood to distinct signals:
/// groups harmonically related detections across DM trials and keeps the
/// strongest member of each group (tagged with the group's best DM). This
/// is the first stage of "discriminating and classifying" signals from
/// §2's meta-analysis pipeline.
class CandidateSifter {
 public:
  explicit CandidateSifter(SifterConfig config) : config_(config) {}

  std::vector<Candidate> Sift(std::vector<Candidate> candidates) const;

 private:
  bool SameSignal(const Candidate& a, const Candidate& b) const;

  SifterConfig config_;
};

struct MetaAnalysisConfig {
  /// A signal detected in at least this many of the 7 ALFA beams at the
  /// same frequency is terrestrial (a real pulsar illuminates one beam,
  /// maybe two on a boundary; RFI enters them all).
  int rfi_beam_threshold = 4;
  /// Signals below this DM are terrestrial (undispersed).
  double dm_min = 2.0;
  /// Fractional frequency tolerance for cross-beam matching.
  double freq_tolerance = 0.01;
  /// Cross-beam matching is harmonic-aware up to this integer ratio: a
  /// candidate coincides with another beam's candidate when their
  /// frequency ratio is within freq_tolerance of an integer <= this.
  /// (Per-beam sifting may keep different harmonics of the same
  /// interference in different beams.)
  int max_harmonic_ratio = 4;
};

/// Per-beam candidate lists entering the meta-analysis.
struct BeamResult {
  int beam = 0;
  std::vector<Candidate> candidates;
};

/// Multibeam coincidence analysis (§2.1: interference "needs to be at
/// least identified and most likely removed", via "new algorithms that
/// simultaneously investigate dynamic spectra for each of the 7 ALFA
/// beams"). Returns all candidates with rfi_flag set on the terrestrial
/// ones; Survivors() filters to the astronomical ones.
class MetaAnalysis {
 public:
  explicit MetaAnalysis(MetaAnalysisConfig config) : config_(config) {}

  std::vector<Candidate> Analyze(const std::vector<BeamResult>& beams) const;

  static std::vector<Candidate> Survivors(
      const std::vector<Candidate>& analyzed);

 private:
  MetaAnalysisConfig config_;
};

}  // namespace dflow::arecibo

#endif  // DFLOW_ARECIBO_SIFTER_H_
