#include "sim/resource.h"

#include <utility>

#include "util/logging.h"

namespace dflow::sim {

Resource::Resource(Simulation* simulation, std::string name, int num_servers)
    : simulation_(simulation), name_(std::move(name)),
      num_servers_(num_servers) {
  DFLOW_CHECK(simulation_ != nullptr);
  DFLOW_CHECK(num_servers_ > 0);
}

void Resource::Submit(SimTime service_time,
                      std::function<void()> on_complete) {
  DFLOW_CHECK(service_time >= 0.0);
  queue_.push_back(
      Job{service_time, simulation_->Now(), std::move(on_complete)});
  max_queue_length_ = std::max(max_queue_length_, queue_.size());
  if (busy_ < num_servers_) {
    StartNext();
  }
}

void Resource::StartNext() {
  if (queue_.empty() || busy_ >= num_servers_) {
    return;
  }
  Job job = std::move(queue_.front());
  queue_.pop_front();
  ++busy_;
  ++jobs_started_;
  total_queue_delay_ += simulation_->Now() - job.enqueue_time;
  busy_time_ += job.service_time;
  simulation_->Schedule(
      job.service_time, [this, on_complete = std::move(job.on_complete)] {
        --busy_;
        ++jobs_completed_;
        if (on_complete) {
          on_complete();
        }
        StartNext();
      });
}

double Resource::Utilization() const {
  double elapsed = simulation_->Now();
  if (elapsed <= 0.0) {
    return 0.0;
  }
  // busy_time_ counts service committed at start; subtract the unfinished
  // tail of in-flight jobs is not tracked, so this slightly overestimates
  // at the instant jobs are mid-service. Benches read it after Run().
  return busy_time_ / (elapsed * num_servers_);
}

double Resource::MeanQueueDelay() const {
  if (jobs_started_ == 0) {
    return 0.0;
  }
  return total_queue_delay_ / static_cast<double>(jobs_started_);
}

}  // namespace dflow::sim
