#ifndef DFLOW_SIM_STATS_H_
#define DFLOW_SIM_STATS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace dflow::sim {

/// Streaming summary statistics (Welford's algorithm): numerically stable
/// mean/variance plus min/max/count, used by every monitor in the library.
class SummaryStats {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double Variance() const;
  double StdDev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void Merge(const SummaryStats& other);

  std::string ToString() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [lo, hi); samples outside are clamped into
/// the edge buckets. Supports quantile estimates by linear interpolation.
class Histogram {
 public:
  Histogram(double lo, double hi, int num_buckets);

  void Add(double x);
  int64_t count() const { return count_; }

  /// Approximate q-quantile, q in [0, 1].
  double Quantile(double q) const;

  const std::vector<int64_t>& buckets() const { return buckets_; }
  double bucket_width() const { return width_; }
  double lo() const { return lo_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
};

}  // namespace dflow::sim

#endif  // DFLOW_SIM_STATS_H_
