#ifndef DFLOW_SIM_SIMULATION_H_
#define DFLOW_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/status.h"

namespace dflow::sim {

/// Virtual time in seconds. The simulation clock is decoupled from wall
/// time: petabyte archives and multi-year surveys run in milliseconds while
/// keeping exact byte/second arithmetic.
using SimTime = double;

/// Single-threaded discrete-event simulation kernel. Events are closures
/// ordered by (time, insertion sequence); ties preserve scheduling order so
/// runs are deterministic.
class Simulation {
 public:
  Simulation() = default;

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` seconds from now. Requires delay >= 0.
  void Schedule(SimTime delay, std::function<void()> fn);

  /// Schedules `fn` at absolute virtual time `t`. Requires t >= Now().
  void ScheduleAt(SimTime t, std::function<void()> fn);

  /// Runs events until the queue is empty.
  void Run();

  /// Runs events with time <= `deadline`; the clock finishes at exactly
  /// `deadline` (or earlier if the queue empties).
  void RunUntil(SimTime deadline);

  /// Runs at most one event. Returns false if the queue was empty.
  bool Step();

  int64_t events_processed() const { return events_processed_; }
  bool Empty() const { return queue_.empty(); }

 private:
  struct Event {
    SimTime time;
    int64_t sequence;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.sequence > b.sequence;
    }
  };

  SimTime now_ = 0.0;
  int64_t next_sequence_ = 0;
  int64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

}  // namespace dflow::sim

#endif  // DFLOW_SIM_SIMULATION_H_
