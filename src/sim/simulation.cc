#include "sim/simulation.h"

#include "util/logging.h"

namespace dflow::sim {

void Simulation::Schedule(SimTime delay, std::function<void()> fn) {
  DFLOW_CHECK(delay >= 0.0) << "negative delay " << delay;
  ScheduleAt(now_ + delay, std::move(fn));
}

void Simulation::ScheduleAt(SimTime t, std::function<void()> fn) {
  DFLOW_CHECK(t >= now_) << "scheduling into the past: " << t << " < " << now_;
  queue_.push(Event{t, next_sequence_++, std::move(fn)});
}

void Simulation::Run() {
  while (Step()) {
  }
}

void Simulation::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

bool Simulation::Step() {
  if (queue_.empty()) {
    return false;
  }
  // Move the event out before popping; the closure may schedule new events.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = event.time;
  ++events_processed_;
  event.fn();
  return true;
}

}  // namespace dflow::sim
