#ifndef DFLOW_SIM_RESOURCE_H_
#define DFLOW_SIM_RESOURCE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/simulation.h"

namespace dflow::sim {

/// A k-server FIFO queueing resource (CPU pool, tape drives, a network
/// uplink modelled as slots). Jobs submit a service time; when a server is
/// free the job occupies it for that long, then the completion callback
/// fires. Tracks utilization and queueing statistics, which is how the
/// capacity benches answer "how many processors does the Arecibo flow
/// need?".
class Resource {
 public:
  Resource(Simulation* simulation, std::string name, int num_servers);

  /// Enqueues a job requiring `service_time` seconds of one server.
  /// `on_complete` runs at completion time (may be null).
  void Submit(SimTime service_time, std::function<void()> on_complete);

  const std::string& name() const { return name_; }
  int num_servers() const { return num_servers_; }
  int busy_servers() const { return busy_; }
  int64_t jobs_completed() const { return jobs_completed_; }
  size_t queue_length() const { return queue_.size(); }

  /// Total server-seconds of service delivered so far.
  double busy_time() const { return busy_time_; }

  /// Mean utilization in [0, 1] over [0, Now()].
  double Utilization() const;

  /// Mean time jobs spent waiting in queue before service began.
  double MeanQueueDelay() const;

  /// Largest queue length observed.
  size_t max_queue_length() const { return max_queue_length_; }

 private:
  struct Job {
    SimTime service_time;
    SimTime enqueue_time;
    std::function<void()> on_complete;
  };

  void StartNext();

  Simulation* simulation_;
  std::string name_;
  int num_servers_;
  int busy_ = 0;
  std::deque<Job> queue_;
  int64_t jobs_completed_ = 0;
  int64_t jobs_started_ = 0;
  double busy_time_ = 0.0;
  double total_queue_delay_ = 0.0;
  size_t max_queue_length_ = 0;
};

}  // namespace dflow::sim

#endif  // DFLOW_SIM_RESOURCE_H_
