#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace dflow::sim {

void SummaryStats::Add(double x) {
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double SummaryStats::Variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double SummaryStats::StdDev() const { return std::sqrt(Variance()); }

void SummaryStats::Merge(const SummaryStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  int64_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double mean = mean_ + delta * static_cast<double>(other.count_) /
                            static_cast<double>(n);
  m2_ = m2_ + other.m2_ +
        delta * delta * static_cast<double>(count_) *
            static_cast<double>(other.count_) / static_cast<double>(n);
  mean_ = mean;
  count_ = n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::string SummaryStats::ToString() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() << " sd=" << StdDev()
     << " min=" << min() << " max=" << max();
  return os.str();
}

Histogram::Histogram(double lo, double hi, int num_buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / num_buckets),
      buckets_(static_cast<size_t>(num_buckets), 0) {
  DFLOW_CHECK(hi > lo);
  DFLOW_CHECK(num_buckets > 0);
}

void Histogram::Add(double x) {
  int idx = static_cast<int>((x - lo_) / width_);
  idx = std::clamp(idx, 0, static_cast<int>(buckets_.size()) - 1);
  ++buckets_[static_cast<size_t>(idx)];
  ++count_;
}

double Histogram::Quantile(double q) const {
  DFLOW_CHECK(q >= 0.0 && q <= 1.0);
  if (count_ == 0) {
    return lo_;
  }
  double target = q * static_cast<double>(count_);
  double cumulative = 0.0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    double next = cumulative + static_cast<double>(buckets_[i]);
    if (next >= target) {
      double fraction =
          buckets_[i] > 0
              ? (target - cumulative) / static_cast<double>(buckets_[i])
              : 0.0;
      return lo_ + (static_cast<double>(i) + fraction) * width_;
    }
    cumulative = next;
  }
  return hi_;
}

}  // namespace dflow::sim
