#ifndef DFLOW_NET_CHANNEL_H_
#define DFLOW_NET_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <string>

#include "util/result.h"

namespace dflow::net {

/// Outcome of one file's journey across a channel.
enum class DeliveryOutcome {
  kDelivered,
  kCorrupted,  // Arrived but failed its checksum (must be re-sent).
  kLost,       // Never arrived (shipment damaged, link failure).
};

/// A single file (or file bundle) in flight. `bytes` is the paper-scale
/// size used for all bandwidth arithmetic; `payload` optionally carries a
/// real laptop-scale body whose CRC-32 must match `crc32`. Channels that
/// corrupt a payload-carrying item flip bytes in the payload and deliver
/// it as if intact — only the receiver's checksum verification catches it,
/// which is exactly the "assessment and maintenance of data integrity"
/// loop of §2.2.
struct TransferItem {
  std::string name;
  int64_t bytes = 0;
  uint32_t crc32 = 0;
  std::string payload;
};

/// Builds a payload-carrying item: crc32 is computed from `payload`, and
/// `scale_bytes` (when >= 0) overrides the accounted size so a small real
/// payload can stand in for a paper-scale file.
TransferItem MakePayloadItem(std::string name, std::string payload,
                             int64_t scale_bytes = -1);

/// OK if the item carries no payload or the payload matches its crc32;
/// Corruption otherwise.
Status VerifyPayload(const TransferItem& item);

/// Abstract data-movement channel. The paper's central transport contrast
/// — Arecibo's physical ATA-disk shipments vs WebLab's dedicated
/// Internet2 link vs CLEO's USB-disk Monte-Carlo imports — becomes two
/// implementations of this interface, so the same workflow code can be
/// pointed at either and the benches can sweep the crossover.
///
/// Ownership and lifetime contract:
///   * A Channel is owned by whoever constructed it — a scenario on the
///     stack, or a net::Topology for its links. Consumers (TransferManager,
///     fault adapters, the cluster replay) only ever borrow `Channel*`;
///     nothing in this library takes or shares ownership of a channel.
///   * A channel must outlive (a) every in-flight Send() — callbacks fire
///     from the simulation, so the channel must survive until the
///     simulation has run past the last delivery — and (b) every
///     fault::Injector it is armed with, whose registered hooks capture
///     the raw pointer.
///   * DeliveryCallbacks run in virtual time on the simulation's thread;
///     they may capture borrows with the same lifetime rules, and they must
///     not destroy the channel that invoked them.
class Channel {
 public:
  virtual ~Channel() = default;

  using DeliveryCallback =
      std::function<void(const TransferItem&, DeliveryOutcome)>;

  /// Enqueues a file. The callback fires in virtual time when the file
  /// arrives (or is discovered lost/corrupt).
  virtual Status Send(TransferItem item, DeliveryCallback on_delivery) = 0;

  virtual const std::string& name() const = 0;

  /// Effective long-run throughput in bytes/second (for capacity math).
  virtual double NominalBandwidth() const = 0;

  virtual int64_t bytes_delivered() const = 0;
  virtual int64_t items_delivered() const = 0;
};

}  // namespace dflow::net

#endif  // DFLOW_NET_CHANNEL_H_
