#ifndef DFLOW_NET_SHIPMENT_H_
#define DFLOW_NET_SHIPMENT_H_

#include <string>
#include <vector>

#include "net/channel.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace dflow::net {

/// Configuration of a physical-media channel. Defaults model the Arecibo
/// arrangement (§2.2): raw data written to ATA disks, couriered from
/// Puerto Rico to the Cornell Theory Center. "Never underestimate the
/// bandwidth of a station wagon": enormous batch throughput, days of
/// latency, and per-disk handling labour.
struct ShipmentConfig {
  int64_t disk_capacity_bytes = 400LL * 1000 * 1000 * 1000;  // 400 GB ATA.
  int disks_per_shipment = 40;  // 16 TB/week: headroom over the 14 TB block.
  double shipment_interval_sec = 7 * 24 * 3600.0;  // Weekly courier.
  double transit_time_sec = 3 * 24 * 3600.0;       // Days in transit.
  double per_disk_handling_sec = 15 * 60.0;        // Label/pack/verify.
  double disk_damage_probability = 0.005;          // Whole disk lost.
  double file_corruption_probability = 0.0005;     // Single file bad.
};

/// Channel implementation that accumulates files onto disks and dispatches
/// them in periodic batches. Files on a damaged disk are reported kLost;
/// individual corrupt files are reported kCorrupted (the recipient's
/// manifest check catches them and the sender re-ships).
class ShipmentChannel : public Channel {
 public:
  ShipmentChannel(sim::Simulation* simulation, std::string name,
                  ShipmentConfig config, uint64_t seed = 42);

  Status Send(TransferItem item, DeliveryCallback on_delivery) override;

  /// Fault hook: the next dispatched shipment is destroyed in transit —
  /// every disk in it arrives damaged and every file is reported kLost
  /// (the courier mishap the Arecibo team budgeted for).
  void InjectLoseNextShipment();

  /// Fault hook: the next dispatched shipment spends `extra_sec` longer in
  /// transit (customs, weather, a van that breaks down).
  void InjectDelayNextShipment(double extra_sec);

  const std::string& name() const override { return name_; }
  /// Long-run throughput if every shipment were full.
  double NominalBandwidth() const override;
  int64_t bytes_delivered() const override { return bytes_delivered_; }
  int64_t items_delivered() const override { return items_delivered_; }
  int64_t items_corrupted() const { return items_corrupted_; }
  int64_t items_lost() const { return items_lost_; }
  int64_t shipments_dispatched() const { return shipments_; }
  int64_t shipments_lost() const { return shipments_lost_; }
  double delay_injected_seconds() const { return delay_injected_seconds_; }
  /// Total staff time spent handling disks so far.
  double handling_seconds() const { return handling_seconds_; }

 private:
  struct PendingItem {
    TransferItem item;
    DeliveryCallback on_delivery;
  };

  void ScheduleNextDispatch();
  void Dispatch();

  sim::Simulation* simulation_;
  std::string name_;
  ShipmentConfig config_;
  Rng rng_;
  std::vector<PendingItem> staged_;
  bool dispatch_scheduled_ = false;
  bool lose_next_shipment_ = false;
  double extra_transit_next_sec_ = 0.0;
  int64_t bytes_delivered_ = 0;
  int64_t items_delivered_ = 0;
  int64_t items_corrupted_ = 0;
  int64_t items_lost_ = 0;
  int64_t shipments_ = 0;
  int64_t shipments_lost_ = 0;
  double delay_injected_seconds_ = 0.0;
  double handling_seconds_ = 0.0;
};

}  // namespace dflow::net

#endif  // DFLOW_NET_SHIPMENT_H_
