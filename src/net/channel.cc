#include "net/channel.h"

#include <utility>

#include "util/crc32.h"

namespace dflow::net {

TransferItem MakePayloadItem(std::string name, std::string payload,
                             int64_t scale_bytes) {
  TransferItem item;
  item.name = std::move(name);
  item.crc32 = Crc32::Of(payload);
  item.bytes = scale_bytes >= 0 ? scale_bytes
                                : static_cast<int64_t>(payload.size());
  item.payload = std::move(payload);
  return item;
}

Status VerifyPayload(const TransferItem& item) {
  if (item.payload.empty()) {
    return Status::OK();
  }
  if (Crc32::Of(item.payload) != item.crc32) {
    return Status::Corruption("payload of '" + item.name +
                              "' fails its CRC-32 check");
  }
  return Status::OK();
}

}  // namespace dflow::net
