#ifndef DFLOW_NET_TOPOLOGY_H_
#define DFLOW_NET_TOPOLOGY_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/network_link.h"
#include "sim/simulation.h"
#include "util/result.h"

namespace dflow::net {

struct TopologyConfig {
  /// Defaults applied to every link Connect() creates without an explicit
  /// per-link override.
  NetworkLinkConfig link;
  /// Master seed; each link gets a fork derived from (seed, link name), so
  /// adding a link never perturbs the fault draws of existing links.
  uint64_t seed = 42;
};

/// Named node endpoints joined by directed NetworkLink edges — the wiring
/// harness the cluster tier's cross-node replay runs over. Links are named
/// canonically ("a->b"), which is the name fault plans target: generate a
/// FaultPlanConfig whose `link_targets` lists LinkName(a, b) and
/// fault::ArmTopology routes its events onto exactly that edge.
///
/// Ownership: the topology owns its links (Channel pointers returned by
/// LinkBetween()/links() are borrows, valid for the topology's lifetime);
/// the simulation is borrowed and must outlive the topology.
class Topology {
 public:
  explicit Topology(sim::Simulation* simulation, TopologyConfig config = {});

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  /// Registers a node endpoint. InvalidArgument for an empty name or one
  /// containing the link separator ("->"); AlreadyExists for a duplicate.
  Status AddNode(const std::string& name);

  /// Canonical name of the directed edge from -> to.
  static std::string LinkName(const std::string& from, const std::string& to);

  /// Creates the directed link from -> to with the topology-default link
  /// config (or `config`). NotFound if either endpoint is unregistered;
  /// InvalidArgument for a self-link; AlreadyExists if connected.
  Status Connect(const std::string& from, const std::string& to);
  Status Connect(const std::string& from, const std::string& to,
                 NetworkLinkConfig config);

  /// Connects every ordered pair of registered nodes not yet connected.
  Status FullMesh();

  /// The link from -> to; NotFound when absent.
  Result<NetworkLink*> LinkBetween(const std::string& from,
                                   const std::string& to) const;

  // --- Partition fault surface ---------------------------------------
  //
  // Cuts are one-way link outages in virtual time: a cut on "a->b" drops
  // a's traffic toward b while b->a flows untouched (the asymmetric
  // failure mode real WAN cuts exhibit). A partition is just the closure
  // of cuts across a group boundary. Both are armed from fault plans via
  // fault::ArmTopologyPartitions, and both heal by the clock — the link
  // comes back when the simulation passes the outage window.

  /// Parses a partition group spec "a,b|c,d" into its node groups.
  /// InvalidArgument on an empty spec, empty group, or duplicate node.
  static Result<std::vector<std::vector<std::string>>> ParseGroups(
      const std::string& spec);

  /// Cuts the directed from -> to edge for `duration_sec` of virtual time
  /// (repeated cuts extend the window). NotFound when the link is absent;
  /// InvalidArgument for a non-positive duration.
  Status CutLink(const std::string& from, const std::string& to,
                 double duration_sec);

  /// Applies a partition group spec: every directed link whose endpoints
  /// fall in different groups is cut for `duration_sec`. Nodes named in
  /// the spec must be registered; links that were never Connect()ed are
  /// skipped (sparse topologies partition what exists).
  Status Partition(const std::string& group_spec, double duration_sec);

  /// True when from -> to traffic can flow at the simulation's current
  /// time: the directed link exists and is not inside an outage window.
  /// A node always reaches itself.
  bool Reachable(const std::string& from, const std::string& to) const;

  /// Canonical matrix dump, one "a->b up|down" line per directed link in
  /// name order — a fingerprintable snapshot of the reachability state.
  std::string ReachabilityMatrix() const;

  std::vector<std::string> nodes() const;
  std::vector<NetworkLink*> links() const;
  size_t num_links() const { return links_.size(); }
  const TopologyConfig& config() const { return config_; }

 private:
  sim::Simulation* simulation_;
  TopologyConfig config_;
  std::map<std::string, bool> nodes_;
  std::map<std::pair<std::string, std::string>, std::unique_ptr<NetworkLink>>
      links_;
};

}  // namespace dflow::net

#endif  // DFLOW_NET_TOPOLOGY_H_
