#ifndef DFLOW_NET_TOPOLOGY_H_
#define DFLOW_NET_TOPOLOGY_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/network_link.h"
#include "sim/simulation.h"
#include "util/result.h"

namespace dflow::net {

struct TopologyConfig {
  /// Defaults applied to every link Connect() creates without an explicit
  /// per-link override.
  NetworkLinkConfig link;
  /// Master seed; each link gets a fork derived from (seed, link name), so
  /// adding a link never perturbs the fault draws of existing links.
  uint64_t seed = 42;
};

/// Named node endpoints joined by directed NetworkLink edges — the wiring
/// harness the cluster tier's cross-node replay runs over. Links are named
/// canonically ("a->b"), which is the name fault plans target: generate a
/// FaultPlanConfig whose `link_targets` lists LinkName(a, b) and
/// fault::ArmTopology routes its events onto exactly that edge.
///
/// Ownership: the topology owns its links (Channel pointers returned by
/// LinkBetween()/links() are borrows, valid for the topology's lifetime);
/// the simulation is borrowed and must outlive the topology.
class Topology {
 public:
  explicit Topology(sim::Simulation* simulation, TopologyConfig config = {});

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  /// Registers a node endpoint. InvalidArgument for an empty name or one
  /// containing the link separator ("->"); AlreadyExists for a duplicate.
  Status AddNode(const std::string& name);

  /// Canonical name of the directed edge from -> to.
  static std::string LinkName(const std::string& from, const std::string& to);

  /// Creates the directed link from -> to with the topology-default link
  /// config (or `config`). NotFound if either endpoint is unregistered;
  /// InvalidArgument for a self-link; AlreadyExists if connected.
  Status Connect(const std::string& from, const std::string& to);
  Status Connect(const std::string& from, const std::string& to,
                 NetworkLinkConfig config);

  /// Connects every ordered pair of registered nodes not yet connected.
  Status FullMesh();

  /// The link from -> to; NotFound when absent.
  Result<NetworkLink*> LinkBetween(const std::string& from,
                                   const std::string& to) const;

  std::vector<std::string> nodes() const;
  std::vector<NetworkLink*> links() const;
  size_t num_links() const { return links_.size(); }
  const TopologyConfig& config() const { return config_; }

 private:
  sim::Simulation* simulation_;
  TopologyConfig config_;
  std::map<std::string, bool> nodes_;
  std::map<std::pair<std::string, std::string>, std::unique_ptr<NetworkLink>>
      links_;
};

}  // namespace dflow::net

#endif  // DFLOW_NET_TOPOLOGY_H_
