#ifndef DFLOW_NET_NETWORK_LINK_H_
#define DFLOW_NET_NETWORK_LINK_H_

#include <memory>

#include "net/channel.h"
#include "sim/resource.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace dflow::net {

/// Configuration of a point-to-point network path. Defaults model the
/// WebLab arrangement: a dedicated 100 Mb/s connection from the Internet
/// Archive into Internet2 (§4.1).
struct NetworkLinkConfig {
  double bandwidth_bits_per_sec = 100.0e6;
  double propagation_delay_sec = 0.07;  // Coast-to-coast RTT scale.
  double utilization_cap = 0.9;         // Fraction usable for bulk data.
  double corruption_probability = 0.0;  // Per-file checksum failure.
  double failure_probability = 0.0;     // Per-file loss (session drop).
};

/// A serialized network pipe: files queue FIFO and stream at the capped
/// bandwidth; each file additionally pays the propagation delay. Faults
/// come from two sources: the configured per-file probabilities (drawn
/// from the link's own seeded RNG), and scheduled injections from a
/// fault::Injector — link flaps that drop every session in a window, and
/// forced corruption of the next N files. Corrupted payload-carrying items
/// arrive bit-flipped but flagged kDelivered: only the receiver's CRC
/// check (TransferManifest::Verify / VerifyPayload) exposes them.
class NetworkLink : public Channel {
 public:
  NetworkLink(sim::Simulation* simulation, std::string name,
              NetworkLinkConfig config, uint64_t seed = 42);

  Status Send(TransferItem item, DeliveryCallback on_delivery) override;

  /// Fault hook: the link is down until now + `duration_sec`; any file
  /// whose delivery lands in that window is lost (session drop). Repeated
  /// flaps extend the outage.
  void InjectOutage(double duration_sec);

  /// Fault hook: the next `n` files are corrupted in flight.
  void InjectCorruptNext(int64_t n);

  const std::string& name() const override { return name_; }
  double NominalBandwidth() const override {
    return config_.bandwidth_bits_per_sec / 8.0 * config_.utilization_cap;
  }
  int64_t bytes_delivered() const override { return bytes_delivered_; }
  int64_t items_delivered() const override { return items_delivered_; }
  int64_t items_corrupted() const { return items_corrupted_; }
  int64_t items_lost() const { return items_lost_; }
  int64_t outages() const { return outages_; }
  bool IsDown() const;

 private:
  sim::Simulation* simulation_;
  std::string name_;
  NetworkLinkConfig config_;
  sim::Resource pipe_;
  Rng rng_;
  int64_t bytes_delivered_ = 0;
  int64_t items_delivered_ = 0;
  int64_t items_corrupted_ = 0;
  int64_t items_lost_ = 0;
  int64_t outages_ = 0;
  double down_until_ = -1.0;
  int64_t corrupt_next_ = 0;
};

}  // namespace dflow::net

#endif  // DFLOW_NET_NETWORK_LINK_H_
