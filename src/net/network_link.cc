#include "net/network_link.h"

#include <utility>

#include "util/logging.h"

namespace dflow::net {

NetworkLink::NetworkLink(sim::Simulation* simulation, std::string name,
                         NetworkLinkConfig config, uint64_t seed)
    : simulation_(simulation), name_(std::move(name)), config_(config),
      pipe_(simulation, name_ + "/pipe", 1), rng_(seed) {
  DFLOW_CHECK(config_.bandwidth_bits_per_sec > 0.0);
  DFLOW_CHECK(config_.utilization_cap > 0.0 && config_.utilization_cap <= 1.0);
}

Status NetworkLink::Send(TransferItem item, DeliveryCallback on_delivery) {
  if (item.bytes < 0) {
    return Status::InvalidArgument("negative transfer size");
  }
  double stream_time = static_cast<double>(item.bytes) / NominalBandwidth();
  DeliveryOutcome outcome = DeliveryOutcome::kDelivered;
  if (rng_.Bernoulli(config_.failure_probability)) {
    outcome = DeliveryOutcome::kLost;
  } else if (rng_.Bernoulli(config_.corruption_probability)) {
    outcome = DeliveryOutcome::kCorrupted;
  }
  pipe_.Submit(stream_time, [this, item = std::move(item), outcome,
                             cb = std::move(on_delivery)] {
    // Propagation delay after the pipe frees (pipelined with next file).
    simulation_->Schedule(config_.propagation_delay_sec, [this, item, outcome,
                                                          cb] {
      switch (outcome) {
        case DeliveryOutcome::kDelivered:
          bytes_delivered_ += item.bytes;
          ++items_delivered_;
          break;
        case DeliveryOutcome::kCorrupted:
          ++items_corrupted_;
          break;
        case DeliveryOutcome::kLost:
          ++items_lost_;
          break;
      }
      if (cb) {
        cb(item, outcome);
      }
    });
  });
  return Status::OK();
}

}  // namespace dflow::net
