#include "net/network_link.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace dflow::net {

NetworkLink::NetworkLink(sim::Simulation* simulation, std::string name,
                         NetworkLinkConfig config, uint64_t seed)
    : simulation_(simulation), name_(std::move(name)), config_(config),
      pipe_(simulation, name_ + "/pipe", 1), rng_(seed) {
  DFLOW_CHECK(config_.bandwidth_bits_per_sec > 0.0);
  DFLOW_CHECK(config_.utilization_cap > 0.0 && config_.utilization_cap <= 1.0);
}

bool NetworkLink::IsDown() const { return simulation_->Now() < down_until_; }

void NetworkLink::InjectOutage(double duration_sec) {
  if (duration_sec <= 0.0) {
    return;
  }
  ++outages_;
  down_until_ = std::max(down_until_, simulation_->Now() + duration_sec);
  DFLOW_LOG(Info) << "link '" << name_ << "' down for " << duration_sec
                  << "s at t=" << simulation_->Now();
}

void NetworkLink::InjectCorruptNext(int64_t n) {
  if (n > 0) {
    corrupt_next_ += n;
  }
}

Status NetworkLink::Send(TransferItem item, DeliveryCallback on_delivery) {
  if (item.bytes < 0) {
    return Status::InvalidArgument("negative transfer size");
  }
  double stream_time = static_cast<double>(item.bytes) / NominalBandwidth();
  // Draw the per-file fate unconditionally so the RNG stream consumed per
  // Send() is fixed: injected faults never shift the background fault
  // sequence, keeping seeded runs replayable event for event.
  bool random_loss = rng_.Bernoulli(config_.failure_probability);
  bool random_corruption = rng_.Bernoulli(config_.corruption_probability);
  DeliveryOutcome outcome = DeliveryOutcome::kDelivered;
  if (random_loss) {
    outcome = DeliveryOutcome::kLost;
  } else if (random_corruption || corrupt_next_ > 0) {
    if (!random_corruption) {
      --corrupt_next_;
    }
    outcome = DeliveryOutcome::kCorrupted;
  }
  if (outcome == DeliveryOutcome::kCorrupted && !item.payload.empty()) {
    // Flip one payload byte and deliver the damaged file as if intact;
    // detection is the receiver's job (CRC against the manifest).
    size_t pos = static_cast<size_t>(
        rng_.Uniform(0, static_cast<int64_t>(item.payload.size()) - 1));
    item.payload[pos] = static_cast<char>(item.payload[pos] ^ 0x01);
    outcome = DeliveryOutcome::kDelivered;
    ++items_corrupted_;
  }
  pipe_.Submit(stream_time, [this, item = std::move(item), outcome,
                             cb = std::move(on_delivery)] {
    // Propagation delay after the pipe frees (pipelined with next file).
    simulation_->Schedule(config_.propagation_delay_sec, [this, item, outcome,
                                                          cb] {
      DeliveryOutcome final_outcome = outcome;
      if (IsDown()) {
        // The session dropped mid-transfer: whatever the file's fate was
        // going to be, it never arrives.
        final_outcome = DeliveryOutcome::kLost;
      }
      switch (final_outcome) {
        case DeliveryOutcome::kDelivered:
          bytes_delivered_ += item.bytes;
          ++items_delivered_;
          break;
        case DeliveryOutcome::kCorrupted:
          ++items_corrupted_;
          break;
        case DeliveryOutcome::kLost:
          ++items_lost_;
          break;
      }
      if (cb) {
        cb(item, final_outcome);
      }
    });
  });
  return Status::OK();
}

}  // namespace dflow::net
