#include "net/shipment.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace dflow::net {

ShipmentChannel::ShipmentChannel(sim::Simulation* simulation,
                                 std::string name, ShipmentConfig config,
                                 uint64_t seed)
    : simulation_(simulation), name_(std::move(name)), config_(config),
      rng_(seed) {
  DFLOW_CHECK(config_.disk_capacity_bytes > 0);
  DFLOW_CHECK(config_.disks_per_shipment > 0);
}

double ShipmentChannel::NominalBandwidth() const {
  double batch_bytes = static_cast<double>(config_.disk_capacity_bytes) *
                       config_.disks_per_shipment;
  return batch_bytes / config_.shipment_interval_sec;
}

Status ShipmentChannel::Send(TransferItem item, DeliveryCallback on_delivery) {
  if (item.bytes < 0) {
    return Status::InvalidArgument("negative transfer size");
  }
  if (item.bytes > config_.disk_capacity_bytes) {
    return Status::InvalidArgument("file larger than shipment disk");
  }
  staged_.push_back(PendingItem{std::move(item), std::move(on_delivery)});
  ScheduleNextDispatch();
  return Status::OK();
}

void ShipmentChannel::ScheduleNextDispatch() {
  if (dispatch_scheduled_) {
    return;
  }
  dispatch_scheduled_ = true;
  simulation_->Schedule(config_.shipment_interval_sec, [this] {
    dispatch_scheduled_ = false;
    Dispatch();
    if (!staged_.empty()) {
      ScheduleNextDispatch();
    }
  });
}

void ShipmentChannel::InjectLoseNextShipment() { lose_next_shipment_ = true; }

void ShipmentChannel::InjectDelayNextShipment(double extra_sec) {
  if (extra_sec > 0.0) {
    extra_transit_next_sec_ += extra_sec;
  }
}

void ShipmentChannel::Dispatch() {
  if (staged_.empty()) {
    // An injected mishap aimed at an empty courier run has nothing to
    // destroy; it does not carry over to the next real shipment.
    lose_next_shipment_ = false;
    extra_transit_next_sec_ = 0.0;
    return;
  }
  // Pack files onto disks first-fit in arrival order.
  int64_t batch_capacity = config_.disk_capacity_bytes;
  int disks_used = 1;
  std::vector<std::vector<PendingItem>> disks(1);
  int64_t space_left = batch_capacity;
  size_t taken = 0;
  for (; taken < staged_.size(); ++taken) {
    PendingItem& pending = staged_[taken];
    if (pending.item.bytes > space_left) {
      if (disks_used == config_.disks_per_shipment) {
        break;  // Shipment full; the rest waits for the next courier.
      }
      ++disks_used;
      disks.emplace_back();
      space_left = batch_capacity;
    }
    space_left -= pending.item.bytes;
    disks.back().push_back(std::move(pending));
  }
  staged_.erase(staged_.begin(), staged_.begin() + taken);
  ++shipments_;
  handling_seconds_ += config_.per_disk_handling_sec * disks_used;

  bool whole_shipment_lost = lose_next_shipment_;
  lose_next_shipment_ = false;
  if (whole_shipment_lost) {
    ++shipments_lost_;
    DFLOW_LOG(Warning) << "shipment channel '" << name_
                       << "': shipment #" << shipments_
                       << " destroyed in transit";
  }
  double transit_sec = config_.transit_time_sec + extra_transit_next_sec_;
  delay_injected_seconds_ += extra_transit_next_sec_;
  extra_transit_next_sec_ = 0.0;

  // Decide per-disk damage and per-file corruption up front so the
  // delivery event is self-contained.
  for (auto& disk : disks) {
    bool damaged =
        rng_.Bernoulli(config_.disk_damage_probability) || whole_shipment_lost;
    for (auto& pending : disk) {
      DeliveryOutcome outcome = DeliveryOutcome::kDelivered;
      if (damaged) {
        outcome = DeliveryOutcome::kLost;
      } else if (rng_.Bernoulli(config_.file_corruption_probability)) {
        outcome = DeliveryOutcome::kCorrupted;
      }
      if (outcome == DeliveryOutcome::kCorrupted &&
          !pending.item.payload.empty()) {
        // Silent media corruption: flip a byte and deliver "intact"; the
        // recipient's manifest CRC is what catches it.
        size_t pos = static_cast<size_t>(rng_.Uniform(
            0, static_cast<int64_t>(pending.item.payload.size()) - 1));
        pending.item.payload[pos] =
            static_cast<char>(pending.item.payload[pos] ^ 0x01);
        outcome = DeliveryOutcome::kDelivered;
        ++items_corrupted_;
      }
      simulation_->Schedule(
          transit_sec,
          [this, item = std::move(pending.item), outcome,
           cb = std::move(pending.on_delivery)] {
            switch (outcome) {
              case DeliveryOutcome::kDelivered:
                bytes_delivered_ += item.bytes;
                ++items_delivered_;
                break;
              case DeliveryOutcome::kCorrupted:
                ++items_corrupted_;
                break;
              case DeliveryOutcome::kLost:
                ++items_lost_;
                break;
            }
            if (cb) {
              cb(item, outcome);
            }
          });
    }
  }
}

}  // namespace dflow::net
