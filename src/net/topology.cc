#include "net/topology.h"

#include <set>

namespace dflow::net {
namespace {

/// FNV-1a over the link name, mixed with the master seed — stable across
/// platforms, so per-link fault draws replay identically everywhere.
uint64_t ForkSeed(uint64_t seed, const std::string& link_name) {
  uint64_t h = 0xcbf29ce484222325ull ^ seed;
  for (unsigned char c : link_name) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

Topology::Topology(sim::Simulation* simulation, TopologyConfig config)
    : simulation_(simulation), config_(config) {}

Status Topology::AddNode(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("node name must not be empty");
  }
  if (name.find("->") != std::string::npos) {
    return Status::InvalidArgument("node name '" + name +
                                   "' contains the link separator '->'");
  }
  if (!nodes_.emplace(name, true).second) {
    return Status::AlreadyExists("node '" + name + "' already in topology");
  }
  return Status::OK();
}

std::string Topology::LinkName(const std::string& from,
                               const std::string& to) {
  return from + "->" + to;
}

Status Topology::Connect(const std::string& from, const std::string& to) {
  return Connect(from, to, config_.link);
}

Status Topology::Connect(const std::string& from, const std::string& to,
                         NetworkLinkConfig config) {
  if (nodes_.count(from) == 0) {
    return Status::NotFound("node '" + from + "' not in topology");
  }
  if (nodes_.count(to) == 0) {
    return Status::NotFound("node '" + to + "' not in topology");
  }
  if (from == to) {
    return Status::InvalidArgument("self-link '" + from + "' not allowed");
  }
  auto key = std::make_pair(from, to);
  if (links_.count(key) != 0) {
    return Status::AlreadyExists("link " + LinkName(from, to) +
                                 " already connected");
  }
  std::string name = LinkName(from, to);
  uint64_t seed = ForkSeed(config_.seed, name);
  links_.emplace(key, std::make_unique<NetworkLink>(simulation_, name,
                                                    config, seed));
  return Status::OK();
}

Status Topology::FullMesh() {
  for (const auto& [from, unused_f] : nodes_) {
    for (const auto& [to, unused_t] : nodes_) {
      if (from == to || links_.count({from, to}) != 0) {
        continue;
      }
      Status status = Connect(from, to);
      if (!status.ok()) {
        return status;
      }
    }
  }
  return Status::OK();
}

Result<NetworkLink*> Topology::LinkBetween(const std::string& from,
                                           const std::string& to) const {
  auto it = links_.find({from, to});
  if (it == links_.end()) {
    return Status::NotFound("no link " + LinkName(from, to));
  }
  return it->second.get();
}

Result<std::vector<std::vector<std::string>>> Topology::ParseGroups(
    const std::string& spec) {
  if (spec.empty()) {
    return Status::InvalidArgument("partition spec must not be empty");
  }
  std::vector<std::vector<std::string>> groups;
  std::set<std::string> seen;
  std::vector<std::string> group;
  std::string token;
  auto flush_token = [&]() -> Status {
    if (token.empty()) {
      return Status::InvalidArgument("partition spec '" + spec +
                                     "' has an empty node name");
    }
    if (!seen.insert(token).second) {
      return Status::InvalidArgument("partition spec '" + spec +
                                     "' names '" + token + "' twice");
    }
    group.push_back(token);
    token.clear();
    return Status::OK();
  };
  for (char c : spec) {
    if (c == ',') {
      Status flushed = flush_token();
      if (!flushed.ok()) {
        return flushed;
      }
    } else if (c == '|') {
      Status flushed = flush_token();
      if (!flushed.ok()) {
        return flushed;
      }
      groups.push_back(std::move(group));
      group.clear();
    } else {
      token.push_back(c);
    }
  }
  Status flushed = flush_token();
  if (!flushed.ok()) {
    return flushed;
  }
  groups.push_back(std::move(group));
  if (groups.size() < 2) {
    return Status::InvalidArgument("partition spec '" + spec +
                                   "' needs at least two groups");
  }
  return groups;
}

Status Topology::CutLink(const std::string& from, const std::string& to,
                         double duration_sec) {
  if (duration_sec <= 0.0) {
    return Status::InvalidArgument("cut duration must be > 0");
  }
  DFLOW_ASSIGN_OR_RETURN(NetworkLink * link, LinkBetween(from, to));
  link->InjectOutage(duration_sec);
  return Status::OK();
}

Status Topology::Partition(const std::string& group_spec,
                           double duration_sec) {
  DFLOW_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> groups,
                         ParseGroups(group_spec));
  for (const auto& group : groups) {
    for (const std::string& name : group) {
      if (nodes_.count(name) == 0) {
        return Status::NotFound("partition names unknown node '" + name +
                                "'");
      }
    }
  }
  // Group index per node, then cut every existing cross-group edge both
  // ways (each direction is its own link, so each takes its own window).
  std::map<std::string, size_t> group_of;
  for (size_t g = 0; g < groups.size(); ++g) {
    for (const std::string& name : groups[g]) {
      group_of[name] = g;
    }
  }
  for (const auto& [key, link] : links_) {
    auto from_it = group_of.find(key.first);
    auto to_it = group_of.find(key.second);
    if (from_it == group_of.end() || to_it == group_of.end() ||
        from_it->second == to_it->second) {
      continue;
    }
    link->InjectOutage(duration_sec);
  }
  return Status::OK();
}

bool Topology::Reachable(const std::string& from,
                         const std::string& to) const {
  if (from == to) {
    return true;
  }
  auto it = links_.find({from, to});
  return it != links_.end() && !it->second->IsDown();
}

std::string Topology::ReachabilityMatrix() const {
  std::string out;
  for (const auto& [key, link] : links_) {
    out += link->name();
    out += link->IsDown() ? " down\n" : " up\n";
  }
  return out;
}

std::vector<std::string> Topology::nodes() const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const auto& [name, unused] : nodes_) {
    names.push_back(name);
  }
  return names;
}

std::vector<NetworkLink*> Topology::links() const {
  std::vector<NetworkLink*> out;
  out.reserve(links_.size());
  for (const auto& [key, link] : links_) {
    out.push_back(link.get());
  }
  return out;
}

}  // namespace dflow::net
