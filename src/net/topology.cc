#include "net/topology.h"

namespace dflow::net {
namespace {

/// FNV-1a over the link name, mixed with the master seed — stable across
/// platforms, so per-link fault draws replay identically everywhere.
uint64_t ForkSeed(uint64_t seed, const std::string& link_name) {
  uint64_t h = 0xcbf29ce484222325ull ^ seed;
  for (unsigned char c : link_name) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

Topology::Topology(sim::Simulation* simulation, TopologyConfig config)
    : simulation_(simulation), config_(config) {}

Status Topology::AddNode(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("node name must not be empty");
  }
  if (name.find("->") != std::string::npos) {
    return Status::InvalidArgument("node name '" + name +
                                   "' contains the link separator '->'");
  }
  if (!nodes_.emplace(name, true).second) {
    return Status::AlreadyExists("node '" + name + "' already in topology");
  }
  return Status::OK();
}

std::string Topology::LinkName(const std::string& from,
                               const std::string& to) {
  return from + "->" + to;
}

Status Topology::Connect(const std::string& from, const std::string& to) {
  return Connect(from, to, config_.link);
}

Status Topology::Connect(const std::string& from, const std::string& to,
                         NetworkLinkConfig config) {
  if (nodes_.count(from) == 0) {
    return Status::NotFound("node '" + from + "' not in topology");
  }
  if (nodes_.count(to) == 0) {
    return Status::NotFound("node '" + to + "' not in topology");
  }
  if (from == to) {
    return Status::InvalidArgument("self-link '" + from + "' not allowed");
  }
  auto key = std::make_pair(from, to);
  if (links_.count(key) != 0) {
    return Status::AlreadyExists("link " + LinkName(from, to) +
                                 " already connected");
  }
  std::string name = LinkName(from, to);
  uint64_t seed = ForkSeed(config_.seed, name);
  links_.emplace(key, std::make_unique<NetworkLink>(simulation_, name,
                                                    config, seed));
  return Status::OK();
}

Status Topology::FullMesh() {
  for (const auto& [from, unused_f] : nodes_) {
    for (const auto& [to, unused_t] : nodes_) {
      if (from == to || links_.count({from, to}) != 0) {
        continue;
      }
      Status status = Connect(from, to);
      if (!status.ok()) {
        return status;
      }
    }
  }
  return Status::OK();
}

Result<NetworkLink*> Topology::LinkBetween(const std::string& from,
                                           const std::string& to) const {
  auto it = links_.find({from, to});
  if (it == links_.end()) {
    return Status::NotFound("no link " + LinkName(from, to));
  }
  return it->second.get();
}

std::vector<std::string> Topology::nodes() const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const auto& [name, unused] : nodes_) {
    names.push_back(name);
  }
  return names;
}

std::vector<NetworkLink*> Topology::links() const {
  std::vector<NetworkLink*> out;
  out.reserve(links_.size());
  for (const auto& [key, link] : links_) {
    out.push_back(link.get());
  }
  return out;
}

}  // namespace dflow::net
