#ifndef DFLOW_NET_TRANSFER_H_
#define DFLOW_NET_TRANSFER_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/channel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulation.h"

namespace dflow::net {

/// A manifest accompanying a batch of files: names, sizes, checksums.
/// The receiving side verifies each arrival against it; missing or
/// mismatched entries are re-requested. This is the "assessment and
/// maintenance of data integrity; tracking and logging; ensuring no data
/// loss" machinery of §2.2 in executable form.
class TransferManifest {
 public:
  void Add(const TransferItem& item);
  bool Contains(const std::string& name) const;
  /// OK if (name, bytes, crc) matches the manifest AND, for items carrying
  /// a real payload, the payload's CRC-32 matches the manifest checksum —
  /// this is what catches a channel's silent bit-flips. Corruption
  /// otherwise.
  Status Verify(const TransferItem& item) const;
  size_t size() const { return items_.size(); }
  int64_t TotalBytes() const;
  const std::map<std::string, TransferItem>& items() const { return items_; }

 private:
  std::map<std::string, TransferItem> items_;
};

/// Reliable delivery on top of an unreliable Channel: sends every file,
/// verifies arrivals against the manifest (including payload CRC-32 for
/// items that carry real bytes), and re-sends corrupted or lost files
/// until everything lands (up to a retry cap). Retransmits always restart
/// from the sender's pristine manifest copy, never from the damaged
/// arrival, and optionally back off exponentially in virtual time.
/// Completion fires when the whole manifest is delivered intact.
class TransferScheduler {
 public:
  TransferScheduler(sim::Simulation* simulation, Channel* channel,
                    int max_retries = 5);

  /// Virtual-time delay before retry k is initial * multiplier^(k-1)
  /// (default 0: immediate re-send, the seed behavior).
  void SetRetryBackoff(double initial_sec, double multiplier = 2.0);

  /// Queues all `items` and runs them to completion under the simulation.
  /// `on_all_delivered` fires (virtual time) once every item is verified.
  Status SendAll(std::vector<TransferItem> items,
                 std::function<void()> on_all_delivered);

  /// Attaches observability hooks (borrowed; either may be null). With a
  /// tracer, every send attempt emits one virtual-time "net.transfer" span
  /// (channel latency, with name/attempt/outcome args) and every
  /// retransmit an instant event. With a registry, counters are mirrored
  /// under "net.transfer.delivered", ".retries", ".failures". Attach
  /// before SendAll().
  void SetObserver(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  int64_t retries() const { return retries_; }
  int64_t failures() const { return failures_; }
  const TransferManifest& manifest() const { return manifest_; }
  bool AllDelivered() const { return outstanding_ == 0 && started_; }

 private:
  void SendOne(TransferItem item, int attempt);
  void Resend(const std::string& name, int attempt);
  /// The configured tracer if currently enabled, else null.
  obs::Tracer* ActiveTracer() const {
    return tracer_ != nullptr && tracer_->enabled() ? tracer_ : nullptr;
  }

  sim::Simulation* simulation_;
  Channel* channel_;
  int max_retries_;
  double backoff_initial_sec_ = 0.0;
  double backoff_multiplier_ = 2.0;
  TransferManifest manifest_;
  int64_t outstanding_ = 0;
  int64_t retries_ = 0;
  int64_t failures_ = 0;
  bool started_ = false;
  std::function<void()> on_all_delivered_;

  // Observability (both null until SetObserver).
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  struct ObsCounters {
    obs::Counter* delivered = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* failures = nullptr;
  };
  ObsCounters obs_;
};

}  // namespace dflow::net

#endif  // DFLOW_NET_TRANSFER_H_
