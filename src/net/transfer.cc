#include "net/transfer.h"

#include <cmath>
#include <utility>

#include "util/crc32.h"
#include "util/logging.h"

namespace dflow::net {

namespace {

/// Virtual seconds -> trace microseconds.
int64_t UsOf(double seconds) {
  return static_cast<int64_t>(std::llround(seconds * 1e6));
}

/// Registry-mirror bump: a no-op branch unless a registry was attached.
inline void Bump(obs::Counter* counter) {
  if (counter != nullptr) {
    counter->Add(1);
  }
}

const char* OutcomeLabel(DeliveryOutcome outcome, bool verified) {
  switch (outcome) {
    case DeliveryOutcome::kDelivered:
      return verified ? "delivered" : "verify_failed";
    case DeliveryOutcome::kCorrupted:
      return "corrupted";
    case DeliveryOutcome::kLost:
      return "lost";
  }
  return "unknown";
}

}  // namespace

void TransferManifest::Add(const TransferItem& item) {
  items_[item.name] = item;
}

bool TransferManifest::Contains(const std::string& name) const {
  return items_.count(name) > 0;
}

Status TransferManifest::Verify(const TransferItem& item) const {
  auto it = items_.find(item.name);
  if (it == items_.end()) {
    return Status::NotFound("'" + item.name + "' not in manifest");
  }
  if (it->second.bytes != item.bytes || it->second.crc32 != item.crc32) {
    return Status::Corruption("'" + item.name + "' fails manifest check");
  }
  if (!item.payload.empty() || !it->second.payload.empty()) {
    // A payload-carrying file must hash to the manifest checksum; this is
    // the line of defence against channels that flip bits silently.
    if (Crc32::Of(item.payload) != it->second.crc32) {
      return Status::Corruption("'" + item.name +
                                "' payload fails its CRC-32 check");
    }
  }
  return Status::OK();
}

int64_t TransferManifest::TotalBytes() const {
  int64_t total = 0;
  for (const auto& [name, item] : items_) {
    total += item.bytes;
  }
  return total;
}

TransferScheduler::TransferScheduler(sim::Simulation* simulation,
                                     Channel* channel, int max_retries)
    : simulation_(simulation), channel_(channel), max_retries_(max_retries) {
  DFLOW_CHECK(simulation_ != nullptr);
  DFLOW_CHECK(channel_ != nullptr);
}

void TransferScheduler::SetObserver(obs::Tracer* tracer,
                                    obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
  if (metrics_ != nullptr) {
    obs_.delivered = metrics_->GetCounter("net.transfer.delivered");
    obs_.retries = metrics_->GetCounter("net.transfer.retries");
    obs_.failures = metrics_->GetCounter("net.transfer.failures");
  } else {
    obs_ = ObsCounters{};
  }
}

Status TransferScheduler::SendAll(std::vector<TransferItem> items,
                                  std::function<void()> on_all_delivered) {
  if (started_) {
    return Status::FailedPrecondition("scheduler already started");
  }
  started_ = true;
  on_all_delivered_ = std::move(on_all_delivered);
  outstanding_ = static_cast<int64_t>(items.size());
  for (TransferItem& item : items) {
    manifest_.Add(item);
  }
  if (outstanding_ == 0) {
    if (on_all_delivered_) {
      simulation_->Schedule(0.0, on_all_delivered_);
    }
    return Status::OK();
  }
  for (TransferItem& item : items) {
    SendOne(std::move(item), 0);
  }
  return Status::OK();
}

void TransferScheduler::SetRetryBackoff(double initial_sec,
                                        double multiplier) {
  backoff_initial_sec_ = initial_sec < 0.0 ? 0.0 : initial_sec;
  backoff_multiplier_ = multiplier < 1.0 ? 1.0 : multiplier;
}

void TransferScheduler::Resend(const std::string& name, int attempt) {
  // Always retransmit the pristine manifest copy: re-sending the damaged
  // arrival would re-ship corrupted payload bytes forever.
  auto it = manifest_.items().find(name);
  DFLOW_CHECK(it != manifest_.items().end());
  TransferItem pristine = it->second;
  if (obs::Tracer* tracer = ActiveTracer()) {
    tracer->InstantEvent("net.retransmit", "net",
                         {{"name", name},
                          {"attempt", std::to_string(attempt)}});
  }
  if (backoff_initial_sec_ <= 0.0) {
    SendOne(std::move(pristine), attempt);
    return;
  }
  double delay = backoff_initial_sec_;
  for (int i = 1; i < attempt; ++i) {
    delay *= backoff_multiplier_;
  }
  simulation_->Schedule(delay, [this, pristine = std::move(pristine),
                                attempt]() mutable {
    SendOne(std::move(pristine), attempt);
  });
}

void TransferScheduler::SendOne(TransferItem item, int attempt) {
  double send_sec = simulation_->Now();
  Status s = channel_->Send(
      item, [this, attempt, send_sec](const TransferItem& delivered,
                                      DeliveryOutcome outcome) {
        bool ok = outcome == DeliveryOutcome::kDelivered &&
                  manifest_.Verify(delivered).ok();
        if (obs::Tracer* tracer = ActiveTracer()) {
          // One span per attempt: the channel latency of this send.
          double end_sec = simulation_->Now();
          tracer->CompleteEvent(
              "net.transfer", "net", UsOf(send_sec),
              UsOf(end_sec - send_sec),
              {{"name", delivered.name},
               {"attempt", std::to_string(attempt)},
               {"bytes", std::to_string(delivered.bytes)},
               {"outcome", OutcomeLabel(outcome, ok)}});
        }
        if (!ok) {
          if (attempt + 1 > max_retries_) {
            ++failures_;
            Bump(obs_.failures);
            DFLOW_LOG(Error) << "transfer of '" << delivered.name
                             << "' failed permanently";
          } else {
            ++retries_;
            Bump(obs_.retries);
            Resend(delivered.name, attempt + 1);
            return;
          }
        } else {
          Bump(obs_.delivered);
        }
        if (--outstanding_ == 0 && on_all_delivered_) {
          on_all_delivered_();
        }
      });
  if (!s.ok()) {
    DFLOW_LOG(Error) << "send failed: " << s.ToString();
    ++failures_;
    Bump(obs_.failures);
    if (--outstanding_ == 0 && on_all_delivered_) {
      on_all_delivered_();
    }
  }
}

}  // namespace dflow::net
