#include "net/transfer.h"

#include <utility>

#include "util/crc32.h"
#include "util/logging.h"

namespace dflow::net {

void TransferManifest::Add(const TransferItem& item) {
  items_[item.name] = item;
}

bool TransferManifest::Contains(const std::string& name) const {
  return items_.count(name) > 0;
}

Status TransferManifest::Verify(const TransferItem& item) const {
  auto it = items_.find(item.name);
  if (it == items_.end()) {
    return Status::NotFound("'" + item.name + "' not in manifest");
  }
  if (it->second.bytes != item.bytes || it->second.crc32 != item.crc32) {
    return Status::Corruption("'" + item.name + "' fails manifest check");
  }
  if (!item.payload.empty() || !it->second.payload.empty()) {
    // A payload-carrying file must hash to the manifest checksum; this is
    // the line of defence against channels that flip bits silently.
    if (Crc32::Of(item.payload) != it->second.crc32) {
      return Status::Corruption("'" + item.name +
                                "' payload fails its CRC-32 check");
    }
  }
  return Status::OK();
}

int64_t TransferManifest::TotalBytes() const {
  int64_t total = 0;
  for (const auto& [name, item] : items_) {
    total += item.bytes;
  }
  return total;
}

TransferScheduler::TransferScheduler(sim::Simulation* simulation,
                                     Channel* channel, int max_retries)
    : simulation_(simulation), channel_(channel), max_retries_(max_retries) {
  DFLOW_CHECK(simulation_ != nullptr);
  DFLOW_CHECK(channel_ != nullptr);
}

Status TransferScheduler::SendAll(std::vector<TransferItem> items,
                                  std::function<void()> on_all_delivered) {
  if (started_) {
    return Status::FailedPrecondition("scheduler already started");
  }
  started_ = true;
  on_all_delivered_ = std::move(on_all_delivered);
  outstanding_ = static_cast<int64_t>(items.size());
  for (TransferItem& item : items) {
    manifest_.Add(item);
  }
  if (outstanding_ == 0) {
    if (on_all_delivered_) {
      simulation_->Schedule(0.0, on_all_delivered_);
    }
    return Status::OK();
  }
  for (TransferItem& item : items) {
    SendOne(std::move(item), 0);
  }
  return Status::OK();
}

void TransferScheduler::SetRetryBackoff(double initial_sec,
                                        double multiplier) {
  backoff_initial_sec_ = initial_sec < 0.0 ? 0.0 : initial_sec;
  backoff_multiplier_ = multiplier < 1.0 ? 1.0 : multiplier;
}

void TransferScheduler::Resend(const std::string& name, int attempt) {
  // Always retransmit the pristine manifest copy: re-sending the damaged
  // arrival would re-ship corrupted payload bytes forever.
  auto it = manifest_.items().find(name);
  DFLOW_CHECK(it != manifest_.items().end());
  TransferItem pristine = it->second;
  if (backoff_initial_sec_ <= 0.0) {
    SendOne(std::move(pristine), attempt);
    return;
  }
  double delay = backoff_initial_sec_;
  for (int i = 1; i < attempt; ++i) {
    delay *= backoff_multiplier_;
  }
  simulation_->Schedule(delay, [this, pristine = std::move(pristine),
                                attempt]() mutable {
    SendOne(std::move(pristine), attempt);
  });
}

void TransferScheduler::SendOne(TransferItem item, int attempt) {
  Status s = channel_->Send(
      item, [this, attempt](const TransferItem& delivered,
                            DeliveryOutcome outcome) {
        bool ok = outcome == DeliveryOutcome::kDelivered &&
                  manifest_.Verify(delivered).ok();
        if (!ok) {
          if (attempt + 1 > max_retries_) {
            ++failures_;
            DFLOW_LOG(Error) << "transfer of '" << delivered.name
                             << "' failed permanently";
          } else {
            ++retries_;
            Resend(delivered.name, attempt + 1);
            return;
          }
        }
        if (--outstanding_ == 0 && on_all_delivered_) {
          on_all_delivered_();
        }
      });
  if (!s.ok()) {
    DFLOW_LOG(Error) << "send failed: " << s.ToString();
    ++failures_;
    if (--outstanding_ == 0 && on_all_delivered_) {
      on_all_delivered_();
    }
  }
}

}  // namespace dflow::net
