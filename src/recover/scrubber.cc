#include "recover/scrubber.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/logging.h"

namespace dflow::recover {

namespace {

/// Virtual seconds -> trace microseconds.
int64_t UsOf(double seconds) {
  return static_cast<int64_t>(std::llround(seconds * 1e6));
}

}  // namespace

Scrubber::Scrubber(sim::Simulation* simulation, storage::TapeLibrary* primary,
                   storage::TapeLibrary* replica, ScrubberConfig config)
    : simulation_(simulation), primary_(primary), replica_(replica),
      config_(config) {
  DFLOW_CHECK(simulation_ != nullptr);
  DFLOW_CHECK(primary_ != nullptr);
  DFLOW_CHECK(config_.files_per_cycle > 0);
  DFLOW_CHECK(config_.cycle_interval_sec >= 0.0);
  DFLOW_CHECK(config_.passes >= 1);
}

void Scrubber::SetObserver(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
  if (metrics_ != nullptr) {
    obs_.files_scanned = metrics_->GetCounter("scrub.files_scanned");
    obs_.bad_blocks_found = metrics_->GetCounter("scrub.bad_blocks_found");
    obs_.silent_corruption_found =
        metrics_->GetCounter("scrub.silent_corruption_found");
    obs_.tickets_filed = metrics_->GetCounter("scrub.tickets_filed");
    obs_.tickets_deduped = metrics_->GetCounter("scrub.tickets_deduped");
    obs_.repairs_local = metrics_->GetCounter("scrub.repairs_local");
    obs_.restored_from_replica =
        metrics_->GetCounter("scrub.restored_from_replica");
    obs_.already_repaired = metrics_->GetCounter("scrub.already_repaired");
    obs_.unrecoverable = metrics_->GetCounter("scrub.unrecoverable");
    obs_.passes = metrics_->GetCounter("scrub.passes");
  } else {
    obs_ = ObsCounters{};
  }
}

Status Scrubber::Start() {
  if (started_) {
    return Status::FailedPrecondition("scrubber already started");
  }
  started_ = true;
  simulation_->Schedule(config_.cycle_interval_sec, [this] { RunCycle(); });
  return Status::OK();
}

void Scrubber::RunCycle() {
  if (cursor_ >= worklist_.size()) {
    // Fresh pass: snapshot the namespace (sorted — the migration walk
    // order), so files archived mid-pass are picked up next pass.
    worklist_ = primary_->FileNames();
    cursor_ = 0;
    if (worklist_.empty()) {
      // Nothing archived yet; try again next cycle unless out of passes.
      ++passes_completed_;
      Bump(obs_.passes);
      if (passes_completed_ < config_.passes) {
        simulation_->Schedule(config_.cycle_interval_sec,
                              [this] { RunCycle(); });
      }
      return;
    }
  }
  double cycle_start = simulation_->Now();
  size_t end = std::min(cursor_ + static_cast<size_t>(config_.files_per_cycle),
                        worklist_.size());
  int scanned_this_cycle = 0;
  for (; cursor_ < end; ++cursor_) {
    ScrubFile(worklist_[cursor_]);
    ++scanned_this_cycle;
  }
  if (obs::Tracer* tracer = ActiveTracer()) {
    tracer->CompleteEvent("scrub.cycle", "recover", UsOf(cycle_start), 0,
                          {{"files", std::to_string(scanned_this_cycle)},
                           {"cursor", std::to_string(cursor_)}});
  }
  bool pass_done = cursor_ >= worklist_.size();
  if (pass_done) {
    ++passes_completed_;
    Bump(obs_.passes);
  }
  if (!pass_done || passes_completed_ < config_.passes) {
    simulation_->Schedule(config_.cycle_interval_sec, [this] { RunCycle(); });
  }
}

void Scrubber::ScrubFile(const std::string& file) {
  // A scrub verification is a full read: it pays drive mount + stream time
  // and surfaces loud bad blocks exactly like a production recall. The
  // checksum comparison afterwards catches silent bit rot the read does
  // not report.
  Status s = primary_->ReadChecked(file, [this, file](Result<int64_t> bytes) {
    ++files_scanned_;
    Bump(obs_.files_scanned);
    if (!bytes.ok()) {
      ++bad_blocks_found_;
      Bump(obs_.bad_blocks_found);
      if (obs::Tracer* tracer = ActiveTracer()) {
        tracer->InstantEvent("scrub.bad_block", "recover", {{"file", file}});
      }
      FileTicket(file, "bad_block");
      return;
    }
    if (primary_->IsSilentlyCorrupt(file)) {
      ++silent_corruption_found_;
      Bump(obs_.silent_corruption_found);
      if (obs::Tracer* tracer = ActiveTracer()) {
        tracer->InstantEvent("scrub.silent_corruption", "recover",
                             {{"file", file}});
      }
      FileTicket(file, "checksum_mismatch");
    }
  });
  if (!s.ok()) {
    // File vanished between the namespace snapshot and the read (tape
    // files are never deleted today, but stay defensive).
    DFLOW_LOG(Warning) << "scrub: cannot read '" << file
                       << "': " << s.ToString();
  }
}

void Scrubber::FileTicket(const std::string& file, const std::string& reason) {
  if (pending_tickets_.count(file) > 0) {
    // A ticket is already on its way for this file (e.g. the loud bad
    // block was also seen by an HSM recall this pass): never double-file.
    ++tickets_deduped_;
    Bump(obs_.tickets_deduped);
    return;
  }
  pending_tickets_.insert(file);
  ++tickets_filed_;
  Bump(obs_.tickets_filed);
  if (obs::Tracer* tracer = ActiveTracer()) {
    tracer->InstantEvent("scrub.ticket_filed", "recover",
                         {{"file", file}, {"reason", reason}});
  }
  DFLOW_LOG(Warning) << "scrub: ticket filed for '" << file << "' ("
                     << reason << ") at t=" << simulation_->Now();
  simulation_->Schedule(config_.operator_repair_seconds,
                        [this, file] { ExecuteTicket(file); });
}

void Scrubber::ExecuteTicket(const std::string& file) {
  pending_tickets_.erase(file);
  bool loud = primary_->HasBadBlock(file);
  bool silent = primary_->IsSilentlyCorrupt(file);
  if (!loud && !silent) {
    // Someone else fixed it first (an HSM recall's operator repair, or a
    // concurrent migration re-write). Counting — not re-repairing — is
    // the no-double-repair contract.
    ++already_repaired_;
    Bump(obs_.already_repaired);
    if (obs::Tracer* tracer = ActiveTracer()) {
      tracer->InstantEvent("scrub.already_repaired", "recover",
                           {{"file", file}});
    }
    return;
  }
  bool replica_clean = replica_ != nullptr && replica_->Contains(file) &&
                       !replica_->HasBadBlock(file) &&
                       !replica_->IsSilentlyCorrupt(file);
  if (silent && !replica_clean) {
    // Bit rot with no clean copy anywhere: nothing to restore from.
    ++unrecoverable_;
    Bump(obs_.unrecoverable);
    if (obs::Tracer* tracer = ActiveTracer()) {
      tracer->InstantEvent("scrub.unrecoverable", "recover",
                           {{"file", file}});
    }
    DFLOW_LOG(Error) << "scrub: '" << file
                     << "' silently corrupt with no clean replica";
    return;
  }
  auto finish_repair = [this, file](bool from_replica) {
    primary_->RepairBadBlock(file);
    primary_->ClearSilentCorruption(file);
    if (from_replica) {
      ++restored_from_replica_;
      Bump(obs_.restored_from_replica);
    } else {
      ++repairs_local_;
      Bump(obs_.repairs_local);
    }
    if (obs::Tracer* tracer = ActiveTracer()) {
      tracer->InstantEvent("scrub.repaired", "recover",
                           {{"file", file},
                            {"source", from_replica ? "replica" : "local"}});
    }
  };
  if (replica_clean) {
    // Restoring means reading the surviving copy — real drive time on the
    // replica library — then re-writing the primary medium.
    Status s = replica_->ReadChecked(
        file, [this, file, finish_repair](Result<int64_t> bytes) {
          if (!bytes.ok()) {
            // The replica developed a fault between the check and the
            // read; fall back to the local operator repair if the failure
            // was loud, else give up.
            if (primary_->HasBadBlock(file)) {
              finish_repair(/*from_replica=*/false);
            } else {
              ++unrecoverable_;
              Bump(obs_.unrecoverable);
            }
            return;
          }
          finish_repair(/*from_replica=*/true);
        });
    if (s.ok()) {
      return;
    }
    DFLOW_LOG(Warning) << "scrub: replica read of '" << file
                       << "' failed: " << s.ToString();
  }
  // No replica path: the operator can clear a loud bad block in place
  // (re-tension / re-write from the drive's error-corrected stream).
  finish_repair(/*from_replica=*/false);
}

}  // namespace dflow::recover
