#ifndef DFLOW_RECOVER_JOURNAL_H_
#define DFLOW_RECOVER_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"

namespace dflow::recover {

/// A crash-durable image of one data product: exactly the fields a
/// resumed pipeline needs to re-emit the product without re-executing the
/// stage that made it. Provenance is deliberately NOT stored — the resumed
/// run re-stamps it through the normal FlowRunner path, which is provably
/// byte-identical because the virtual timeline replays exactly (and it
/// keeps journal records small).
struct JournaledProduct {
  std::string name;
  int64_t bytes = 0;
  /// Sorted key/value attribute pairs (std::map iteration order).
  std::vector<std::pair<std::string, std::string>> attributes;
};

/// One terminal per-(stage, input-product) event of a pipeline run:
/// either the product completed the stage (after zero or more failed
/// attempts) and emitted `outputs`, or it exhausted its retry budget and
/// was dead-lettered with `error`. A record is written once, as a single
/// CRC-framed journal append, when the terminal event happens — so a torn
/// tail can only lose whole events, never leave a half-described one.
struct StageEventRecord {
  enum class Kind : uint8_t { kCompleted = 1, kDeadLettered = 2 };

  Kind kind = Kind::kCompleted;
  std::string stage;
  std::string input;  // Input product name (unique per stage per run).
  /// One entry per FAILED attempt, in attempt order; true = the failure
  /// was an injected fault (consumed one unit of the stage's
  /// forced-failure budget). For kCompleted these are the attempts before
  /// the final, successful one (total attempts = size + 1); for
  /// kDeadLettered every attempt failed, including the fatal last one
  /// (total attempts = size).
  std::vector<bool> injected_failures;
  /// kCompleted only: the products the stage emitted.
  std::vector<JournaledProduct> outputs;
  /// kDeadLettered only: the error string of the final attempt (the one
  /// the DeadLetter carries and Report() prints).
  std::string error;

  /// Length-delimited binary serialization (ByteWriter format).
  std::string Encode() const;
  static Result<StageEventRecord> Decode(std::string_view payload);
};

/// Append-only, CRC-framed checkpoint journal — the db::wal framing
/// discipline (u32 length, u32 CRC-32, payload) applied to pipeline
/// terminal events, with explicit durability control:
///
///   * Append() buffers the framed record in memory and flushes every
///     `sync_every` appends (the checkpoint granularity knob: redo work
///     after a crash is bounded by `sync_every - 1` completed-but-unsynced
///     events plus whatever was in flight).
///   * Dead-letter records are flushed IMMEDIATELY regardless of
///     `sync_every` — a parked product must survive the process that
///     parked it (operations staff grep the journal next morning).
///   * A SIGKILL loses only the in-memory pending buffer; everything
///     flushed is on disk. A kill mid-flush leaves a torn tail record that
///     replay drops (db::WalReadAll semantics), never a corrupt prefix.
class CheckpointJournal {
 public:
  struct Options {
    /// Flush after this many buffered appends. 1 = every terminal event is
    /// durable before the next simulation event runs.
    int sync_every = 1;
  };

  ~CheckpointJournal();

  CheckpointJournal(const CheckpointJournal&) = delete;
  CheckpointJournal& operator=(const CheckpointJournal&) = delete;

  /// Opens `path` for appending (creates it if missing).
  static Result<std::unique_ptr<CheckpointJournal>> Open(
      const std::string& path, Options options);
  static Result<std::unique_ptr<CheckpointJournal>> Open(
      const std::string& path);

  /// Buffers one record; dead-letter records force an immediate Sync().
  Status Append(const StageEventRecord& record);

  /// Flushes the pending buffer to the file and fflushes it, making every
  /// appended record kill-durable (page cache survives SIGKILL).
  Status Sync();

  /// Crash-emulation hook for benches/tests: drops the pending (unsynced)
  /// buffer and closes the file WITHOUT flushing — exactly what SIGKILL
  /// does to this process's view of the journal. The journal is unusable
  /// afterwards.
  void Abandon();

  int64_t records_appended() const { return records_appended_; }
  int64_t records_synced() const { return records_synced_; }
  int64_t syncs() const { return syncs_; }
  int64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

 private:
  CheckpointJournal(std::FILE* file, std::string path, Options options)
      : file_(file), path_(std::move(path)), options_(options) {}

  std::FILE* file_;
  std::string path_;
  Options options_;
  std::string pending_;          // Framed records awaiting a flush.
  int64_t pending_records_ = 0;  // Records inside pending_.
  int64_t records_appended_ = 0;
  int64_t records_synced_ = 0;
  int64_t syncs_ = 0;
  int64_t bytes_written_ = 0;
};

/// Read side: loads every intact record from a journal file (torn or
/// corrupt tail records terminate the scan silently, the WAL recovery
/// contract) and indexes them by (stage, input product name) for O(log n)
/// replay lookups. Duplicate keys keep the FIRST record (idempotent
/// resume-after-resume appends).
class JournalReplay {
 public:
  JournalReplay() = default;

  /// NotFound if the file does not exist; Corruption if an intact frame
  /// fails to parse (CRC passed but the payload is not a StageEventRecord
  /// — a format-version or writer bug, not a torn tail).
  static Result<JournalReplay> Load(const std::string& path);

  /// The terminal event for `input` at `stage`, or null if the journal has
  /// none (the product must be re-executed live).
  const StageEventRecord* Find(const std::string& stage,
                               const std::string& input) const;

  /// Every terminal record keyed by (stage, input), in key order — for
  /// consumers that rebuild state by iterating the whole journal (the
  /// cluster tier's node rejoin) rather than probing with Find().
  const std::map<std::pair<std::string, std::string>, StageEventRecord>&
  entries() const {
    return entries_;
  }

  size_t size() const { return entries_.size(); }
  int64_t completed() const { return completed_; }
  int64_t dead_lettered() const { return dead_lettered_; }
  int64_t duplicates_ignored() const { return duplicates_ignored_; }

 private:
  std::map<std::pair<std::string, std::string>, StageEventRecord> entries_;
  int64_t completed_ = 0;
  int64_t dead_lettered_ = 0;
  int64_t duplicates_ignored_ = 0;
};

}  // namespace dflow::recover

#endif  // DFLOW_RECOVER_JOURNAL_H_
