#ifndef DFLOW_RECOVER_SCRUBBER_H_
#define DFLOW_RECOVER_SCRUBBER_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulation.h"
#include "storage/tape.h"
#include "util/result.h"

namespace dflow::recover {

/// Scrub cadence and repair discipline.
struct ScrubberConfig {
  /// Virtual seconds between scrub cycles (the background cadence; CLEO's
  /// HSM would run this off-shift).
  double cycle_interval_sec = 6.0 * 3600.0;
  /// Files verified per cycle. Each verification is a real tape read — it
  /// pays mount + stream time and contends for drives with production
  /// recalls, which is why the rate is bounded.
  int files_per_cycle = 8;
  /// Delay before a filed repair ticket is executed (an operator walks to
  /// the library — the PR 1 `HsmFaultPolicy::operator_repair_seconds`
  /// discipline).
  double operator_repair_seconds = 900.0;
  /// Full passes over the namespace before the scrubber goes quiet (the
  /// simulation runs to completion when the event queue drains, so the
  /// scrubber must terminate; production would set this high).
  int passes = 1;
};

/// Background storage scrubber: walks a tape archive verifying every file
/// end-to-end (a full read catches loud bad blocks; a stored-checksum
/// comparison catches silent bit rot), files deduplicated repair tickets
/// through the PR 1 operator-repair path, and restores corrupted files
/// from the surviving replica copy — the paper's archives all keep one
/// (Arecibo's dual archival copies, CLEO's HSM sibling tapes, WebLab's
/// Internet-Archive sibling).
///
/// Repair semantics:
///   * loud bad block  -> operator repair on the primary (re-tension /
///     re-write), counted in `repairs_local`; if a replica holds a clean
///     copy the restore is attributed to it (`restored_from_replica`).
///   * silent corruption -> can only be fixed from a clean replica copy
///     (`restored_from_replica`); with no clean copy anywhere the file is
///     counted `unrecoverable` and left for manual triage.
///   * a file already repaired by the time the ticket executes (e.g. an
///     HSM recall's own operator repair raced the scrub ticket) counts as
///     `already_repaired` — never a double repair.
///   * at most one pending ticket per file (`tickets_deduped` counts the
///     suppressed duplicates) — never a lost ticket: every detection
///     either joins an existing ticket or files a new one.
///
/// Observability: with SetObserver, counters land under "scrub.*" and each
/// cycle emits a virtual-time span plus instants for detections/repairs.
class Scrubber {
 public:
  /// `replica` may be null (no surviving copy to restore from). Borrowed
  /// pointers must outlive the scrubber.
  Scrubber(sim::Simulation* simulation, storage::TapeLibrary* primary,
           storage::TapeLibrary* replica, ScrubberConfig config);

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  /// Attaches observability hooks (borrowed; either may be null).
  void SetObserver(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  /// Schedules the first cycle `cycle_interval_sec` from now.
  /// FailedPrecondition if already started.
  Status Start();

  int64_t files_scanned() const { return files_scanned_; }
  int64_t bad_blocks_found() const { return bad_blocks_found_; }
  int64_t silent_corruption_found() const { return silent_corruption_found_; }
  int64_t tickets_filed() const { return tickets_filed_; }
  int64_t tickets_deduped() const { return tickets_deduped_; }
  int64_t repairs_local() const { return repairs_local_; }
  int64_t restored_from_replica() const { return restored_from_replica_; }
  int64_t already_repaired() const { return already_repaired_; }
  int64_t unrecoverable() const { return unrecoverable_; }
  int passes_completed() const { return passes_completed_; }
  /// Tickets filed but not yet executed.
  int64_t tickets_pending() const {
    return static_cast<int64_t>(pending_tickets_.size());
  }

 private:
  void RunCycle();
  void ScrubFile(const std::string& file);
  void FileTicket(const std::string& file, const std::string& reason);
  void ExecuteTicket(const std::string& file);
  obs::Tracer* ActiveTracer() const {
    return tracer_ != nullptr && tracer_->enabled() ? tracer_ : nullptr;
  }
  void Bump(obs::Counter* counter) {
    if (counter != nullptr) {
      counter->Add(1);
    }
  }

  sim::Simulation* simulation_;
  storage::TapeLibrary* primary_;
  storage::TapeLibrary* replica_;
  ScrubberConfig config_;

  bool started_ = false;
  std::vector<std::string> worklist_;  // Snapshot of one pass, sorted.
  size_t cursor_ = 0;
  int passes_completed_ = 0;
  std::set<std::string> pending_tickets_;

  int64_t files_scanned_ = 0;
  int64_t bad_blocks_found_ = 0;
  int64_t silent_corruption_found_ = 0;
  int64_t tickets_filed_ = 0;
  int64_t tickets_deduped_ = 0;
  int64_t repairs_local_ = 0;
  int64_t restored_from_replica_ = 0;
  int64_t already_repaired_ = 0;
  int64_t unrecoverable_ = 0;

  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  struct ObsCounters {
    obs::Counter* files_scanned = nullptr;
    obs::Counter* bad_blocks_found = nullptr;
    obs::Counter* silent_corruption_found = nullptr;
    obs::Counter* tickets_filed = nullptr;
    obs::Counter* tickets_deduped = nullptr;
    obs::Counter* repairs_local = nullptr;
    obs::Counter* restored_from_replica = nullptr;
    obs::Counter* already_repaired = nullptr;
    obs::Counter* unrecoverable = nullptr;
    obs::Counter* passes = nullptr;
  };
  ObsCounters obs_;
};

}  // namespace dflow::recover

#endif  // DFLOW_RECOVER_SCRUBBER_H_
