#include "recover/journal.h"

#include <cerrno>
#include <cstring>

#include "db/wal.h"
#include "util/byte_buffer.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace dflow::recover {

namespace {

constexpr uint8_t kFormatVersion = 1;

}  // namespace

std::string StageEventRecord::Encode() const {
  ByteWriter w;
  w.PutU8(kFormatVersion);
  w.PutU8(static_cast<uint8_t>(kind));
  w.PutString(stage);
  w.PutString(input);
  w.PutVarint(injected_failures.size());
  for (bool injected : injected_failures) {
    w.PutU8(injected ? 1 : 0);
  }
  if (kind == Kind::kCompleted) {
    w.PutVarint(outputs.size());
    for (const JournaledProduct& out : outputs) {
      w.PutString(out.name);
      w.PutI64(out.bytes);
      w.PutVarint(out.attributes.size());
      for (const auto& [key, value] : out.attributes) {
        w.PutString(key);
        w.PutString(value);
      }
    }
  } else {
    w.PutString(error);
  }
  return w.Take();
}

Result<StageEventRecord> StageEventRecord::Decode(std::string_view payload) {
  ByteReader r(payload);
  DFLOW_ASSIGN_OR_RETURN(uint8_t version, r.GetU8());
  if (version != kFormatVersion) {
    return Status::Corruption("journal record version " +
                              std::to_string(version) + " unsupported");
  }
  StageEventRecord record;
  DFLOW_ASSIGN_OR_RETURN(uint8_t kind, r.GetU8());
  if (kind != static_cast<uint8_t>(Kind::kCompleted) &&
      kind != static_cast<uint8_t>(Kind::kDeadLettered)) {
    return Status::Corruption("journal record kind " + std::to_string(kind) +
                              " unknown");
  }
  record.kind = static_cast<Kind>(kind);
  DFLOW_ASSIGN_OR_RETURN(record.stage, r.GetString());
  DFLOW_ASSIGN_OR_RETURN(record.input, r.GetString());
  DFLOW_ASSIGN_OR_RETURN(uint64_t num_failures, r.GetVarint());
  if (num_failures > (1u << 20)) {
    return Status::Corruption("implausible failure count in journal record");
  }
  record.injected_failures.reserve(num_failures);
  for (uint64_t i = 0; i < num_failures; ++i) {
    DFLOW_ASSIGN_OR_RETURN(uint8_t injected, r.GetU8());
    record.injected_failures.push_back(injected != 0);
  }
  if (record.kind == Kind::kCompleted) {
    DFLOW_ASSIGN_OR_RETURN(uint64_t num_outputs, r.GetVarint());
    if (num_outputs > (1u << 20)) {
      return Status::Corruption("implausible output count in journal record");
    }
    record.outputs.reserve(num_outputs);
    for (uint64_t i = 0; i < num_outputs; ++i) {
      JournaledProduct out;
      DFLOW_ASSIGN_OR_RETURN(out.name, r.GetString());
      DFLOW_ASSIGN_OR_RETURN(out.bytes, r.GetI64());
      DFLOW_ASSIGN_OR_RETURN(uint64_t num_attrs, r.GetVarint());
      if (num_attrs > (1u << 16)) {
        return Status::Corruption(
            "implausible attribute count in journal record");
      }
      out.attributes.reserve(num_attrs);
      for (uint64_t j = 0; j < num_attrs; ++j) {
        DFLOW_ASSIGN_OR_RETURN(std::string key, r.GetString());
        DFLOW_ASSIGN_OR_RETURN(std::string value, r.GetString());
        out.attributes.emplace_back(std::move(key), std::move(value));
      }
      record.outputs.push_back(std::move(out));
    }
  } else {
    DFLOW_ASSIGN_OR_RETURN(record.error, r.GetString());
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes in journal record");
  }
  return record;
}

CheckpointJournal::~CheckpointJournal() {
  if (file_ != nullptr) {
    // Best-effort final flush: normal destruction makes everything
    // appended durable; only Abandon() (and SIGKILL) drop the tail.
    (void)Sync();
    std::fclose(file_);
  }
}

Result<std::unique_ptr<CheckpointJournal>> CheckpointJournal::Open(
    const std::string& path) {
  return Open(path, Options{});
}

Result<std::unique_ptr<CheckpointJournal>> CheckpointJournal::Open(
    const std::string& path, Options options) {
  if (options.sync_every < 1) {
    return Status::InvalidArgument("sync_every must be >= 1");
  }
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IOError("cannot open checkpoint journal '" + path +
                           "': " + std::strerror(errno));
  }
  return std::unique_ptr<CheckpointJournal>(
      new CheckpointJournal(file, path, options));
}

Status CheckpointJournal::Append(const StageEventRecord& record) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("journal abandoned");
  }
  std::string payload = record.Encode();
  // db::wal framing discipline: u32 length, u32 CRC-32 of the payload.
  uint32_t len = static_cast<uint32_t>(payload.size());
  uint32_t crc = Crc32::Of(payload);
  char header[8];
  std::memcpy(header, &len, sizeof(len));
  std::memcpy(header + 4, &crc, sizeof(crc));
  pending_.append(header, sizeof(header));
  pending_.append(payload);
  ++pending_records_;
  ++records_appended_;
  if (record.kind == StageEventRecord::Kind::kDeadLettered ||
      pending_records_ >= options_.sync_every) {
    return Sync();
  }
  return Status::OK();
}

Status CheckpointJournal::Sync() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("journal abandoned");
  }
  if (pending_.empty()) {
    return Status::OK();
  }
  if (std::fwrite(pending_.data(), 1, pending_.size(), file_) !=
      pending_.size()) {
    return Status::IOError("journal append failed: " +
                           std::string(std::strerror(errno)));
  }
  if (std::fflush(file_) != 0) {
    return Status::IOError("journal flush failed");
  }
  bytes_written_ += static_cast<int64_t>(pending_.size());
  records_synced_ += pending_records_;
  pending_.clear();
  pending_records_ = 0;
  ++syncs_;
  return Status::OK();
}

void CheckpointJournal::Abandon() {
  if (file_ == nullptr) {
    return;
  }
  // Drop the unsynced tail on the floor — the SIGKILL view of the file.
  pending_.clear();
  pending_records_ = 0;
  std::fclose(file_);
  file_ = nullptr;
}

Result<JournalReplay> JournalReplay::Load(const std::string& path) {
  DFLOW_ASSIGN_OR_RETURN(std::vector<std::string> frames,
                         db::WalReadAll(path));
  JournalReplay replay;
  for (const std::string& frame : frames) {
    DFLOW_ASSIGN_OR_RETURN(StageEventRecord record,
                           StageEventRecord::Decode(frame));
    auto key = std::make_pair(record.stage, record.input);
    bool is_dead = record.kind == StageEventRecord::Kind::kDeadLettered;
    auto [it, inserted] = replay.entries_.emplace(std::move(key),
                                                 std::move(record));
    (void)it;
    if (!inserted) {
      ++replay.duplicates_ignored_;
      continue;
    }
    if (is_dead) {
      ++replay.dead_lettered_;
    } else {
      ++replay.completed_;
    }
  }
  return replay;
}

const StageEventRecord* JournalReplay::Find(const std::string& stage,
                                            const std::string& input) const {
  auto it = entries_.find(std::make_pair(stage, input));
  return it == entries_.end() ? nullptr : &it->second;
}

}  // namespace dflow::recover
