#include "serve/workload_gen.h"

#include <numeric>
#include <utility>

#include "serve/response_cache.h"
#include "util/logging.h"
#include "util/md5.h"

namespace dflow::serve {

WorkloadGen::WorkloadGen(std::vector<core::ServiceRequest> population,
                         double zipf_s, uint64_t seed)
    : population_(std::make_shared<const std::vector<core::ServiceRequest>>(
          std::move(population))),
      zipf_s_(zipf_s),
      rng_(seed) {
  DFLOW_CHECK(!population_->empty());
  rank_to_index_.resize(population_->size());
  std::iota(rank_to_index_.begin(), rank_to_index_.end(), size_t{0});
  rng_.Shuffle(rank_to_index_);
}

WorkloadGen::WorkloadGen(
    std::shared_ptr<const std::vector<core::ServiceRequest>> pop,
    std::vector<size_t> rank_to_index, double zipf_s, Rng rng)
    : population_(std::move(pop)),
      rank_to_index_(std::move(rank_to_index)),
      zipf_s_(zipf_s),
      rng_(std::move(rng)) {}

const core::ServiceRequest& WorkloadGen::Next() {
  int64_t rank =
      rng_.Zipf(static_cast<int64_t>(population_->size()), zipf_s_);
  return (*population_)[rank_to_index_[static_cast<size_t>(rank - 1)]];
}

std::vector<TimedRequest> WorkloadGen::OpenLoopSchedule(double rate_per_sec,
                                                        double duration_sec) {
  DFLOW_CHECK(rate_per_sec > 0.0);
  std::vector<TimedRequest> schedule;
  schedule.reserve(static_cast<size_t>(rate_per_sec * duration_sec * 1.1) +
                   16);
  double t = 0.0;
  while (true) {
    t += rng_.Exponential(rate_per_sec);
    if (t >= duration_sec) {
      break;
    }
    schedule.push_back(TimedRequest{t, Next()});
  }
  return schedule;
}

std::vector<TimedRequest> WorkloadGen::OpenLoopScheduleRate(
    const std::function<double(double)>& rate_per_sec_at,
    double peak_rate_per_sec, double duration_sec) {
  DFLOW_CHECK(rate_per_sec_at != nullptr);
  DFLOW_CHECK(peak_rate_per_sec > 0.0);
  std::vector<TimedRequest> schedule;
  double t = 0.0;
  while (true) {
    t += rng_.Exponential(peak_rate_per_sec);
    if (t >= duration_sec) {
      break;
    }
    double rate = rate_per_sec_at(t);
    DFLOW_CHECK(rate >= 0.0);
    DFLOW_CHECK(rate <= peak_rate_per_sec * (1.0 + 1e-9));
    // Thinning: accept with probability rate(t)/peak. The uniform draw is
    // consumed either way; Next() only on acceptance.
    if (rng_.NextDouble() * peak_rate_per_sec < rate) {
      schedule.push_back(TimedRequest{t, Next()});
    }
  }
  return schedule;
}

const core::ServiceRequest& WorkloadGen::RequestAtRank(size_t rank) const {
  DFLOW_CHECK(rank < population_->size());
  return (*population_)[rank_to_index_[rank]];
}

WorkloadGen WorkloadGen::Fork() {
  return WorkloadGen(population_, rank_to_index_, zipf_s_, rng_.Fork());
}

std::string WorkloadGen::Fingerprint(int64_t n) {
  Md5 md5;
  for (int64_t i = 0; i < n; ++i) {
    md5.Update(ShardedResponseCache::CanonicalKey(Next()));
    md5.Update("\n");
  }
  return md5.HexDigest();
}

}  // namespace dflow::serve
