#include "serve/workload_gen.h"

#include <numeric>
#include <utility>

#include "serve/response_cache.h"
#include "util/logging.h"
#include "util/md5.h"

namespace dflow::serve {

WorkloadGen::WorkloadGen(std::vector<core::ServiceRequest> population,
                         double zipf_s, uint64_t seed)
    : population_(std::make_shared<const std::vector<core::ServiceRequest>>(
          std::move(population))),
      zipf_s_(zipf_s),
      rng_(seed) {
  DFLOW_CHECK(!population_->empty());
  rank_to_index_.resize(population_->size());
  std::iota(rank_to_index_.begin(), rank_to_index_.end(), size_t{0});
  rng_.Shuffle(rank_to_index_);
}

WorkloadGen::WorkloadGen(
    std::shared_ptr<const std::vector<core::ServiceRequest>> pop,
    std::vector<size_t> rank_to_index, double zipf_s, Rng rng)
    : population_(std::move(pop)),
      rank_to_index_(std::move(rank_to_index)),
      zipf_s_(zipf_s),
      rng_(std::move(rng)) {}

const core::ServiceRequest& WorkloadGen::Next() {
  int64_t rank =
      rng_.Zipf(static_cast<int64_t>(population_->size()), zipf_s_);
  return (*population_)[rank_to_index_[static_cast<size_t>(rank - 1)]];
}

std::vector<TimedRequest> WorkloadGen::OpenLoopSchedule(double rate_per_sec,
                                                        double duration_sec) {
  DFLOW_CHECK(rate_per_sec > 0.0);
  std::vector<TimedRequest> schedule;
  schedule.reserve(static_cast<size_t>(rate_per_sec * duration_sec * 1.1) +
                   16);
  double t = 0.0;
  while (true) {
    t += rng_.Exponential(rate_per_sec);
    if (t >= duration_sec) {
      break;
    }
    schedule.push_back(TimedRequest{t, Next()});
  }
  return schedule;
}

WorkloadGen WorkloadGen::Fork() {
  return WorkloadGen(population_, rank_to_index_, zipf_s_, rng_.Fork());
}

std::string WorkloadGen::Fingerprint(int64_t n) {
  Md5 md5;
  for (int64_t i = 0; i < n; ++i) {
    md5.Update(ShardedResponseCache::CanonicalKey(Next()));
    md5.Update("\n");
  }
  return md5.HexDigest();
}

}  // namespace dflow::serve
