#ifndef DFLOW_SERVE_SERVE_LOOP_H_
#define DFLOW_SERVE_SERVE_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/flow_runner.h"  // core::RetryPolicy — retry-after hint shape.
#include "core/web_service.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/latency_histogram.h"
#include "serve/response_cache.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dflow::serve {

struct ServeConfig {
  /// Worker threads executing admitted requests.
  int num_workers = 4;
  /// Bounded admission queue: requests beyond this many WAITING tasks are
  /// shed with ResourceExhausted instead of queueing without bound — under
  /// overload the queue (and therefore the queueing delay of admitted
  /// requests) stays capped and the shed fraction rises instead.
  size_t max_queue_depth = 64;
  /// Default per-request deadline, measured from admission; a request that
  /// is still waiting in the queue when its deadline passes is answered
  /// ResourceExhausted without touching the backend. 0 disables. Enqueue()
  /// may override per request.
  double default_deadline_sec = 0.0;
  /// Retry-after hints for shed requests reuse the RetryPolicy shape from
  /// the fault-handling PR: the k-th CONSECUTIVE shed suggests
  ///   min(backoff_initial_sec * multiplier^(k-1), backoff_max_sec),
  /// so a client herd backs off harder the longer the overload lasts; any
  /// successful admission resets the ladder. (`max_attempts` and
  /// `jitter_fraction` are unused here — jitter belongs client-side.)
  core::RetryPolicy retry_hint{/*max_attempts=*/1,
                               /*backoff_initial_sec=*/0.005,
                               /*backoff_multiplier=*/2.0,
                               /*backoff_max_sec=*/0.5,
                               /*jitter_fraction=*/0.0};

  /// How backend Handle() calls are serialized. The case-study backends
  /// (db::Database and friends) are single-threaded by design — the paper's
  /// services ran one synchronous web server each — so the default takes
  /// one lock per top-level mount prefix: requests to DIFFERENT services
  /// run concurrently, requests to the same service serialize. kGlobal
  /// serializes everything; kNone is for backends that are themselves
  /// thread-safe.
  enum class BackendLocking { kPerMount, kGlobal, kNone };
  BackendLocking locking = BackendLocking::kPerMount;

  /// Health-gated failover (the recovery PR). Disabled by default — with
  /// `enabled` false the dispatch path is exactly the pre-failover loop.
  /// When enabled, every top-level mount prefix carries a circuit breaker:
  ///
  ///   closed --(failure_threshold CONSECUTIVE backend errors)--> open
  ///   open   --(seeded-backoff window elapses; next request probes)-->
  ///            half-open
  ///   half-open --(probe succeeds)--> closed
  ///             --(probe fails)----> open, with the window grown by
  ///                                  backoff_multiplier (capped)
  ///
  /// While a mount is open (or a probe is in flight), its requests are
  /// routed to the replica backend registered via SetReplica() — the
  /// surviving copy of the service — or failed fast with ResourceExhausted
  /// when no replica exists, so a dead backend sheds load instead of
  /// tying up workers in doomed calls.
  struct BreakerConfig {
    bool enabled = false;
    /// Consecutive primary-backend errors that trip the mount open.
    int failure_threshold = 5;
    /// Base open window before the first half-open probe, and its cap as
    /// consecutive re-trips double it.
    double open_sec = 0.25;
    double open_max_sec = 2.0;
    double backoff_multiplier = 2.0;
    /// Optional +/- jitter on the window, drawn from `seed` — determinism
    /// knob, same contract as core::RetryPolicy. In [0, 1).
    double jitter_fraction = 0.0;
    uint64_t seed = 42;
  };
  BreakerConfig breaker;

  /// Optional observability hooks (borrowed; must outlive the loop).
  ///
  /// With a tracer attached, every request leaves a span chain —
  /// "cache_lookup" on the submitting thread, then "queue_wait" (admission
  /// to dequeue) and "backend" (Dispatch) on the worker — plus instant
  /// events for sheds and queue-deadline expirations. Timestamps come from
  /// the tracer's clock: wall for profiling, kLogical for byte-identical
  /// golden traces of serialized runs. A null or disabled tracer costs one
  /// branch per request.
  obs::Tracer* tracer = nullptr;
  /// With a registry attached, the loop mirrors its counters under
  /// "serve.offered", ".admitted", ".shed", ".completed", ".errors",
  /// ".deadline_expired", ".cache_hits", ".cache_misses" and records every
  /// admitted-request latency into the "serve.latency_sec" histogram —
  /// the same numbers as Stats()/Latencies(), published into the shared
  /// substrate the other tiers report into.
  obs::MetricsRegistry* metrics = nullptr;
};

struct ServeStats {
  int64_t offered = 0;     // Every Enqueue()/Execute() attempt.
  int64_t admitted = 0;    // Accepted into the queue (or served from cache).
  int64_t shed = 0;        // Rejected at admission: queue full.
  int64_t completed = 0;   // Backend (or cache) produced an OK response.
  int64_t errors = 0;      // Backend returned a non-OK status.
  int64_t deadline_expired = 0;  // Admitted but died waiting in the queue.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  /// Cumulative bytes of backing storage the cache-HIT path has ever had
  /// to acquire (thread-local key-buffer warmup, in practice). Flat under
  /// steady load == the hit path is allocation-free; mirrored as the
  /// "serve.hit_alloc_bytes" gauge.
  int64_t hit_alloc_bytes = 0;
  double last_retry_after_sec = 0.0;
  // Breaker bookkeeping (all zero unless ServeConfig::breaker.enabled).
  int64_t breaker_opened = 0;    // closed/half-open -> open transitions.
  int64_t breaker_closed = 0;    // Successful probes (half-open -> closed).
  int64_t breaker_probes = 0;    // Half-open probe requests sent.
  int64_t failover_requests = 0; // Requests served by a replica backend.
  int64_t breaker_rejected = 0;  // Failed fast: breaker open, no replica.

  double shed_fraction() const {
    return offered == 0 ? 0.0 : static_cast<double>(shed) / offered;
  }
  double cache_hit_rate() const {
    int64_t lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(cache_hits) / lookups;
  }
};

/// The concurrent front door of the dissemination tier: a ThreadPool-backed
/// executor over a core::ServiceRegistry with a bounded admission queue
/// (load shedding, not unbounded buffering), per-request deadlines, an
/// optional ShardedResponseCache consulted at admission time (hits bypass
/// the queue entirely), and per-worker-stripe latency histograms merged on
/// read.
///
/// Results are delivered through a completion callback (`DoneFn`), which
/// runs on a worker thread — or inline on the caller's thread for cache
/// hits. Execute() wraps that in a blocking call for closed-loop clients.
///
/// Thread-safe: any number of threads may Enqueue()/Execute() concurrently.
class ServeLoop {
 public:
  using DoneFn = std::function<void(const Result<core::ServiceResponse>&)>;
  /// Zero-copy completion: the response arrives as a refcounted handle to
  /// the (immutable) cached object — no body copy anywhere between the
  /// handler that produced it and the callback that reads it.
  using SharedDoneFn = std::function<void(const Result<ResponsePtr>&)>;

  /// `registry` must outlive the loop. `cache` may be null (no caching);
  /// if set, OK responses are inserted with the handler's
  /// `cache_max_age_sec` hint (kUncacheable responses are never stored).
  ServeLoop(core::ServiceRegistry* registry, ServeConfig config,
            ShardedResponseCache* cache = nullptr);

  /// Drains in-flight work, then stops the workers.
  ~ServeLoop();

  ServeLoop(const ServeLoop&) = delete;
  ServeLoop& operator=(const ServeLoop&) = delete;

  /// Admission-controlled asynchronous submit. Returns OK if the request
  /// was served from cache (done ran inline) or accepted into the queue
  /// (done will run on a worker); ResourceExhausted if shed, with a
  /// retry-after hint in the message and in Stats().last_retry_after_sec —
  /// `done` is NOT invoked for shed requests, the return Status is the
  /// whole answer. `deadline_sec` > 0 overrides the config default (from
  /// now); < 0 disables the deadline for this request.
  Status Enqueue(core::ServiceRequest request, DoneFn done = nullptr,
                 double deadline_sec = 0.0);

  /// The raw-speed submit: identical admission/deadline semantics to
  /// Enqueue, but a cache hit performs ZERO heap allocations and ZERO
  /// response-body copies — the canonical key is built into a warmed
  /// thread-local buffer (RequestScratch), the cache probe is a
  /// string_view lookup, and `done` receives a refcount handle to the
  /// cached response, invoked inline on the calling thread. On a miss the
  /// request is copied into the queued task (the caller keeps ownership).
  Status EnqueueShared(const core::ServiceRequest& request,
                       SharedDoneFn done = nullptr,
                       double deadline_sec = 0.0);

  /// Blocking submit for closed-loop clients: admission control still
  /// applies (a shed request returns ResourceExhausted immediately).
  Result<core::ServiceResponse> Execute(const core::ServiceRequest& request,
                                        double deadline_sec = 0.0);

  /// Blocking form of EnqueueShared.
  Result<ResponsePtr> ExecuteShared(const core::ServiceRequest& request,
                                    double deadline_sec = 0.0);

  /// Blocks until every admitted request has completed.
  void Drain();

  /// Registers a replica backend for the top-level mount `prefix` (e.g.
  /// "cleo" for the mounts "cleo" and "cleo/es2"). While the prefix's
  /// breaker is open, its requests are dispatched to `replica` instead of
  /// the primary registry. The replica must outlive the loop and is
  /// serialized under its own per-mount lock. InvalidArgument on a null
  /// replica or a prefix failing core::ValidateMountPrefix() — the same
  /// rules Mount() enforces — or containing any '/' (breaker health is
  /// tracked per top-level prefix). Replicas may be registered regardless of
  /// whether the breaker is enabled; without the breaker they are never
  /// consulted.
  Status SetReplica(const std::string& prefix,
                    core::ServiceRegistry* replica);

  /// One mount's breaker state, for tests and operations dashboards.
  struct MountHealthSnapshot {
    std::string prefix;
    std::string state;  // "closed" | "open" | "half_open".
    int consecutive_failures = 0;
    int consecutive_trips = 0;
    bool has_replica = false;
  };
  /// Every mount the breaker has seen traffic for, sorted by prefix.
  std::vector<MountHealthSnapshot> HealthSnapshot() const;

  ServeStats Stats() const;

  /// Merged snapshot of per-stripe histograms: latency from admission to
  /// completion of every ADMITTED request that produced a response (cache
  /// hits included; shed and deadline-expired requests excluded).
  LatencyHistogram Latencies() const;

  /// Seconds since construction on the loop's monotonic clock.
  double NowSec() const;

  const ServeConfig& config() const { return config_; }

 private:
  struct HistogramStripe {
    std::mutex mu;
    LatencyHistogram histogram;
  };

  struct MountHealth {
    enum class State { kClosed, kOpen, kHalfOpen };
    State state = State::kClosed;
    int consecutive_failures = 0;
    int consecutive_trips = 0;   // Re-trips without an intervening close.
    double open_until_sec = 0.0;  // NowSec() deadline of the open window.
  };

  /// Shared admission path. `request` is always valid; when `owned` is
  /// non-null it is the SAME object and a miss may move from it instead of
  /// copying (the legacy Enqueue owns its by-value argument; EnqueueShared
  /// passes null and pays one copy on the miss path only).
  Status EnqueueInternal(const core::ServiceRequest& request,
                         core::ServiceRequest* owned, SharedDoneFn done,
                         double deadline_sec);
  void Process(core::ServiceRequest request, SharedDoneFn done,
               std::string key, double start_sec, double deadline_at_sec,
               int64_t trace_admit_us);
  Result<core::ServiceResponse> Dispatch(const core::ServiceRequest& request);
  /// The pre-breaker dispatch: serialize per `lock_key` (per config) and
  /// call the given registry.
  Result<core::ServiceResponse> DispatchTo(core::ServiceRegistry* registry,
                                           const core::ServiceRequest& request,
                                           const std::string& lock_key);
  void NotePrimaryResult(const std::string& prefix, bool ok);
  void NoteProbeResult(const std::string& prefix, bool ok);
  /// Requires health_mu_. Opens the breaker and schedules the next probe
  /// window with seeded exponential backoff.
  void TripLocked(MountHealth& health, const std::string& prefix);
  void RecordLatency(double seconds);
  double RetryAfterFor(int64_t consecutive_sheds) const;
  /// The configured tracer if it is currently enabled, else null — so hot
  /// paths pay one branch and never build strings while tracing is off.
  obs::Tracer* ActiveTracer() const {
    return config_.tracer != nullptr && config_.tracer->enabled()
               ? config_.tracer
               : nullptr;
  }

  core::ServiceRegistry* registry_;
  ServeConfig config_;
  ShardedResponseCache* cache_;
  std::chrono::steady_clock::time_point epoch_;

  std::atomic<int64_t> offered_{0};
  std::atomic<int64_t> admitted_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> errors_{0};
  std::atomic<int64_t> deadline_expired_{0};
  std::atomic<int64_t> cache_hits_{0};
  std::atomic<int64_t> cache_misses_{0};
  std::atomic<int64_t> consecutive_sheds_{0};
  std::atomic<int64_t> hit_alloc_bytes_{0};
  std::atomic<double> last_retry_after_sec_{0.0};

  std::vector<std::unique_ptr<HistogramStripe>> stripes_;

  // Registry mirrors (null when config_.metrics is null).
  struct RegistryCounters {
    obs::Counter* offered = nullptr;
    obs::Counter* admitted = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* errors = nullptr;
    obs::Counter* deadline_expired = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
  };
  RegistryCounters reg_;
  obs::StripedHistogram* reg_latency_ = nullptr;
  obs::Gauge* reg_hit_alloc_ = nullptr;  // "serve.hit_alloc_bytes".

  // Breaker state. Registry mirrors are resolved only when the breaker is
  // enabled AND a registry is attached, so a disabled breaker leaves the
  // metrics namespace exactly as before.
  std::atomic<int64_t> breaker_opened_{0};
  std::atomic<int64_t> breaker_closed_{0};
  std::atomic<int64_t> breaker_probes_{0};
  std::atomic<int64_t> failover_requests_{0};
  std::atomic<int64_t> breaker_rejected_{0};
  struct BreakerCounters {
    obs::Counter* opened = nullptr;
    obs::Counter* closed = nullptr;
    obs::Counter* probes = nullptr;
    obs::Counter* failover = nullptr;
    obs::Counter* rejected = nullptr;
  };
  BreakerCounters breaker_reg_;
  mutable std::mutex health_mu_;  // Guards the three members below.
  std::map<std::string, MountHealth> mount_health_;
  std::map<std::string, core::ServiceRegistry*> replicas_;
  Rng breaker_rng_{42};  // Re-seeded from config in the constructor.

  std::mutex backend_locks_mu_;
  std::map<std::string, std::unique_ptr<std::mutex>> backend_locks_;
  std::mutex global_backend_lock_;

  // Last member: destroyed first, so workers drain while everything else
  // (stripes, counters, locks) is still alive.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace dflow::serve

#endif  // DFLOW_SERVE_SERVE_LOOP_H_
