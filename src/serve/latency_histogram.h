#ifndef DFLOW_SERVE_LATENCY_HISTOGRAM_H_
#define DFLOW_SERVE_LATENCY_HISTOGRAM_H_

// The histogram moved into the shared observability layer (src/obs) so that
// core, storage, and net can record durations without depending on the
// dissemination tier. This alias keeps every existing serve:: caller —
// ServeLoop, the serve tests, bench_serve_tail — source-compatible.

#include "obs/latency_histogram.h"

namespace dflow::serve {

using LatencyHistogram = obs::LatencyHistogram;

}  // namespace dflow::serve

#endif  // DFLOW_SERVE_LATENCY_HISTOGRAM_H_
