#include "serve/serve_loop.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <future>
#include <thread>
#include <utility>

#include "serve/request_scratch.h"
#include "simd/simd.h"
#include "util/logging.h"

namespace dflow::serve {

namespace {

/// First path segment — the coarsest mount partition. Nested mounts
/// ("cleo" and "cleo/es2") share a lock, which is safe (strictly coarser
/// than the actual routing partition).
std::string TopLevelPrefix(const std::string& path) {
  size_t slash = path.find('/');
  return slash == std::string::npos ? path : path.substr(0, slash);
}

/// Registry-mirror bump: a no-op branch unless a MetricsRegistry was
/// attached through ServeConfig.
inline void Bump(obs::Counter* counter) {
  if (counter != nullptr) {
    counter->Add(1);
  }
}

}  // namespace

ServeLoop::ServeLoop(core::ServiceRegistry* registry, ServeConfig config,
                     ShardedResponseCache* cache)
    : registry_(registry),
      config_(config),
      cache_(cache),
      epoch_(std::chrono::steady_clock::now()) {
  DFLOW_CHECK(registry_ != nullptr);
  DFLOW_CHECK(config_.num_workers > 0);
  int num_stripes = std::max(2 * config_.num_workers, 4);
  stripes_.reserve(static_cast<size_t>(num_stripes));
  for (int i = 0; i < num_stripes; ++i) {
    stripes_.push_back(std::make_unique<HistogramStripe>());
  }
  breaker_rng_ = Rng(config_.breaker.seed);
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry* registry = config_.metrics;
    reg_.offered = registry->GetCounter("serve.offered");
    reg_.admitted = registry->GetCounter("serve.admitted");
    reg_.shed = registry->GetCounter("serve.shed");
    reg_.completed = registry->GetCounter("serve.completed");
    reg_.errors = registry->GetCounter("serve.errors");
    reg_.deadline_expired = registry->GetCounter("serve.deadline_expired");
    reg_.cache_hits = registry->GetCounter("serve.cache_hits");
    reg_.cache_misses = registry->GetCounter("serve.cache_misses");
    reg_latency_ = registry->GetHistogram("serve.latency_sec", num_stripes);
    reg_hit_alloc_ = registry->GetGauge("serve.hit_alloc_bytes");
    // Publish which ISA tier the kernel layer dispatched to, so scenario
    // fingerprints and benches can assert on the code path they measured.
    simd::PublishDispatch(registry);
    if (config_.breaker.enabled) {
      breaker_reg_.opened = registry->GetCounter("serve.breaker_opened");
      breaker_reg_.closed = registry->GetCounter("serve.breaker_closed");
      breaker_reg_.probes = registry->GetCounter("serve.breaker_probes");
      breaker_reg_.failover = registry->GetCounter("serve.failover");
      breaker_reg_.rejected = registry->GetCounter("serve.breaker_rejected");
    }
  }
  if (config_.breaker.enabled) {
    DFLOW_CHECK(config_.breaker.failure_threshold >= 1);
    DFLOW_CHECK(config_.breaker.open_sec > 0.0);
    DFLOW_CHECK(config_.breaker.open_max_sec >= config_.breaker.open_sec);
    DFLOW_CHECK(config_.breaker.backoff_multiplier >= 1.0);
    DFLOW_CHECK(config_.breaker.jitter_fraction >= 0.0 &&
                config_.breaker.jitter_fraction < 1.0);
  }
  pool_ = std::make_unique<ThreadPool>(config_.num_workers);
}

ServeLoop::~ServeLoop() = default;  // pool_ drains in its destructor.

double ServeLoop::NowSec() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

double ServeLoop::RetryAfterFor(int64_t consecutive_sheds) const {
  const core::RetryPolicy& hint = config_.retry_hint;
  double delay = hint.backoff_initial_sec *
                 std::pow(hint.backoff_multiplier,
                          static_cast<double>(consecutive_sheds - 1));
  return std::min(delay, hint.backoff_max_sec);
}

void ServeLoop::RecordLatency(double seconds) {
  size_t stripe = std::hash<std::thread::id>{}(std::this_thread::get_id()) %
                  stripes_.size();
  HistogramStripe& s = *stripes_[stripe];
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.histogram.Record(seconds);
  }
  if (reg_latency_ != nullptr) {
    reg_latency_->Record(seconds);
  }
}

LatencyHistogram ServeLoop::Latencies() const {
  LatencyHistogram merged;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    merged.Merge(stripe->histogram);
  }
  return merged;
}

Result<core::ServiceResponse> ServeLoop::DispatchTo(
    core::ServiceRegistry* registry, const core::ServiceRequest& request,
    const std::string& lock_key) {
  switch (config_.locking) {
    case ServeConfig::BackendLocking::kNone:
      return registry->Handle(request);
    case ServeConfig::BackendLocking::kGlobal: {
      std::lock_guard<std::mutex> lock(global_backend_lock_);
      return registry->Handle(request);
    }
    case ServeConfig::BackendLocking::kPerMount: {
      std::mutex* mount_lock = nullptr;
      {
        std::lock_guard<std::mutex> lock(backend_locks_mu_);
        auto& slot = backend_locks_[lock_key];
        if (slot == nullptr) {
          slot = std::make_unique<std::mutex>();
        }
        mount_lock = slot.get();
      }
      std::lock_guard<std::mutex> lock(*mount_lock);
      return registry->Handle(request);
    }
  }
  return Status::Internal("unreachable: unknown BackendLocking");
}

void ServeLoop::TripLocked(MountHealth& health, const std::string& prefix) {
  health.state = MountHealth::State::kOpen;
  ++health.consecutive_trips;
  health.consecutive_failures = 0;
  const ServeConfig::BreakerConfig& b = config_.breaker;
  double window = b.open_sec;
  for (int i = 1; i < health.consecutive_trips; ++i) {
    window *= b.backoff_multiplier;
    if (window >= b.open_max_sec) {
      break;
    }
  }
  window = std::min(window, b.open_max_sec);
  if (b.jitter_fraction > 0.0) {
    window *= 1.0 + b.jitter_fraction * (2.0 * breaker_rng_.NextDouble() - 1.0);
  }
  health.open_until_sec = NowSec() + window;
  breaker_opened_.fetch_add(1, std::memory_order_relaxed);
  Bump(breaker_reg_.opened);
  if (obs::Tracer* tracer = ActiveTracer()) {
    char window_buf[32];
    std::snprintf(window_buf, sizeof(window_buf), "%.6g", window);
    tracer->InstantEvent("breaker_opened", "serve",
                         {{"mount", prefix}, {"window_sec", window_buf}});
  }
  DFLOW_LOG(Warning) << "serve: breaker for mount '" << prefix
                     << "' opened for " << window << "s (trip "
                     << health.consecutive_trips << ")";
}

void ServeLoop::NotePrimaryResult(const std::string& prefix, bool ok) {
  std::lock_guard<std::mutex> lock(health_mu_);
  MountHealth& health = mount_health_[prefix];
  if (health.state != MountHealth::State::kClosed) {
    // A probe owns open/half-open transitions; late stragglers that were
    // already past the gate when the breaker tripped don't double-count.
    return;
  }
  if (ok) {
    health.consecutive_failures = 0;
    health.consecutive_trips = 0;
    return;
  }
  ++health.consecutive_failures;
  if (health.consecutive_failures >= config_.breaker.failure_threshold) {
    TripLocked(health, prefix);
  }
}

void ServeLoop::NoteProbeResult(const std::string& prefix, bool ok) {
  std::lock_guard<std::mutex> lock(health_mu_);
  MountHealth& health = mount_health_[prefix];
  if (ok) {
    health.state = MountHealth::State::kClosed;
    health.consecutive_failures = 0;
    health.consecutive_trips = 0;
    breaker_closed_.fetch_add(1, std::memory_order_relaxed);
    Bump(breaker_reg_.closed);
    if (obs::Tracer* tracer = ActiveTracer()) {
      tracer->InstantEvent("breaker_closed", "serve", {{"mount", prefix}});
    }
    DFLOW_LOG(Info) << "serve: breaker for mount '" << prefix
                    << "' closed after successful probe";
    return;
  }
  TripLocked(health, prefix);  // Re-open with a grown window.
}

Result<core::ServiceResponse> ServeLoop::Dispatch(
    const core::ServiceRequest& request) {
  const std::string prefix = TopLevelPrefix(request.path);
  if (!config_.breaker.enabled) {
    return DispatchTo(registry_, request, prefix);
  }
  enum class Route { kPrimary, kProbe, kReplica, kReject };
  Route route = Route::kPrimary;
  core::ServiceRegistry* replica = nullptr;
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    MountHealth& health = mount_health_[prefix];
    auto it = replicas_.find(prefix);
    replica = it == replicas_.end() ? nullptr : it->second;
    switch (health.state) {
      case MountHealth::State::kClosed:
        route = Route::kPrimary;
        break;
      case MountHealth::State::kHalfOpen:
        // A probe is already in flight; stay off the primary until it
        // reports back.
        route = replica != nullptr ? Route::kReplica : Route::kReject;
        break;
      case MountHealth::State::kOpen:
        if (NowSec() >= health.open_until_sec) {
          // This request is the half-open probe.
          health.state = MountHealth::State::kHalfOpen;
          route = Route::kProbe;
        } else {
          route = replica != nullptr ? Route::kReplica : Route::kReject;
        }
        break;
    }
  }
  switch (route) {
    case Route::kReject: {
      breaker_rejected_.fetch_add(1, std::memory_order_relaxed);
      Bump(breaker_reg_.rejected);
      if (obs::Tracer* tracer = ActiveTracer()) {
        tracer->InstantEvent("breaker_rejected", "serve",
                             {{"mount", prefix}, {"path", request.path}});
      }
      return Status::ResourceExhausted("mount '" + prefix +
                                       "' breaker open and no replica "
                                       "registered; failing fast");
    }
    case Route::kReplica: {
      failover_requests_.fetch_add(1, std::memory_order_relaxed);
      Bump(breaker_reg_.failover);
      if (obs::Tracer* tracer = ActiveTracer()) {
        tracer->InstantEvent("failover", "serve",
                             {{"mount", prefix}, {"path", request.path}});
      }
      // The replica is its own single-threaded backend: serialize it under
      // its own key, never the (possibly wedged) primary's lock.
      return DispatchTo(replica, request, "\x01replica/" + prefix);
    }
    case Route::kProbe: {
      breaker_probes_.fetch_add(1, std::memory_order_relaxed);
      Bump(breaker_reg_.probes);
      if (obs::Tracer* tracer = ActiveTracer()) {
        tracer->InstantEvent("breaker_probe", "serve", {{"mount", prefix}});
      }
      Result<core::ServiceResponse> result =
          DispatchTo(registry_, request, prefix);
      NoteProbeResult(prefix, result.ok());
      return result;
    }
    case Route::kPrimary: {
      Result<core::ServiceResponse> result =
          DispatchTo(registry_, request, prefix);
      NotePrimaryResult(prefix, result.ok());
      return result;
    }
  }
  return Status::Internal("unreachable: unknown breaker route");
}

void ServeLoop::Process(core::ServiceRequest request, SharedDoneFn done,
                        std::string key, double start_sec,
                        double deadline_at_sec, int64_t trace_admit_us) {
  obs::Tracer* tracer = ActiveTracer();
  if (tracer != nullptr && trace_admit_us >= 0) {
    // Admission-to-dequeue: the segment admission control exists to bound.
    int64_t dequeue_us = tracer->NowUs();
    tracer->CompleteEvent("queue_wait", "serve", trace_admit_us,
                          dequeue_us - trace_admit_us,
                          {{"path", request.path}});
  }
  double now = NowSec();
  if (deadline_at_sec > 0.0 && now > deadline_at_sec) {
    // Died of old age in the admission queue; don't waste backend time.
    deadline_expired_.fetch_add(1, std::memory_order_relaxed);
    Bump(reg_.deadline_expired);
    if (tracer != nullptr) {
      tracer->InstantEvent("deadline_expired", "serve",
                           {{"path", request.path}});
    }
    if (done) {
      done(Status::ResourceExhausted(
          "deadline exceeded after waiting in admission queue"));
    }
    return;
  }
  int64_t backend_start_us = tracer != nullptr ? tracer->NowUs() : 0;
  Result<core::ServiceResponse> result = Dispatch(request);
  if (tracer != nullptr) {
    int64_t backend_end_us = tracer->NowUs();
    tracer->CompleteEvent(
        "backend", "serve", backend_start_us,
        backend_end_us - backend_start_us,
        {{"path", request.path},
         {"status", result.ok() ? "ok" : result.status().ToString()}});
  }
  double latency = NowSec() - start_sec;
  RecordLatency(latency);
  if (result.ok()) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    Bump(reg_.completed);
    // One shared immutable copy of the response: the cache and every
    // outstanding reader refcount the SAME object — the body is never
    // copied again after this move.
    ResponsePtr shared =
        std::make_shared<const core::ServiceResponse>(std::move(*result));
    if (cache_ != nullptr &&
        shared->cache_max_age_sec >= 0.0) {  // kUncacheable is negative.
      cache_->InsertShared(key, shared, NowSec(), shared->cache_max_age_sec);
    }
    if (done) {
      done(Result<ResponsePtr>(std::move(shared)));
    }
  } else {
    errors_.fetch_add(1, std::memory_order_relaxed);
    Bump(reg_.errors);
    if (done) {
      done(result.status());
    }
  }
}

Status ServeLoop::EnqueueInternal(const core::ServiceRequest& request,
                                  core::ServiceRequest* owned,
                                  SharedDoneFn done, double deadline_sec) {
  offered_.fetch_add(1, std::memory_order_relaxed);
  Bump(reg_.offered);
  obs::Tracer* tracer = ActiveTracer();
  double start_sec = NowSec();
  // Canonical key goes into the calling thread's warmed scratch buffer:
  // after warmup this performs no allocation. Growth (warmup, or a key
  // longer than any seen before on this thread) is accounted into the
  // hit_alloc_bytes instrumentation the zero-alloc regression test pins.
  RequestScratch& scratch = RequestScratch::ForThisThread();
  std::string& key = scratch.KeyBuffer();
  const size_t key_cap_before = key.capacity();
  ShardedResponseCache::CanonicalKeyInto(request, &key);
  const int64_t grew =
      scratch.NoteStringGrowth(key_cap_before, key.capacity());
  if (grew > 0) {
    hit_alloc_bytes_.fetch_add(grew, std::memory_order_relaxed);
    if (reg_hit_alloc_ != nullptr) {
      reg_hit_alloc_->Set(static_cast<double>(
          hit_alloc_bytes_.load(std::memory_order_relaxed)));
    }
  }
  if (cache_ != nullptr) {
    int64_t lookup_start_us = tracer != nullptr ? tracer->NowUs() : 0;
    ResponsePtr hit = cache_->LookupShared(key, start_sec);
    if (tracer != nullptr) {
      int64_t lookup_end_us = tracer->NowUs();
      tracer->CompleteEvent("cache_lookup", "serve", lookup_start_us,
                            lookup_end_us - lookup_start_us,
                            {{"path", request.path},
                             {"result", hit != nullptr ? "hit" : "miss"}});
    }
    if (hit != nullptr) {
      // Cache hits bypass the admission queue entirely: the whole point of
      // the dissemination cache is that hot requests cost no backend time.
      // From here to `done` there is no allocation and no body copy —
      // counters are relaxed atomics, RecordLatency writes fixed-size
      // histogram arrays, and the response rides out by refcount.
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      admitted_.fetch_add(1, std::memory_order_relaxed);
      completed_.fetch_add(1, std::memory_order_relaxed);
      Bump(reg_.cache_hits);
      Bump(reg_.admitted);
      Bump(reg_.completed);
      consecutive_sheds_.store(0, std::memory_order_relaxed);
      RecordLatency(NowSec() - start_sec);
      if (done) {
        done(Result<ResponsePtr>(std::move(hit)));
      }
      return Status::OK();
    }
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    Bump(reg_.cache_misses);
  }

  double effective_deadline = deadline_sec == 0.0
                                  ? config_.default_deadline_sec
                                  : std::max(deadline_sec, 0.0);
  double deadline_at_sec =
      effective_deadline > 0.0 ? start_sec + effective_deadline : 0.0;

  int64_t trace_admit_us = tracer != nullptr ? tracer->NowUs() : -1;
  // Miss path: the task needs its own request and key. Move from the
  // caller's copy when it handed us ownership; copy otherwise.
  core::ServiceRequest task_request =
      owned != nullptr ? std::move(*owned) : request;
  bool accepted = pool_->TrySubmit(
      [this, request = std::move(task_request), done = std::move(done),
       key = std::string(key), start_sec, deadline_at_sec,
       trace_admit_us]() mutable {
        Process(std::move(request), std::move(done), std::move(key),
                start_sec, deadline_at_sec, trace_admit_us);
      },
      config_.max_queue_depth);
  if (!accepted) {
    int64_t streak =
        consecutive_sheds_.fetch_add(1, std::memory_order_relaxed) + 1;
    double retry_after = RetryAfterFor(streak);
    last_retry_after_sec_.store(retry_after, std::memory_order_relaxed);
    shed_.fetch_add(1, std::memory_order_relaxed);
    Bump(reg_.shed);
    if (tracer != nullptr) {
      char retry_buf[32];
      std::snprintf(retry_buf, sizeof(retry_buf), "%.6g", retry_after);
      tracer->InstantEvent("shed", "serve",
                           {{"retry_after_sec", retry_buf}});
    }
    return Status::ResourceExhausted(
        "admission queue full (depth >= " +
        std::to_string(config_.max_queue_depth) + "); retry after " +
        std::to_string(retry_after) + "s");
  }
  consecutive_sheds_.store(0, std::memory_order_relaxed);
  admitted_.fetch_add(1, std::memory_order_relaxed);
  Bump(reg_.admitted);
  return Status::OK();
}

Status ServeLoop::Enqueue(core::ServiceRequest request, DoneFn done,
                          double deadline_sec) {
  SharedDoneFn shared_done;
  if (done) {
    // Value-callback shim: materialize one copy of the response at
    // delivery time (the same single copy the old cache-insert path
    // performed before responses were shared).
    shared_done = [done = std::move(done)](const Result<ResponsePtr>& r) {
      if (r.ok()) {
        done(Result<core::ServiceResponse>(**r));
      } else {
        done(r.status());
      }
    };
  }
  return EnqueueInternal(request, &request, std::move(shared_done),
                         deadline_sec);
}

Status ServeLoop::EnqueueShared(const core::ServiceRequest& request,
                                SharedDoneFn done, double deadline_sec) {
  return EnqueueInternal(request, /*owned=*/nullptr, std::move(done),
                         deadline_sec);
}

Result<core::ServiceResponse> ServeLoop::Execute(
    const core::ServiceRequest& request, double deadline_sec) {
  auto promise =
      std::make_shared<std::promise<Result<core::ServiceResponse>>>();
  std::future<Result<core::ServiceResponse>> future = promise->get_future();
  Status admitted = Enqueue(
      request,
      [promise](const Result<core::ServiceResponse>& result) {
        promise->set_value(result);
      },
      deadline_sec);
  if (!admitted.ok()) {
    return admitted;
  }
  return future.get();
}

Result<ResponsePtr> ServeLoop::ExecuteShared(
    const core::ServiceRequest& request, double deadline_sec) {
  auto promise = std::make_shared<std::promise<Result<ResponsePtr>>>();
  std::future<Result<ResponsePtr>> future = promise->get_future();
  Status admitted = EnqueueShared(
      request,
      [promise](const Result<ResponsePtr>& result) {
        promise->set_value(result);
      },
      deadline_sec);
  if (!admitted.ok()) {
    return admitted;
  }
  return future.get();
}

void ServeLoop::Drain() { pool_->Wait(); }

Status ServeLoop::SetReplica(const std::string& prefix,
                             core::ServiceRegistry* replica) {
  if (replica == nullptr) {
    return Status::InvalidArgument("replica registry must not be null");
  }
  // Same prefix rules as ServiceRegistry::Mount, plus the breaker's own
  // constraint: health is tracked per TOP-LEVEL prefix, so a nested
  // prefix would register a replica no breaker could ever consult.
  DFLOW_RETURN_IF_ERROR(core::ValidateMountPrefix(prefix));
  if (prefix.find('/') != std::string::npos) {
    return Status::InvalidArgument(
        "replica prefix must be a top-level mount (no '/'): '" + prefix +
        "'");
  }
  std::lock_guard<std::mutex> lock(health_mu_);
  replicas_[prefix] = replica;
  return Status::OK();
}

std::vector<ServeLoop::MountHealthSnapshot> ServeLoop::HealthSnapshot() const {
  std::vector<MountHealthSnapshot> snapshot;
  std::lock_guard<std::mutex> lock(health_mu_);
  snapshot.reserve(mount_health_.size());
  for (const auto& [prefix, health] : mount_health_) {
    MountHealthSnapshot entry;
    entry.prefix = prefix;
    switch (health.state) {
      case MountHealth::State::kClosed:
        entry.state = "closed";
        break;
      case MountHealth::State::kOpen:
        entry.state = "open";
        break;
      case MountHealth::State::kHalfOpen:
        entry.state = "half_open";
        break;
    }
    entry.consecutive_failures = health.consecutive_failures;
    entry.consecutive_trips = health.consecutive_trips;
    entry.has_replica = replicas_.count(prefix) > 0;
    snapshot.push_back(std::move(entry));
  }
  return snapshot;
}

ServeStats ServeLoop::Stats() const {
  ServeStats stats;
  stats.offered = offered_.load(std::memory_order_relaxed);
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.errors = errors_.load(std::memory_order_relaxed);
  stats.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  stats.hit_alloc_bytes = hit_alloc_bytes_.load(std::memory_order_relaxed);
  stats.last_retry_after_sec =
      last_retry_after_sec_.load(std::memory_order_relaxed);
  stats.breaker_opened = breaker_opened_.load(std::memory_order_relaxed);
  stats.breaker_closed = breaker_closed_.load(std::memory_order_relaxed);
  stats.breaker_probes = breaker_probes_.load(std::memory_order_relaxed);
  stats.failover_requests =
      failover_requests_.load(std::memory_order_relaxed);
  stats.breaker_rejected =
      breaker_rejected_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace dflow::serve
