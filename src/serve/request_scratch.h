#ifndef DFLOW_SERVE_REQUEST_SCRATCH_H_
#define DFLOW_SERVE_REQUEST_SCRATCH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dflow::serve {

/// Per-thread scratch for the serve front door: a reusable key buffer plus
/// a bump-pointer arena for request parsing. Everything here amortizes to
/// zero heap traffic — buffers warm up once and are reused for the life of
/// the thread — which is what lets the cache-hit path run with 0
/// allocations (the regression test pins exactly that).
///
/// Instrumented: `allocations()` / `allocated_bytes()` count every backing
/// acquisition (arena block mallocs and observed key-buffer growth), so a
/// test can warm the path, snapshot the counters, run N more requests, and
/// assert the counters did not move.
///
/// NOT thread-safe; use ForThisThread() and keep it on that thread.
class RequestScratch {
 public:
  RequestScratch() = default;
  RequestScratch(const RequestScratch&) = delete;
  RequestScratch& operator=(const RequestScratch&) = delete;

  /// The calling thread's scratch (thread_local; constructed on first
  /// use, lives until thread exit).
  static RequestScratch& ForThisThread();

  /// Reusable canonical-key buffer. Callers overwrite it per request;
  /// capacity grows monotonically. Report growth via NoteStringGrowth so
  /// the instrumentation sees it.
  std::string& KeyBuffer() { return key_buffer_; }

  /// Bump-allocates `bytes` (8-byte aligned) from the arena, acquiring a
  /// new block only when the current one is exhausted. Pointers stay valid
  /// until Reset().
  void* Alloc(size_t bytes);

  /// Rewinds the arena to empty. Blocks are retained for reuse — steady
  /// state performs no heap traffic.
  void Reset();

  /// Call after an operation that may have grown a tracked string:
  /// accounts (new_cap - old_cap) as allocated bytes and one allocation.
  /// Returns the byte delta (0 when the capacity was already warm).
  int64_t NoteStringGrowth(size_t old_cap, size_t new_cap);

  /// Backing acquisitions since construction (arena blocks + observed
  /// string growth events). Zero deltas == allocation-free operation.
  int64_t allocations() const { return allocations_; }
  int64_t allocated_bytes() const { return allocated_bytes_; }

 private:
  static constexpr size_t kMinBlockBytes = 4096;

  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  std::string key_buffer_;
  std::vector<Block> blocks_;
  size_t active_block_ = 0;  // Blocks before this are full (or rewound).
  int64_t allocations_ = 0;
  int64_t allocated_bytes_ = 0;
};

}  // namespace dflow::serve

#endif  // DFLOW_SERVE_REQUEST_SCRATCH_H_
