#include "serve/request_scratch.h"

#include <algorithm>

namespace dflow::serve {

RequestScratch& RequestScratch::ForThisThread() {
  thread_local RequestScratch scratch;
  return scratch;
}

void* RequestScratch::Alloc(size_t bytes) {
  bytes = (bytes + 7) & ~size_t{7};
  while (active_block_ < blocks_.size()) {
    Block& block = blocks_[active_block_];
    if (block.used + bytes <= block.size) {
      void* p = block.data.get() + block.used;
      block.used += bytes;
      return p;
    }
    ++active_block_;
  }
  Block fresh;
  fresh.size = std::max(bytes, kMinBlockBytes);
  fresh.data = std::make_unique<char[]>(fresh.size);
  fresh.used = bytes;
  ++allocations_;
  allocated_bytes_ += static_cast<int64_t>(fresh.size);
  blocks_.push_back(std::move(fresh));
  active_block_ = blocks_.size() - 1;
  return blocks_.back().data.get();
}

void RequestScratch::Reset() {
  for (Block& block : blocks_) {
    block.used = 0;
  }
  active_block_ = 0;
}

int64_t RequestScratch::NoteStringGrowth(size_t old_cap, size_t new_cap) {
  if (new_cap <= old_cap) {
    return 0;
  }
  ++allocations_;
  const int64_t delta = static_cast<int64_t>(new_cap - old_cap);
  allocated_bytes_ += delta;
  return delta;
}

}  // namespace dflow::serve
