#ifndef DFLOW_SERVE_RESPONSE_CACHE_H_
#define DFLOW_SERVE_RESPONSE_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/web_service.h"

namespace dflow::serve {

/// Cached responses are immutable and handed out by reference count: a hit
/// copies a shared_ptr (one atomic increment), never the body bytes. This
/// is what makes the serve hit path memcpy-free — every reader shares the
/// one body the handler produced.
using ResponsePtr = std::shared_ptr<const core::ServiceResponse>;

struct CacheConfig {
  /// Number of independently locked shards. More shards, less contention;
  /// capacity is divided evenly across them.
  int num_shards = 16;
  /// Total byte budget across all shards (keys + bodies + content types +
  /// a fixed per-entry overhead). Least-recently-used entries are evicted
  /// per shard once its slice of the budget is exceeded.
  size_t capacity_bytes = 64u << 20;
  /// Default time-to-live in seconds; 0 means entries never expire (they
  /// still churn out via LRU). Individual inserts may pass a tighter TTL
  /// (e.g. from a handler's `cache_max_age_sec` hint).
  double default_ttl_sec = 0.0;
};

/// Per-shard (and aggregate) counters. A hit moves the entry to the MRU
/// position; a lookup of an expired entry counts one expiration AND one
/// miss; an insert that displaces older entries counts one eviction per
/// displaced entry.
struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t expirations = 0;
  int64_t inserts = 0;
  size_t bytes = 0;
  size_t entries = 0;

  double hit_rate() const {
    int64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

/// N-shard LRU response cache for the dissemination tier. Keys are
/// canonicalized requests (path + sorted params); each shard is an LRU
/// list + hash map under its own mutex, so concurrent clients touching
/// different shards never contend. Time is supplied by the caller in
/// seconds (any monotonic origin), which keeps TTL behavior deterministic
/// under test and compatible with virtual-time harnesses.
///
/// Thread-safe. Entries larger than one shard's capacity slice are not
/// cached at all (they would only evict everything and then themselves).
class ShardedResponseCache {
 public:
  explicit ShardedResponseCache(CacheConfig config = {});

  /// Canonical cache key for a request: the path plus every parameter in
  /// sorted key order, joined with non-printing separators so distinct
  /// requests can never collide ("a=b&c=" vs "a=b&c" stay distinct).
  /// `ServiceRequest::params` is an ordered map, so two requests that
  /// differ only in parameter insertion order canonicalize identically.
  static std::string CanonicalKey(const core::ServiceRequest& request);

  /// Allocation-conscious form: builds the canonical key into `*out`
  /// (cleared first). A caller that reuses one string across requests pays
  /// zero allocations once its capacity has warmed up — the serve hit path
  /// depends on this.
  static void CanonicalKeyInto(const core::ServiceRequest& request,
                               std::string* out);

  /// Zero-copy lookup: returns a refcounted handle to the cached response
  /// (refreshing its recency), or nullptr on miss/expiry. Performs no heap
  /// allocation and no body copy — the hot path of the dissemination tier.
  /// `now_sec` must be non-decreasing per key for TTL accounting to make
  /// sense.
  ResponsePtr LookupShared(std::string_view key, double now_sec);

  /// Inserts (or replaces) the shared response under `key`. `ttl_sec` == 0
  /// uses the config default; > 0 overrides it (the effective TTL is the
  /// tighter of the two when both are set). The body is NOT copied — the
  /// cache shares ownership with every outstanding reader.
  void InsertShared(std::string_view key, ResponsePtr response,
                    double now_sec, double ttl_sec = 0.0);

  /// Copying shim over LookupShared for callers that want a value.
  std::optional<core::ServiceResponse> Lookup(const std::string& key,
                                              double now_sec);

  /// Copying-free shim over InsertShared (wraps `response` in a fresh
  /// control block; the body itself is moved, not copied).
  void Insert(const std::string& key, core::ServiceResponse response,
              double now_sec, double ttl_sec = 0.0);

  /// Removes `key` if present; returns whether it was.
  bool Erase(const std::string& key);

  /// Drops every entry (counters are preserved).
  void Clear();

  /// Aggregate counters. Each shard's counters are snapshotted atomically
  /// under that shard's own lock (the same lock every mutation holds), so
  /// the per-shard slices are internally consistent — hits/misses/bytes
  /// from one shard can never tear mid-update. Shards are read one after
  /// another, so the aggregate is a sequence of per-shard snapshots, not a
  /// single global freeze — the usual sharded-counter semantics.
  CacheStats Totals() const;
  CacheStats ShardStats(int shard) const;
  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// Which shard `key` lives in (FNV-1a; stable across runs/platforms).
  int ShardOf(std::string_view key) const;

 private:
  /// Transparent heterogeneous hash so LookupShared can probe the index
  /// with a string_view — no temporary std::string on the hit path.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  struct Entry {
    std::string key;
    ResponsePtr response;
    double expires_at_sec = 0.0;  // 0 = never.
    size_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // Front = most recently used.
    std::unordered_map<std::string, std::list<Entry>::iterator, StringHash,
                       std::equal_to<>>
        index;
    size_t bytes = 0;
    CacheStats stats;
  };

  static size_t EntryBytes(std::string_view key,
                           const core::ServiceResponse& response);

  CacheConfig config_;
  size_t shard_capacity_bytes_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace dflow::serve

#endif  // DFLOW_SERVE_RESPONSE_CACHE_H_
