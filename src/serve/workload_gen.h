#ifndef DFLOW_SERVE_WORKLOAD_GEN_H_
#define DFLOW_SERVE_WORKLOAD_GEN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/web_service.h"
#include "util/rng.h"

namespace dflow::serve {

/// One event of an open-loop arrival schedule.
struct TimedRequest {
  double at_sec = 0.0;
  core::ServiceRequest request;
};

/// Seeded request generator over a fixed endpoint population with
/// Zipf-distributed popularity — the standard model for dissemination
/// traffic (a few hot candidate queries / retro-browse URLs dominate, a
/// long tail of one-off lookups). `zipf_s == 0` degenerates to uniform.
///
/// Popularity ranks are assigned to endpoints through a seeded shuffle, so
/// the hot set is spread across the population (and across cache shards)
/// instead of being whatever happened to be listed first.
///
/// Determinism: every draw comes from one seeded Rng, so the same
/// (population, zipf_s, seed) triple reproduces the exact request stream
/// and open-loop schedule, byte for byte — `Fingerprint()` hashes a stream
/// prefix so harnesses can assert it. Fork() derives an independent child
/// stream (per closed-loop client) from the parent's state.
///
/// Not thread-safe; give each client thread its own Fork().
class WorkloadGen {
 public:
  WorkloadGen(std::vector<core::ServiceRequest> population, double zipf_s,
              uint64_t seed);

  /// The next request (advances the stream).
  const core::ServiceRequest& Next();

  /// Poisson arrivals at `rate_per_sec` over [0, duration_sec), each
  /// carrying the next request of the stream. Advances the stream.
  std::vector<TimedRequest> OpenLoopSchedule(double rate_per_sec,
                                             double duration_sec);

  /// Independent child generator over the same population (same popularity
  /// assignment, decorrelated draws).
  WorkloadGen Fork();

  /// MD5 over the canonical keys of the next `n` requests. ADVANCES the
  /// stream: fingerprint a dedicated generator, not one you then serve
  /// from (or expect the served stream to continue where the fingerprint
  /// stopped — which is itself deterministic).
  std::string Fingerprint(int64_t n);

  size_t population_size() const { return population_->size(); }
  double zipf_s() const { return zipf_s_; }

  /// Popularity-rank -> population index mapping (rank 0 is hottest).
  const std::vector<size_t>& rank_to_index() const { return rank_to_index_; }

 private:
  WorkloadGen(std::shared_ptr<const std::vector<core::ServiceRequest>> pop,
              std::vector<size_t> rank_to_index, double zipf_s, Rng rng);

  std::shared_ptr<const std::vector<core::ServiceRequest>> population_;
  std::vector<size_t> rank_to_index_;
  double zipf_s_;
  Rng rng_;
};

}  // namespace dflow::serve

#endif  // DFLOW_SERVE_WORKLOAD_GEN_H_
