#ifndef DFLOW_SERVE_WORKLOAD_GEN_H_
#define DFLOW_SERVE_WORKLOAD_GEN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/web_service.h"
#include "util/rng.h"

namespace dflow::serve {

/// One event of an open-loop arrival schedule.
struct TimedRequest {
  double at_sec = 0.0;
  core::ServiceRequest request;
};

/// Seeded request generator over a fixed endpoint population with
/// Zipf-distributed popularity — the standard model for dissemination
/// traffic (a few hot candidate queries / retro-browse URLs dominate, a
/// long tail of one-off lookups). `zipf_s == 0` degenerates to uniform.
///
/// Popularity ranks are assigned to endpoints through a seeded shuffle, so
/// the hot set is spread across the population (and across cache shards)
/// instead of being whatever happened to be listed first.
///
/// Determinism: every draw comes from one seeded Rng, so the same
/// (population, zipf_s, seed) triple reproduces the exact request stream
/// and open-loop schedule, byte for byte — `Fingerprint()` hashes a stream
/// prefix so harnesses can assert it. Fork() derives an independent child
/// stream (per closed-loop client) from the parent's state.
///
/// Not thread-safe; give each client thread its own Fork().
class WorkloadGen {
 public:
  WorkloadGen(std::vector<core::ServiceRequest> population, double zipf_s,
              uint64_t seed);

  /// The next request (advances the stream).
  const core::ServiceRequest& Next();

  /// Poisson arrivals at `rate_per_sec` over [0, duration_sec), each
  /// carrying the next request of the stream. Advances the stream.
  std::vector<TimedRequest> OpenLoopSchedule(double rate_per_sec,
                                             double duration_sec);

  /// Inhomogeneous Poisson arrivals over [0, duration_sec) with
  /// time-varying intensity `rate_per_sec_at(t)`, realized by thinning a
  /// homogeneous process at `peak_rate_per_sec` (which must dominate the
  /// rate function everywhere; checked). Rejected candidate points consume
  /// one uniform draw but never advance the request stream, so the k-th
  /// ACCEPTED arrival always carries the k-th request of the stream — the
  /// schedule is a pure function of (population, zipf_s, seed, rate shape).
  /// This is the primitive the scenario-matrix shape generators (diurnal
  /// cycles, flash crowds) are layered on.
  std::vector<TimedRequest> OpenLoopScheduleRate(
      const std::function<double(double)>& rate_per_sec_at,
      double peak_rate_per_sec, double duration_sec);

  /// Independent child generator over the same population (same popularity
  /// assignment, decorrelated draws).
  ///
  /// Contract (relied on by closed-loop clients and by open-loop Poisson
  /// superposition — N forks replaying OpenLoopSchedule(rate/N, d) jointly
  /// form a Poisson stream at the full rate):
  ///   * child i is a pure function of the parent's seed and the number of
  ///     forks taken BEFORE it — forking more children later never perturbs
  ///     an earlier child's stream, so per-child fingerprints are stable
  ///     across the total fork count;
  ///   * sibling streams are decorrelated (each Fork() re-seeds through
  ///     SplitMix64), statistically independent for workload purposes while
  ///     remaining jointly deterministic from the one parent seed;
  ///   * each Fork() advances the parent's RNG state: the parent's
  ///     SUBSEQUENT draws depend on how many children it has forked (fork
  ///     everything up front, then draw).
  WorkloadGen Fork();

  /// MD5 over the canonical keys of the next `n` requests. ADVANCES the
  /// stream: fingerprint a dedicated generator, not one you then serve
  /// from (or expect the served stream to continue where the fingerprint
  /// stopped — which is itself deterministic).
  std::string Fingerprint(int64_t n);

  size_t population_size() const { return population_->size(); }
  double zipf_s() const { return zipf_s_; }

  /// The request at popularity rank `rank` (0 is hottest). Does NOT
  /// advance the stream — scenario generators use this to aim synthetic
  /// traffic at a specific endpoint (a flash crowd hammering the newly
  /// famous pulsar's VOTable) or to sweep the population in rank order
  /// (a bulk reprocessing campaign). Requires 0 <= rank < population.
  const core::ServiceRequest& RequestAtRank(size_t rank) const;

  /// Popularity-rank -> population index mapping (rank 0 is hottest).
  const std::vector<size_t>& rank_to_index() const { return rank_to_index_; }

 private:
  WorkloadGen(std::shared_ptr<const std::vector<core::ServiceRequest>> pop,
              std::vector<size_t> rank_to_index, double zipf_s, Rng rng);

  std::shared_ptr<const std::vector<core::ServiceRequest>> population_;
  std::vector<size_t> rank_to_index_;
  double zipf_s_;
  Rng rng_;
};

}  // namespace dflow::serve

#endif  // DFLOW_SERVE_WORKLOAD_GEN_H_
