#include "serve/response_cache.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace dflow::serve {

namespace {

constexpr size_t kPerEntryOverhead = 64;

// FNV-1a 64-bit: deterministic across platforms and runs (std::hash makes
// no such promise), so shard assignment — and therefore per-shard counter
// expectations in tests — replays exactly.
uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

ShardedResponseCache::ShardedResponseCache(CacheConfig config)
    : config_(config) {
  DFLOW_CHECK(config_.num_shards > 0);
  shards_.reserve(static_cast<size_t>(config_.num_shards));
  for (int i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_capacity_bytes_ =
      config_.capacity_bytes / static_cast<size_t>(config_.num_shards);
}

void ShardedResponseCache::CanonicalKeyInto(
    const core::ServiceRequest& request, std::string* out) {
  // '\x1e' (record sep) between fields, '\x1f' (unit sep) between key and
  // value: no parameter content can forge another request's key.
  out->clear();
  out->append(request.path);
  for (const auto& [name, value] : request.params) {  // std::map: sorted.
    out->push_back('\x1e');
    out->append(name);
    out->push_back('\x1f');
    out->append(value);
  }
}

std::string ShardedResponseCache::CanonicalKey(
    const core::ServiceRequest& request) {
  std::string key;
  key.reserve(request.path.size() + 16 * request.params.size());
  CanonicalKeyInto(request, &key);
  return key;
}

int ShardedResponseCache::ShardOf(std::string_view key) const {
  return static_cast<int>(Fnv1a(key) %
                          static_cast<uint64_t>(shards_.size()));
}

size_t ShardedResponseCache::EntryBytes(
    std::string_view key, const core::ServiceResponse& response) {
  return key.size() + response.body.size() + response.content_type.size() +
         kPerEntryOverhead;
}

ResponsePtr ShardedResponseCache::LookupShared(std::string_view key,
                                               double now_sec) {
  Shard& shard = *shards_[static_cast<size_t>(ShardOf(key))];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);  // Heterogeneous: no temporary string.
  if (it == shard.index.end()) {
    ++shard.stats.misses;
    return nullptr;
  }
  auto entry_it = it->second;
  if (entry_it->expires_at_sec > 0.0 && now_sec >= entry_it->expires_at_sec) {
    shard.bytes -= entry_it->bytes;
    shard.lru.erase(entry_it);
    shard.index.erase(it);
    ++shard.stats.expirations;
    ++shard.stats.misses;
    return nullptr;
  }
  // Refresh recency: splice to the front of the LRU list (relinks nodes,
  // allocates nothing), then hand out another reference to the body.
  shard.lru.splice(shard.lru.begin(), shard.lru, entry_it);
  ++shard.stats.hits;
  return entry_it->response;
}

std::optional<core::ServiceResponse> ShardedResponseCache::Lookup(
    const std::string& key, double now_sec) {
  ResponsePtr shared = LookupShared(key, now_sec);
  if (shared == nullptr) {
    return std::nullopt;
  }
  return *shared;
}

void ShardedResponseCache::InsertShared(std::string_view key,
                                        ResponsePtr response, double now_sec,
                                        double ttl_sec) {
  if (response == nullptr) {
    return;
  }
  size_t bytes = EntryBytes(key, *response);
  Shard& shard = *shards_[static_cast<size_t>(ShardOf(key))];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (bytes > shard_capacity_bytes_) {
    return;  // Would evict the whole shard and then itself; not worth it.
  }
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  double effective_ttl = config_.default_ttl_sec;
  if (ttl_sec > 0.0) {
    effective_ttl = effective_ttl > 0.0 ? std::min(effective_ttl, ttl_sec)
                                        : ttl_sec;
  }
  Entry entry;
  entry.key = std::string(key);
  entry.response = std::move(response);
  entry.expires_at_sec =
      effective_ttl > 0.0 ? now_sec + effective_ttl : 0.0;
  entry.bytes = bytes;
  shard.lru.push_front(std::move(entry));
  shard.index.emplace(shard.lru.front().key, shard.lru.begin());
  shard.bytes += bytes;
  ++shard.stats.inserts;
  while (shard.bytes > shard_capacity_bytes_) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.stats.evictions;
  }
}

void ShardedResponseCache::Insert(const std::string& key,
                                  core::ServiceResponse response,
                                  double now_sec, double ttl_sec) {
  InsertShared(key,
               std::make_shared<const core::ServiceResponse>(
                   std::move(response)),
               now_sec, ttl_sec);
}

bool ShardedResponseCache::Erase(const std::string& key) {
  Shard& shard = *shards_[static_cast<size_t>(ShardOf(key))];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    return false;
  }
  shard.bytes -= it->second->bytes;
  shard.lru.erase(it->second);
  shard.index.erase(it);
  return true;
}

void ShardedResponseCache::Clear() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

CacheStats ShardedResponseCache::ShardStats(int shard_index) const {
  DFLOW_CHECK(shard_index >= 0 &&
              shard_index < static_cast<int>(shards_.size()));
  const Shard& shard = *shards_[static_cast<size_t>(shard_index)];
  std::lock_guard<std::mutex> lock(shard.mu);
  CacheStats stats = shard.stats;
  stats.bytes = shard.bytes;
  stats.entries = shard.lru.size();
  return stats;
}

CacheStats ShardedResponseCache::Totals() const {
  // Each ShardStats() call snapshots that shard's counters under its own
  // mutex — the shard lock every writer holds — so no individual counter
  // (or the bytes/entries pair) is ever read mid-update.
  CacheStats total;
  for (int i = 0; i < num_shards(); ++i) {
    CacheStats s = ShardStats(i);
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.expirations += s.expirations;
    total.inserts += s.inserts;
    total.bytes += s.bytes;
    total.entries += s.entries;
  }
  return total;
}

}  // namespace dflow::serve
