#include "core/web_service.h"

#include <cerrno>
#include <cstdlib>

namespace dflow::core {

Result<int64_t> ServiceRequest::IntParam(const std::string& key,
                                         int64_t fallback) const {
  auto it = params.find(key);
  if (it == params.end()) {
    return fallback;
  }
  const std::string& raw = it->second;
  if (raw.empty()) {
    return Status::InvalidArgument("parameter '" + key + "' is empty");
  }
  errno = 0;
  char* end = nullptr;
  int64_t value = std::strtoll(raw.c_str(), &end, 10);
  if (end == raw.c_str() || end == nullptr || *end != '\0') {
    return Status::InvalidArgument("parameter '" + key +
                                   "' is not an integer: " + raw);
  }
  if (errno == ERANGE) {
    return Status::InvalidArgument("parameter '" + key +
                                   "' does not fit in int64: " + raw);
  }
  return value;
}

Status ValidateMountPrefix(const std::string& prefix) {
  if (prefix.empty()) {
    return Status::InvalidArgument("empty mount prefix");
  }
  if (prefix.front() == '/' || prefix.back() == '/') {
    return Status::InvalidArgument("mount prefix '" + prefix +
                                   "' must not start or end with '/'");
  }
  return Status::OK();
}

Status ServiceRegistry::Mount(const std::string& prefix,
                              std::shared_ptr<WebService> service) {
  if (service == nullptr) {
    return Status::InvalidArgument("null service");
  }
  DFLOW_RETURN_IF_ERROR(ValidateMountPrefix(prefix));
  auto [it, inserted] = mounts_.try_emplace(prefix, std::move(service));
  if (!inserted) {
    return Status::AlreadyExists("prefix '" + prefix + "' already mounted");
  }
  return Status::OK();
}

Result<ServiceResponse> ServiceRegistry::Handle(
    const ServiceRequest& request) const {
  if (request.path.empty()) {
    return Status::NotFound(
        "empty request path; expected '<prefix>/<endpoint>'");
  }
  // Longest-prefix match at '/' boundaries: for "a/b/c" try "a/b/c", then
  // "a/b", then "a". Nested mounts ("cleo" and "cleo/es2") therefore
  // resolve to the most specific service.
  size_t len = request.path.size();
  while (len > 0) {
    auto it = mounts_.find(request.path.substr(0, len));
    if (it != mounts_.end()) {
      ServiceRequest inner = request;
      inner.path = len >= request.path.size()
                       ? ""
                       : request.path.substr(len + 1);
      return it->second->Handle(inner);
    }
    size_t slash = request.path.rfind('/', len - 1);
    if (slash == std::string::npos) {
      break;
    }
    len = slash;
  }
  return Status::NotFound("no service mounted for '" + request.path + "'");
}

std::vector<std::string> ServiceRegistry::Endpoints() const {
  std::vector<std::string> out;
  for (const auto& [prefix, service] : mounts_) {
    for (const std::string& endpoint : service->Endpoints()) {
      out.push_back(prefix + "/" + endpoint);
    }
  }
  return out;
}

}  // namespace dflow::core
