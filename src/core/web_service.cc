#include "core/web_service.h"

#include <cstdlib>

namespace dflow::core {

Result<int64_t> ServiceRequest::IntParam(const std::string& key,
                                         int64_t fallback) const {
  auto it = params.find(key);
  if (it == params.end()) {
    return fallback;
  }
  char* end = nullptr;
  int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || it->second.empty()) {
    return Status::InvalidArgument("parameter '" + key +
                                   "' is not an integer: " + it->second);
  }
  return value;
}

Status ServiceRegistry::Mount(const std::string& prefix,
                              std::shared_ptr<WebService> service) {
  if (service == nullptr) {
    return Status::InvalidArgument("null service");
  }
  auto [it, inserted] = mounts_.try_emplace(prefix, std::move(service));
  if (!inserted) {
    return Status::AlreadyExists("prefix '" + prefix + "' already mounted");
  }
  return Status::OK();
}

Result<ServiceResponse> ServiceRegistry::Handle(
    const ServiceRequest& request) const {
  size_t slash = request.path.find('/');
  std::string prefix =
      slash == std::string::npos ? request.path : request.path.substr(0, slash);
  auto it = mounts_.find(prefix);
  if (it == mounts_.end()) {
    return Status::NotFound("no service mounted at '" + prefix + "'");
  }
  ServiceRequest inner = request;
  inner.path =
      slash == std::string::npos ? "" : request.path.substr(slash + 1);
  return it->second->Handle(inner);
}

std::vector<std::string> ServiceRegistry::Endpoints() const {
  std::vector<std::string> out;
  for (const auto& [prefix, service] : mounts_) {
    for (const std::string& endpoint : service->Endpoints()) {
      out.push_back(prefix + "/" + endpoint);
    }
  }
  return out;
}

}  // namespace dflow::core
