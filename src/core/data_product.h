#ifndef DFLOW_CORE_DATA_PRODUCT_H_
#define DFLOW_CORE_DATA_PRODUCT_H_

#include <cstdint>
#include <map>
#include <string>

#include "provenance/provenance.h"

namespace dflow::core {

/// A unit of data moving through a workflow: raw telescope pointings,
/// detector runs, ARC files, candidate lists, reconstructed events. The
/// payload itself is not carried here — case-study modules process real
/// payloads at laptop scale — but the byte size is exact paper-scale
/// accounting, and the provenance chain accumulates one step per stage,
/// which is how versioned data products keep their history (§2.2, §3.2).
struct DataProduct {
  std::string name;
  int64_t bytes = 0;
  prov::ProvenanceRecord provenance;
  std::map<std::string, std::string> attributes;

  /// Convenience accessor; returns `fallback` when absent.
  std::string Attr(const std::string& key,
                   const std::string& fallback = "") const {
    auto it = attributes.find(key);
    return it == attributes.end() ? fallback : it->second;
  }
};

}  // namespace dflow::core

#endif  // DFLOW_CORE_DATA_PRODUCT_H_
