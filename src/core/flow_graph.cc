#include "core/flow_graph.h"

#include <algorithm>
#include <deque>
#include <sstream>

namespace dflow::core {

Status FlowGraph::AddStage(std::shared_ptr<Stage> stage) {
  if (stage == nullptr) {
    return Status::InvalidArgument("null stage");
  }
  const std::string& name = stage->name();
  if (stages_.count(name) > 0) {
    return Status::AlreadyExists("stage '" + name + "' already in graph");
  }
  stages_[name] = std::move(stage);
  edges_[name];  // Ensure adjacency entry exists.
  insertion_order_.push_back(name);
  return Status::OK();
}

Status FlowGraph::Connect(const std::string& from, const std::string& to) {
  if (stages_.count(from) == 0) {
    return Status::NotFound("no stage '" + from + "'");
  }
  if (stages_.count(to) == 0) {
    return Status::NotFound("no stage '" + to + "'");
  }
  if (from == to) {
    return Status::InvalidArgument("self-loop on '" + from + "'");
  }
  auto& successors = edges_[from];
  if (std::find(successors.begin(), successors.end(), to) !=
      successors.end()) {
    return Status::AlreadyExists("edge " + from + " -> " + to +
                                 " already exists");
  }
  successors.push_back(to);
  return Status::OK();
}

Result<Stage*> FlowGraph::Find(const std::string& name) const {
  auto it = stages_.find(name);
  if (it == stages_.end()) {
    return Status::NotFound("no stage '" + name + "'");
  }
  return it->second.get();
}

const std::vector<std::string>& FlowGraph::Successors(
    const std::string& name) const {
  static const std::vector<std::string>& kEmpty =
      *new std::vector<std::string>();
  auto it = edges_.find(name);
  return it == edges_.end() ? kEmpty : it->second;
}

std::vector<std::string> FlowGraph::StageNames() const {
  return insertion_order_;
}

Result<std::vector<std::string>> FlowGraph::TopologicalOrder() const {
  std::map<std::string, int> in_degree;
  for (const std::string& name : insertion_order_) {
    in_degree[name];
  }
  for (const auto& [from, successors] : edges_) {
    for (const std::string& to : successors) {
      ++in_degree[to];
    }
  }
  std::deque<std::string> ready;
  for (const std::string& name : insertion_order_) {
    if (in_degree[name] == 0) {
      ready.push_back(name);
    }
  }
  std::vector<std::string> order;
  while (!ready.empty()) {
    std::string name = ready.front();
    ready.pop_front();
    order.push_back(name);
    for (const std::string& to : Successors(name)) {
      if (--in_degree[to] == 0) {
        ready.push_back(to);
      }
    }
  }
  if (order.size() != stages_.size()) {
    return Status::FailedPrecondition("workflow graph contains a cycle");
  }
  return order;
}

std::string FlowGraph::ToDot(
    const std::map<std::string, std::string>& annotations) const {
  std::ostringstream os;
  os << "digraph workflow {\n  rankdir=TB;\n  node [shape=box];\n";
  for (const std::string& name : insertion_order_) {
    os << "  \"" << name << "\"";
    auto it = annotations.find(name);
    if (it != annotations.end()) {
      os << " [label=\"" << name << "\\n" << it->second << "\"]";
    }
    os << ";\n";
  }
  for (const std::string& name : insertion_order_) {
    for (const std::string& to : Successors(name)) {
      os << "  \"" << name << "\" -> \"" << to << "\";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace dflow::core
