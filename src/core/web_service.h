#ifndef DFLOW_CORE_WEB_SERVICE_H_
#define DFLOW_CORE_WEB_SERVICE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/result.h"

namespace dflow::core {

/// A dissemination request: a path like "candidates/top" plus string
/// parameters — the shape of the Web-Services interfaces the paper says
/// all three projects expose ("access to databases and some of the data
/// analysis functionality is provided through Web Services already", §5).
struct ServiceRequest {
  std::string path;
  std::map<std::string, std::string> params;

  /// Parameter accessor with default.
  std::string Param(const std::string& key,
                    const std::string& fallback = "") const {
    auto it = params.find(key);
    return it == params.end() ? fallback : it->second;
  }
  Result<int64_t> IntParam(const std::string& key, int64_t fallback) const;
};

struct ServiceResponse {
  /// "text/plain", "text/xml" (VOTable), "text/tab-separated-values".
  std::string content_type = "text/plain";
  std::string body;
};

/// One dissemination endpoint group (the candidate DB, an EventStore, the
/// WebLab). Implementations register handlers by path.
class WebService {
 public:
  virtual ~WebService() = default;

  /// Dispatches a request; NotFound for unknown paths.
  virtual Result<ServiceResponse> Handle(const ServiceRequest& request) = 0;

  /// Paths this service answers (for discovery / "full access to data and
  /// analysis functionality").
  virtual std::vector<std::string> Endpoints() const = 0;

  virtual const std::string& name() const = 0;
};

/// Routes requests across mounted services by path prefix
/// ("arecibo/candidates/top" -> the service mounted at "arecibo"). The
/// federation hook the paper's next-steps section asks for: one entry
/// point spanning the three projects' dissemination layers.
class ServiceRegistry {
 public:
  /// Mounts `service` at `prefix`. AlreadyExists on duplicate prefixes.
  Status Mount(const std::string& prefix, std::shared_ptr<WebService> service);

  /// Routes "prefix/rest..." to the mounted service with path "rest...".
  Result<ServiceResponse> Handle(const ServiceRequest& request) const;

  /// Every mounted endpoint, fully qualified.
  std::vector<std::string> Endpoints() const;

 private:
  std::map<std::string, std::shared_ptr<WebService>> mounts_;
};

}  // namespace dflow::core

#endif  // DFLOW_CORE_WEB_SERVICE_H_
