#ifndef DFLOW_CORE_WEB_SERVICE_H_
#define DFLOW_CORE_WEB_SERVICE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/result.h"

namespace dflow::core {

/// A dissemination request: a path like "candidates/top" plus string
/// parameters — the shape of the Web-Services interfaces the paper says
/// all three projects expose ("access to databases and some of the data
/// analysis functionality is provided through Web Services already", §5).
struct ServiceRequest {
  std::string path;
  std::map<std::string, std::string> params;

  /// Parameter accessor with default.
  std::string Param(const std::string& key,
                    const std::string& fallback = "") const {
    auto it = params.find(key);
    return it == params.end() ? fallback : it->second;
  }

  /// Integer parameter accessor. Returns `fallback` when the key is absent;
  /// InvalidArgument when the value is empty, non-numeric, has trailing
  /// junk, or does not fit in int64 (overflow/underflow is an error, never
  /// a silent clamp).
  Result<int64_t> IntParam(const std::string& key, int64_t fallback) const;
};

struct ServiceResponse {
  /// "text/plain", "text/xml" (VOTable), "text/tab-separated-values".
  std::string content_type = "text/plain";
  std::string body;

  /// Cache-control hint consumed by the dissemination tier
  /// (`serve::ShardedResponseCache` via `serve::ServeLoop`):
  ///   0 (default)     — cacheable, use the cache's default TTL;
  ///   > 0             — cacheable for at most this many seconds;
  ///   kUncacheable    — must never be cached (side effects or
  ///                     per-request state, e.g. WebLab `extract` which
  ///                     materializes a table).
  /// Handlers that serve immutable history (EventStore `resolve` at an
  /// explicit timestamp, Retro-Browser snapshots) advertise long lifetimes.
  static constexpr double kUncacheable = -1.0;
  double cache_max_age_sec = 0.0;
};

/// One dissemination endpoint group (the candidate DB, an EventStore, the
/// WebLab). Implementations register handlers by path.
class WebService {
 public:
  virtual ~WebService() = default;

  /// Dispatches a request; NotFound for unknown paths.
  virtual Result<ServiceResponse> Handle(const ServiceRequest& request) = 0;

  /// Paths this service answers (for discovery / "full access to data and
  /// analysis functionality").
  virtual std::vector<std::string> Endpoints() const = 0;

  virtual const std::string& name() const = 0;
};

/// Routes requests across mounted services by path prefix
/// ("arecibo/candidates/top" -> the service mounted at "arecibo"). The
/// federation hook the paper's next-steps section asks for: one entry
/// point spanning the three projects' dissemination layers.
///
/// Routing contract (exercised in web_service_test.cc):
///   * prefixes may be nested ("cleo" and "cleo/es2"); the LONGEST mounted
///     prefix that matches on a '/' boundary wins;
///   * a path exactly equal to a mount prefix (or the prefix plus a
///     trailing '/') dispatches to that service with an empty inner path —
///     services decide what their "" endpoint means (typically NotFound);
///   * the empty path never routes: NotFound;
///   * mounting at "" or at a prefix with a leading/trailing '/' is
///     InvalidArgument; duplicate prefixes are AlreadyExists.
/// The mount-prefix rules, shared by every consumer that accepts one
/// (ServiceRegistry::Mount, serve::ServeLoop::SetReplica): OK for a
/// non-empty prefix with no leading or trailing '/'; InvalidArgument
/// otherwise.
Status ValidateMountPrefix(const std::string& prefix);

class ServiceRegistry {
 public:
  /// Mounts `service` at `prefix`. AlreadyExists on duplicate prefixes;
  /// InvalidArgument for a null service or a prefix failing
  /// ValidateMountPrefix().
  Status Mount(const std::string& prefix, std::shared_ptr<WebService> service);

  /// Routes "prefix/rest..." to the longest-prefix mounted service with
  /// path "rest...".
  Result<ServiceResponse> Handle(const ServiceRequest& request) const;

  /// Every mounted endpoint, fully qualified.
  std::vector<std::string> Endpoints() const;

 private:
  std::map<std::string, std::shared_ptr<WebService>> mounts_;
};

}  // namespace dflow::core

#endif  // DFLOW_CORE_WEB_SERVICE_H_
