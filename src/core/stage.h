#ifndef DFLOW_CORE_STAGE_H_
#define DFLOW_CORE_STAGE_H_

#include <functional>
#include <string>
#include <vector>

#include "core/data_product.h"
#include "util/result.h"

namespace dflow::core {

/// Cost model used to map a stage onto simulated compute: the virtual-time
/// cost of processing one product is
///   seconds_per_product + bytes * seconds_per_byte.
struct StageCosts {
  double seconds_per_product = 0.0;
  double seconds_per_byte = 0.0;
};

/// One processing step in a workflow graph. Subclasses (or LambdaStage)
/// implement Process(), mapping one input product to zero or more outputs.
/// A stage that emits nothing is a filter/sink; a stage that emits several
/// products is a splitter (e.g. one telescope pointing -> per-beam files).
class Stage {
 public:
  Stage(std::string name, StageCosts costs)
      : name_(std::move(name)), costs_(costs) {}
  virtual ~Stage() = default;

  Stage(const Stage&) = delete;
  Stage& operator=(const Stage&) = delete;

  virtual Result<std::vector<DataProduct>> Process(
      const DataProduct& input) = 0;

  /// Virtual-time cost of processing `input` on one worker.
  virtual double ServiceTime(const DataProduct& input) const {
    return costs_.seconds_per_product +
           static_cast<double>(input.bytes) * costs_.seconds_per_byte;
  }

  const std::string& name() const { return name_; }
  const StageCosts& costs() const { return costs_; }

 private:
  std::string name_;
  StageCosts costs_;
};

/// Stage built from a closure; the workhorse for assembling case-study
/// pipelines without a subclass per step.
class LambdaStage : public Stage {
 public:
  using Fn =
      std::function<Result<std::vector<DataProduct>>(const DataProduct&)>;

  LambdaStage(std::string name, StageCosts costs, Fn fn)
      : Stage(std::move(name), costs), fn_(std::move(fn)) {}

  Result<std::vector<DataProduct>> Process(const DataProduct& input) override {
    return fn_(input);
  }

 private:
  Fn fn_;
};

}  // namespace dflow::core

#endif  // DFLOW_CORE_STAGE_H_
