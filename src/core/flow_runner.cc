#include "core/flow_runner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <memory>
#include <sstream>

#include "util/logging.h"
#include "util/units.h"

namespace dflow::core {

namespace {

/// Virtual seconds -> trace microseconds, rounded the same way every run.
int64_t UsOf(double seconds) {
  return static_cast<int64_t>(std::llround(seconds * 1e6));
}

std::string FmtSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", seconds);
  return buf;
}

}  // namespace

FlowRunner::FlowRunner(sim::Simulation* simulation, FlowGraph* graph,
                       uint64_t retry_seed)
    : simulation_(simulation), graph_(graph), retry_rng_(retry_seed) {
  DFLOW_CHECK(simulation_ != nullptr);
  DFLOW_CHECK(graph_ != nullptr);
}

void FlowRunner::StageState::RefreshSnapshot() const {
  snapshot.products_in = counters.products_in->Value();
  snapshot.products_out = counters.products_out->Value();
  snapshot.bytes_in = counters.bytes_in->Value();
  snapshot.bytes_out = counters.bytes_out->Value();
  snapshot.errors = counters.errors->Value();
  snapshot.retries = counters.retries->Value();
  snapshot.dead_lettered = counters.dead_lettered->Value();
}

obs::MetricsRegistry& FlowRunner::Registry() {
  if (metrics_ != nullptr) {
    return *metrics_;
  }
  if (owned_metrics_ == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
  }
  return *owned_metrics_;
}

obs::MetricsRegistry* FlowRunner::metrics_registry() { return &Registry(); }

Status FlowRunner::SetMetricsRegistry(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    return Status::InvalidArgument("registry must not be null");
  }
  if (!states_.empty() || ran_) {
    return Status::FailedPrecondition(
        "SetMetricsRegistry must precede stage configuration");
  }
  metrics_ = registry;
  return Status::OK();
}

Status FlowRunner::SetTracer(obs::Tracer* tracer) {
  if (ran_) {
    return Status::FailedPrecondition("run already started");
  }
  tracer_ = tracer;
  return Status::OK();
}

int FlowRunner::TidFor(const std::string& stage) {
  auto [it, inserted] =
      trace_tids_.try_emplace(stage, static_cast<int>(trace_tids_.size()));
  if (inserted && tracer_ != nullptr) {
    tracer_->NameTrack(it->second, stage);
  }
  return it->second;
}

FlowRunner::StageState& FlowRunner::StateOf(const std::string& stage) {
  auto [it, inserted] = states_.try_emplace(stage);
  if (inserted) {
    obs::MetricsRegistry& registry = Registry();
    const std::string prefix = "flow." + stage + ".";
    StageCounters& c = it->second.counters;
    c.products_in = registry.GetCounter(prefix + "products_in");
    c.products_out = registry.GetCounter(prefix + "products_out");
    c.bytes_in = registry.GetCounter(prefix + "bytes_in");
    c.bytes_out = registry.GetCounter(prefix + "bytes_out");
    c.errors = registry.GetCounter(prefix + "errors");
    c.retries = registry.GetCounter(prefix + "retries");
    c.dead_lettered = registry.GetCounter(prefix + "dead_lettered");
  }
  return it->second;
}

sim::Resource* FlowRunner::ResourceOf(const std::string& stage_name,
                                      StageState& state) {
  if (state.resource == nullptr) {
    state.resource = std::make_unique<sim::Resource>(simulation_, stage_name,
                                                     state.workers);
  }
  return state.resource.get();
}

Status FlowRunner::SetWorkers(const std::string& stage, int workers) {
  if (ran_) {
    return Status::FailedPrecondition("run already started");
  }
  DFLOW_ASSIGN_OR_RETURN(Stage * ignored, graph_->Find(stage));
  (void)ignored;
  if (workers <= 0) {
    return Status::InvalidArgument("workers must be positive");
  }
  StateOf(stage).workers = workers;
  return Status::OK();
}

Status FlowRunner::SetRelease(const std::string& stage, std::string release) {
  DFLOW_ASSIGN_OR_RETURN(Stage * ignored, graph_->Find(stage));
  (void)ignored;
  StateOf(stage).release = std::move(release);
  return Status::OK();
}

Status FlowRunner::SetSite(const std::string& stage, std::string site) {
  DFLOW_ASSIGN_OR_RETURN(Stage * ignored, graph_->Find(stage));
  (void)ignored;
  StateOf(stage).site = std::move(site);
  return Status::OK();
}

Status FlowRunner::SetRetryPolicy(const std::string& stage,
                                  RetryPolicy policy) {
  DFLOW_ASSIGN_OR_RETURN(Stage * ignored, graph_->Find(stage));
  (void)ignored;
  if (policy.max_attempts < 1) {
    return Status::InvalidArgument("max_attempts must be >= 1");
  }
  if (policy.backoff_initial_sec < 0.0 || policy.backoff_max_sec < 0.0 ||
      policy.backoff_multiplier < 1.0) {
    return Status::InvalidArgument("invalid backoff parameters");
  }
  if (policy.jitter_fraction < 0.0 || policy.jitter_fraction >= 1.0) {
    return Status::InvalidArgument("jitter_fraction must be in [0, 1)");
  }
  StateOf(stage).retry = policy;
  return Status::OK();
}

Status FlowRunner::InjectTransientErrors(const std::string& stage,
                                         int64_t count) {
  DFLOW_ASSIGN_OR_RETURN(Stage * ignored, graph_->Find(stage));
  (void)ignored;
  if (count < 0) {
    return Status::InvalidArgument("count must be >= 0");
  }
  StateOf(stage).forced_failures += count;
  return Status::OK();
}

Status FlowRunner::InjectDowntime(const std::string& stage, double seconds) {
  DFLOW_ASSIGN_OR_RETURN(Stage * ignored, graph_->Find(stage));
  (void)ignored;
  if (seconds < 0.0) {
    return Status::InvalidArgument("downtime must be >= 0");
  }
  StageState& state = StateOf(stage);
  sim::Resource* resource = ResourceOf(stage, state);
  // A restart ticket per worker: queued products wait behind them, which
  // is exactly what a crashed stage looks like from upstream.
  for (int i = 0; i < state.workers; ++i) {
    resource->Submit(seconds, nullptr);
  }
  if (tracing()) {
    tracer_->InstantEvent("downtime_injected", "flow",
                          {{"seconds", FmtSeconds(seconds)}}, TidFor(stage));
  }
  DFLOW_LOG(Warning) << "stage '" << stage << "' down for " << seconds
                     << "s at t=" << simulation_->Now();
  return Status::OK();
}

Status FlowRunner::Inject(const std::string& stage, DataProduct product,
                          double at) {
  DFLOW_ASSIGN_OR_RETURN(Stage * ignored, graph_->Find(stage));
  (void)ignored;
  if (at < 0.0) {
    return Status::InvalidArgument("injection time must be >= 0");
  }
  simulation_->ScheduleAt(at, [this, stage, product = std::move(product)] {
    Deliver(stage, product);
  });
  return Status::OK();
}

double FlowRunner::BackoffDelay(const RetryPolicy& policy, int next_attempt) {
  // next_attempt is 1-based over retries: the first retry waits
  // backoff_initial_sec.
  double delay = policy.backoff_initial_sec;
  for (int i = 1; i < next_attempt; ++i) {
    delay *= policy.backoff_multiplier;
    if (delay >= policy.backoff_max_sec) {
      break;
    }
  }
  delay = std::min(delay, policy.backoff_max_sec);
  if (policy.jitter_fraction > 0.0) {
    double swing = policy.jitter_fraction *
                   (2.0 * retry_rng_.NextDouble() - 1.0);
    delay *= 1.0 + swing;
  }
  return delay;
}

void FlowRunner::Deliver(const std::string& stage_name, DataProduct product) {
  StageState& state = StateOf(stage_name);
  state.counters.products_in->Add(1);
  state.counters.bytes_in->Add(product.bytes);
  Enqueue(stage_name, std::move(product), 0, {});
}

void FlowRunner::Enqueue(const std::string& stage_name, DataProduct product,
                         int attempt, std::vector<bool> failure_history) {
  auto stage_or = graph_->Find(stage_name);
  DFLOW_CHECK(stage_or.ok());
  Stage* stage = *stage_or;
  StageState& state = StateOf(stage_name);
  sim::Resource* resource = ResourceOf(stage_name, state);

  double service_time = stage->ServiceTime(product);
  resource->Submit(service_time, [this, stage, stage_name, attempt,
                                  service_time, product = std::move(product),
                                  history =
                                      std::move(failure_history)]() mutable {
    StageState& state = StateOf(stage_name);
    // Resume path: a journaled terminal event for this (stage, input)
    // means every attempt's outcome is already known. The virtual service
    // time was just paid on the stage's workers (identical timeline and
    // utilization); only the real CPU of Process() is skipped.
    const recover::StageEventRecord* record =
        replay_ == nullptr ? nullptr : replay_->Find(stage_name, product.name);
    size_t failed_attempts = 0;
    size_t total_attempts = 0;
    if (record != nullptr) {
      failed_attempts = record->injected_failures.size();
      total_attempts =
          record->kind == recover::StageEventRecord::Kind::kCompleted
              ? failed_attempts + 1
              : failed_attempts;
    }
    const bool replayed =
        record != nullptr && static_cast<size_t>(attempt) < total_attempts;
    bool injected_failure = false;
    Result<std::vector<DataProduct>> outputs =
        Status::Internal("unprocessed");
    if (replayed) {
      if (static_cast<size_t>(attempt) < failed_attempts) {
        // This attempt failed in the journaled run; reproduce the failure
        // without touching the stage. An injected failure still consumes
        // one unit of the forced-failure budget so live products
        // interleaved later in the timeline see the same remaining budget
        // the original run gave them.
        injected_failure = record->injected_failures[attempt];
        if (injected_failure && state.forced_failures > 0) {
          --state.forced_failures;
        }
        outputs = injected_failure
                      ? Status::Internal("injected transient error")
                      : Status::Internal("journaled failure");
      } else {
        // The journaled terminal success: outputs come from the record,
        // provenance is re-stamped below through the normal path (the
        // replayed timestamps are identical, so the chains are too).
        std::vector<DataProduct> restored;
        restored.reserve(record->outputs.size());
        for (const recover::JournaledProduct& out : record->outputs) {
          DataProduct p;
          p.name = out.name;
          p.bytes = out.bytes;
          for (const auto& [key, value] : out.attributes) {
            p.attributes.emplace(key, value);
          }
          restored.push_back(std::move(p));
        }
        outputs = std::move(restored);
      }
    } else if (state.forced_failures > 0) {
      --state.forced_failures;
      injected_failure = true;
      outputs = Status::Internal("injected transient error");
    } else {
      outputs = stage->Process(product);
    }
    if (tracing()) {
      // One span per serviced attempt on the stage's track — the trace
      // mirror of the provenance ProcessingStep this attempt would stamp.
      double end_sec = simulation_->Now();
      obs::TraceArgs args;
      args.emplace_back("product", product.name);
      args.emplace_back("attempt", std::to_string(attempt + 1));
      args.emplace_back("bytes", std::to_string(product.bytes));
      args.emplace_back("outcome", outputs.ok() ? "ok"
                                   : injected_failure ? "injected_error"
                                                      : "error");
      tracer_->CompleteEvent(stage_name, "flow",
                             UsOf(end_sec - service_time),
                             UsOf(service_time), std::move(args),
                             TidFor(stage_name));
    }
    if (!outputs.ok()) {
      state.counters.errors->Add(1);
      history.push_back(injected_failure);
      const RetryPolicy& policy = state.retry;
      if (attempt + 1 < policy.max_attempts) {
        state.counters.retries->Add(1);
        double delay = BackoffDelay(policy, attempt + 1);
        DFLOW_LOG(Warning)
            << "stage '" << stage_name << "' attempt " << (attempt + 1)
            << " failed (" << outputs.status().ToString() << "); retry in "
            << delay << "s";
        if (tracing()) {
          tracer_->InstantEvent(
              "retry_scheduled", "flow",
              {{"product", product.name},
               {"attempt", std::to_string(attempt + 1)},
               {"delay_sec", FmtSeconds(delay)}},
              TidFor(stage_name));
        }
        simulation_->Schedule(delay, [this, stage_name, attempt,
                                      product = std::move(product),
                                      history = std::move(history)]() mutable {
          Enqueue(stage_name, std::move(product), attempt + 1,
                  std::move(history));
        });
        return;
      }
      state.counters.dead_lettered->Add(1);
      // A replayed dead letter carries the journaled error string (the
      // exact status text the original final attempt produced).
      const std::string error_str =
          replayed ? record->error : outputs.status().ToString();
      dead_letters_.push_back(
          DeadLetter{stage_name, product, error_str, simulation_->Now()});
      if (tracing()) {
        tracer_->InstantEvent("dead_letter", "flow",
                              {{"product", product.name},
                               {"error", error_str}},
                              TidFor(stage_name));
      }
      DFLOW_LOG(Warning) << "stage '" << stage_name << "' dead-lettered '"
                         << product.name << "' after " << (attempt + 1)
                         << " attempt(s): " << error_str
                         << (injected_failure ? " [injected]" : "");
      ++terminal_events_;
      if (replayed) {
        ++replayed_events_;
      } else {
        ++live_events_;
        if (journal_ != nullptr) {
          recover::StageEventRecord rec;
          rec.kind = recover::StageEventRecord::Kind::kDeadLettered;
          rec.stage = stage_name;
          rec.input = product.name;
          rec.injected_failures = history;
          rec.error = error_str;
          // Append() force-syncs dead letters: the parked product is on
          // disk before the next simulation event runs.
          Status js = journal_->Append(rec);
          if (!js.ok()) {
            DFLOW_LOG(Error) << "checkpoint journal append failed: "
                             << js.ToString();
          }
        }
      }
      return;
    }
    ++terminal_events_;
    if (replayed) {
      ++replayed_events_;
    } else {
      ++live_events_;
      if (journal_ != nullptr) {
        recover::StageEventRecord rec;
        rec.kind = recover::StageEventRecord::Kind::kCompleted;
        rec.stage = stage_name;
        rec.input = product.name;
        rec.injected_failures = history;
        rec.outputs.reserve(outputs->size());
        for (const DataProduct& out : *outputs) {
          recover::JournaledProduct jp;
          jp.name = out.name;
          jp.bytes = out.bytes;
          jp.attributes.assign(out.attributes.begin(), out.attributes.end());
          rec.outputs.push_back(std::move(jp));
        }
        Status js = journal_->Append(rec);
        if (!js.ok()) {
          DFLOW_LOG(Error) << "checkpoint journal append failed: "
                           << js.ToString();
        }
      }
    }
    const std::vector<std::string>& successors =
        graph_->Successors(stage_name);
    for (DataProduct& output : *outputs) {
      state.counters.products_out->Add(1);
      state.counters.bytes_out->Add(output.bytes);
      // Accumulate the provenance chain.
      prov::ProcessingStep step;
      step.module = stage_name;
      step.version.process = stage_name;
      step.version.release = state.release;
      step.version.change_date = static_cast<int64_t>(simulation_->Now());
      step.site = state.site;
      step.input_files.push_back(product.name);
      output.provenance = product.provenance;
      output.provenance.AddStep(std::move(step));
      if (successors.empty()) {
        state.sink_outputs.push_back(std::move(output));
      } else {
        for (const std::string& next : successors) {
          Deliver(next, output);
        }
      }
    }
  });
}

Status FlowRunner::SetCheckpointJournal(recover::CheckpointJournal* journal) {
  if (ran_) {
    return Status::FailedPrecondition("run already started");
  }
  journal_ = journal;
  return Status::OK();
}

Status FlowRunner::ResumeFrom(const recover::JournalReplay* replay) {
  if (ran_) {
    return Status::FailedPrecondition("run already started");
  }
  replay_ = replay;
  return Status::OK();
}

Status FlowRunner::Start() {
  if (ran_) {
    return Status::FailedPrecondition("run already started");
  }
  DFLOW_ASSIGN_OR_RETURN(auto order, graph_->TopologicalOrder());
  (void)order;
  ran_ = true;
  return Status::OK();
}

Status FlowRunner::Run() {
  DFLOW_RETURN_IF_ERROR(Start());
  simulation_->Run();
  if (journal_ != nullptr) {
    // A clean run leaves no unsynced tail: everything appended is durable
    // before Run() returns.
    DFLOW_RETURN_IF_ERROR(journal_->Sync());
  }
  return Status::OK();
}

const StageMetrics& FlowRunner::MetricsFor(const std::string& stage) const {
  static const StageMetrics& kEmpty = *new StageMetrics();
  auto it = states_.find(stage);
  if (it != states_.end()) {
    it->second.RefreshSnapshot();
    return it->second.snapshot;
  }
  if (!graph_->Find(stage).ok()) {
    DFLOW_LOG(Warning) << "MetricsFor: no stage named '" << stage
                       << "' in the graph; returning empty metrics";
  }
  return kEmpty;
}

Result<StageMetrics> FlowRunner::CheckedMetricsFor(
    const std::string& stage) const {
  DFLOW_ASSIGN_OR_RETURN(Stage * ignored, graph_->Find(stage));
  (void)ignored;
  auto it = states_.find(stage);
  if (it == states_.end()) {
    return StageMetrics{};
  }
  it->second.RefreshSnapshot();
  return it->second.snapshot;
}

const std::vector<DataProduct>& FlowRunner::SinkOutputs(
    const std::string& stage) const {
  static const std::vector<DataProduct>& kEmpty =
      *new std::vector<DataProduct>();
  auto it = states_.find(stage);
  if (it != states_.end()) {
    return it->second.sink_outputs;
  }
  if (!graph_->Find(stage).ok()) {
    DFLOW_LOG(Warning) << "SinkOutputs: no stage named '" << stage
                       << "' in the graph; returning no outputs";
  }
  return kEmpty;
}

Result<std::vector<DataProduct>> FlowRunner::CheckedSinkOutputs(
    const std::string& stage) const {
  DFLOW_ASSIGN_OR_RETURN(Stage * ignored, graph_->Find(stage));
  (void)ignored;
  auto it = states_.find(stage);
  return it == states_.end() ? std::vector<DataProduct>{}
                             : it->second.sink_outputs;
}

double FlowRunner::UtilizationOf(const std::string& stage) const {
  auto it = states_.find(stage);
  if (it == states_.end() || it->second.resource == nullptr) {
    return 0.0;
  }
  return it->second.resource->Utilization();
}

Result<double> FlowRunner::CheckedUtilizationOf(
    const std::string& stage) const {
  DFLOW_ASSIGN_OR_RETURN(Stage * ignored, graph_->Find(stage));
  (void)ignored;
  return UtilizationOf(stage);
}

Result<std::vector<DeadLetter>> FlowRunner::CheckedDeadLetters(
    const std::string& stage) const {
  DFLOW_ASSIGN_OR_RETURN(Stage * ignored, graph_->Find(stage));
  (void)ignored;
  std::vector<DeadLetter> letters;
  for (const DeadLetter& letter : dead_letters_) {
    if (letter.stage == stage) {
      letters.push_back(letter);
    }
  }
  return letters;
}

int64_t FlowRunner::total_retries() const {
  int64_t total = 0;
  for (const auto& [name, state] : states_) {
    total += state.counters.retries->Value();
  }
  return total;
}

int64_t FlowRunner::total_errors() const {
  int64_t total = 0;
  for (const auto& [name, state] : states_) {
    total += state.counters.errors->Value();
  }
  return total;
}

std::string FlowRunner::Report() const {
  std::ostringstream os;
  os << std::left << std::setw(28) << "stage" << std::right << std::setw(10)
     << "in" << std::setw(12) << "bytes_in" << std::setw(10) << "out"
     << std::setw(12) << "bytes_out" << std::setw(7) << "err" << std::setw(7)
     << "retry" << std::setw(6) << "dead" << std::setw(8) << "util" << "\n";
  for (const std::string& name : graph_->StageNames()) {
    const StageMetrics& m = MetricsFor(name);
    os << std::left << std::setw(28) << name << std::right << std::setw(10)
       << m.products_in << std::setw(12) << FormatBytes(m.bytes_in)
       << std::setw(10) << m.products_out << std::setw(12)
       << FormatBytes(m.bytes_out) << std::setw(7) << m.errors << std::setw(7)
       << m.retries << std::setw(6) << m.dead_lettered << std::setw(8)
       << std::fixed << std::setprecision(2) << UtilizationOf(name) << "\n";
  }
  if (!dead_letters_.empty()) {
    os << "dead letters: " << dead_letters_.size() << "\n";
    for (const DeadLetter& letter : dead_letters_) {
      os << "  t=" << std::fixed << std::setprecision(2) << letter.time_sec
         << " " << letter.stage << " '" << letter.product.name << "': "
         << letter.error << "\n";
    }
  }
  return os.str();
}

std::string FlowRunner::AnnotatedDot() const {
  std::map<std::string, std::string> annotations;
  for (const std::string& name : graph_->StageNames()) {
    const StageMetrics& m = MetricsFor(name);
    std::string label =
        "in " + FormatBytes(m.bytes_in) + " / out " + FormatBytes(m.bytes_out);
    if (m.errors > 0) {
      label += " / err " + std::to_string(m.errors);
    }
    if (m.dead_lettered > 0) {
      label += " / dead " + std::to_string(m.dead_lettered);
    }
    annotations[name] = label;
  }
  return graph_->ToDot(annotations);
}

}  // namespace dflow::core
