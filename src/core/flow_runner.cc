#include "core/flow_runner.h"

#include <iomanip>
#include <sstream>

#include "util/logging.h"
#include "util/units.h"

namespace dflow::core {

FlowRunner::FlowRunner(sim::Simulation* simulation, FlowGraph* graph)
    : simulation_(simulation), graph_(graph) {
  DFLOW_CHECK(simulation_ != nullptr);
  DFLOW_CHECK(graph_ != nullptr);
}

FlowRunner::StageState& FlowRunner::StateOf(const std::string& stage) {
  return states_[stage];
}

Status FlowRunner::SetWorkers(const std::string& stage, int workers) {
  if (ran_) {
    return Status::FailedPrecondition("run already started");
  }
  DFLOW_ASSIGN_OR_RETURN(Stage * ignored, graph_->Find(stage));
  (void)ignored;
  if (workers <= 0) {
    return Status::InvalidArgument("workers must be positive");
  }
  StateOf(stage).workers = workers;
  return Status::OK();
}

Status FlowRunner::SetRelease(const std::string& stage, std::string release) {
  DFLOW_ASSIGN_OR_RETURN(Stage * ignored, graph_->Find(stage));
  (void)ignored;
  StateOf(stage).release = std::move(release);
  return Status::OK();
}

Status FlowRunner::SetSite(const std::string& stage, std::string site) {
  DFLOW_ASSIGN_OR_RETURN(Stage * ignored, graph_->Find(stage));
  (void)ignored;
  StateOf(stage).site = std::move(site);
  return Status::OK();
}

Status FlowRunner::Inject(const std::string& stage, DataProduct product,
                          double at) {
  DFLOW_ASSIGN_OR_RETURN(Stage * ignored, graph_->Find(stage));
  (void)ignored;
  if (at < 0.0) {
    return Status::InvalidArgument("injection time must be >= 0");
  }
  simulation_->ScheduleAt(at, [this, stage, product = std::move(product)] {
    Deliver(stage, product);
  });
  return Status::OK();
}

void FlowRunner::Deliver(const std::string& stage_name, DataProduct product) {
  auto stage_or = graph_->Find(stage_name);
  DFLOW_CHECK(stage_or.ok());
  Stage* stage = *stage_or;
  StageState& state = StateOf(stage_name);
  if (state.resource == nullptr) {
    state.resource = std::make_unique<sim::Resource>(simulation_, stage_name,
                                                     state.workers);
  }
  state.metrics.products_in += 1;
  state.metrics.bytes_in += product.bytes;

  double service_time = stage->ServiceTime(product);
  state.resource->Submit(
      service_time, [this, stage, stage_name, product = std::move(product)] {
        StageState& state = StateOf(stage_name);
        auto outputs = stage->Process(product);
        if (!outputs.ok()) {
          state.metrics.errors += 1;
          DFLOW_LOG(Warning) << "stage '" << stage_name
                             << "' failed: " << outputs.status().ToString();
          return;
        }
        const std::vector<std::string>& successors =
            graph_->Successors(stage_name);
        for (DataProduct& output : *outputs) {
          state.metrics.products_out += 1;
          state.metrics.bytes_out += output.bytes;
          // Accumulate the provenance chain.
          prov::ProcessingStep step;
          step.module = stage_name;
          step.version.process = stage_name;
          step.version.release = state.release;
          step.version.change_date =
              static_cast<int64_t>(simulation_->Now());
          step.site = state.site;
          step.input_files.push_back(product.name);
          output.provenance = product.provenance;
          output.provenance.AddStep(std::move(step));
          if (successors.empty()) {
            state.sink_outputs.push_back(std::move(output));
          } else {
            for (const std::string& next : successors) {
              Deliver(next, output);
            }
          }
        }
      });
}

Status FlowRunner::Run() {
  DFLOW_ASSIGN_OR_RETURN(auto order, graph_->TopologicalOrder());
  (void)order;
  ran_ = true;
  simulation_->Run();
  return Status::OK();
}

const StageMetrics& FlowRunner::MetricsFor(const std::string& stage) const {
  static const StageMetrics& kEmpty = *new StageMetrics();
  auto it = states_.find(stage);
  return it == states_.end() ? kEmpty : it->second.metrics;
}

const std::vector<DataProduct>& FlowRunner::SinkOutputs(
    const std::string& stage) const {
  static const std::vector<DataProduct>& kEmpty =
      *new std::vector<DataProduct>();
  auto it = states_.find(stage);
  return it == states_.end() ? kEmpty : it->second.sink_outputs;
}

double FlowRunner::UtilizationOf(const std::string& stage) const {
  auto it = states_.find(stage);
  if (it == states_.end() || it->second.resource == nullptr) {
    return 0.0;
  }
  return it->second.resource->Utilization();
}

std::string FlowRunner::Report() const {
  std::ostringstream os;
  os << std::left << std::setw(28) << "stage" << std::right << std::setw(10)
     << "in" << std::setw(12) << "bytes_in" << std::setw(10) << "out"
     << std::setw(12) << "bytes_out" << std::setw(8) << "util" << "\n";
  for (const std::string& name : graph_->StageNames()) {
    const StageMetrics& m = MetricsFor(name);
    os << std::left << std::setw(28) << name << std::right << std::setw(10)
       << m.products_in << std::setw(12) << FormatBytes(m.bytes_in)
       << std::setw(10) << m.products_out << std::setw(12)
       << FormatBytes(m.bytes_out) << std::setw(8) << std::fixed
       << std::setprecision(2) << UtilizationOf(name) << "\n";
  }
  return os.str();
}

std::string FlowRunner::AnnotatedDot() const {
  std::map<std::string, std::string> annotations;
  for (const std::string& name : graph_->StageNames()) {
    const StageMetrics& m = MetricsFor(name);
    annotations[name] =
        "in " + FormatBytes(m.bytes_in) + " / out " + FormatBytes(m.bytes_out);
  }
  return graph_->ToDot(annotations);
}

}  // namespace dflow::core
