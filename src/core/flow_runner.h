#ifndef DFLOW_CORE_FLOW_RUNNER_H_
#define DFLOW_CORE_FLOW_RUNNER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/flow_graph.h"
#include "sim/resource.h"
#include "sim/simulation.h"
#include "util/result.h"

namespace dflow::core {

/// Per-stage throughput accounting collected by a run.
struct StageMetrics {
  int64_t products_in = 0;
  int64_t products_out = 0;
  int64_t bytes_in = 0;
  int64_t bytes_out = 0;
  int64_t errors = 0;
};

/// Executes a FlowGraph over the discrete-event simulation. Each stage is
/// backed by a sim::Resource with a configurable worker count (processors,
/// tape drives, staff); products queue per stage, pay the stage's service
/// time, then fan out to every successor. Products leaving a stage with no
/// successors accumulate as that sink's outputs.
///
/// The runner also stamps provenance: every product leaving a stage
/// carries one more ProcessingStep naming the stage, its software version,
/// and the input product — giving every final data product the
/// accumulated version chain that §3.2 describes.
class FlowRunner {
 public:
  FlowRunner(sim::Simulation* simulation, FlowGraph* graph);

  /// Sets the worker count of a stage (default 1). Must be called before
  /// Run().
  Status SetWorkers(const std::string& stage, int workers);

  /// Sets the software release recorded in provenance steps for a stage
  /// (defaults to "v1").
  Status SetRelease(const std::string& stage, std::string release);

  /// Sets the processing site recorded in provenance steps for a stage
  /// (§2.2's "processing code and processing site" tagging). Defaults to
  /// empty.
  Status SetSite(const std::string& stage, std::string site);

  /// Queues an initial product for delivery to `stage` at virtual time
  /// `at` (>= 0, relative to simulation start).
  Status Inject(const std::string& stage, DataProduct product, double at);

  /// Validates the graph and runs the simulation to completion.
  Status Run();

  const StageMetrics& MetricsFor(const std::string& stage) const;
  /// Products emitted by `stage` that had no downstream consumer.
  const std::vector<DataProduct>& SinkOutputs(const std::string& stage) const;
  /// Utilization of the stage's workers over the whole run.
  double UtilizationOf(const std::string& stage) const;

  /// Human-readable per-stage table (the textual form of Figures 1/2).
  std::string Report() const;

  /// DOT rendering annotated with measured in/out volumes.
  std::string AnnotatedDot() const;

  sim::Simulation* simulation() const { return simulation_; }

 private:
  struct StageState {
    std::unique_ptr<sim::Resource> resource;
    int workers = 1;
    std::string release = "v1";
    std::string site;
    StageMetrics metrics;
    std::vector<DataProduct> sink_outputs;
  };

  void Deliver(const std::string& stage_name, DataProduct product);
  StageState& StateOf(const std::string& stage);

  sim::Simulation* simulation_;
  FlowGraph* graph_;
  std::map<std::string, StageState> states_;
  bool ran_ = false;
};

}  // namespace dflow::core

#endif  // DFLOW_CORE_FLOW_RUNNER_H_
